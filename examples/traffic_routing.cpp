// Use case §VI-C: traffic modeling for intelligent transportation.
//
// Builds a city grid, runs the traffic simulator to "boost" raw FCD into
// training sequences, recalibrates the probabilistic speed profiles, and
// serves probabilistic time-dependent routing (PTDR) queries. The routing
// workload is then expressed as a HyperLoom-style workflow and scheduled
// on the EVEREST reference platform.
#include <cstdio>

#include "apps/traffic.hpp"
#include "common/table.hpp"
#include "workflow/scheduler.hpp"
#include "workflow/task_graph.hpp"

using namespace everest;
using namespace everest::apps;

int main() {
  std::printf("== EVEREST use case C: intelligent transportation ==\n\n");

  RoadNetwork city = RoadNetwork::make_grid(12, 12, 99);
  std::printf("city grid: %zu intersections, %zu road segments\n",
              city.num_nodes(), city.num_segments());

  // 1. Simulate a day of traffic → FCD → recalibrated speed profiles.
  const SimulationDay day = simulate_traffic_day(city, 5000, 1234);
  std::printf("simulated 5000 trips: %.1f km driven, mean trip %.0f s, "
              "%zu FCD points\n",
              day.vehicle_km, day.mean_trip_time_s, day.fcd.size());
  const std::size_t updated = calibrate_profiles(city, day.fcd, 5);
  std::printf("calibrated %zu (segment,hour) profile cells from FCD\n\n",
              updated);

  // 2. PTDR routing queries at different departure times and risk levels.
  Rng rng(5);
  const std::size_t from = 0, to = city.num_nodes() - 1;
  Table table({"departure", "risk", "route segs", "median (s)", "p95 (s)"});
  for (int hour : {4, 8, 17}) {
    for (double risk : {0.5, 0.95}) {
      auto route = choose_route(city, from, to, hour, 4, 1000, risk, rng);
      if (!route.ok()) continue;
      table.add_row({std::to_string(hour) + ":00",
                     risk > 0.9 ? "averse" : "median",
                     std::to_string(route->path.size()),
                     fmt_double(route->distribution.p50_s, 0),
                     fmt_double(route->distribution.p95_s, 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // 3. The routing service as an EVEREST workflow on the reference platform.
  workflow::TaskGraph graph;
  const auto ingest = graph.add_task({"fcd-ingest", 2e8, 8e6, "ingest", {}});
  const auto model = graph.add_task(
      {"traffic-model", 4e9, 2e7, "model", {ingest}});
  std::vector<std::size_t> queries;
  for (int q = 0; q < 16; ++q) {
    queries.push_back(graph.add_task({"ptdr-" + std::to_string(q), 8e8, 1e5,
                                      "ptdr", {model}}));
  }
  graph.add_task({"publish", 1e7, 1e5, "publish", queries});

  auto spec = platform::PlatformSpec::everest_reference(2, 0, 2);
  auto workers = workflow::workers_from_platform(spec);
  for (auto kind : {workflow::SchedulerKind::kFifo,
                    workflow::SchedulerKind::kHeft,
                    workflow::SchedulerKind::kWorkStealing}) {
    workflow::SimulationOptions options;
    options.scheduler = kind;
    auto outcome = workflow::simulate_schedule(graph, workers, options);
    if (outcome.ok()) {
      std::printf("workflow on EVEREST platform [%s]: makespan %.1f ms, "
                  "utilization %.0f%%\n",
                  std::string(to_string(kind)).c_str(),
                  outcome->makespan_us / 1e3,
                  outcome->mean_utilization * 100);
    }
  }
  std::printf("\ndone.\n");
  return 0;
}
