// Quickstart: the EVEREST SDK in one file.
//
// 1. Write a kernel in the tensor eDSL (with data/security annotations).
// 2. Lower it to the unified IR; inspect it.
// 3. Generate software + hardware variants (compiler middle-end + HLS).
// 4. Load the variant metadata into the runtime knowledge base.
// 5. Let the mARGOt-style autotuner pick variants as conditions change.
#include <cstdio>

#include "common/table.hpp"
#include "compiler/backend.hpp"
#include "compiler/dse.hpp"
#include "dsl/workflow_dsl.hpp"
#include "compiler/variants.hpp"
#include "dsl/tensor_expr.hpp"
#include "hls/hls.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "runtime/autotuner.hpp"
#include "runtime/knowledge.hpp"

using namespace everest;

int main() {
  std::printf("== EVEREST SDK quickstart ==\n\n");

  // -- 1. Application kernel in the tensor eDSL ---------------------------
  dsl::TensorProgram program("postprocess");
  dsl::DataAnnotations sensor;
  sensor.volume_mb = 2.0;
  sensor.locality = dsl::Locality::kStreaming;
  sensor.confidential = true;  // the data-centric security annotation
  auto x = program.input("ensemble", {64, 128}, sensor);
  auto w = program.input("weights", {128, 32});
  program.output("prediction", relu(matmul(x, w)));

  // -- 2. Lower to the unified IR -----------------------------------------
  auto module_or = program.lower();
  if (!module_or.ok()) {
    std::printf("lowering failed: %s\n", module_or.status().to_string().c_str());
    return 1;
  }
  ir::Module module = std::move(module_or).value();
  std::printf("--- unified IR ---\n%s\n", ir::print(module).c_str());
  if (Status st = ir::verify(module); !st.ok()) {
    std::printf("verification failed: %s\n", st.to_string().c_str());
    return 1;
  }

  // -- 3. Variant generation ----------------------------------------------
  compiler::VariantSpace space;
  space.thread_counts = {1, 4, 16};
  space.tile_sizes = {0, 64};
  space.layouts = {"soa"};
  space.unroll_factors = {1, 4};
  space.devices = {hls::FpgaDevice::p9_vu9p(),
                   hls::FpgaDevice::cloudfpga_ku060()};
  space.with_dift = true;
  auto variants_or = compiler::generate_variants(
      module, "postprocess", space, compiler::CpuModel::power9());
  if (!variants_or.ok()) {
    std::printf("variant generation failed: %s\n",
                variants_or.status().to_string().c_str());
    return 1;
  }
  const auto& variants = *variants_or;

  Table table({"variant", "target", "latency (us)", "energy (uJ)", "area"});
  for (const compiler::Variant& v : variants) {
    table.add_row({v.id, std::string(compiler::to_string(v.target)),
                   fmt_double(v.latency_us, 1), fmt_double(v.energy_uj, 1),
                   v.target == compiler::TargetKind::kFpga
                       ? fmt_double(v.area_fraction * 100, 1) + "%"
                       : "-"});
  }
  std::printf("--- %zu generated variants ---\n%s\n", variants.size(),
              table.render().c_str());

  const auto front = compiler::pareto_variants(variants);
  std::printf("Pareto front: %zu variants; knee point: %s\n\n", front.size(),
              front[compiler::knee_point(front)].id.c_str());

  // -- 4/5. Runtime: knowledge base + autotuner ---------------------------
  runtime::KnowledgeBase kb;
  (void)kb.load(variants);
  runtime::Autotuner tuner(&kb);

  struct Scenario {
    const char* name;
    runtime::SystemState state;
    runtime::Goal goal;
  };
  runtime::Goal latency_goal;
  runtime::Goal energy_goal;
  energy_goal.objective = runtime::Goal::Objective::kMinEnergy;
  runtime::SystemState idle;
  runtime::SystemState busy_cpu;
  busy_cpu.cpu_load = 0.9;
  runtime::SystemState no_fpga;
  no_fpga.fpgas_available = 0;
  runtime::SystemState under_attack;
  under_attack.protection = security::ProtectionLevel::kProtect;

  const Scenario scenarios[] = {
      {"idle system, min latency", idle, latency_goal},
      {"idle system, min energy", idle, energy_goal},
      {"CPU 90% loaded", busy_cpu, latency_goal},
      {"FPGAs offline", no_fpga, latency_goal},
      {"auto-protection active", under_attack, latency_goal},
  };
  std::printf("--- dynamic selection (paper Fig. 2) ---\n");
  for (const Scenario& s : scenarios) {
    auto sel = tuner.select("postprocess", s.goal, s.state);
    if (sel.ok()) {
      std::printf("  %-28s -> %-28s (%.1f us predicted)\n", s.name,
                  sel->variant.id.c_str(), sel->predicted_latency_us);
    } else {
      std::printf("  %-28s -> %s\n", s.name, sel.status().to_string().c_str());
    }
  }
  // -- 6. Backend: SYCL-flavored orchestration code -----------------------
  dsl::WorkflowBuilder wf("app");
  dsl::SourceOptions so;
  so.rate_hz = 10.0;
  auto feed = wf.source("ensemble", so);
  auto pred = wf.task("postprocess").kernel("postprocess").inputs({feed})
                  .output_shape({64, 32}).done();
  (void)wf.sink("market", pred);
  auto wf_module = wf.lower();
  if (wf_module.ok()) {
    const auto knee = variants[compiler::knee_point(variants)];
    auto emitted = compiler::emit_backend(
        *wf_module, "app", {{"postprocess", knee}});
    if (emitted.ok()) {
      std::printf("--- backend output (paper Fig. 1, '%s' selected) ---\n%s\n",
                  knee.id.c_str(), emitted->source.c_str());
    }
  }
  std::printf("quickstart done.\n");
  return 0;
}
