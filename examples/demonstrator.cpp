// The multi-node EVEREST demonstrator (paper §V): every layer of the SDK
// in one run.
//
//   tensor eDSL → compiler (variants, incl. HLS) → variant metadata →
//   knowledge base → multi-node placement with dynamic variant selection
//   on the reference platform (POWER9 + OpenCAPI FPGA + cloudFPGAs + edge).
#include <cstdio>

#include "common/table.hpp"
#include "compiler/variants.hpp"
#include "dsl/tensor_expr.hpp"
#include "hls/hls.hpp"
#include "runtime/demonstrator.hpp"

using namespace everest;

int main() {
  std::printf("== EVEREST multi-node demonstrator ==\n\n");

  // -- Compile the pipeline's two hot kernels through the real flow -------
  ir::Module module("app");
  {
    dsl::TensorProgram p("downscale_k");
    auto coarse = p.input("coarse", {512, 512});
    auto terrain = p.input("terrain", {512, 512});
    p.output("fine", exp(scale(coarse * terrain, -0.5)) + coarse);
    if (!p.lower_into(module).ok()) return 1;
  }
  {
    dsl::TensorProgram p("predict_k");
    auto features = p.input("f", {64, 32});
    auto w = p.input("w", {32, 8});
    p.output("y", relu(matmul(features, w)));
    if (!p.lower_into(module).ok()) return 1;
  }
  compiler::VariantSpace space;
  space.thread_counts = {1, 8};
  space.tile_sizes = {0};
  space.layouts = {"soa"};
  space.unroll_factors = {1, 8};
  space.devices = {hls::FpgaDevice::p9_vu9p(),
                   hls::FpgaDevice::cloudfpga_ku060()};
  runtime::KnowledgeBase kb;
  for (const char* kernel : {"downscale_k", "predict_k"}) {
    auto variants = compiler::generate_variants(module, kernel, space,
                                                compiler::CpuModel::power9());
    if (!variants.ok()) {
      std::printf("variant generation failed: %s\n",
                  variants.status().to_string().c_str());
      return 1;
    }
    (void)kb.load(*variants);
    std::printf("compiled %-12s -> %zu variants\n", kernel, variants->size());
  }

  // -- The application workflow: ingest → downscale x members → predict ----
  workflow::TaskGraph graph;
  workflow::TaskNode ingest;
  ingest.name = "ingest";
  ingest.kernel = "ingest";  // no variants: generic CPU task
  ingest.flops = 2e8;
  ingest.output_bytes = 8e6;
  const auto ingest_id = graph.add_task(std::move(ingest));
  std::vector<std::size_t> members;
  for (int m = 0; m < 8; ++m) {
    workflow::TaskNode member;
    member.name = "downscale-" + std::to_string(m);
    member.kernel = "downscale_k";
    member.flops = 5e8;
    member.output_bytes = 512 * 512 * 8.0;
    member.deps = {ingest_id};
    members.push_back(graph.add_task(std::move(member)));
  }
  workflow::TaskNode predict;
  predict.name = "predict";
  predict.kernel = "predict_k";
  predict.flops = 2e7;
  predict.output_bytes = 64 * 8.0;
  predict.deps = members;
  graph.add_task(std::move(predict));

  // -- Run on the reference platform, cold and warm ------------------------
  auto platform = platform::PlatformSpec::everest_reference(2, 4, 2);
  std::printf("\nplatform: %zu nodes (", platform.nodes.size());
  for (const auto& node : platform.nodes) std::printf(" %s", node.name.c_str());
  std::printf(" )\n\n");

  std::printf("CPUs run at 85%% background load (co-tenant VMs), so the\n"
              "autotuner weighs accelerators against contended cores.\n\n");
  for (const bool warm : {false, true}) {
    auto spec = platform;
    if (warm) {
      for (auto& node : spec.nodes) {
        for (auto& slot : node.fpgas) slot.current_role = "downscale_k";
      }
    }
    runtime::DemonstratorOptions options;
    options.background_cpu_load = 0.85;  // co-tenants on every CPU
    auto run = runtime::run_demonstrator(spec, kb, graph, options);
    if (!run.ok()) {
      std::printf("run failed: %s\n", run.status().to_string().c_str());
      return 1;
    }
    std::printf("--- %s FPGAs ---\n", warm ? "warm (roles loaded)" : "cold");
    Table t({"task", "node", "variant", "start (us)", "end (us)"});
    for (const auto& p : run->placements) {
      t.add_row({p.task, p.node, p.variant_id, fmt_double(p.start_us, 0),
                 fmt_double(p.end_us, 0)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("makespan %.1f ms | energy %.1f mJ | %.1f MB moved\n\n",
                run->makespan_us / 1e3, run->total_energy_uj / 1e3,
                run->bytes_moved / 1e6);
  }
  std::printf("done.\n");
  return 0;
}
