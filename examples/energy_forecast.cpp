// Use case §VI-A: weather-based prediction of wind-farm production for the
// energy trading market.
//
// Trains the AI correction model on synthetic history, produces a 24-hour
// day-ahead forecast, and shows how hardware acceleration (via the SDK's
// HLS estimator) lets the operator afford a higher-resolution ensemble
// within the same time budget.
#include <cstdio>

#include "apps/energy.hpp"
#include "apps/mlp.hpp"
#include "common/table.hpp"
#include "compiler/variants.hpp"
#include "hls/hls.hpp"

using namespace everest;
using namespace everest::apps;

int main() {
  std::printf("== EVEREST use case A: renewable-energy prediction ==\n\n");

  WeatherOptions weather;
  weather.ny = 16;
  weather.nx = 16;
  weather.dx_km = 25.0;  // global-model resolution (paper: 15-25 km)
  WindFarm farm = WindFarm::make_cluster(
      24, weather.ny * weather.dx_km, weather.nx * weather.dx_km, 42);
  std::printf("wind farm: %zu turbines, %.0f MW capacity\n",
              farm.turbines.size(), farm.capacity_mw());

  EnergyForecaster forecaster(weather, farm, 2026);
  std::printf("training AI correction on 10 days of history...\n");
  const double loss = forecaster.train(10, 60);
  std::printf("  final training MSE (normalized): %.4f\n\n", loss);

  ForecastOptions options;
  options.ensemble_members = 8;
  options.downscale_factor = 4;  // 25 km -> 6.25 km
  const ForecastResult result = forecaster.forecast_day(options);

  Table table({"hour", "forecast MW", "physical MW", "actual MW"});
  for (int h = 0; h < 24; ++h) {
    table.add_row({std::to_string(h), fmt_double(result.forecast_mw[h], 1),
                   fmt_double(result.physical_mw[h], 1),
                   fmt_double(result.actual_mw[h], 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("RMSE: %.2f MW (AI-corrected) vs %.2f MW (power curve only)\n",
              result.rmse_mw, result.physical_rmse_mw);
  std::printf("imbalance cost: %.0f EUR/day\n", result.imbalance_cost_eur);
  std::printf("weather compute: %.2f GFLOP/day\n\n",
              result.compute_flops / 1e9);

  // Compile the correction model through the SDK and estimate acceleration.
  Rng rng(7);
  Mlp surrogate({6, 16, 1}, rng);
  dsl::TensorProgram program = surrogate.to_tensor_program("correction", 24);
  auto module = program.lower();
  if (module.ok()) {
    compiler::VariantSpace space;
    space.thread_counts = {1, 8};
    space.tile_sizes = {0};
    space.layouts = {"soa"};
    space.unroll_factors = {1, 8};
    space.devices = {hls::FpgaDevice::p9_vu9p()};
    auto variants = compiler::generate_variants(
        *module, "correction", space, compiler::CpuModel::power9());
    if (variants.ok()) {
      double best_cpu = 1e300, best_fpga = 1e300;
      for (const auto& v : *variants) {
        auto& best = v.target == compiler::TargetKind::kCpu ? best_cpu
                                                            : best_fpga;
        best = std::min(best, v.latency_us);
      }
      std::printf(
          "correction model through the SDK: best CPU %.1f us, best FPGA "
          "%.1f us per 24-hour batch\n",
          best_cpu, best_fpga);
    }
  }
  std::printf("\ndone.\n");
  return 0;
}
