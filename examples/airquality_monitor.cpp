// Use case §VI-B: Plum'air-style air-quality monitoring of an industrial
// site. Forecasts pollutant exceedance probabilities at sensitive
// receptors from an ensemble weather feed, recommends curtailment hours,
// and demonstrates the data-protection layer (taint tracking + AES-GCM
// encryption of the confidential emission data).
#include <cstdio>

#include "apps/airquality.hpp"
#include "common/table.hpp"
#include "security/aes.hpp"
#include "security/taint.hpp"

using namespace everest;
using namespace everest::apps;

int main() {
  std::printf("== EVEREST use case B: air-quality monitoring ==\n\n");

  // Industrial site: two stacks in a 10 km domain.
  std::vector<StackSource> sources = {
      {5.0, 4.0, 60.0, 400.0},  // main stack
      {5.4, 4.2, 35.0, 250.0},  // secondary stack
  };
  std::vector<Receptor> receptors = {
      {"school", 5.0, 6.5},
      {"hospital", 6.5, 5.0},
      {"station-east", 5.0, 9.0},
  };

  WeatherOptions weather;
  weather.ny = 10;
  weather.nx = 10;
  weather.dx_km = 1.0;
  weather.mean_wind = 4.0;
  WeatherGenerator generator(weather, 77);

  AirQualityOptions options;
  options.ensemble_members = 12;
  options.limit_ugm3 = 40.0;
  options.curtail_threshold = 0.25;
  const AirQualityForecast forecast =
      forecast_air_quality(sources, receptors, generator, options);

  Table table({"receptor", "peak mean ug/m3", "max P(exceed)", "worst hour"});
  for (std::size_t r = 0; r < receptors.size(); ++r) {
    double peak = 0.0, worst_p = 0.0;
    int worst_hour = 0;
    for (int h = 0; h < options.horizon_hours; ++h) {
      peak = std::max(peak, forecast.mean_ugm3[r][h]);
      if (forecast.exceedance_probability[r][h] > worst_p) {
        worst_p = forecast.exceedance_probability[r][h];
        worst_hour = h;
      }
    }
    table.add_row({receptors[r].name, fmt_double(peak, 1),
                   fmt_double(worst_p, 2), std::to_string(worst_hour)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("recommended curtailment hours:");
  if (forecast.curtail_hours.empty()) std::printf(" none");
  for (int h : forecast.curtail_hours) std::printf(" %d", h);
  std::printf("\ncompute: %.2f GFLOP for %d members x %d hours\n\n",
              forecast.compute_flops / 1e9, options.ensemble_members,
              options.horizon_hours);

  // --- data protection (paper §III-A): emission data is business-critical.
  security::TaintTracker taint;
  taint.set_label("emissions", security::TaintLabel({"confidential"}));
  taint.propagate("dispersion", {"emissions", "weather"}, {"conc-field"});
  taint.propagate("aggregate", {"conc-field"}, {"public-report"},
                  /*declassifies=*/{"confidential"});
  std::printf("taint: conc-field confidential=%s, public-report "
              "confidential=%s\n",
              taint.label_of("conc-field").has("confidential") ? "yes" : "no",
              taint.label_of("public-report").has("confidential") ? "yes"
                                                                  : "no");
  if (Status st = taint.check_sink("conc-field", security::TaintLabel{});
      !st.ok()) {
    std::printf("policy: conc-field blocked from public sink (%s)\n",
                std::string(to_string(st.code())).c_str());
  }

  // Encrypt the emission record for transport to the cloud tier.
  security::Block16 key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  std::array<std::uint8_t, 12> iv{9, 9, 9};
  std::vector<std::uint8_t> record;
  for (const StackSource& s : sources) {
    record.push_back(static_cast<std::uint8_t>(s.emission_gs / 10));
  }
  const auto sealed = security::aes128_gcm_encrypt(key, iv, record);
  auto opened = security::aes128_gcm_decrypt(key, iv, sealed.ciphertext,
                                             sealed.tag);
  std::printf("emission record sealed with AES-128-GCM (%zu bytes, tag ok: "
              "%s)\n",
              sealed.ciphertext.size(), opened.ok() ? "yes" : "no");
  std::printf("\ndone.\n");
  return 0;
}
