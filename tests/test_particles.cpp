// Tests for the particle eDSL: lowering in both layouts, semantic
// equivalence between AoS and SoA (via the kernel interpreter), HLS
// synthesizability, and the measured cache-locality difference the layout
// knob exists for.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "compiler/cache_model.hpp"
#include "compiler/interpreter.hpp"
#include "dsl/particles.hpp"
#include "hls/hls.hpp"
#include "ir/verifier.hpp"

namespace everest::dsl {
namespace {

/// Runs one step of the lowered kernel by hand through the kernel
/// interpreter (the particle function has no lowering metadata, so we bind
/// buffers directly via a tiny wrapper module attribute fix-up).
std::vector<double> run_particle_step(ir::Module& module,
                                      const std::string& fn_name,
                                      const std::vector<double>& state_in) {
  ir::Function* fn = module.find(fn_name);
  EXPECT_NE(fn, nullptr);
  // Reuse the kernel interpreter by faking the lowering metadata: one
  // "input" (state_in) and one "output" (state_out).
  fn->set_attr("ev.num_inputs", ir::Attribute::integer(1));
  fn->set_attr("ev.promoted_constants", ir::Attribute::integer(0));
  fn->set_attr("ev.num_outputs", ir::Attribute::integer(1));
  compiler::TensorValue in = compiler::TensorValue::from(
      {static_cast<std::int64_t>(state_in.size())}, state_in);
  auto out = compiler::run_kernel_function(module, fn_name, {in});
  EXPECT_TRUE(out.ok()) << out.status().to_string();
  return out.ok() ? (*out)[0].data : std::vector<double>{};
}

/// Builds the canonical advection kernel: x += v*dt; v *= drag.
ParticleKernel advect_kernel(std::int64_t n) {
  ParticleKernel k("advect", n);
  auto x = k.field("x");
  auto v = k.field("v");
  auto m = k.field("m");  // untouched field (copied through)
  (void)m;
  EXPECT_TRUE(k.update("x", x + v * k.constant(0.1)).ok());
  EXPECT_TRUE(k.update("v", v * k.constant(0.99)).ok());
  return k;
}

TEST(Particles, LowersAndVerifiesBothLayouts) {
  ParticleKernel k = advect_kernel(16);
  for (ParticleLayout layout : {ParticleLayout::kAoS, ParticleLayout::kSoA}) {
    auto module = k.lower(layout);
    ASSERT_TRUE(module.ok()) << module.status().to_string();
    EXPECT_TRUE(ir::verify(*module).ok()) << ir::verify(*module).to_string();
    const std::string fn =
        std::string("advect_") + std::string(to_string(layout));
    ASSERT_NE(module->find(fn), nullptr);
    EXPECT_EQ(module->find(fn)->attr("ev.layout")->as_string(),
              std::string(to_string(layout)));
  }
}

TEST(Particles, AosAndSoaComputeTheSamePhysics) {
  constexpr std::int64_t kN = 12;
  ParticleKernel k = advect_kernel(kN);
  Rng rng(7);
  // Initial per-particle state (x, v, m).
  std::vector<double> xs(kN), vs(kN), ms(kN);
  for (std::int64_t p = 0; p < kN; ++p) {
    xs[p] = rng.uniform(-5, 5);
    vs[p] = rng.uniform(-1, 1);
    ms[p] = rng.uniform(0.5, 2);
  }
  // Pack into each layout.
  std::vector<double> aos(3 * kN), soa(3 * kN);
  for (std::int64_t p = 0; p < kN; ++p) {
    aos[p * 3 + 0] = xs[p];
    aos[p * 3 + 1] = vs[p];
    aos[p * 3 + 2] = ms[p];
    soa[0 * kN + p] = xs[p];
    soa[1 * kN + p] = vs[p];
    soa[2 * kN + p] = ms[p];
  }
  auto aos_module = k.lower(ParticleLayout::kAoS);
  auto soa_module = k.lower(ParticleLayout::kSoA);
  ASSERT_TRUE(aos_module.ok() && soa_module.ok());
  const auto aos_out = run_particle_step(*aos_module, "advect_aos", aos);
  const auto soa_out = run_particle_step(*soa_module, "advect_soa", soa);
  ASSERT_EQ(aos_out.size(), 3u * kN);
  ASSERT_EQ(soa_out.size(), 3u * kN);
  for (std::int64_t p = 0; p < kN; ++p) {
    const double expected_x = xs[p] + vs[p] * 0.1;
    const double expected_v = vs[p] * 0.99;
    EXPECT_NEAR(aos_out[static_cast<std::size_t>(p * 3 + 0)], expected_x, 1e-12);
    EXPECT_NEAR(aos_out[static_cast<std::size_t>(p * 3 + 1)], expected_v, 1e-12);
    EXPECT_NEAR(aos_out[static_cast<std::size_t>(p * 3 + 2)], ms[p], 1e-12);
    EXPECT_NEAR(soa_out[static_cast<std::size_t>(0 * kN + p)], expected_x, 1e-12);
    EXPECT_NEAR(soa_out[static_cast<std::size_t>(1 * kN + p)], expected_v, 1e-12);
    EXPECT_NEAR(soa_out[static_cast<std::size_t>(2 * kN + p)], ms[p], 1e-12);
  }
}

TEST(Particles, BothLayoutsAreHlsSynthesizable) {
  ParticleKernel k = advect_kernel(1024);
  for (ParticleLayout layout : {ParticleLayout::kAoS, ParticleLayout::kSoA}) {
    auto module = k.lower(layout);
    ASSERT_TRUE(module.ok());
    const std::string fn =
        std::string("advect_") + std::string(to_string(layout));
    auto design = hls::synthesize(*module->find(fn), hls::HlsConfig{},
                                  hls::FpgaDevice::p9_vu9p());
    ASSERT_TRUE(design.ok()) << design.status().to_string();
    EXPECT_GT(design->estimate.total_cycles, 1024);
  }
}

TEST(Particles, LayoutChangesMeasuredCacheTraffic) {
  // A wide particle (8 fields) with an update touching only 2: SoA streams
  // just the hot fields; AoS drags all 8 through the cache. The cache
  // simulator must SEE this from the lowered IR alone.
  constexpr std::int64_t kN = 8192;
  ParticleKernel k("wide", kN);
  auto x = k.field("x");
  auto v = k.field("v");
  for (const char* cold : {"f2", "f3", "f4", "f5", "f6", "f7"}) {
    (void)k.field(cold);
  }
  ASSERT_TRUE(k.update("x", x + v * k.constant(0.1)).ok());

  // Partial-update mode: cold fields are never touched — the regime the
  // paper's AoS-vs-SoA discussion is about.
  double partial[2] = {0, 0};
  double full[2] = {0, 0};
  int idx = 0;
  for (ParticleLayout layout : {ParticleLayout::kAoS, ParticleLayout::kSoA}) {
    const std::string fn =
        std::string("wide_") + std::string(to_string(layout));
    auto hot = k.lower(layout, /*store_only_updated=*/true);
    ASSERT_TRUE(hot.ok());
    auto hot_stats = compiler::simulate_kernel_cache(
        *hot->find(fn), 0, compiler::CacheConfig{32, 64, 8}, 1u << 26);
    ASSERT_TRUE(hot_stats.ok()) << hot_stats.status().to_string();
    partial[idx] = hot_stats->dram_bytes;
    auto all = k.lower(layout, /*store_only_updated=*/false);
    ASSERT_TRUE(all.ok());
    auto all_stats = compiler::simulate_kernel_cache(
        *all->find(fn), 0, compiler::CacheConfig{32, 64, 8}, 1u << 26);
    ASSERT_TRUE(all_stats.ok());
    full[idx] = all_stats->dram_bytes;
    ++idx;
  }
  // Touching 2 of 8 fields: SoA moves only the hot columns, AoS drags every
  // interleaved line — the textbook SoA win (>2x here).
  EXPECT_GT(partial[0], partial[1] * 2.0);
  // Full rewrite flips it: every byte moves anyway and SoA's power-of-two
  // column stride (64 KiB) piles 16 streams into one cache set — a real
  // associativity pathology the trace model exposes and the fits-in-L2
  // heuristic cannot see.
  EXPECT_LT(full[0], full[1]);
}

TEST(Particles, Validation) {
  ParticleKernel empty("none", 8);
  EXPECT_EQ(empty.lower(ParticleLayout::kAoS).status().code(),
            StatusCode::kFailedPrecondition);
  ParticleKernel k("k", 8);
  auto x = k.field("x");
  EXPECT_EQ(k.update("ghost", x).code(), StatusCode::kNotFound);
  ParticleExpr invalid;
  EXPECT_EQ(k.update("x", invalid).code(), StatusCode::kInvalidArgument);
  // Re-declaring a field returns the same slot.
  auto x2 = k.field("x");
  (void)x2;
  EXPECT_EQ(k.num_fields(), 1u);
}

}  // namespace
}  // namespace everest::dsl
