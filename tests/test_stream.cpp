// Tests for src/stream: event-time windowing determinism (TEST_P over
// eviction policies + same-seed reruns), watermark/late-event edges,
// bounded session queues with drop accounting, two-lane ingest
// admission + WAL replay, pub/sub delta propagation, and the
// crash-mid-window failover replay byte-identity contract.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "data/plane.hpp"
#include "obs/registry.hpp"
#include "platform/desim.hpp"
#include "serve/loadgen.hpp"
#include "stream/engine.hpp"
#include "stream/event.hpp"
#include "stream/federated.hpp"
#include "stream/ingestor.hpp"
#include "stream/operators.hpp"
#include "stream/pubsub.hpp"
#include "stream/session.hpp"
#include "stream/window.hpp"

namespace everest::stream {
namespace {

namespace fs = std::filesystem;

/// Self-cleaning scratch directory for WAL-backed tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("everest_stream_test_" + tag + "_" + std::to_string(getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Event make_event(std::string topic, std::uint64_t key, std::uint64_t t_us,
                 double value) {
  Event event;
  event.topic = std::move(topic);
  event.key = key;
  event.event_time_us = t_us;
  event.value = value;
  return event;
}

Event punctuation(std::string topic, std::uint64_t t_us) {
  Event event;
  event.topic = std::move(topic);
  event.event_time_us = t_us;
  event.punctuation = true;
  return event;
}

// ---- window assignment ----------------------------------------------------

TEST(WindowSpec, TumblingAssignsOneAlignedWindow) {
  WindowSpec spec;
  spec.kind = WindowKind::kTumbling;
  spec.size_us = 1000;
  std::vector<std::uint64_t> starts;
  spec.windows_of(2500, &starts);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 2000u);
  spec.windows_of(0, &starts);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 0u);
}

TEST(WindowSpec, SlidingAssignsEveryCoveringWindow) {
  WindowSpec spec;
  spec.kind = WindowKind::kSliding;
  spec.size_us = 1000;
  spec.slide_us = 250;
  std::vector<std::uint64_t> starts;
  spec.windows_of(1000, &starts);
  // Windows starting at 1000, 750, 500, 250 all cover t=1000
  // (start + 1000 > 1000); the one starting at 0 ends exactly at 1000
  // (exclusive) and must NOT contain it.
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts.front(), 1000u);
  EXPECT_EQ(starts.back(), 250u);
}

// ---- windowed operator ----------------------------------------------------

TEST(WindowedOperator, EmitsInWindowEndThenKeyOrder) {
  WindowSpec spec;
  spec.size_us = 1000;
  WindowedOperator op("mean", "aq", spec, mean_accumulator());
  op.offer(make_event("aq", 2, 100, 4.0));
  op.offer(make_event("aq", 1, 200, 2.0));
  op.offer(make_event("aq", 1, 1500, 6.0));
  std::vector<WindowOutput> out;
  op.advance_watermark(2000, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].window_end_us, 1000u);
  EXPECT_EQ(out[0].key, 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 2.0);
  EXPECT_EQ(out[1].window_end_us, 1000u);
  EXPECT_EQ(out[1].key, 2u);
  EXPECT_EQ(out[2].window_end_us, 2000u);
  EXPECT_DOUBLE_EQ(out[2].value, 6.0);
  EXPECT_EQ(op.stats().windows_closed, 3u);
  EXPECT_EQ(op.open_cells(), 0u);
}

TEST(WindowedOperator, LateEventDroppedAndCounted) {
  WindowSpec spec;
  spec.size_us = 1000;
  WindowedOperator op("count", "aq", spec, count_accumulator());
  std::vector<WindowOutput> out;
  op.offer(make_event("aq", 0, 500, 1.0));
  op.advance_watermark(1000, &out);
  ASSERT_EQ(out.size(), 1u);
  // t=900 belongs only to window [0,1000), which closed.
  EXPECT_FALSE(op.offer(make_event("aq", 0, 900, 1.0)));
  EXPECT_EQ(op.stats().late_dropped, 1u);
  // t=1000 opens [1000,2000): on time.
  EXPECT_TRUE(op.offer(make_event("aq", 0, 1000, 1.0)));
}

TEST(WindowedOperator, WatermarkNeverRegresses) {
  WindowSpec spec;
  spec.size_us = 1000;
  WindowedOperator op("count", "aq", spec, count_accumulator());
  std::vector<WindowOutput> out;
  op.advance_watermark(5000, &out);
  op.advance_watermark(3000, &out);  // must be a no-op
  EXPECT_EQ(op.watermark_us(), 5000u);
}

TEST(WindowedOperator, SlidingWindowFoldsIntoEveryCover) {
  WindowSpec spec;
  spec.kind = WindowKind::kSliding;
  spec.size_us = 1000;
  spec.slide_us = 500;
  WindowedOperator op("count", "aq", spec, count_accumulator());
  op.offer(make_event("aq", 0, 700, 1.0));  // covers [0,1000) and [500,1500)
  std::vector<WindowOutput> out;
  op.advance_watermark(1500, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.0);
  EXPECT_DOUBLE_EQ(out[1].value, 1.0);
}

// ---- engine + lateness ----------------------------------------------------

TEST(StreamEngine, AllowedLatenessHoldsWindowsOpen) {
  EngineConfig config;
  StreamEngine engine(config);
  WindowSpec spec;
  spec.size_us = 1000;
  spec.allowed_lateness_us = 500;
  engine.add_operator(std::make_unique<WindowedOperator>(
      "count", "aq", spec, count_accumulator()));
  auto session = engine.subscribe("t0", "aq");
  ASSERT_TRUE(session.ok());
  engine.start();
  ASSERT_TRUE(engine.ingest(make_event("aq", 0, 100, 1.0)).ok());
  // Frontier 1200 − lateness 500 = watermark 700 < 1000: window open,
  // and the trailing event at 900 still folds.
  ASSERT_TRUE(engine.ingest(make_event("aq", 0, 1200, 1.0)).ok());
  ASSERT_TRUE(engine.ingest(make_event("aq", 0, 900, 1.0)).ok());
  // Frontier 2000 → watermark 1500: [0,1000) closes holding t=100 AND
  // the late-but-inside-lateness t=900 (2 events, not 1).
  ASSERT_TRUE(engine.ingest(punctuation("aq", 2000)).ok());
  engine.flush();
  auto deliveries = session.value()->drain();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].output.events, 2u);
  engine.stop();
}

// ---- sessions -------------------------------------------------------------

TEST(StreamSession, DropsOldestWhenFullAndCounts) {
  obs::Registry registry;
  SessionConfig config;
  config.queue_capacity = 2;
  StreamSession session(1, "tenant-a", "aq", config, &registry);
  for (int i = 0; i < 4; ++i) {
    WindowOutput output;
    output.window_end_us = 1000u * (i + 1);
    session.push(Delivery{output, 0});
  }
  EXPECT_EQ(session.queued(), 2u);
  EXPECT_EQ(session.stats().dropped, 2u);
  EXPECT_EQ(registry.counter("stream.session.dropped",
                             {{"tenant", "tenant-a"}})
                ->value(),
            2u);
  // The survivors are the two FRESHEST outputs.
  auto deliveries = session.drain();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].output.window_end_us, 3000u);
  EXPECT_EQ(deliveries[1].output.window_end_us, 4000u);
}

TEST(StreamSession, AckSuppressesReplayedWindows) {
  StreamSession session(1, "t", "aq", SessionConfig{}, nullptr);
  WindowOutput output;
  output.window_end_us = 1000;
  session.push(Delivery{output, 0});
  session.ack(1000);
  session.push(Delivery{output, 0});  // replay duplicate
  output.window_end_us = 2000;
  session.push(Delivery{output, 0});  // genuinely new
  auto deliveries = session.drain();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[1].output.window_end_us, 2000u);
  EXPECT_EQ(session.stats().suppressed, 1u);
  // Acks are monotone.
  session.ack(500);
  EXPECT_EQ(session.acked_watermark_us(), 1000u);
}

TEST(StreamEngine, SubscribeExhaustsAtCapacity) {
  EngineConfig config;
  config.max_sessions = 2;
  StreamEngine engine(config);
  WindowSpec spec;
  engine.add_operator(std::make_unique<WindowedOperator>(
      "count", "aq", spec, count_accumulator()));
  EXPECT_TRUE(engine.subscribe("a", "aq").ok());
  EXPECT_TRUE(engine.subscribe("b", "aq").ok());
  auto third = engine.subscribe("c", "aq");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  auto unknown = engine.subscribe("a", "no-such-topic");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

// ---- ingestor -------------------------------------------------------------

TEST(Ingestor, TwoLanePriorityAndRejection) {
  IngestorConfig config;
  config.queue_capacity = 3;
  Ingestor ingestor(config);
  Event tp = make_event("aq", 0, 1, 0.0);
  Event lc = make_event("aq", 0, 2, 0.0);
  lc.sla = serve::SlaClass::kLatencyCritical;
  ASSERT_TRUE(ingestor.offer(tp).ok());
  ASSERT_TRUE(ingestor.offer(tp).ok());
  ASSERT_TRUE(ingestor.offer(lc).ok());
  const Status full = ingestor.offer(tp);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  // The latency-critical event jumps both earlier bulk events.
  auto first = ingestor.take(std::chrono::microseconds(1000));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->event_time_us, 2u);
  EXPECT_EQ(ingestor.stats().admitted, 3u);
  EXPECT_EQ(ingestor.stats().rejected, 1u);
}

TEST(Ingestor, WalRoundtripPreservesOrderAndPunctuation) {
  TempDir dir("wal_roundtrip");
  std::vector<Event> in;
  {
    IngestorConfig config;
    config.wal_dir = dir.path();
    config.wal.sync_every = 1;
    Ingestor ingestor(config);
    in.push_back(make_event("aq", 7, 100, 1.5));
    in.push_back(make_event("traffic", 3, 200, 2.5));
    in.push_back(punctuation("aq", 300));
    Event seeded = make_event("aq", 9, 400, 3.5);
    seeded.seed = 0xDEADBEEFULL;
    in.push_back(seeded);
    for (const Event& event : in) ASSERT_TRUE(ingestor.offer(event).ok());
    ingestor.close();
  }
  // Topic ids were assigned first-seen: aq=0, traffic=1.
  std::vector<Event> out;
  const std::uint64_t n = Ingestor::replay(
      dir.path(), {"aq", "traffic"},
      [&](const Event& event) { out.push_back(event); });
  ASSERT_EQ(n, in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].topic, in[i].topic) << i;
    EXPECT_EQ(out[i].key, in[i].key) << i;
    EXPECT_EQ(out[i].event_time_us, in[i].event_time_us) << i;
    EXPECT_EQ(out[i].value, in[i].value) << i;
    EXPECT_EQ(out[i].seed, in[i].seed) << i;
    EXPECT_EQ(out[i].punctuation, in[i].punctuation) << i;
  }
}

// ---- app operators --------------------------------------------------------

TEST(Operators, PlumeExceedanceFraction) {
  WindowSpec spec;
  spec.size_us = 1000;
  auto op = make_plume_exceedance_operator("aq", spec, /*limit=*/50.0);
  op->offer(make_event("aq", 0, 100, 80.0));   // exceeds
  op->offer(make_event("aq", 0, 200, 20.0));
  op->offer(make_event("aq", 0, 300, 60.0));   // exceeds
  op->offer(make_event("aq", 0, 400, 40.0));
  std::vector<WindowOutput> out;
  op->advance_watermark(1000, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 0.5);
  EXPECT_EQ(out[0].events, 4u);
}

TEST(Operators, PtdrRerouteSwitchesOffCongestedRoute) {
  auto network = std::make_shared<apps::RoadNetwork>(
      apps::RoadNetwork::make_grid(4, 4, /*seed=*/7));
  WindowSpec spec;
  spec.size_us = 1000;
  PtdrRerouteConfig config;
  config.reroute_threshold = 0.02;
  const std::size_t from = 0;
  const std::size_t to = network->num_nodes() - 1;
  PtdrRerouteOperator op("reroute", "traffic", spec, network, {{from, to}},
                         config);
  const std::vector<std::size_t> initial = op.route(0);
  ASSERT_FALSE(initial.empty());
  // Crawl speeds on every segment of the current route.
  for (const std::size_t seg : initial) {
    op.offer(make_event("traffic", seg, 100, 2.0));
  }
  std::vector<WindowOutput> out;
  op.advance_watermark(1000, &out);
  ASSERT_EQ(out.size(), 1u);  // one output per monitored pair
  EXPECT_GE(op.rerouted(), 1u);
  EXPECT_NE(op.route(0), initial);
  EXPECT_GT(out[0].value, 0.0);  // expected travel seconds of the choice
}

// ---- determinism (TEST_P: eviction policies × same-seed reruns) -----------

/// One full pipeline run: seeded arrival schedule → engine (single lane,
/// so fold order == ingest order) → subscriber; returns the fingerprint
/// of the delivered window outputs. `policy` drives a concurrent data
/// plane + pub/sub publisher whose cache behavior must NOT leak into the
/// window math.
std::uint64_t pipeline_fingerprint(data::EvictionPolicy policy,
                                   std::uint64_t seed) {
  // Concurrent data-plane traffic under the given eviction policy.
  platform::Simulator sim;
  data::PlaneConfig plane_config;
  plane_config.num_nodes = 2;
  plane_config.cache_bytes = 64 * 1024;
  plane_config.eviction = policy;
  data::DataPlane plane(sim, plane_config);
  ShardPublisher publisher(plane);
  publisher.subscribe(1, 1);
  for (int i = 0; i < 8; ++i) {
    publisher.publish(1, 32 * 1024, /*producer=*/0);
    sim.run();
  }

  EngineConfig config;
  StreamEngine engine(config);
  WindowSpec spec;
  spec.kind = WindowKind::kSliding;
  spec.size_us = 40'000;
  spec.slide_us = 20'000;
  spec.allowed_lateness_us = 5'000;
  engine.add_operator(std::make_unique<WindowedOperator>(
      "mean", "aq", spec, mean_accumulator()));
  auto session = engine.subscribe("tenant", "aq");
  EXPECT_TRUE(session.ok());
  engine.start();

  serve::EventStreamSpec stream_spec;
  stream_spec.topics = {"aq"};
  stream_spec.clients = 3;
  stream_spec.events_per_s = 20'000.0;
  stream_spec.duration = std::chrono::milliseconds(200);
  stream_spec.keys_per_topic = 4;
  stream_spec.seed = seed;
  const auto report = serve::run_event_stream(
      [&](const serve::EventArrival& arrival) {
        return engine.ingest(
            make_event(arrival.topic, arrival.key, arrival.event_time_us,
                       arrival.value));
      },
      stream_spec);
  EXPECT_GT(report.admitted, 0u);
  engine.ingest(punctuation("aq", 1'000'000));
  engine.flush();
  std::vector<WindowOutput> outputs;
  for (const Delivery& d : session.value()->drain()) {
    outputs.push_back(d.output);
  }
  engine.stop();
  EXPECT_GT(outputs.size(), 0u);
  return fingerprint(outputs);
}

class StreamDeterminism
    : public ::testing::TestWithParam<data::EvictionPolicy> {};

TEST_P(StreamDeterminism, ByteIdenticalAcrossPoliciesAndReruns) {
  const std::uint64_t seed = 1234;
  const std::uint64_t first = pipeline_fingerprint(GetParam(), seed);
  const std::uint64_t second = pipeline_fingerprint(GetParam(), seed);
  EXPECT_EQ(first, second) << "same-seed rerun diverged";

  // Cross-policy: every parameterization must produce the same bytes
  // (the cache policy can move data, never change analytics).
  static std::map<std::uint64_t, std::uint64_t> baseline;
  auto [it, inserted] = baseline.emplace(seed, first);
  if (!inserted) {
    EXPECT_EQ(first, it->second) << "fingerprint depends on eviction policy";
  }

  // A different seed must (overwhelmingly) give different bytes —
  // guards against a fingerprint that ignores its input.
  EXPECT_NE(pipeline_fingerprint(GetParam(), seed + 1), first);
}

INSTANTIATE_TEST_SUITE_P(Policies, StreamDeterminism,
                         ::testing::Values(data::EvictionPolicy::kLru,
                                           data::EvictionPolicy::kLfu,
                                           data::EvictionPolicy::kCostAware),
                         [](const auto& info) {
                           std::string name(data::to_string(info.param));
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---- pub/sub delta propagation --------------------------------------------

TEST(ShardPublisher, DeltaPushWarmsSubscriberCacheAtNewVersion) {
  platform::Simulator sim;
  data::PlaneConfig config;
  config.num_nodes = 3;
  config.cache_bytes = 8.0 * 1024 * 1024;
  data::DataPlane plane(sim, config);
  ShardPublisher publisher(plane);

  const data::ObjectId object = 42;
  publisher.subscribe(object, /*node=*/2);
  ASSERT_TRUE(publisher.publish(object, 1024.0 * 1024, /*producer=*/0).ok());
  sim.run();  // delta transfers arrive

  const data::DataObject* obj = plane.find(object);
  ASSERT_NE(obj, nullptr);
  // The subscriber's cache answers at the CURRENT version — no refetch.
  for (const data::ShardKey& key : obj->keys()) {
    EXPECT_TRUE(plane.cache(2).contains(key)) << key.to_string();
  }
  const PublishStats& stats = publisher.stats();
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_GT(stats.deltas_pushed, 0u);
  EXPECT_EQ(stats.deltas_arrived, stats.deltas_pushed);
  EXPECT_LT(stats.delta_bytes, stats.full_bytes);

  // Republishing bumps the version; the old cached keys go stale and
  // the push re-warms at the new version.
  const std::uint64_t old_version = obj->version;
  ASSERT_TRUE(publisher.publish(object, 1024.0 * 1024, /*producer=*/0).ok());
  sim.run();
  obj = plane.find(object);
  ASSERT_NE(obj, nullptr);
  EXPECT_GT(obj->version, old_version);
  for (const data::ShardKey& key : obj->keys()) {
    EXPECT_TRUE(plane.cache(2).contains(key));
  }
}

// ---- multi-producer loss-freedom (the TSan gate exercises this) -----------

TEST(StreamEngine, ConcurrentProducersLoseNothingAdmitted) {
  EngineConfig config;
  config.ingest.queue_capacity = 1 << 16;
  StreamEngine engine(config);
  WindowSpec spec;
  spec.size_us = 1'000'000;
  engine.add_operator(std::make_unique<WindowedOperator>(
      "count", "aq", spec, count_accumulator()));
  auto session = engine.subscribe("t", "aq");
  ASSERT_TRUE(session.ok());
  engine.start();

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<std::uint64_t> admitted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Event event = make_event(
            "aq", static_cast<std::uint64_t>(p),
            1 + static_cast<std::uint64_t>(i), 1.0);
        if (engine.ingest(std::move(event)).ok()) {
          admitted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  engine.ingest(punctuation("aq", 2'000'000));
  engine.flush();
  EXPECT_EQ(engine.stats().events_processed, admitted.load());
  // Every admitted event landed in some window.
  std::uint64_t folded = 0;
  for (const Delivery& d : session.value()->drain()) {
    folded += d.output.events;
  }
  EXPECT_EQ(folded, admitted.load());
  engine.stop();
}

// ---- crash-mid-window failover replay -------------------------------------

struct FailoverRun {
  std::vector<WindowOutput> delivered;
  std::uint64_t fp = 0;
};

/// Drives one topic through the fabric; when `crash_at` is nonzero the
/// home node fail-stops after the event whose index equals it (mid-
/// window) and the fabric re-homes the topic before the rest of the
/// schedule flows. The client acks after every delivery.
FailoverRun run_failover_scenario(const std::string& wal_root,
                                  std::size_t crash_at) {
  FabricConfig config;
  config.num_nodes = 2;
  config.wal_root = wal_root;
  config.engine.ingest.wal.sync_every = 1;
  StreamFabric fabric(config);
  WindowSpec spec;
  spec.size_us = 10'000;
  EXPECT_TRUE(fabric
                  .register_topic("aq",
                                  [spec] {
                                    return std::make_unique<WindowedOperator>(
                                        "mean", "aq", spec,
                                        mean_accumulator());
                                  })
                  .ok());
  fabric.start();
  auto session = fabric.subscribe("tenant", "aq");
  EXPECT_TRUE(session.ok());
  const std::size_t home_before = fabric.home_of("aq").value();

  FailoverRun run;
  auto consume = [&] {
    for (const Delivery& d : session.value()->drain()) {
      run.delivered.push_back(d.output);
      session.value()->ack(d.output.window_end_us);
    }
  };

  // 60 events, one per ms: six full windows plus a seventh in flight.
  Rng rng(99);
  for (std::size_t i = 0; i < 60; ++i) {
    Event event = make_event("aq", i % 3, (i + 1) * 1000, rng.uniform(0, 50));
    EXPECT_TRUE(fabric.ingest(std::move(event)).ok());
    if ((i + 1) % 10 == 0) {
      fabric.flush();
      consume();
    }
    if (crash_at != 0 && i + 1 == crash_at) {
      fabric.flush();
      consume();
      fabric.crash(home_before);
      EXPECT_EQ(fabric.handle_failover(), std::vector<std::string>{"aq"});
      EXPECT_NE(fabric.home_of("aq").value(), home_before);
    }
  }
  Event final_punctuation = punctuation("aq", 100'000);
  EXPECT_TRUE(fabric.ingest(std::move(final_punctuation)).ok());
  fabric.flush();
  consume();
  fabric.stop();
  run.fp = fingerprint(run.delivered);
  return run;
}

TEST(StreamFabric, CrashMidWindowReplayIsByteIdentical) {
  TempDir base("failover");
  const std::string baseline_root = base.path() + "/baseline";
  const std::string crashed_root = base.path() + "/crashed";
  fs::create_directories(baseline_root);
  fs::create_directories(crashed_root);

  const FailoverRun baseline =
      run_failover_scenario(baseline_root, /*crash_at=*/0);
  // Crash at event 35: window [30000,40000) is mid-flight.
  const FailoverRun crashed =
      run_failover_scenario(crashed_root, /*crash_at=*/35);

  ASSERT_GT(baseline.delivered.size(), 0u);
  ASSERT_EQ(baseline.delivered.size(), crashed.delivered.size());
  EXPECT_EQ(baseline.fp, crashed.fp)
      << "client-visible outputs diverged across crash+failover replay";
}

TEST(StreamFabric, IngestUnavailableWhileHomeDown) {
  FabricConfig config;
  config.num_nodes = 2;
  StreamFabric fabric(config);
  WindowSpec spec;
  ASSERT_TRUE(fabric
                  .register_topic("aq",
                                  [spec] {
                                    return std::make_unique<WindowedOperator>(
                                        "count", "aq", spec,
                                        count_accumulator());
                                  })
                  .ok());
  fabric.start();
  const std::size_t home = fabric.home_of("aq").value();
  fabric.crash(home);
  const Status status = fabric.ingest(make_event("aq", 0, 100, 1.0));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  fabric.handle_failover();
  EXPECT_TRUE(fabric.ingest(make_event("aq", 0, 200, 1.0)).ok());
  fabric.stop();
}

// ---- event-stream loadgen (satellite) -------------------------------------

TEST(EventStreamLoadgen, ScheduleIsDeterministicAndOrdered) {
  serve::EventStreamSpec spec;
  spec.topics = {"aq", "traffic"};
  spec.clients = 3;
  spec.events_per_s = 5000.0;
  spec.duration = std::chrono::milliseconds(100);
  spec.seed = 7;
  const auto a = serve::generate_event_arrivals(spec);
  const auto b = serve::generate_event_arrivals(spec);
  ASSERT_GT(a.size(), 100u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].event_time_us, b[i].event_time_us);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].seed, b[i].seed);
    if (i > 0) {
      EXPECT_GE(a[i].event_time_us, a[i - 1].event_time_us);
    }
  }
  // All clients contributed.
  std::set<int> clients;
  for (const auto& arrival : a) clients.insert(arrival.client);
  EXPECT_EQ(clients.size(), 3u);

  spec.seed = 8;
  const auto c = serve::generate_event_arrivals(spec);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].event_time_us != c[i].event_time_us || a[i].key != c[i].key;
  }
  EXPECT_TRUE(differs) << "seed does not drive the schedule";
}

TEST(EventStreamLoadgen, BurstModeClustersArrivals) {
  serve::EventStreamSpec spec;
  spec.topics = {"aq"};
  spec.clients = 1;
  spec.events_per_s = 10'000.0;
  spec.duration = std::chrono::milliseconds(100);
  spec.arrival = serve::EventStreamSpec::Arrival::kBurst;
  spec.burst_len = 16;
  const auto schedule = serve::generate_event_arrivals(spec);
  ASSERT_GT(schedule.size(), 32u);
  // Intra-burst gaps are a (1 + idle_factor)× compression of the base
  // gap; inter-burst gaps are idle_factor × burst span. Count both.
  std::size_t tight = 0, wide = 0;
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    const std::uint64_t gap =
        schedule[i].event_time_us - schedule[i - 1].event_time_us;
    if (gap <= 40) ++tight;
    if (gap >= 1000) ++wide;
  }
  EXPECT_GT(tight, schedule.size() / 2);
  EXPECT_GT(wide, 0u);
}

}  // namespace
}  // namespace everest::stream
