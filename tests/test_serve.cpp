// Tests for the serving layer: queue admission/backpressure, SLA-priority
// ordering, batch-formation boundaries (size-1 timeout flush, full-batch
// flush), deadline expiry, thread-pool basics, metrics, a TEST_P sweep
// over SLA mixes, and a multi-producer smoke test asserting no request is
// lost or duplicated. Timing assertions are deliberately loose: CI may
// run on one core, so tests check ordering and accounting, not speed.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace everest::serve {
namespace {

PendingRequest make_pending(const std::string& kernel, SlaClass sla,
                            std::uint64_t id = 0) {
  PendingRequest pending;
  pending.request.id = id;
  pending.request.kernel = kernel;
  pending.request.sla = sla;
  pending.request.enqueue_time = Clock::now();
  return pending;
}

/// A cheap deterministic endpoint for server tests: value = seed % 1000,
/// so responses are verifiable without running the heavy app kernels.
Endpoint test_endpoint(const std::string& kernel = "test_kernel") {
  Endpoint ep;
  ep.kernel = kernel;
  compiler::Variant v;
  v.id = kernel + "-cpu";
  v.kernel = kernel;
  v.target = compiler::TargetKind::kCpu;
  v.latency_us = 50.0;
  v.energy_uj = 100.0;
  ep.variants = {v};
  ep.handler = [](const Batch& batch, std::vector<double>* values) {
    values->clear();
    for (const PendingRequest& pending : batch.requests) {
      values->push_back(static_cast<double>(pending.request.seed % 1000));
    }
    return OkStatus();
  };
  return ep;
}

// ---------------------------------------------------------------- queue

TEST(RequestQueue, AdmitsUpToCapacityThenRejects) {
  RequestQueue queue(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.push(make_pending("k", SlaClass::kThroughput)).ok());
  }
  // Admission control: 5th and 6th bounce with RESOURCE_EXHAUSTED.
  for (int i = 0; i < 2; ++i) {
    Status st = queue.push(make_pending("k", SlaClass::kThroughput));
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(queue.size(), 4u);
  // Popping one frees one admission slot.
  EXPECT_TRUE(queue.pop(std::chrono::microseconds(1000)).has_value());
  EXPECT_TRUE(queue.push(make_pending("k", SlaClass::kThroughput)).ok());
}

TEST(RequestQueue, LatencyCriticalPopsFirst) {
  RequestQueue queue(8);
  ASSERT_TRUE(queue.push(make_pending("k", SlaClass::kThroughput, 1)).ok());
  ASSERT_TRUE(queue.push(make_pending("k", SlaClass::kThroughput, 2)).ok());
  ASSERT_TRUE(
      queue.push(make_pending("k", SlaClass::kLatencyCritical, 3)).ok());
  auto first = queue.pop(std::chrono::microseconds(1000));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.id, 3u);  // LC lane jumps the TP backlog
  auto second = queue.pop(std::chrono::microseconds(1000));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request.id, 1u);  // then FIFO within the TP lane
}

TEST(RequestQueue, PopCompatibleMatchesKernelAndClass) {
  RequestQueue queue(8);
  ASSERT_TRUE(queue.push(make_pending("a", SlaClass::kThroughput, 1)).ok());
  ASSERT_TRUE(queue.push(make_pending("b", SlaClass::kThroughput, 2)).ok());
  ASSERT_TRUE(
      queue.push(make_pending("b", SlaClass::kLatencyCritical, 3)).ok());
  EXPECT_FALSE(queue.pop_compatible("c", SlaClass::kThroughput).has_value());
  auto hit = queue.pop_compatible("b", SlaClass::kThroughput);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->request.id, 2u);  // not the LC "b" request
  EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueue, CloseRejectsProducersAndUnblocksConsumers) {
  RequestQueue queue(4);
  queue.close();
  EXPECT_EQ(queue.push(make_pending("k", SlaClass::kThroughput)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(queue.pop(std::chrono::microseconds(100)).has_value());
}

// -------------------------------------------------------------- batcher

TEST(Batcher, FullBatchFlushesAtMaxSize) {
  RequestQueue queue(32);
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait = std::chrono::microseconds(200000);  // generous
  Batcher batcher(&queue, policy);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.push(make_pending("k", SlaClass::kThroughput,
                                        static_cast<std::uint64_t>(i)))
                    .ok());
  }
  Batch batch;
  ASSERT_TRUE(batcher.next_batch(&batch));
  // Enough compatible requests queued: flushes at max_batch immediately,
  // long before max_wait.
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.kernel, "k");
  ASSERT_TRUE(batcher.next_batch(&batch));
  EXPECT_EQ(batch.size(), 2u);
}

TEST(Batcher, LoneRequestFlushesAtSizeOneOnTimeout) {
  RequestQueue queue(32);
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait = std::chrono::microseconds(2000);
  Batcher batcher(&queue, policy);
  ASSERT_TRUE(queue.push(make_pending("k", SlaClass::kThroughput)).ok());
  Batch batch;
  const auto start = Clock::now();
  ASSERT_TRUE(batcher.next_batch(&batch));
  const auto waited = Clock::now() - start;
  EXPECT_EQ(batch.size(), 1u);
  // It must have waited out the policy (>= max_wait, with slack for a
  // loaded machine on the upper side which we don't bound).
  EXPECT_GE(waited, std::chrono::microseconds(1500));
}

TEST(Batcher, DoesNotMixKernelsOrClasses) {
  RequestQueue queue(32);
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.lc_max_batch = 2;
  policy.max_wait = std::chrono::microseconds(1000);
  Batcher batcher(&queue, policy);
  ASSERT_TRUE(queue.push(make_pending("a", SlaClass::kThroughput, 1)).ok());
  ASSERT_TRUE(queue.push(make_pending("b", SlaClass::kThroughput, 2)).ok());
  ASSERT_TRUE(queue.push(make_pending("a", SlaClass::kThroughput, 3)).ok());
  Batch batch;
  ASSERT_TRUE(batcher.next_batch(&batch));
  EXPECT_EQ(batch.kernel, "a");
  EXPECT_EQ(batch.size(), 2u);  // ids 1 and 3; "b" stays queued
  for (const PendingRequest& pending : batch.requests) {
    EXPECT_EQ(pending.request.kernel, "a");
  }
  ASSERT_TRUE(batcher.next_batch(&batch));
  EXPECT_EQ(batch.kernel, "b");
  EXPECT_EQ(batch.size(), 1u);
}

TEST(Batcher, LatencyCriticalCapIsSmaller) {
  RequestQueue queue(32);
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.lc_max_batch = 2;
  policy.max_wait = std::chrono::microseconds(200000);
  Batcher batcher(&queue, policy);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        queue.push(make_pending("k", SlaClass::kLatencyCritical)).ok());
  }
  Batch batch;
  ASSERT_TRUE(batcher.next_batch(&batch));
  EXPECT_EQ(batch.sla, SlaClass::kLatencyCritical);
  EXPECT_EQ(batch.size(), 2u);  // capped at lc_max_batch, not max_batch
}

// ---------------------------------------------------------- thread pool

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(pool.pending(), 0u);
  // Pool is reusable after wait_idle.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 201);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor = shutdown: must have drained, not dropped
  EXPECT_EQ(counter.load(), 50);
}

// -------------------------------------------------------------- metrics

TEST(ServingMetrics, SnapshotAggregates) {
  ServingMetrics metrics;
  metrics.record_submitted();
  metrics.record_submitted();
  metrics.record_admitted(3);
  metrics.record_rejected();
  metrics.record_batch(4, 1000.0);
  metrics.record_batch(2, 500.0);
  for (int i = 1; i <= 100; ++i) {
    metrics.record_completion(SlaClass::kThroughput, i * 10.0);
  }
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.submitted, 2u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.completed, 100u);
  EXPECT_DOUBLE_EQ(snap.rejection_rate(), 0.5);
  EXPECT_NEAR(snap.p50_us, 505.0, 10.0);
  EXPECT_NEAR(snap.p99_us, 991.0, 10.0);
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size, 3.0);
  EXPECT_EQ(snap.batch_histogram.at(4), 1u);
  EXPECT_EQ(snap.max_queue_depth, 3u);
  metrics.reset();
  EXPECT_EQ(metrics.snapshot().submitted, 0u);
}

// --------------------------------------------------------------- server

TEST(Server, RejectsBadConfigurations) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  Server server(options, &kb);
  EXPECT_EQ(server.start().code(), StatusCode::kFailedPrecondition);  // empty
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  EXPECT_EQ(server.register_endpoint(test_endpoint()).code(),
            StatusCode::kAlreadyExists);
  Request before;
  before.kernel = "test_kernel";
  EXPECT_EQ(server.submit(before, nullptr).code(),
            StatusCode::kFailedPrecondition);  // not started
  ASSERT_TRUE(server.start().ok());
  Request unknown;
  unknown.kernel = "nope";
  EXPECT_EQ(server.submit(unknown, nullptr).code(), StatusCode::kNotFound);
  server.stop();
}

TEST(Server, ServesRequestsEndToEnd) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 2;
  options.batch.max_batch = 4;
  options.batch.max_wait = std::chrono::microseconds(500);
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  std::mutex mu;
  std::vector<Response> responses;
  for (std::uint64_t i = 0; i < 20; ++i) {
    Request request;
    request.kernel = "test_kernel";
    request.seed = 100 + i;
    ASSERT_TRUE(server
                    .submit(request,
                            [&](const Response& response) {
                              std::lock_guard<std::mutex> lock(mu);
                              responses.push_back(response);
                            })
                    .ok());
  }
  server.drain();
  server.stop();

  ASSERT_EQ(responses.size(), 20u);
  for (const Response& response : responses) {
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    EXPECT_GE(response.value, 100.0);  // seed % 1000 for seeds 100..119
    EXPECT_LE(response.value, 119.0);
    EXPECT_GE(response.batch_size, 1u);
    EXPECT_GT(response.latency_us, 0.0);
    EXPECT_EQ(response.variant_id, "test_kernel-cpu");
  }
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.completed, 20u);
  EXPECT_EQ(snap.rejected, 0u);
  // The measured service times must have reached the knowledge base
  // (Fig. 2 feedback loop) — one observation per dispatched batch.
  EXPECT_EQ(kb.observation_count("test_kernel", "test_kernel-cpu"),
            static_cast<int>(snap.batches));
}

TEST(Server, ExpiredRequestsAreDroppedNotExecuted) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  std::mutex mu;
  std::vector<Status> statuses;
  Request request;
  request.kernel = "test_kernel";
  request.deadline = Clock::now() - std::chrono::milliseconds(1);  // past
  ASSERT_TRUE(server
                  .submit(request,
                          [&](const Response& response) {
                            std::lock_guard<std::mutex> lock(mu);
                            statuses.push_back(response.status);
                          })
                  .ok());
  server.drain();
  server.stop();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.metrics().snapshot().expired, 1u);
  EXPECT_EQ(server.metrics().snapshot().completed, 0u);
}

TEST(Server, AdmissionControlBouncesOverload) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.queue_capacity = 2;
  options.worker_threads = 1;
  // Slow handler so the queue genuinely fills.
  Server server(options, &kb);
  Endpoint slow = test_endpoint();
  slow.handler = [](const Batch& batch, std::vector<double>* values) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    values->assign(batch.size(), 1.0);
    return OkStatus();
  };
  ASSERT_TRUE(server.register_endpoint(std::move(slow)).ok());
  ASSERT_TRUE(server.start().ok());

  int rejected = 0;
  std::atomic<int> delivered{0};
  for (int i = 0; i < 40; ++i) {
    Request request;
    request.kernel = "test_kernel";
    const Status status =
        server.submit(request, [&](const Response&) { delivered++; });
    if (status.code() == StatusCode::kResourceExhausted) ++rejected;
  }
  server.drain();
  server.stop();
  EXPECT_GT(rejected, 0);  // bounded queue pushed back
  // Every admitted request got exactly one response.
  EXPECT_EQ(delivered.load(), 40 - rejected);
}

// ------------------------------------------------ SLA-mix TEST_P sweep

class SlaMixTest : public ::testing::TestWithParam<double> {};

TEST_P(SlaMixTest, AllRequestsAccountedAtEveryMix) {
  const double lc_fraction = GetParam();
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 512;
  options.batch.max_batch = 8;
  options.batch.max_wait = std::chrono::microseconds(300);
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  WorkloadSpec spec;
  spec.kernels = {"test_kernel"};
  spec.offered_rps = 2000.0;
  spec.duration = std::chrono::milliseconds(100);
  spec.lc_fraction = lc_fraction;
  spec.lc_deadline_ms = 0.0;  // no expiry: accounting must be exact
  spec.tp_deadline_ms = 0.0;
  spec.seed = 7;
  const LoadReport report = run_open_loop(server, spec);
  server.stop();

  EXPECT_GT(report.offered, 0u);
  // Conservation: every offered request is exactly one of
  // completed / rejected / failed.
  EXPECT_EQ(report.completed + report.rejected + report.failed,
            report.offered);
  EXPECT_EQ(report.expired, 0u);
  if (lc_fraction == 0.0) {
    EXPECT_TRUE(report.latencies_us[0].empty());
  }
  if (lc_fraction == 1.0) {
    EXPECT_TRUE(report.latencies_us[1].empty());
  }
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.completed, report.completed);
  EXPECT_EQ(snap.rejected, report.rejected);
}

INSTANTIATE_TEST_SUITE_P(Mixes, SlaMixTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// ------------------------------------------- multi-producer smoke test

TEST(Server, EightProducersNoLostOrDuplicatedRequests) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  options.batch.max_batch = 16;
  options.batch.max_wait = std::chrono::microseconds(200);
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 100;
  std::mutex mu;
  std::multiset<std::uint64_t> seen_seeds;
  std::atomic<int> admitted{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Request request;
        request.kernel = "test_kernel";
        // Unique seed encodes (producer, index) so duplicates are visible.
        request.seed = static_cast<std::uint64_t>(p) * 1000000 +
                       static_cast<std::uint64_t>(i);
        Status status = server.submit(request, [&](const Response& response) {
          std::lock_guard<std::mutex> lock(mu);
          seen_seeds.insert(response.id);
        });
        if (status.ok()) admitted.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.drain();
  server.stop();

  // No losses: every admitted request completed. Capacity 4096 > 800, so
  // nothing should have been rejected either.
  EXPECT_EQ(admitted.load(), kProducers * kPerProducer);
  ASSERT_EQ(seen_seeds.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  // No duplicates: server-assigned ids are unique.
  std::set<std::uint64_t> unique_ids(seen_seeds.begin(), seen_seeds.end());
  EXPECT_EQ(unique_ids.size(), seen_seeds.size());
}

// ------------------------------------- graceful degradation (breakers)

/// test_endpoint() plus a faster FPGA variant, so selection prefers the
/// FPGA until its breaker trips.
Endpoint dual_variant_endpoint(const std::string& kernel = "dual_kernel") {
  Endpoint ep = test_endpoint(kernel);
  compiler::Variant fpga;
  fpga.id = kernel + "-fpga";
  fpga.kernel = kernel;
  fpga.target = compiler::TargetKind::kFpga;
  fpga.latency_us = 10.0;
  fpga.energy_uj = 20.0;
  ep.variants.push_back(std::move(fpga));
  return ep;
}

TEST(Server, TrippedBreakerDegradesToCpuButKeepsServing) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.open_cooldown_us = 1e12;  // no half-open probe in-test
  // Every batch routed to the FPGA variant fails (dead slot model); the
  // CPU variant keeps working.
  options.fault_injector = [](const Batch&, const compiler::Variant& v) {
    if (v.target == compiler::TargetKind::kFpga) {
      return Unavailable("injected: FPGA slot failed");
    }
    return OkStatus();
  };
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(dual_variant_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  std::mutex mu;
  std::vector<Response> responses;
  for (std::uint64_t i = 0; i < 10; ++i) {
    Request request;
    request.kernel = "dual_kernel";
    request.seed = i;
    ASSERT_TRUE(server
                    .submit(request,
                            [&](const Response& response) {
                              std::lock_guard<std::mutex> lock(mu);
                              responses.push_back(response);
                            })
                    .ok());
    server.drain();  // one request per batch: deterministic breaker path
  }
  const bool degraded_mode = server.degraded();
  const int open = server.breakers().open_count("dual_kernel");
  server.stop();

  ASSERT_EQ(responses.size(), 10u);
  std::size_t failed = 0;
  std::size_t degraded_ok = 0;
  for (const Response& response : responses) {
    if (!response.status.ok()) {
      ++failed;
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
    } else if (response.degraded) {
      ++degraded_ok;
      EXPECT_EQ(response.variant_id, "dual_kernel-cpu");  // FPGA withheld
    }
  }
  // Three failures trip the FPGA breaker; everything after is served
  // successfully on the CPU fallback, flagged degraded.
  EXPECT_EQ(failed, 3u);
  EXPECT_EQ(degraded_ok, 7u);
  EXPECT_TRUE(degraded_mode);
  EXPECT_EQ(open, 1);
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.completed, 7u);
  EXPECT_EQ(snap.failed, 3u);
  EXPECT_EQ(snap.degraded, 7u);
}

TEST(Server, AllVariantsTrippedReturnsUnavailable) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_cooldown_us = 1e12;
  options.fault_injector = [](const Batch&, const compiler::Variant&) {
    return Unavailable("injected: everything is on fire");
  };
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  std::mutex mu;
  std::vector<Status> statuses;
  for (std::uint64_t i = 0; i < 6; ++i) {
    Request request;
    request.kernel = "test_kernel";
    request.sla = SlaClass::kLatencyCritical;  // not shed at admission
    ASSERT_TRUE(server
                    .submit(request,
                            [&](const Response& response) {
                              std::lock_guard<std::mutex> lock(mu);
                              statuses.push_back(response.status);
                            })
                    .ok());
    server.drain();
  }
  server.stop();

  ASSERT_EQ(statuses.size(), 6u);
  // First two fail on the variant itself; once its breaker opens, the only
  // variant is withheld and requests answer UNAVAILABLE without running.
  for (const Status& status : statuses) {
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  }
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.failed, 2u);
  EXPECT_EQ(snap.unavailable, 4u);
  EXPECT_EQ(snap.completed, 0u);
}

TEST(Server, DegradedModeShedsThroughputClassAtAdmission) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  options.breaker.failure_threshold = 1;
  options.breaker.open_cooldown_us = 1e12;
  options.degraded_shed_fill = 0.0;  // shed all TP traffic while degraded
  options.fault_injector = [](const Batch&, const compiler::Variant&) {
    return Unavailable("injected");
  };
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  // One failing request trips the single variant's breaker.
  Request tripper;
  tripper.kernel = "test_kernel";
  tripper.sla = SlaClass::kLatencyCritical;
  ASSERT_TRUE(server.submit(tripper, nullptr).ok());
  server.drain();
  ASSERT_TRUE(server.degraded());

  // Throughput-class traffic now bounces at the front door...
  Request bulk;
  bulk.kernel = "test_kernel";
  bulk.sla = SlaClass::kThroughput;
  EXPECT_EQ(server.submit(bulk, nullptr).code(), StatusCode::kUnavailable);
  // ...while latency-critical traffic is still admitted.
  Request urgent;
  urgent.kernel = "test_kernel";
  urgent.sla = SlaClass::kLatencyCritical;
  EXPECT_TRUE(server.submit(urgent, nullptr).ok());
  server.drain();
  server.stop();
  EXPECT_GE(server.metrics().snapshot().unavailable, 2u);
}

// ----------------------------------------- real use-case endpoint smoke

// ---------------------------------------------------------- input cache

TEST(Server, InputCacheWarmsRepeatedDataKeys) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  options.batch.max_batch = 1;  // one request per batch: per-request keys
  options.input_cache.capacity_bytes = 8.0 * 1024 * 1024;
  options.input_stage_scale = 0.0;  // account the stall, don't sleep it
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  for (int i = 0; i < 10; ++i) {
    Request request;
    request.kernel = "test_kernel";
    request.data_key = "tenant-a/hot";  // the same object every time
    request.input_bytes = 64.0 * 1024;
    ASSERT_TRUE(server.submit(request, [](const Response&) {}).ok());
    server.drain();  // serialize batches so the first insert is visible
  }
  server.stop();
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.input_misses, 1u);  // only the first read paid the link
  EXPECT_EQ(snap.input_hits, 9u);
  EXPECT_GT(snap.input_hit_rate(), 0.85);
  EXPECT_GT(snap.input_stall_us, 0.0);
}

TEST(Server, ColdInputPathMissesEveryTime) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  options.batch.max_batch = 1;
  // Default input_cache capacity is 0: the cold path, every keyed
  // request pays its input transfer.
  options.input_stage_scale = 0.0;
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  for (int i = 0; i < 5; ++i) {
    Request request;
    request.kernel = "test_kernel";
    request.data_key = "tenant-a/hot";
    request.input_bytes = 64.0 * 1024;
    ASSERT_TRUE(server.submit(request, [](const Response&) {}).ok());
  }
  server.drain();
  server.stop();
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.input_hits, 0u);
  EXPECT_GE(snap.input_misses, 1u);
  EXPECT_DOUBLE_EQ(snap.input_hit_rate(), 0.0);
}

TEST(Server, UnkeyedRequestsSkipInputStaging) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  options.input_cache.capacity_bytes = 8.0 * 1024 * 1024;
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());
  for (int i = 0; i < 5; ++i) {
    Request request;
    request.kernel = "test_kernel";  // no data_key
    ASSERT_TRUE(server.submit(request, [](const Response&) {}).ok());
  }
  server.drain();
  server.stop();
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.input_hits + snap.input_misses, 0u);
  EXPECT_DOUBLE_EQ(snap.input_stall_us, 0.0);
}

TEST(Server, WarmInputPreseedsCacheWithoutStall) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  options.batch.max_batch = 1;
  options.input_cache.capacity_bytes = 8.0 * 1024 * 1024;
  options.input_stage_scale = 0.0;
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  // Re-seed the entry a recovery replay would restore: the very first
  // request is already a hit — the restart-to-warm path.
  const data::ShardKey key{data::object_id_from_name("tenant-a/hot"), 0, 0};
  server.warm_input(key, 64.0 * 1024);
  EXPECT_GT(server.input_cache_resident_bytes(), 0.0);

  for (int i = 0; i < 5; ++i) {
    Request request;
    request.kernel = "test_kernel";
    request.data_key = "tenant-a/hot";
    request.input_bytes = 64.0 * 1024;
    ASSERT_TRUE(server.submit(request, [](const Response&) {}).ok());
    server.drain();
  }
  server.stop();
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.input_misses, 0u);
  EXPECT_EQ(snap.input_hits, 5u);
  EXPECT_DOUBLE_EQ(snap.input_stall_us, 0.0);
}

TEST(Server, InputStagedObserverSeesColdStagingsOnly) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 1;
  options.batch.max_batch = 1;
  options.input_cache.capacity_bytes = 8.0 * 1024 * 1024;
  options.input_stage_scale = 0.0;
  std::mutex mu;
  std::vector<std::pair<data::ShardKey, double>> staged;
  options.on_input_staged = [&](const data::ShardKey& key, double bytes,
                                double) {
    std::lock_guard<std::mutex> lock(mu);
    staged.push_back({key, bytes});
  };
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  const auto send = [&](const std::string& key) {
    Request request;
    request.kernel = "test_kernel";
    request.data_key = key;
    request.input_bytes = 32.0 * 1024;
    ASSERT_TRUE(server.submit(request, [](const Response&) {}).ok());
    server.drain();
  };
  send("obj-a");
  send("obj-a");  // warm: no staging, no callback
  send("obj-b");
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(staged.size(), 2u);  // one cold staging per distinct key
    EXPECT_EQ(staged[0].first.object, data::object_id_from_name("obj-a"));
    EXPECT_DOUBLE_EQ(staged[0].second, 32.0 * 1024);
    EXPECT_EQ(staged[1].first.object, data::object_id_from_name("obj-b"));
  }

  // Process death drops the staged inputs; the next read is cold again
  // and the observer (the WAL, in the federation) sees it again.
  server.clear_input_cache();
  EXPECT_DOUBLE_EQ(server.input_cache_resident_bytes(), 0.0);
  send("obj-a");
  server.stop();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(staged.size(), 3u);
}

TEST(Endpoints, StandardEndpointsServeRealWork) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.worker_threads = 2;
  options.batch.max_batch = 4;
  Server server(options, &kb);
  for (Endpoint& ep : standard_endpoints()) {
    ASSERT_TRUE(server.register_endpoint(std::move(ep)).ok());
  }
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(kb.kernels().size(), 3u);

  std::mutex mu;
  std::map<std::string, std::vector<double>> values_by_kernel;
  const std::vector<std::string> kernels = {"energy_forecast",
                                            "aq_dispersion", "ptdr_route"};
  for (std::uint64_t i = 0; i < 12; ++i) {
    Request request;
    request.kernel = kernels[i % kernels.size()];
    request.seed = 1000 + i;
    const std::string kernel = request.kernel;
    ASSERT_TRUE(server
                    .submit(request,
                            [&, kernel](const Response& response) {
                              ASSERT_TRUE(response.status.ok())
                                  << response.status.to_string();
                              std::lock_guard<std::mutex> lock(mu);
                              values_by_kernel[kernel].push_back(
                                  response.value);
                            })
                    .ok());
  }
  server.drain();
  server.stop();

  ASSERT_EQ(values_by_kernel.size(), 3u);
  for (double mw : values_by_kernel["energy_forecast"]) {
    EXPECT_GT(mw, 0.0);  // some wind somewhere
  }
  for (double p : values_by_kernel["aq_dispersion"]) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);  // exceedance probability
  }
  for (double s : values_by_kernel["ptdr_route"]) {
    EXPECT_GT(s, 0.0);  // median route time in seconds
  }
}

// ------------------------------------------------------- graceful drain

TEST(Server, GracefulDrainSealsAdmissionAndDeliversEveryAdmitted) {
  runtime::KnowledgeBase kb;
  ServerOptions options;
  options.queue_capacity = 1024;
  options.worker_threads = 2;
  options.batch.max_batch = 4;
  Server server(options, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());

  // Four producers hammer the server; each exits on the first UNAVAILABLE
  // (the drain seal), like a client whose connection got a GOAWAY.
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0;; ++i) {
        Request request;
        request.kernel = "test_kernel";
        request.seed = static_cast<std::uint64_t>(p) * 100000 + i;
        Status st = server.submit(std::move(request), [&](const Response&) {
          delivered.fetch_add(1, std::memory_order_relaxed);
        });
        if (st.code() == StatusCode::kUnavailable) return;  // sealed
        if (st.ok()) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint64_t drained = server.drain_gracefully();
  EXPECT_TRUE(server.draining());
  for (std::thread& t : producers) t.join();

  // Everything admitted was delivered; nothing snuck in after. A submit
  // racing the seal may be admitted just after drain_gracefully's
  // fixpoint read, so its delivery can trail the drain by a moment —
  // poll briefly before asserting the books balance.
  const auto books = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (delivered.load() != accepted.load() &&
         std::chrono::steady_clock::now() < books) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), accepted.load());
  EXPECT_GT(delivered.load(), 0u);
  EXPECT_GT(drained, 0u);  // the drain overlapped in-flight work

  // Sealed: a fresh submit bounces without firing its callback.
  Request late;
  late.kernel = "test_kernel";
  bool fired = false;
  EXPECT_EQ(server.submit(std::move(late),
                          [&](const Response&) { fired = true; })
                .code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(fired);

  // resume_admission reopens the front door (the rejoin path).
  server.resume_admission();
  EXPECT_FALSE(server.draining());
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Request fresh;
  fresh.kernel = "test_kernel";
  fresh.seed = 123;
  ASSERT_TRUE(server
                  .submit(std::move(fresh),
                          [&](const Response& response) {
                            EXPECT_TRUE(response.status.ok());
                            EXPECT_EQ(response.value, 123.0);
                            std::lock_guard<std::mutex> lock(mu);
                            done = true;
                            cv.notify_one();
                          })
                  .ok());
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10), [&] { return done; });
  EXPECT_TRUE(done);
  server.stop();
}

TEST(Server, GracefulDrainOnIdleServerReturnsZero) {
  runtime::KnowledgeBase kb;
  Server server(ServerOptions{}, &kb);
  ASSERT_TRUE(server.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.drain_gracefully(), 0u);
  server.resume_admission();
  server.stop();
  // Not running: a no-op, not a hang.
  EXPECT_EQ(server.drain_gracefully(), 0u);
}

// ------------------------------------------- loadgen submit-fn plumbing

/// Test double standing in for a server/cluster: replies inline and
/// records every data key per submitting thread-agnostic stream.
struct RecordingTarget {
  std::mutex mu;
  std::vector<std::string> keys;
  std::atomic<bool> drained{false};

  SubmitFn submit_fn() {
    return [this](Request request, ResponseCallback on_done) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!request.data_key.empty()) keys.push_back(request.data_key);
      }
      Response response;
      response.status = OkStatus();
      response.value = static_cast<double>(request.seed % 1000);
      response.latency_us = 10.0;
      on_done(response);
      return OkStatus();
    };
  }
  DrainFn drain_fn() {
    return [this] { drained.store(true); };
  }
};

TEST(LoadGen, SubmitFnTargetsGetTheSameTrafficContract) {
  RecordingTarget target;
  WorkloadSpec spec;
  spec.kernels = {"k"};
  spec.offered_rps = 2000.0;
  spec.duration = std::chrono::milliseconds(50);
  spec.num_data_objects = 8;
  const LoadReport report =
      run_open_loop(target.submit_fn(), target.drain_fn(), spec);
  EXPECT_EQ(report.completed, report.offered);  // inline OK replies
  EXPECT_GT(report.completed, 0u);
  EXPECT_TRUE(target.drained.load());  // drain hook ran after the horizon
}

TEST(LoadGen, KeyNamerAndPerClientStrideSeparateHotSets) {
  RecordingTarget target;
  WorkloadSpec spec;
  spec.kernels = {"k"};
  spec.duration = std::chrono::milliseconds(60);
  spec.num_data_objects = 8;
  spec.zipf_skew = 1.2;
  spec.per_client_key_stride = 4;  // client c's rank 0 -> object 4c % 8
  spec.key_namer = [](int client, std::size_t index) {
    return "c" + std::to_string(client) + "-obj" + std::to_string(index);
  };
  const LoadReport report = run_closed_loop(
      target.submit_fn(), target.drain_fn(), spec, /*clients=*/2);
  EXPECT_GT(report.completed, 0u);

  std::set<std::string> distinct(target.keys.begin(), target.keys.end());
  bool saw_c0 = false;
  bool saw_c1 = false;
  for (const std::string& key : distinct) {
    if (key.rfind("c0-", 0) == 0) saw_c0 = true;
    if (key.rfind("c1-", 0) == 0) saw_c1 = true;
  }
  // Both clients generated traffic under their own key namespace.
  EXPECT_TRUE(saw_c0);
  EXPECT_TRUE(saw_c1);
}

TEST(LoadGen, DefaultKeyNamingIsUnchanged) {
  RecordingTarget target;
  WorkloadSpec spec;
  spec.kernels = {"k"};
  spec.offered_rps = 2000.0;
  spec.duration = std::chrono::milliseconds(40);
  spec.num_data_objects = 4;
  (void)run_open_loop(target.submit_fn(), target.drain_fn(), spec);
  ASSERT_FALSE(target.keys.empty());
  for (const std::string& key : target.keys) {
    EXPECT_EQ(key.rfind("obj", 0), 0u) << key;  // "obj<rank>" as before
  }
}

}  // namespace
}  // namespace everest::serve
