// Tests for the compiler middle-end: static analysis, tensor→kernel
// lowering, transforms (fold/CSE/DCE/tiling/interchange), variant
// generation, and design-space exploration.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "compiler/analysis.hpp"
#include "compiler/dse.hpp"
#include "compiler/lowering.hpp"
#include "compiler/transforms.hpp"
#include "compiler/variants.hpp"
#include "dsl/tensor_expr.hpp"
#include "hls/cdfg.hpp"
#include "hls/hls.hpp"
#include "ir/builder.hpp"
#include "ir/dialect.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace everest::compiler {
namespace {

using dsl::TensorProgram;

ir::Module mlp_module() {
  TensorProgram p("mlp");
  auto x = p.input("x", {16, 32});
  auto w1 = p.input("w1", {32, 64});
  auto w2 = p.input("w2", {64, 8});
  p.output("y", matmul(relu(matmul(x, w1)), w2));
  return p.lower().value();
}

// -------------------------------------------------------------- Analysis --

TEST(Analysis, MatmulFlopsAndBytes) {
  TensorProgram p("mm");
  auto a = p.input("a", {8, 16});
  auto b = p.input("b", {16, 4});
  p.output("c", matmul(a, b));
  ir::Module m = p.lower().value();
  auto profile = profile_kernel(*m.find("mm"));
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(profile->flops, 2.0 * 8 * 16 * 4);
  EXPECT_DOUBLE_EQ(profile->bytes_read, (8 * 16 + 16 * 4) * 8.0);
  EXPECT_DOUBLE_EQ(profile->bytes_written, 8 * 4 * 8.0);
  EXPECT_GT(profile->intensity(), 0.0);
}

TEST(Analysis, SpecialOpsCountedSeparately) {
  TensorProgram p("act");
  auto x = p.input("x", {100});
  p.output("y", exp(x));
  ir::Module m = p.lower().value();
  auto profile = profile_kernel(*m.find("act"));
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(profile->special_ops, 100.0);
  EXPECT_DOUBLE_EQ(profile->flops, 0.0);
}

TEST(Analysis, ContractUsesEinsumFlops) {
  TensorProgram p("bc");
  auto a = p.input("a", {4, 5, 6});
  auto b = p.input("b", {4, 6, 7});
  p.output("c", dsl::contract("bij,bjk->bik", {a, b}));
  ir::Module m = p.lower().value();
  auto profile = profile_kernel(*m.find("bc"));
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(profile->flops, 2.0 * 4 * 5 * 6 * 7);
}

TEST(Analysis, ProfilesWholeModule) {
  ir::Module m = mlp_module();
  auto profiles = profile_module(m);
  ASSERT_TRUE(profiles.ok());
  EXPECT_EQ(profiles->count("mlp"), 1u);
}

// -------------------------------------------------------------- Lowering --

TEST(Lowering, MlpLowersToVerifiedKernelFunction) {
  ir::Module m = mlp_module();
  auto name = lower_to_kernel(m, "mlp");
  ASSERT_TRUE(name.ok()) << name.status().to_string();
  EXPECT_EQ(*name, "mlp_kernel");
  Status st = ir::verify(m);
  EXPECT_TRUE(st.ok()) << st.to_string() << "\n" << ir::print(m);
  ir::Function* kfn = m.find("mlp_kernel");
  ASSERT_NE(kfn, nullptr);
  // 3 inputs + 0 constants + 1 output = 4 memref args, void result.
  EXPECT_EQ(kfn->input_types().size(), 4u);
  EXPECT_TRUE(kfn->result_types().empty());
  for (const ir::Type& t : kfn->input_types()) {
    EXPECT_TRUE(t.is_memref());
    EXPECT_EQ(t.memory_space(), ir::MemorySpace::kDevice);
  }
  // matmul → init+accumulate nests ×2, relu → 1 nest: 5 top-level nests.
  EXPECT_EQ(count_loop_nests(*kfn), 5u);
}

TEST(Lowering, LoweredKernelIsSynthesizable) {
  ir::Module m = mlp_module();
  ASSERT_TRUE(lower_to_kernel(m, "mlp").ok());
  auto design = hls::synthesize(*m.find("mlp_kernel"), hls::HlsConfig{},
                                hls::FpgaDevice::p9_vu9p());
  ASSERT_TRUE(design.ok()) << design.status().to_string();
  EXPECT_GT(design->estimate.total_cycles, 16 * 64 * 32);  // first matmul work
  EXPECT_GT(design->estimate.resources.brams, 0);  // on-chip intermediates
}

TEST(Lowering, ElementwiseChainFusesIntoOneNest) {
  TensorProgram p("chain");
  auto x = p.input("x", {64});
  auto y = p.input("y", {64});
  p.output("z", relu(scale(x + y, 2.0) * x));
  ir::Module m = p.lower().value();
  LoweringOptions fused;
  auto name = lower_to_kernel(m, "chain", fused);
  ASSERT_TRUE(name.ok()) << name.status().to_string();
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
  // add, scale, mul, relu all fuse into a single loop nest.
  EXPECT_EQ(count_loop_nests(*m.find("chain_kernel")), 1u);
}

TEST(Lowering, FusionDisabledMaterializesEachOp) {
  TensorProgram p("chain2");
  auto x = p.input("x", {64});
  auto y = p.input("y", {64});
  p.output("z", relu(x + y));
  ir::Module m = p.lower().value();
  LoweringOptions opts;
  opts.fuse_elementwise = false;
  auto name = lower_to_kernel(m, "chain2", opts);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(count_loop_nests(*m.find("chain2_kernel")), 2u);
}

TEST(Lowering, SharedSubexpressionIsNotFused) {
  // h used twice → must materialize once, not be recomputed per use.
  TensorProgram p("shared");
  auto x = p.input("x", {32});
  auto h = x + x;
  p.output("z", (h * h));
  ir::Module m = p.lower().value();
  auto name = lower_to_kernel(m, "shared");
  ASSERT_TRUE(name.ok());
  // h gets its own nest; the mul another.
  EXPECT_EQ(count_loop_nests(*m.find("shared_kernel")), 2u);
  EXPECT_TRUE(ir::verify(m).ok());
}

TEST(Lowering, ConstantsArePromotedToArguments) {
  TensorProgram p("withc");
  auto x = p.input("x", {4});
  auto c = p.constant({4}, {1, 2, 3, 4});
  p.output("y", x + c);
  ir::Module m = p.lower().value();
  auto name = lower_to_kernel(m, "withc");
  ASSERT_TRUE(name.ok()) << name.status().to_string();
  ir::Function* kfn = m.find("withc_kernel");
  // input + promoted constant + output.
  EXPECT_EQ(kfn->input_types().size(), 3u);
  EXPECT_EQ(kfn->attr("ev.promoted_constants")->as_int(), 1);
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
}

TEST(Lowering, PassThroughReturnGetsCopyNest) {
  TensorProgram p("idf");
  auto x = p.input("x", {8});
  p.output("y", x);  // identity
  ir::Module m = p.lower().value();
  auto name = lower_to_kernel(m, "idf");
  ASSERT_TRUE(name.ok()) << name.status().to_string();
  EXPECT_EQ(count_loop_nests(*m.find("idf_kernel")), 1u);  // the copy
  EXPECT_TRUE(ir::verify(m).ok());
}

TEST(Lowering, ReduceAndTransposeLower) {
  TensorProgram p("rt");
  auto x = p.input("x", {8, 4});
  p.output("s", reduce("sum", transpose(x, {1, 0})));
  ir::Module m = p.lower().value();
  auto name = lower_to_kernel(m, "rt");
  ASSERT_TRUE(name.ok()) << name.status().to_string();
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
  // transpose copy + reduce init + reduce accumulate = 3 nests.
  EXPECT_EQ(count_loop_nests(*m.find("rt_kernel")), 3u);
}

TEST(Lowering, MeanAddsScalingNest) {
  TensorProgram p("mn");
  auto x = p.input("x", {10});
  p.output("m", reduce("mean", x));
  ir::Module m = p.lower().value();
  ASSERT_TRUE(lower_to_kernel(m, "mn").ok());
  // init + accumulate + scale = 3.
  EXPECT_EQ(count_loop_nests(*m.find("mn_kernel")), 3u);
}

TEST(Lowering, DuplicateLoweringRejected) {
  ir::Module m = mlp_module();
  ASSERT_TRUE(lower_to_kernel(m, "mlp").ok());
  EXPECT_EQ(lower_to_kernel(m, "mlp").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(Lowering, MissingFunctionRejected) {
  ir::Module m("empty");
  EXPECT_EQ(lower_to_kernel(m, "nope").status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------ Transforms --

ir::Module kernel_module_with_constants() {
  ir::register_everest_dialects();
  ir::Module m("t");
  ir::Function* fn =
      m.add_function("f", ir::Type::function({}, {})).value();
  ir::OpBuilder b(&fn->entry());
  ir::Value c1 = b.constant_f64(3.0);
  ir::Value c2 = b.constant_f64(4.0);
  ir::Value sum = b.create_value("kernel.binop", {c1, c2}, ir::Type::f64(),
                                 {{"op", ir::Attribute::string("add")}});
  ir::Value root = b.create_value("kernel.unop", {sum}, ir::Type::f64(),
                                  {{"fn", ir::Attribute::string("sqrt")}});
  ir::Value mem = b.create_value(
      "kernel.alloc", {}, ir::Type::memref({}, ir::ScalarKind::kF64,
                                           ir::MemorySpace::kOnChip));
  b.create("kernel.store", {root, mem}, {});
  b.ret();
  return m;
}

TEST(Transforms, ConstantFoldCollapsesArithmetic) {
  ir::Module m = kernel_module_with_constants();
  ir::PassManager pm;
  pm.add<ConstantFoldPass>();
  pm.add<DcePass>();
  ASSERT_TRUE(pm.run(m).ok());
  // sqrt(3+4) folds to a single constant feeding the store.
  int binops = 0, unops = 0, constants = 0;
  m.find("f")->walk([&](ir::Operation& op) {
    binops += op.name() == "kernel.binop";
    unops += op.name() == "kernel.unop";
    constants += op.name() == "builtin.constant";
  });
  EXPECT_EQ(binops, 0);
  EXPECT_EQ(unops, 0);
  EXPECT_EQ(constants, 1);
  bool value_ok = false;
  m.find("f")->walk([&](ir::Operation& op) {
    if (op.name() == "builtin.constant") {
      value_ok = std::abs(op.double_attr("value") - std::sqrt(7.0)) < 1e-12;
    }
  });
  EXPECT_TRUE(value_ok);
}

TEST(Transforms, CseMergesIdenticalPureOps) {
  ir::register_everest_dialects();
  ir::Module m("t");
  ir::Function* fn = m.add_function("f", ir::Type::function({ir::Type::f64()},
                                                            {})).value();
  ir::OpBuilder b(&fn->entry());
  ir::Value x = fn->arg(0);
  ir::Value a = b.create_value("kernel.unop", {x}, ir::Type::f64(),
                               {{"fn", ir::Attribute::string("exp")}});
  ir::Value b2 = b.create_value("kernel.unop", {x}, ir::Type::f64(),
                                {{"fn", ir::Attribute::string("exp")}});
  ir::Value sum = b.create_value("kernel.binop", {a, b2}, ir::Type::f64(),
                                 {{"op", ir::Attribute::string("add")}});
  ir::Value mem = b.create_value(
      "kernel.alloc", {}, ir::Type::memref({}, ir::ScalarKind::kF64,
                                           ir::MemorySpace::kOnChip));
  b.create("kernel.store", {sum, mem}, {});
  b.ret();
  ir::PassManager pm;
  pm.add<CsePass>();
  ASSERT_TRUE(pm.run(m).ok());
  int unops = 0;
  fn->walk([&](ir::Operation& op) { unops += op.name() == "kernel.unop"; });
  EXPECT_EQ(unops, 1);
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
}

TEST(Transforms, DceKeepsLiveAndEffectfulOps) {
  ir::register_everest_dialects();
  ir::Module m("t");
  ir::Function* fn =
      m.add_function("f", ir::Type::function({ir::Type::f64()}, {})).value();
  ir::OpBuilder b(&fn->entry());
  b.create_value("kernel.unop", {fn->arg(0)}, ir::Type::f64(),
                 {{"fn", ir::Attribute::string("exp")}});  // dead
  ir::Value mem = b.create_value(
      "kernel.alloc", {}, ir::Type::memref({}, ir::ScalarKind::kF64,
                                           ir::MemorySpace::kOnChip));
  b.create("kernel.store", {fn->arg(0), mem}, {});  // effectful: kept
  b.ret();
  ir::PassManager pm;
  pm.add<DcePass>();
  ASSERT_TRUE(pm.run(m).ok());
  int unops = 0, stores = 0;
  fn->walk([&](ir::Operation& op) {
    unops += op.name() == "kernel.unop";
    stores += op.name() == "kernel.store";
  });
  EXPECT_EQ(unops, 0);
  EXPECT_EQ(stores, 1);
}

ir::Module vecadd_kernel_module(std::int64_t n) {
  TensorProgram p("va");
  auto a = p.input("a", {n});
  auto b = p.input("b", {n});
  p.output("c", a + b);
  ir::Module m = p.lower().value();
  EXPECT_TRUE(lower_to_kernel(m, "va").ok());
  return m;
}

TEST(Transforms, TileInnermostPreservesSemanticsStructure) {
  ir::Module m = vecadd_kernel_module(64);
  ir::Function* kfn = m.find("va_kernel");
  ASSERT_TRUE(tile_innermost(*kfn, 0, 8).ok());
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string() << ir::print(m);
  // Nest now has two levels: 8 tiles × 8 elements.
  auto nests = hls::extract_loop_nests(*kfn);
  ASSERT_TRUE(nests.ok()) << nests.status().to_string();
  ASSERT_EQ((*nests)[0].loops.size(), 2u);
  EXPECT_EQ((*nests)[0].loops[0].trip_count(), 8);
  EXPECT_EQ((*nests)[0].loops[1].trip_count(), 8);
  // Accesses remain affine: iv = it*8 + ii → coeff 1 in the innermost var.
  for (const auto& acc : (*nests)[0].accesses) {
    EXPECT_TRUE(acc.index.analyzable);
    EXPECT_EQ(acc.index.coeff, 1);
  }
}

TEST(Transforms, TileRejectsNonDivisibleFactor) {
  ir::Module m = vecadd_kernel_module(30);
  EXPECT_EQ(tile_innermost(*m.find("va_kernel"), 0, 8).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(tile_innermost(*m.find("va_kernel"), 0, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tile_innermost(*m.find("va_kernel"), 9, 2).code(),
            StatusCode::kNotFound);
}

TEST(Transforms, InterchangeSwapsLoopsWhenLegal) {
  // Build a 2-level copy nest: out[i][j] = in[i][j] with asymmetric extents.
  TensorProgram p("tp");
  auto x = p.input("x", {4, 16});
  p.output("y", transpose(x, {1, 0}));
  ir::Module m = p.lower().value();
  ASSERT_TRUE(lower_to_kernel(m, "tp").ok());
  ir::Function* kfn = m.find("tp_kernel");
  auto before = hls::extract_loop_nests(*kfn);
  ASSERT_TRUE(before.ok());
  const auto trip0 = (*before)[0].loops[0].trip_count();
  ASSERT_TRUE(interchange_loops(*kfn, 0, 0, 1).ok());
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
  auto after = hls::extract_loop_nests(*kfn);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)[0].loops[1].trip_count(), trip0);
}

TEST(Transforms, MatmulInterchangeIsLegalByDependenceAnalysis) {
  // The ikj accumulation carries its dependence on the k loop; swapping
  // i and j (or k and j) keeps every direction vector positive, so the
  // precise analysis allows what a read/write-conflict heuristic would
  // reject.
  TensorProgram p("mm2");
  auto a = p.input("a", {8, 8});
  auto b = p.input("b", {8, 8});
  p.output("c", matmul(a, b));
  ir::Module m = p.lower().value();
  ASSERT_TRUE(lower_to_kernel(m, "mm2").ok());
  // Nest 1 is the accumulation nest (0 is the zero-init).
  EXPECT_TRUE(interchange_loops(*m.find("mm2_kernel"), 1, 0, 2).ok());
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
}

// -------------------------------------------------------------- Variants --

TEST(Variants, SoftwareSweepProducesDistinctEstimates) {
  ir::Module m = mlp_module();
  VariantSpace space;
  space.devices.clear();  // software only
  auto variants = generate_variants(m, "mlp", space, CpuModel::power9());
  ASSERT_TRUE(variants.ok()) << variants.status().to_string();
  EXPECT_EQ(variants->size(),
            space.thread_counts.size() * space.tile_sizes.size() *
                space.layouts.size());
  // More threads should not be slower for a compute-heavy kernel.
  double t1 = 0, t8 = 0;
  for (const Variant& v : *variants) {
    if (v.id == "cpu-t1-tile0-soa") t1 = v.latency_us;
    if (v.id == "cpu-t8-tile0-soa") t8 = v.latency_us;
  }
  EXPECT_GT(t1, t8);
}

TEST(Variants, HardwareVariantsGeneratedAndFitFiltered) {
  ir::Module m = mlp_module();
  VariantSpace space;
  space.thread_counts = {1};
  space.tile_sizes = {0};
  space.layouts = {"soa"};
  space.unroll_factors = {1, 4};
  space.devices = {hls::FpgaDevice::p9_vu9p()};
  auto variants = generate_variants(m, "mlp", space, CpuModel::power9());
  ASSERT_TRUE(variants.ok()) << variants.status().to_string();
  int hw = 0;
  for (const Variant& v : *variants) {
    if (v.target == TargetKind::kFpga) {
      ++hw;
      EXPECT_GT(v.latency_us, 0);
      EXPECT_GT(v.area_fraction, 0);
      EXPECT_LE(v.area_fraction, 1.0);
      EXPECT_EQ(v.device, "P9-VU9P");
    }
  }
  EXPECT_EQ(hw, 2);
  // The kernel lowering was created on demand.
  EXPECT_NE(m.find("mlp_kernel"), nullptr);
}

TEST(Variants, SecurityModesAddVariants) {
  ir::Module m = mlp_module();
  VariantSpace space;
  space.thread_counts = {1};
  space.tile_sizes = {0};
  space.layouts = {"soa"};
  space.unroll_factors = {1};
  space.devices = {hls::FpgaDevice::p9_vu9p()};
  space.with_dift = true;
  space.with_encryption = "aes128-gcm";
  auto variants = generate_variants(m, "mlp", space, CpuModel::power9());
  ASSERT_TRUE(variants.ok());
  bool has_dift = false, has_enc = false;
  for (const Variant& v : *variants) {
    has_dift |= v.dift;
    has_enc |= !v.encrypted.empty();
  }
  EXPECT_TRUE(has_dift);
  EXPECT_TRUE(has_enc);
}

TEST(Variants, JsonRoundTrip) {
  ir::Module m = mlp_module();
  VariantSpace space;
  auto variants = generate_variants(m, "mlp", space, CpuModel::power9());
  ASSERT_TRUE(variants.ok());
  const json::Value doc = variants_to_json(*variants);
  auto parsed = json::parse(doc.dump());
  ASSERT_TRUE(parsed.ok());
  auto restored = variants_from_json(*parsed);
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  ASSERT_EQ(restored->size(), variants->size());
  for (std::size_t i = 0; i < restored->size(); ++i) {
    EXPECT_EQ((*restored)[i].id, (*variants)[i].id);
    EXPECT_NEAR((*restored)[i].latency_us, (*variants)[i].latency_us, 1e-9);
  }
  json::Object bad;
  bad["schema"] = "other";
  EXPECT_FALSE(variants_from_json(json::Value(bad)).ok());
}

TEST(Variants, SoftwareModelRooflineBehaviour) {
  // Memory-bound profile: tiny flops, huge bytes → latency tracks bytes.
  KernelProfile mem_bound;
  mem_bound.flops = 1e3;
  mem_bound.bytes_read = 1e9;
  const auto est =
      estimate_software(mem_bound, CpuModel::power9(), 8, 0, "soa");
  EXPECT_GT(est.memory_us, est.compute_us * 10);
  // AoS layout halves (or worse) effective bandwidth.
  const auto aos = estimate_software(mem_bound, CpuModel::power9(), 8, 0, "aos");
  EXPECT_GT(aos.latency_us, est.latency_us * 1.5);
  // Compute-bound profile benefits from threads.
  KernelProfile cpu_bound;
  cpu_bound.flops = 1e10;
  cpu_bound.bytes_read = 1e5;
  const auto one = estimate_software(cpu_bound, CpuModel::power9(), 1, 0, "soa");
  const auto many = estimate_software(cpu_bound, CpuModel::power9(), 8, 0, "soa");
  EXPECT_GT(one.latency_us, many.latency_us * 4);
}

// ------------------------------------------------------------------- DSE --

std::vector<Variant> synthetic_variants() {
  auto make = [](const char* id, double lat, double en, double area = 0.0) {
    Variant v;
    v.id = id;
    v.kernel = "k";
    v.latency_us = lat;
    v.energy_uj = en;
    v.area_fraction = area;
    return v;
  };
  return {make("a", 10, 100), make("b", 20, 50), make("c", 30, 20),
          make("d", 25, 60),   // dominated by b
          make("e", 10, 100)}; // ties with a: both stay
}

TEST(Dse, ParetoFrontFiltersDominated) {
  auto variants = synthetic_variants();
  auto front = pareto_front(variants);
  std::vector<std::string> ids;
  for (std::size_t i : front) ids.push_back(variants[i].id);
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b", "c", "e"}));
}

TEST(Dse, KneePointBalancesObjectives) {
  auto variants = synthetic_variants();
  const std::size_t knee = knee_point(variants);
  EXPECT_EQ(variants[knee].id, "b");  // middle of the front
  EXPECT_EQ(knee_point({}), static_cast<std::size_t>(-1));
}

TEST(Dse, AreaObjectiveChangesFront) {
  std::vector<Variant> variants = synthetic_variants();
  variants[0].area_fraction = 0.9;  // "a" big in area
  variants[4].area_fraction = 0.9;  // and its twin "e"
  Variant tiny;
  tiny.id = "tiny";
  tiny.kernel = "k";
  tiny.latency_us = 12;
  tiny.energy_uj = 110;
  tiny.area_fraction = 0.0;
  variants.push_back(tiny);
  DseObjectives with_area;
  with_area.area = true;
  auto front = pareto_front(variants, with_area);
  bool tiny_on_front = false;
  for (std::size_t i : front) tiny_on_front |= variants[i].id == "tiny";
  EXPECT_TRUE(tiny_on_front);
}

/// Property: the Pareto front never contains a pair where one dominates the
/// other, and every excluded variant is dominated by someone on the front.
class ParetoProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParetoProperty, FrontIsSoundAndComplete) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Variant> variants;
  for (int i = 0; i < 40; ++i) {
    Variant v;
    v.id = "v" + std::to_string(i);
    v.kernel = "k";
    v.latency_us = rng.uniform(1, 100);
    v.energy_uj = rng.uniform(1, 100);
    variants.push_back(v);
  }
  auto front = pareto_front(variants);
  std::set<std::size_t> on_front(front.begin(), front.end());
  auto dominates = [](const Variant& a, const Variant& b) {
    return a.latency_us <= b.latency_us && a.energy_uj <= b.energy_uj &&
           (a.latency_us < b.latency_us || a.energy_uj < b.energy_uj);
  };
  for (std::size_t i : front) {
    for (std::size_t j : front) {
      if (i != j) {
        EXPECT_FALSE(dominates(variants[i], variants[j]));
      }
    }
  }
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (on_front.count(i)) continue;
    bool dominated = false;
    for (std::size_t j : front) dominated |= dominates(variants[j], variants[i]);
    EXPECT_TRUE(dominated) << variants[i].id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace everest::compiler
