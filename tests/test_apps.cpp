// Tests for the use-case applications: MLP, weather substrate, energy
// forecasting, air-quality dispersion, and traffic/PTDR.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/airquality.hpp"
#include "common/stats.hpp"
#include "apps/energy.hpp"
#include "apps/mlp.hpp"
#include "apps/traffic.hpp"
#include "apps/weather.hpp"
#include "compiler/lowering.hpp"
#include "ir/verifier.hpp"

namespace everest::apps {
namespace {

// ------------------------------------------------------------------- MLP --

TEST(Mlp, LearnsLinearFunction) {
  Rng rng(7);
  Mlp net({2, 8, 1}, rng);
  std::vector<std::vector<double>> inputs, targets;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    inputs.push_back({a, b});
    targets.push_back({0.3 * a - 0.7 * b + 0.1});
  }
  const double before = net.evaluate(inputs, targets);
  for (int e = 0; e < 200; ++e) net.train_epoch(inputs, targets, 0.05, rng);
  const double after = net.evaluate(inputs, targets);
  EXPECT_LT(after, before * 0.05);
  EXPECT_LT(after, 1e-3);
}

TEST(Mlp, LearnsNonlinearFunction) {
  Rng rng(9);
  Mlp net({1, 16, 1}, rng);
  std::vector<std::vector<double>> inputs, targets;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(-2, 2);
    inputs.push_back({x});
    targets.push_back({std::sin(x)});
  }
  for (int e = 0; e < 400; ++e) net.train_epoch(inputs, targets, 0.02, rng);
  EXPECT_LT(net.evaluate(inputs, targets), 5e-3);
}

TEST(Mlp, ParameterCount) {
  Rng rng(1);
  Mlp net({4, 8, 2}, rng);
  EXPECT_EQ(net.num_parameters(), 4u * 8 + 8 + 8 * 2 + 2);
  EXPECT_EQ(net.num_inputs(), 4);
  EXPECT_EQ(net.num_outputs(), 2);
}

TEST(Mlp, TensorProgramMatchesPrediction) {
  // The exported tensor program must verify and lower through the SDK.
  Rng rng(3);
  Mlp net({3, 5, 2}, rng);
  dsl::TensorProgram program = net.to_tensor_program("mlp_infer", 4);
  auto module = program.lower();
  ASSERT_TRUE(module.ok()) << module.status().to_string();
  EXPECT_TRUE(ir::verify(*module).ok()) << ir::verify(*module).to_string();
  auto lowered = compiler::lower_to_kernel(*module, "mlp_infer");
  EXPECT_TRUE(lowered.ok()) << lowered.status().to_string();
}

// --------------------------------------------------------------- Weather --

TEST(Weather, TruthHasPlausibleStructure) {
  WeatherOptions options;
  WeatherGenerator gen(options, 11);
  const auto truth = gen.generate_truth(48);
  ASSERT_EQ(truth.size(), 48u);
  OnlineStats wind;
  for (const auto& state : truth) {
    for (double w : state.wind_speed.data) {
      EXPECT_GE(w, 0.0);
      wind.add(w);
    }
    for (double s : state.solar.data) EXPECT_GE(s, 0.0);
  }
  EXPECT_NEAR(wind.mean(), options.mean_wind, 4.0);
  // Solar zero at midnight, positive at noon.
  EXPECT_DOUBLE_EQ(truth[0].solar.at(0, 0), 0.0);
  EXPECT_GT(truth[12].solar.at(5, 5), 100.0);
}

TEST(Weather, EnsembleSpreadGrowsWithLeadTime) {
  WeatherGenerator gen(WeatherOptions{}, 23);
  const auto truth = gen.generate_truth(24);
  std::vector<std::vector<WeatherState>> members;
  for (int m = 0; m < 6; ++m) members.push_back(gen.perturb_member(truth));
  auto spread_at = [&](int h) {
    OnlineStats s;
    for (const auto& member : members) {
      s.add(member[h].wind_speed.at(10, 10));
    }
    return s.stddev();
  };
  // Averaged over several cells to reduce sampling noise.
  double early = 0.0, late = 0.0;
  for (int h = 0; h < 4; ++h) early += spread_at(h);
  for (int h = 20; h < 24; ++h) late += spread_at(h);
  EXPECT_GT(late, early);
}

TEST(Weather, DownscalePreservesLargeScale) {
  WeatherGenerator gen(WeatherOptions{}, 5);
  const auto truth = gen.generate_truth(1);
  const WeatherField& coarse = truth[0].wind_speed;
  const WeatherField fine = downscale(coarse, 4, 0.05, 7);
  EXPECT_EQ(fine.ny, coarse.ny * 4);
  EXPECT_NEAR(fine.dx_km, coarse.dx_km / 4, 1e-12);
  // Means agree within the perturbation amplitude.
  double cm = 0, fm = 0;
  for (double v : coarse.data) cm += v;
  for (double v : fine.data) fm += v;
  cm /= coarse.data.size();
  fm /= fine.data.size();
  EXPECT_NEAR(fm, cm, 0.15 * cm + 0.2);
  // Identity for factor 1, deterministic for equal seeds.
  const WeatherField same = downscale(coarse, 1);
  EXPECT_EQ(same.data, coarse.data);
  const WeatherField fine2 = downscale(coarse, 4, 0.05, 7);
  EXPECT_EQ(fine.data, fine2.data);
  EXPECT_GT(downscale_flops(coarse, 4), 0.0);
}

TEST(Weather, FieldSampleBilinear) {
  WeatherField f;
  f.ny = 2;
  f.nx = 2;
  f.data = {0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(f.sample(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(f.sample(0.5, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(f.sample(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(f.sample(-5, 9), 1.0);  // clamped
}

// ---------------------------------------------------------------- Energy --

TEST(Energy, PowerCurveShape) {
  WindFarm farm;
  EXPECT_DOUBLE_EQ(farm.turbine_power(1.0, 3.0), 0.0);   // below cut-in
  EXPECT_DOUBLE_EQ(farm.turbine_power(30.0, 3.0), 0.0);  // above cut-out
  EXPECT_DOUBLE_EQ(farm.turbine_power(12.0, 3.0), 3.0);  // rated
  const double mid = farm.turbine_power(7.0, 3.0);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 3.0);
  // Monotone between cut-in and rated.
  EXPECT_LT(farm.turbine_power(5.0, 3.0), farm.turbine_power(9.0, 3.0));
}

TEST(Energy, FarmAggregatesTurbines) {
  WindFarm farm = WindFarm::make_cluster(20, 600, 600, 3);
  EXPECT_EQ(farm.turbines.size(), 20u);
  EXPECT_DOUBLE_EQ(farm.capacity_mw(), 60.0);
  WeatherField wind;
  wind.ny = 24;
  wind.nx = 24;
  wind.dx_km = 25.0;
  wind.data.assign(24 * 24, 12.0);  // rated everywhere
  EXPECT_NEAR(farm.farm_power(wind), 60.0, 1e-9);
}

TEST(Energy, TrainedForecastBeatsRawPhysical) {
  WeatherOptions weather;
  weather.ny = 12;
  weather.nx = 12;
  WindFarm farm = WindFarm::make_cluster(12, weather.ny * weather.dx_km,
                                         weather.nx * weather.dx_km, 3);
  ForecastOptions options;
  options.ensemble_members = 4;
  options.downscale_factor = 2;

  EnergyForecaster trained(weather, farm, 99);
  trained.train(/*days=*/8, /*epochs=*/60);
  double trained_rmse = 0.0, physical_rmse = 0.0;
  for (int d = 0; d < 4; ++d) {
    const ForecastResult result = trained.forecast_day(options);
    trained_rmse += result.rmse_mw;
    physical_rmse += result.physical_rmse_mw;
  }
  // The AI correction learns the systematic wake/density losses the raw
  // power-curve model misses (paper §VI-D "quality of predictions").
  EXPECT_LT(trained_rmse, physical_rmse);
}

TEST(Energy, ForecastResultAccounting) {
  WeatherOptions weather;
  weather.ny = 8;
  weather.nx = 8;
  WindFarm farm = WindFarm::make_cluster(6, 200, 200, 3);
  EnergyForecaster forecaster(weather, farm, 42);
  ForecastOptions options;
  options.ensemble_members = 3;
  options.downscale_factor = 2;
  const ForecastResult result = forecaster.forecast_day(options);
  EXPECT_EQ(result.forecast_mw.size(), 24u);
  EXPECT_EQ(result.actual_mw.size(), 24u);
  EXPECT_GE(result.rmse_mw, 0.0);
  EXPECT_GE(result.imbalance_cost_eur, 0.0);
  EXPECT_GT(result.compute_flops, 0.0);
  for (double p : result.forecast_mw) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, farm.capacity_mw() + 1e-9);
  }
}

// ------------------------------------------------------------ AirQuality --

TEST(AirQuality, StabilityClassification) {
  EXPECT_EQ(classify_stability(800, 2.0), Stability::kA);
  EXPECT_EQ(classify_stability(800, 4.0), Stability::kB);
  EXPECT_EQ(classify_stability(0, 2.0), Stability::kF);
  EXPECT_EQ(classify_stability(0, 4.0), Stability::kE);
  EXPECT_EQ(classify_stability(500, 8.0), Stability::kD);
}

TEST(AirQuality, SigmasGrowWithDistanceAndInstability) {
  double sy1, sz1, sy2, sz2;
  briggs_sigmas(Stability::kD, 500, &sy1, &sz1);
  briggs_sigmas(Stability::kD, 2000, &sy2, &sz2);
  EXPECT_GT(sy2, sy1);
  EXPECT_GT(sz2, sz1);
  double sy_a, sz_a, sy_f, sz_f;
  briggs_sigmas(Stability::kA, 1000, &sy_a, &sz_a);
  briggs_sigmas(Stability::kF, 1000, &sy_f, &sz_f);
  EXPECT_GT(sy_a, sy_f);
  EXPECT_GT(sz_a, sz_f);
}

TEST(AirQuality, PlumePhysics) {
  StackSource stack;
  stack.y_km = 5.0;
  stack.x_km = 5.0;
  stack.height_m = 50.0;
  stack.emission_gs = 100.0;
  const double wind = 5.0, dir = 0.0;  // blowing towards +x
  // Zero upwind.
  EXPECT_DOUBLE_EQ(plume_concentration(stack, wind, dir, Stability::kD, 5.0,
                                       4.0),
                   0.0);
  // Positive downwind on the centerline.
  const double c1 = plume_concentration(stack, wind, dir, Stability::kD, 5.0,
                                        6.0);
  EXPECT_GT(c1, 0.0);
  // Decays off-centerline.
  const double off = plume_concentration(stack, wind, dir, Stability::kD, 6.5,
                                         6.0);
  EXPECT_LT(off, c1);
  // Stronger wind dilutes (far enough downwind).
  const double strong = plume_concentration(stack, 12.0, dir, Stability::kD,
                                            5.0, 9.0);
  const double weak = plume_concentration(stack, 4.0, dir, Stability::kD,
                                          5.0, 9.0);
  EXPECT_LT(strong, weak);
  // Emission scales linearly.
  StackSource doubled = stack;
  doubled.emission_gs *= 2.0;
  EXPECT_NEAR(
      plume_concentration(doubled, wind, dir, Stability::kD, 5.0, 6.0),
      2.0 * c1, 1e-9);
}

TEST(AirQuality, ForecastPipelineProducesDecisions) {
  WeatherOptions weather;
  weather.ny = 8;
  weather.nx = 8;
  weather.dx_km = 2.0;
  weather.mean_wind = 3.0;  // calm → high concentrations
  WeatherGenerator gen(weather, 31);
  std::vector<StackSource> sources = {
      {5.0, 5.0, 40.0, 500.0},
      {5.5, 5.0, 30.0, 300.0},
  };
  std::vector<Receptor> receptors = {
      {"school", 5.0, 7.0},
      {"station", 7.0, 5.0},
  };
  AirQualityOptions options;
  options.ensemble_members = 4;
  options.grid_ny = 20;
  options.grid_nx = 20;
  options.grid_dx_km = 0.5;
  options.limit_ugm3 = 20.0;
  const AirQualityForecast forecast =
      forecast_air_quality(sources, receptors, gen, options);
  ASSERT_EQ(forecast.exceedance_probability.size(), 2u);
  ASSERT_EQ(forecast.exceedance_probability[0].size(), 24u);
  for (const auto& row : forecast.exceedance_probability) {
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  EXPECT_GT(forecast.compute_flops, 0.0);
  // With strong sources and a low limit some hour should trigger curtailment.
  EXPECT_FALSE(forecast.curtail_hours.empty());
}

// ----------------------------------------------------------------- Traffic --

TEST(Traffic, GridNetworkStructure) {
  RoadNetwork net = RoadNetwork::make_grid(5, 5, 7);
  EXPECT_EQ(net.num_nodes(), 25u);
  // 2 directions × (rows*(cols-1) + cols*(rows-1)) = 2 × 40 = 80.
  EXPECT_EQ(net.num_segments(), 80u);
}

TEST(Traffic, RushHourSlowsTravel) {
  RoadNetwork net = RoadNetwork::make_grid(5, 5, 7);
  const double off_peak = net.expected_time_s(0, 3);
  const double peak = net.expected_time_s(0, 8);
  EXPECT_GT(peak, off_peak);
}

TEST(Traffic, ShortestPathConnectsGrid) {
  RoadNetwork net = RoadNetwork::make_grid(6, 6, 7);
  const auto path = net.shortest_path(0, 35, 12);
  ASSERT_FALSE(path.empty());
  // Path connects 0 → 35: follow segments.
  std::size_t at = 0;
  for (std::size_t s : path) {
    EXPECT_EQ(net.segment(s).from, at);
    at = net.segment(s).to;
  }
  EXPECT_EQ(at, 35u);
}

TEST(Traffic, AlternativePathsAreDistinct) {
  RoadNetwork net = RoadNetwork::make_grid(8, 8, 7);
  const auto alts = net.alternative_paths(0, 63, 8, 3);
  ASSERT_GE(alts.size(), 2u);
  EXPECT_NE(alts[0], alts[1]);
}

TEST(Traffic, PtdrConvergesWithSamples) {
  RoadNetwork net = RoadNetwork::make_grid(8, 8, 7);
  const auto path = net.shortest_path(0, 63, 8);
  ASSERT_FALSE(path.empty());
  Rng rng(5);
  const auto small = ptdr_route_time(net, path, 8, 50, rng);
  const auto large = ptdr_route_time(net, path, 8, 5000, rng);
  EXPECT_GT(small.mean_s, 0.0);
  EXPECT_NEAR(small.mean_s, large.mean_s, large.mean_s * 0.1);
  EXPECT_GE(large.p95_s, large.p50_s);
  // Reference: expected time sum should be in the same ballpark.
  double expected = 0.0;
  for (std::size_t s : path) expected += net.expected_time_s(s, 8);
  EXPECT_NEAR(large.mean_s, expected, expected * 0.25);
}

TEST(Traffic, RiskAverseRoutingPrefersReliablePath) {
  RoadNetwork net = RoadNetwork::make_grid(8, 8, 7);
  Rng rng(5);
  auto median = choose_route(net, 0, 63, 8, 4, 400, 0.5, rng);
  auto averse = choose_route(net, 0, 63, 8, 4, 400, 0.95, rng);
  ASSERT_TRUE(median.ok() && averse.ok());
  EXPECT_GE(median->alternatives_evaluated, 2);
  // The risk-averse p95 must not exceed the median-optimal p95 beyond
  // Monte Carlo noise.
  EXPECT_LE(averse->distribution.p95_s, median->distribution.p95_s * 1.05);
}

TEST(Traffic, SimulatorEmitsFcdAndCalibrationImproves) {
  RoadNetwork net = RoadNetwork::make_grid(6, 6, 7);
  const SimulationDay day = simulate_traffic_day(net, 800, 13);
  EXPECT_GT(day.fcd.size(), 1000u);
  EXPECT_GT(day.mean_trip_time_s, 0.0);
  EXPECT_GT(day.vehicle_km, 0.0);
  // Calibrate a copy with flattened priors; profiles should move towards
  // the simulated (rush-hour) reality.
  RoadNetwork blank = RoadNetwork::make_grid(6, 6, 7);
  for (std::size_t s = 0; s < blank.num_segments(); ++s) {
    blank.mutable_profile(s).mean_factor.fill(1.0);
    blank.mutable_profile(s).stddev.fill(0.05);
  }
  const std::size_t updated = calibrate_profiles(blank, day.fcd, 3);
  EXPECT_GT(updated, 50u);
  // After calibration, morning-rush factors on busy segments are below 1.
  double min_factor = 1.0;
  for (std::size_t s = 0; s < blank.num_segments(); ++s) {
    min_factor = std::min(min_factor, blank.profile(s).mean_factor[8]);
  }
  EXPECT_LT(min_factor, 0.9);
}

TEST(Traffic, ChooseRouteFailsWhenDisconnected) {
  RoadNetwork net = RoadNetwork::make_grid(3, 3, 7);
  Rng rng(1);
  auto r = choose_route(net, 0, 0, 8, 2, 10, 0.5, rng);
  // from == to: alternative_paths yields the empty path... accept either
  // a trivial result or NOT_FOUND, but never a crash.
  (void)r;
  SUCCEED();
}

}  // namespace
}  // namespace everest::apps
