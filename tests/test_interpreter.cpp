// Semantics tests: the kernel-dialect IR produced by lower_to_kernel (and
// then transformed by tiling/interchange) must compute the same values as
// the tensor-dialect reference interpreter — end-to-end proof that the
// compiler preserves meaning.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/mlp.hpp"
#include "common/rng.hpp"
#include "compiler/interpreter.hpp"
#include "compiler/lowering.hpp"
#include "compiler/transforms.hpp"
#include "dsl/tensor_expr.hpp"
#include "ir/verifier.hpp"

namespace everest::compiler {
namespace {

using dsl::TensorProgram;

TensorValue random_tensor(std::vector<std::int64_t> shape, Rng& rng,
                          double lo = -2.0, double hi = 2.0) {
  TensorValue v = TensorValue::zeros(std::move(shape));
  for (double& x : v.data) x = rng.uniform(lo, hi);
  return v;
}

void expect_close(const TensorValue& a, const TensorValue& b,
                  double tol = 1e-9) {
  ASSERT_EQ(a.shape, b.shape);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    EXPECT_NEAR(a.data[i], b.data[i], tol) << "element " << i;
  }
}

/// Runs the tensor reference and the lowered kernel on the same inputs and
/// compares outputs.
void check_lowering_equivalence(TensorProgram& program,
                                std::vector<TensorValue> inputs,
                                double tol = 1e-9) {
  auto module = program.lower();
  ASSERT_TRUE(module.ok()) << module.status().to_string();
  auto reference = run_tensor_function(*module, program.name(), inputs);
  ASSERT_TRUE(reference.ok()) << reference.status().to_string();

  auto kernel_name = lower_to_kernel(*module, program.name());
  ASSERT_TRUE(kernel_name.ok()) << kernel_name.status().to_string();
  ASSERT_TRUE(ir::verify(*module).ok()) << ir::verify(*module).to_string();

  auto constants = promoted_constant_values(*module, program.name());
  ASSERT_TRUE(constants.ok());
  std::vector<TensorValue> bound = inputs;
  for (const TensorValue& c : *constants) bound.push_back(c);
  auto lowered = run_kernel_function(*module, *kernel_name, bound);
  ASSERT_TRUE(lowered.ok()) << lowered.status().to_string();

  ASSERT_EQ(lowered->size(), reference->size());
  for (std::size_t i = 0; i < lowered->size(); ++i) {
    expect_close((*lowered)[i], (*reference)[i], tol);
  }
}

TEST(Interpreter, ElementwiseChain) {
  TensorProgram p("chain");
  auto x = p.input("x", {8, 8});
  auto y = p.input("y", {8, 8});
  p.output("z", relu(scale(x + y, 2.0) * x - y));
  Rng rng(1);
  check_lowering_equivalence(
      p, {random_tensor({8, 8}, rng), random_tensor({8, 8}, rng)});
}

TEST(Interpreter, MatmulIkjOrderIsExact) {
  TensorProgram p("mm");
  auto a = p.input("a", {5, 7});
  auto b = p.input("b", {7, 3});
  p.output("c", matmul(a, b));
  Rng rng(2);
  check_lowering_equivalence(
      p, {random_tensor({5, 7}, rng), random_tensor({7, 3}, rng)}, 1e-12);
}

TEST(Interpreter, MlpWithConstants) {
  Rng rng(3);
  apps::Mlp net({4, 6, 2}, rng);
  TensorProgram p = net.to_tensor_program("mlp", 3);
  Rng drng(4);
  TensorValue x = random_tensor({3, 4}, drng);
  auto module = p.lower();
  ASSERT_TRUE(module.ok());
  // Reference #1: the MLP itself.
  auto irref = run_tensor_function(*module, "mlp", {x});
  ASSERT_TRUE(irref.ok()) << irref.status().to_string();
  for (int row = 0; row < 3; ++row) {
    std::vector<double> sample(x.data.begin() + row * 4,
                               x.data.begin() + (row + 1) * 4);
    const auto direct = net.predict(sample);
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR((*irref)[0].data[static_cast<std::size_t>(row * 2 + c)],
                  direct[static_cast<std::size_t>(c)], 1e-9)
          << "IR tensor semantics must match the MLP";
    }
  }
  // Reference #2: lowered kernel vs tensor dialect.
  check_lowering_equivalence(p, {x}, 1e-9);
}

TEST(Interpreter, ContractBatched) {
  TensorProgram p("bc");
  auto a = p.input("a", {3, 4, 5});
  auto b = p.input("b", {3, 5, 2});
  p.output("c", dsl::contract("bij,bjk->bik", {a, b}));
  Rng rng(5);
  check_lowering_equivalence(
      p, {random_tensor({3, 4, 5}, rng), random_tensor({3, 5, 2}, rng)},
      1e-12);
}

TEST(Interpreter, ReduceKindsIncludingNegatives) {
  for (const char* kind : {"sum", "mean", "max", "min"}) {
    TensorProgram p(std::string("red_") + kind);
    auto x = p.input("x", {4, 6});
    p.output("r", reduce(kind, x));
    Rng rng(7);
    // Negative data: catches wrong max/min initialization.
    check_lowering_equivalence(p, {random_tensor({4, 6}, rng, -5.0, -1.0)},
                               1e-12);
  }
}

TEST(Interpreter, TransposeRank3) {
  TensorProgram p("tp");
  auto x = p.input("x", {2, 3, 4});
  p.output("y", transpose(x, {2, 0, 1}));
  Rng rng(8);
  check_lowering_equivalence(p, {random_tensor({2, 3, 4}, rng)}, 1e-12);
}

TEST(Interpreter, ReshapeLowersAndMatches) {
  TensorProgram p("rs");
  auto x = p.input("x", {4, 6});
  // reshape → elementwise → reshape back: exercises div/mod indexing on
  // both the load and store sides.
  p.output("y", reshape(relu(reshape(x, {8, 3})), {2, 12}));
  Rng rng(21);
  check_lowering_equivalence(p, {random_tensor({4, 6}, rng)}, 1e-12);
}

TEST(Interpreter, ReshapeToFlatVector) {
  TensorProgram p("rs2");
  auto x = p.input("x", {3, 5});
  p.output("y", reshape(x, {15}));
  Rng rng(22);
  check_lowering_equivalence(p, {random_tensor({3, 5}, rng)}, 1e-12);
}

TEST(Interpreter, ReshapeRejectsBadShapes) {
  TensorProgram p("rs3");
  auto x = p.input("x", {4});
  auto bad = dsl::reshape(x, {3});
  EXPECT_FALSE(bad.ok());
  auto neg = dsl::reshape(x, {-4});
  EXPECT_FALSE(neg.ok());
}

TEST(Interpreter, PassThroughAndDuplicateReturns) {
  TensorProgram p("multi");
  auto x = p.input("x", {6});
  auto h = relu(x);
  p.output("a", h);
  p.output("b", h);  // same value returned twice
  p.output("c", x);  // pass-through
  Rng rng(9);
  check_lowering_equivalence(p, {random_tensor({6}, rng)});
}

TEST(Interpreter, TilingPreservesSemantics) {
  TensorProgram p("tiled");
  auto x = p.input("x", {64});
  auto y = p.input("y", {64});
  p.output("z", x * y + x);
  auto module = p.lower();
  ASSERT_TRUE(module.ok());
  Rng rng(10);
  TensorValue a = random_tensor({64}, rng);
  TensorValue b = random_tensor({64}, rng);
  auto reference = run_tensor_function(*module, "tiled", {a, b});
  ASSERT_TRUE(reference.ok());
  auto kernel_name = lower_to_kernel(*module, "tiled");
  ASSERT_TRUE(kernel_name.ok());
  ir::Function* kfn = module->find(*kernel_name);
  ASSERT_TRUE(tile_innermost(*kfn, 0, 8).ok());
  ASSERT_TRUE(ir::verify(*module).ok()) << ir::verify(*module).to_string();
  auto tiled = run_kernel_function(*module, *kernel_name, {a, b});
  ASSERT_TRUE(tiled.ok()) << tiled.status().to_string();
  expect_close((*tiled)[0], (*reference)[0]);
}

TEST(Interpreter, InterchangePreservesSemantics) {
  TensorProgram p("ic");
  auto x = p.input("x", {4, 16});
  p.output("y", transpose(x, {1, 0}));
  auto module = p.lower();
  ASSERT_TRUE(module.ok());
  Rng rng(11);
  TensorValue a = random_tensor({4, 16}, rng);
  auto reference = run_tensor_function(*module, "ic", {a});
  ASSERT_TRUE(reference.ok());
  auto kernel_name = lower_to_kernel(*module, "ic");
  ASSERT_TRUE(kernel_name.ok());
  ir::Function* kfn = module->find(*kernel_name);
  ASSERT_TRUE(interchange_loops(*kfn, 0, 0, 1).ok());
  auto swapped = run_kernel_function(*module, *kernel_name, {a});
  ASSERT_TRUE(swapped.ok()) << swapped.status().to_string();
  expect_close((*swapped)[0], (*reference)[0]);
}

TEST(Interpreter, FusionOnOffAgree) {
  TensorProgram p("fuse");
  auto x = p.input("x", {32});
  auto y = p.input("y", {32});
  p.output("z", exp(scale(x - y, 0.5)));
  Rng rng(12);
  TensorValue a = random_tensor({32}, rng);
  TensorValue b = random_tensor({32}, rng);
  std::vector<TensorValue> fused_out, unfused_out;
  for (bool fuse : {true, false}) {
    auto module = p.lower();
    ASSERT_TRUE(module.ok());
    LoweringOptions options;
    options.fuse_elementwise = fuse;
    auto name = lower_to_kernel(*module, "fuse", options);
    ASSERT_TRUE(name.ok());
    auto out = run_kernel_function(*module, *name, {a, b});
    ASSERT_TRUE(out.ok());
    (fuse ? fused_out : unfused_out) = std::move(out).value();
  }
  expect_close(fused_out[0], unfused_out[0]);
}

TEST(Interpreter, ErrorsSurfaced) {
  ir::Module m("empty");
  EXPECT_EQ(run_tensor_function(m, "nope", {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(run_kernel_function(m, "nope", {}).status().code(),
            StatusCode::kNotFound);
  // Wrong input count.
  TensorProgram p("one");
  (void)p.input("x", {4});
  p.output("y", p.input("y", {4}));
  auto module = p.lower();
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(run_tensor_function(*module, "one", {}).status().code(),
            StatusCode::kInvalidArgument);
  // Kernel function without lowering metadata.
  EXPECT_EQ(run_kernel_function(*module, "one", {}).status().code(),
            StatusCode::kFailedPrecondition);
}

/// Property sweep: random elementwise DAGs agree between the tensor
/// reference and the (fused) kernel lowering.
class RandomProgramEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramEquivalence, TensorVsKernel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  TensorProgram p("rand" + std::to_string(GetParam()));
  std::vector<dsl::TensorExpr> pool = {p.input("a", {16}), p.input("b", {16})};
  for (int i = 0; i < 6; ++i) {
    const auto& x = pool[rng.uniform_int(pool.size())];
    const auto& y = pool[rng.uniform_int(pool.size())];
    switch (rng.uniform_int(5u)) {
      case 0: pool.push_back(x + y); break;
      case 1: pool.push_back(x - y); break;
      case 2: pool.push_back(x * y); break;
      case 3: pool.push_back(relu(x)); break;
      default: pool.push_back(scale(x, rng.uniform(-1.5, 1.5))); break;
    }
  }
  p.output("out", pool.back());
  Rng drng(GetParam());
  check_lowering_equivalence(
      p, {random_tensor({16}, drng), random_tensor({16}, drng)}, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace everest::compiler
