// Tests for the workflow engine: task graphs (builders, IR import,
// synthetic generators) and the three schedulers with fault injection.
#include <gtest/gtest.h>

#include "dsl/workflow_dsl.hpp"
#include "workflow/scheduler.hpp"
#include "workflow/task_graph.hpp"

namespace everest::workflow {
namespace {

std::vector<WorkerSpec> homogeneous_workers(std::size_t n,
                                            double gflops = 10.0) {
  std::vector<WorkerSpec> workers;
  for (std::size_t i = 0; i < n; ++i) {
    WorkerSpec w;
    w.name = "w" + std::to_string(i);
    w.gflops = gflops;
    w.link_gbps = 1.0;
    w.link_latency_us = 10.0;
    workers.push_back(std::move(w));
  }
  return workers;
}

// ------------------------------------------------------------- TaskGraph --

TEST(TaskGraph, BuildAndValidate) {
  TaskGraph g;
  const auto a = g.add_task({"a", 1e9, 1e6, "", {}});
  const auto b = g.add_task({"b", 2e9, 1e6, "", {a}});
  g.add_task({"c", 3e9, 0.0, "", {a, b}});
  EXPECT_TRUE(g.validate().ok());
  EXPECT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g.total_flops(), 6e9);
  EXPECT_DOUBLE_EQ(g.critical_path_flops(), 6e9);  // a→b→c chain
  const auto succ = g.successors();
  EXPECT_EQ(succ[a].size(), 2u);
}

TEST(TaskGraph, ForwardDependencyRejected) {
  TaskGraph g;
  g.add_task({"a", 1e9, 0, "", {1}});  // depends on a later task
  g.add_task({"b", 1e9, 0, "", {}});
  EXPECT_FALSE(g.validate().ok());
}

TEST(TaskGraph, FromWorkflowIr) {
  dsl::WorkflowBuilder wf("app");
  auto s = wf.source("feed");
  auto t1 = wf.task("stage1").kernel("k1").inputs({s})
                .output_shape({1024}).flops(5e8).done();
  auto t2 = wf.task("stage2").kernel("k2").inputs({t1})
                .output_shape({64}).flops(1e8).done();
  ASSERT_TRUE(wf.sink("out", t2).ok());
  auto module = wf.lower();
  ASSERT_TRUE(module.ok());
  auto graph = TaskGraph::from_ir(*module->find("app"));
  ASSERT_TRUE(graph.ok()) << graph.status().to_string();
  ASSERT_EQ(graph->size(), 4u);  // source + 2 tasks + sink
  EXPECT_DOUBLE_EQ(graph->task(1).flops, 5e8);
  EXPECT_EQ(graph->task(1).kernel, "k1");
  EXPECT_DOUBLE_EQ(graph->task(1).output_bytes, 1024 * 8.0);
  EXPECT_EQ(graph->task(3).deps, (std::vector<std::size_t>{2}));
}

TEST(TaskGraph, SyntheticGenerators) {
  Rng rng(5);
  TaskGraph layered = TaskGraph::random_layered(4, 8, 3, rng);
  EXPECT_EQ(layered.size(), 32u);
  EXPECT_TRUE(layered.validate().ok());

  TaskGraph mr = TaskGraph::map_reduce(10, 3);
  EXPECT_EQ(mr.size(), 13u);
  EXPECT_TRUE(mr.validate().ok());
  EXPECT_EQ(mr.task(12).deps.size(), 10u);  // all-to-all shuffle

  TaskGraph pipe = TaskGraph::pipeline(5, 4);
  EXPECT_EQ(pipe.size(), 20u);
  EXPECT_TRUE(pipe.validate().ok());
}

// ------------------------------------------------------------- Scheduler --

TEST(Scheduler, SingleWorkerMakespanEqualsTotalWork) {
  TaskGraph g = TaskGraph::pipeline(4, 1, /*stage_flops=*/1e9,
                                    /*stage_bytes=*/0.0);
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kFifo;
  auto outcome = simulate_schedule(g, homogeneous_workers(1), opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  // 4 GFLOP at 10 GFLOP/s = 0.4 s = 4e5 us, no transfers on one worker.
  EXPECT_NEAR(outcome->makespan_us, 4e5, 1.0);
  EXPECT_NEAR(outcome->mean_utilization, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(outcome->bytes_transferred, 0.0);
}

TEST(Scheduler, IndependentTasksScaleWithWorkers) {
  TaskGraph g = TaskGraph::pipeline(1, 16, 1e9, 0.0);  // 16 independent
  for (SchedulerKind kind : {SchedulerKind::kFifo, SchedulerKind::kHeft,
                             SchedulerKind::kWorkStealing}) {
    SimulationOptions opts;
    opts.scheduler = kind;
    auto w1 = simulate_schedule(g, homogeneous_workers(1), opts);
    auto w4 = simulate_schedule(g, homogeneous_workers(4), opts);
    ASSERT_TRUE(w1.ok() && w4.ok());
    EXPECT_NEAR(w1->makespan_us / w4->makespan_us, 4.0, 0.2)
        << to_string(kind);
  }
}

TEST(Scheduler, ChainCannotBeParallelized) {
  TaskGraph g = TaskGraph::pipeline(8, 1, 1e9, 1e3);
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kHeft;
  auto w1 = simulate_schedule(g, homogeneous_workers(1), opts);
  auto w8 = simulate_schedule(g, homogeneous_workers(8), opts);
  ASSERT_TRUE(w1.ok() && w8.ok());
  EXPECT_GT(w8->makespan_us, 0.95 * w1->makespan_us);  // no speedup on chain
}

TEST(Scheduler, HeftBeatsFifoOnHeterogeneousWorkers) {
  // Heterogeneous pool: HEFT should place the critical chain on the fast
  // worker; FIFO dispatches blindly.
  Rng rng(11);
  TaskGraph g = TaskGraph::random_layered(6, 6, 2, rng, 2e9, 5e6);
  std::vector<WorkerSpec> workers = homogeneous_workers(4, 5.0);
  workers[0].gflops = 50.0;  // one fast node
  SimulationOptions fifo{SchedulerKind::kFifo};
  SimulationOptions heft{SchedulerKind::kHeft};
  auto fifo_out = simulate_schedule(g, workers, fifo);
  auto heft_out = simulate_schedule(g, workers, heft);
  ASSERT_TRUE(fifo_out.ok() && heft_out.ok());
  EXPECT_LT(heft_out->makespan_us, fifo_out->makespan_us);
}

TEST(Scheduler, WorkStealingReducesTransfersVsFifo) {
  // Locality-aware placement keeps children near their biggest input;
  // FIFO's central queue scatters them. On communication-heavy random
  // DAGs work stealing moves far fewer bytes.
  Rng rng(1);
  TaskGraph g = TaskGraph::random_layered(6, 8, 2, rng, 5e8, 2e7);
  auto workers = homogeneous_workers(4);
  SimulationOptions fifo{SchedulerKind::kFifo};
  SimulationOptions ws{SchedulerKind::kWorkStealing};
  auto fifo_out = simulate_schedule(g, workers, fifo);
  auto ws_out = simulate_schedule(g, workers, ws);
  ASSERT_TRUE(fifo_out.ok() && ws_out.ok());
  EXPECT_LT(ws_out->bytes_transferred, fifo_out->bytes_transferred);
}

TEST(Scheduler, FaultInjectionRetriesAndExtendsMakespan) {
  TaskGraph g = TaskGraph::pipeline(1, 32, 1e9, 0.0);
  auto workers = homogeneous_workers(4);
  SimulationOptions clean{SchedulerKind::kFifo};
  SimulationOptions faulty{SchedulerKind::kFifo};
  faulty.failure_probability = 0.3;
  faulty.max_retries = 50;
  faulty.seed = 3;
  auto ok_out = simulate_schedule(g, workers, clean);
  auto faulty_out = simulate_schedule(g, workers, faulty);
  ASSERT_TRUE(ok_out.ok() && faulty_out.ok());
  EXPECT_GT(faulty_out->executions, ok_out->executions);
  EXPECT_GT(faulty_out->makespan_us, ok_out->makespan_us);
}

TEST(Scheduler, RetryBudgetExhaustionFails) {
  TaskGraph g = TaskGraph::pipeline(1, 4, 1e9, 0.0);
  SimulationOptions opts{SchedulerKind::kFifo};
  opts.failure_probability = 1.0;  // always fails
  opts.max_retries = 2;
  auto outcome = simulate_schedule(g, homogeneous_workers(2), opts);
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(Scheduler, EmptyGraphAndNoWorkers) {
  TaskGraph g;
  auto outcome = simulate_schedule(g, homogeneous_workers(2));
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->makespan_us, 0.0);
  EXPECT_FALSE(simulate_schedule(g, {}).ok());
}

TEST(Scheduler, WorkersFromPlatformMapNodes) {
  auto spec = platform::PlatformSpec::everest_reference(2, 0, 1);
  auto workers = workers_from_platform(spec);
  ASSERT_EQ(workers.size(), 3u);
  EXPECT_GT(workers[0].gflops, workers[2].gflops);  // P9 vs edge ARM
  EXPECT_LT(workers[2].link_gbps, workers[0].link_gbps);  // WAN uplink
}

TEST(Scheduler, DeterministicForFixedSeed) {
  Rng rng(9);
  TaskGraph g = TaskGraph::random_layered(5, 10, 3, rng);
  SimulationOptions opts{SchedulerKind::kWorkStealing};
  opts.failure_probability = 0.1;
  opts.max_retries = 20;
  opts.seed = 42;
  auto a = simulate_schedule(g, homogeneous_workers(3), opts);
  auto b = simulate_schedule(g, homogeneous_workers(3), opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->makespan_us, b->makespan_us);
  EXPECT_EQ(a->executions, b->executions);
}

/// Property: makespan is never below both lower bounds (critical path and
/// total-work/aggregate-throughput), for every scheduler.
class SchedulerBounds
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulerBounds, MakespanRespectsLowerBounds) {
  const int seed = std::get<0>(GetParam());
  const int scheduler = std::get<1>(GetParam());
  Rng rng(static_cast<std::uint64_t>(seed));
  TaskGraph g = TaskGraph::random_layered(4, 6, 2, rng);
  auto workers = homogeneous_workers(3, 8.0);
  SimulationOptions opts;
  opts.scheduler = static_cast<SchedulerKind>(scheduler);
  auto outcome = simulate_schedule(g, workers, opts);
  ASSERT_TRUE(outcome.ok());
  const double cp_us = g.critical_path_flops() / (8.0 * 1e3);
  const double work_us = g.total_flops() / (3 * 8.0 * 1e3);
  EXPECT_GE(outcome->makespan_us, cp_us * 0.999);
  EXPECT_GE(outcome->makespan_us, work_us * 0.999);
  EXPECT_GT(outcome->mean_utilization, 0.0);
  EXPECT_LE(outcome->mean_utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerBounds,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace everest::workflow
