// Tests for the dependence analysis (direction vectors, interchange
// legality, innermost-parallelism) and the NN exchange-format importer.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compiler/dependence.hpp"
#include "compiler/interpreter.hpp"
#include "compiler/lowering.hpp"
#include "compiler/transforms.hpp"
#include "dsl/nn_exchange.hpp"
#include "dsl/tensor_expr.hpp"
#include "ir/builder.hpp"
#include "ir/dialect.hpp"
#include "ir/verifier.hpp"

namespace everest::compiler {
namespace {

using ir::Attribute;
using ir::OpBuilder;
using ir::Type;

/// Builds a 2-level nest over [1,n)x[0,n-1) computing
///   A[i][j] = f(A[i-1][j+1])  — dependence distance (+1, -1): the classic
/// interchange-illegal stencil.
ir::Module make_skew_stencil(std::int64_t n) {
  ir::register_everest_dialects();
  ir::Module m("skew");
  Type mem = Type::memref({n, n}, ir::ScalarKind::kF64,
                          ir::MemorySpace::kOnChip);
  ir::Function* fn = m.add_function("k", Type::function({mem}, {})).value();
  OpBuilder b(&fn->entry());
  ir::Operation& li = b.create("kernel.for", {}, {},
                               {{"lb", Attribute::integer(1)},
                                {"ub", Attribute::integer(n)},
                                {"step", Attribute::integer(1)}});
  ir::Block& bi = li.emplace_region().emplace_block({Type::index()});
  OpBuilder obi(&bi);
  ir::Operation& lj = obi.create("kernel.for", {}, {},
                                 {{"lb", Attribute::integer(0)},
                                  {"ub", Attribute::integer(n - 1)},
                                  {"step", Attribute::integer(1)}});
  ir::Block& bj = lj.emplace_region().emplace_block({Type::index()});
  OpBuilder obj(&bj);
  ir::Value one = obj.constant_index(1);
  ir::Value im1 = obj.create_value("kernel.binop", {bi.arg(0), one},
                                   Type::index(),
                                   {{"op", Attribute::string("sub")}});
  ir::Value jp1 = obj.create_value("kernel.binop", {bj.arg(0), one},
                                   Type::index(),
                                   {{"op", Attribute::string("add")}});
  ir::Value x = obj.create_value("kernel.load", {fn->arg(0), im1, jp1},
                                 Type::f64());
  ir::Value y = obj.create_value("kernel.unop", {x}, Type::f64(),
                                 {{"fn", Attribute::string("sqrt")}});
  obj.create("kernel.store", {y, fn->arg(0), bi.arg(0), bj.arg(0)}, {});
  obj.create("kernel.yield", {}, {});
  obi.create("kernel.yield", {}, {});
  b.ret();
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
  return m;
}

TEST(Dependence, SkewStencilVectors) {
  ir::Module m = make_skew_stencil(8);
  auto deps = analyze_dependences(*m.find("k"), 0);
  ASSERT_TRUE(deps.ok()) << deps.status().to_string();
  // One pair (load, store), two orientations: (<,>) and (>,<).
  ASSERT_EQ(deps->size(), 2u);
  bool has_pos = false;
  for (const auto& d : *deps) {
    EXPECT_FALSE(d.unknown);
    ASSERT_EQ(d.dir.size(), 2u);
    if (d.dir[0] == '<') {
      EXPECT_EQ(d.dir[1], '>');
      has_pos = true;
    }
  }
  EXPECT_TRUE(has_pos);
}

TEST(Dependence, SkewStencilInterchangeIllegal) {
  ir::Module m = make_skew_stencil(8);
  auto deps = analyze_dependences(*m.find("k"), 0);
  ASSERT_TRUE(deps.ok());
  EXPECT_FALSE(interchange_is_legal(*deps, 0, 1));
  EXPECT_EQ(interchange_loops(*m.find("k"), 0, 0, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Dependence, MatmulAccumulationVectors) {
  dsl::TensorProgram p("mm");
  auto a = p.input("a", {6, 6});
  auto b = p.input("b", {6, 6});
  p.output("c", matmul(a, b));
  ir::Module m = p.lower().value();
  ASSERT_TRUE(lower_to_kernel(m, "mm").ok());
  // Nest 1 = accumulation (i,k,j).
  auto deps = analyze_dependences(*m.find("mm_kernel"), 1);
  ASSERT_TRUE(deps.ok()) << deps.status().to_string();
  ASSERT_FALSE(deps->empty());
  // All C-array dependences must be (=,*,=) — carried by k only.
  for (const auto& d : *deps) {
    EXPECT_FALSE(d.unknown) << d.kind;
    ASSERT_EQ(d.dir.size(), 3u);
    EXPECT_EQ(d.dir[0], '=');
    EXPECT_EQ(d.dir[1], '*');
    EXPECT_EQ(d.dir[2], '=');
  }
  // Any single interchange is legal; innermost (j) carries nothing.
  EXPECT_TRUE(interchange_is_legal(*deps, 0, 2));
  EXPECT_TRUE(interchange_is_legal(*deps, 1, 2));
  EXPECT_TRUE(innermost_is_parallel(*deps));
}

TEST(Dependence, InterchangedMatmulStaysCorrect) {
  dsl::TensorProgram p("mmx");
  auto a = p.input("a", {5, 4});
  auto b = p.input("b", {4, 3});
  p.output("c", matmul(a, b));
  ir::Module m = p.lower().value();
  Rng rng(3);
  TensorValue av = TensorValue::zeros({5, 4});
  TensorValue bv = TensorValue::zeros({4, 3});
  for (double& x : av.data) x = rng.uniform(-1, 1);
  for (double& x : bv.data) x = rng.uniform(-1, 1);
  auto reference = run_tensor_function(m, "mmx", {av, bv});
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(lower_to_kernel(m, "mmx").ok());
  ir::Function* kfn = m.find("mmx_kernel");
  ASSERT_TRUE(interchange_loops(*kfn, 1, 1, 2).ok());  // ikj → ijk
  auto swapped = run_kernel_function(m, "mmx_kernel", {av, bv});
  ASSERT_TRUE(swapped.ok()) << swapped.status().to_string();
  for (std::size_t i = 0; i < (*reference)[0].data.size(); ++i) {
    EXPECT_NEAR((*swapped)[0].data[i], (*reference)[0].data[i], 1e-12);
  }
}

TEST(Dependence, ElementwiseLoopIsFullyParallel) {
  dsl::TensorProgram p("ew");
  auto x = p.input("x", {16});
  auto y = p.input("y", {16});
  p.output("z", x + y);
  ir::Module m = p.lower().value();
  ASSERT_TRUE(lower_to_kernel(m, "ew").ok());
  auto deps = analyze_dependences(*m.find("ew_kernel"), 0);
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(deps->empty());  // distinct arrays read vs written
  EXPECT_TRUE(innermost_is_parallel(*deps));
}

TEST(Dependence, ReductionInnermostNotParallel) {
  dsl::TensorProgram p("rd");
  auto x = p.input("x", {16});
  p.output("s", reduce("sum", x));
  ir::Module m = p.lower().value();
  ASSERT_TRUE(lower_to_kernel(m, "rd").ok());
  // Nest 1 is the accumulation loop (rank-0 accumulator: dir ('*')).
  auto deps = analyze_dependences(*m.find("rd_kernel"), 1);
  ASSERT_TRUE(deps.ok());
  ASSERT_FALSE(deps->empty());
  EXPECT_FALSE(innermost_is_parallel(*deps));
}

TEST(Dependence, MissingNestReported) {
  ir::register_everest_dialects();
  ir::Module m("none");
  ir::Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  b.ret();
  EXPECT_EQ(analyze_dependences(*fn, 0).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace everest::compiler

// ------------------------------------------------------------ NN exchange --

namespace everest::dsl {
namespace {

TEST(NnExchange, ImportsMlpModel) {
  NnModelBuilder builder("two_layer");
  builder.input("x", {2, 3})
      .initializer("W1", {3, 4}, std::vector<double>(12, 0.5))
      .initializer("b1", {2, 4}, std::vector<double>(8, 0.1))
      .initializer("W2", {4, 1}, std::vector<double>(4, 1.0))
      .node("MatMul", {"x", "W1"}, "h0")
      .node("Add", {"h0", "b1"}, "h1")
      .node("Tanh", {"h1"}, "h2")
      .node("MatMul", {"h2", "W2"}, "y")
      .output("y");
  auto program = import_nn_model(builder.to_json());
  ASSERT_TRUE(program.ok()) << program.status().to_string();
  auto module = program->lower();
  ASSERT_TRUE(module.ok()) << module.status().to_string();
  EXPECT_TRUE(ir::verify(*module).ok()) << ir::verify(*module).to_string();
  // Executable end-to-end through the reference interpreter.
  compiler::TensorValue x = compiler::TensorValue::zeros({2, 3});
  for (std::size_t i = 0; i < x.data.size(); ++i) x.data[i] = 0.1 * double(i);
  auto result = compiler::run_tensor_function(*module, "two_layer", {x});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ((*result)[0].shape, (std::vector<std::int64_t>{2, 1}));
  // Hand-check row 0: h0 = sum(x_row)*0.5 per col; h1 = h0+0.1;
  // y = 4*tanh(h1).
  const double h0 = (0.0 + 0.1 + 0.2) * 0.5;
  const double expected = 4.0 * std::tanh(h0 + 0.1);
  EXPECT_NEAR((*result)[0].data[0], expected, 1e-12);
}

TEST(NnExchange, SupportsEinsumTransposeReduceScale) {
  NnModelBuilder builder("misc");
  builder.input("a", {2, 3})
      .input("b", {2, 3})
      .node("Einsum", {"a", "b"}, "dot", json::Value("ij,kj->ik"))
      .node("Transpose", {"dot"}, "dt", json::Value(json::Array{1, 0}))
      .node("Scale", {"dt"}, "scaled", json::Value(2.0))
      .node("ReduceSum", {"scaled"}, "total")
      .output("total");
  auto program = import_nn_model(builder.to_json());
  ASSERT_TRUE(program.ok()) << program.status().to_string();
  auto module = program->lower();
  ASSERT_TRUE(module.ok()) << module.status().to_string();
  compiler::TensorValue a = compiler::TensorValue::from({2, 3},
                                                        {1, 2, 3, 4, 5, 6});
  auto result = compiler::run_tensor_function(*module, "misc", {a, a});
  ASSERT_TRUE(result.ok());
  // dot = A A^T; total = 2 * sum(dot) = 2*(14+32+32+77).
  EXPECT_NEAR((*result)[0].data[0], 2.0 * (14 + 32 + 32 + 77), 1e-12);
}

TEST(NnExchange, RejectsMalformedModels) {
  EXPECT_FALSE(import_nn_model("{not json").ok());
  EXPECT_FALSE(import_nn_model(R"({"format": "onnx"})").ok());
  // Undefined tensor.
  NnModelBuilder b1("bad");
  b1.input("x", {2, 2}).node("Relu", {"ghost"}, "y").output("y");
  EXPECT_EQ(import_nn_model(b1.to_json()).status().code(),
            StatusCode::kNotFound);
  // Duplicate definition.
  NnModelBuilder b2("dup");
  b2.input("x", {2, 2})
      .node("Relu", {"x"}, "y")
      .node("Exp", {"x"}, "y")
      .output("y");
  EXPECT_EQ(import_nn_model(b2.to_json()).status().code(),
            StatusCode::kAlreadyExists);
  // Unsupported op.
  NnModelBuilder b3("conv");
  b3.input("x", {2, 2}).node("Conv", {"x"}, "y").output("y");
  EXPECT_EQ(import_nn_model(b3.to_json()).status().code(),
            StatusCode::kUnimplemented);
  // Shape mismatch surfaces as InvalidArgument with the node name.
  NnModelBuilder b4("mismatch");
  b4.input("x", {2, 3})
      .input("w", {4, 5})
      .node("MatMul", {"x", "w"}, "y")
      .output("y");
  auto bad = import_nn_model(b4.to_json());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("y"), std::string::npos);
}

TEST(NnExchange, ImportedModelFlowsThroughLowering) {
  NnModelBuilder builder("flow");
  builder.input("x", {8, 16})
      .initializer("W", {16, 4}, std::vector<double>(64, 0.25))
      .node("MatMul", {"x", "W"}, "h")
      .node("Relu", {"h"}, "y")
      .output("y");
  auto program = import_nn_model(builder.to_json());
  ASSERT_TRUE(program.ok());
  auto module = program->lower();
  ASSERT_TRUE(module.ok());
  auto kernel = compiler::lower_to_kernel(*module, "flow");
  EXPECT_TRUE(kernel.ok()) << kernel.status().to_string();
}

}  // namespace
}  // namespace everest::dsl
