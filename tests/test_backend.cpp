// Tests for the backend emitter: SYCL-flavored source structure, offload
// and sealing decisions, IR annotation, and metadata round-trip.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "compiler/backend.hpp"
#include "dsl/workflow_dsl.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace everest::compiler {
namespace {

Variant cpu_variant(const std::string& kernel) {
  Variant v;
  v.id = kernel + "-cpu-t8";
  v.kernel = kernel;
  v.target = TargetKind::kCpu;
  v.threads = 8;
  v.latency_us = 50;
  return v;
}

Variant fpga_variant(const std::string& kernel, bool dift = false,
                     const std::string& device = "P9-VU9P") {
  Variant v;
  v.id = kernel + "-fpga-u4";
  v.kernel = kernel;
  v.target = TargetKind::kFpga;
  v.unroll = 4;
  v.dift = dift;
  v.device = device;
  v.latency_us = 10;
  return v;
}

ir::Module make_pipeline() {
  dsl::WorkflowBuilder wf("pipeline");
  dsl::SourceOptions so;
  so.rate_hz = 50.0;
  auto src = wf.source("sensor", so);
  dsl::DataAnnotations secret;
  secret.confidential = true;
  auto clean = wf.task("clean").kernel("clean_k").inputs({src})
                   .output_shape({1024}).annotate(secret).done();
  auto infer = wf.task("infer").kernel("infer_k").inputs({clean})
                   .output_shape({16}).done();
  EXPECT_TRUE(wf.sink("dashboard", infer).ok());
  return wf.lower().value();
}

TEST(Backend, EmitsSyclOrchestration) {
  ir::Module m = make_pipeline();
  std::map<std::string, Variant> selection = {
      {"clean_k", fpga_variant("clean_k", /*dift=*/true)},
      {"infer_k", cpu_variant("infer_k")},
  };
  auto out = emit_backend(m, "pipeline", selection);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out->tasks, 2);
  EXPECT_EQ(out->offloaded, 1);
  EXPECT_EQ(out->sealed, 1);  // confidential clean task
  // Source structure.
  EXPECT_NE(out->source.find("#include <sycl/sycl.hpp>"), std::string::npos);
  EXPECT_NE(out->source.find("rt.subscribe(\"sensor\""), std::string::npos);
  EXPECT_NE(out->source.find("rt.seal("), std::string::npos);
  EXPECT_NE(out->source.find("everest::offload(rt, \"clean_k\""),
            std::string::npos);
  EXPECT_NE(out->source.find(".link = \"opencapi\""), std::string::npos);
  EXPECT_NE(out->source.find(".dift = true"), std::string::npos);
  EXPECT_NE(out->source.find("h.parallel_for(sycl::range<1>(8), "
                             "infer_k_kernel"),
            std::string::npos);
  EXPECT_NE(out->source.find("rt.publish(\"dashboard\""), std::string::npos);
  // Data flows by generated variable, not placeholders.
  EXPECT_EQ(out->source.find("/*?*/"), std::string::npos);
}

TEST(Backend, NetworkDeviceUsesNetworkLink) {
  ir::Module m = make_pipeline();
  std::map<std::string, Variant> selection = {
      {"clean_k", fpga_variant("clean_k", false, "cloudFPGA-KU060")},
  };
  auto out = emit_backend(m, "pipeline", selection);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->source.find(".link = \"network\""), std::string::npos);
}

TEST(Backend, AnnotatesIrAndKeepsItValid) {
  ir::Module m = make_pipeline();
  std::map<std::string, Variant> selection = {
      {"infer_k", cpu_variant("infer_k")}};
  auto out = emit_backend(m, "pipeline", selection);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
  bool annotated = false;
  m.find("pipeline")->walk([&](ir::Operation& op) {
    if (op.str_attr("kernel") == "infer_k") {
      annotated = op.str_attr("ev.selected_variant") == "infer_k-cpu-t8";
    }
  });
  EXPECT_TRUE(annotated);
  // The annotated IR still round-trips through print/parse.
  const std::string text = ir::print(m);
  EXPECT_NE(text.find("ev.selected_variant"), std::string::npos);
}

TEST(Backend, MetadataParsesAndMatchesSelection) {
  ir::Module m = make_pipeline();
  std::map<std::string, Variant> selection = {
      {"clean_k", fpga_variant("clean_k")},
      {"infer_k", cpu_variant("infer_k")},
  };
  auto out = emit_backend(m, "pipeline", selection);
  ASSERT_TRUE(out.ok());
  auto doc = json::parse(out->metadata_json);
  ASSERT_TRUE(doc.ok());
  auto restored = variants_from_json(*doc);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
}

TEST(Backend, UnselectedKernelsRunAsHostTasks) {
  ir::Module m = make_pipeline();
  auto out = emit_backend(m, "pipeline", {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->offloaded, 0);
  EXPECT_NE(out->source.find("// host task"), std::string::npos);
}

TEST(Backend, ErrorsSurfaced) {
  ir::Module m = make_pipeline();
  EXPECT_EQ(emit_backend(m, "ghost", {}).status().code(),
            StatusCode::kNotFound);
  // A non-workflow function is rejected.
  dsl::TensorProgram p("plain");
  auto x = p.input("x", {4});
  p.output("y", relu(x));
  ir::Module m2 = p.lower().value();
  EXPECT_EQ(emit_backend(m2, "plain", {}).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace everest::compiler
