// Unit tests for the persistent storage subsystem: the on-disk record
// format (CRC framing, torn vs corrupt tails), the materialized Catalog
// and its replay-idempotence guard, append-only SegmentStores (sealing,
// compaction, reopen), the write-ahead CatalogLog (group commit,
// two-phase checkpoints, crash-mid-checkpoint convergence), the modeled
// DiskTier, and recovery instrumentation. Durable tests run against a
// throwaway directory under the system temp root.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/object.hpp"
#include "obs/registry.hpp"
#include "platform/desim.hpp"
#include "storage/storage.hpp"

namespace everest::storage {
namespace {

namespace fs = std::filesystem;

/// Self-cleaning scratch directory for durable-path tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("everest_storage_test_" + tag + "_" + std::to_string(getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

LogRecord rec(LogRecordType type, std::uint64_t seq, std::uint64_t object = 1,
              std::uint32_t shard = 0, std::uint64_t version = 0,
              std::uint64_t node = 0, double bytes = 0.0) {
  return LogRecord{type, seq, object, shard, version, node, bytes};
}

// ---------------------------------------------------------------- format --

TEST(Format, Crc32MatchesKnownVectorAndChains) {
  // The canonical CRC-32 (IEEE) check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Chaining: crc(b, seed=crc(a)) == crc(a+b).
  EXPECT_EQ(crc32(std::string_view("6789"), crc32("12345")),
            crc32("123456789"));
  EXPECT_NE(crc32("123456789"), crc32("123456788"));
}

TEST(Format, ByteReaderIsBoundsChecked) {
  std::string buf;
  put_u32(buf, 7);
  ByteReader r(buf);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // past the end: zero, not UB
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Format, RecordRoundtripsThroughFrame) {
  const LogRecord in = rec(LogRecordType::kDemote, 42, 7, 3, 2, 5, 1.5e6);
  std::string frame;
  encode_record(in, frame);
  EXPECT_EQ(frame.size(), kRecordFrameBytes);

  ByteReader reader(frame);
  LogRecord out;
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kOk);
  EXPECT_EQ(out, in);
  EXPECT_EQ(out.key(), (data::ShardKey{7, 3, 2}));
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kEndOfInput);
}

TEST(Format, CorruptPayloadDrainsReader) {
  std::string frames;
  encode_record(rec(LogRecordType::kPut, 1), frames);
  encode_record(rec(LogRecordType::kPut, 2), frames);
  frames[10] ^= 0x40;  // flip one bit inside the first payload

  ByteReader reader(frames);
  LogRecord out;
  // The CRC catches the flip; nothing after a damaged frame is trusted,
  // so the intact second record is sacrificed (tail-truncation rule).
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kCorrupt);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Format, TornFrameDrainsReader) {
  std::string frame;
  encode_record(rec(LogRecordType::kPlace, 3), frame);
  const std::string torn = frame.substr(0, frame.size() - 5);

  ByteReader reader(torn);
  LogRecord out;
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kTorn);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Format, GarbageLengthIsCorruptNotCrash) {
  std::string junk;
  put_u32(junk, 0xFFFFFFu);  // impossible length
  put_u32(junk, 0);
  junk += std::string(64, 'x');
  ByteReader reader(junk);
  LogRecord out;
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kCorrupt);
  EXPECT_EQ(reader.remaining(), 0u);
}

// --------------------------------------------------------------- catalog --

TEST(Catalog, ApplyBuildsObjectReplicaAndDiskState) {
  Catalog c;
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.apply(rec(LogRecordType::kPut, 1, 7, /*shards=*/2, 0, 0, 8.0)));
  EXPECT_TRUE(c.apply(rec(LogRecordType::kPlace, 2, 7, 0, 0, 1, 4.0)));
  EXPECT_TRUE(c.apply(rec(LogRecordType::kPlace, 3, 7, 1, 0, 2, 4.0)));
  EXPECT_TRUE(c.apply(rec(LogRecordType::kDemote, 4, 7, 0, 0, 3, 4.0)));

  ASSERT_EQ(c.objects().count(7), 1u);
  EXPECT_EQ(c.objects().at(7).num_shards, 2u);
  EXPECT_DOUBLE_EQ(c.objects().at(7).bytes, 8.0);
  ASSERT_EQ(c.ram_replicas().count(data::ShardKey{7, 0, 0}), 1u);
  EXPECT_EQ(c.ram_replicas().at(data::ShardKey{7, 0, 0}),
            (std::vector<std::uint64_t>{1}));
  ASSERT_EQ(c.disk().count(data::ShardKey{7, 0, 0}), 1u);
  EXPECT_EQ(c.disk().at(data::ShardKey{7, 0, 0}).nodes.count(3), 1u);
  EXPECT_EQ(c.last_seq(), 4u);
}

TEST(Catalog, SeqGuardMakesReplayIdempotent) {
  Catalog c;
  const LogRecord r1 = rec(LogRecordType::kPlace, 5, 1, 0, 0, 2, 4.0);
  EXPECT_TRUE(c.apply(r1));
  // Replaying the same record (or anything at or before last_seq) is a
  // no-op — the property that makes crash-mid-checkpoint safe.
  EXPECT_FALSE(c.apply(r1));
  EXPECT_FALSE(c.apply(rec(LogRecordType::kRelease, 4, 1, 0, 0, 2)));
  EXPECT_FALSE(c.apply(rec(LogRecordType::kRelease, 0, 1, 0, 0, 2)));
  EXPECT_EQ(c.ram_replicas().at(data::ShardKey{1, 0, 0}).size(), 1u);
  EXPECT_EQ(c.last_seq(), 5u);
}

TEST(Catalog, InvalidateDropsEveryStaleCopy) {
  Catalog c;
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPut, 1, 9, 1, 0, 0, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPlace, 2, 9, 0, 0, 1, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kDemote, 3, 9, 0, 0, 2, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kInvalidate, 4, 9, 0, /*ver=*/1)));
  EXPECT_TRUE(c.ram_replicas().empty());
  EXPECT_TRUE(c.disk().empty());
  EXPECT_EQ(c.objects().at(9).version, 1u);
}

TEST(Catalog, AdvisoryRecordsAdvanceSeqOnly) {
  Catalog c;
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPromote, 1, 3, 0, 0, 1, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kSeal, 2, 0, 0, 0, 1)));
  EXPECT_EQ(c.last_seq(), 2u);
  EXPECT_TRUE(c.empty());  // no durable state changed
}

TEST(Catalog, SnapshotRoundtripsByteIdentically) {
  Catalog c;
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPut, 1, 7, 2, 0, 0, 8.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPlace, 2, 7, 0, 0, 1, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kDemote, 3, 7, 1, 0, 2, 4.0)));

  const auto decoded = Catalog::decode(c.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value() == c);
  EXPECT_EQ(decoded.value().fingerprint(), c.fingerprint());
  EXPECT_EQ(decoded.value().encode(), c.encode());
}

TEST(Catalog, CorruptSnapshotIsRejected) {
  Catalog c;
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPut, 1, 7, 1, 0, 0, 8.0)));
  std::string bytes = c.encode();
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_EQ(Catalog::decode(bytes).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(Catalog::decode(bytes.substr(0, 3)).status().code(),
            StatusCode::kDataLoss);
}

// --------------------------------------------------------------- segment --

TEST(Segment, InMemoryAppendLocateErase) {
  SegmentStore store("");  // no dir: pure simulation mode
  const data::ShardKey key{1, 0, 0};
  ASSERT_TRUE(store.append(key, 100.0).ok());
  EXPECT_TRUE(store.contains(key));
  ASSERT_TRUE(store.locate(key).ok());
  EXPECT_DOUBLE_EQ(store.locate(key).value(), 100.0);
  EXPECT_DOUBLE_EQ(store.live_bytes(), 100.0);

  EXPECT_TRUE(store.erase(key));
  EXPECT_FALSE(store.contains(key));
  EXPECT_FALSE(store.erase(key));
  EXPECT_DOUBLE_EQ(store.live_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(store.stats().dead_bytes, 100.0);
  EXPECT_EQ(store.locate(key).status().code(), StatusCode::kNotFound);
}

TEST(Segment, DuplicateAppendIsAlreadyExists) {
  SegmentStore store("");
  ASSERT_TRUE(store.append(data::ShardKey{1, 0, 0}, 10.0).ok());
  EXPECT_EQ(store.append(data::ShardKey{1, 0, 0}, 10.0).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(store.stats().appends, 1u);
}

TEST(Segment, SealsAndRollsWhenFull) {
  SegmentConfig config;
  config.segment_bytes = 100.0;
  SegmentStore store("", config);
  for (std::uint32_t s = 0; s < 6; ++s) {
    ASSERT_TRUE(store.append(data::ShardKey{1, s, 0}, 40.0).ok());
  }
  // 240 logical bytes over 100-byte segments: at least two seals, and
  // every shard stays indexed across the rolls.
  EXPECT_GE(store.stats().seals, 2u);
  EXPECT_GE(store.num_segments(), 2u);
  EXPECT_EQ(store.size(), 6u);
  EXPECT_DOUBLE_EQ(store.live_bytes(), 240.0);
}

TEST(Segment, CompactReclaimsMostlyDeadSegments) {
  SegmentConfig config;
  config.segment_bytes = 100.0;
  config.compact_dead_fraction = 0.5;
  SegmentStore store("", config);
  for (std::uint32_t s = 0; s < 6; ++s) {
    ASSERT_TRUE(store.append(data::ShardKey{1, s, 0}, 40.0).ok());
  }
  // Kill most of the early shards, then compact: dead-heavy sealed
  // segments are rewritten, their live remainder survives.
  for (std::uint32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(store.erase(data::ShardKey{1, s, 0}));
  }
  const std::size_t reclaimed = store.compact();
  EXPECT_GE(reclaimed, 1u);
  EXPECT_EQ(store.stats().segments_removed, reclaimed);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_DOUBLE_EQ(store.live_bytes(), 80.0);
  for (std::uint32_t s = 4; s < 6; ++s) {
    EXPECT_TRUE(store.contains(data::ShardKey{1, s, 0}));
  }
}

TEST(Segment, ReopenRebuildsIndexFromFiles) {
  TempDir dir("seg_reopen");
  {
    SegmentConfig config;
    config.segment_bytes = 100.0;
    SegmentStore store(dir.path(), config);
    for (std::uint32_t s = 0; s < 5; ++s) {
      ASSERT_TRUE(store.append(data::ShardKey{2, s, 1}, 40.0).ok());
    }
    ASSERT_TRUE(store.erase(data::ShardKey{2, 0, 1}));
  }  // destructor closes the files

  SegmentStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 4u);
  EXPECT_DOUBLE_EQ(reopened.live_bytes(), 160.0);
  EXPECT_FALSE(reopened.contains(data::ShardKey{2, 0, 1}));
  for (std::uint32_t s = 1; s < 5; ++s) {
    EXPECT_TRUE(reopened.contains(data::ShardKey{2, s, 1}));
  }
  EXPECT_EQ(reopened.stats().corrupt_records, 0u);
}

TEST(Segment, ReopenTruncatesCorruptTail) {
  TempDir dir("seg_corrupt");
  std::string victim;
  {
    SegmentStore store(dir.path());
    for (std::uint32_t s = 0; s < 3; ++s) {
      ASSERT_TRUE(store.append(data::ShardKey{3, s, 0}, 10.0).ok());
    }
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      victim = entry.path().string();
    }
  }
  ASSERT_FALSE(victim.empty());
  // Flip a bit in the last record's payload: a crash-corrupted tail.
  std::string bytes = slurp(victim);
  bytes[bytes.size() - 10] ^= 0x08;
  dump(victim, bytes);

  SegmentStore reopened(dir.path());
  // The two records before the damage survive; the damaged tail is
  // dropped and counted, never fatal.
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_GE(reopened.stats().corrupt_records, 1u);
  EXPECT_TRUE(reopened.contains(data::ShardKey{3, 0, 0}));
  EXPECT_TRUE(reopened.contains(data::ShardKey{3, 1, 0}));
  EXPECT_FALSE(reopened.contains(data::ShardKey{3, 2, 0}));
  // And the store still accepts appends (into a fresh segment, never
  // after the damaged region).
  EXPECT_TRUE(reopened.append(data::ShardKey{3, 9, 0}, 10.0).ok());
}

TEST(Segment, InvalidateObjectDropsOnlyStaleVersions) {
  SegmentStore store("");
  ASSERT_TRUE(store.append(data::ShardKey{4, 0, 0}, 10.0).ok());
  ASSERT_TRUE(store.append(data::ShardKey{4, 1, 0}, 10.0).ok());
  ASSERT_TRUE(store.append(data::ShardKey{4, 0, 2}, 10.0).ok());
  ASSERT_TRUE(store.append(data::ShardKey{5, 0, 0}, 10.0).ok());
  EXPECT_EQ(store.invalidate_object(4, /*version=*/2), 2u);
  EXPECT_FALSE(store.contains(data::ShardKey{4, 0, 0}));
  EXPECT_TRUE(store.contains(data::ShardKey{4, 0, 2}));  // current version
  EXPECT_TRUE(store.contains(data::ShardKey{5, 0, 0}));  // other object
}

// ------------------------------------------------------------------- log --

TEST(CatalogLogTest, AppendStampsMonotonicSeqsAndReplays) {
  TempDir dir("log_roundtrip");
  Catalog mirror;
  {
    CatalogLog log(dir.path());
    for (std::uint64_t i = 0; i < 10; ++i) {
      LogRecord r = rec(LogRecordType::kPlace, 0, /*object=*/i, 0, 0, 1, 4.0);
      const std::uint64_t seq = log.append(r);
      EXPECT_EQ(seq, i + 1);
      r.seq = seq;
      ASSERT_TRUE(mirror.apply(r));
    }
    EXPECT_EQ(log.stats().appends, 10u);
  }
  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_FALSE(replayed.snapshot_loaded);
  EXPECT_EQ(replayed.records_applied, 10u);
  EXPECT_EQ(replayed.corrupt_records, 0u);
  // Byte-identical catalog: the mirror maintained online equals the one
  // rebuilt from disk.
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
}

TEST(CatalogLogTest, GroupCommitHonorsSyncEvery) {
  TempDir dir("log_sync");
  LogConfig config;
  config.sync_every = 4;
  CatalogLog log(dir.path(), config);
  for (int i = 0; i < 10; ++i) {
    log.append(rec(LogRecordType::kPlace, 0, 1, 0, 0, 1, 4.0));
  }
  EXPECT_EQ(log.stats().syncs, 2u);  // after the 4th and 8th append
  log.sync();
  EXPECT_EQ(log.stats().syncs, 3u);  // flushes the 2 stragglers
  log.sync();
  EXPECT_EQ(log.stats().syncs, 3u);  // nothing buffered: no-op
}

TEST(CatalogLogTest, CheckpointTruncatesAndSnapshotCarries) {
  TempDir dir("log_ckpt");
  Catalog mirror;
  CatalogLog log(dir.path());
  for (std::uint64_t i = 0; i < 6; ++i) {
    LogRecord r = rec(LogRecordType::kPlace, 0, i, 0, 0, 2, 4.0);
    r.seq = log.append(r);
    ASSERT_TRUE(mirror.apply(r));
  }
  ASSERT_TRUE(log.checkpoint(mirror).ok());
  EXPECT_DOUBLE_EQ(log.stats().log_bytes, 0.0);
  EXPECT_EQ(log.stats().checkpoints, 1u);

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_TRUE(replayed.snapshot_loaded);
  EXPECT_EQ(replayed.records_applied, 0u);  // everything lives in the snap
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
}

TEST(CatalogLogTest, CrashBetweenSnapshotAndTruncateConverges) {
  TempDir dir("log_torn_ckpt");
  Catalog mirror;
  CatalogLog log(dir.path());
  for (std::uint64_t i = 0; i < 8; ++i) {
    LogRecord r = rec(LogRecordType::kPlace, 0, i, 0, 0, 1, 4.0);
    r.seq = log.append(r);
    ASSERT_TRUE(mirror.apply(r));
  }
  log.sync();
  const std::uint64_t log_only = CatalogLog::replay(dir.path())
                                     .catalog.fingerprint();

  // Phase 1 lands, the process dies before phase 2: the snapshot exists
  // AND the full log still exists — the torn-checkpoint window.
  ASSERT_TRUE(log.write_snapshot(mirror).ok());

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_TRUE(replayed.snapshot_loaded);
  // Every logged record is seen again and skipped by the seq guard…
  EXPECT_EQ(replayed.records_applied, 0u);
  EXPECT_EQ(replayed.records_skipped, 8u);
  // …and the result is byte-identical to both the online mirror and a
  // log-only replay: the window is convergent, not just non-fatal.
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
  EXPECT_EQ(replayed.catalog.fingerprint(), log_only);
}

TEST(CatalogLogTest, CorruptTailIsSkippedCountedAndMetered) {
  TempDir dir("log_corrupt");
  {
    CatalogLog log(dir.path());
    for (std::uint64_t i = 0; i < 5; ++i) {
      log.append(rec(LogRecordType::kPlace, 0, i, 0, 0, 1, 4.0));
    }
  }
  // Corrupt the last record in place (bit flip inside its payload).
  const std::string path = CatalogLog::log_path(dir.path());
  std::string bytes = slurp(path);
  ASSERT_EQ(bytes.size(), 5 * kRecordFrameBytes);
  bytes[bytes.size() - 4] ^= 0x20;
  dump(path, bytes);

  obs::Registry registry;
  const ReplayResult replayed = CatalogLog::replay(dir.path(), &registry);
  EXPECT_EQ(replayed.records_applied, 4u);
  EXPECT_EQ(replayed.corrupt_records, 1u);
  EXPECT_EQ(registry.counter("storage.log.corrupt_records")->value(), 1u);
  EXPECT_EQ(registry.counter("storage.log.replayed_records")->value(), 4u);
}

TEST(CatalogLogTest, TornTailRecordIsTruncated) {
  TempDir dir("log_torn");
  {
    CatalogLog log(dir.path());
    for (std::uint64_t i = 0; i < 3; ++i) {
      log.append(rec(LogRecordType::kDemote, 0, i, 0, 0, 1, 4.0));
    }
  }
  const std::string path = CatalogLog::log_path(dir.path());
  std::string bytes = slurp(path);
  dump(path, bytes.substr(0, bytes.size() - 20));  // crash mid-write

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_EQ(replayed.records_applied, 2u);
  EXPECT_EQ(replayed.corrupt_records, 1u);
}

TEST(CatalogLogTest, CorruptSnapshotFallsBackToLog) {
  TempDir dir("log_bad_snap");
  Catalog mirror;
  CatalogLog log(dir.path());
  for (std::uint64_t i = 0; i < 4; ++i) {
    LogRecord r = rec(LogRecordType::kPlace, 0, i, 0, 0, 1, 4.0);
    r.seq = log.append(r);
    ASSERT_TRUE(mirror.apply(r));
  }
  log.sync();
  ASSERT_TRUE(log.write_snapshot(mirror).ok());
  // Damage the snapshot; the untruncated log still holds everything.
  const std::string snap = CatalogLog::snapshot_path(dir.path());
  std::string bytes = slurp(snap);
  bytes[bytes.size() / 2] ^= 0x01;
  dump(snap, bytes);

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_FALSE(replayed.snapshot_loaded);
  EXPECT_GE(replayed.corrupt_records, 1u);
  EXPECT_EQ(replayed.records_applied, 4u);
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
}

TEST(CatalogLogTest, SequenceNumbersResumeAcrossReopen) {
  TempDir dir("log_resume");
  {
    CatalogLog log(dir.path());
    for (int i = 0; i < 5; ++i) {
      log.append(rec(LogRecordType::kPlace, 0, 1, 0, 0, 1, 4.0));
    }
  }
  CatalogLog reopened(dir.path());
  EXPECT_EQ(reopened.next_seq(), 6u);
  EXPECT_EQ(reopened.append(rec(LogRecordType::kPlace, 0, 2, 0, 0, 1, 4.0)),
            6u);
}

TEST(CatalogLogTest, ConcurrentAppendsSerializeWithoutLossOrTears) {
  TempDir dir("log_threads");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::vector<std::uint64_t>> seqs(kThreads);
  {
    CatalogLog log(dir.path());
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&log, &seqs, t] {
        for (int i = 0; i < kPerThread; ++i) {
          seqs[t].push_back(log.append(
              rec(LogRecordType::kPlace, 0, static_cast<std::uint64_t>(t), 0,
                  0, static_cast<std::uint64_t>(i), 4.0)));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  std::set<std::uint64_t> unique;
  for (const auto& per_thread : seqs) {
    unique.insert(per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_EQ(replayed.records_applied,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(replayed.corrupt_records, 0u);
}

// ------------------------------------------------------------------ tier --

TierConfig small_tier(double capacity = 1000.0) {
  TierConfig config;
  config.capacity_bytes = capacity;
  return config;
}

TEST(Tier, DemotePromoteRoundtripChargesModeledTime) {
  platform::Simulator sim;
  DiskTier tier(sim, /*node=*/0, small_tier(1e9));
  const data::ShardKey key{1, 0, 0};
  ASSERT_TRUE(tier.demote(key, 1e6).ok());
  EXPECT_TRUE(tier.resident(key));
  sim.run();  // drain the background write

  bool read = false;
  ASSERT_TRUE(tier.promote(key, [&] { read = true; }).ok());
  sim.run();
  EXPECT_TRUE(read);
  // The promotion paid at least the idle-device estimate (more under
  // contention, never less).
  EXPECT_GE(sim.now(), tier.read_estimate_us(1e6));
  EXPECT_EQ(tier.stats().demotions, 1u);
  EXPECT_EQ(tier.stats().promotions, 1u);
  EXPECT_DOUBLE_EQ(tier.stats().bytes_written, 1e6);
  EXPECT_DOUBLE_EQ(tier.stats().bytes_read, 1e6);
}

TEST(Tier, CapacityRejectsAndDuplicatesAreSafe) {
  platform::Simulator sim;
  DiskTier tier(sim, 0, small_tier(/*capacity=*/100.0));
  ASSERT_TRUE(tier.demote(data::ShardKey{1, 0, 0}, 60.0).ok());
  EXPECT_EQ(tier.demote(data::ShardKey{1, 0, 0}, 60.0).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(tier.demote(data::ShardKey{1, 1, 0}, 60.0).code(),
            StatusCode::kResourceExhausted);
  // Only the capacity refusal counts as a rejection; a duplicate demote
  // means the shard is already safe on disk.
  EXPECT_EQ(tier.stats().rejected, 1u);
  EXPECT_EQ(tier.promote(data::ShardKey{9, 0, 0}, [] {}).code(),
            StatusCode::kNotFound);
}

TEST(Tier, OfflineRefusesButKeepsContents) {
  platform::Simulator sim;
  DiskTier tier(sim, 0, small_tier());
  const data::ShardKey key{1, 0, 0};
  ASSERT_TRUE(tier.demote(key, 10.0).ok());

  tier.set_offline(true);  // fail-stop: the node died
  EXPECT_FALSE(tier.resident(key));
  EXPECT_EQ(tier.demote(data::ShardKey{1, 1, 0}, 10.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(tier.promote(key, [] {}).code(),
            StatusCode::kFailedPrecondition);

  tier.set_offline(false);  // disks survive crashes
  EXPECT_TRUE(tier.resident(key));
}

TEST(Tier, AdoptReseedsWithoutChargingIo) {
  platform::Simulator sim;
  DiskTier tier(sim, 0, small_tier());
  tier.adopt(data::ShardKey{1, 0, 0}, 50.0);
  EXPECT_TRUE(tier.resident(data::ShardKey{1, 0, 0}));
  EXPECT_EQ(tier.stats().adopted, 1u);
  EXPECT_DOUBLE_EQ(tier.stats().bytes_written, 0.0);  // no modeled write
  EXPECT_DOUBLE_EQ(tier.resident_bytes(), 50.0);
}

// -------------------------------------------------------------- recovery --

TEST(Recovery, ReportsTimingAndMetrics) {
  TempDir dir("recovery");
  Catalog mirror;
  {
    CatalogLog log(dir.path());
    for (std::uint64_t i = 0; i < 6; ++i) {
      LogRecord r = rec(LogRecordType::kDemote, 0, i, 0, 0, 1, 4.0);
      r.seq = log.append(r);
      ASSERT_TRUE(mirror.apply(r));
    }
  }
  obs::Registry registry;
  const RecoveryReport report = recover_catalog(dir.path(), &registry);
  EXPECT_EQ(report.replay.records_applied, 6u);
  EXPECT_EQ(report.replay.catalog.fingerprint(), mirror.fingerprint());
  EXPECT_GT(report.wall_us, 0.0);
  EXPECT_EQ(registry.counter("storage.recovery.runs")->value(), 1u);
  // The gauge is stamped at timer scope exit, a hair after the report's
  // explicit read — never before it.
  EXPECT_GE(registry.gauge("storage.recovery.last_us")->value(),
            report.wall_us);
  EXPECT_NE(report.to_string().find("applied=6"), std::string::npos);
}

}  // namespace
}  // namespace everest::storage
