// Unit tests for the persistent storage subsystem: the on-disk record
// format (CRC framing, torn vs corrupt tails), the materialized Catalog
// and its replay-idempotence guard, append-only SegmentStores (sealing,
// compaction, reopen), the write-ahead CatalogLog (group commit,
// two-phase checkpoints, crash-mid-checkpoint convergence), the modeled
// DiskTier, and recovery instrumentation. Durable tests run against a
// throwaway directory under the system temp root.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/object.hpp"
#include "data/plane.hpp"
#include "obs/registry.hpp"
#include "platform/desim.hpp"
#include "storage/storage.hpp"

namespace everest::storage {
namespace {

namespace fs = std::filesystem;

/// Self-cleaning scratch directory for durable-path tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("everest_storage_test_" + tag + "_" + std::to_string(getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

LogRecord rec(LogRecordType type, std::uint64_t seq, std::uint64_t object = 1,
              std::uint32_t shard = 0, std::uint64_t version = 0,
              std::uint64_t node = 0, double bytes = 0.0) {
  return LogRecord{type, seq, object, shard, version, node, bytes};
}

// ---------------------------------------------------------------- format --

TEST(Format, Crc32MatchesKnownVectorAndChains) {
  // The canonical CRC-32 (IEEE) check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Chaining: crc(b, seed=crc(a)) == crc(a+b).
  EXPECT_EQ(crc32(std::string_view("6789"), crc32("12345")),
            crc32("123456789"));
  EXPECT_NE(crc32("123456789"), crc32("123456788"));
}

TEST(Format, ByteReaderIsBoundsChecked) {
  std::string buf;
  put_u32(buf, 7);
  ByteReader r(buf);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // past the end: zero, not UB
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Format, RecordRoundtripsThroughFrame) {
  const LogRecord in = rec(LogRecordType::kDemote, 42, 7, 3, 2, 5, 1.5e6);
  std::string frame;
  encode_record(in, frame);
  EXPECT_EQ(frame.size(), kRecordFrameBytes);

  ByteReader reader(frame);
  LogRecord out;
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kOk);
  EXPECT_EQ(out, in);
  EXPECT_EQ(out.key(), (data::ShardKey{7, 3, 2}));
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kEndOfInput);
}

TEST(Format, CorruptPayloadDrainsReader) {
  std::string frames;
  encode_record(rec(LogRecordType::kPut, 1), frames);
  encode_record(rec(LogRecordType::kPut, 2), frames);
  frames[10] ^= 0x40;  // flip one bit inside the first payload

  ByteReader reader(frames);
  LogRecord out;
  // The CRC catches the flip; nothing after a damaged frame is trusted,
  // so the intact second record is sacrificed (tail-truncation rule).
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kCorrupt);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Format, TornFrameDrainsReader) {
  std::string frame;
  encode_record(rec(LogRecordType::kPlace, 3), frame);
  const std::string torn = frame.substr(0, frame.size() - 5);

  ByteReader reader(torn);
  LogRecord out;
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kTorn);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Format, GarbageLengthIsCorruptNotCrash) {
  std::string junk;
  put_u32(junk, 0xFFFFFFu);  // impossible length
  put_u32(junk, 0);
  junk += std::string(64, 'x');
  ByteReader reader(junk);
  LogRecord out;
  EXPECT_EQ(decode_record(reader, &out), DecodeStatus::kCorrupt);
  EXPECT_EQ(reader.remaining(), 0u);
}

// --------------------------------------------------------------- catalog --

TEST(Catalog, ApplyBuildsObjectReplicaAndDiskState) {
  Catalog c;
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.apply(rec(LogRecordType::kPut, 1, 7, /*shards=*/2, 0, 0, 8.0)));
  EXPECT_TRUE(c.apply(rec(LogRecordType::kPlace, 2, 7, 0, 0, 1, 4.0)));
  EXPECT_TRUE(c.apply(rec(LogRecordType::kPlace, 3, 7, 1, 0, 2, 4.0)));
  EXPECT_TRUE(c.apply(rec(LogRecordType::kDemote, 4, 7, 0, 0, 3, 4.0)));

  ASSERT_EQ(c.objects().count(7), 1u);
  EXPECT_EQ(c.objects().at(7).num_shards, 2u);
  EXPECT_DOUBLE_EQ(c.objects().at(7).bytes, 8.0);
  ASSERT_EQ(c.ram_replicas().count(data::ShardKey{7, 0, 0}), 1u);
  EXPECT_EQ(c.ram_replicas().at(data::ShardKey{7, 0, 0}),
            (std::vector<std::uint64_t>{1}));
  ASSERT_EQ(c.disk().count(data::ShardKey{7, 0, 0}), 1u);
  EXPECT_EQ(c.disk().at(data::ShardKey{7, 0, 0}).nodes.count(3), 1u);
  EXPECT_EQ(c.last_seq(), 4u);
}

TEST(Catalog, SeqGuardMakesReplayIdempotent) {
  Catalog c;
  const LogRecord r1 = rec(LogRecordType::kPlace, 5, 1, 0, 0, 2, 4.0);
  EXPECT_TRUE(c.apply(r1));
  // Replaying the same record (or anything at or before last_seq) is a
  // no-op — the property that makes crash-mid-checkpoint safe.
  EXPECT_FALSE(c.apply(r1));
  EXPECT_FALSE(c.apply(rec(LogRecordType::kRelease, 4, 1, 0, 0, 2)));
  EXPECT_FALSE(c.apply(rec(LogRecordType::kRelease, 0, 1, 0, 0, 2)));
  EXPECT_EQ(c.ram_replicas().at(data::ShardKey{1, 0, 0}).size(), 1u);
  EXPECT_EQ(c.last_seq(), 5u);
}

TEST(Catalog, InvalidateDropsEveryStaleCopy) {
  Catalog c;
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPut, 1, 9, 1, 0, 0, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPlace, 2, 9, 0, 0, 1, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kDemote, 3, 9, 0, 0, 2, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kInvalidate, 4, 9, 0, /*ver=*/1)));
  EXPECT_TRUE(c.ram_replicas().empty());
  EXPECT_TRUE(c.disk().empty());
  EXPECT_EQ(c.objects().at(9).version, 1u);
}

TEST(Catalog, AdvisoryRecordsAdvanceSeqOnly) {
  Catalog c;
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPromote, 1, 3, 0, 0, 1, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kSeal, 2, 0, 0, 0, 1)));
  EXPECT_EQ(c.last_seq(), 2u);
  EXPECT_TRUE(c.empty());  // no durable state changed
}

TEST(Catalog, SnapshotRoundtripsByteIdentically) {
  Catalog c;
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPut, 1, 7, 2, 0, 0, 8.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPlace, 2, 7, 0, 0, 1, 4.0)));
  ASSERT_TRUE(c.apply(rec(LogRecordType::kDemote, 3, 7, 1, 0, 2, 4.0)));

  const auto decoded = Catalog::decode(c.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value() == c);
  EXPECT_EQ(decoded.value().fingerprint(), c.fingerprint());
  EXPECT_EQ(decoded.value().encode(), c.encode());
}

TEST(Catalog, CorruptSnapshotIsRejected) {
  Catalog c;
  ASSERT_TRUE(c.apply(rec(LogRecordType::kPut, 1, 7, 1, 0, 0, 8.0)));
  std::string bytes = c.encode();
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_EQ(Catalog::decode(bytes).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(Catalog::decode(bytes.substr(0, 3)).status().code(),
            StatusCode::kDataLoss);
}

// --------------------------------------------------------------- segment --

TEST(Segment, InMemoryAppendLocateErase) {
  SegmentStore store("");  // no dir: pure simulation mode
  const data::ShardKey key{1, 0, 0};
  ASSERT_TRUE(store.append(key, 100.0).ok());
  EXPECT_TRUE(store.contains(key));
  ASSERT_TRUE(store.locate(key).ok());
  EXPECT_DOUBLE_EQ(store.locate(key).value(), 100.0);
  EXPECT_DOUBLE_EQ(store.live_bytes(), 100.0);

  EXPECT_TRUE(store.erase(key));
  EXPECT_FALSE(store.contains(key));
  EXPECT_FALSE(store.erase(key));
  EXPECT_DOUBLE_EQ(store.live_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(store.stats().dead_bytes, 100.0);
  EXPECT_EQ(store.locate(key).status().code(), StatusCode::kNotFound);
}

TEST(Segment, DuplicateAppendIsAlreadyExists) {
  SegmentStore store("");
  ASSERT_TRUE(store.append(data::ShardKey{1, 0, 0}, 10.0).ok());
  EXPECT_EQ(store.append(data::ShardKey{1, 0, 0}, 10.0).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(store.stats().appends, 1u);
}

TEST(Segment, SealsAndRollsWhenFull) {
  SegmentConfig config;
  config.segment_bytes = 100.0;
  SegmentStore store("", config);
  for (std::uint32_t s = 0; s < 6; ++s) {
    ASSERT_TRUE(store.append(data::ShardKey{1, s, 0}, 40.0).ok());
  }
  // 240 logical bytes over 100-byte segments: at least two seals, and
  // every shard stays indexed across the rolls.
  EXPECT_GE(store.stats().seals, 2u);
  EXPECT_GE(store.num_segments(), 2u);
  EXPECT_EQ(store.size(), 6u);
  EXPECT_DOUBLE_EQ(store.live_bytes(), 240.0);
}

TEST(Segment, CompactReclaimsMostlyDeadSegments) {
  SegmentConfig config;
  config.segment_bytes = 100.0;
  config.compact_dead_fraction = 0.5;
  SegmentStore store("", config);
  for (std::uint32_t s = 0; s < 6; ++s) {
    ASSERT_TRUE(store.append(data::ShardKey{1, s, 0}, 40.0).ok());
  }
  // Kill most of the early shards, then compact: dead-heavy sealed
  // segments are rewritten, their live remainder survives.
  for (std::uint32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(store.erase(data::ShardKey{1, s, 0}));
  }
  const std::size_t reclaimed = store.compact();
  EXPECT_GE(reclaimed, 1u);
  EXPECT_EQ(store.stats().segments_removed, reclaimed);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_DOUBLE_EQ(store.live_bytes(), 80.0);
  for (std::uint32_t s = 4; s < 6; ++s) {
    EXPECT_TRUE(store.contains(data::ShardKey{1, s, 0}));
  }
}

TEST(Segment, ReopenRebuildsIndexFromFiles) {
  TempDir dir("seg_reopen");
  {
    SegmentConfig config;
    config.segment_bytes = 100.0;
    SegmentStore store(dir.path(), config);
    for (std::uint32_t s = 0; s < 5; ++s) {
      ASSERT_TRUE(store.append(data::ShardKey{2, s, 1}, 40.0).ok());
    }
    ASSERT_TRUE(store.erase(data::ShardKey{2, 0, 1}));
  }  // destructor closes the files

  SegmentStore reopened(dir.path());
  EXPECT_EQ(reopened.size(), 4u);
  EXPECT_DOUBLE_EQ(reopened.live_bytes(), 160.0);
  EXPECT_FALSE(reopened.contains(data::ShardKey{2, 0, 1}));
  for (std::uint32_t s = 1; s < 5; ++s) {
    EXPECT_TRUE(reopened.contains(data::ShardKey{2, s, 1}));
  }
  EXPECT_EQ(reopened.stats().corrupt_records, 0u);
}

TEST(Segment, ReopenTruncatesCorruptTail) {
  TempDir dir("seg_corrupt");
  std::string victim;
  {
    SegmentStore store(dir.path());
    for (std::uint32_t s = 0; s < 3; ++s) {
      ASSERT_TRUE(store.append(data::ShardKey{3, s, 0}, 10.0).ok());
    }
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      victim = entry.path().string();
    }
  }
  ASSERT_FALSE(victim.empty());
  // Flip a bit in the last record's payload: a crash-corrupted tail.
  std::string bytes = slurp(victim);
  bytes[bytes.size() - 10] ^= 0x08;
  dump(victim, bytes);

  SegmentStore reopened(dir.path());
  // The two records before the damage survive; the damaged tail is
  // dropped and counted, never fatal.
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_GE(reopened.stats().corrupt_records, 1u);
  EXPECT_TRUE(reopened.contains(data::ShardKey{3, 0, 0}));
  EXPECT_TRUE(reopened.contains(data::ShardKey{3, 1, 0}));
  EXPECT_FALSE(reopened.contains(data::ShardKey{3, 2, 0}));
  // And the store still accepts appends (into a fresh segment, never
  // after the damaged region).
  EXPECT_TRUE(reopened.append(data::ShardKey{3, 9, 0}, 10.0).ok());
}

TEST(Segment, InvalidateObjectDropsOnlyStaleVersions) {
  SegmentStore store("");
  ASSERT_TRUE(store.append(data::ShardKey{4, 0, 0}, 10.0).ok());
  ASSERT_TRUE(store.append(data::ShardKey{4, 1, 0}, 10.0).ok());
  ASSERT_TRUE(store.append(data::ShardKey{4, 0, 2}, 10.0).ok());
  ASSERT_TRUE(store.append(data::ShardKey{5, 0, 0}, 10.0).ok());
  EXPECT_EQ(store.invalidate_object(4, /*version=*/2), 2u);
  EXPECT_FALSE(store.contains(data::ShardKey{4, 0, 0}));
  EXPECT_TRUE(store.contains(data::ShardKey{4, 0, 2}));  // current version
  EXPECT_TRUE(store.contains(data::ShardKey{5, 0, 0}));  // other object
}

// ------------------------------------------------------------------- log --

TEST(CatalogLogTest, AppendStampsMonotonicSeqsAndReplays) {
  TempDir dir("log_roundtrip");
  Catalog mirror;
  {
    CatalogLog log(dir.path());
    for (std::uint64_t i = 0; i < 10; ++i) {
      LogRecord r = rec(LogRecordType::kPlace, 0, /*object=*/i, 0, 0, 1, 4.0);
      const std::uint64_t seq = log.append(r).seq;
      EXPECT_EQ(seq, i + 1);
      r.seq = seq;
      ASSERT_TRUE(mirror.apply(r));
    }
    EXPECT_EQ(log.stats().appends, 10u);
  }
  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_FALSE(replayed.snapshot_loaded);
  EXPECT_EQ(replayed.records_applied, 10u);
  EXPECT_EQ(replayed.corrupt_records, 0u);
  // Byte-identical catalog: the mirror maintained online equals the one
  // rebuilt from disk.
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
}

TEST(CatalogLogTest, GroupCommitHonorsSyncEvery) {
  TempDir dir("log_sync");
  LogConfig config;
  config.sync_every = 4;
  CatalogLog log(dir.path(), config);
  for (int i = 0; i < 10; ++i) {
    log.append(rec(LogRecordType::kPlace, 0, 1, 0, 0, 1, 4.0));
  }
  EXPECT_EQ(log.stats().syncs, 2u);  // after the 4th and 8th append
  log.sync();
  EXPECT_EQ(log.stats().syncs, 3u);  // flushes the 2 stragglers
  log.sync();
  EXPECT_EQ(log.stats().syncs, 3u);  // nothing buffered: no-op
}

TEST(CatalogLogTest, CheckpointTruncatesAndSnapshotCarries) {
  TempDir dir("log_ckpt");
  Catalog mirror;
  CatalogLog log(dir.path());
  for (std::uint64_t i = 0; i < 6; ++i) {
    LogRecord r = rec(LogRecordType::kPlace, 0, i, 0, 0, 2, 4.0);
    r.seq = log.append(r).seq;
    ASSERT_TRUE(mirror.apply(r));
  }
  ASSERT_TRUE(log.checkpoint(mirror).ok());
  EXPECT_DOUBLE_EQ(log.stats().log_bytes, 0.0);
  EXPECT_EQ(log.stats().checkpoints, 1u);

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_TRUE(replayed.snapshot_loaded);
  EXPECT_EQ(replayed.records_applied, 0u);  // everything lives in the snap
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
}

TEST(CatalogLogTest, CrashBetweenSnapshotAndTruncateConverges) {
  TempDir dir("log_torn_ckpt");
  Catalog mirror;
  CatalogLog log(dir.path());
  for (std::uint64_t i = 0; i < 8; ++i) {
    LogRecord r = rec(LogRecordType::kPlace, 0, i, 0, 0, 1, 4.0);
    r.seq = log.append(r).seq;
    ASSERT_TRUE(mirror.apply(r));
  }
  log.sync();
  const std::uint64_t log_only = CatalogLog::replay(dir.path())
                                     .catalog.fingerprint();

  // Phase 1 lands, the process dies before phase 2: the snapshot exists
  // AND the full log still exists — the torn-checkpoint window.
  ASSERT_TRUE(log.write_snapshot(mirror).ok());

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_TRUE(replayed.snapshot_loaded);
  // Every logged record is seen again and skipped by the seq guard…
  EXPECT_EQ(replayed.records_applied, 0u);
  EXPECT_EQ(replayed.records_skipped, 8u);
  // …and the result is byte-identical to both the online mirror and a
  // log-only replay: the window is convergent, not just non-fatal.
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
  EXPECT_EQ(replayed.catalog.fingerprint(), log_only);
}

TEST(CatalogLogTest, CorruptTailIsSkippedCountedAndMetered) {
  TempDir dir("log_corrupt");
  {
    CatalogLog log(dir.path());
    for (std::uint64_t i = 0; i < 5; ++i) {
      log.append(rec(LogRecordType::kPlace, 0, i, 0, 0, 1, 4.0));
    }
  }
  // Corrupt the last record in place (bit flip inside its payload).
  const std::string path = CatalogLog::log_path(dir.path());
  std::string bytes = slurp(path);
  ASSERT_EQ(bytes.size(), 5 * kRecordFrameBytes);
  bytes[bytes.size() - 4] ^= 0x20;
  dump(path, bytes);

  obs::Registry registry;
  const ReplayResult replayed = CatalogLog::replay(dir.path(), &registry);
  EXPECT_EQ(replayed.records_applied, 4u);
  EXPECT_EQ(replayed.corrupt_records, 1u);
  EXPECT_EQ(registry.counter("storage.log.corrupt_records")->value(), 1u);
  EXPECT_EQ(registry.counter("storage.log.replayed_records")->value(), 4u);
}

TEST(CatalogLogTest, TornTailRecordIsTruncated) {
  TempDir dir("log_torn");
  {
    CatalogLog log(dir.path());
    for (std::uint64_t i = 0; i < 3; ++i) {
      log.append(rec(LogRecordType::kDemote, 0, i, 0, 0, 1, 4.0));
    }
  }
  const std::string path = CatalogLog::log_path(dir.path());
  std::string bytes = slurp(path);
  dump(path, bytes.substr(0, bytes.size() - 20));  // crash mid-write

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_EQ(replayed.records_applied, 2u);
  EXPECT_EQ(replayed.corrupt_records, 1u);
}

TEST(CatalogLogTest, CorruptSnapshotFallsBackToLog) {
  TempDir dir("log_bad_snap");
  Catalog mirror;
  CatalogLog log(dir.path());
  for (std::uint64_t i = 0; i < 4; ++i) {
    LogRecord r = rec(LogRecordType::kPlace, 0, i, 0, 0, 1, 4.0);
    r.seq = log.append(r).seq;
    ASSERT_TRUE(mirror.apply(r));
  }
  log.sync();
  ASSERT_TRUE(log.write_snapshot(mirror).ok());
  // Damage the snapshot; the untruncated log still holds everything.
  const std::string snap = CatalogLog::snapshot_path(dir.path());
  std::string bytes = slurp(snap);
  bytes[bytes.size() / 2] ^= 0x01;
  dump(snap, bytes);

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_FALSE(replayed.snapshot_loaded);
  EXPECT_GE(replayed.corrupt_records, 1u);
  EXPECT_EQ(replayed.records_applied, 4u);
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
}

TEST(CatalogLogTest, SequenceNumbersResumeAcrossReopen) {
  TempDir dir("log_resume");
  {
    CatalogLog log(dir.path());
    for (int i = 0; i < 5; ++i) {
      log.append(rec(LogRecordType::kPlace, 0, 1, 0, 0, 1, 4.0));
    }
  }
  CatalogLog reopened(dir.path());
  EXPECT_EQ(reopened.next_seq(), 6u);
  EXPECT_EQ(reopened.append(rec(LogRecordType::kPlace, 0, 2, 0, 0, 1, 4.0)).seq,
            6u);
}

TEST(CatalogLogTest, ConcurrentAppendsSerializeWithoutLossOrTears) {
  TempDir dir("log_threads");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::vector<std::uint64_t>> seqs(kThreads);
  {
    CatalogLog log(dir.path());
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&log, &seqs, t] {
        for (int i = 0; i < kPerThread; ++i) {
          seqs[t].push_back(
              log.append(rec(LogRecordType::kPlace, 0,
                             static_cast<std::uint64_t>(t), 0, 0,
                             static_cast<std::uint64_t>(i), 4.0))
                  .seq);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  std::set<std::uint64_t> unique;
  for (const auto& per_thread : seqs) {
    unique.insert(per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_EQ(replayed.records_applied,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(replayed.corrupt_records, 0u);
}

// ------------------------------------------------------------------ tier --

TierConfig small_tier(double capacity = 1000.0) {
  TierConfig config;
  config.capacity_bytes = capacity;
  return config;
}

TEST(Tier, DemotePromoteRoundtripChargesModeledTime) {
  platform::Simulator sim;
  DiskTier tier(sim, /*node=*/0, small_tier(1e9));
  const data::ShardKey key{1, 0, 0};
  ASSERT_TRUE(tier.demote(key, 1e6).ok());
  EXPECT_TRUE(tier.resident(key));
  sim.run();  // drain the background write

  bool read = false;
  ASSERT_TRUE(tier.promote(key, [&] { read = true; }).ok());
  sim.run();
  EXPECT_TRUE(read);
  // The promotion paid at least the idle-device estimate (more under
  // contention, never less).
  EXPECT_GE(sim.now(), tier.read_estimate_us(1e6));
  EXPECT_EQ(tier.stats().demotions, 1u);
  EXPECT_EQ(tier.stats().promotions, 1u);
  EXPECT_DOUBLE_EQ(tier.stats().bytes_written, 1e6);
  EXPECT_DOUBLE_EQ(tier.stats().bytes_read, 1e6);
}

TEST(Tier, CapacityRejectsAndDuplicatesAreSafe) {
  platform::Simulator sim;
  DiskTier tier(sim, 0, small_tier(/*capacity=*/100.0));
  ASSERT_TRUE(tier.demote(data::ShardKey{1, 0, 0}, 60.0).ok());
  EXPECT_EQ(tier.demote(data::ShardKey{1, 0, 0}, 60.0).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(tier.demote(data::ShardKey{1, 1, 0}, 60.0).code(),
            StatusCode::kResourceExhausted);
  // Only the capacity refusal counts as a rejection; a duplicate demote
  // means the shard is already safe on disk.
  EXPECT_EQ(tier.stats().rejected, 1u);
  EXPECT_EQ(tier.promote(data::ShardKey{9, 0, 0}, [] {}).code(),
            StatusCode::kNotFound);
}

TEST(Tier, OfflineRefusesButKeepsContents) {
  platform::Simulator sim;
  DiskTier tier(sim, 0, small_tier());
  const data::ShardKey key{1, 0, 0};
  ASSERT_TRUE(tier.demote(key, 10.0).ok());

  tier.set_offline(true);  // fail-stop: the node died
  EXPECT_FALSE(tier.resident(key));
  EXPECT_EQ(tier.demote(data::ShardKey{1, 1, 0}, 10.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(tier.promote(key, [] {}).code(),
            StatusCode::kFailedPrecondition);

  tier.set_offline(false);  // disks survive crashes
  EXPECT_TRUE(tier.resident(key));
}

TEST(Tier, AdoptReseedsWithoutChargingIo) {
  platform::Simulator sim;
  DiskTier tier(sim, 0, small_tier());
  tier.adopt(data::ShardKey{1, 0, 0}, 50.0);
  EXPECT_TRUE(tier.resident(data::ShardKey{1, 0, 0}));
  EXPECT_EQ(tier.stats().adopted, 1u);
  EXPECT_DOUBLE_EQ(tier.stats().bytes_written, 0.0);  // no modeled write
  EXPECT_DOUBLE_EQ(tier.resident_bytes(), 50.0);
}

// -------------------------------------------------------------- recovery --

TEST(Recovery, ReportsTimingAndMetrics) {
  TempDir dir("recovery");
  Catalog mirror;
  {
    CatalogLog log(dir.path());
    for (std::uint64_t i = 0; i < 6; ++i) {
      LogRecord r = rec(LogRecordType::kDemote, 0, i, 0, 0, 1, 4.0);
      r.seq = log.append(r).seq;
      ASSERT_TRUE(mirror.apply(r));
    }
  }
  obs::Registry registry;
  const RecoveryReport report = recover_catalog(dir.path(), &registry);
  EXPECT_EQ(report.replay.records_applied, 6u);
  EXPECT_EQ(report.replay.catalog.fingerprint(), mirror.fingerprint());
  EXPECT_GT(report.wall_us, 0.0);
  EXPECT_EQ(registry.counter("storage.recovery.runs")->value(), 1u);
  // The gauge is stamped at timer scope exit, a hair after the report's
  // explicit read — never before it.
  EXPECT_GE(registry.gauge("storage.recovery.last_us")->value(),
            report.wall_us);
  EXPECT_NE(report.to_string().find("applied=6"), std::string::npos);
}

// ------------------------------------------------------------------- env --

TEST(Env, PosixRoundtripAndErrnoMapping) {
  TempDir dir("env");
  Env* env = Env::posix();
  const std::string path = dir.path() + "/blob.bin";

  auto out = env->open_trunc(path);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out.value()->append("hello ").ok());
  ASSERT_TRUE(out.value()->append("world").ok());
  ASSERT_TRUE(out.value()->sync().ok());
  ASSERT_TRUE(out.value()->close().ok());

  auto read = env->read_file(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello world");
  EXPECT_TRUE(env->file_exists(path));

  ASSERT_TRUE(env->truncate_file(path, 5).ok());
  EXPECT_EQ(env->read_file(path).value(), "hello");

  ASSERT_TRUE(env->rename_file(path, path + ".2").ok());
  EXPECT_FALSE(env->file_exists(path));
  auto names = env->list_dir(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().size(), 1u);
  EXPECT_EQ(names.value().front(), "blob.bin.2");

  auto space = env->free_bytes(dir.path());
  ASSERT_TRUE(space.ok());
  EXPECT_GT(space.value(), 0u);

  // errno mapping: ENOENT surfaces as NOT_FOUND, not a generic failure.
  EXPECT_EQ(env->read_file(dir.path() + "/nope").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(env->remove_file(path + ".2").ok());
  EXPECT_EQ(env->remove_file(path + ".2").code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------- fault env --

TEST(FaultEnv, ScriptsFaultsPerPathOpAndNthCall) {
  TempDir dir("faultenv");
  FaultEnv fenv(Env::posix(), /*seed=*/7);
  const std::string path = dir.path() + "/target.bin";

  // Third write to *this path* fails ENOSPC; everything else is passed
  // straight through to the base env.
  fenv.inject({"target.bin", IoOp::kWrite,
               resilience::FaultKind::kDiskIoFull, /*after_calls=*/2,
               /*count=*/1, /*magnitude=*/1.0});
  auto out = fenv.open_trunc(path);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value()->append("aa").ok());
  EXPECT_TRUE(out.value()->append("bb").ok());
  EXPECT_EQ(out.value()->append("cc").code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(out.value()->append("dd").ok());  // window exhausted
  ASSERT_TRUE(out.value()->close().ok());
  EXPECT_EQ(Env::posix()->read_file(path).value(), "aabbdd");

  EXPECT_EQ(fenv.stats().injected_errors, 1u);
  ASSERT_EQ(fenv.journal().size(), 1u);
  // Journal lines use the basename only, so they are deterministic
  // across scratch roots.
  EXPECT_NE(fenv.journal()[0].find("target.bin"), std::string::npos);
  EXPECT_NE(fenv.journal()[0].find("disk-io-full"), std::string::npos);
}

TEST(FaultEnv, SameSeedSamePlanSameJournal) {
  resilience::FaultPlan plan;
  plan.disk_corrupt(/*node=*/0, /*at_us=*/0.0, /*duration_us=*/1e9,
                    /*flip_rate=*/1.0);
  std::vector<std::string> journals[2];
  for (int run = 0; run < 2; ++run) {
    TempDir dir("faultenv_det_" + std::to_string(run));
    FaultEnv fenv(Env::posix(), /*seed=*/99);
    fenv.arm_from_plan(plan, /*worker=*/0, /*now_us=*/1.0);
    auto out = fenv.open_trunc(dir.path() + "/x.bin");
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out.value()->append("payload-payload-payload").ok());
    ASSERT_TRUE(out.value()->close().ok());
    journals[run] = fenv.journal();
    EXPECT_EQ(fenv.stats().bit_flips, 1u);
  }
  ASSERT_FALSE(journals[0].empty());
  EXPECT_EQ(journals[0], journals[1]);
}

// ------------------------------------------- log under media faults (a) --

TEST(CatalogLogTest, ShortWriteIsQueuedThenRecoveredLossless) {
  TempDir dir("log_shortwrite");
  FaultEnv fenv(Env::posix());
  // The 3rd log write fails EIO after landing half the frame — the
  // classic torn-tail short write.
  fenv.inject({"catalog.log", IoOp::kWrite,
               resilience::FaultKind::kDiskIoError, /*after_calls=*/2,
               /*count=*/1, /*magnitude=*/0.5});

  CatalogLog log(dir.path(), LogConfig{}, nullptr, &fenv);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const AppendAck ack =
        log.append(rec(LogRecordType::kPlace, 0, i, 0, 0, 1, 4.0));
    EXPECT_EQ(ack.seq, i + 1);
    if (i == 2) {
      // The acknowledged-durability contract: the caller is TOLD the
      // write did not land, instead of a silent void return.
      EXPECT_EQ(ack.durable.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(log.degraded());
    }
  }
  EXPECT_GE(log.stats().pending_records, 1u);
  EXPECT_EQ(fenv.stats().short_writes, 1u);

  // Fault window is spent: the next sync truncates the torn tail,
  // re-appends the queued frames in order, and recovers.
  ASSERT_TRUE(log.sync().ok());
  EXPECT_FALSE(log.degraded());
  EXPECT_EQ(log.stats().pending_records, 0u);
  EXPECT_EQ(log.stats().recoveries, 1u);

  // Zero acknowledged-write loss: every stamped record replays, and the
  // torn half-frame is gone.
  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_EQ(replayed.records_applied, 5u);
  EXPECT_EQ(replayed.corrupt_records, 0u);
}

TEST(CatalogLogTest, CheckpointWhileDegradedSubsumesBacklog) {
  TempDir dir("log_degraded_ckpt");
  FaultEnv fenv(Env::posix());
  fenv.inject({"catalog.log", IoOp::kWrite,
               resilience::FaultKind::kDiskIoFull, /*after_calls=*/1,
               /*count=*/std::uint64_t(-1), /*magnitude=*/1.0});

  Catalog mirror;
  CatalogLog log(dir.path(), LogConfig{}, nullptr, &fenv);
  for (std::uint64_t i = 0; i < 4; ++i) {
    LogRecord r = rec(LogRecordType::kPlace, 0, i, 0, 0, 1, 4.0);
    r.seq = log.append(r).seq;
    ASSERT_TRUE(mirror.apply(r));
  }
  EXPECT_TRUE(log.degraded());

  // ENOSPC clears (the snapshot path was never faulted); the checkpoint
  // folds every stamped record — including the disk-refused backlog —
  // into the snapshot and the backlog is dropped as obsolete.
  fenv.clear();
  ASSERT_TRUE(log.checkpoint(mirror).ok());
  EXPECT_FALSE(log.degraded());
  EXPECT_EQ(log.stats().pending_records, 0u);

  const ReplayResult replayed = CatalogLog::replay(dir.path());
  EXPECT_TRUE(replayed.snapshot_loaded);
  EXPECT_EQ(replayed.catalog.fingerprint(), mirror.fingerprint());
}

// --------------------------------------- segment store degradation (E23) --

TEST(Segment, WriteFaultDegradesToReadOnlyAndRetryIoResumes) {
  TempDir dir("seg_degrade");
  FaultEnv fenv(Env::posix());
  fenv.inject({"seg-", IoOp::kWrite, resilience::FaultKind::kDiskIoFull,
               /*after_calls=*/2, /*count=*/1, /*magnitude=*/1.0});

  SegmentStore store(dir.path(), {}, &fenv);
  ASSERT_TRUE(store.append(data::ShardKey{1, 0, 0}, 10.0).ok());
  ASSERT_TRUE(store.append(data::ShardKey{2, 0, 0}, 10.0).ok());
  // The faulted write indexes nothing and latches read-only.
  EXPECT_EQ(store.append(data::ShardKey{3, 0, 0}, 10.0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(store.read_only());
  EXPECT_FALSE(store.contains(data::ShardKey{3, 0, 0}));
  EXPECT_EQ(store.append(data::ShardKey{4, 0, 0}, 10.0).code(),
            StatusCode::kResourceExhausted);

  // Reads and in-memory erases still work while degraded; the erase's
  // tombstone frame queues for the healthy disk.
  EXPECT_TRUE(store.contains(data::ShardKey{1, 0, 0}));
  EXPECT_TRUE(store.erase(data::ShardKey{1, 0, 0}));
  EXPECT_EQ(store.pending_tombstones(), 1u);

  // The fault cleared (count=1): the probe opens a fresh segment,
  // flushes the queued tombstone, and appends work again.
  ASSERT_TRUE(store.retry_io().ok());
  EXPECT_FALSE(store.read_only());
  EXPECT_EQ(store.pending_tombstones(), 0u);
  ASSERT_TRUE(store.append(data::ShardKey{3, 0, 0}, 10.0).ok());
  EXPECT_EQ(store.stats().io_resumes, 1u);

  // Crash + reopen: the erase holds (tombstone landed), the post-resume
  // append holds, the faulted append never happened.
  SegmentStore reopened(dir.path(), {}, nullptr);
  EXPECT_FALSE(reopened.contains(data::ShardKey{1, 0, 0}));
  EXPECT_TRUE(reopened.contains(data::ShardKey{2, 0, 0}));
  EXPECT_TRUE(reopened.contains(data::ShardKey{3, 0, 0}));
  EXPECT_FALSE(reopened.contains(data::ShardKey{4, 0, 0}));
}

TEST(Segment, ShortWriteTornFrameIsDroppedOnReopen) {
  TempDir dir("seg_shortwrite");
  FaultEnv fenv(Env::posix());
  fenv.inject({"seg-", IoOp::kWrite, resilience::FaultKind::kDiskIoError,
               /*after_calls=*/1, /*count=*/1, /*magnitude=*/0.6});
  {
    SegmentStore store(dir.path(), {}, &fenv);
    ASSERT_TRUE(store.append(data::ShardKey{1, 0, 0}, 10.0).ok());
    EXPECT_EQ(store.append(data::ShardKey{2, 0, 0}, 10.0).code(),
              StatusCode::kUnavailable);
    EXPECT_EQ(fenv.stats().short_writes, 1u);
  }
  // The torn 60%-of-a-frame tail is detected by the CRC framing and
  // truncated away; only the fully written record survives.
  SegmentStore reopened(dir.path(), {}, nullptr);
  EXPECT_TRUE(reopened.contains(data::ShardKey{1, 0, 0}));
  EXPECT_FALSE(reopened.contains(data::ShardKey{2, 0, 0}));
  EXPECT_EQ(reopened.stats().corrupt_records, 1u);
}

// --------------------------------------------- crash mid-compaction (b) --

TEST(Segment, CrashDuringCompactionConvergesWithoutResurrection) {
  TempDir dir("seg_compact_crash");
  SegmentConfig config;
  config.segment_bytes = 40.0;  // a few records per segment
  FaultEnv fenv(Env::posix());
  // The victim file's unlink fails — the crash point between "live
  // records rewritten to the new segment" and "old segment erased".
  fenv.inject({"seg-", IoOp::kRemove, resilience::FaultKind::kDiskIoError,
               /*after_calls=*/0, /*count=*/1, /*magnitude=*/1.0});
  {
    SegmentStore store(dir.path(), config, &fenv);
    ASSERT_TRUE(store.append(data::ShardKey{1, 0, 0}, 20.0).ok());
    ASSERT_TRUE(store.append(data::ShardKey{2, 0, 0}, 20.0).ok());  // seals
    ASSERT_TRUE(store.append(data::ShardKey{3, 0, 0}, 20.0).ok());
    // Kill most of segment 0 so it qualifies for compaction; key 1
    // survives and must be moved.
    ASSERT_TRUE(store.erase(data::ShardKey{2, 0, 0}));
    ASSERT_EQ(store.compact(), 1u);
    // The unlink failed: both the old file (with keys 1, 2) and the new
    // records (tombstones + re-append of key 1) are on disk.
    EXPECT_GE(store.stats().io_errors, 1u);
    EXPECT_TRUE(store.contains(data::ShardKey{1, 0, 0}));
    EXPECT_FALSE(store.contains(data::ShardKey{2, 0, 0}));
    // Process "crashes" here (no clean shutdown beyond close()).
  }
  // Reopen replays both files: last-write-wins re-homes key 1 to the
  // new segment, and key 2's tombstone outranks its stale record — an
  // erased key is never resurrected by a half-finished compaction.
  SegmentStore reopened(dir.path(), config, nullptr);
  EXPECT_TRUE(reopened.contains(data::ShardKey{1, 0, 0}));
  EXPECT_FALSE(reopened.contains(data::ShardKey{2, 0, 0}));
  EXPECT_TRUE(reopened.contains(data::ShardKey{3, 0, 0}));
  EXPECT_DOUBLE_EQ(reopened.live_bytes(), 40.0);
}

// ------------------------------------------------------ scrub/quarantine --

/// Builds a store with `n` sealed one-record segments.
void fill_sealed(SegmentStore& store, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.append(data::ShardKey{i + 1, 0, 0}, 10.0).ok());
    store.seal_active();
  }
}

TEST(Scrubber, CleanStoreVerifiesEverySealedSegment) {
  TempDir dir("scrub_clean");
  SegmentStore store(dir.path(), {}, nullptr);
  fill_sealed(store, 3);
  Scrubber scrub(store);
  const ScrubReport report = scrub.full_pass();
  EXPECT_EQ(report.segments_verified, 3u);
  EXPECT_EQ(report.segments_quarantined, 0u);
  EXPECT_TRUE(report.suspects.empty());
  EXPECT_GT(report.bytes_scanned, 0.0);
}

TEST(Scrubber, ByteBudgetPacesStepsButAlwaysMakesProgress) {
  TempDir dir("scrub_budget");
  SegmentStore store(dir.path(), {}, nullptr);
  fill_sealed(store, 4);
  ScrubConfig config;
  config.bytes_per_step = 1.0;  // less than one segment: one per step
  Scrubber scrub(store, config);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(scrub.step().segments_verified, 1u);
  }
  EXPECT_EQ(scrub.stats().segments_verified, 4u);
  // The cursor wrapped: a fifth step starts the next pass.
  EXPECT_EQ(scrub.step().segments_verified, 1u);
}

TEST(Scrubber, BitRotIsQuarantinedAndNeverResurrected) {
  TempDir dir("scrub_rot");
  SegmentStore store(dir.path(), {}, nullptr);
  fill_sealed(store, 2);
  const auto sealed = store.sealed_segment_ids();
  ASSERT_EQ(sealed.size(), 2u);

  // Rot one payload bit of the first sealed segment behind the store's
  // back — the silent corruption only a scrub can find.
  const std::string path =
      dir.path() + "/seg-" + std::to_string(sealed[0]) + ".dat";
  std::string blob = slurp(path);
  ASSERT_FALSE(blob.empty());
  blob[10] ^= 0x04;
  dump(path, blob);

  Scrubber scrub(store);
  const ScrubReport report = scrub.full_pass();
  EXPECT_EQ(report.segments_verified, 1u);
  EXPECT_EQ(report.segments_quarantined, 1u);
  ASSERT_EQ(report.suspects.size(), 1u);
  EXPECT_EQ(report.suspects[0], (data::ShardKey{1, 0, 0}));

  // Suspect keys are out of the index and the file is renamed aside.
  EXPECT_FALSE(store.contains(data::ShardKey{1, 0, 0}));
  EXPECT_TRUE(store.contains(data::ShardKey{2, 0, 0}));
  EXPECT_FALSE(Env::posix()->file_exists(path));
  EXPECT_TRUE(Env::posix()->file_exists(path + ".quarantined"));

  // A second pass finds nothing left to flag, and a reopen cannot load
  // the quarantined file back (tombstones + rename both block it).
  EXPECT_EQ(scrub.full_pass().segments_quarantined, 0u);
  SegmentStore reopened(dir.path(), {}, nullptr);
  EXPECT_FALSE(reopened.contains(data::ShardKey{1, 0, 0}));
  EXPECT_TRUE(reopened.contains(data::ShardKey{2, 0, 0}));
}

// ------------------------------------- plane-level degradation + repair --

TEST(PlaneDurability, EnospcDegradesTierThenAutoResumes) {
  TempDir dir("plane_enospc");
  FaultEnv fenv(Env::posix());
  // Node 0's first segment write hits ENOSPC; the medium then "clears"
  // (count=1) and the periodic probe must bring the tier back without
  // any operator action.
  fenv.inject({"tier0", IoOp::kWrite, resilience::FaultKind::kDiskIoFull,
               /*after_calls=*/0, /*count=*/1, /*magnitude=*/1.0});

  platform::Simulator sim;
  obs::Registry registry;
  data::PlaneConfig pc;
  pc.num_nodes = 2;
  pc.replication = 1;
  pc.cache_bytes = 80.0;  // two shards: every stage evicts
  pc.shard_limit_bytes = 64.0;
  pc.storage.disk_capacity_bytes = 1e6;
  pc.storage.dir = dir.path();
  pc.storage.env = &fenv;
  pc.registry = &registry;
  data::DataPlane plane(sim, pc);

  for (std::uint64_t i = 1; i <= 60; ++i) plane.put(i, 40.0, 1);
  for (std::uint64_t i = 1; i <= 60; ++i) {
    ASSERT_TRUE(plane.stage(i, 0, [] {}).ok());
    sim.run();
  }
  const data::PlaneStats stats = plane.stats();
  // The first demotion tripped the fault, the tier went read-only, the
  // gauge went up, demotions shed — and a later probe resumed writes.
  EXPECT_EQ(stats.tier_faults, 1u);
  EXPECT_EQ(stats.tier_resumes, 1u);
  EXPECT_FALSE(plane.tier_read_only(0));
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_GT(stats.demote_rejected, 0u);
  EXPECT_EQ(registry.gauge("storage.tier.read_only", {{"node", "0"}})->value(),
            0.0);
  // The journal records both transitions, in order.
  ASSERT_GE(plane.scrub_journal().size(), 2u);
  EXPECT_EQ(plane.scrub_journal()[0], "tier-read-only node=0");
  EXPECT_EQ(plane.scrub_journal()[1], "tier-resumed node=0");
}

// ------------------------------ scrub/repair determinism, per-policy (c) --

/// Runs one fixed rot-scrub-repair scenario and returns every
/// deterministic event trace it produced: the plane's scrub/repair
/// journal followed by the per-node scrubber journal.
std::vector<std::string> run_rot_scenario(data::EvictionPolicy policy,
                                          const std::string& tag) {
  TempDir dir("scrub_det_" + tag);
  platform::Simulator sim;
  data::PlaneConfig pc;
  pc.num_nodes = 2;
  pc.replication = 2;
  pc.eviction = policy;
  pc.cache_bytes = 1e6;  // generous: policies differ only in metadata
  pc.shard_limit_bytes = 64.0;
  pc.storage.disk_capacity_bytes = 1e6;
  pc.storage.dir = dir.path();
  pc.storage.segment.segment_bytes = 40.0;
  data::DataPlane plane(sim, pc);

  for (std::uint64_t i = 1; i <= 6; ++i) plane.put(i, 32.0, 0);
  // Exercise the cache layer (so LRU/LFU/cost-aware actually diverge in
  // their bookkeeping) without letting it influence what is on disk.
  for (std::uint64_t i = 1; i <= 6; ++i) {
    EXPECT_TRUE(plane.stage(i, 1, [] {}).ok());
    EXPECT_TRUE(plane.stage(i, 1, [] {}).ok());
  }
  sim.run();
  // Identical durable contents for every policy: one sealed
  // single-record segment per shard on node 1's tier.
  for (std::uint64_t i = 1; i <= 6; ++i) {
    EXPECT_TRUE(plane.tier(1)->demote(data::ShardKey{i, 0, 0}, 32.0).ok());
    plane.tier(1)->store().seal_active();
  }
  sim.run();

  // Deterministic rot: one bit in the 1st and 3rd sealed segments.
  for (const std::uint64_t id : {0ULL, 2ULL}) {
    const std::string path =
        dir.path() + "/tier1/seg-" + std::to_string(id) + ".dat";
    std::string blob = slurp(path);
    EXPECT_FALSE(blob.empty());
    blob[10] ^= 0x01;
    dump(path, blob);
  }

  const ScrubReport report = plane.scrub_node(1);  // budget covers all
  EXPECT_EQ(report.segments_quarantined, 2u);
  sim.run();  // drain the repair transfers

  // Zero loss: every object still available after rot + repair.
  for (std::uint64_t i = 1; i <= 6; ++i) EXPECT_TRUE(plane.available(i));

  std::vector<std::string> events = plane.scrub_journal();
  const auto& scrubbed = plane.scrubber(1)->journal();
  events.insert(events.end(), scrubbed.begin(), scrubbed.end());
  return events;
}

class ScrubDeterminism
    : public ::testing::TestWithParam<data::EvictionPolicy> {};

TEST_P(ScrubDeterminism, SameFaultsSameJournalWhateverTheCachePolicy) {
  const auto trace_a = run_rot_scenario(GetParam(), "a");
  const auto trace_b = run_rot_scenario(GetParam(), "b");
  ASSERT_FALSE(trace_a.empty());
  // Same seed + same faults ⇒ byte-identical event sequence...
  EXPECT_EQ(trace_a, trace_b);
  // ...and the cache policy is not allowed to leak into scrub/repair:
  // every policy's trace matches the LRU baseline byte for byte.
  const auto baseline = run_rot_scenario(data::EvictionPolicy::kLru, "base");
  EXPECT_EQ(trace_a, baseline);
}

INSTANTIATE_TEST_SUITE_P(Policies, ScrubDeterminism,
                         ::testing::Values(data::EvictionPolicy::kLru,
                                           data::EvictionPolicy::kLfu,
                                           data::EvictionPolicy::kCostAware));

}  // namespace
}  // namespace everest::storage
