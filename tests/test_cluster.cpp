// Tests for the serving federation: membership suspect/dead/rejoin edges
// on virtual time, shard-map determinism and minimal movement across
// failovers, routing determinism (same seed + same membership events =>
// byte-identical decision logs, swept over replication factors), and
// end-to-end federation behaviour — keyed locality, crash/failover/rejoin
// availability, graceful drain. Wall-clock waits poll with generous
// timeouts: CI may run on one core, so tests assert accounting and
// transitions, not speed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/federation.hpp"
#include "cluster/membership.hpp"
#include "cluster/router.hpp"
#include "cluster/shard_map.hpp"

namespace everest::cluster {
namespace {

using resilience::Health;

/// Fast-detection config for virtual-time membership tests: mean
/// heartbeat 2 ms, suspect at phi 2 (~9.2 ms silence), dead at phi 4
/// (~18.4 ms silence).
MembershipConfig fast_membership() {
  MembershipConfig config;
  config.heartbeat_interval_us = 2'000.0;
  config.suspect_phi = 2.0;
  config.dead_phi = 4.0;
  return config;
}

std::vector<std::string> node_names(std::size_t n) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back("n" + std::to_string(i));
  return names;
}

/// A cheap deterministic endpoint (value = seed % 1000), as in test_serve.
serve::Endpoint test_endpoint(const std::string& kernel = "test_kernel") {
  serve::Endpoint ep;
  ep.kernel = kernel;
  compiler::Variant v;
  v.id = kernel + "-cpu";
  v.kernel = kernel;
  v.target = compiler::TargetKind::kCpu;
  v.latency_us = 50.0;
  v.energy_uj = 100.0;
  ep.variants = {v};
  ep.handler = [](const serve::Batch& batch, std::vector<double>* values) {
    values->clear();
    for (const serve::PendingRequest& pending : batch.requests) {
      values->push_back(static_cast<double>(pending.request.seed % 1000));
    }
    return OkStatus();
  };
  return ep;
}

// ----------------------------------------------------------- membership

TEST(Membership, RegularHeartbeatsStayHealthy) {
  Membership membership(node_names(3), fast_membership());
  double now = 0.0;
  for (int beat = 0; beat < 10; ++beat) {
    for (std::size_t i = 0; i < 3; ++i) membership.heartbeat(i, now);
    EXPECT_TRUE(membership.update(now).empty());
    now += 2'000.0;
  }
  auto view = membership.view();
  EXPECT_EQ(view->epoch, 0u);
  EXPECT_EQ(view->alive_count(), 3u);
}

TEST(Membership, SilenceEscalatesSuspectThenDead) {
  Membership membership(node_names(2), fast_membership());
  double now = 0.0;
  for (int beat = 0; beat < 5; ++beat) {
    membership.heartbeat(0, now);
    membership.heartbeat(1, now);
    (void)membership.update(now);
    now += 2'000.0;
  }
  const double last_beat = now - 2'000.0;
  // Node 1 goes silent; node 0 keeps beating. phi = 0.434 * silence /
  // mean: suspect (phi 2) needs ~9.2 ms of silence, dead (phi 4) ~18.4 ms.
  for (double t = last_beat + 2'000.0; t <= last_beat + 12'000.0;
       t += 2'000.0) {
    membership.heartbeat(0, t);
  }

  auto t1 = membership.update(last_beat + 12'000.0);
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0].node, 1u);
  EXPECT_EQ(t1[0].from, Health::kHealthy);
  EXPECT_EQ(t1[0].to, Health::kSuspected);
  auto view = membership.view();
  EXPECT_EQ(view->epoch, 1u);
  EXPECT_FALSE(view->is_routable(1));  // suspects stop receiving work
  EXPECT_EQ(view->alive_count(), 1u);

  for (double t = last_beat + 14'000.0; t <= last_beat + 25'000.0;
       t += 2'000.0) {
    membership.heartbeat(0, t);
  }
  auto t2 = membership.update(last_beat + 25'000.0);
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_EQ(t2[0].to, Health::kDead);
  EXPECT_EQ(membership.view()->epoch, 2u);
}

TEST(Membership, DetectionIntervalBoundsSilenceToDead) {
  Membership membership(node_names(1), fast_membership());
  double now = 0.0;
  for (int beat = 0; beat < 8; ++beat) {
    membership.heartbeat(0, now);
    (void)membership.update(now);
    now += 2'000.0;
  }
  const double last_beat = now - 2'000.0;
  // At 1.1x the documented bound the node must be dead (EWMA mean can sit
  // slightly below the configured interval, never meaningfully above).
  const double bound = membership.detection_interval_us();
  (void)membership.update(last_beat + 1.1 * bound);
  EXPECT_EQ(membership.view()->health[0], Health::kDead);
}

TEST(Membership, RejoinRevivesAndDetectorStaysCalibrated) {
  Membership membership(node_names(2), fast_membership());
  double now = 0.0;
  for (int beat = 0; beat < 5; ++beat) {
    membership.heartbeat(0, now);
    membership.heartbeat(1, now);
    (void)membership.update(now);
    now += 2'000.0;
  }
  // Long outage on node 1 (100x the detection interval).
  now += 100.0 * membership.detection_interval_us();
  membership.heartbeat(0, now);
  (void)membership.update(now);
  ASSERT_EQ(membership.view()->health[1], Health::kDead);

  // Rejoin: first heartbeat revives; the outage gap must NOT enter the
  // inter-arrival EWMA (heartbeat() resets a dead node's detector).
  membership.heartbeat(1, now);
  auto revived = membership.update(now);
  ASSERT_EQ(revived.size(), 1u);
  EXPECT_EQ(revived[0].from, Health::kDead);
  EXPECT_EQ(revived[0].to, Health::kHealthy);

  for (int beat = 0; beat < 5; ++beat) {
    now += 2'000.0;
    membership.heartbeat(0, now);
    membership.heartbeat(1, now);
    (void)membership.update(now);
  }
  // A poisoned mean (outage folded in) would put the next detection at
  // ~20x the bound; a calibrated one declares dead within ~1.1x.
  const double silent_from = now;
  (void)membership.update(silent_from + 1.5 * membership.detection_interval_us());
  EXPECT_EQ(membership.view()->health[1], Health::kDead)
      << "rejoin poisoned the inter-arrival model";
}

TEST(Membership, ViewsAreImmutableSnapshots) {
  Membership membership(node_names(2), fast_membership());
  double now = 0.0;
  for (int beat = 0; beat < 5; ++beat) {
    membership.heartbeat(0, now);
    membership.heartbeat(1, now);
    (void)membership.update(now);
    now += 2'000.0;
  }
  auto before = membership.view();
  (void)membership.update(now + 50'000.0);  // both silent -> dead
  EXPECT_EQ(before->alive_count(), 2u);     // old snapshot unchanged
  EXPECT_EQ(membership.view()->alive_count(), 0u);
  EXPECT_GT(membership.view()->epoch, before->epoch);
}

// ------------------------------------------------------------ shard map

MembershipView healthy_view(std::size_t n, std::uint64_t epoch = 0) {
  MembershipView view;
  view.epoch = epoch;
  view.health.assign(n, Health::kHealthy);
  for (std::size_t i = 0; i < n; ++i) view.routable.push_back(i);
  return view;
}

TEST(ShardMap, DeterministicAcrossInstances) {
  ShardMapConfig config;
  config.num_shards = 32;
  config.replication = 2;
  ShardMap a(5, config);
  ShardMap b(5, config);
  EXPECT_EQ(a.table()->replicas, b.table()->replicas);
  // Same view sequence => same tables.
  MembershipView view = healthy_view(5, 1);
  view.health[2] = Health::kDead;
  view.routable = {0, 1, 3, 4};
  EXPECT_EQ(a.rebuild(view), b.rebuild(view));
  EXPECT_EQ(a.table()->replicas, b.table()->replicas);
  EXPECT_EQ(a.table()->version, 1u);
}

TEST(ShardMap, EveryShardFullyReplicatedWhenHealthy) {
  ShardMapConfig config;
  config.num_shards = 64;
  config.replication = 3;
  ShardMap map(4, config);
  auto table = map.table();
  for (const auto& replicas : table->replicas) {
    ASSERT_EQ(replicas.size(), 3u);
    std::set<std::size_t> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), 3u);  // replicas on distinct nodes
  }
  EXPECT_LT(table->primary_imbalance(), 2.0);
}

TEST(ShardMap, ReplicationCappedByHealthyNodes) {
  ShardMapConfig config;
  config.num_shards = 16;
  config.replication = 3;
  ShardMap map(4, config);
  MembershipView view = healthy_view(4, 1);
  view.health[0] = Health::kDead;
  view.health[1] = Health::kDead;
  view.routable = {2, 3};
  map.rebuild(view);
  for (const auto& replicas : map.table()->replicas) {
    EXPECT_EQ(replicas.size(), 2u);  // only two hosts remain
  }
}

TEST(ShardMap, FailoverMovesOnlyTheDeadNodesShards) {
  ShardMapConfig config;
  config.num_shards = 64;
  config.replication = 2;
  ShardMap map(6, config);
  auto before = map.table();

  MembershipView view = healthy_view(6, 1);
  const std::size_t dead = 2;
  view.health[dead] = Health::kDead;
  view.routable = {0, 1, 3, 4, 5};
  const std::size_t moved = map.rebuild(view);
  auto after = map.table();

  EXPECT_GT(moved, 0u);
  for (std::uint32_t s = 0; s < config.num_shards; ++s) {
    const auto& old_replicas = before->replicas[s];
    const auto& new_replicas = after->replicas[s];
    const bool held_dead =
        std::find(old_replicas.begin(), old_replicas.end(), dead) !=
        old_replicas.end();
    if (!held_dead) {
      // Rendezvous minimality: shards the dead node never held are
      // byte-identical across the rebuild.
      EXPECT_EQ(old_replicas, new_replicas) << "shard " << s;
    } else {
      // The dead node is gone; survivors keep their relative order.
      std::vector<std::size_t> expectation;
      for (std::size_t node : old_replicas) {
        if (node != dead) expectation.push_back(node);
      }
      ASSERT_GE(new_replicas.size(), expectation.size());
      for (std::size_t r = 0; r < expectation.size(); ++r) {
        EXPECT_EQ(new_replicas[r], expectation[r]) << "shard " << s;
      }
      EXPECT_EQ(std::find(new_replicas.begin(), new_replicas.end(), dead),
                new_replicas.end());
    }
  }
}

TEST(ShardMap, ShardOfIsStableAndMatchesStaticForm) {
  ShardMapConfig config;
  config.num_shards = 32;
  ShardMap map(4, config);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "obj" + std::to_string(i);
    const std::uint32_t shard = map.shard_of(key);
    EXPECT_LT(shard, 32u);
    EXPECT_EQ(shard, ShardMap::shard_of(key, 32, config.salt));
  }
}

// --------------------------------------------------------------- router

struct RouterRig {
  Membership membership;
  ShardMap shard_map;
  ClusterRouter router;

  RouterRig(std::size_t nodes, int replication, std::uint64_t seed,
            ClusterRouter::DepthProbe depth = nullptr)
      : membership(node_names(nodes), fast_membership()),
        shard_map(nodes,
                  ShardMapConfig{/*num_shards=*/32, replication,
                                 /*salt=*/0x5eedULL}),
        router(&membership, &shard_map, std::move(depth), seed) {}

  void beat_all(double now, std::size_t except = static_cast<std::size_t>(-1)) {
    for (std::size_t i = 0; i < membership.size(); ++i) {
      if (i != except) membership.heartbeat(i, now);
    }
    (void)membership.update(now);
  }
};

TEST(Router, KeyedRoutesToPrimaryWhenHealthy) {
  RouterRig rig(4, 2, /*seed=*/7);
  rig.beat_all(0.0);
  auto table = rig.shard_map.table();
  for (int i = 0; i < 50; ++i) {
    const std::string key = "obj" + std::to_string(i);
    auto decision = rig.router.route(key);
    ASSERT_TRUE(decision.ok());
    EXPECT_EQ(decision->kind, RouteKind::kPrimary);
    EXPECT_TRUE(decision->data_local());
    EXPECT_EQ(decision->node, table->replicas[decision->shard][0]);
    EXPECT_EQ(decision->shard, rig.shard_map.shard_of(key));
  }
}

TEST(Router, SuspectedPrimaryFailsOverWithoutRebuild) {
  RouterRig rig(4, 2, /*seed=*/7);
  double now = 0.0;
  for (int beat = 0; beat < 5; ++beat) {
    rig.beat_all(now);
    now += 2'000.0;
  }
  // Find a key whose primary is node 0, then silence node 0 past the
  // suspect threshold (no shard-map rebuild happens).
  auto table = rig.shard_map.table();
  std::string victim_key;
  for (int i = 0; i < 200 && victim_key.empty(); ++i) {
    const std::string key = "obj" + std::to_string(i);
    if (table->replicas[rig.shard_map.shard_of(key)][0] == 0) victim_key = key;
  }
  ASSERT_FALSE(victim_key.empty());
  rig.beat_all(now - 2'000.0 + 12'000.0, /*except=*/0);
  ASSERT_EQ(rig.membership.view()->health[0], Health::kSuspected);

  auto decision = rig.router.route(victim_key);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->kind, RouteKind::kFailover);
  EXPECT_TRUE(decision->data_local());
  EXPECT_EQ(decision->node,
            table->replicas[rig.shard_map.shard_of(victim_key)][1]);
  EXPECT_EQ(decision->map_version, table->version);  // no rebuild happened
}

TEST(Router, ExcludeReroutesAroundRefusedNode) {
  RouterRig rig(4, 2, /*seed=*/7);
  rig.beat_all(0.0);
  auto table = rig.shard_map.table();
  const std::string key = "obj0";
  const auto& replicas = table->replicas[rig.shard_map.shard_of(key)];
  auto decision = rig.router.route(key, /*exclude=*/replicas[0]);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->node, replicas[1]);
  EXPECT_EQ(decision->kind, RouteKind::kFailover);

  // Keyless: the excluded node is never picked.
  for (int i = 0; i < 100; ++i) {
    auto keyless = rig.router.route("", /*exclude=*/2);
    ASSERT_TRUE(keyless.ok());
    EXPECT_NE(keyless->node, 2u);
    EXPECT_EQ(keyless->kind, RouteKind::kPowerOfTwo);
  }
}

TEST(Router, NoHealthyReplicaFallsBackToBalancedNoOwner) {
  RouterRig rig(3, 1, /*seed=*/7);
  double now = 0.0;
  for (int beat = 0; beat < 5; ++beat) {
    rig.beat_all(now);
    now += 2'000.0;
  }
  auto table = rig.shard_map.table();
  const std::string key = "obj3";
  const std::size_t owner = table->replicas[rig.shard_map.shard_of(key)][0];
  rig.beat_all(now - 2'000.0 + 12'000.0, /*except=*/owner);
  ASSERT_NE(rig.membership.view()->health[owner], Health::kHealthy);

  auto decision = rig.router.route(key);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->kind, RouteKind::kNoOwner);
  EXPECT_FALSE(decision->data_local());
  EXPECT_NE(decision->node, owner);
}

TEST(Router, UnavailableWhenNoNodeRoutable) {
  RouterRig rig(2, 1, /*seed=*/7);
  double now = 0.0;
  for (int beat = 0; beat < 5; ++beat) {
    rig.beat_all(now);
    now += 2'000.0;
  }
  (void)rig.membership.update(now + 100'000.0);  // everyone silent
  ASSERT_EQ(rig.membership.view()->alive_count(), 0u);
  auto keyed = rig.router.route("obj1");
  EXPECT_EQ(keyed.status().code(), StatusCode::kUnavailable);
  auto keyless = rig.router.route("");
  EXPECT_EQ(keyless.status().code(), StatusCode::kUnavailable);
}

/// Replays one scripted scenario (steady traffic, node 1 dies, failover
/// rebuild, node 1 rejoins, rebalance rebuild) and serializes every
/// decision. Determinism = two independent rigs produce byte-identical
/// logs for any replication factor.
std::string scripted_decision_log(int replication) {
  // Deterministic depth probe standing in for live queue depths.
  auto depth = [](std::size_t node) { return (node * 7 + 3) % 5; };
  RouterRig rig(5, replication, /*seed=*/1234, depth);
  std::string log;
  auto route_mix = [&](int salt) {
    for (int i = 0; i < 40; ++i) {
      auto keyed = rig.router.route("obj" + std::to_string((i * 13 + salt) % 64));
      log += keyed.ok() ? keyed->to_string() : std::string("unroutable");
      log += '\n';
      auto keyless = rig.router.route("");
      log += keyless.ok() ? keyless->to_string() : std::string("unroutable");
      log += '\n';
    }
  };

  double now = 0.0;
  for (int beat = 0; beat < 5; ++beat) {
    rig.beat_all(now);
    now += 2'000.0;
  }
  route_mix(0);
  // Node 1 dies: silence past dead_phi, then the failover rebuild.
  now += 23'000.0;
  rig.beat_all(now, /*except=*/1);
  EXPECT_EQ(rig.membership.view()->health[1], Health::kDead);
  rig.shard_map.rebuild(*rig.membership.view());
  route_mix(1);
  // Node 1 rejoins: revive + rebalance rebuild.
  now += 2'000.0;
  rig.beat_all(now);
  EXPECT_EQ(rig.membership.view()->health[1], Health::kHealthy);
  rig.shard_map.rebuild(*rig.membership.view());
  route_mix(2);
  return log;
}

class RouterDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(RouterDeterminism, SameSeedSameEventsByteIdenticalDecisions) {
  const std::string first = scripted_decision_log(GetParam());
  const std::string second = scripted_decision_log(GetParam());
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical replay
  // Decisions carry the versions they were made under: the scenario has
  // three distinct (map_version, epoch) regimes.
  EXPECT_NE(first.find(" v=0 "), std::string::npos);
  EXPECT_NE(first.find(" v=2 "), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, RouterDeterminism,
                         ::testing::Values(1, 2, 3));

// ----------------------------------------------------------- federation

FederationOptions small_federation(std::size_t nodes) {
  FederationOptions options;
  options.num_nodes = nodes;
  options.node.queue_capacity = 256;
  options.node.worker_threads = 1;
  options.node.batch.max_batch = 4;
  options.node.batch.max_wait = std::chrono::microseconds(500);
  options.shard_map.num_shards = 32;
  options.shard_map.replication = 2;
  options.membership.heartbeat_interval_us = 2'000.0;
  options.membership.suspect_phi = 2.0;
  options.membership.dead_phi = 4.0;
  options.pump_period_us = 1'000.0;
  return options;
}

/// Submits `count` requests (keyed when `keyed` is true) and waits for
/// every accepted one to complete; returns (accepted, ok_responses).
std::pair<int, int> pump_traffic(Federation& federation, int count,
                                 bool keyed, std::uint64_t seed_base) {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;
  int ok = 0;
  int accepted = 0;
  for (int i = 0; i < count; ++i) {
    serve::Request request;
    request.kernel = "test_kernel";
    request.seed = seed_base + static_cast<std::uint64_t>(i);
    if (keyed) request.data_key = "obj" + std::to_string(i % 24);
    {
      std::lock_guard<std::mutex> lock(mu);
      ++pending;
    }
    const std::uint64_t expect = request.seed % 1000;
    Status st = federation.submit(
        std::move(request), [&, expect](const serve::Response& response) {
          std::lock_guard<std::mutex> lock(mu);
          if (response.status.ok() &&
              response.value == static_cast<double>(expect)) {
            ++ok;
          }
          --pending;
          cv.notify_one();
        });
    if (st.ok()) {
      ++accepted;
    } else {
      std::lock_guard<std::mutex> lock(mu);
      --pending;
    }
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(20), [&] { return pending == 0; });
  EXPECT_EQ(pending, 0);
  return {accepted, ok};
}

TEST(Federation, ServesKeyedAndKeylessTraffic) {
  Federation federation(small_federation(3));
  ASSERT_TRUE(federation.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(federation.start().ok());

  auto [keyed_accepted, keyed_ok] = pump_traffic(federation, 48, true, 100);
  auto [keyless_accepted, keyless_ok] =
      pump_traffic(federation, 48, false, 500);
  EXPECT_EQ(keyed_ok, keyed_accepted);
  EXPECT_EQ(keyless_ok, keyless_accepted);

  const FederationStats stats = federation.stats();
  EXPECT_EQ(stats.submitted, 96u);
  EXPECT_EQ(stats.keyed, 48u);
  // All nodes healthy: every keyed request lands on a replica holder.
  EXPECT_EQ(stats.keyed_data_local, 48u);
  EXPECT_EQ(stats.routed_primary, 48u);
  EXPECT_EQ(stats.routed_p2c, 48u);
  EXPECT_EQ(stats.failovers, 0u);
  // Ingress != shard owner for most keyed traffic on 3 nodes: hops were
  // paid and metered.
  EXPECT_GT(stats.forwarded, 0u);
  EXPECT_GT(stats.hops, 0u);
  EXPECT_GT(stats.hop_mean_us, 0.0);
  federation.stop();
}

TEST(Federation, CrashFailoverThenRejoinKeepsKeyedTrafficAvailable) {
  Federation federation(small_federation(3));
  ASSERT_TRUE(federation.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(federation.start().ok());

  auto [a0, o0] = pump_traffic(federation, 24, true, 1000);
  EXPECT_EQ(o0, a0);

  federation.crash(0);
  // Availability holds BEFORE detection: refused submits re-route to the
  // next replica.
  auto [a1, o1] = pump_traffic(federation, 24, true, 2000);
  EXPECT_EQ(o1, a1);
  EXPECT_EQ(a1, 24);

  // Detection declares node 0 dead and rebuilds the map within the
  // detection interval (bounded poll: CI machines stall).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (federation.membership().view()->health[0] != Health::kDead &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(federation.membership().view()->health[0], Health::kDead);
  FederationStats stats = federation.stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.rebuilds, 1u);
  EXPECT_GT(stats.refused_retries, 0u);
  // The failed-over table holds no replica on the dead node.
  auto table = federation.shard_table();
  for (const auto& replicas : table->replicas) {
    EXPECT_EQ(std::find(replicas.begin(), replicas.end(), 0u),
              replicas.end());
  }
  // Post-failover traffic is routed off the new map: all data-local.
  auto [a2, o2] = pump_traffic(federation, 24, true, 3000);
  EXPECT_EQ(o2, a2);
  EXPECT_EQ(a2, 24);

  federation.restart(0);
  while (federation.membership().view()->health[0] != Health::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(federation.membership().view()->health[0], Health::kHealthy);
  // The pump publishes the healthy view BEFORE it rebuilds the map, so
  // poll the counter too (the gap is microseconds natively but real
  // under sanitizers).
  while (federation.stats().rebuilds < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stats = federation.stats();
  EXPECT_GE(stats.rejoins, 1u);
  EXPECT_GE(stats.rebuilds, 2u);

  auto [a3, o3] = pump_traffic(federation, 24, true, 4000);
  EXPECT_EQ(o3, a3);
  EXPECT_EQ(a3, 24);
  federation.stop();
}

/// Keyed traffic with real input bytes, so staging actually fills the
/// per-node input caches (pump_traffic leaves input_bytes at 0).
void pump_keyed_inputs(Federation& federation, int count,
                       std::uint64_t seed_base) {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;
  for (int i = 0; i < count; ++i) {
    serve::Request request;
    request.kernel = "test_kernel";
    request.seed = seed_base + static_cast<std::uint64_t>(i);
    request.data_key = "obj" + std::to_string(i % 24);
    request.input_bytes = 64.0 * 1024;
    {
      std::lock_guard<std::mutex> lock(mu);
      ++pending;
    }
    Status st = federation.submit(std::move(request),
                                  [&](const serve::Response&) {
                                    std::lock_guard<std::mutex> lock(mu);
                                    --pending;
                                    cv.notify_one();
                                  });
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      --pending;
    }
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(20), [&] { return pending == 0; });
  ASSERT_EQ(pending, 0);
}

// E22 restart-to-warm: with a per-node staging WAL, a crashed node's
// input cache is replayed back on restart instead of re-paying every
// input transfer.
TEST(Federation, WarmRestartReplaysInputCacheFromWal) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("everest_fed_warm_" + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);

  FederationOptions options = small_federation(3);
  options.node.input_cache.capacity_bytes = 8.0 * 1024 * 1024;
  options.node.input_stage_scale = 0.0;
  options.storage_dir = dir;
  options.cold_restart_cache = true;
  Federation federation(options);
  ASSERT_TRUE(federation.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(federation.start().ok());

  pump_keyed_inputs(federation, 48, 100);
  // Find a node whose input cache the traffic actually warmed.
  std::size_t victim = federation.num_nodes();
  for (std::size_t i = 0; i < federation.num_nodes(); ++i) {
    if (federation.node(i).input_cache_resident_bytes() > 0.0) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, federation.num_nodes());

  federation.crash(victim);
  // Process death: the staged inputs died with the process…
  EXPECT_DOUBLE_EQ(federation.node(victim).input_cache_resident_bytes(), 0.0);

  federation.restart(victim);
  // …and the WAL replay brought them back before admission resumed.
  EXPECT_GT(federation.node(victim).input_cache_resident_bytes(), 0.0);
  const FederationStats stats = federation.stats();
  EXPECT_GT(stats.warm_restored_entries, 0u);
  federation.stop();
  fs::remove_all(dir);
}

// Hinted handoff: traffic homed on a crashed node is staged (and WAL-
// logged) by the failover owners, stamped with its *home* primary; the
// node's restart pulls those keys out of the survivors' logs even
// though its own WAL never saw them.
TEST(Federation, RestartPullsHomeKeysFromPeersWals) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("everest_fed_handoff_" + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);

  FederationOptions options = small_federation(3);
  options.node.input_cache.capacity_bytes = 8.0 * 1024 * 1024;
  options.node.input_stage_scale = 0.0;
  options.storage_dir = dir;
  options.cold_restart_cache = true;
  Federation federation(options);
  ASSERT_TRUE(federation.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(federation.start().ok());

  // The victim is down for the whole traffic window: every key homed on
  // it is served — and staged — by its failover replicas, so only the
  // survivors' WALs know about those inputs.
  const std::size_t victim = 0;
  federation.crash(victim);
  pump_keyed_inputs(federation, 48, 100);
  EXPECT_DOUBLE_EQ(federation.node(victim).input_cache_resident_bytes(), 0.0);

  federation.restart(victim);
  const FederationStats stats = federation.stats();
  EXPECT_GT(stats.hinted_handoff_entries, 0u);
  // The handed-off entries landed in the restarted node's input cache.
  EXPECT_GT(federation.node(victim).input_cache_resident_bytes(), 0.0);
  federation.stop();
  fs::remove_all(dir);
}

TEST(Federation, ColdRestartWithoutWalStaysCold) {
  FederationOptions options = small_federation(3);
  options.node.input_cache.capacity_bytes = 8.0 * 1024 * 1024;
  options.node.input_stage_scale = 0.0;
  options.cold_restart_cache = true;  // but no storage_dir: nothing logged
  Federation federation(options);
  ASSERT_TRUE(federation.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(federation.start().ok());

  pump_keyed_inputs(federation, 48, 100);
  std::size_t victim = federation.num_nodes();
  for (std::size_t i = 0; i < federation.num_nodes(); ++i) {
    if (federation.node(i).input_cache_resident_bytes() > 0.0) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, federation.num_nodes());

  federation.crash(victim);
  federation.restart(victim);
  // No log to replay: the node rejoins cold and re-pays its transfers.
  EXPECT_DOUBLE_EQ(federation.node(victim).input_cache_resident_bytes(), 0.0);
  EXPECT_EQ(federation.stats().warm_restored_entries, 0u);
  federation.stop();
}

TEST(Federation, AllNodesCrashedIsUnavailableNotUndefined) {
  Federation federation(small_federation(2));
  ASSERT_TRUE(federation.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(federation.start().ok());
  federation.crash(0);
  federation.crash(1);
  serve::Request request;
  request.kernel = "test_kernel";
  bool fired = false;
  Status st = federation.submit(
      std::move(request), [&](const serve::Response&) { fired = true; });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(fired);  // rejected submits never fire the callback
  EXPECT_GE(federation.stats().unroutable, 1u);
  federation.restart(0);
  federation.restart(1);
  federation.stop();
}

TEST(Federation, LoadgenAdaptersDriveTheWholeCluster) {
  Federation federation(small_federation(2));
  ASSERT_TRUE(federation.register_endpoint(test_endpoint()).ok());
  ASSERT_TRUE(federation.start().ok());

  serve::WorkloadSpec spec;
  spec.kernels = {"test_kernel"};
  spec.offered_rps = 400.0;
  spec.duration = std::chrono::milliseconds(200);
  spec.lc_deadline_ms = 0.0;
  spec.tp_deadline_ms = 0.0;
  spec.num_data_objects = 16;
  spec.input_bytes = 0.0;
  const serve::LoadReport report = serve::run_open_loop(
      federation.submit_fn(), federation.drain_fn(), spec);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.completed + report.rejected + report.failed +
                report.expired,
            report.offered);
  EXPECT_GT(federation.stats().keyed, 0u);
  federation.stop();
}

}  // namespace
}  // namespace everest::cluster
