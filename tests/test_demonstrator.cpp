// Tests for the multi-node demonstrator: end-to-end placement, variant
// choice under goals, role caching, transfer accounting, and fallbacks.
#include <gtest/gtest.h>

#include "runtime/demonstrator.hpp"

namespace everest::runtime {
namespace {

using compiler::TargetKind;
using compiler::Variant;
using workflow::TaskGraph;

Variant make_variant(const std::string& id, const std::string& kernel,
                     TargetKind target, double latency, double energy,
                     const std::string& device = "") {
  Variant v;
  v.id = id;
  v.kernel = kernel;
  v.target = target;
  v.latency_us = latency;
  v.energy_uj = energy;
  v.device = device;
  v.bytes_in = 1e5;
  v.bytes_out = 1e4;
  return v;
}

KnowledgeBase standard_kb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.load({
                  make_variant("k1-cpu", "k1", TargetKind::kCpu, 500, 40000),
                  make_variant("k1-fpga", "k1", TargetKind::kFpga, 80, 3000,
                               "P9-VU9P"),
                  make_variant("k2-cpu", "k2", TargetKind::kCpu, 200, 15000),
              })
                  .ok());
  return kb;
}

TaskGraph chain_graph(int n, const std::string& kernel) {
  TaskGraph g;
  std::size_t prev = 0;
  for (int i = 0; i < n; ++i) {
    workflow::TaskNode t;
    t.name = "t" + std::to_string(i);
    t.kernel = kernel;
    t.flops = 1e8;
    t.output_bytes = 1e5;
    if (i > 0) t.deps = {prev};
    prev = g.add_task(std::move(t));
  }
  return g;
}

TEST(Demonstrator, RunsChainEndToEnd) {
  auto platform = platform::PlatformSpec::everest_reference(1, 0, 1);
  KnowledgeBase kb = standard_kb();
  TaskGraph g = chain_graph(5, "k1");
  auto run = run_demonstrator(platform, kb, g);
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  EXPECT_EQ(run->placements.size(), 5u);
  EXPECT_GT(run->makespan_us, 0.0);
  EXPECT_GT(run->total_energy_uj, 0.0);
  // Monotone non-decreasing finish times along the chain.
  for (std::size_t i = 1; i < run->placements.size(); ++i) {
    EXPECT_GE(run->placements[i].start_us, run->placements[i - 1].end_us - 1e-9);
  }
}

TEST(Demonstrator, PrefersFpgaAfterFirstReconfig) {
  auto platform = platform::PlatformSpec::everest_reference(1, 0, 0);
  KnowledgeBase kb = standard_kb();
  TaskGraph g = chain_graph(6, "k1");
  auto run = run_demonstrator(platform, kb, g);
  ASSERT_TRUE(run.ok());
  // The cold FPGA role swap (hundreds of ms) makes the CPU win task 0;
  // but the demonstrator evaluates the amortized future... it is greedy,
  // so the FPGA is only adopted if a single task justifies the swap. With
  // a 500us CPU vs 80us+270ms reconfig, CPU wins every time.
  EXPECT_EQ(run->variant_mix.count("k1-fpga"), 0u);
  // Pre-warm the role: now hardware wins from task 0.
  auto warm = platform;
  for (auto& node : warm.nodes) {
    for (auto& slot : node.fpgas) slot.current_role = "k1";
  }
  auto warm_run = run_demonstrator(warm, kb, g);
  ASSERT_TRUE(warm_run.ok());
  EXPECT_GT(warm_run->variant_mix["k1-fpga"], 0);
  EXPECT_LT(warm_run->makespan_us, run->makespan_us);
}

TEST(Demonstrator, EnergyGoalShiftsChoice) {
  auto platform = platform::PlatformSpec::everest_reference(1, 0, 0);
  // Pre-warm so the FPGA is a genuine option.
  for (auto& node : platform.nodes) {
    for (auto& slot : node.fpgas) slot.current_role = "k1";
  }
  KnowledgeBase kb;
  // CPU slightly faster, FPGA much cheaper in energy.
  ASSERT_TRUE(kb.load({make_variant("k1-cpu", "k1", TargetKind::kCpu, 70,
                                    40000),
                       make_variant("k1-fpga", "k1", TargetKind::kFpga, 90,
                                    2000, "P9-VU9P")})
                  .ok());
  TaskGraph g = chain_graph(4, "k1");
  DemonstratorOptions latency_goal;
  auto fast = run_demonstrator(platform, kb, g, latency_goal);
  DemonstratorOptions energy_goal;
  energy_goal.goal.objective = Goal::Objective::kMinEnergy;
  auto eco = run_demonstrator(platform, kb, g, energy_goal);
  ASSERT_TRUE(fast.ok() && eco.ok());
  EXPECT_GT(fast->variant_mix["k1-cpu"], 0);
  EXPECT_GT(eco->variant_mix["k1-fpga"], 0);
  EXPECT_LT(eco->total_energy_uj, fast->total_energy_uj);
}

TEST(Demonstrator, GenericFallbackAndStrictMode) {
  auto platform = platform::PlatformSpec::everest_reference(1, 0, 0);
  KnowledgeBase kb;  // empty: no variants at all
  TaskGraph g = chain_graph(3, "unknown_kernel");
  auto run = run_demonstrator(platform, kb, g);
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  EXPECT_EQ(run->variant_mix["generic-cpu"], 3);
  DemonstratorOptions strict;
  strict.allow_generic_tasks = false;
  EXPECT_EQ(run_demonstrator(platform, kb, g, strict).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Demonstrator, ParallelTasksSpreadAcrossNodes) {
  auto platform = platform::PlatformSpec::everest_reference(2, 0, 2);
  KnowledgeBase kb;
  TaskGraph g;
  for (int i = 0; i < 8; ++i) {
    workflow::TaskNode t;
    t.name = "p" + std::to_string(i);
    t.kernel = "generic";
    t.flops = 5e9;
    g.add_task(std::move(t));
  }
  auto run = run_demonstrator(platform, kb, g);
  ASSERT_TRUE(run.ok());
  // Independent tasks should use more than one node.
  EXPECT_GT(run->node_busy_us.size(), 1u);
}

TEST(Demonstrator, BackgroundLoadStretchesCpuWork) {
  auto platform = platform::PlatformSpec::everest_reference(1, 0, 0);
  KnowledgeBase kb = standard_kb();
  TaskGraph g = chain_graph(4, "k2");  // CPU-only kernel
  DemonstratorOptions idle;
  DemonstratorOptions busy;
  busy.background_cpu_load = 0.8;
  auto fast = run_demonstrator(platform, kb, g, idle);
  auto slow = run_demonstrator(platform, kb, g, busy);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_GT(slow->makespan_us, fast->makespan_us * 3);
}

TEST(Demonstrator, TransfersAccountedBetweenNodes) {
  auto platform = platform::PlatformSpec::everest_reference(2, 0, 0);
  KnowledgeBase kb;
  // Fan-out then join: the join task must pull at least one remote input
  // if the branches ran on different nodes.
  TaskGraph g;
  workflow::TaskNode a;
  a.name = "a";
  a.flops = 8e9;
  a.output_bytes = 5e7;
  const auto ia = g.add_task(std::move(a));
  workflow::TaskNode b;
  b.name = "b";
  b.flops = 8e9;
  b.output_bytes = 5e7;
  const auto ib = g.add_task(std::move(b));
  workflow::TaskNode join;
  join.name = "join";
  join.flops = 1e6;
  join.deps = {ia, ib};
  g.add_task(std::move(join));
  auto run = run_demonstrator(platform, kb, g);
  ASSERT_TRUE(run.ok());
  if (run->node_busy_us.size() > 1) {
    EXPECT_GT(run->bytes_moved, 0.0);
  }
}

TEST(Demonstrator, OpenBreakerSteersPlacementOffFpga) {
  auto platform = platform::PlatformSpec::everest_reference(1, 0, 0);
  for (auto& node : platform.nodes) {
    for (auto& slot : node.fpgas) slot.current_role = "k1";  // warm role
  }
  KnowledgeBase kb = standard_kb();
  TaskGraph g = chain_graph(4, "k1");
  auto baseline = run_demonstrator(platform, kb, g);
  ASSERT_TRUE(baseline.ok());
  ASSERT_GT(baseline->variant_mix["k1-fpga"], 0);  // FPGA wins when warm

  // The FPGA variant's breaker on p9-0 is open (e.g. repeated
  // reconfiguration failures): placement must fall back to the CPU.
  resilience::BreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_cooldown_us = 1e12;
  resilience::CircuitBreakerBoard board(policy);
  board.record("p9-0", "k1-fpga", /*success=*/false, 0.0);
  DemonstratorOptions options;
  options.breakers = &board;
  auto degraded = run_demonstrator(platform, kb, g, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().to_string();
  EXPECT_EQ(degraded->variant_mix.count("k1-fpga"), 0u);
  EXPECT_EQ(degraded->variant_mix["k1-cpu"], 4);
  EXPECT_GT(degraded->makespan_us, baseline->makespan_us);
}

TEST(Demonstrator, EmptyPlatformRejected) {
  platform::PlatformSpec empty;
  KnowledgeBase kb;
  TaskGraph g = chain_graph(1, "k");
  EXPECT_EQ(run_demonstrator(empty, kb, g).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace everest::runtime
