// Tests for the cache simulator (trace-based locality model) and the
// protected data store (encrypted, labeled object storage).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compiler/cache_model.hpp"
#include "compiler/lowering.hpp"
#include "compiler/transforms.hpp"
#include "dsl/tensor_expr.hpp"
#include "security/protected_store.hpp"

namespace everest::compiler {
namespace {

// -------------------------------------------------------------- CacheSim --

TEST(CacheSim, SequentialStreamMissesOncePerLine) {
  CacheSim cache({/*size_kib=*/64, /*line_bytes=*/64, /*ways=*/8});
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 8) {
    cache.access(addr);
  }
  // 8 doubles per 64B line → miss rate 1/8.
  EXPECT_NEAR(cache.miss_rate(), 1.0 / 8.0, 1e-9);
}

TEST(CacheSim, ResidentWorkingSetHitsAfterWarmup) {
  CacheSim cache({64, 64, 8});
  // 32 KiB working set in a 64 KiB cache, swept twice.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 32 * 1024; addr += 8) {
      cache.access(addr);
    }
  }
  // Second pass is all hits: total misses = lines of the working set.
  EXPECT_EQ(cache.misses(), 32 * 1024 / 64);
}

TEST(CacheSim, CapacityThrashing) {
  CacheSim cache({16, 64, 8});
  // 64 KiB working set in a 16 KiB cache, swept twice: LRU keeps evicting.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
      cache.access(addr);
    }
  }
  EXPECT_GT(cache.miss_rate(), 0.95);
}

TEST(CacheSim, AssociativityConflicts) {
  // Direct-mapped: two lines mapping to the same set ping-pong.
  CacheSim direct({4, 64, 1});
  const std::uint64_t stride =
      static_cast<std::uint64_t>(direct.num_sets()) * 64;
  for (int i = 0; i < 100; ++i) {
    direct.access(0);
    direct.access(stride);
  }
  EXPECT_GT(direct.miss_rate(), 0.95);
  // 2-way cache holds both.
  CacheSim assoc({4, 64, 2});
  const std::uint64_t stride2 =
      static_cast<std::uint64_t>(assoc.num_sets()) * 64;
  for (int i = 0; i < 100; ++i) {
    assoc.access(0);
    assoc.access(stride2);
  }
  EXPECT_LT(assoc.miss_rate(), 0.05);
}

// ----------------------------------------------------- Kernel cache sim --

ir::Module matmul_kernel(std::int64_t n) {
  dsl::TensorProgram p("mm");
  auto a = p.input("a", {n, n});
  auto b = p.input("b", {n, n});
  p.output("c", matmul(a, b));
  ir::Module m = p.lower().value();
  EXPECT_TRUE(lower_to_kernel(m, "mm").ok());
  return m;
}

TEST(KernelCache, MatmulMissRateDropsWhenResident) {
  ir::Module m = matmul_kernel(48);  // 3 × 18 KiB arrays
  // Accumulation nest is nest 1.
  CacheConfig big{512, 64, 8};    // everything resident
  CacheConfig tiny{8, 64, 8};     // B row sweep thrashes
  auto resident = simulate_kernel_cache(*m.find("mm_kernel"), 1, big);
  auto thrash = simulate_kernel_cache(*m.find("mm_kernel"), 1, tiny);
  ASSERT_TRUE(resident.ok()) << resident.status().to_string();
  ASSERT_TRUE(thrash.ok());
  EXPECT_LT(resident->miss_rate, 0.01);
  EXPECT_GT(thrash->miss_rate, resident->miss_rate * 5);
  EXPECT_GT(thrash->dram_bytes, resident->dram_bytes);
  EXPECT_FALSE(resident->truncated);
}

TEST(KernelCache, TilingImprovesLocalityInSmallCache) {
  // Elementwise kernel with two passes over the same array would benefit;
  // for a single-pass stream tiling is neutral — check the matmul case:
  // tile the innermost j loop and compare misses in a small cache.
  ir::Module m = matmul_kernel(64);
  auto baseline = simulate_kernel_cache(*m.find("mm_kernel"), 1,
                                        CacheConfig{16, 64, 8});
  ASSERT_TRUE(baseline.ok());
  ir::Module m2 = matmul_kernel(64);
  ASSERT_TRUE(tile_innermost(*m2.find("mm_kernel"), 1, 16).ok());
  auto tiled = simulate_kernel_cache(*m2.find("mm_kernel"), 1,
                                     CacheConfig{16, 64, 8});
  ASSERT_TRUE(tiled.ok()) << tiled.status().to_string();
  // Same trace volume.
  EXPECT_EQ(tiled->accesses, baseline->accesses);
  // Tiling the streaming j dimension must not hurt; (it reuses the C/B
  // lines within a tile before moving on).
  EXPECT_LE(tiled->misses, baseline->misses * 1.05);
}

TEST(KernelCache, TruncationCapRespected) {
  ir::Module m = matmul_kernel(64);
  auto stats = simulate_kernel_cache(*m.find("mm_kernel"), 1,
                                     CacheConfig{64, 64, 8},
                                     /*max_accesses=*/1000);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->truncated);
  EXPECT_LE(stats->accesses, 1000u);
}

TEST(KernelCache, MissingNestFails) {
  ir::Module m = matmul_kernel(8);
  EXPECT_FALSE(simulate_kernel_cache(*m.find("mm_kernel"), 9,
                                     CacheConfig{})
                   .ok());
}

}  // namespace
}  // namespace everest::compiler

namespace everest::security {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(ProtectedStore, PutGetRoundTrip) {
  ProtectedStore store(bytes_of("master-secret"));
  ASSERT_TRUE(store.put("weather", bytes_of("ensemble payload")).ok());
  EXPECT_TRUE(store.contains("weather"));
  EXPECT_EQ(store.size(), 1u);
  auto out = store.get("weather", TaintLabel{});
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(*out, bytes_of("ensemble payload"));
  EXPECT_GT(store.bytes_at_rest(), 0u);
}

TEST(ProtectedStore, ClearanceEnforced) {
  ProtectedStore store(bytes_of("master-secret"));
  ASSERT_TRUE(store.put("fcd", bytes_of("vehicle traces"),
                        TaintLabel({"pii", "confidential"}))
                  .ok());
  EXPECT_EQ(store.get("fcd", TaintLabel{}).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(store.get("fcd", TaintLabel({"pii"})).status().code(),
            StatusCode::kPermissionDenied);
  auto ok = store.get("fcd", TaintLabel({"pii", "confidential", "extra"}));
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(store.label_of("fcd").has("pii"));
}

TEST(ProtectedStore, TamperingDetected) {
  ProtectedStore store(bytes_of("master-secret"));
  ASSERT_TRUE(store.put("model", bytes_of("weights....")).ok());
  ASSERT_TRUE(store.corrupt("model", 3).ok());
  EXPECT_EQ(store.get("model", TaintLabel{}).status().code(),
            StatusCode::kDataLoss);
}

TEST(ProtectedStore, EmptyPayloadStillAuthenticated) {
  ProtectedStore store(bytes_of("k"));
  ASSERT_TRUE(store.put("empty", {}).ok());
  EXPECT_TRUE(store.get("empty", TaintLabel{}).ok());
  ASSERT_TRUE(store.corrupt("empty", 0).ok());
  EXPECT_EQ(store.get("empty", TaintLabel{}).status().code(),
            StatusCode::kDataLoss);
}

TEST(ProtectedStore, OverwriteBumpsVersionAndIv) {
  ProtectedStore store(bytes_of("master"));
  ASSERT_TRUE(store.put("obj", bytes_of("v1")).ok());
  ASSERT_TRUE(store.put("obj", bytes_of("v2")).ok());
  auto out = store.get("obj", TaintLabel{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, bytes_of("v2"));
}

TEST(ProtectedStore, CiphertextNotSwappableBetweenNames) {
  // Same plaintext under two names yields different ciphertext (different
  // derived keys + AAD binding): the store must never confuse them.
  ProtectedStore store(bytes_of("master"));
  ASSERT_TRUE(store.put("a", bytes_of("same-bytes")).ok());
  ASSERT_TRUE(store.put("b", bytes_of("same-bytes")).ok());
  auto a = store.get("a", TaintLabel{});
  auto b = store.get("b", TaintLabel{});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(store.get("missing", TaintLabel{}).status().code(),
            StatusCode::kNotFound);
}

TEST(ProtectedStore, DifferentMastersCannotRead) {
  ProtectedStore alice(bytes_of("alice-secret"));
  ASSERT_TRUE(alice.put("doc", bytes_of("private")).ok());
  // Simulate an attacker replaying the stored object with another master:
  // rebuild a store and inject via put, then corrupt to mimic — simplest
  // equivalent check: a fresh store does not contain the object at all and
  // a corrupted copy fails DATA_LOSS (covered above). Here we confirm keys
  // differ by observing that tampering detection uses the derived key.
  ProtectedStore bob(bytes_of("bob-secret"));
  EXPECT_FALSE(bob.contains("doc"));
}

}  // namespace
}  // namespace everest::security
