// Unit tests for the IR core: types, attributes, operations, module
// structure, builder, verifier, pass manager, and pattern driver.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/dialect.hpp"
#include "ir/module.hpp"
#include "ir/pass.hpp"
#include "ir/pattern.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace everest::ir {
namespace {

// ------------------------------------------------------------------ Type --

TEST(Type, ScalarRendering) {
  EXPECT_EQ(Type::f64().to_string(), "f64");
  EXPECT_EQ(Type::i32().to_string(), "i32");
  EXPECT_EQ(Type::index().to_string(), "index");
}

TEST(Type, TensorShapeAndSize) {
  Type t = Type::tensor({4, 8}, ScalarKind::kF64);
  EXPECT_TRUE(t.is_tensor());
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.num_elements(), 32);
  EXPECT_EQ(t.byte_size(), 256);
  EXPECT_EQ(t.to_string(), "tensor<4x8xf64>");
}

TEST(Type, MemRefSpaces) {
  Type m = Type::memref({16}, ScalarKind::kF32, MemorySpace::kOnChip);
  EXPECT_EQ(m.to_string(), "memref<16xf32, onchip>");
  EXPECT_EQ(m.with_memory_space(MemorySpace::kDefault).to_string(),
            "memref<16xf32>");
  EXPECT_NE(m, m.with_memory_space(MemorySpace::kDevice));
}

TEST(Type, StructuralEquality) {
  EXPECT_EQ(Type::tensor({2, 3}, ScalarKind::kF64),
            Type::tensor({2, 3}, ScalarKind::kF64));
  EXPECT_NE(Type::tensor({2, 3}, ScalarKind::kF64),
            Type::tensor({3, 2}, ScalarKind::kF64));
  EXPECT_NE(Type::tensor({2}, ScalarKind::kF64),
            Type::memref({2}, ScalarKind::kF64));
  EXPECT_EQ(Type::stream(ScalarKind::kF32), Type::stream(ScalarKind::kF32));
}

TEST(Type, FunctionType) {
  Type f = Type::function({Type::f64()}, {Type::f64(), Type::i32()});
  EXPECT_TRUE(f.is_function());
  EXPECT_EQ(f.signature().inputs.size(), 1u);
  EXPECT_EQ(f.signature().results.size(), 2u);
  EXPECT_EQ(f.to_string(), "(f64) -> (f64, i32)");
}

TEST(Type, RankZeroTensor) {
  Type t = Type::tensor({}, ScalarKind::kF64);
  EXPECT_EQ(t.num_elements(), 1);
  EXPECT_EQ(t.to_string(), "tensor<f64>");
}

// ------------------------------------------------------------- Attribute --

TEST(Attribute, KindsAndAccessors) {
  EXPECT_TRUE(Attribute::unit().is_unit());
  EXPECT_EQ(Attribute::integer(-7).as_int(), -7);
  EXPECT_DOUBLE_EQ(Attribute::real(2.5).as_double(), 2.5);
  EXPECT_EQ(Attribute::string("x").as_string(), "x");
  EXPECT_TRUE(Attribute::boolean(true).as_bool());
  auto arr = Attribute::int_array({1, 2, 3});
  EXPECT_EQ(arr.as_int_array(), (std::vector<std::int64_t>{1, 2, 3}));
  auto dense = Attribute::dense_f64({1.0, 2.0});
  EXPECT_EQ(dense.as_dense_f64().size(), 2u);
}

TEST(Attribute, Equality) {
  EXPECT_EQ(Attribute::integer(3), Attribute::integer(3));
  EXPECT_NE(Attribute::integer(3), Attribute::real(3.0));
  EXPECT_EQ(Attribute::int_array({1, 2}), Attribute::int_array({1, 2}));
  EXPECT_NE(Attribute::int_array({1, 2}), Attribute::int_array({2, 1}));
}

// ----------------------------------------------------- Module / Function --

TEST(Module, AddAndFindFunctions) {
  Module m("app");
  auto f = m.add_function("kernel", Type::function({Type::f64()}, {Type::f64()}));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(m.num_functions(), 1u);
  EXPECT_NE(m.find("kernel"), nullptr);
  EXPECT_EQ(m.find("nope"), nullptr);
  auto dup = m.add_function("kernel", Type::function({}, {}));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto bad = m.add_function("bad", Type::f64());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Function, EntryBlockCarriesArguments) {
  Module m("app");
  Type t = Type::tensor({4}, ScalarKind::kF64);
  auto f = m.add_function("f", Type::function({t, t}, {t}));
  ASSERT_TRUE(f.ok());
  Function* fn = f.value();
  EXPECT_EQ(fn->entry().num_args(), 2u);
  EXPECT_EQ(fn->arg(0).type(), t);
  EXPECT_TRUE(fn->arg(0).is_block_arg());
  EXPECT_NE(fn->arg(0), fn->arg(1));
}

// --------------------------------------------------------------- Builder --

Module make_simple_module() {
  register_everest_dialects();
  Module m("app");
  Type t = Type::tensor({4}, ScalarKind::kF64);
  Function* fn =
      m.add_function("double_it", Type::function({t}, {t})).value();
  OpBuilder b(&fn->entry());
  Value sum = b.create_value("tensor.add", {fn->arg(0), fn->arg(0)}, t);
  b.ret({sum});
  return m;
}

TEST(Builder, BuildsVerifiableModule) {
  Module m = make_simple_module();
  EXPECT_TRUE(verify(m).ok()) << verify(m).to_string();
  EXPECT_EQ(m.find("double_it")->entry().size(), 2u);
}

TEST(Builder, WalkVisitsNestedOps) {
  register_everest_dialects();
  Module m("app");
  Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  Operation& loop = b.create("kernel.for", {}, {},
                             {{"lb", Attribute::integer(0)},
                              {"ub", Attribute::integer(4)},
                              {"step", Attribute::integer(1)}});
  Block& body = loop.emplace_region().emplace_block({Type::index()});
  OpBuilder inner(&body);
  inner.create("kernel.yield", {}, {});
  b.ret();
  int count = 0;
  fn->walk([&](Operation&) { ++count; });
  EXPECT_EQ(count, 3);  // for + yield + return
}

// -------------------------------------------------------------- Verifier --

TEST(Verifier, RejectsUnregisteredOp) {
  register_everest_dialects();
  Module m("app");
  Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  b.create("bogus.op", {}, {});
  Status st = verify(m);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not registered"), std::string::npos);
}

TEST(Verifier, RejectsMissingRequiredAttr) {
  register_everest_dialects();
  Module m("app");
  Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  b.create("builtin.constant", {}, {Type::f64()});  // missing 'value'
  EXPECT_FALSE(verify(m).ok());
}

TEST(Verifier, RejectsOperandCountViolation) {
  register_everest_dialects();
  Module m("app");
  Type t = Type::tensor({4}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({t}, {})).value();
  OpBuilder b(&fn->entry());
  b.create("tensor.add", {fn->arg(0)}, {t});  // needs 2 operands
  EXPECT_FALSE(verify(m).ok());
}

TEST(Verifier, RejectsTypeMismatchInElementwise) {
  register_everest_dialects();
  Module m("app");
  Type t4 = Type::tensor({4}, ScalarKind::kF64);
  Type t8 = Type::tensor({8}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({t4, t8}, {})).value();
  OpBuilder b(&fn->entry());
  b.create("tensor.add", {fn->arg(0), fn->arg(1)}, {t4});
  b.ret();
  Status st = verify(m);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("differ"), std::string::npos);
}

TEST(Verifier, RejectsMatmulShapeMismatch) {
  register_everest_dialects();
  Module m("app");
  Type a = Type::tensor({2, 3}, ScalarKind::kF64);
  Type b_t = Type::tensor({4, 5}, ScalarKind::kF64);
  Type r = Type::tensor({2, 5}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({a, b_t}, {})).value();
  OpBuilder b(&fn->entry());
  b.create("tensor.matmul", {fn->arg(0), fn->arg(1)}, {r});
  EXPECT_FALSE(verify(m).ok());
}

TEST(Verifier, AcceptsValidMatmul) {
  register_everest_dialects();
  Module m("app");
  Type a = Type::tensor({2, 3}, ScalarKind::kF64);
  Type bt = Type::tensor({3, 5}, ScalarKind::kF64);
  Type r = Type::tensor({2, 5}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({a, bt}, {r})).value();
  OpBuilder b(&fn->entry());
  Value v = b.create_value("tensor.matmul", {fn->arg(0), fn->arg(1)}, r);
  b.ret({v});
  EXPECT_TRUE(verify(m).ok()) << verify(m).to_string();
}

TEST(Verifier, RejectsTerminatorInMiddle) {
  register_everest_dialects();
  Module m("app");
  Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  b.ret();
  b.create("builtin.call", {}, {}, {{"callee", Attribute::string("g")}});
  Status st = verify(m);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsUseBeforeDef) {
  register_everest_dialects();
  Module m("app");
  Type t = Type::tensor({4}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({t}, {})).value();
  // Build op B using result of op A, but insert B first.
  auto op_a = std::make_unique<Operation>(
      "tensor.add", std::vector<Value>{fn->arg(0), fn->arg(0)},
      std::vector<Type>{t});
  Value a_result = op_a->result(0);
  auto op_b = std::make_unique<Operation>(
      "tensor.add", std::vector<Value>{a_result, a_result},
      std::vector<Type>{t});
  fn->entry().append(std::move(op_b));
  fn->entry().append(std::move(op_a));
  Status st = verify(m);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("SSA"), std::string::npos);
}

TEST(Verifier, NestedRegionSeesEnclosingValues) {
  register_everest_dialects();
  Module m("app");
  Type mem = Type::memref({16}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({mem}, {})).value();
  OpBuilder b(&fn->entry());
  Operation& loop = b.create("kernel.for", {}, {},
                             {{"lb", Attribute::integer(0)},
                              {"ub", Attribute::integer(16)},
                              {"step", Attribute::integer(1)}});
  Block& body = loop.emplace_region().emplace_block({Type::index()});
  OpBuilder inner(&body);
  Value x = inner.create_value("kernel.load", {fn->arg(0), body.arg(0)},
                               Type::f64());
  inner.create("kernel.store", {x, fn->arg(0), body.arg(0)}, {});
  inner.create("kernel.yield", {}, {});
  b.ret();
  EXPECT_TRUE(verify(m).ok()) << verify(m).to_string();
}

TEST(Verifier, RejectsForWithoutYield) {
  register_everest_dialects();
  Module m("app");
  Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  Operation& loop = b.create("kernel.for", {}, {},
                             {{"lb", Attribute::integer(0)},
                              {"ub", Attribute::integer(4)}});
  loop.emplace_region().emplace_block({Type::index()});
  b.ret();
  EXPECT_FALSE(verify(m).ok());
}

TEST(Verifier, RejectsBadMemorySemantics) {
  register_everest_dialects();
  Module m("app");
  Type mem = Type::memref({4, 4}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({mem}, {})).value();
  OpBuilder b(&fn->entry());
  Value i = b.constant_index(0);
  // rank-2 memref but only 1 index
  b.create("kernel.load", {fn->arg(0), i}, {Type::f64()});
  EXPECT_FALSE(verify(m).ok());
}

// ------------------------------------------------------------------ Pass --

class CountOpsPass : public Pass {
 public:
  explicit CountOpsPass(int* counter) : counter_(counter) {}
  [[nodiscard]] std::string_view name() const override { return "count-ops"; }
  Status run(Module& module) override {
    module.walk([&](Operation&) { ++*counter_; });
    return OkStatus();
  }

 private:
  int* counter_;
};

class FailingPass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "failing"; }
  Status run(Module&) override { return Internal("deliberate"); }
};

class BreakIrPass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "break-ir"; }
  Status run(Module& module) override {
    OpBuilder b(&module.function(0).entry());
    b.create("bogus.op", {}, {});
    return OkStatus();
  }
};

TEST(PassManager, RunsPassesInOrderAndRecordsTiming) {
  Module m = make_simple_module();
  int count = 0;
  PassManager pm;
  pm.add<CountOpsPass>(&count);
  pm.add<CountOpsPass>(&count);
  ASSERT_TRUE(pm.run(m).ok());
  EXPECT_EQ(count, 4);  // 2 ops, visited twice
  ASSERT_EQ(pm.records().size(), 2u);
  EXPECT_TRUE(pm.records()[0].ok);
  EXPECT_GE(pm.records()[0].millis, 0.0);
}

TEST(PassManager, StopsOnFailure) {
  Module m = make_simple_module();
  int count = 0;
  PassManager pm;
  pm.add<FailingPass>();
  pm.add<CountOpsPass>(&count);
  EXPECT_FALSE(pm.run(m).ok());
  EXPECT_EQ(count, 0);
  ASSERT_EQ(pm.records().size(), 1u);
  EXPECT_FALSE(pm.records()[0].ok);
}

TEST(PassManager, CatchesIrBreakageWhenVerifying) {
  Module m = make_simple_module();
  PassManager pm(/*verify_each=*/true);
  pm.add<BreakIrPass>();
  Status st = pm.run(m);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("broke the IR"), std::string::npos);
}

// --------------------------------------------------------------- Pattern --

/// Folds tensor.add(x, x) into tensor.scale(x, 2.0) — a toy strength
/// reduction used to exercise the greedy driver.
class AddSelfToScale : public RewritePattern {
 public:
  [[nodiscard]] std::string_view name() const override { return "add-self"; }
  bool match_and_rewrite(Block& block, std::size_t index,
                         PatternRewriter& rewriter) override {
    Operation& op = block.op(index);
    if (op.name() != "tensor.add") return false;
    if (!(op.operand(0) == op.operand(1))) return false;
    OpBuilder b;
    b.set_insertion_point(&block, index);
    Value two = b.constant_f64(2.0);
    Value scaled = b.create_value("tensor.scale", {op.operand(0), two},
                                  op.result_types()[0]);
    // The original op shifted to index + 2 after two insertions.
    rewriter.replace_uses(block.op(index + 2).result(0), scaled);
    rewriter.erase_op(index + 2);
    return true;
  }
};

TEST(Pattern, GreedyDriverAppliesAndReachesFixpoint) {
  Module m = make_simple_module();
  std::vector<std::unique_ptr<RewritePattern>> patterns;
  patterns.push_back(std::make_unique<AddSelfToScale>());
  Function* fn = m.find("double_it");
  EXPECT_TRUE(apply_patterns_greedily(*fn, patterns));
  EXPECT_TRUE(verify(m).ok()) << verify(m).to_string() << "\n" << print(m);
  bool has_scale = false, has_add = false;
  fn->walk([&](Operation& op) {
    has_scale |= op.name() == "tensor.scale";
    has_add |= op.name() == "tensor.add";
  });
  EXPECT_TRUE(has_scale);
  EXPECT_FALSE(has_add);
  // Second run: no more matches.
  EXPECT_FALSE(apply_patterns_greedily(*fn, patterns));
}

}  // namespace
}  // namespace everest::ir
