// Tests for the virtualized runtime: knowledge base, autotuner selection
// under goals/states/protection levels, hypervisor VM + vFPGA multiplexing,
// and the closed adaptation loop (including auto-protection reactions).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/adaptation.hpp"
#include "runtime/autotuner.hpp"
#include "runtime/knowledge.hpp"
#include "runtime/vm.hpp"

namespace everest::runtime {
namespace {

using compiler::TargetKind;
using compiler::Variant;

Variant make_variant(const std::string& id, TargetKind target, double latency,
                     double energy, bool dift = false,
                     const std::string& enc = "") {
  Variant v;
  v.id = id;
  v.kernel = "k";
  v.target = target;
  v.latency_us = latency;
  v.energy_uj = energy;
  v.bytes_in = 1e6;
  v.bytes_out = 1e5;
  v.dift = dift;
  v.encrypted = enc;
  v.device = target == TargetKind::kFpga ? "P9-VU9P" : "";
  return v;
}

std::vector<Variant> standard_variants() {
  return {
      make_variant("cpu-fast", TargetKind::kCpu, 100.0, 9000.0),
      make_variant("cpu-eco", TargetKind::kCpu, 300.0, 4000.0),
      make_variant("fpga-fast", TargetKind::kFpga, 40.0, 1500.0),
      make_variant("fpga-dift", TargetKind::kFpga, 48.0, 1800.0, true),
      make_variant("fpga-enc", TargetKind::kFpga, 55.0, 2000.0, false,
                   "aes128-gcm"),
  };
}

// --------------------------------------------------------- KnowledgeBase --

TEST(KnowledgeBase, LoadAndQuery) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  EXPECT_EQ(kb.kernels(), (std::vector<std::string>{"k"}));
  EXPECT_EQ(kb.variants_for("k")->size(), 5u);
  EXPECT_TRUE(kb.find("k", "cpu-fast").has_value());
  EXPECT_FALSE(kb.find("k", "nope").has_value());
  EXPECT_TRUE(kb.variants_for("other")->empty());
  // Duplicate id rejected.
  EXPECT_EQ(kb.load({make_variant("cpu-fast", TargetKind::kCpu, 1, 1)}).code(),
            StatusCode::kAlreadyExists);
}

TEST(KnowledgeBase, LoadFromJsonMetadata) {
  const auto doc = compiler::variants_to_json(standard_variants());
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load_json(doc.dump()).ok());
  EXPECT_EQ(kb.variants_for("k")->size(), 5u);
  EXPECT_FALSE(kb.load_json("{bad json").ok());
}

TEST(KnowledgeBase, ObservationsOverrideEstimates) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  const Variant v = *kb.find("k", "cpu-fast");
  EXPECT_DOUBLE_EQ(kb.expected_latency("k", v), 100.0);  // static estimate
  // Reality is 4x slower than estimated.
  for (int i = 0; i < 5; ++i) kb.observe("k", "cpu-fast", 400.0, 9000.0);
  EXPECT_NEAR(kb.expected_latency("k", v), 400.0, 1.0);
  EXPECT_EQ(kb.observation_count("k", "cpu-fast"), 5);
  EXPECT_EQ(kb.observation_count("k", "cpu-eco"), 0);
}

TEST(KnowledgeBase, BlendIsGradual) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  const Variant v = *kb.find("k", "cpu-fast");
  kb.observe("k", "cpu-fast", 400.0, 9000.0);
  const double after_one = kb.expected_latency("k", v);
  EXPECT_GT(after_one, 100.0);
  EXPECT_LT(after_one, 400.0);
}

// ------------------------------------------------------------- Autotuner --

TEST(Autotuner, PicksFastestForLatencyGoal) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);
  auto sel = tuner.select("k", Goal{}, SystemState{});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->variant.id, "fpga-fast");
  EXPECT_TRUE(sel->constraints_met);
}

TEST(Autotuner, PicksEcoForEnergyGoal) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);
  Goal goal;
  goal.objective = Goal::Objective::kMinEnergy;
  auto sel = tuner.select("k", goal, SystemState{});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->variant.id, "fpga-fast");  // lowest energy too
  // Remove FPGA: eco CPU wins on energy.
  SystemState no_fpga;
  no_fpga.fpgas_available = 0;
  auto sel2 = tuner.select("k", goal, no_fpga);
  ASSERT_TRUE(sel2.ok());
  EXPECT_EQ(sel2->variant.id, "cpu-eco");
}

TEST(Autotuner, FpgaUnavailableFallsBackToCpu) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);
  SystemState state;
  state.fpgas_available = 0;
  auto sel = tuner.select("k", Goal{}, state);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->variant.id, "cpu-fast");
}

TEST(Autotuner, QueueDepthShiftsChoiceToCpu) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);
  SystemState congested;
  congested.fpga_queue_depth = 3.0;  // 40us * 4 = 160us > 100us CPU
  auto sel = tuner.select("k", Goal{}, congested);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->variant.id, "cpu-fast");
}

TEST(Autotuner, CpuLoadShiftsChoiceToFpga) {
  KnowledgeBase kb;
  // Only CPU is nominally faster here.
  std::vector<Variant> variants = {
      make_variant("cpu", TargetKind::kCpu, 30.0, 100.0),
      make_variant("fpga", TargetKind::kFpga, 40.0, 100.0),
  };
  ASSERT_TRUE(kb.load(variants).ok());
  Autotuner tuner(&kb);
  auto idle = tuner.select("k", Goal{}, SystemState{});
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle->variant.id, "cpu");
  SystemState loaded;
  loaded.cpu_load = 0.8;  // 30/0.2 = 150us
  auto busy = tuner.select("k", Goal{}, loaded);
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->variant.id, "fpga");
}

TEST(Autotuner, ProtectLevelRequiresSecuredVariant) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);
  SystemState state;
  state.protection = security::ProtectionLevel::kProtect;
  auto sel = tuner.select("k", Goal{}, state);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->variant.id, "fpga-dift");  // fastest protected variant
}

TEST(Autotuner, QuarantineBlocksExecution) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);
  SystemState state;
  state.protection = security::ProtectionLevel::kQuarantine;
  EXPECT_EQ(tuner.select("k", Goal{}, state).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Autotuner, DeadlineConstraintFiltersThenFallsBack) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);
  Goal goal;
  goal.objective = Goal::Objective::kMinEnergy;
  goal.latency_deadline_us = 60.0;  // only FPGA variants qualify
  auto sel = tuner.select("k", goal, SystemState{});
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->constraints_met);
  EXPECT_EQ(sel->variant.target, TargetKind::kFpga);
  // Impossible deadline: least-violating variant returned, flagged.
  goal.latency_deadline_us = 1.0;
  auto fallback = tuner.select("k", goal, SystemState{});
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->constraints_met);
  EXPECT_EQ(fallback->variant.id, "fpga-fast");
}

TEST(Autotuner, LearnsFromMispredictedEstimates) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);
  // fpga-fast turns out to be 10x slower than estimated.
  for (int i = 0; i < 5; ++i) tuner.observe("k", "fpga-fast", 400.0, 1500.0);
  auto sel = tuner.select("k", Goal{}, SystemState{});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->variant.id, "fpga-dift");  // next best
}

TEST(Autotuner, MissingKernelReported) {
  KnowledgeBase kb;
  Autotuner tuner(&kb);
  EXPECT_EQ(tuner.select("ghost", Goal{}, SystemState{}).status().code(),
            StatusCode::kNotFound);
}

// ------------------------------------------------------------ Hypervisor --

Hypervisor make_hypervisor() {
  auto spec = platform::PlatformSpec::everest_reference(1, 0, 0);
  return Hypervisor(*spec.find("p9-0"), spec);
}

TEST(Hypervisor, VmCreationAndOvercommitLimit) {
  Hypervisor hv = make_hypervisor();
  VmConfig config;
  config.name = "vm0";
  config.vcpus = 16;
  ASSERT_TRUE(hv.create_vm(config).ok());
  EXPECT_DOUBLE_EQ(hv.cpu_pressure(), 1.0);
  config.name = "vm1";
  ASSERT_TRUE(hv.create_vm(config).ok());  // 2x overcommit allowed
  config.name = "vm2";
  EXPECT_EQ(hv.create_vm(config).status().code(),
            StatusCode::kResourceExhausted);
  config.vcpus = 0;
  EXPECT_EQ(hv.create_vm(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Hypervisor, CpuExecutionStretchedByOvercommit) {
  Hypervisor hv = make_hypervisor();
  VmConfig config;
  config.vcpus = 16;
  VmHandle vm = hv.create_vm(config).value();
  Variant v = make_variant("cpu", TargetKind::kCpu, 100.0, 1000.0);
  auto single = hv.execute(vm, v, 0.0);
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(single->breakdown.compute_us, 100.0, 1.0);
  // Add a second VM: pressure 2.0 stretches compute.
  config.name = "vm1";
  ASSERT_TRUE(hv.create_vm(config).ok());
  auto contended = hv.execute(vm, v, 0.0);
  ASSERT_TRUE(contended.ok());
  EXPECT_NEAR(contended->breakdown.compute_us, 200.0, 1.0);
}

TEST(Hypervisor, VfpgaAccessControlAndQueueing) {
  Hypervisor hv = make_hypervisor();
  VmConfig no_fpga;
  no_fpga.name = "plain";
  VmHandle plain = hv.create_vm(no_fpga).value();
  Variant v = make_variant("fpga", TargetKind::kFpga, 50.0, 500.0);
  EXPECT_EQ(hv.execute(plain, v, 0.0).status().code(),
            StatusCode::kPermissionDenied);

  VmConfig with_fpga;
  with_fpga.name = "accel";
  with_fpga.vfpga_access = true;
  VmHandle accel = hv.create_vm(with_fpga).value();
  auto first = hv.execute(accel, v, 0.0);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_GT(first->remoting_us, 0.0);
  EXPECT_DOUBLE_EQ(first->breakdown.queue_us, 0.0);
  // Second call at t=0 queues behind the first.
  auto second = hv.execute(accel, v, 0.0);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->breakdown.queue_us, 0.0);
  EXPECT_GT(hv.queue_wait_us("P9-VU9P", 0.0), 0.0);
  // Far in the future the slot is free again.
  EXPECT_DOUBLE_EQ(hv.queue_wait_us("P9-VU9P", 1e9), 0.0);
}

TEST(Hypervisor, InvalidHandleRejected) {
  Hypervisor hv = make_hypervisor();
  Variant v = make_variant("cpu", TargetKind::kCpu, 10.0, 10.0);
  EXPECT_EQ(hv.execute(VmHandle{}, v, 0.0).status().code(),
            StatusCode::kInvalidArgument);
}

// -------------------------------------------------------- AdaptationLoop --

AdaptationLoop make_loop(KnowledgeBase* kb) {
  auto spec = platform::PlatformSpec::everest_reference(1, 0, 0);
  Hypervisor hv(*spec.find("p9-0"), spec);
  VmConfig config;
  config.name = "app";
  config.vcpus = 8;
  config.vfpga_access = true;
  VmHandle vm = hv.create_vm(config).value();
  return AdaptationLoop(kb, std::move(hv), vm);
}

TEST(AdaptationLoop, RunsInvocationsAndAdvancesTime) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  AdaptationLoop loop = make_loop(&kb);
  auto r1 = loop.invoke("k", Goal{});
  ASSERT_TRUE(r1.ok()) << r1.status().to_string();
  EXPECT_GT(r1->latency_us, 0.0);
  EXPECT_GT(loop.now_us(), 0.0);
  EXPECT_GT(kb.observation_count("k", r1->variant_id), 0);
}

TEST(AdaptationLoop, AutoProtectionEscalatesUnderAttack) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  AdaptationLoop loop = make_loop(&kb);
  // Warm up the detector with normal traffic.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(loop.invoke("k", Goal{}).ok());
  }
  EXPECT_EQ(loop.protection("k"), security::ProtectionLevel::kNormal);
  // Inject a sustained timing anomaly (e.g. a co-located side channel).
  InvocationContext attack;
  attack.injected_latency_us = 1e6;
  int escalations = 0;
  for (int i = 0; i < 12; ++i) {
    auto r = loop.invoke("k", Goal{}, attack);
    if (!r.ok()) break;  // quarantined
    escalations += r->anomaly_flagged;
  }
  EXPECT_GT(escalations, 3);
  EXPECT_GE(static_cast<int>(loop.protection("k")),
            static_cast<int>(security::ProtectionLevel::kMonitor));
}

TEST(AdaptationLoop, FpgaFaultsTripBreakerAndFallBackToCpu) {
  KnowledgeBase kb;
  // One FPGA variant (preferred on latency) and one CPU fallback.
  ASSERT_TRUE(kb.load({make_variant("cpu-fast", TargetKind::kCpu, 100.0, 9000.0),
                       make_variant("fpga-fast", TargetKind::kFpga, 40.0,
                                    1500.0)})
                  .ok());
  AdaptationLoop loop = make_loop(&kb);
  resilience::BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_cooldown_us = 1e12;  // stays open for the whole test
  resilience::CircuitBreakerBoard board(policy);
  resilience::RetryPolicy retry;
  retry.max_attempts = 8;
  retry.base_delay_us = 10.0;
  loop.set_resilience(&board, retry);

  Goal goal;
  goal.objective = Goal::Objective::kMinLatency;
  InvocationContext chaos;
  chaos.fault_probability = 1.0;  // every FPGA offload fails
  auto r = loop.invoke("k", goal, chaos);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  // Three failures open the FPGA breaker; the fourth attempt re-selects
  // and lands on the CPU, which succeeds.
  EXPECT_EQ(r->attempts, 4);
  EXPECT_EQ(r->variant_id, "cpu-fast");
  EXPECT_TRUE(r->degraded);
  EXPECT_EQ(board.state("k", "fpga-fast"),
            resilience::BreakerState::kOpen);
  EXPECT_EQ(board.total_trips(), 1);

  // While the breaker stays open, later invocations skip the FPGA
  // outright: one attempt, still flagged degraded.
  auto r2 = loop.invoke("k", goal, chaos);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->attempts, 1);
  EXPECT_EQ(r2->variant_id, "cpu-fast");
  EXPECT_TRUE(r2->degraded);
}

TEST(AdaptationLoop, NoRetryBudgetSurfacesUnavailable) {
  KnowledgeBase kb;
  ASSERT_TRUE(
      kb.load({make_variant("fpga-fast", TargetKind::kFpga, 40.0, 1500.0)})
          .ok());
  AdaptationLoop loop = make_loop(&kb);
  resilience::CircuitBreakerBoard board;
  resilience::RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  loop.set_resilience(&board, no_retry);
  InvocationContext chaos;
  chaos.fault_probability = 1.0;
  auto r = loop.invoke("k", Goal{}, chaos);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(AdaptationLoop, ProtectModeSwitchesToSecuredVariant) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  AdaptationLoop loop = make_loop(&kb);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(loop.invoke("k", Goal{}).ok());
  InvocationContext attack;
  attack.injected_latency_us = 1e6;
  std::string last_variant;
  for (int i = 0; i < 8; ++i) {
    auto r = loop.invoke("k", Goal{}, attack);
    if (!r.ok()) break;
    last_variant = r->variant_id;
    if (loop.protection("k") == security::ProtectionLevel::kProtect) break;
  }
  if (loop.protection("k") == security::ProtectionLevel::kProtect) {
    auto r = loop.invoke("k", Goal{}, attack);
    if (r.ok()) {
      EXPECT_TRUE(r->variant_id == "fpga-dift" || r->variant_id == "fpga-enc")
          << r->variant_id;
    }
  }
}

// ------------------------------------------------- hot swap (JIT loop) --

TEST(KnowledgeBaseHotSwap, UpsertReplacesAndResetsObservations) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  const std::uint64_t e0 = kb.epoch("k");
  ASSERT_GE(e0, 1u);
  for (int i = 0; i < 5; ++i) kb.observe("k", "cpu-fast", 400.0, 9000.0);

  // Re-mint cpu-fast with a new estimate: the stale EWMA must not
  // mis-calibrate the new code.
  std::uint64_t e1 = 0;
  ASSERT_TRUE(
      kb.upsert("k", {make_variant("cpu-fast", TargetKind::kCpu, 50.0, 800.0)},
                &e1)
          .ok());
  EXPECT_GT(e1, e0);
  EXPECT_EQ(kb.variants_for("k")->size(), 5u);  // replaced, not appended
  EXPECT_EQ(kb.observation_count("k", "cpu-fast"), 0);
  EXPECT_DOUBLE_EQ(kb.find("k", "cpu-fast")->latency_us, 50.0);

  // Mismatched kernel name rejected.
  Variant wrong = make_variant("x", TargetKind::kCpu, 1.0, 1.0);
  wrong.kernel = "other";
  EXPECT_EQ(kb.upsert("k", {wrong}).code(), StatusCode::kInvalidArgument);
}

TEST(KnowledgeBaseHotSwap, RetireRemovesFromNewSnapshotsOnly) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  const VariantSet before = kb.variants_for("k");

  std::uint64_t epoch = 0;
  EXPECT_EQ(kb.retire("k", {"cpu-eco", "does-not-exist"}, &epoch), 1u);
  EXPECT_EQ(kb.epoch("k"), epoch);
  EXPECT_FALSE(kb.find("k", "cpu-eco").has_value());
  EXPECT_EQ(kb.variants_for("k")->size(), 4u);
  // The pre-retire snapshot is immutable: an in-flight batch that picked
  // cpu-eco still sees it until the batch lets the snapshot go.
  EXPECT_EQ(before->size(), 5u);
  // Retiring nothing does not bump the epoch.
  const std::uint64_t e = kb.epoch("k");
  EXPECT_EQ(kb.retire("k", {"nope"}), 0u);
  EXPECT_EQ(kb.epoch("k"), e);
}

TEST(Autotuner, SpecializationWindowGatesEligibility) {
  EXPECT_TRUE(specialization_matches(
      make_variant("g", TargetKind::kCpu, 1.0, 1.0), 37.0));  // generic
  Variant s = make_variant("s", TargetKind::kCpu, 1.0, 1.0);
  s.specialized_scale = 4.0;
  EXPECT_TRUE(specialization_matches(s, 4.0));
  EXPECT_TRUE(specialization_matches(s, 4.0 * 1.4));   // inside half bucket
  EXPECT_FALSE(specialization_matches(s, 8.0));        // next bucket
  EXPECT_FALSE(specialization_matches(s, 1.0));

  KnowledgeBase kb;
  Variant spec4 = make_variant("cpu-spec4", TargetKind::kCpu, 10.0, 500.0);
  spec4.specialized_scale = 4.0;
  ASSERT_TRUE(
      kb.load({make_variant("cpu-gen", TargetKind::kCpu, 100.0, 9000.0),
               spec4})
          .ok());
  Autotuner tuner(&kb);
  SystemState state;
  state.fpgas_available = 0;
  state.data_scale = 4.0;
  auto at_scale = tuner.select("k", Goal{}, state);
  ASSERT_TRUE(at_scale.ok());
  EXPECT_EQ(at_scale->variant.id, "cpu-spec4");
  EXPECT_EQ(at_scale->kb_epoch, kb.epoch("k"));
  state.data_scale = 1.0;  // outside the window: specialist ineligible
  auto off_scale = tuner.select("k", Goal{}, state);
  ASSERT_TRUE(off_scale.ok());
  EXPECT_EQ(off_scale->variant.id, "cpu-gen");
}

// The TSan regression for the compile↔serve loop: concurrent hot-swap +
// observe + selection, with the invariant that a selection STARTED after
// a retire completed never returns the retired variant.
TEST(KnowledgeBaseHotSwap, ConcurrentSwapObserveSelectIsSafe) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.load(standard_variants()).ok());
  Autotuner tuner(&kb);

  std::atomic<bool> stop{false};
  std::atomic<int> minted_generation{0};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (int gen = 1; gen <= 200; ++gen) {
      const std::string id = "jit-gen-" + std::to_string(gen);
      Variant v = make_variant(id, TargetKind::kCpu, 5.0 + gen % 3, 100.0);
      EXPECT_TRUE(kb.upsert("k", {v}).ok());
      const std::string prev = "jit-gen-" + std::to_string(gen - 1);
      if (gen > 1) kb.retire("k", {prev});
      // Publish order: retire(prev) happens-before this store, so any
      // reader that sees `gen` must not be handed `prev` on a fresh
      // selection.
      minted_generation.store(gen, std::memory_order_release);
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      SystemState state;
      state.fpgas_available = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const int gen = minted_generation.load(std::memory_order_acquire);
        auto sel = tuner.select("k", Goal{}, state);
        if (!sel.ok()) continue;
        kb.observe("k", sel->variant.id, sel->predicted_latency_us, 100.0);
        if (gen > 1) {
          // Any generation older than the one visible BEFORE this
          // selection started is retired; serving it would be the
          // lost-hot-swap bug.
          for (int old = 1; old < gen; ++old) {
            if (sel->variant.id == "jit-gen-" + std::to_string(old)) {
              violations.fetch_add(1);
            }
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_TRUE(kb.find("k", "jit-gen-200").has_value());
  EXPECT_FALSE(kb.find("k", "jit-gen-199").has_value());
}

}  // namespace
}  // namespace everest::runtime
