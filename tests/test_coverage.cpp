// Breadth-coverage tests for corners the per-module suites do not reach:
// IR block surgery and pattern ordering, dialect registry queries, HLS
// device presets and config plumbing, knowledge-base/autotuner scoring
// details, workflow-from-IR integration, and app physics edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/airquality.hpp"
#include "apps/traffic.hpp"
#include "common/rng.hpp"
#include "dsl/workflow_dsl.hpp"
#include "hls/hls.hpp"
#include "ir/builder.hpp"
#include "ir/dialect.hpp"
#include "ir/pattern.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "runtime/autotuner.hpp"
#include "workflow/scheduler.hpp"

namespace everest {
namespace {

// ----------------------------------------------------------- IR surgery --

TEST(IrSurgery, BlockInsertTakeIndexOf) {
  ir::register_everest_dialects();
  ir::Module m("t");
  ir::Function* fn = m.add_function("f", ir::Type::function({}, {})).value();
  ir::OpBuilder b(&fn->entry());
  ir::Value c1 = b.constant_f64(1.0);
  ir::Value c2 = b.constant_f64(2.0);
  (void)c1;
  (void)c2;
  ir::Block& block = fn->entry();
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block.index_of(&block.op(1)), 1u);

  // take() removes without destroying; re-insert at the front.
  auto taken = block.take(1);
  EXPECT_EQ(block.size(), 1u);
  EXPECT_EQ(taken->parent(), nullptr);
  ir::Operation& reinserted = block.insert(0, std::move(taken));
  EXPECT_EQ(block.index_of(&reinserted), 0u);
  EXPECT_EQ(reinserted.parent(), &block);
  EXPECT_EQ(block.size(), 2u);
}

TEST(IrSurgery, ReplaceAllUsesCountsRewrites) {
  ir::register_everest_dialects();
  ir::Module m("t");
  ir::Type t = ir::Type::tensor({4}, ir::ScalarKind::kF64);
  ir::Function* fn = m.add_function("f", ir::Type::function({t, t}, {t})).value();
  ir::OpBuilder b(&fn->entry());
  ir::Value sum = b.create_value("tensor.add", {fn->arg(0), fn->arg(0)}, t);
  b.ret({sum});
  // arg0 is used twice by the add.
  const std::size_t n =
      ir::replace_all_uses(fn->entry(), fn->arg(0), fn->arg(1));
  EXPECT_EQ(n, 2u);
  EXPECT_TRUE(ir::verify(m).ok());
  EXPECT_EQ(fn->entry().op(0).operand(0), fn->arg(1));
}

TEST(IrSurgery, WalkIsPreOrder) {
  ir::register_everest_dialects();
  ir::Module m("t");
  ir::Function* fn = m.add_function("f", ir::Type::function({}, {})).value();
  ir::OpBuilder b(&fn->entry());
  ir::Operation& loop = b.create("kernel.for", {}, {},
                                 {{"lb", ir::Attribute::integer(0)},
                                  {"ub", ir::Attribute::integer(2)},
                                  {"step", ir::Attribute::integer(1)}});
  ir::Block& body = loop.emplace_region().emplace_block({ir::Type::index()});
  ir::OpBuilder ib(&body);
  ib.create("kernel.yield", {}, {});
  b.ret();
  std::vector<std::string> order;
  fn->walk([&](ir::Operation& op) { order.push_back(op.name()); });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "kernel.for");   // parent before children
  EXPECT_EQ(order[1], "kernel.yield");
  EXPECT_EQ(order[2], "builtin.return");
}

// Benefit ordering: the higher-benefit pattern must win when both match.
class TagPattern : public ir::RewritePattern {
 public:
  TagPattern(int benefit, std::string tag, std::vector<std::string>* log)
      : benefit_(benefit), tag_(std::move(tag)), log_(log) {}
  [[nodiscard]] std::string_view name() const override { return tag_; }
  [[nodiscard]] int benefit() const override { return benefit_; }
  bool match_and_rewrite(ir::Block& block, std::size_t index,
                         ir::PatternRewriter& rewriter) override {
    ir::Operation& op = block.op(index);
    if (op.name() != "builtin.call" || op.has_attr("tagged")) return false;
    op.set_attr("tagged", ir::Attribute::string(tag_));
    log_->push_back(tag_);
    rewriter.mark_changed();
    return true;
  }

 private:
  int benefit_;
  std::string tag_;
  std::vector<std::string>* log_;
};

TEST(IrSurgery, PatternBenefitOrdering) {
  ir::register_everest_dialects();
  ir::Module m("t");
  ir::Function* fn = m.add_function("f", ir::Type::function({}, {})).value();
  ir::OpBuilder b(&fn->entry());
  b.call("g", {}, {});
  b.ret();
  std::vector<std::string> log;
  std::vector<std::unique_ptr<ir::RewritePattern>> patterns;
  patterns.push_back(std::make_unique<TagPattern>(1, "low", &log));
  patterns.push_back(std::make_unique<TagPattern>(10, "high", &log));
  EXPECT_TRUE(ir::apply_patterns_greedily(*fn, patterns));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "high");
}

TEST(DialectRegistry, QueriesWork) {
  ir::register_everest_dialects();
  auto& reg = ir::DialectRegistry::instance();
  EXPECT_TRUE(reg.has_dialect("tensor"));
  EXPECT_TRUE(reg.has_dialect("workflow"));
  EXPECT_FALSE(reg.has_dialect("bogus"));
  EXPECT_NE(reg.lookup("kernel.for"), nullptr);
  EXPECT_EQ(reg.lookup("kernel.nonesuch"), nullptr);
  EXPECT_GT(reg.registered_ops().size(), 25u);
}

// ------------------------------------------------------------- HLS misc --

TEST(HlsMisc, DevicePresetsAreOrdered) {
  const auto edge = hls::FpgaDevice::edge_zu7ev();
  const auto ku = hls::FpgaDevice::cloudfpga_ku060();
  const auto vu = hls::FpgaDevice::p9_vu9p();
  EXPECT_LT(edge.luts, ku.luts);
  EXPECT_LT(ku.luts, vu.luts);
  EXPECT_LT(edge.bram_blocks, vu.bram_blocks);
  EXPECT_GT(vu.max_fmax_mhz, edge.max_fmax_mhz);
}

TEST(HlsMisc, ConfigSummaryMentionsSecurity) {
  hls::HlsConfig config;
  config.unroll = 4;
  config.enable_dift = true;
  config.encrypt_offchip = "aes128-gcm";
  const std::string s = config.summary();
  EXPECT_NE(s.find("unroll=4"), std::string::npos);
  EXPECT_NE(s.find("+dift"), std::string::npos);
  EXPECT_NE(s.find("aes128-gcm"), std::string::npos);
}

TEST(HlsMisc, UtilizationIsMaxAcrossResources) {
  hls::ResourceUsage usage;
  usage.luts = 100;
  usage.dsps = 90;
  hls::FpgaDevice dev;
  dev.luts = 1000;
  dev.ffs = 1000;
  dev.dsps = 100;   // DSP is the binding resource: 90%
  dev.bram_blocks = 1000;
  EXPECT_NEAR(usage.utilization(dev), 0.9, 1e-12);
  EXPECT_TRUE(usage.fits(dev));
  usage.dsps = 101;
  EXPECT_FALSE(usage.fits(dev));
}

TEST(HlsMisc, OpClassification) {
  using hls::OpClass;
  EXPECT_EQ(hls::classify_op("kernel.binop", "mul"), OpClass::kMul);
  EXPECT_EQ(hls::classify_op("kernel.binop", "mod"), OpClass::kLogic);
  EXPECT_EQ(hls::classify_op("kernel.binop", "max"), OpClass::kAdd);
  EXPECT_EQ(hls::classify_op("kernel.unop", "exp"), OpClass::kSpecial);
  EXPECT_EQ(hls::classify_op("kernel.unop", "neg"), OpClass::kAdd);
  EXPECT_EQ(hls::classify_op("kernel.load", ""), OpClass::kLoad);
  // Every class has a positive-latency profile.
  for (auto cls : {OpClass::kAdd, OpClass::kMul, OpClass::kDiv,
                   OpClass::kSpecial, OpClass::kLoad, OpClass::kStore,
                   OpClass::kCast, OpClass::kLogic}) {
    EXPECT_GE(hls::profile_for(cls).latency, 1);
    EXPECT_GT(hls::profile_for(cls).delay_ns, 0.0);
  }
}

// --------------------------------------------------------- Runtime misc --

TEST(RuntimeMisc, MonitorModePrefersProtectedVariants) {
  runtime::KnowledgeBase kb;
  compiler::Variant fast;
  fast.id = "fast";
  fast.kernel = "k";
  fast.target = compiler::TargetKind::kFpga;
  fast.device = "P9-VU9P";
  fast.latency_us = 100.0;
  compiler::Variant secured = fast;
  secured.id = "secured";
  secured.dift = true;
  secured.latency_us = 115.0;  // within the 20% monitor-mode bonus
  ASSERT_TRUE(kb.load({fast, secured}).ok());
  runtime::Autotuner tuner(&kb);
  runtime::SystemState normal;
  auto plain = tuner.select("k", runtime::Goal{}, normal);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->variant.id, "fast");
  runtime::SystemState monitor;
  monitor.protection = security::ProtectionLevel::kMonitor;
  auto watched = tuner.select("k", runtime::Goal{}, monitor);
  ASSERT_TRUE(watched.ok());
  EXPECT_EQ(watched->variant.id, "secured");
}

TEST(RuntimeMisc, DataScaleScalesBothMetrics) {
  runtime::KnowledgeBase kb;
  compiler::Variant v;
  v.id = "v";
  v.kernel = "k";
  v.target = compiler::TargetKind::kCpu;
  v.latency_us = 100.0;
  v.energy_uj = 1000.0;
  ASSERT_TRUE(kb.load({v}).ok());
  runtime::Autotuner tuner(&kb);
  runtime::SystemState big;
  big.data_scale = 3.0;
  auto sel = tuner.select("k", runtime::Goal{}, big);
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(sel->predicted_latency_us, 300.0, 1e-9);
  EXPECT_NEAR(sel->predicted_energy_uj, 3000.0, 1e-9);
}

// -------------------------------------------------- Workflow integration --

TEST(WorkflowIntegration, DslToIrToScheduleEndToEnd) {
  dsl::WorkflowBuilder wf("pipeline");
  auto src = wf.source("sensor");
  auto stage1 = wf.task("clean").kernel("k1").inputs({src})
                    .output_shape({4096}).flops(4e8).done();
  auto stage2a = wf.task("featA").kernel("k2").inputs({stage1})
                     .output_shape({256}).flops(8e8).done();
  auto stage2b = wf.task("featB").kernel("k3").inputs({stage1})
                     .output_shape({256}).flops(8e8).done();
  auto merge = wf.task("merge").kernel("k4").inputs({stage2a, stage2b})
                   .output_shape({64}).flops(1e8).done();
  ASSERT_TRUE(wf.sink("out", merge).ok());
  auto module = wf.lower();
  ASSERT_TRUE(module.ok());
  auto graph = workflow::TaskGraph::from_ir(*module->find("pipeline"));
  ASSERT_TRUE(graph.ok());
  std::vector<workflow::WorkerSpec> workers = {
      {"w0", 10.0, 1.0, 10.0}, {"w1", 10.0, 1.0, 10.0}};
  for (auto kind : {workflow::SchedulerKind::kFifo,
                    workflow::SchedulerKind::kHeft,
                    workflow::SchedulerKind::kWorkStealing}) {
    workflow::SimulationOptions options;
    options.scheduler = kind;
    auto outcome = workflow::simulate_schedule(*graph, workers, options);
    ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
    // Lower bound: both 0.8-GFLOP feature stages cannot finish faster than
    // one each on the two workers.
    EXPECT_GE(outcome->makespan_us, 8e8 / (10.0 * 1e3) * 0.99);
  }
}

// ------------------------------------------------------------ App physics --

TEST(AppPhysics, PlumePeaksDownwindOfStack) {
  apps::StackSource stack;
  stack.y_km = 5.0;
  stack.x_km = 5.0;
  stack.height_m = 80.0;
  stack.emission_gs = 100.0;
  // Elevated release: ground concentration rises, peaks, then decays.
  double prev = 0.0, peak = 0.0, peak_x = 0.0;
  bool rose = false;
  for (double x = 5.1; x < 15.0; x += 0.1) {
    const double c = apps::plume_concentration(stack, 5.0, 0.0,
                                               apps::Stability::kD, 5.0, x);
    if (c > peak) {
      peak = c;
      peak_x = x;
    }
    rose |= c > prev;
    prev = c;
  }
  EXPECT_TRUE(rose);
  EXPECT_GT(peak, 0.0);
  EXPECT_GT(peak_x, 5.2);   // not at the stack
  EXPECT_LT(peak_x, 14.0);  // and decaying before the domain edge
  // Far-field value below the peak.
  const double far = apps::plume_concentration(stack, 5.0, 0.0,
                                               apps::Stability::kD, 5.0, 14.9);
  EXPECT_LT(far, peak);
}

TEST(AppPhysics, TallerStackLowersGroundPeak) {
  apps::StackSource low;
  low.y_km = 5.0;
  low.x_km = 5.0;
  low.height_m = 30.0;
  apps::StackSource tall = low;
  tall.height_m = 120.0;
  double low_peak = 0.0, tall_peak = 0.0;
  for (double x = 5.1; x < 15.0; x += 0.1) {
    low_peak = std::max(low_peak,
                        apps::plume_concentration(low, 5.0, 0.0,
                                                  apps::Stability::kC, 5.0, x));
    tall_peak = std::max(
        tall_peak, apps::plume_concentration(tall, 5.0, 0.0,
                                             apps::Stability::kC, 5.0, x));
  }
  EXPECT_GT(low_peak, tall_peak);
}

TEST(AppPhysics, ArterialsAreFasterThanSideStreets) {
  apps::RoadNetwork net = apps::RoadNetwork::make_grid(9, 9, 3);
  double arterial_speed = 0.0, side_speed = 1e9;
  for (std::size_t s = 0; s < net.num_segments(); ++s) {
    arterial_speed = std::max(arterial_speed, net.segment(s).freeflow_kmh);
    side_speed = std::min(side_speed, net.segment(s).freeflow_kmh);
  }
  EXPECT_GT(arterial_speed, side_speed);
  // Expected segment time respects speed floor (no divide-by-zero blowups).
  for (std::size_t s = 0; s < net.num_segments(); s += 7) {
    for (int h = 0; h < 24; ++h) {
      const double t = net.expected_time_s(s, h);
      EXPECT_GT(t, 0.0);
      EXPECT_LT(t, 3600.0);
    }
  }
}

}  // namespace
}  // namespace everest
