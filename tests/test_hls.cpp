// Tests for the HLS engine: CDFG extraction, affine access analysis,
// scheduling, memory partitioning, binding, and full synthesis with
// security extensions.
#include <gtest/gtest.h>

#include "hls/binding.hpp"
#include "hls/cdfg.hpp"
#include "hls/crypto_cores.hpp"
#include "hls/hls.hpp"
#include "hls/memory.hpp"
#include "hls/scheduling.hpp"
#include "ir/builder.hpp"
#include "ir/dialect.hpp"
#include "ir/verifier.hpp"

namespace everest::hls {
namespace {

using ir::Attribute;
using ir::MemorySpace;
using ir::OpBuilder;
using ir::ScalarKind;
using ir::Type;

/// Builds: for i in [0,n): c[i] = a[i] + b[i]  (all on-chip f64 arrays).
ir::Module make_vecadd(std::int64_t n) {
  ir::register_everest_dialects();
  ir::Module m("vecadd_mod");
  Type mem = Type::memref({n}, ScalarKind::kF64, MemorySpace::kOnChip);
  ir::Function* fn =
      m.add_function("vecadd", Type::function({mem, mem, mem}, {})).value();
  OpBuilder b(&fn->entry());
  ir::Operation& loop = b.create("kernel.for", {}, {},
                                 {{"lb", Attribute::integer(0)},
                                  {"ub", Attribute::integer(n)},
                                  {"step", Attribute::integer(1)}});
  ir::Block& body = loop.emplace_region().emplace_block({Type::index()});
  OpBuilder ib(&body);
  ir::Value i = body.arg(0);
  ir::Value a = ib.create_value("kernel.load", {fn->arg(0), i}, Type::f64());
  ir::Value bb = ib.create_value("kernel.load", {fn->arg(1), i}, Type::f64());
  ir::Value c = ib.create_value("kernel.binop", {a, bb}, Type::f64(),
                                {{"op", Attribute::string("add")}});
  ib.create("kernel.store", {c, fn->arg(2), i}, {});
  ib.create("kernel.yield", {}, {});
  b.ret();
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
  return m;
}

/// Builds a matmul nest: for i, j, k: C[i,j] += A[i,k] * B[k,j].
ir::Module make_matmul(std::int64_t n) {
  ir::register_everest_dialects();
  ir::Module m("matmul_mod");
  Type mem = Type::memref({n, n}, ScalarKind::kF64, MemorySpace::kOnChip);
  ir::Function* fn =
      m.add_function("matmul", Type::function({mem, mem, mem}, {})).value();
  OpBuilder b(&fn->entry());
  auto make_loop = [&](OpBuilder& builder) -> ir::Block& {
    ir::Operation& loop = builder.create("kernel.for", {}, {},
                                         {{"lb", Attribute::integer(0)},
                                          {"ub", Attribute::integer(n)},
                                          {"step", Attribute::integer(1)}});
    return loop.emplace_region().emplace_block({Type::index()});
  };
  ir::Block& bi = make_loop(b);
  OpBuilder obi(&bi);
  ir::Block& bj = make_loop(obi);
  OpBuilder obj(&bj);
  ir::Block& bk = make_loop(obj);
  OpBuilder obk(&bk);
  ir::Value i = bi.arg(0), j = bj.arg(0), k = bk.arg(0);
  ir::Value a = obk.create_value("kernel.load", {fn->arg(0), i, k}, Type::f64());
  ir::Value bv = obk.create_value("kernel.load", {fn->arg(1), k, j}, Type::f64());
  ir::Value cv = obk.create_value("kernel.load", {fn->arg(2), i, j}, Type::f64());
  ir::Value prod = obk.create_value("kernel.binop", {a, bv}, Type::f64(),
                                    {{"op", Attribute::string("mul")}});
  ir::Value acc = obk.create_value("kernel.binop", {cv, prod}, Type::f64(),
                                   {{"op", Attribute::string("add")}});
  obk.create("kernel.store", {acc, fn->arg(2), i, j}, {});
  obk.create("kernel.yield", {}, {});
  obj.create("kernel.yield", {}, {});
  obi.create("kernel.yield", {}, {});
  b.ret();
  EXPECT_TRUE(ir::verify(m).ok()) << ir::verify(m).to_string();
  return m;
}

// ------------------------------------------------------------------ CDFG --

TEST(Cdfg, ExtractsVecaddNest) {
  ir::Module m = make_vecadd(128);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  ASSERT_TRUE(nests.ok()) << nests.status().to_string();
  ASSERT_EQ(nests->size(), 1u);
  const KernelLoopNest& nest = (*nests)[0];
  ASSERT_EQ(nest.loops.size(), 1u);
  EXPECT_EQ(nest.loops[0].trip_count(), 128);
  EXPECT_EQ(nest.innermost_trip(), 128);
  EXPECT_EQ(nest.outer_iterations(), 1);
  EXPECT_EQ(nest.nodes.size(), 4u);  // 2 loads, 1 add, 1 store
  ASSERT_EQ(nest.accesses.size(), 3u);
  // Unit-stride accesses.
  for (const MemAccess& acc : nest.accesses) {
    EXPECT_TRUE(acc.index.analyzable);
    EXPECT_EQ(acc.index.coeff, 1);
    EXPECT_EQ(acc.index.constant, 0);
  }
  auto hist = nest.op_histogram();
  EXPECT_EQ(hist[OpClass::kLoad], 2);
  EXPECT_EQ(hist[OpClass::kStore], 1);
  EXPECT_EQ(hist[OpClass::kAdd], 1);
}

TEST(Cdfg, ExtractsMatmulNestWithStrides) {
  ir::Module m = make_matmul(16);
  auto nests = extract_loop_nests(*m.find("matmul"));
  ASSERT_TRUE(nests.ok()) << nests.status().to_string();
  const KernelLoopNest& nest = (*nests)[0];
  ASSERT_EQ(nest.loops.size(), 3u);
  EXPECT_EQ(nest.outer_iterations(), 16 * 16);
  EXPECT_EQ(nest.innermost_trip(), 16);
  // A[i,k]: coeff 1; B[k,j]: coeff 16 (row stride); C[i,j]: coeff 0.
  std::map<std::string, std::int64_t> coeff;
  for (const MemAccess& acc : nest.accesses) {
    if (!acc.is_store) coeff[acc.array] = acc.index.coeff;
    EXPECT_TRUE(acc.index.analyzable);
  }
  EXPECT_EQ(coeff["arg0"], 1);
  EXPECT_EQ(coeff["arg1"], 16);
  EXPECT_EQ(coeff["arg2"], 0);
}

TEST(Cdfg, DataDependenciesAreEdges) {
  ir::Module m = make_vecadd(8);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  const KernelLoopNest& nest = (*nests)[0];
  // add depends on both loads; store depends on add.
  EXPECT_GE(nest.deps.num_edges(), 3u);
  EXPECT_FALSE(nest.deps.has_cycle());
}

TEST(Cdfg, FunctionWithoutLoopsYieldsNoNests) {
  ir::register_everest_dialects();
  ir::Module m("empty");
  ir::Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  b.ret();
  auto nests = extract_loop_nests(*fn);
  ASSERT_TRUE(nests.ok());
  EXPECT_TRUE(nests->empty());
}

// ------------------------------------------------------------ Scheduling --

TEST(Scheduling, AsapRespectsLatencies) {
  ir::Module m = make_vecadd(8);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  const KernelLoopNest& nest = (*nests)[0];
  Schedule s = schedule_asap(nest);
  // Loads at 0 (latency 2), add at 2 (latency 3), store at 5.
  EXPECT_EQ(s.length, 6);
  // Two loads issue in cycle 0 → 2 load units.
  EXPECT_EQ(s.units[OpClass::kLoad], 2);
}

TEST(Scheduling, AlapPushesLate) {
  ir::Module m = make_vecadd(8);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  const KernelLoopNest& nest = (*nests)[0];
  Schedule asap = schedule_asap(nest);
  Schedule alap = schedule_alap(nest, asap.length + 10);
  for (std::size_t i = 0; i < nest.nodes.size(); ++i) {
    EXPECT_GE(alap.start[i], asap.start[i]);
  }
  auto sl = slack(nest);
  // The critical path (load→add→store) has zero slack.
  int zero_slack = 0;
  for (int v : sl) zero_slack += (v == 0);
  EXPECT_GE(zero_slack, 3);
}

TEST(Scheduling, ListScheduleHonorsUnitLimits) {
  ir::Module m = make_vecadd(8);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  const KernelLoopNest& nest = (*nests)[0];
  ResourceConstraints constraints;
  constraints.max_units[OpClass::kLoad] = 1;  // single load unit
  auto s = list_schedule(nest, constraints);
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  EXPECT_LE(s->units[OpClass::kLoad], 1);
  // Serializing the loads lengthens the schedule by one cycle.
  EXPECT_EQ(s->length, 7);
}

TEST(Scheduling, ListScheduleHonorsMemoryPorts) {
  // 4 loads from the same array with 2 ports → 2 cycles of loads.
  ir::register_everest_dialects();
  ir::Module m("multi");
  Type mem = Type::memref({64}, ScalarKind::kF64, MemorySpace::kOnChip);
  ir::Function* fn = m.add_function("k", Type::function({mem}, {})).value();
  OpBuilder b(&fn->entry());
  ir::Operation& loop = b.create("kernel.for", {}, {},
                                 {{"lb", Attribute::integer(0)},
                                  {"ub", Attribute::integer(16)},
                                  {"step", Attribute::integer(1)}});
  ir::Block& body = loop.emplace_region().emplace_block({Type::index()});
  OpBuilder ib(&body);
  std::vector<ir::Value> loaded;
  for (int k = 0; k < 4; ++k) {
    loaded.push_back(
        ib.create_value("kernel.load", {fn->arg(0), body.arg(0)}, Type::f64()));
  }
  ir::Value acc = loaded[0];
  for (int k = 1; k < 4; ++k) {
    acc = ib.create_value("kernel.binop", {acc, loaded[k]}, Type::f64(),
                          {{"op", Attribute::string("add")}});
  }
  ib.create("kernel.store", {acc, fn->arg(0), body.arg(0)}, {});
  ib.create("kernel.yield", {}, {});
  b.ret();
  auto nests = extract_loop_nests(*fn);
  ASSERT_TRUE(nests.ok());
  ResourceConstraints constraints;
  constraints.mem_ports_per_array = 2;
  auto s = list_schedule((*nests)[0], constraints);
  ASSERT_TRUE(s.ok());
  // Loads must span >= 2 cycles; with unlimited ports they'd fit in 1.
  std::map<int, int> loads_at;
  for (std::size_t i = 0; i < (*nests)[0].nodes.size(); ++i) {
    if ((*nests)[0].nodes[i].cls == OpClass::kLoad) ++loads_at[s->start[i]];
  }
  for (const auto& [cycle, n] : loads_at) EXPECT_LE(n, 2);
}

TEST(Scheduling, IiAnalysisFindsRecurrence) {
  ir::Module m = make_matmul(16);
  auto nests = extract_loop_nests(*m.find("matmul"));
  const KernelLoopNest& nest = (*nests)[0];
  ResourceConstraints constraints;
  BankingPlan banking = plan_partitioning(nest, /*unroll=*/1);
  IiAnalysis ii = analyze_ii(nest, constraints, banking);
  // C[i,j] accumulation: load(2) + add(3) + store(1) ≈ recurrence of ~6.
  EXPECT_GE(ii.recurrence_mii, 5);
  EXPECT_EQ(ii.ii(), ii.recurrence_mii);
}

TEST(Scheduling, VecaddHasNoRecurrence) {
  ir::Module m = make_vecadd(64);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  ResourceConstraints constraints;
  BankingPlan banking = plan_partitioning((*nests)[0], 1);
  IiAnalysis ii = analyze_ii((*nests)[0], constraints, banking);
  EXPECT_EQ(ii.recurrence_mii, 1);
  EXPECT_EQ(ii.ii(), 1);
}

// ---------------------------------------------------------------- Memory --

TEST(Memory, UnpartitionedConflictsGrowWithUnroll) {
  ir::Module m = make_vecadd(64);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  const KernelLoopNest& nest = (*nests)[0];
  ArrayBanking none;  // 1 bank, 2 ports
  EXPECT_EQ(analyze_conflicts(nest, "arg0", none, 1).required_ii, 1);
  EXPECT_EQ(analyze_conflicts(nest, "arg0", none, 4).required_ii, 2);
  EXPECT_EQ(analyze_conflicts(nest, "arg0", none, 8).required_ii, 4);
}

TEST(Memory, CyclicPartitioningRemovesUnitStrideConflicts) {
  ir::Module m = make_vecadd(64);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  const KernelLoopNest& nest = (*nests)[0];
  ArrayBanking cyclic{PartitionType::kCyclic, 4, 2};
  // Unroll 8, 4 banks, 2 ports: 8 accesses spread over 4 banks → 2 per bank
  // → II 1.
  EXPECT_EQ(analyze_conflicts(nest, "arg0", cyclic, 8).required_ii, 1);
  // Block partitioning keeps consecutive elements together → no help.
  ArrayBanking block{PartitionType::kBlock, 4, 2};
  EXPECT_GT(analyze_conflicts(nest, "arg0", block, 8).required_ii, 1);
}

TEST(Memory, PlannerPicksSmallestSufficientBanking) {
  ir::Module m = make_vecadd(64);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  BankingPlan plan = plan_partitioning((*nests)[0], /*unroll=*/4);
  const ArrayBanking& banking = plan.of("arg0");
  EXPECT_EQ(banking.type, PartitionType::kCyclic);
  EXPECT_EQ(banking.banks, 2);  // 4 accesses / (2 banks × 2 ports) = 1
  // With no unroll, no partitioning needed.
  BankingPlan plan1 = plan_partitioning((*nests)[0], 1);
  EXPECT_EQ(plan1.of("arg0").banks, 1);
}

TEST(Memory, BramBlockAccounting) {
  ArrayBanking one{PartitionType::kNone, 1, 2};
  // 1024 f64 = 8 KiB → 2 blocks.
  EXPECT_EQ(bram_blocks_for(1024, 8, one), 2);
  ArrayBanking four{PartitionType::kCyclic, 4, 2};
  // Split across 4 banks of 2 KiB → 1 block each.
  EXPECT_EQ(bram_blocks_for(1024, 8, four), 4);
  // 4-port banks replicate.
  ArrayBanking wide{PartitionType::kCyclic, 4, 4};
  EXPECT_EQ(bram_blocks_for(1024, 8, wide), 8);
}

// --------------------------------------------------------------- Binding --

TEST(Binding, SharesUnitsAcrossCycles) {
  ir::Module m = make_vecadd(8);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  const KernelLoopNest& nest = (*nests)[0];
  ResourceConstraints constraints;
  constraints.max_units[OpClass::kLoad] = 1;
  Schedule s = list_schedule(nest, constraints).value();
  Binding binding = bind(nest, s);
  // Two loads in different cycles share instance 0.
  EXPECT_EQ(binding.instances[OpClass::kLoad], 1);
  EXPECT_EQ(binding.instances[OpClass::kAdd], 1);
  EXPECT_GE(binding.registers, 1);
}

TEST(Binding, ParallelIssuesGetDistinctInstances) {
  ir::Module m = make_vecadd(8);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  Schedule s = schedule_asap((*nests)[0]);
  Binding binding = bind((*nests)[0], s);
  EXPECT_EQ(binding.instances[OpClass::kLoad], 2);
}

// ------------------------------------------------------------- Synthesis --

TEST(Synthesis, VecaddEstimatesScaleWithN) {
  for (std::int64_t n : {64, 256}) {
    ir::Module m = make_vecadd(n);
    HlsConfig config;
    auto design = synthesize(*m.find("vecadd"), config,
                             FpgaDevice::cloudfpga_ku060());
    ASSERT_TRUE(design.ok()) << design.status().to_string();
    // II=1 pipeline: cycles ≈ depth + (n-1).
    EXPECT_NEAR(double(design->estimate.total_cycles), double(n) + 5.0, 3.0);
    EXPECT_GT(design->estimate.fmax_mhz, 200.0);
    EXPECT_GT(design->estimate.latency_us, 0.0);
    EXPECT_GT(design->estimate.energy_uj(), 0.0);
    EXPECT_TRUE(design->estimate.resources.fits(design->device));
  }
}

TEST(Synthesis, UnrollReducesCyclesCostsArea) {
  ir::Module m = make_vecadd(1024);
  HlsConfig base;
  auto d1 = synthesize(*m.find("vecadd"), base, FpgaDevice::p9_vu9p());
  HlsConfig unrolled;
  unrolled.unroll = 8;
  auto d8 = synthesize(*m.find("vecadd"), unrolled, FpgaDevice::p9_vu9p());
  ASSERT_TRUE(d1.ok() && d8.ok());
  EXPECT_LT(d8->estimate.total_cycles, d1->estimate.total_cycles / 4);
  EXPECT_GT(d8->estimate.resources.luts, d1->estimate.resources.luts);
  EXPECT_GT(d8->estimate.resources.brams, d1->estimate.resources.brams);
}

TEST(Synthesis, MatmulRecurrenceLimitsThroughput) {
  ir::Module m = make_matmul(16);
  HlsConfig config;
  auto design = synthesize(*m.find("matmul"), config, FpgaDevice::p9_vu9p());
  ASSERT_TRUE(design.ok()) << design.status().to_string();
  ASSERT_EQ(design->nests.size(), 1u);
  EXPECT_GE(design->nests[0].ii.recurrence_mii, 5);
  // 16x16 outer iterations, 16 inner each at II≈6 → > 16*16*16 cycles.
  EXPECT_GT(design->estimate.total_cycles, 16 * 16 * 16);
}

TEST(Synthesis, DiftAddsBoundedOverhead) {
  ir::Module m = make_vecadd(512);
  HlsConfig plain;
  HlsConfig dift;
  dift.enable_dift = true;
  auto d0 = synthesize(*m.find("vecadd"), plain, FpgaDevice::p9_vu9p());
  auto d1 = synthesize(*m.find("vecadd"), dift, FpgaDevice::p9_vu9p());
  ASSERT_TRUE(d0.ok() && d1.ok());
  EXPECT_GT(d1->estimate.resources.luts, d0->estimate.resources.luts);
  // TaintHLS-like: single-digit-% area overhead, tiny latency overhead.
  const double area_ratio = double(d1->estimate.resources.luts) /
                            double(d0->estimate.resources.luts);
  EXPECT_LT(area_ratio, 1.12);
  EXPECT_NEAR(d1->security.dift_area_fraction, 0.08, 0.01);
  EXPECT_EQ(d1->estimate.total_cycles - d0->estimate.total_cycles, 2);
}

TEST(Synthesis, EncryptionAddsCryptoCoreAndLatency) {
  ir::Module m = make_vecadd(4096);
  HlsConfig enc;
  enc.encrypt_offchip = "aes128-gcm";
  auto plain = synthesize(*m.find("vecadd"), HlsConfig{},
                          FpgaDevice::p9_vu9p(), 3 * 4096 * 8);
  auto secured = synthesize(*m.find("vecadd"), enc, FpgaDevice::p9_vu9p(),
                            3 * 4096 * 8);
  ASSERT_TRUE(plain.ok() && secured.ok()) << secured.status().to_string();
  EXPECT_FALSE(secured->security.crypto_core.empty());
  EXPECT_GT(secured->estimate.latency_us, plain->estimate.latency_us);
  EXPECT_GT(secured->estimate.resources.luts, plain->estimate.resources.luts);
}

TEST(Synthesis, RejectsOversizedDesign) {
  ir::Module m = make_vecadd(1 << 20);  // 8 MiB per array on-chip
  FpgaDevice tiny = FpgaDevice::edge_zu7ev();
  auto design = synthesize(*m.find("vecadd"), HlsConfig{}, tiny);
  EXPECT_EQ(design.status().code(), StatusCode::kResourceExhausted);
}

TEST(Synthesis, RejectsFunctionWithoutLoops) {
  ir::register_everest_dialects();
  ir::Module m("none");
  ir::Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  b.ret();
  auto design = synthesize(*fn, HlsConfig{}, FpgaDevice::p9_vu9p());
  EXPECT_EQ(design.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Synthesis, BadUnrollRejected) {
  ir::Module m = make_vecadd(16);
  HlsConfig config;
  config.unroll = 0;
  auto design = synthesize(*m.find("vecadd"), config, FpgaDevice::p9_vu9p());
  EXPECT_EQ(design.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------- Crypto cores --

TEST(CryptoCores, SelectsSmallestSufficientCore) {
  auto small = select_crypto_core("aes128-gcm", 100.0, 250.0);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->name, "aes128-gcm-x1");
  auto big = select_crypto_core("aes128-gcm", 1200.0, 250.0);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->name, "aes128-gcm-x4");
  auto none = select_crypto_core("aes128-gcm", 1e9, 250.0);
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
  auto sha = select_crypto_core("sha256", 100.0, 250.0);
  ASSERT_TRUE(sha.ok());
  EXPECT_EQ(sha->algo, "sha256");
}

TEST(CryptoCores, ThroughputScalesWithClock) {
  const CryptoCore& core = crypto_core_catalog()[0];
  EXPECT_DOUBLE_EQ(core.throughput_mbps(200.0) * 2, core.throughput_mbps(400.0));
}

// ------------------------------------------------- Parameterized sweeps ---

/// Property: for unit-stride kernels, the partitioner always achieves II=1
/// with banks*ports >= accesses-per-group, and planned banks never exceed
/// the unroll factor (rounded to a power of two).
class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, PlannerAchievesIiOne) {
  const int unroll = GetParam();
  ir::Module m = make_vecadd(256);
  auto nests = extract_loop_nests(*m.find("vecadd"));
  const KernelLoopNest& nest = (*nests)[0];
  BankingPlan plan = plan_partitioning(nest, unroll, /*max_banks=*/64);
  for (const auto& [array, banking] : plan.arrays) {
    const ConflictReport report =
        analyze_conflicts(nest, array, banking, unroll);
    EXPECT_EQ(report.required_ii, 1)
        << "array " << array << " unroll " << unroll << " banks "
        << banking.banks;
  }
}

INSTANTIATE_TEST_SUITE_P(Unrolls, PartitionSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

/// Property: increasing unroll never increases total cycle count.
class UnrollMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(UnrollMonotonic, CyclesNonIncreasing) {
  ir::Module m = make_vecadd(2048);
  HlsConfig lo, hi;
  lo.unroll = GetParam();
  hi.unroll = GetParam() * 2;
  auto dlo = synthesize(*m.find("vecadd"), lo, FpgaDevice::p9_vu9p());
  auto dhi = synthesize(*m.find("vecadd"), hi, FpgaDevice::p9_vu9p());
  ASSERT_TRUE(dlo.ok() && dhi.ok());
  EXPECT_LE(dhi->estimate.total_cycles, dlo->estimate.total_cycles);
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollMonotonic,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace everest::hls
