// Printer/parser round-trip tests: print(parse(print(m))) == print(m),
// plus targeted grammar cases and property-style sweeps over random modules.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ir/builder.hpp"
#include "ir/dialect.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace everest::ir {
namespace {

void expect_roundtrip(const Module& m) {
  const std::string text = print(m);
  auto parsed = parse_module(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string() << "\n" << text;
  EXPECT_TRUE(verify(**parsed).ok()) << verify(**parsed).to_string();
  const std::string text2 = print(**parsed);
  EXPECT_EQ(text, text2);
}

TEST(RoundTrip, SimpleFunction) {
  register_everest_dialects();
  Module m("app");
  Type t = Type::tensor({4}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({t}, {t})).value();
  OpBuilder b(&fn->entry());
  Value v = b.create_value("tensor.add", {fn->arg(0), fn->arg(0)}, t);
  b.ret({v});
  expect_roundtrip(m);
}

TEST(RoundTrip, AttributesOfAllKinds) {
  register_everest_dialects();
  Module m("app");
  Function* fn = m.add_function("f", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  b.create("builtin.call", {}, {},
           {{"callee", Attribute::string("target")},
            {"flag", Attribute::unit()},
            {"enabled", Attribute::boolean(true)},
            {"count", Attribute::integer(-12)},
            {"scale", Attribute::real(2.5)},
            {"shape", Attribute::int_array({1, 2, 3})},
            {"weights", Attribute::dense_f64({0.5, -1.25, 3.0})},
            {"ty", Attribute::type(Type::tensor({2, 2}, ScalarKind::kF32))}});
  b.ret();
  expect_roundtrip(m);
}

TEST(RoundTrip, NestedLoops) {
  register_everest_dialects();
  Module m("app");
  Type mem = Type::memref({8, 8}, ScalarKind::kF64, MemorySpace::kOnChip);
  Function* fn = m.add_function("k", Type::function({mem}, {})).value();
  OpBuilder b(&fn->entry());
  Operation& outer = b.create("kernel.for", {}, {},
                              {{"lb", Attribute::integer(0)},
                               {"ub", Attribute::integer(8)},
                               {"step", Attribute::integer(1)}});
  Block& obody = outer.emplace_region().emplace_block({Type::index()});
  OpBuilder ob(&obody);
  Operation& inner = ob.create("kernel.for", {}, {},
                               {{"lb", Attribute::integer(0)},
                                {"ub", Attribute::integer(8)},
                                {"step", Attribute::integer(2)}});
  Block& ibody = inner.emplace_region().emplace_block({Type::index()});
  OpBuilder ib(&ibody);
  Value x = ib.create_value("kernel.load",
                            {fn->arg(0), obody.arg(0), ibody.arg(0)},
                            Type::f64());
  Value y = ib.create_value("kernel.binop", {x, x}, Type::f64(),
                            {{"op", Attribute::string("mul")}});
  ib.create("kernel.store", {y, fn->arg(0), obody.arg(0), ibody.arg(0)}, {});
  ib.create("kernel.yield", {}, {});
  ob.create("kernel.yield", {}, {});
  b.ret();
  ASSERT_TRUE(verify(m).ok()) << verify(m).to_string();
  expect_roundtrip(m);
}

TEST(RoundTrip, ModuleAndFunctionAttributes) {
  register_everest_dialects();
  Module m("weather_app");
  m.attributes()["version"] = Attribute::integer(2);
  Function* fn = m.add_function("f", Type::function({}, {})).value();
  fn->set_attr("target", Attribute::string("fpga"));
  fn->set_attr("confidential", Attribute::boolean(true));
  OpBuilder b(&fn->entry());
  b.ret();
  expect_roundtrip(m);
}

TEST(RoundTrip, MultipleFunctionsAndCalls) {
  register_everest_dialects();
  Module m("app");
  Type t = Type::tensor({16}, ScalarKind::kF32);
  Function* g = m.add_function("g", Type::function({t}, {t})).value();
  {
    OpBuilder b(&g->entry());
    Value v = b.create_value("tensor.map", {g->arg(0)}, t,
                             {{"fn", Attribute::string("relu")}});
    b.ret({v});
  }
  Function* f = m.add_function("f", Type::function({t}, {t})).value();
  {
    OpBuilder b(&f->entry());
    Operation& call = b.call("g", {f->arg(0)}, {t});
    b.ret({call.result(0)});
  }
  expect_roundtrip(m);
}

TEST(RoundTrip, StreamTypesAndWorkflowOps) {
  register_everest_dialects();
  Module m("pipeline");
  Type s = Type::stream(ScalarKind::kF32);
  Type t = Type::tensor({128}, ScalarKind::kF32);
  Function* fn = m.add_function("wf", Type::function({}, {})).value();
  OpBuilder b(&fn->entry());
  Value src = b.create_value("workflow.source", {}, s,
                             {{"name", Attribute::string("sensor")},
                              {"rate_hz", Attribute::real(100.0)}});
  Value win = b.create_value("hw.stream_read", {src}, t);
  Value out = b.create_value(
      "workflow.task", {win}, t,
      {{"kernel", Attribute::string("denoise")},
       {"volume_mb", Attribute::real(0.5)},
       {"confidential", Attribute::boolean(true)}});
  b.create("workflow.sink", {out}, {}, {{"name", Attribute::string("db")}});
  b.ret();
  ASSERT_TRUE(verify(m).ok()) << verify(m).to_string();
  expect_roundtrip(m);
}

TEST(Parser, RejectsUnknownValue) {
  auto r = parse_module(
      "module @m {\n"
      "  func @f() -> () {\n"
      "    builtin.return(%9) : (f64) -> ()\n"
      "  }\n"
      "}\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown value"), std::string::npos);
}

TEST(Parser, RejectsTypeCountMismatch) {
  auto r = parse_module(
      "module @m {\n"
      "  func @f(%arg0: f64) -> () {\n"
      "    builtin.return(%arg0) : () -> ()\n"
      "  }\n"
      "}\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, ParsesStandaloneTypes) {
  auto t1 = parse_type("tensor<4x8xf64>");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->to_string(), "tensor<4x8xf64>");
  auto t2 = parse_type("memref<16xf32, device>");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->memory_space(), MemorySpace::kDevice);
  auto t3 = parse_type("stream<i32>");
  ASSERT_TRUE(t3.ok());
  EXPECT_TRUE(t3->is_stream());
  EXPECT_FALSE(parse_type("tensor<4x").ok());
  EXPECT_FALSE(parse_type("blob<4>").ok());
}

TEST(Parser, ToleratesComments) {
  auto r = parse_module(
      "// EVEREST IR dump\n"
      "module @m {\n"
      "  func @f() -> () {\n"
      "    // no-op body\n"
      "    builtin.return() : () -> ()\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
}

// Property-style sweep: random DAGs of elementwise tensor ops round-trip.
class RandomDagRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagRoundTrip, PrintParsePrintIsStable) {
  register_everest_dialects();
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Module m("rand");
  Type t = Type::tensor({8}, ScalarKind::kF64);
  Function* fn = m.add_function("f", Type::function({t, t}, {t})).value();
  OpBuilder b(&fn->entry());
  std::vector<Value> pool = {fn->arg(0), fn->arg(1)};
  const int n_ops = 3 + static_cast<int>(rng.uniform_int(12));
  static const char* kOps[] = {"tensor.add", "tensor.sub", "tensor.mul"};
  for (int i = 0; i < n_ops; ++i) {
    Value a = pool[rng.uniform_int(pool.size())];
    Value c = pool[rng.uniform_int(pool.size())];
    pool.push_back(
        b.create_value(kOps[rng.uniform_int(3)], {a, c}, t,
                       {{"id", Attribute::integer(i)}}));
  }
  b.ret({pool.back()});
  ASSERT_TRUE(verify(m).ok()) << verify(m).to_string();
  const std::string text = print(m);
  auto parsed = parse_module(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(print(**parsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagRoundTrip, ::testing::Range(0, 20));

}  // namespace
}  // namespace everest::ir
