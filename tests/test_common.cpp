// Unit tests for the common substrate: status, rng, stats, graph, json,
// strings, table, logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/graph.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace everest {
namespace {

// ---------------------------------------------------------------- Status --

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad tile size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tile size");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad tile size");
}

TEST(Status, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(PermissionDenied("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Aborted("x").code(), StatusCode::kAborted);
}

TEST(Status, ResilienceCodesStringify) {
  EXPECT_EQ(Unavailable("no variant left").to_string(),
            "UNAVAILABLE: no variant left");
  EXPECT_EQ(Aborted("lost the race").to_string(), "ABORTED: lost the race");
}

TEST(Status, IsRetryableClassifiesTransientCodes) {
  // Transient conditions: a later attempt may succeed.
  EXPECT_TRUE(is_retryable(StatusCode::kUnavailable));
  EXPECT_TRUE(is_retryable(StatusCode::kAborted));
  EXPECT_TRUE(is_retryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(is_retryable(StatusCode::kDeadlineExceeded));
  // Deterministic failures: retrying cannot help.
  EXPECT_FALSE(is_retryable(StatusCode::kOk));
  EXPECT_FALSE(is_retryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(is_retryable(StatusCode::kNotFound));
  EXPECT_FALSE(is_retryable(StatusCode::kInternal));
  EXPECT_FALSE(is_retryable(StatusCode::kDataLoss));
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

Status use_half(int x, int* out) {
  EVEREST_ASSIGN_OR_RETURN(*out, half(x));
  return OkStatus();
}

TEST(Result, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(use_half(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(use_half(7, &out).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  OnlineStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.03);
  EXPECT_NEAR(st.stddev(), 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  OnlineStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.exponential(4.0));
  EXPECT_NEAR(st.mean(), 0.25, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    const std::size_t k = rng.weighted_index(w);
    ASSERT_LT(k, 3u);
    counts[k]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  Rng rng(1);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(w), 2u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(child.next(), a.next());
}

// ----------------------------------------------------------------- Stats --

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 4.571428571, 1e-6);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  OnlineStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(10, 2);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Ewma, TracksShiftedMean) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(5.0);
  EXPECT_NEAR(e.mean(), 5.0, 1e-9);
  for (int i = 0; i < 200; ++i) e.add(9.0);
  EXPECT_NEAR(e.mean(), 9.0, 0.01);
}

TEST(Ewma, ZscoreFlagsOutlier) {
  Ewma e(0.1);
  Rng rng(21);
  for (int i = 0; i < 500; ++i) e.add(rng.normal(10.0, 1.0));
  EXPECT_GT(e.zscore(20.0), 5.0);
  EXPECT_LT(std::abs(e.zscore(10.0)), 1.5);
}

TEST(OnlineStats, MergeWithEmptySideIsIdentity) {
  OnlineStats filled;
  for (double v : {2.0, 4.0, 9.0}) filled.add(v);

  // Empty right-hand side: the accumulator is unchanged.
  OnlineStats a = filled;
  a.merge(OnlineStats{});
  EXPECT_EQ(a.count(), filled.count());
  EXPECT_DOUBLE_EQ(a.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(a.variance(), filled.variance());
  EXPECT_DOUBLE_EQ(a.min(), filled.min());
  EXPECT_DOUBLE_EQ(a.max(), filled.max());

  // Empty left-hand side: adopts the other side wholesale, including
  // min/max (an empty accumulator's min_=0 must not leak in).
  OnlineStats b;
  b.merge(filled);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 9.0);

  // Empty-with-empty stays empty.
  OnlineStats c;
  c.merge(OnlineStats{});
  EXPECT_EQ(c.count(), 0u);
}

TEST(Ewma, ZscoreDegenerateStreamSaturatesAtCap) {
  Ewma e(0.1);
  EXPECT_DOUBLE_EQ(e.zscore(123.0), 0.0);  // not warm yet
  for (int i = 0; i < 100; ++i) e.add(5.0);  // zero-variance stream
  EXPECT_DOUBLE_EQ(e.zscore(5.0), 0.0);
  EXPECT_DOUBLE_EQ(e.zscore(6.0), Ewma::kZscoreCap);
  EXPECT_DOUBLE_EQ(e.zscore(4.0), -Ewma::kZscoreCap);
  // The cap is finite, so score arithmetic stays well-defined.
  EXPECT_TRUE(std::isfinite(e.zscore(1e300) * 2.0 - 1.0));
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, EdgeCases) {
  // Empty input: every percentile is 0, including the boundaries.
  EXPECT_DOUBLE_EQ(percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100), 0.0);
  // Single element: every percentile is that element.
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 50), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 99.9), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 100), 7.5);
  // Out-of-range p clamps to the extremes instead of indexing wild.
  std::vector<double> v = {3, 1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 250), 3.0);
}

TEST(Stats, RmseAndPearson) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c = {4, 3, 2, 1};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(rmse(a, c), std::sqrt((9.0 + 1 + 1 + 9) / 4));
}

// ----------------------------------------------------------------- Graph --

TEST(Digraph, TopologicalOrderOnDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < 4; ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.critical_path_length(), 2u);
}

TEST(Digraph, DetectsCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.has_cycle());
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(Digraph, DegreesTracked) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.num_edges(), 2u);
}

// The prefetcher's lookahead is built on these two helpers — the shapes
// below (diamond, disconnected components, single node) are the cases a
// frontier walk gets wrong first.

TEST(Digraph, FrontierOnDiamond) {
  Digraph g(4);  // 0 → {1, 2} → 3
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(g.frontier({0, 0, 0, 0}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(g.frontier({1, 0, 0, 0}), (std::vector<std::size_t>{1, 2}));
  // The join is not ready until BOTH branches are done.
  EXPECT_EQ(g.frontier({1, 1, 0, 0}), (std::vector<std::size_t>{2}));
  EXPECT_EQ(g.frontier({1, 1, 1, 0}), (std::vector<std::size_t>{3}));
  EXPECT_TRUE(g.frontier({1, 1, 1, 1}).empty());
}

TEST(Digraph, FrontierOnDisconnectedComponents) {
  Digraph g(4);  // 0 → 1 and 2 → 3, unrelated
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(g.frontier({0, 0, 0, 0}), (std::vector<std::size_t>{0, 2}));
  // Progress in one component never unblocks the other.
  EXPECT_EQ(g.frontier({1, 0, 0, 0}), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(g.frontier({1, 1, 0, 0}), (std::vector<std::size_t>{2}));
}

TEST(Digraph, FrontierOnSingleNode) {
  Digraph g(1);
  EXPECT_EQ(g.frontier({0}), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(g.frontier({1}).empty());
}

TEST(Digraph, FrontierWithinWalksWaves) {
  Digraph g(4);  // diamond again
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const std::vector<char> none = {0, 0, 0, 0};
  EXPECT_TRUE(g.frontier_within(none, 0).empty());  // depth 0 disables
  EXPECT_EQ(g.frontier_within(none, 1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(g.frontier_within(none, 2), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(g.frontier_within(none, 3),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  // Depth beyond the graph saturates rather than looping.
  EXPECT_EQ(g.frontier_within(none, 100),
            (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(WeightedDigraph, DijkstraFindsShortestPath) {
  WeightedDigraph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 1.0);
  auto sp = g.dijkstra(0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(sp.dist[3], 3.0);
  EXPECT_TRUE(std::isinf(sp.dist[4]));
  auto path = WeightedDigraph::extract_path(sp, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[3], 3u);
  EXPECT_TRUE(WeightedDigraph::extract_path(sp, 0, 4).empty());
}

// ------------------------------------------------------------------ JSON --

TEST(Json, RoundTripObject) {
  json::Object obj;
  obj["name"] = "variant-3";
  obj["latency_us"] = 12.5;
  obj["threads"] = 8;
  obj["hw"] = true;
  obj["tags"] = json::Array{"fpga", "tiled"};
  const std::string text = json::Value(obj).dump();
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->at("name").as_string(), "variant-3");
  EXPECT_DOUBLE_EQ(parsed->at("latency_us").as_number(), 12.5);
  EXPECT_EQ(parsed->at("threads").as_int(), 8);
  EXPECT_TRUE(parsed->at("hw").as_bool());
  EXPECT_EQ(parsed->at("tags").as_array().size(), 2u);
}

TEST(Json, ParsesNestedAndEscapes) {
  auto v = json::parse(R"({"a": [1, 2.5, null, "x\"y\n"], "b": {"c": false}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->at("a").as_array().size(), 4u);
  EXPECT_TRUE(v->at("a").as_array()[2].is_null());
  EXPECT_EQ(v->at("a").as_array()[3].as_string(), "x\"y\n");
  EXPECT_FALSE(v->at("b").at("c").as_bool());
  EXPECT_TRUE(v->at("missing").is_null());
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1,]").ok());
  EXPECT_FALSE(json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(json::parse("12 34").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
}

TEST(Json, PrettyPrintStable) {
  json::Object obj;
  obj["k"] = json::Array{1, 2};
  const std::string pretty = json::Value(obj).dump(2);
  EXPECT_NE(pretty.find("\n"), std::string::npos);
  auto round = json::parse(pretty);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->at("k").as_array().size(), 2u);
}

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  auto v = json::parse(R"("é")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xc3\xa9");
}

// --------------------------------------------------------------- Strings --

TEST(Strings, SplitJoinTrim) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "-"), "a-b--c");
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("tensor.add", "tensor."));
  EXPECT_FALSE(starts_with("tensor", "tensor."));
  EXPECT_TRUE(ends_with("kernel.for", ".for"));
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(strprintf("%.2f", 1.239), "1.24");
}

// ----------------------------------------------------------------- Table --

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string text = t.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, FormatsDoubles) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

// --------------------------------------------------------------- Logging --

TEST(Logger, LinePrefixCarriesTimestampAndThreadId) {
  std::vector<std::string> lines;
  Logger::instance().set_sink(
      [&lines](std::string_view line) { lines.emplace_back(line); });
  Logger::instance().set_level(LogLevel::kInfo);
  EVEREST_LOG(kInfo, "unit") << "hello " << 42;
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(LogLevel::kWarn);

  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  // [<monotonic us>us][t<id>][INFO][unit] hello 42\n
  EXPECT_EQ(line.front(), '[');
  EXPECT_NE(line.find("us][t"), std::string::npos);
  EXPECT_NE(line.find("[INFO][unit] hello 42\n"), std::string::npos);
  // Timestamps are monotonic across consecutive calls.
  const std::int64_t t0 = Logger::monotonic_us();
  const std::int64_t t1 = Logger::monotonic_us();
  EXPECT_GE(t1, t0);
  EXPECT_GE(t0, 0);
}

TEST(Logger, NoInterleavingUnderConcurrentWriters) {
  constexpr int kWriters = 8;
  constexpr int kLinesPerWriter = 200;

  std::mutex mu;
  std::vector<std::string> lines;
  Logger::instance().set_sink([&](std::string_view line) {
    // The sink itself is called under the logger mutex, but collect under
    // our own lock so the test does not rely on that detail.
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });
  Logger::instance().set_level(LogLevel::kInfo);

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < kLinesPerWriter; ++i) {
        EVEREST_LOG(kInfo, "interleave")
            << "writer=" << w << " seq=" << i << " end";
      }
    });
  }
  for (auto& t : writers) t.join();
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(LogLevel::kWarn);

  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kWriters) * kLinesPerWriter);
  // Every emitted line must be intact: exactly one complete message per
  // sink call, never a torn or concatenated fragment.
  std::vector<std::set<int>> seen(kWriters);
  for (const std::string& line : lines) {
    EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
    EXPECT_EQ(line.back(), '\n');
    const auto wpos = line.find("writer=");
    const auto spos = line.find(" seq=");
    const auto epos = line.find(" end\n");
    ASSERT_NE(wpos, std::string::npos) << line;
    ASSERT_NE(spos, std::string::npos) << line;
    ASSERT_NE(epos, std::string::npos) << line;
    const int w = std::stoi(line.substr(wpos + 7, spos - (wpos + 7)));
    const int s = std::stoi(line.substr(spos + 5, epos - (spos + 5)));
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kWriters);
    EXPECT_TRUE(seen[w].insert(s).second) << "duplicate line: " << line;
  }
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(seen[w].size(), static_cast<std::size_t>(kLinesPerWriter));
  }
}

}  // namespace
}  // namespace everest
