// Unit tests for src/obs: instruments (concurrent exactness, snapshot
// merging), the registry, the tracer's ring buffers, and the Chrome
// trace exporter with its structural span checks. The concurrent cases
// are the ones tools/check.sh re-runs under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/obs.hpp"

namespace everest::obs {
namespace {

// ----------------------------------------------------------- Instruments --

TEST(Counter, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.inc(5);
  EXPECT_EQ(c.value(), kThreads * kPerThread + 5);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, ConcurrentAddIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), double(kThreads) * kPerThread);
}

TEST(Gauge, SetMaxKeepsRunningMaximum) {
  Gauge g;
  g.set_max(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  // Concurrent racers: the final value is the global max.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 10000; ++i) g.set_max(double(t * 10000 + i));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 79999.0);
}

TEST(Histogram, ConcurrentRecordingKeepsExactTotals) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.record(rng.uniform() * 1000.0 + 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  const std::uint64_t expected = std::uint64_t(kThreads) * kPerThread;
  EXPECT_EQ(snap.count, expected);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t n : snap.counts) bucket_total += n;
  EXPECT_EQ(bucket_total, expected);
  EXPECT_GE(snap.min_seen, 1.0);
  EXPECT_LE(snap.max_seen, 1001.0);
  EXPECT_NEAR(snap.mean(), 501.0, 5.0);
}

TEST(Histogram, PercentileTracksExactOrderStatisticWithinBucketWidth) {
  Histogram h;
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(1.0 / 200.0) + 1.0;  // mean ~201 µs
    values.push_back(v);
    h.record(v);
  }
  const HistogramSnapshot snap = h.snapshot();
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = percentile(values, p);
    const double approx = snap.percentile(p);
    EXPECT_NEAR(approx, exact, snap.bucket_width_at(p))
        << "p" << p << ": approx " << approx << " exact " << exact;
  }
  // Extremes clamp to the watermarks, never past them.
  EXPECT_DOUBLE_EQ(snap.percentile(0.0), snap.min_seen);
  EXPECT_DOUBLE_EQ(snap.percentile(100.0), snap.max_seen);
}

TEST(Histogram, EmptyAndSingletonSnapshots) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 0.0);
  h.record(17.0);
  const HistogramSnapshot one = h.snapshot();
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.percentile(0), 17.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 17.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 17.0);
  EXPECT_DOUBLE_EQ(one.min_seen, 17.0);
  EXPECT_DOUBLE_EQ(one.max_seen, 17.0);
}

TEST(Histogram, OverflowBucketClampsToMaxSeen) {
  HistogramOptions opt;
  opt.min = 1.0;
  opt.growth = 2.0;
  opt.buckets = 4;  // boundaries 1, 2, 4, 8 + overflow
  Histogram h(opt);
  h.record(100.0);
  h.record(200.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts.back(), 2u);
  EXPECT_LE(snap.percentile(99), 200.0);
  EXPECT_GE(snap.percentile(99), 100.0);
}

HistogramSnapshot merged(HistogramSnapshot a, const HistogramSnapshot& b) {
  EXPECT_TRUE(a.merge(b));
  return a;
}

TEST(HistogramSnapshot, MergeIsAssociativeAndMatchesCombinedStream) {
  Histogram ha, hb, hc, hall;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.uniform() * 500.0 + 0.5;
    (i % 3 == 0 ? ha : i % 3 == 1 ? hb : hc).record(v);
    hall.record(v);
  }
  const HistogramSnapshot a = ha.snapshot();
  const HistogramSnapshot b = hb.snapshot();
  const HistogramSnapshot c = hc.snapshot();

  const HistogramSnapshot left = merged(merged(a, b), c);    // (a+b)+c
  const HistogramSnapshot right = merged(a, merged(b, c));   // a+(b+c)
  const HistogramSnapshot all = hall.snapshot();

  for (const HistogramSnapshot* m : {&left, &right}) {
    EXPECT_EQ(m->count, all.count);
    EXPECT_NEAR(m->sum, all.sum, 1e-6);
    EXPECT_DOUBLE_EQ(m->min_seen, all.min_seen);
    EXPECT_DOUBLE_EQ(m->max_seen, all.max_seen);
    ASSERT_EQ(m->counts.size(), all.counts.size());
    for (std::size_t i = 0; i < all.counts.size(); ++i) {
      EXPECT_EQ(m->counts[i], all.counts[i]) << "bucket " << i;
    }
  }
  EXPECT_DOUBLE_EQ(left.percentile(99), right.percentile(99));
}

TEST(HistogramSnapshot, MergeWithEmptySideKeepsWatermarks) {
  Histogram h;
  h.record(5.0);
  h.record(50.0);
  HistogramSnapshot filled = h.snapshot();
  const HistogramSnapshot empty = Histogram{}.snapshot();

  HistogramSnapshot a = filled;
  EXPECT_TRUE(a.merge(empty));
  EXPECT_DOUBLE_EQ(a.min_seen, 5.0);
  EXPECT_DOUBLE_EQ(a.max_seen, 50.0);

  HistogramSnapshot b = empty;
  EXPECT_TRUE(b.merge(filled));
  EXPECT_EQ(b.count, 2u);
  // The empty side's min_seen=0 must not poison the merged minimum.
  EXPECT_DOUBLE_EQ(b.min_seen, 5.0);
  EXPECT_DOUBLE_EQ(b.max_seen, 50.0);
}

TEST(HistogramSnapshot, MergeRejectsLayoutMismatch) {
  HistogramOptions narrow;
  narrow.buckets = 8;
  Histogram ha, hb(narrow);
  ha.record(3.0);
  hb.record(3.0);
  HistogramSnapshot a = ha.snapshot();
  const std::uint64_t count_before = a.count;
  EXPECT_FALSE(a.merge(hb.snapshot()));
  EXPECT_EQ(a.count, count_before);  // untouched on failure
}

// --------------------------------------------------------------- Registry --

TEST(Registry, FindOrCreateReturnsStablePointers) {
  Registry reg;
  Counter* c1 = reg.counter("serve.admitted");
  Counter* c2 = reg.counter("serve.admitted");
  EXPECT_EQ(c1, c2);
  // Label order must not matter.
  Counter* l1 = reg.counter("hits", {{"node", "0"}, {"tier", "hot"}});
  Counter* l2 = reg.counter("hits", {{"tier", "hot"}, {"node", "0"}});
  EXPECT_EQ(l1, l2);
  // Distinct label values are distinct instruments.
  Counter* other = reg.counter("hits", {{"node", "1"}, {"tier", "hot"}});
  EXPECT_NE(l1, other);
  // Same name in a different instrument family is a separate namespace.
  EXPECT_NE(static_cast<void*>(reg.gauge("serve.admitted")),
            static_cast<void*>(c1));
}

TEST(Registry, KeyOfSortsLabels) {
  EXPECT_EQ(Registry::key_of("lat", {}), "lat");
  EXPECT_EQ(Registry::key_of("lat", {{"b", "2"}, {"a", "1"}}),
            "lat{a=1,b=2}");
}

TEST(Registry, HistogramFirstRegistrationOptionsWin) {
  Registry reg;
  HistogramOptions coarse;
  coarse.buckets = 8;
  Histogram* h1 = reg.histogram("lat", coarse);
  HistogramOptions fine;
  fine.buckets = 128;
  Histogram* h2 = reg.histogram("lat", fine);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->options().buckets, 8u);
}

TEST(Registry, JsonDumpIsParseableAndComplete) {
  Registry reg;
  reg.counter("requests", {{"class", "lc"}})->inc(3);
  reg.gauge("queue_depth")->set(7.0);
  Histogram* h = reg.histogram("latency_us");
  for (int i = 1; i <= 100; ++i) h->record(double(i));

  const std::string text = reg.to_json().dump(2);
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(
      parsed->at("counters").at("requests{class=lc}").as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed->at("gauges").at("queue_depth").as_number(), 7.0);
  const json::Value& lat = parsed->at("histograms").at("latency_us");
  EXPECT_EQ(lat.at("count").as_int(), 100);
  EXPECT_GT(lat.at("p99").as_number(), lat.at("p50").as_number());
  EXPECT_DOUBLE_EQ(lat.at("max").as_number(), 100.0);

  // The flat text dump carries the same keys.
  const std::string flat = reg.to_text();
  EXPECT_NE(flat.find("requests{class=lc} 3"), std::string::npos);
  EXPECT_NE(flat.find("latency_us_count 100"), std::string::npos);
}

TEST(Registry, ResetZeroesInstrumentsInPlace) {
  Registry reg;
  Counter* c = reg.counter("n");
  Histogram* h = reg.histogram("lat");
  c->inc(9);
  h->record(4.0);
  reg.reset();
  EXPECT_EQ(c->value(), 0u);       // same pointer, zeroed
  EXPECT_EQ(h->snapshot().count, 0u);
}

// ----------------------------------------------------------------- Tracer --

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;  // default config: disabled
  EXPECT_FALSE(tracer.enabled());
  {
    Tracer::ScopedSpan s = tracer.scoped("noop", "test");
    EXPECT_FALSE(s.active());
    s.annotate("k", "v");  // harmless on an inert span
  }
  tracer.instant(TimeDomain::kWall, 1, 0.0, 0, "nope", "test");
  tracer.span(TimeDomain::kWall, 1, 2, 0, 0.0, 1.0, 0, "nope", "test");
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ScopedSpanRecordsWallSpanWithAnnotations) {
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  const std::uint64_t trace = tracer.next_id();
  std::uint64_t parent_id = 0;
  {
    Tracer::ScopedSpan root = tracer.scoped("request", "serve", trace);
    parent_id = root.span_id();
    Tracer::ScopedSpan child =
        tracer.scoped("execute", "serve", trace, root.span_id());
    child.annotate("variant", "fpga-v2");
  }
  const std::vector<TraceEvent> events = tracer.collect();
  ASSERT_EQ(events.size(), 2u);  // child finishes first
  EXPECT_EQ(events[0].name, "execute");
  EXPECT_EQ(events[0].parent_id, parent_id);
  EXPECT_EQ(events[0].trace_id, trace);
  ASSERT_EQ(events[0].annotations.size(), 1u);
  EXPECT_EQ(events[0].annotations[0].second, "fpga-v2");
  EXPECT_EQ(events[1].name, "request");
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_GE(events[1].end_us, events[1].start_us);
  EXPECT_GE(events[1].end_us, events[0].end_us);
}

TEST(Tracer, SimDomainSpanKeepsExplicitTimestamps) {
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  tracer.span(TimeDomain::kSim, 9, 10, 0, 1500.0, 2500.0, 3, "task", "workflow");
  const std::vector<TraceEvent> events = tracer.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, TimeDomain::kSim);
  EXPECT_DOUBLE_EQ(events[0].start_us, 1500.0);
  EXPECT_DOUBLE_EQ(events[0].duration_us(), 1000.0);
  EXPECT_EQ(events[0].track, 3u);
}

TEST(Tracer, RingOverflowDropsAndCounts) {
  TracerConfig config;
  config.enabled = true;
  config.ring_capacity = 8;
  Tracer tracer(config);
  for (int i = 0; i < 20; ++i) {
    tracer.instant(TimeDomain::kWall, 1, double(i), 0, "tick", "test");
  }
  EXPECT_EQ(tracer.collect().size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  tracer.clear();
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  // Post-clear recording reuses the same ring.
  tracer.instant(TimeDomain::kWall, 1, 0.0, 0, "tick", "test");
  EXPECT_EQ(tracer.collect().size(), 1u);
}

TEST(Tracer, ConcurrentThreadsGetDistinctLanes) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 500;
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        Tracer::ScopedSpan s = tracer.scoped("op", "test");
        (void)s;
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<TraceEvent> events = tracer.collect();
  EXPECT_EQ(events.size(), std::size_t(kThreads) * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  std::set<std::uint32_t> lanes;
  std::set<std::uint64_t> span_ids;
  for (const TraceEvent& ev : events) {
    lanes.insert(ev.track);
    EXPECT_TRUE(span_ids.insert(ev.span_id).second) << "duplicate span id";
  }
  EXPECT_EQ(lanes.size(), std::size_t(kThreads));  // kAutoTrack -> own lane
}

TEST(Tracer, NextIdNeverReturnsZero) {
  Tracer tracer;
  for (int i = 0; i < 100; ++i) EXPECT_NE(tracer.next_id(), 0u);
}

// ----------------------------------------------------- Chrome trace export --

std::vector<TraceEvent> sample_events() {
  std::vector<TraceEvent> events;
  TraceEvent root;
  root.trace_id = 1;
  root.span_id = 10;
  root.start_us = 0.0;
  root.end_us = 100.0;
  root.track = 0;
  root.name = "request";
  root.component = "serve";
  root.annotations = {{"sla", "lc"}};
  events.push_back(root);
  TraceEvent child = root;
  child.span_id = 11;
  child.parent_id = 10;
  child.start_us = 10.0;
  child.end_us = 60.0;
  child.name = "execute";
  events.push_back(child);
  TraceEvent fault;
  fault.kind = TraceEvent::Kind::kInstant;
  fault.trace_id = 1;
  fault.span_id = 0;
  fault.start_us = 30.0;
  fault.track = 1;
  fault.name = "fault-injected";
  fault.component = "resilience";
  events.push_back(fault);
  return events;
}

TEST(ChromeTrace, ExportsParseableDocument) {
  const std::string text = chrome_trace(sample_events(), 2);
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->at("displayTimeUnit").as_string(), "ms");
  const json::Array& tev = parsed->at("traceEvents").as_array();
  // 2 spans + 1 instant + process_name metadata for serve + resilience.
  std::size_t complete = 0, instant = 0, metadata = 0;
  for (const json::Value& e : tev) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    } else if (ph == "i") {
      ++instant;
      EXPECT_EQ(e.at("s").as_string(), "t");
    } else if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").as_string(), "process_name");
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instant, 1u);
  EXPECT_EQ(metadata, 2u);
}

TEST(ChromeTrace, SpanArgsCarryIdsAndAnnotations) {
  auto doc = chrome_trace_json(sample_events());
  bool found_root = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X" &&
        e.at("name").as_string() == "request") {
      found_root = true;
      EXPECT_EQ(e.at("args").at("sla").as_string(), "lc");
      EXPECT_EQ(e.at("args").at("span_id").as_int(), 10);
    }
  }
  EXPECT_TRUE(found_root);
}

TEST(SpanChecks, AcceptWellFormedForest) {
  const std::vector<TraceEvent> events = sample_events();
  EXPECT_TRUE(spans_acyclic(events));
  EXPECT_TRUE(span_chains_complete(events));
}

TEST(SpanChecks, RejectCycleDanglingParentAndDuplicateId) {
  // Two spans pointing at each other: a cycle.
  std::vector<TraceEvent> cycle = sample_events();
  cycle[0].parent_id = 11;  // root now claims its child as parent
  EXPECT_FALSE(spans_acyclic(cycle));

  // A parent id that resolves to no span in the batch.
  std::vector<TraceEvent> dangling = sample_events();
  dangling[1].parent_id = 999;
  EXPECT_FALSE(spans_acyclic(dangling));
  EXPECT_FALSE(span_chains_complete(dangling));

  // Two spans sharing one id make parentage ambiguous.
  std::vector<TraceEvent> dup = sample_events();
  dup[1].span_id = 10;
  EXPECT_FALSE(spans_acyclic(dup));

  // A span with id 0 is malformed.
  std::vector<TraceEvent> zero = sample_events();
  zero[1].span_id = 0;
  EXPECT_FALSE(spans_acyclic(zero));
}

TEST(SpanChecks, ChainCompletenessIsPerTrace) {
  // The child lives in a different trace than its parent: the chain
  // never reaches a root within its own trace.
  std::vector<TraceEvent> cross = sample_events();
  cross[1].trace_id = 2;
  EXPECT_TRUE(spans_acyclic(cross));  // structurally still a forest
  EXPECT_FALSE(span_chains_complete(cross));
}

TEST(SpanChecks, RootReachableFractionCountsOrphans) {
  std::vector<TraceEvent> events = sample_events();  // 2 spans, 1 root
  EXPECT_DOUBLE_EQ(root_reachable_fraction(events), 1.0);
  events[1].parent_id = 999;  // orphan the child
  EXPECT_DOUBLE_EQ(root_reachable_fraction(events), 0.5);
  EXPECT_DOUBLE_EQ(root_reachable_fraction({}), 1.0);
}

TEST(SpanChecks, StitchedCrossNodeRequiresOneRootPerMultiComponentTrace) {
  // Trace 1 spans two components under one root: stitched.
  std::vector<TraceEvent> events;
  TraceEvent root;
  root.trace_id = 1;
  root.span_id = 1;
  root.start_us = 0.0;
  root.end_us = 100.0;
  root.name = "federation.request";
  root.component = "cluster";
  events.push_back(root);
  TraceEvent remote = root;
  remote.span_id = 2;
  remote.parent_id = 1;
  remote.name = "request";
  remote.component = "serve";
  events.push_back(remote);
  EXPECT_DOUBLE_EQ(stitched_cross_node_fraction(events), 1.0);

  // Breaking the parent link leaves the remote span with its own
  // implicit root — the trace is now two fragments, not one chain.
  std::vector<TraceEvent> torn = events;
  torn[1].parent_id = 0;
  EXPECT_DOUBLE_EQ(stitched_cross_node_fraction(torn), 0.0);

  // A single-component trace cannot be unstitched, so it never counts.
  std::vector<TraceEvent> local = events;
  local[1].component = "cluster";
  local[1].parent_id = 0;
  EXPECT_DOUBLE_EQ(stitched_cross_node_fraction(local), 1.0);
}

TEST(ChromeTrace, ValidatorAcceptsExportAndNamesBadEvents) {
  EXPECT_TRUE(validate_chrome_trace(chrome_trace(sample_events())).ok());
  EXPECT_TRUE(validate_chrome_trace(chrome_trace({}, 2)).ok());

  EXPECT_FALSE(validate_chrome_trace("not json").ok());
  EXPECT_FALSE(validate_chrome_trace("[]").ok());  // no traceEvents object
  EXPECT_FALSE(
      validate_chrome_trace(R"({"traceEvents":[{"pid":0,"tid":0}]})").ok());
  // An "X" event without dur (or with negative dur) fails the lint.
  EXPECT_FALSE(validate_chrome_trace(
                   R"({"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":1}]})")
                   .ok());
  EXPECT_FALSE(
      validate_chrome_trace(
          R"({"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":1,"dur":-2}]})")
          .ok());
}

// ------------------------------------------------------------ Gauge kinds --

TEST(RegistrySnapshot, MergeFollowsGaugeKindContract) {
  Registry a;
  Registry b;
  for (Registry* r : {&a, &b}) {
    r->gauge("stall_us", GaugeKind::kSum)->add(10.0);
    r->gauge("queue_max", GaugeKind::kMax);
    r->gauge("imbalance")->set(0.5);  // kLastWrite by default
  }
  a.gauge("queue_max", GaugeKind::kMax)->set_max(7.0);
  b.gauge("queue_max", GaugeKind::kMax)->set_max(3.0);

  RegistrySnapshot merged = a.snapshot(100.0);
  merged.merge(b.snapshot(90.0));
  EXPECT_EQ(merged.nodes, 2u);
  EXPECT_DOUBLE_EQ(merged.at_us, 100.0);
  EXPECT_DOUBLE_EQ(merged.gauges.at("stall_us").value, 20.0);  // summed
  EXPECT_DOUBLE_EQ(merged.gauges.at("queue_max").value, 7.0);  // maxed
  // A node-local reading has no cross-node meaning: merging it by any
  // rule would silently double-count or pick an arbitrary node, so the
  // contract removes it instead.
  EXPECT_EQ(merged.gauges.count("imbalance"), 0u);
}

TEST(Registry, GaugeKindFirstRegistrationWins) {
  Registry registry;
  Gauge* g = registry.gauge("g", GaugeKind::kMax);
  EXPECT_EQ(registry.gauge("g", GaugeKind::kSum), g);
  EXPECT_EQ(registry.snapshot().gauges.at("g").kind, GaugeKind::kMax);
}

// -------------------------------------------------------- TimeSeriesStore --

TEST(TimeSeriesStore, EmptyAndSingleSampleWindowsAnswerZero) {
  Registry registry;
  registry.counter("c")->inc(5);
  TimeSeriesStore store(&registry);
  EXPECT_DOUBLE_EQ(store.counter_delta("c", 1e6), 0.0);
  EXPECT_FALSE(store.percentile("h", 99.0, 1e6).has_value());
  EXPECT_FALSE(store.latest().has_value());
  store.sample(100.0);
  // One sample covers no interval: deltas and rates are still zero.
  EXPECT_DOUBLE_EQ(store.counter_delta("c", 1e6), 0.0);
  EXPECT_DOUBLE_EQ(store.rate_per_s("c", 1e6), 0.0);
  EXPECT_TRUE(store.latest().has_value());
}

TEST(TimeSeriesStore, CounterResetRestartsDeltaFromNewValue) {
  Registry registry;
  Counter* c = registry.counter("c");
  TimeSeriesStore store(&registry);
  c->inc(100);
  store.sample(0.0);
  c->inc(50);
  store.sample(1e5);  // 100 -> 150: +50
  registry.reset();
  c->inc(10);
  store.sample(2e5);  // 150 -> 10: reset, the 10 IS the increase
  c->inc(30);
  store.sample(3e5);  // 10 -> 40: +30
  EXPECT_DOUBLE_EQ(store.counter_delta("c", 1e6), 90.0);
}

TEST(TimeSeriesStore, WindowedPercentileSeesOnlyTheWindow) {
  Registry registry;
  Histogram* h = registry.histogram("h");
  TimeSeriesStore store(&registry);
  for (int i = 0; i < 100; ++i) h->record(10.0);
  store.sample(0.0);
  store.sample(1e6);  // window edge: everything before is excluded
  for (int i = 0; i < 100; ++i) h->record(1000.0);
  store.sample(2e6);
  const auto p50 = store.percentile("h", 50.0, 1.5e6);
  ASSERT_TRUE(p50.has_value());
  // Only the 1000 µs recordings are inside the window's delta histogram.
  EXPECT_GT(*p50, 500.0);
}

TEST(TimeSeriesStore, ClockSkewedMergeAlignsAtOrBefore) {
  Registry reg_a;
  Registry reg_b;
  Counter* ca = reg_a.counter("c");
  Counter* cb = reg_b.counter("c");
  TimeSeriesStore node_a(&reg_a);
  TimeSeriesStore node_b(&reg_b);
  ca->inc(10);
  node_a.sample(100.0);
  ca->inc(90);
  node_a.sample(200.0);
  // Node B's sampling loop runs on a skewed clock.
  cb->inc(7);
  node_b.sample(150.0);
  cb->inc(93);
  node_b.sample(260.0);

  // Query at 210: A aligns to its 200-sample (100), B to its
  // 150-sample (7) — the merge never reads a sample from the future.
  const auto merged = TimeSeriesStore::merged({&node_a, &node_b}, 210.0);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->counters.at("c"), 107u);
  EXPECT_EQ(merged->nodes, 2u);

  // A query before a node's first sample skips that node entirely.
  const auto early = TimeSeriesStore::merged({&node_a, &node_b}, 120.0);
  ASSERT_TRUE(early.has_value());
  EXPECT_EQ(early->counters.at("c"), 10u);
}

TEST(TimeSeriesStore, MergedDropsLastWriteGaugesEvenForOneNode) {
  Registry registry;
  registry.gauge("local")->set(5.0);
  registry.gauge("watermark", GaugeKind::kMax)->set_max(9.0);
  TimeSeriesStore store(&registry);
  store.sample(10.0);
  const auto merged = TimeSeriesStore::merged({&store});
  ASSERT_TRUE(merged.has_value());
  // The merged view is the federation view: node-local readings are
  // excluded even when the "federation" is one node, so a query result
  // never changes meaning when a second node joins.
  EXPECT_EQ(merged->gauges.count("local"), 0u);
  EXPECT_DOUBLE_EQ(merged->gauges.at("watermark").value, 9.0);
}

TEST(TimeSeriesStore, RingEvictsPastCapacityAndSamplesSelfTelemetry) {
  Registry registry;
  registry.counter("c");
  TimeSeriesConfig config;
  config.capacity = 4;
  TimeSeriesStore store(&registry, config);
  for (int i = 0; i < 10; ++i) store.sample(i * 1e5);
  EXPECT_EQ(store.size(), 4u);
  const auto latest = store.latest();
  ASSERT_TRUE(latest.has_value());
  // sample() injects the telemetry-loss series alongside the registry's.
  EXPECT_EQ(latest->counters.count("obs.trace.dropped"), 1u);
  EXPECT_EQ(latest->gauges.count("obs.registry.series"), 1u);
  EXPECT_EQ(latest->gauges.at("obs.registry.series").kind, GaugeKind::kMax);
}

// ------------------------------------------------------------ SloMonitor --

TEST(SloMonitor, MultiWindowBurnPagesAndClearsOnFastRecovery) {
  SloMonitor monitor;
  SloObjective objective;
  objective.key = "t0/tp";
  objective.latency_threshold_us = 1000.0;
  objective.target = 0.9;  // 10% budget
  objective.fast_window_us = 1e6;
  objective.slow_window_us = 4e6;
  objective.fast_burn_threshold = 4.0;
  objective.slow_burn_threshold = 1.0;
  objective.bucket_us = 2.5e5;
  objective.min_events = 5;
  monitor.add_objective(objective);
  std::vector<SloAlert> fired;
  monitor.set_on_alert([&](const SloAlert& a) { fired.push_back(a); });

  // Healthy traffic: fast burn 0.
  for (int i = 0; i < 50; ++i) monitor.record("t0/tp", 100.0, true, 1e5);
  EXPECT_TRUE(monitor.evaluate(5e5).empty());
  EXPECT_EQ(monitor.status("t0/tp").state, SloAlertState::kOk);

  // A solid window of violations: bad fraction 1.0 -> burn 10 in both
  // windows -> page.
  for (int i = 0; i < 50; ++i) monitor.record("t0/tp", 5000.0, false, 1.2e6);
  const auto alerts = monitor.evaluate(1.5e6);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].to, SloAlertState::kPage);
  EXPECT_GT(alerts[0].fast_burn, objective.fast_burn_threshold);
  EXPECT_EQ(monitor.status("t0/tp").pages, 1u);

  // Good traffic pushes the bad bucket out of the FAST window; the slow
  // window still remembers it, but the page clears on fast recovery.
  for (int i = 0; i < 50; ++i) monitor.record("t0/tp", 100.0, true, 2.8e6);
  const auto cleared = monitor.evaluate(3e6);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0].to, SloAlertState::kOk);
  EXPECT_EQ(fired.size(), 2u);
}

TEST(SloMonitor, TrickleTrafficNeverPages) {
  SloMonitor monitor;
  SloObjective objective;
  objective.key = "t0/tp";
  objective.min_events = 20;
  monitor.add_objective(objective);
  // 5 bad events: far under min_events, so no alert despite 100% bad.
  for (int i = 0; i < 5; ++i) monitor.record("t0/tp", 1e6, false, 1e5);
  EXPECT_TRUE(monitor.evaluate(5e5).empty());
  EXPECT_EQ(monitor.status("t0/tp").state, SloAlertState::kOk);
}

TEST(SloMonitor, UnknownKeysAreIgnored) {
  SloMonitor monitor;
  monitor.record("nobody", 1.0, false, 0.0);  // must not crash or alert
  EXPECT_TRUE(monitor.evaluate(1e6).empty());
}

// ---------------------------------------------------------- CriticalPath --

TEST(CriticalPath, AttributesSegmentsAndResidual) {
  std::vector<TraceEvent> events;
  const auto span = [&](std::uint64_t id, std::uint64_t parent, double s,
                        double e, const char* name,
                        Annotations notes = {}) {
    TraceEvent ev;
    ev.trace_id = 7;
    ev.span_id = id;
    ev.parent_id = parent;
    ev.start_us = s;
    ev.end_us = e;
    ev.name = name;
    ev.component = "serve";
    ev.annotations = std::move(notes);
    events.push_back(ev);
  };
  span(1, 0, 0.0, 100.0, "federation.request");
  span(2, 1, 0.0, 15.0, "hop", {{"kind", "forward"}});
  span(3, 1, 15.0, 35.0, "queue");
  span(4, 1, 35.0, 45.0, "batch");
  span(5, 1, 45.0, 85.0, "execute");
  span(6, 1, 85.0, 90.0, "hop", {{"kind", "reply"}});

  const CriticalPath path = critical_path(events, 7);
  EXPECT_DOUBLE_EQ(path.total_us, 100.0);
  EXPECT_DOUBLE_EQ(path.forward_us, 15.0);
  EXPECT_DOUBLE_EQ(path.queue_us, 20.0);
  EXPECT_DOUBLE_EQ(path.batch_us, 10.0);
  EXPECT_DOUBLE_EQ(path.execute_us, 40.0);
  EXPECT_DOUBLE_EQ(path.reply_us, 5.0);   // the reply-annotated hop
  EXPECT_DOUBLE_EQ(path.other_us, 10.0);  // 90..100 is unattributed
  EXPECT_EQ(path.segments, 5u);

  const auto all = critical_paths(events);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].trace_id, 7u);
  const CriticalPath mean = mean_critical_path(all);
  EXPECT_DOUBLE_EQ(mean.total_us, 100.0);
}

TEST(CriticalPath, MissingTraceYieldsZeroes) {
  const CriticalPath path = critical_path({}, 42);
  EXPECT_DOUBLE_EQ(path.total_us, 0.0);
  EXPECT_EQ(path.segments, 0u);
}

// -------------------------------------------------------- FlightRecorder --

TEST(FlightRecorder, CapturesWindowDebouncesAndLints) {
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  Registry registry;
  registry.counter("c")->inc(3);
  TimeSeriesStore tsdb(&registry, TimeSeriesConfig{}, &tracer);

  {
    Tracer::ScopedSpan s = tracer.scoped("work", "serve");
  }
  tsdb.sample(tracer.wall_now_us());

  FlightRecorderConfig flight_config;
  flight_config.retention_us = 1e7;
  flight_config.min_retrigger_gap_us = 1e7;  // everything after debounced
  FlightRecorder recorder(&tracer, &tsdb, flight_config, &registry);

  const auto seq = recorder.trigger("slo.page", {{"slo", "t0/tp"}});
  ASSERT_TRUE(seq.has_value());
  EXPECT_FALSE(recorder.trigger("breaker.open").has_value());  // debounced
  EXPECT_EQ(recorder.triggers(), 1u);
  EXPECT_EQ(recorder.suppressed(), 1u);

  const auto bundle = recorder.bundle(0);
  ASSERT_TRUE(bundle.has_value());
  EXPECT_EQ(bundle->reason, "slo.page");
  EXPECT_FALSE(bundle->events.empty());
  EXPECT_TRUE(bundle->covers_us(bundle->triggered_at_us));
  EXPECT_TRUE(validate_chrome_trace(bundle->trace_json(2)).ok());
  // The metrics half carries the rollup (counter c is in it).
  EXPECT_TRUE(bundle->metrics.is_object());
  // The registry counted the trigger and the suppression.
  EXPECT_EQ(registry.snapshot().counters.at("obs.flight.triggers"), 1u);
  EXPECT_EQ(registry.snapshot().counters.at("obs.flight.suppressed"), 1u);
}

// --------------------------------------------- Deterministic trace export --

/// Builds the same synthetic stitched federation trace for a seed: ids,
/// timestamps, and annotations all derive from SplitMix64, so two
/// constructions with one seed are identical and two seeds differ.
std::vector<TraceEvent> synthetic_stitched_trace(std::uint64_t seed) {
  SplitMix64 sm(seed);
  std::vector<TraceEvent> events;
  for (int request = 0; request < 8; ++request) {
    const std::uint64_t trace_id = 1000 * (request + 1);
    const double t0 = static_cast<double>(sm.next() % 1000);
    const double hop = static_cast<double>(1 + sm.next() % 50);
    const double exec = static_cast<double>(10 + sm.next() % 200);
    TraceEvent root;
    root.trace_id = trace_id;
    root.span_id = trace_id + 1;
    root.start_us = t0;
    root.end_us = t0 + hop + exec + 5.0;
    root.name = "federation.request";
    root.component = "cluster";
    root.annotations = {{"ingress", std::to_string(sm.next() % 3)}};
    events.push_back(root);
    TraceEvent fwd = root;
    fwd.span_id = trace_id + 2;
    fwd.parent_id = root.span_id;
    fwd.start_us = t0;
    fwd.end_us = t0 + hop;
    fwd.name = "hop";
    fwd.annotations = {{"kind", "forward"}};
    events.push_back(fwd);
    TraceEvent exe = root;
    exe.span_id = trace_id + 3;
    exe.parent_id = root.span_id;
    exe.start_us = t0 + hop;
    exe.end_us = t0 + hop + exec;
    exe.name = "execute";
    exe.component = "serve";
    exe.annotations.clear();
    events.push_back(exe);
  }
  return events;
}

class StitchedExportDeterminism
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StitchedExportDeterminism, SameSeedExportsByteIdentical) {
  const std::uint64_t seed = GetParam();
  const std::vector<TraceEvent> first = synthetic_stitched_trace(seed);
  const std::vector<TraceEvent> second = synthetic_stitched_trace(seed);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_DOUBLE_EQ(root_reachable_fraction(first), 1.0);
  EXPECT_DOUBLE_EQ(stitched_cross_node_fraction(first), 1.0);

  // The export pipeline (span forest -> chrome trace JSON) is a pure
  // function of the recorded events: same-seed reruns are
  // byte-identical, and a different seed is not.
  const std::string a = chrome_trace(first, 2);
  const std::string b = chrome_trace(second, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, chrome_trace(synthetic_stitched_trace(seed + 1), 2));
  EXPECT_TRUE(validate_chrome_trace(a).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StitchedExportDeterminism,
                         ::testing::Values(1u, 42u, 2026u));

}  // namespace
}  // namespace everest::obs
