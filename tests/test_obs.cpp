// Unit tests for src/obs: instruments (concurrent exactness, snapshot
// merging), the registry, the tracer's ring buffers, and the Chrome
// trace exporter with its structural span checks. The concurrent cases
// are the ones tools/check.sh re-runs under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/obs.hpp"

namespace everest::obs {
namespace {

// ----------------------------------------------------------- Instruments --

TEST(Counter, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.inc(5);
  EXPECT_EQ(c.value(), kThreads * kPerThread + 5);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, ConcurrentAddIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), double(kThreads) * kPerThread);
}

TEST(Gauge, SetMaxKeepsRunningMaximum) {
  Gauge g;
  g.set_max(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  // Concurrent racers: the final value is the global max.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 10000; ++i) g.set_max(double(t * 10000 + i));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 79999.0);
}

TEST(Histogram, ConcurrentRecordingKeepsExactTotals) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.record(rng.uniform() * 1000.0 + 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  const std::uint64_t expected = std::uint64_t(kThreads) * kPerThread;
  EXPECT_EQ(snap.count, expected);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t n : snap.counts) bucket_total += n;
  EXPECT_EQ(bucket_total, expected);
  EXPECT_GE(snap.min_seen, 1.0);
  EXPECT_LE(snap.max_seen, 1001.0);
  EXPECT_NEAR(snap.mean(), 501.0, 5.0);
}

TEST(Histogram, PercentileTracksExactOrderStatisticWithinBucketWidth) {
  Histogram h;
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(1.0 / 200.0) + 1.0;  // mean ~201 µs
    values.push_back(v);
    h.record(v);
  }
  const HistogramSnapshot snap = h.snapshot();
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = percentile(values, p);
    const double approx = snap.percentile(p);
    EXPECT_NEAR(approx, exact, snap.bucket_width_at(p))
        << "p" << p << ": approx " << approx << " exact " << exact;
  }
  // Extremes clamp to the watermarks, never past them.
  EXPECT_DOUBLE_EQ(snap.percentile(0.0), snap.min_seen);
  EXPECT_DOUBLE_EQ(snap.percentile(100.0), snap.max_seen);
}

TEST(Histogram, EmptyAndSingletonSnapshots) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 0.0);
  h.record(17.0);
  const HistogramSnapshot one = h.snapshot();
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.percentile(0), 17.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 17.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 17.0);
  EXPECT_DOUBLE_EQ(one.min_seen, 17.0);
  EXPECT_DOUBLE_EQ(one.max_seen, 17.0);
}

TEST(Histogram, OverflowBucketClampsToMaxSeen) {
  HistogramOptions opt;
  opt.min = 1.0;
  opt.growth = 2.0;
  opt.buckets = 4;  // boundaries 1, 2, 4, 8 + overflow
  Histogram h(opt);
  h.record(100.0);
  h.record(200.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts.back(), 2u);
  EXPECT_LE(snap.percentile(99), 200.0);
  EXPECT_GE(snap.percentile(99), 100.0);
}

HistogramSnapshot merged(HistogramSnapshot a, const HistogramSnapshot& b) {
  EXPECT_TRUE(a.merge(b));
  return a;
}

TEST(HistogramSnapshot, MergeIsAssociativeAndMatchesCombinedStream) {
  Histogram ha, hb, hc, hall;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.uniform() * 500.0 + 0.5;
    (i % 3 == 0 ? ha : i % 3 == 1 ? hb : hc).record(v);
    hall.record(v);
  }
  const HistogramSnapshot a = ha.snapshot();
  const HistogramSnapshot b = hb.snapshot();
  const HistogramSnapshot c = hc.snapshot();

  const HistogramSnapshot left = merged(merged(a, b), c);    // (a+b)+c
  const HistogramSnapshot right = merged(a, merged(b, c));   // a+(b+c)
  const HistogramSnapshot all = hall.snapshot();

  for (const HistogramSnapshot* m : {&left, &right}) {
    EXPECT_EQ(m->count, all.count);
    EXPECT_NEAR(m->sum, all.sum, 1e-6);
    EXPECT_DOUBLE_EQ(m->min_seen, all.min_seen);
    EXPECT_DOUBLE_EQ(m->max_seen, all.max_seen);
    ASSERT_EQ(m->counts.size(), all.counts.size());
    for (std::size_t i = 0; i < all.counts.size(); ++i) {
      EXPECT_EQ(m->counts[i], all.counts[i]) << "bucket " << i;
    }
  }
  EXPECT_DOUBLE_EQ(left.percentile(99), right.percentile(99));
}

TEST(HistogramSnapshot, MergeWithEmptySideKeepsWatermarks) {
  Histogram h;
  h.record(5.0);
  h.record(50.0);
  HistogramSnapshot filled = h.snapshot();
  const HistogramSnapshot empty = Histogram{}.snapshot();

  HistogramSnapshot a = filled;
  EXPECT_TRUE(a.merge(empty));
  EXPECT_DOUBLE_EQ(a.min_seen, 5.0);
  EXPECT_DOUBLE_EQ(a.max_seen, 50.0);

  HistogramSnapshot b = empty;
  EXPECT_TRUE(b.merge(filled));
  EXPECT_EQ(b.count, 2u);
  // The empty side's min_seen=0 must not poison the merged minimum.
  EXPECT_DOUBLE_EQ(b.min_seen, 5.0);
  EXPECT_DOUBLE_EQ(b.max_seen, 50.0);
}

TEST(HistogramSnapshot, MergeRejectsLayoutMismatch) {
  HistogramOptions narrow;
  narrow.buckets = 8;
  Histogram ha, hb(narrow);
  ha.record(3.0);
  hb.record(3.0);
  HistogramSnapshot a = ha.snapshot();
  const std::uint64_t count_before = a.count;
  EXPECT_FALSE(a.merge(hb.snapshot()));
  EXPECT_EQ(a.count, count_before);  // untouched on failure
}

// --------------------------------------------------------------- Registry --

TEST(Registry, FindOrCreateReturnsStablePointers) {
  Registry reg;
  Counter* c1 = reg.counter("serve.admitted");
  Counter* c2 = reg.counter("serve.admitted");
  EXPECT_EQ(c1, c2);
  // Label order must not matter.
  Counter* l1 = reg.counter("hits", {{"node", "0"}, {"tier", "hot"}});
  Counter* l2 = reg.counter("hits", {{"tier", "hot"}, {"node", "0"}});
  EXPECT_EQ(l1, l2);
  // Distinct label values are distinct instruments.
  Counter* other = reg.counter("hits", {{"node", "1"}, {"tier", "hot"}});
  EXPECT_NE(l1, other);
  // Same name in a different instrument family is a separate namespace.
  EXPECT_NE(static_cast<void*>(reg.gauge("serve.admitted")),
            static_cast<void*>(c1));
}

TEST(Registry, KeyOfSortsLabels) {
  EXPECT_EQ(Registry::key_of("lat", {}), "lat");
  EXPECT_EQ(Registry::key_of("lat", {{"b", "2"}, {"a", "1"}}),
            "lat{a=1,b=2}");
}

TEST(Registry, HistogramFirstRegistrationOptionsWin) {
  Registry reg;
  HistogramOptions coarse;
  coarse.buckets = 8;
  Histogram* h1 = reg.histogram("lat", coarse);
  HistogramOptions fine;
  fine.buckets = 128;
  Histogram* h2 = reg.histogram("lat", fine);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->options().buckets, 8u);
}

TEST(Registry, JsonDumpIsParseableAndComplete) {
  Registry reg;
  reg.counter("requests", {{"class", "lc"}})->inc(3);
  reg.gauge("queue_depth")->set(7.0);
  Histogram* h = reg.histogram("latency_us");
  for (int i = 1; i <= 100; ++i) h->record(double(i));

  const std::string text = reg.to_json().dump(2);
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(
      parsed->at("counters").at("requests{class=lc}").as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed->at("gauges").at("queue_depth").as_number(), 7.0);
  const json::Value& lat = parsed->at("histograms").at("latency_us");
  EXPECT_EQ(lat.at("count").as_int(), 100);
  EXPECT_GT(lat.at("p99").as_number(), lat.at("p50").as_number());
  EXPECT_DOUBLE_EQ(lat.at("max").as_number(), 100.0);

  // The flat text dump carries the same keys.
  const std::string flat = reg.to_text();
  EXPECT_NE(flat.find("requests{class=lc} 3"), std::string::npos);
  EXPECT_NE(flat.find("latency_us_count 100"), std::string::npos);
}

TEST(Registry, ResetZeroesInstrumentsInPlace) {
  Registry reg;
  Counter* c = reg.counter("n");
  Histogram* h = reg.histogram("lat");
  c->inc(9);
  h->record(4.0);
  reg.reset();
  EXPECT_EQ(c->value(), 0u);       // same pointer, zeroed
  EXPECT_EQ(h->snapshot().count, 0u);
}

// ----------------------------------------------------------------- Tracer --

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;  // default config: disabled
  EXPECT_FALSE(tracer.enabled());
  {
    Tracer::ScopedSpan s = tracer.scoped("noop", "test");
    EXPECT_FALSE(s.active());
    s.annotate("k", "v");  // harmless on an inert span
  }
  tracer.instant(TimeDomain::kWall, 1, 0.0, 0, "nope", "test");
  tracer.span(TimeDomain::kWall, 1, 2, 0, 0.0, 1.0, 0, "nope", "test");
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ScopedSpanRecordsWallSpanWithAnnotations) {
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  const std::uint64_t trace = tracer.next_id();
  std::uint64_t parent_id = 0;
  {
    Tracer::ScopedSpan root = tracer.scoped("request", "serve", trace);
    parent_id = root.span_id();
    Tracer::ScopedSpan child =
        tracer.scoped("execute", "serve", trace, root.span_id());
    child.annotate("variant", "fpga-v2");
  }
  const std::vector<TraceEvent> events = tracer.collect();
  ASSERT_EQ(events.size(), 2u);  // child finishes first
  EXPECT_EQ(events[0].name, "execute");
  EXPECT_EQ(events[0].parent_id, parent_id);
  EXPECT_EQ(events[0].trace_id, trace);
  ASSERT_EQ(events[0].annotations.size(), 1u);
  EXPECT_EQ(events[0].annotations[0].second, "fpga-v2");
  EXPECT_EQ(events[1].name, "request");
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_GE(events[1].end_us, events[1].start_us);
  EXPECT_GE(events[1].end_us, events[0].end_us);
}

TEST(Tracer, SimDomainSpanKeepsExplicitTimestamps) {
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  tracer.span(TimeDomain::kSim, 9, 10, 0, 1500.0, 2500.0, 3, "task", "workflow");
  const std::vector<TraceEvent> events = tracer.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, TimeDomain::kSim);
  EXPECT_DOUBLE_EQ(events[0].start_us, 1500.0);
  EXPECT_DOUBLE_EQ(events[0].duration_us(), 1000.0);
  EXPECT_EQ(events[0].track, 3u);
}

TEST(Tracer, RingOverflowDropsAndCounts) {
  TracerConfig config;
  config.enabled = true;
  config.ring_capacity = 8;
  Tracer tracer(config);
  for (int i = 0; i < 20; ++i) {
    tracer.instant(TimeDomain::kWall, 1, double(i), 0, "tick", "test");
  }
  EXPECT_EQ(tracer.collect().size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  tracer.clear();
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  // Post-clear recording reuses the same ring.
  tracer.instant(TimeDomain::kWall, 1, 0.0, 0, "tick", "test");
  EXPECT_EQ(tracer.collect().size(), 1u);
}

TEST(Tracer, ConcurrentThreadsGetDistinctLanes) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 500;
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        Tracer::ScopedSpan s = tracer.scoped("op", "test");
        (void)s;
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<TraceEvent> events = tracer.collect();
  EXPECT_EQ(events.size(), std::size_t(kThreads) * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  std::set<std::uint32_t> lanes;
  std::set<std::uint64_t> span_ids;
  for (const TraceEvent& ev : events) {
    lanes.insert(ev.track);
    EXPECT_TRUE(span_ids.insert(ev.span_id).second) << "duplicate span id";
  }
  EXPECT_EQ(lanes.size(), std::size_t(kThreads));  // kAutoTrack -> own lane
}

TEST(Tracer, NextIdNeverReturnsZero) {
  Tracer tracer;
  for (int i = 0; i < 100; ++i) EXPECT_NE(tracer.next_id(), 0u);
}

// ----------------------------------------------------- Chrome trace export --

std::vector<TraceEvent> sample_events() {
  std::vector<TraceEvent> events;
  TraceEvent root;
  root.trace_id = 1;
  root.span_id = 10;
  root.start_us = 0.0;
  root.end_us = 100.0;
  root.track = 0;
  root.name = "request";
  root.component = "serve";
  root.annotations = {{"sla", "lc"}};
  events.push_back(root);
  TraceEvent child = root;
  child.span_id = 11;
  child.parent_id = 10;
  child.start_us = 10.0;
  child.end_us = 60.0;
  child.name = "execute";
  events.push_back(child);
  TraceEvent fault;
  fault.kind = TraceEvent::Kind::kInstant;
  fault.trace_id = 1;
  fault.span_id = 0;
  fault.start_us = 30.0;
  fault.track = 1;
  fault.name = "fault-injected";
  fault.component = "resilience";
  events.push_back(fault);
  return events;
}

TEST(ChromeTrace, ExportsParseableDocument) {
  const std::string text = chrome_trace(sample_events(), 2);
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->at("displayTimeUnit").as_string(), "ms");
  const json::Array& tev = parsed->at("traceEvents").as_array();
  // 2 spans + 1 instant + process_name metadata for serve + resilience.
  std::size_t complete = 0, instant = 0, metadata = 0;
  for (const json::Value& e : tev) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    } else if (ph == "i") {
      ++instant;
      EXPECT_EQ(e.at("s").as_string(), "t");
    } else if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").as_string(), "process_name");
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instant, 1u);
  EXPECT_EQ(metadata, 2u);
}

TEST(ChromeTrace, SpanArgsCarryIdsAndAnnotations) {
  auto doc = chrome_trace_json(sample_events());
  bool found_root = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X" &&
        e.at("name").as_string() == "request") {
      found_root = true;
      EXPECT_EQ(e.at("args").at("sla").as_string(), "lc");
      EXPECT_EQ(e.at("args").at("span_id").as_int(), 10);
    }
  }
  EXPECT_TRUE(found_root);
}

TEST(SpanChecks, AcceptWellFormedForest) {
  const std::vector<TraceEvent> events = sample_events();
  EXPECT_TRUE(spans_acyclic(events));
  EXPECT_TRUE(span_chains_complete(events));
}

TEST(SpanChecks, RejectCycleDanglingParentAndDuplicateId) {
  // Two spans pointing at each other: a cycle.
  std::vector<TraceEvent> cycle = sample_events();
  cycle[0].parent_id = 11;  // root now claims its child as parent
  EXPECT_FALSE(spans_acyclic(cycle));

  // A parent id that resolves to no span in the batch.
  std::vector<TraceEvent> dangling = sample_events();
  dangling[1].parent_id = 999;
  EXPECT_FALSE(spans_acyclic(dangling));
  EXPECT_FALSE(span_chains_complete(dangling));

  // Two spans sharing one id make parentage ambiguous.
  std::vector<TraceEvent> dup = sample_events();
  dup[1].span_id = 10;
  EXPECT_FALSE(spans_acyclic(dup));

  // A span with id 0 is malformed.
  std::vector<TraceEvent> zero = sample_events();
  zero[1].span_id = 0;
  EXPECT_FALSE(spans_acyclic(zero));
}

TEST(SpanChecks, ChainCompletenessIsPerTrace) {
  // The child lives in a different trace than its parent: the chain
  // never reaches a root within its own trace.
  std::vector<TraceEvent> cross = sample_events();
  cross[1].trace_id = 2;
  EXPECT_TRUE(spans_acyclic(cross));  // structurally still a forest
  EXPECT_FALSE(span_chains_complete(cross));
}

}  // namespace
}  // namespace everest::obs
