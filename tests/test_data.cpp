// Unit tests for the virtualized data plane: objects/shards, placement,
// caching, transfer scheduling, prefetching, the DataPlane facade, and
// its integration with the workflow scheduler. Everything here must be
// deterministic — the TEST_P suite at the bottom asserts byte-identical
// cache counters across repeated runs for every eviction policy.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "data/cache.hpp"
#include "data/object.hpp"
#include "data/placement.hpp"
#include "data/plane.hpp"
#include "data/prefetcher.hpp"
#include "data/transfer.hpp"
#include "platform/desim.hpp"
#include "platform/links.hpp"
#include "resilience/fault_plan.hpp"
#include "storage/storage.hpp"
#include "workflow/scheduler.hpp"
#include "workflow/task_graph.hpp"

namespace everest::data {
namespace {

// ---------------------------------------------------------------- object --

TEST(DataObject, ShardKeyOrderingAndEquality) {
  const ShardKey a{1, 0, 0};
  const ShardKey b{1, 1, 0};
  const ShardKey c{1, 1, 2};
  EXPECT_EQ(a, (ShardKey{1, 0, 0}));
  EXPECT_FALSE(a == b);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, (ShardKey{2, 0, 0}));
}

TEST(DataObject, HashIsDeterministicAndSaltSensitive) {
  const ShardKey key{7, 3, 1};
  EXPECT_EQ(hash_key(key), hash_key(key));
  EXPECT_NE(hash_key(key), hash_key(key, /*salt=*/1));
  EXPECT_NE(hash_key(key), hash_key(ShardKey{7, 4, 1}));
  EXPECT_EQ(object_id_from_name("tenant-a/obj1"),
            object_id_from_name("tenant-a/obj1"));
  EXPECT_NE(object_id_from_name("tenant-a/obj1"),
            object_id_from_name("tenant-a/obj2"));
}

TEST(DataObject, ShardCountAndBytes) {
  EXPECT_EQ(shard_count(0.0, 4.0), 1u);  // empty objects still have a shard
  EXPECT_EQ(shard_count(4.0, 4.0), 1u);
  EXPECT_EQ(shard_count(9.0, 4.0), 3u);

  DataObject object;
  object.id = 5;
  object.total_bytes = 9.0;
  object.num_shards = 3;
  object.version = 2;
  EXPECT_DOUBLE_EQ(object.shard_bytes(0), 3.0);
  EXPECT_DOUBLE_EQ(object.shard_bytes(2), 3.0);
  const std::vector<ShardKey> keys = object.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[1], (ShardKey{5, 1, 2}));
}

TEST(DataObject, ShardBytesLastShardTakesRemainder) {
  DataObject object;
  object.total_bytes = 10.0;
  object.num_shards = shard_count(10.0, 4.0);
  ASSERT_EQ(object.num_shards, 3u);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < object.num_shards; ++i) {
    sum += object.shard_bytes(i);
  }
  EXPECT_DOUBLE_EQ(sum, 10.0);
}

// ------------------------------------------------------------- placement --

std::vector<StorageNode> nodes(std::size_t n, double capacity = 1e9) {
  std::vector<StorageNode> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({"n" + std::to_string(i), capacity, 0.0, false});
  }
  return out;
}

TEST(Placement, BirthNodeIsFirstReplica) {
  PlacementConfig config;
  config.replication = 2;
  PlacementPolicy policy(nodes(4), config);
  const auto placed = policy.place(ShardKey{1, 0, 0}, 100.0, /*born_on=*/2);
  ASSERT_TRUE(placed.ok());
  ASSERT_GE(placed.value().size(), 1u);
  EXPECT_EQ(placed.value().front(), 2u);
}

TEST(Placement, ReplicationPicksDistinctNodes) {
  PlacementConfig config;
  config.replication = 3;
  PlacementPolicy policy(nodes(5), config);
  const auto placed = policy.place(ShardKey{9, 0, 0}, 100.0);
  ASSERT_TRUE(placed.ok());
  ASSERT_EQ(placed.value().size(), 3u);
  std::vector<std::size_t> holders = placed.value();
  std::sort(holders.begin(), holders.end());
  EXPECT_EQ(std::unique(holders.begin(), holders.end()), holders.end());
}

TEST(Placement, DeterministicAcrossInstances) {
  PlacementConfig config;
  config.replication = 2;
  PlacementPolicy a(nodes(6), config);
  PlacementPolicy b(nodes(6), config);
  for (ObjectId id = 0; id < 20; ++id) {
    const ShardKey key{id, 0, 0};
    EXPECT_EQ(a.place(key, 10.0).value(), b.place(key, 10.0).value());
  }
}

TEST(Placement, ScoreIsDeterministicAndPerNode) {
  PlacementPolicy policy(nodes(3), PlacementConfig{});
  const ShardKey key{42, 1, 0};
  EXPECT_DOUBLE_EQ(policy.score(key, 0), policy.score(key, 0));
  EXPECT_NE(policy.score(key, 0), policy.score(key, 1));
}

TEST(Placement, CapacityRespected) {
  PlacementPolicy policy(nodes(2, /*capacity=*/100.0), PlacementConfig{});
  EXPECT_TRUE(policy.place(ShardKey{1, 0, 0}, 100.0).ok());
  EXPECT_TRUE(policy.place(ShardKey{2, 0, 0}, 100.0).ok());
  // Both nodes are now full: nowhere to put a third shard.
  const auto placed = policy.place(ShardKey{3, 0, 0}, 1.0);
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.status().code(), StatusCode::kResourceExhausted);
}

TEST(Placement, ReleaseReturnsCapacity) {
  PlacementPolicy policy(nodes(1, /*capacity=*/100.0), PlacementConfig{});
  const auto first = policy.place(ShardKey{1, 0, 0}, 100.0);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(policy.place(ShardKey{2, 0, 0}, 50.0).ok());
  policy.release(first.value().front(), 100.0);
  EXPECT_TRUE(policy.place(ShardKey{2, 0, 0}, 50.0).ok());
}

TEST(Placement, FailedNodeExcluded) {
  PlacementConfig config;
  config.replication = 3;
  PlacementPolicy policy(nodes(3), config);
  policy.set_failed(1, true);
  const auto placed = policy.place(ShardKey{4, 0, 0}, 10.0);
  ASSERT_TRUE(placed.ok());
  for (std::size_t node : placed.value()) EXPECT_NE(node, 1u);
  // Only two living nodes: replication degrades instead of failing.
  EXPECT_EQ(placed.value().size(), 2u);
}

TEST(Placement, AffinityPinsReplica) {
  PlacementConfig config;
  config.replication = 1;
  config.affinity[ObjectId{11}] = 2;
  PlacementPolicy policy(nodes(4), config);
  const auto placed = policy.place(ShardKey{11, 0, 0}, 10.0);
  ASSERT_TRUE(placed.ok());
  EXPECT_NE(std::find(placed.value().begin(), placed.value().end(), 2u),
            placed.value().end());
}

// ----------------------------------------------------------------- cache --

TEST(CacheTest, ZeroCapacityCachesNothing) {
  Cache cache(CacheConfig{});  // capacity 0
  const ShardKey key{1, 0, 0};
  EXPECT_EQ(cache.insert(key, 10.0, 5.0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(cache.lookup(key));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().uncacheable, 1u);
}

TEST(CacheTest, HitRefreshesAndCounts) {
  Cache cache(CacheConfig{100.0, EvictionPolicy::kLru});
  const ShardKey key{1, 0, 0};
  EXPECT_FALSE(cache.lookup(key));  // miss first
  ASSERT_TRUE(cache.insert(key, 10.0, 5.0).ok());
  EXPECT_TRUE(cache.lookup(key));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(cache.resident_bytes(), 10.0);
}

TEST(CacheTest, OversizedShardRejectedWithoutEvicting) {
  Cache cache(CacheConfig{100.0, EvictionPolicy::kLru});
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 60.0, 1.0).ok());
  EXPECT_EQ(cache.insert(ShardKey{2, 0, 0}, 150.0, 1.0).code(),
            StatusCode::kResourceExhausted);
  // The resident entry survived — rejecting an uncacheable shard must
  // not sacrifice what is already cached.
  EXPECT_TRUE(cache.contains(ShardKey{1, 0, 0}));
  EXPECT_EQ(cache.stats().uncacheable, 1u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  Cache cache(CacheConfig{100.0, EvictionPolicy::kLru});
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 40.0, 1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{2, 0, 0}, 40.0, 1.0).ok());
  EXPECT_TRUE(cache.lookup(ShardKey{1, 0, 0}));  // 2 is now least recent
  ASSERT_TRUE(cache.insert(ShardKey{3, 0, 0}, 40.0, 1.0).ok());
  EXPECT_TRUE(cache.contains(ShardKey{1, 0, 0}));
  EXPECT_FALSE(cache.contains(ShardKey{2, 0, 0}));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().bytes_evicted, 40.0);
}

TEST(CacheTest, LfuEvictsLeastFrequentlyUsed) {
  Cache cache(CacheConfig{100.0, EvictionPolicy::kLfu});
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 40.0, 1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{2, 0, 0}, 40.0, 1.0).ok());
  EXPECT_TRUE(cache.lookup(ShardKey{1, 0, 0}));
  EXPECT_TRUE(cache.lookup(ShardKey{1, 0, 0}));
  EXPECT_TRUE(cache.lookup(ShardKey{2, 0, 0}));
  // 2 has fewer uses than 1 — it goes, even though 1 is less recent.
  ASSERT_TRUE(cache.insert(ShardKey{3, 0, 0}, 40.0, 1.0).ok());
  EXPECT_TRUE(cache.contains(ShardKey{1, 0, 0}));
  EXPECT_FALSE(cache.contains(ShardKey{2, 0, 0}));
}

TEST(CacheTest, CostAwareKeepsExpensiveEntries) {
  Cache cache(CacheConfig{100.0, EvictionPolicy::kCostAware});
  // Same size and use count; only the refetch cost differs.
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 40.0, /*cost=*/1000.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{2, 0, 0}, 40.0, /*cost=*/1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{3, 0, 0}, 40.0, /*cost=*/500.0).ok());
  EXPECT_TRUE(cache.contains(ShardKey{1, 0, 0}));
  EXPECT_FALSE(cache.contains(ShardKey{2, 0, 0}));  // cheapest to refetch
}

TEST(CacheTest, EraseIsNotAnEviction) {
  Cache cache(CacheConfig{100.0, EvictionPolicy::kLru});
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 10.0, 1.0).ok());
  EXPECT_TRUE(cache.erase(ShardKey{1, 0, 0}));
  EXPECT_FALSE(cache.erase(ShardKey{1, 0, 0}));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_DOUBLE_EQ(cache.resident_bytes(), 0.0);
}

TEST(CacheTest, StaleVersionNeverHits) {
  Cache cache(CacheConfig{100.0, EvictionPolicy::kLru});
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, /*version=*/0}, 10.0, 1.0).ok());
  EXPECT_FALSE(cache.lookup(ShardKey{1, 0, /*version=*/1}));
  EXPECT_TRUE(cache.lookup(ShardKey{1, 0, /*version=*/0}));
}

TEST(CacheTest, InvalidateObjectDropsOnlyOldVersions) {
  Cache cache(CacheConfig{1000.0, EvictionPolicy::kLru});
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 10.0, 1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{1, 1, 0}, 10.0, 1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 2}, 10.0, 1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{2, 0, 0}, 10.0, 1.0).ok());
  EXPECT_EQ(cache.invalidate_object(ObjectId{1}, /*version=*/2), 2u);
  EXPECT_TRUE(cache.contains(ShardKey{1, 0, 2}));   // current version kept
  EXPECT_TRUE(cache.contains(ShardKey{2, 0, 0}));   // other object kept
  EXPECT_FALSE(cache.contains(ShardKey{1, 0, 0}));
}

TEST(CacheTest, ClearDropsEverything) {
  Cache cache(CacheConfig{100.0, EvictionPolicy::kLru});
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 10.0, 1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{2, 0, 0}, 10.0, 1.0).ok());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_DOUBLE_EQ(cache.resident_bytes(), 0.0);
}

// -------------------------------------------------------------- transfer --

TransferScheduler::LinkPicker uniform_link(const platform::LinkModel& m) {
  return [m](std::size_t, std::size_t) { return m; };
}

TEST(Transfer, SoloFetchTakesExactModelTime) {
  platform::Simulator sim;
  const platform::LinkModel link = platform::LinkModel::udp_datacenter();
  TransferScheduler xfer(sim, uniform_link(link));
  double done_at = -1.0;
  xfer.fetch(ShardKey{1, 0, 0}, 1e6, /*src=*/0, /*dst=*/1,
             [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, link.transfer_us(1e6));
  EXPECT_EQ(xfer.stats().issued, 1u);
  EXPECT_EQ(xfer.stats().completed, 1u);
  EXPECT_DOUBLE_EQ(xfer.stats().bytes_moved, 1e6);
}

TEST(Transfer, IdenticalInFlightFetchesDedup) {
  platform::Simulator sim;
  TransferScheduler xfer(
      sim, uniform_link(platform::LinkModel::udp_datacenter()));
  int arrivals = 0;
  const ShardKey key{1, 0, 0};
  xfer.fetch(key, 1e6, 0, 1, [&] { ++arrivals; });
  EXPECT_TRUE(xfer.in_flight(key, 1));
  xfer.fetch(key, 1e6, 0, 1, [&] { ++arrivals; });  // rides the first
  sim.run();
  EXPECT_EQ(arrivals, 2);
  EXPECT_EQ(xfer.stats().issued, 1u);
  EXPECT_EQ(xfer.stats().deduped, 1u);
  EXPECT_DOUBLE_EQ(xfer.stats().bytes_moved, 1e6);  // moved once
  EXPECT_FALSE(xfer.in_flight(key, 1));
}

TEST(Transfer, DistinctDestinationsDoNotDedup) {
  platform::Simulator sim;
  TransferScheduler xfer(
      sim, uniform_link(platform::LinkModel::udp_datacenter()));
  const ShardKey key{1, 0, 0};
  xfer.fetch(key, 1e6, 0, 1, [] {});
  xfer.fetch(key, 1e6, 0, 2, [] {});
  sim.run();
  EXPECT_EQ(xfer.stats().issued, 2u);
  EXPECT_EQ(xfer.stats().deduped, 0u);
}

TEST(Transfer, ConcurrentTransfersShareTheLink) {
  platform::Simulator sim;
  const platform::LinkModel link = platform::LinkModel::udp_datacenter();
  TransferScheduler xfer(sim, uniform_link(link));
  double first = -1.0, second = -1.0;
  // Different shards, same (src, dst) pair: same channel, fair-shared.
  xfer.fetch(ShardKey{1, 0, 0}, 1e6, 0, 1, [&] { first = sim.now(); });
  xfer.fetch(ShardKey{2, 0, 0}, 1e6, 0, 1, [&] { second = sim.now(); });
  sim.run();
  const double solo = link.transfer_us(1e6);
  EXPECT_GT(first, solo);   // congested: strictly slower than alone
  EXPECT_GT(second, solo);
  // ...but no worse than fully serialized payloads.
  EXPECT_LE(second, 2.0 * solo + 1e-6);
}

TEST(Transfer, AbandonedDestinationNeverDelivers) {
  platform::Simulator sim;
  TransferScheduler xfer(
      sim, uniform_link(platform::LinkModel::udp_datacenter()));
  int arrivals = 0;
  xfer.fetch(ShardKey{1, 0, 0}, 1e6, 0, 1, [&] { ++arrivals; });
  xfer.fetch(ShardKey{2, 0, 0}, 1e6, 0, 2, [&] { ++arrivals; });
  xfer.abandon_destination(1);
  sim.run();
  EXPECT_EQ(arrivals, 1);  // only the dst=2 fetch delivered
}

TEST(Transfer, EstimateMatchesIdleLink) {
  platform::Simulator sim;
  const platform::LinkModel link = platform::LinkModel::tcp_datacenter();
  TransferScheduler xfer(sim, uniform_link(link));
  EXPECT_DOUBLE_EQ(xfer.estimate_us(5e5, 0, 1), link.transfer_us(5e5));
}

// ------------------------------------------------------------ prefetcher --

TEST(PrefetcherTest, LookaheadWalksFrontierWaves) {
  // Diamond: 0 → {1, 2} → 3.
  const std::vector<std::vector<std::size_t>> deps = {{}, {0}, {0}, {1, 2}};
  PrefetchConfig config;
  config.depth = 1;
  Prefetcher one(deps, config);
  std::vector<char> done = {1, 0, 0, 0};
  EXPECT_EQ(one.lookahead(done), (std::vector<std::size_t>{1, 2}));
  config.depth = 2;
  Prefetcher two(deps, config);
  EXPECT_EQ(two.lookahead(done), (std::vector<std::size_t>{1, 2, 3}));
}

TEST(PrefetcherTest, PlanPullsRemoteInputsToGravityTarget) {
  // 0 and 1 feed 2; 0's output is bigger, so 2 is predicted on 0's node
  // and 1's output should be prefetched there.
  const std::vector<std::vector<std::size_t>> deps = {{}, {}, {0, 1}};
  Prefetcher prefetcher(deps, PrefetchConfig{});
  const std::vector<char> done = {1, 1, 0};
  const std::vector<int> in_flight = {0, 0, 0};
  const std::vector<std::size_t> producer_node = {4, 7, Prefetcher::kUnplaced};
  const std::vector<double> output_bytes = {100.0, 10.0, 0.0};
  const auto plan = prefetcher.plan(0, done, in_flight, producer_node,
                                    output_bytes);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].consumer, 2u);
  EXPECT_EQ(plan[0].producer, 1u);
  EXPECT_EQ(plan[0].target, 4u);
}

TEST(PrefetcherTest, PlanSkipsInFlightConsumers) {
  const std::vector<std::vector<std::size_t>> deps = {{}, {}, {0, 1}};
  Prefetcher prefetcher(deps, PrefetchConfig{});
  const std::vector<char> done = {1, 1, 0};
  const std::vector<int> in_flight = {0, 0, 1};  // 2 already dispatched
  const std::vector<std::size_t> producer_node = {4, 7, Prefetcher::kUnplaced};
  const std::vector<double> output_bytes = {100.0, 10.0, 0.0};
  EXPECT_TRUE(prefetcher.plan(0, done, in_flight, producer_node, output_bytes)
                  .empty());
}

TEST(PrefetcherTest, PlanCapsCandidatesPerEvent) {
  // One completed root feeding many ready consumers, each with a second
  // remote input.
  std::vector<std::vector<std::size_t>> deps = {{}, {}};
  for (int i = 0; i < 8; ++i) deps.push_back({0, 1});
  PrefetchConfig config;
  config.max_candidates_per_event = 3;
  Prefetcher prefetcher(deps, config);
  std::vector<char> done(deps.size(), 0);
  done[0] = done[1] = 1;
  const std::vector<int> in_flight(deps.size(), 0);
  std::vector<std::size_t> producer_node(deps.size(), Prefetcher::kUnplaced);
  producer_node[0] = 0;
  producer_node[1] = 1;
  std::vector<double> output_bytes(deps.size(), 0.0);
  output_bytes[0] = 100.0;
  output_bytes[1] = 10.0;
  EXPECT_LE(prefetcher.plan(0, done, in_flight, producer_node, output_bytes)
                .size(),
            3u);
}

// ----------------------------------------------------------------- plane --

PlaneConfig small_plane(std::size_t n, int replication = 1) {
  PlaneConfig config;
  config.num_nodes = n;
  config.replication = replication;
  config.cache_bytes = 64.0 * 1024 * 1024;
  config.shard_limit_bytes = 4.0 * 1024 * 1024;
  return config;
}

TEST(Plane, PutMakesObjectAvailableAtBirthNode) {
  platform::Simulator sim;
  DataPlane plane(sim, small_plane(3));
  plane.put(1, 1e6, /*node=*/2, "t1");
  EXPECT_TRUE(plane.available(1));
  ASSERT_NE(plane.find(1), nullptr);
  EXPECT_EQ(plane.find(1)->version, 0u);
  const auto primary = plane.primary_node(1);
  ASSERT_TRUE(primary.ok());
  EXPECT_EQ(primary.value(), 2u);
  EXPECT_FALSE(plane.available(99));
}

TEST(Plane, StageAtHolderIsALocalHit) {
  platform::Simulator sim;
  DataPlane plane(sim, small_plane(3));
  plane.put(1, 1e6, 2);
  bool staged = false;
  ASSERT_TRUE(plane.stage(1, /*dst=*/2, [&] { staged = true; }).ok());
  sim.run();
  EXPECT_TRUE(staged);
  EXPECT_EQ(plane.stats().local_hits, 1u);
  EXPECT_EQ(plane.stats().transfers_issued, 0u);
  EXPECT_DOUBLE_EQ(plane.stats().bytes_fetched, 0.0);
}

TEST(Plane, RemoteStageFetchesOnceThenHitsCache) {
  platform::Simulator sim;
  DataPlane plane(sim, small_plane(3));
  plane.put(1, 1e6, 0);
  int staged = 0;
  ASSERT_TRUE(plane.stage(1, 2, [&] { ++staged; }).ok());
  sim.run();
  ASSERT_TRUE(plane.stage(1, 2, [&] { ++staged; }).ok());
  sim.run();
  EXPECT_EQ(staged, 2);
  EXPECT_EQ(plane.stats().cache_misses, 1u);
  EXPECT_EQ(plane.stats().cache_hits, 1u);
  EXPECT_DOUBLE_EQ(plane.stats().bytes_fetched, 1e6);  // fetched once
}

TEST(Plane, LostObjectIsNotFound) {
  platform::Simulator sim;
  DataPlane plane(sim, small_plane(3, /*replication=*/1));
  plane.put(1, 1e6, 0);
  const std::vector<ObjectId> lost = plane.invalidate_node(0);
  EXPECT_EQ(lost, (std::vector<ObjectId>{1}));
  EXPECT_FALSE(plane.available(1));
  // A data-plane miss is NOT_FOUND — not retryable, the object must be
  // recomputed (kNotFound satellite semantics).
  EXPECT_EQ(plane.primary_node(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(plane.stage(1, 2, [] {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(plane.prefetch(1, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(plane.stats().objects_lost, 1u);
}

TEST(Plane, ReplicaAbsorbsCrash) {
  platform::Simulator sim;
  DataPlane plane(sim, small_plane(4, /*replication=*/2));
  plane.put(1, 1e6, 0);
  EXPECT_GT(plane.stats().bytes_replicated, 0.0);
  const std::vector<ObjectId> lost = plane.invalidate_node(0);
  EXPECT_TRUE(lost.empty());  // the second replica kept it alive
  EXPECT_TRUE(plane.available(1));
  EXPECT_TRUE(plane.primary_node(1).ok());
  EXPECT_NE(plane.primary_node(1).value(), 0u);
  EXPECT_EQ(plane.stats().objects_lost, 0u);
  EXPECT_GE(plane.stats().reads_repointed, 1u);
}

TEST(Plane, RecomputationBumpsVersionAndInvalidatesCaches) {
  platform::Simulator sim;
  DataPlane plane(sim, small_plane(3, /*replication=*/1));
  plane.put(1, 1e6, 0);
  ASSERT_TRUE(plane.stage(1, 2, [] {}).ok());  // node 2 caches v0
  sim.run();
  ASSERT_EQ(plane.cache(2).size(), 1u);
  (void)plane.invalidate_node(0);
  plane.restore_node(0);
  plane.put(1, 1e6, 1);  // recomputed on node 1 at a fresh version
  ASSERT_NE(plane.find(1), nullptr);
  // Loss bumped the version once, recomputation again — strictly newer
  // than every pre-crash copy is all that matters.
  EXPECT_GT(plane.find(1)->version, 0u);
  EXPECT_EQ(plane.cache(2).size(), 0u);  // stale v0 copy dropped
  // Restaging fetches the new version; the stale copy can never hit.
  int staged = 0;
  ASSERT_TRUE(plane.stage(1, 2, [&] { ++staged; }).ok());
  sim.run();
  EXPECT_EQ(staged, 1);
  EXPECT_EQ(plane.stats().cache_hits, 0u);
  EXPECT_EQ(plane.stats().cache_misses, 2u);  // v0 fetch + fresh fetch
}

TEST(Plane, PrefetchedShardCountsAsUsefulOnDemand) {
  platform::Simulator sim;
  DataPlane plane(sim, small_plane(3));
  plane.put(1, 1e6, 0);
  ASSERT_TRUE(plane.prefetch(1, 2).ok());
  sim.run();
  EXPECT_EQ(plane.stats().prefetch_issued, 1u);
  bool staged = false;
  ASSERT_TRUE(plane.stage(1, 2, [&] { staged = true; }).ok());
  sim.run();
  EXPECT_TRUE(staged);
  EXPECT_EQ(plane.stats().prefetch_useful, 1u);
  EXPECT_EQ(plane.stats().transfers_issued, 1u);  // moved once, ahead
}

TEST(Plane, InvalidateReturnsLostObjectsAscending) {
  platform::Simulator sim;
  DataPlane plane(sim, small_plane(1));  // one node holds everything
  plane.put(7, 1e6, 0);
  plane.put(3, 1e6, 0);
  plane.put(5, 1e6, 0);
  EXPECT_EQ(plane.invalidate_node(0),
            (std::vector<ObjectId>{3, 5, 7}));
}

// ------------------------------------------- scheduler integration (E19) --

workflow::TaskGraph transfer_bound_graph() {
  // 7 lanes × 4 stages of cheap tasks with fat outputs on 4 workers:
  // locality is the dominant term.
  return workflow::TaskGraph::pipeline(4, 7, 1e7, 8e6);
}

std::vector<workflow::WorkerSpec> worker_pool(std::size_t n) {
  std::vector<workflow::WorkerSpec> workers;
  for (std::size_t i = 0; i < n; ++i) {
    workers.push_back({"w" + std::to_string(i), 10.0, 1.0, 10.0});
  }
  return workers;
}

TEST(PlaneScheduler, PlaneModeCompletesAndPopulatesCounters) {
  const workflow::TaskGraph graph = transfer_bound_graph();
  PlaneConfig plane = small_plane(4);
  workflow::SimulationOptions options;
  options.scheduler = workflow::SchedulerKind::kWorkStealing;
  options.data_plane = &plane;
  const auto outcome = simulate_schedule(graph, worker_pool(4), options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().tasks_completed, graph.size());
  EXPECT_GT(outcome.value().makespan_us, 0.0);
  const PlaneStats& stats = outcome.value().plane;
  EXPECT_GT(stats.local_hits + stats.cache_hits + stats.cache_misses, 0u);
  EXPECT_DOUBLE_EQ(outcome.value().bytes_transferred,
                   stats.bytes_fetched + stats.bytes_replicated);
}

TEST(PlaneScheduler, LocalityAwareFetchesStrictlyFewerBytes) {
  const workflow::TaskGraph graph = transfer_bound_graph();
  PlaneConfig plane = small_plane(4);
  workflow::SimulationOptions options;
  options.scheduler = workflow::SchedulerKind::kWorkStealing;
  options.data_plane = &plane;
  options.locality_aware = false;
  const auto blind = simulate_schedule(graph, worker_pool(4), options);
  options.locality_aware = true;
  const auto aware = simulate_schedule(graph, worker_pool(4), options);
  ASSERT_TRUE(blind.ok());
  ASSERT_TRUE(aware.ok());
  EXPECT_LT(aware.value().plane.bytes_fetched,
            blind.value().plane.bytes_fetched);
}

TEST(PlaneScheduler, PrefetchDepthActivatesPrefetching) {
  // Multi-input consumers: a reducer's inputs are scattered over the
  // mappers' nodes, so some always live away from its gravity target —
  // the shape prefetching exists for (single-input chains never
  // prefetch: the input is already at the target).
  const workflow::TaskGraph graph =
      workflow::TaskGraph::map_reduce(6, 3, 1e7, 1e7, 4e6);
  PlaneConfig plane = small_plane(4);
  workflow::SimulationOptions options;
  options.scheduler = workflow::SchedulerKind::kWorkStealing;
  options.data_plane = &plane;
  options.prefetch_depth = 1;
  const auto outcome = simulate_schedule(graph, worker_pool(4), options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().tasks_completed, graph.size());
  EXPECT_GT(outcome.value().plane.prefetch_issued, 0u);
}

TEST(PlaneScheduler, ReplicationAbsorbsCrashWithoutRecomputation) {
  Rng rng(3);
  const workflow::TaskGraph graph =
      workflow::TaskGraph::random_layered(5, 6, 2, rng, 2e8, 4e6);
  resilience::FaultPlan plan;
  plan.crash(/*node=*/1, /*at_us=*/3000.0, /*downtime_us=*/1e5);
  PlaneConfig single = small_plane(4, /*replication=*/1);
  PlaneConfig dual = small_plane(4, /*replication=*/2);
  workflow::SimulationOptions options;
  options.scheduler = workflow::SchedulerKind::kWorkStealing;
  options.fault_plan = &plan;
  options.data_plane = &single;
  const auto lone = simulate_schedule(graph, worker_pool(4), options);
  options.data_plane = &dual;
  const auto mirrored = simulate_schedule(graph, worker_pool(4), options);
  ASSERT_TRUE(lone.ok());
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(lone.value().tasks_completed, graph.size());
  EXPECT_EQ(mirrored.value().tasks_completed, graph.size());
  // A second replica keeps crashed outputs readable: recomputation (and
  // with it the crash penalty) shrinks.
  EXPECT_LE(mirrored.value().recomputed_tasks,
            lone.value().recomputed_tasks);
  EXPECT_GT(mirrored.value().plane.bytes_replicated, 0.0);
}

// Determinism: the same seeded run must produce byte-identical data-plane
// counters on every repetition, whatever the eviction policy — the cache
// uses logical sequence numbers, the simulator breaks ties by event seq,
// and placement is rendezvous-hashed.
class PlaneDeterminism : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(PlaneDeterminism, RepeatedRunsProduceIdenticalCounters) {
  Rng rng(11);
  const workflow::TaskGraph graph =
      workflow::TaskGraph::random_layered(4, 6, 3, rng, 5e7, 6e6);
  PlaneConfig plane = small_plane(4);
  plane.eviction = GetParam();
  plane.cache_bytes = 16.0 * 1024 * 1024;  // small enough to evict
  workflow::SimulationOptions options;
  options.scheduler = workflow::SchedulerKind::kWorkStealing;
  options.data_plane = &plane;
  options.prefetch_depth = 1;
  options.seed = 23;

  const auto first = simulate_schedule(graph, worker_pool(4), options);
  const auto second = simulate_schedule(graph, worker_pool(4), options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const PlaneStats& a = first.value().plane;
  const PlaneStats& b = second.value().plane;
  EXPECT_EQ(a.local_hits, b.local_hits);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.transfers_issued, b.transfers_issued);
  EXPECT_EQ(a.transfers_deduped, b.transfers_deduped);
  EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
  EXPECT_EQ(a.prefetch_useful, b.prefetch_useful);
  EXPECT_DOUBLE_EQ(a.bytes_fetched, b.bytes_fetched);
  EXPECT_DOUBLE_EQ(a.bytes_evicted, b.bytes_evicted);
  EXPECT_DOUBLE_EQ(first.value().makespan_us, second.value().makespan_us);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PlaneDeterminism,
    ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kLfu,
                      EvictionPolicy::kCostAware),
    [](const ::testing::TestParamInfo<EvictionPolicy>& info) {
      switch (info.param) {
        case EvictionPolicy::kLru: return std::string("Lru");
        case EvictionPolicy::kLfu: return std::string("Lfu");
        case EvictionPolicy::kCostAware: return std::string("CostAware");
      }
      return std::string("Unknown");
    });

// ----------------------------------------- eviction observer (storage) --

TEST(CacheEvict, CallbackReportsVictimMetadata) {
  Cache cache({/*capacity=*/10.0, EvictionPolicy::kLru});
  std::vector<std::pair<ShardKey, std::pair<double, double>>> seen;
  cache.set_on_evict([&](const ShardKey& key, double bytes, double cost) {
    seen.push_back({key, {bytes, cost}});
  });
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 6.0, 100.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{2, 0, 0}, 6.0, 200.0).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, (ShardKey{1, 0, 0}));
  EXPECT_DOUBLE_EQ(seen[0].second.first, 6.0);
  EXPECT_DOUBLE_EQ(seen[0].second.second, 100.0);
}

TEST(CacheEvict, LifecycleDropsDoNotFireCallback) {
  Cache cache({100.0, EvictionPolicy::kLru});
  int fired = 0;
  cache.set_on_evict([&](const ShardKey&, double, double) { ++fired; });
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 0}, 5.0, 1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{1, 0, 1}, 5.0, 1.0).ok());
  ASSERT_TRUE(cache.insert(ShardKey{2, 0, 0}, 5.0, 1.0).ok());
  EXPECT_TRUE(cache.erase(ShardKey{2, 0, 0}));
  EXPECT_EQ(cache.invalidate_object(1, /*version=*/1), 1u);
  cache.clear();
  EXPECT_EQ(fired, 0);  // erase/invalidate/clear are not evictions
}

// The observer must not perturb victim selection: an identical trace
// with and without a callback evicts the same keys in the same order,
// under every policy.
class CacheEvictOrder : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(CacheEvictOrder, CallbackDoesNotChangeVictimOrder) {
  const CacheConfig config{/*capacity=*/20.0, GetParam()};
  Cache observed(config);
  Cache baseline(config);
  std::vector<ShardKey> order;
  observed.set_on_evict(
      [&](const ShardKey& key, double, double) { order.push_back(key); });

  const auto drive = [](Cache& cache) {
    // Mixed insert/touch trace sized to force several evictions; the
    // costs/uses differ per key so each policy ranks them differently.
    for (std::uint64_t object = 1; object <= 8; ++object) {
      ASSERT_TRUE(cache
                      .insert(ShardKey{object, 0, 0}, 6.0,
                              static_cast<double>(object) * 50.0)
                      .ok());
      for (std::uint64_t back = 1; back <= 2 && back < object; ++back) {
        (void)cache.lookup(ShardKey{object - back, 0, 0});
      }
    }
  };
  drive(observed);
  drive(baseline);

  EXPECT_GE(order.size(), 3u);  // the trace actually evicted
  EXPECT_EQ(observed.stats().evictions, baseline.stats().evictions);
  EXPECT_DOUBLE_EQ(observed.stats().bytes_evicted,
                   baseline.stats().bytes_evicted);
  EXPECT_EQ(observed.stats().hits, baseline.stats().hits);
  EXPECT_EQ(observed.size(), baseline.size());
  // Same survivors: every key the observed cache kept, the baseline
  // kept, and each evicted key is gone from both.
  for (std::uint64_t object = 1; object <= 8; ++object) {
    EXPECT_EQ(observed.contains(ShardKey{object, 0, 0}),
              baseline.contains(ShardKey{object, 0, 0}));
  }
  for (const ShardKey& victim : order) {
    EXPECT_FALSE(observed.contains(victim));
    EXPECT_FALSE(baseline.contains(victim));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CacheEvictOrder,
    ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kLfu,
                      EvictionPolicy::kCostAware),
    [](const ::testing::TestParamInfo<EvictionPolicy>& info) {
      switch (info.param) {
        case EvictionPolicy::kLru: return std::string("Lru");
        case EvictionPolicy::kLfu: return std::string("Lfu");
        case EvictionPolicy::kCostAware: return std::string("CostAware");
      }
      return std::string("Unknown");
    });

// ------------------------------------------- disk tier under the plane --

/// Tier-enabled plane: RAM cache fits ~1.5 shards so a second distinct
/// object always demotes the first.
PlaneConfig tiered_plane(std::size_t n, double disk_bytes = 1e9) {
  PlaneConfig config = small_plane(n);
  config.cache_bytes = 1.5e6;
  config.storage.disk_capacity_bytes = disk_bytes;
  return config;
}

TEST(PlaneTier, EvictionDemotesAndNextMissPromotesLocally) {
  platform::Simulator sim;
  DataPlane plane(sim, tiered_plane(3));
  plane.put(1, 1e6, 0);
  plane.put(2, 1e6, 0);
  ASSERT_TRUE(plane.stage(1, 2, [] {}).ok());
  sim.run();
  ASSERT_TRUE(plane.stage(2, 2, [] {}).ok());  // evicts obj1 → disk
  sim.run();
  EXPECT_EQ(plane.stats().demotions, 1u);
  EXPECT_DOUBLE_EQ(plane.stats().bytes_demoted, 1e6);
  ASSERT_NE(plane.tier(2), nullptr);
  EXPECT_TRUE(plane.tier(2)->resident(ShardKey{1, 0, 0}));

  const double fetched_before = plane.stats().bytes_fetched;
  bool staged = false;
  ASSERT_TRUE(plane.stage(1, 2, [&] { staged = true; }).ok());
  sim.run();
  EXPECT_TRUE(staged);
  // Served by the local disk tier: no new remote bytes moved.
  EXPECT_EQ(plane.stats().tier_hits, 1u);
  EXPECT_DOUBLE_EQ(plane.stats().bytes_promoted, 1e6);
  EXPECT_DOUBLE_EQ(plane.stats().bytes_fetched, fetched_before);
}

TEST(PlaneTier, DemoteCostGateDropsCheapShards) {
  PlaneConfig config = tiered_plane(3);
  config.storage.demote_min_refetch_us = 1e12;  // nothing is worth disk
  platform::Simulator sim;
  DataPlane plane(sim, config);
  plane.put(1, 1e6, 0);
  plane.put(2, 1e6, 0);
  ASSERT_TRUE(plane.stage(1, 2, [] {}).ok());
  sim.run();
  ASSERT_TRUE(plane.stage(2, 2, [] {}).ok());
  sim.run();
  EXPECT_EQ(plane.stats().demotions, 0u);
  EXPECT_EQ(plane.stats().demote_rejected, 1u);
  EXPECT_FALSE(plane.tier(2)->resident(ShardKey{1, 0, 0}));
}

// Satellite (a) regression: crash the ONLY RAM holder of an object whose
// shard was demoted to another node's disk — the object is rescued, not
// lost, and a read recovers it from disk without recomputation.
TEST(PlaneTier, CrashOfOnlyRamHolderRescuesFromDisk) {
  platform::Simulator sim;
  DataPlane plane(sim, tiered_plane(3));
  plane.put(1, 1e6, 0);  // sole RAM replica on node 0
  plane.put(2, 1e6, 1);
  ASSERT_TRUE(plane.stage(1, 2, [] {}).ok());
  sim.run();
  ASSERT_TRUE(plane.stage(2, 2, [] {}).ok());  // obj1 demoted to tier 2
  sim.run();
  ASSERT_TRUE(plane.tier(2)->resident(ShardKey{1, 0, 0}));

  const std::vector<ObjectId> lost = plane.invalidate_node(0);
  EXPECT_TRUE(lost.empty());  // rescued by the disk copy, NOT lost
  EXPECT_EQ(plane.stats().objects_lost, 0u);
  EXPECT_EQ(plane.stats().disk_rescues, 1u);
  EXPECT_TRUE(plane.available(1));
  ASSERT_TRUE(plane.primary_node(1).ok());
  EXPECT_EQ(plane.primary_node(1).value(), 2u);  // the tier's node
  ASSERT_NE(plane.find(1), nullptr);
  EXPECT_EQ(plane.find(1)->version, 0u);  // no bump: nothing to recompute

  // And the object is actually readable — promoted from node 2's disk
  // and fetched to the reader.
  bool staged = false;
  ASSERT_TRUE(plane.stage(1, /*dst=*/1, [&] { staged = true; }).ok());
  sim.run();
  EXPECT_TRUE(staged);
  EXPECT_GE(plane.stats().tier_hits, 1u);
}

TEST(PlaneTier, CrashedNodesTierIsOfflineUntilRestore) {
  platform::Simulator sim;
  DataPlane plane(sim, tiered_plane(3));
  plane.put(1, 1e6, 0);
  plane.put(2, 1e6, 1);
  ASSERT_TRUE(plane.stage(1, 2, [] {}).ok());
  sim.run();
  ASSERT_TRUE(plane.stage(2, 2, [] {}).ok());
  sim.run();
  ASSERT_TRUE(plane.tier(2)->resident(ShardKey{1, 0, 0}));

  // Crash node 0 (RAM holder) AND node 2 (disk holder): now the object
  // really is lost — the disk copy exists but is unreachable.
  (void)plane.invalidate_node(2);
  const std::vector<ObjectId> lost = plane.invalidate_node(0);
  EXPECT_EQ(lost, (std::vector<ObjectId>{1}));
  EXPECT_FALSE(plane.available(1));

  // The disk outlives the crash: after restore the (now stale-versioned)
  // copy is still indexed, but the bumped version means it can never be
  // served — correctness over salvage.
  plane.restore_node(2);
  EXPECT_TRUE(plane.tier(2)->resident(ShardKey{1, 0, 0}));
  EXPECT_GT(plane.find(1)->version, 0u);
}

TEST(PlaneTier, DurableRecoveryRebuildsIdenticalCatalog) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("everest_plane_recover_" + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  PlaneConfig config = tiered_plane(3);
  config.storage.dir = dir;
  std::uint64_t fingerprint = 0;
  {
    platform::Simulator sim;
    DataPlane plane(sim, config);
    plane.put(1, 1e6, 0);
    plane.put(2, 1e6, 1);
    ASSERT_TRUE(plane.stage(1, 2, [] {}).ok());
    sim.run();
    ASSERT_TRUE(plane.stage(2, 2, [] {}).ok());  // obj1 → node 2's disk
    sim.run();
    ASSERT_TRUE(plane.checkpoint().ok());
    ASSERT_TRUE(plane.stage(1, 2, [] {}).ok());  // post-checkpoint traffic
    sim.run();
    fingerprint = plane.catalog().fingerprint();
  }  // process death

  platform::Simulator sim;
  DataPlane plane(sim, config);
  EXPECT_FALSE(plane.available(1));  // fresh instance knows nothing
  const auto report = plane.recover();
  ASSERT_TRUE(report.ok());
  // The E22 acceptance bar: replayed catalog byte-identical to the one
  // the dead process maintained online.
  EXPECT_EQ(plane.catalog().fingerprint(), fingerprint);
  EXPECT_TRUE(report.value().replay.snapshot_loaded);
  EXPECT_TRUE(plane.available(1));
  EXPECT_TRUE(plane.available(2));
  EXPECT_TRUE(plane.primary_node(1).ok());
  EXPECT_TRUE(plane.tier(2)->resident(ShardKey{1, 0, 0}));

  // Recovered state is live, not a museum: reads work immediately.
  bool staged = false;
  ASSERT_TRUE(plane.stage(1, 2, [&] { staged = true; }).ok());
  sim.run();
  EXPECT_TRUE(staged);
  fs::remove_all(dir);
}

TEST(PlaneTier, RecoverWithoutDirIsFailedPrecondition) {
  platform::Simulator sim;
  DataPlane plane(sim, tiered_plane(3));  // tier on, but not durable
  EXPECT_EQ(plane.recover().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(plane.checkpoint().ok());  // checkpoint is a benign no-op
}

}  // namespace
}  // namespace everest::data
