// Tests for the online variant specialization service (src/jit): the
// compile budget, hot-tuple detection from serving feature exports, the
// deterministic specialization pipeline, the versioned variant cache
// (publish / retire / evict / persist), and the budgeted, breaker-guarded
// compilation service end to end.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <tuple>

#include "jit/budget.hpp"
#include "jit/cache.hpp"
#include "jit/detector.hpp"
#include "jit/jit.hpp"
#include "jit/service.hpp"
#include "jit/specialize.hpp"
#include "jit/tuple.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "storage/env.hpp"

namespace everest::jit {
namespace {

KernelSpec test_spec(const std::string& kernel = "k") {
  KernelSpec spec;
  spec.kernel = kernel;
  spec.profile.flops = 4e6;
  spec.profile.bytes_read = 2e6;
  spec.profile.bytes_written = 5e5;
  spec.profile.live_bytes = 1 << 20;
  spec.base_dim = 64.0;
  return spec;
}

compiler::Variant generic_variant(const std::string& kernel,
                                  double latency_us) {
  compiler::Variant v;
  v.id = "cpu-generic";
  v.kernel = kernel;
  v.target = compiler::TargetKind::kCpu;
  v.threads = 1;
  v.layout = "aos";
  v.latency_us = latency_us;
  v.energy_uj = latency_us * 50.0;
  return v;
}

// ------------------------------------------------------- feature bucket --

TEST(FeatureBucket, RoundTripsThroughLog2Buckets) {
  EXPECT_EQ(serve::feature_bucket(1.0), 0);
  EXPECT_EQ(serve::feature_bucket(4.0), 2);
  EXPECT_EQ(serve::feature_bucket(0.25), -2);
  EXPECT_EQ(serve::feature_bucket(0.0), 0);   // degenerate input
  EXPECT_EQ(serve::feature_bucket(1e30), 16); // clamped
  EXPECT_DOUBLE_EQ(serve::feature_bucket_scale(2), 4.0);
  EXPECT_DOUBLE_EQ(serve::feature_bucket_scale(-2), 0.25);
  // A scale maps into the bucket whose representative scale re-buckets
  // to itself.
  for (int b = -8; b <= 8; ++b) {
    EXPECT_EQ(serve::feature_bucket(serve::feature_bucket_scale(b)), b);
  }
}

TEST(HotTupleTest, KeyHashAndOrdering) {
  const HotTuple a{"k", 2, "t1"};
  const HotTuple b{"k", 2, "t1"};
  const HotTuple c{"k", 3, "t1"};
  EXPECT_EQ(a.key(), "k|b2|t1");
  EXPECT_DOUBLE_EQ(a.scale(), 4.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(HotTupleHash{}(a), HotTupleHash{}(b));
  EXPECT_TRUE(a < c);
}

TEST(Detector, ParsesCanonicalFeatureKeys) {
  const std::string key = obs::Registry::key_of(
      "serve.feature.requests",
      {{"kernel", "aq"}, {"tenant", "t7"}, {"bucket", "-3"}});
  HotTuple tuple;
  ASSERT_TRUE(parse_feature_key(key, "serve.feature.requests", &tuple));
  EXPECT_EQ(tuple.kernel, "aq");
  EXPECT_EQ(tuple.tenant, "t7");
  EXPECT_EQ(tuple.bucket, -3);
  EXPECT_FALSE(parse_feature_key(key, "serve.feature.service_us", &tuple));
  EXPECT_FALSE(parse_feature_key("serve.feature.requests",
                                 "serve.feature.requests", &tuple));
}

// -------------------------------------------------------------- budget --

TEST(Budget, StartsFullDrainsAndRefills) {
  CompileBudget budget({/*compile_us_per_s=*/10'000.0, /*burst_us=*/20'000.0});
  EXPECT_DOUBLE_EQ(budget.available_us(0.0), 20'000.0);
  EXPECT_TRUE(budget.try_acquire(15'000.0, 0.0));
  EXPECT_FALSE(budget.try_acquire(15'000.0, 0.0));  // only 5k left
  EXPECT_EQ(budget.stats().denied, 1u);
  // One second refills 10k (capped at burst).
  EXPECT_TRUE(budget.try_acquire(15'000.0, 1e6));
  EXPECT_DOUBLE_EQ(budget.available_us(1e6), 0.0);
}

TEST(Budget, SettleRefundsOverestimateAndChargesOverrun) {
  CompileBudget budget({10'000.0, 20'000.0});
  ASSERT_TRUE(budget.try_acquire(10'000.0, 0.0));
  budget.settle(10'000.0, 2'000.0, 0.0);  // compile was cheaper
  EXPECT_DOUBLE_EQ(budget.available_us(0.0), 18'000.0);
  ASSERT_TRUE(budget.try_acquire(10'000.0, 0.0));
  budget.settle(10'000.0, 40'000.0, 0.0);  // massive overrun -> debt
  EXPECT_LT(budget.available_us(0.0), 0.0);
  EXPECT_FALSE(budget.try_acquire(1.0, 0.0));  // debt blocks new grants
  EXPECT_DOUBLE_EQ(budget.stats().settled_us, 42'000.0);
}

// ------------------------------------------------------------ detector --

TEST(Detector, SurfacesHotTupleWithRegret) {
  runtime::KnowledgeBase kb;
  ASSERT_TRUE(kb.load({generic_variant("k", 25.0)}).ok());

  serve::ServingMetrics metrics;
  // 40 requests of scale 4 (bucket 2) observed at 250us/request; the
  // generic variant promises 25 * 4 = 100us -> regret 150us.
  for (int i = 0; i < 40; ++i) {
    metrics.record_feature("k", "t1", 4.0, 250.0);
  }

  obs::Registry jit_registry;
  HotTupleDetector detector(&kb, &jit_registry);
  auto candidates = detector.scan(metrics.registry().snapshot(1e6));
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].tuple.kernel, "k");
  EXPECT_EQ(candidates[0].tuple.bucket, 2);
  EXPECT_EQ(candidates[0].tuple.tenant, "t1");
  EXPECT_EQ(candidates[0].signal.requests, 40u);
  EXPECT_NEAR(candidates[0].signal.mean_service_us, 250.0, 1e-6);
  EXPECT_NEAR(candidates[0].signal.regret_us, 150.0, 1e-6);
  EXPECT_NEAR(candidates[0].priority, 40 * 150.0, 1e-6);
  // The regret gauge is exported per tuple.
  const auto snap = jit_registry.snapshot();
  EXPECT_EQ(snap.counters.at("jit.detector.scans"), 1u);

  // Second scan with no new traffic: the window delta is empty.
  EXPECT_TRUE(detector.scan(metrics.registry().snapshot(2e6)).empty());
  EXPECT_EQ(detector.last_window_tuples(), 0u);
}

TEST(Detector, RespectsThresholdsAndCandidateCap) {
  runtime::KnowledgeBase kb;
  ASSERT_TRUE(kb.load({generic_variant("k", 25.0)}).ok());
  serve::ServingMetrics metrics;
  // Cold tuple: plenty of regret but only 5 requests.
  for (int i = 0; i < 5; ++i) metrics.record_feature("k", "cold", 4.0, 400.0);
  // Well-served tuple: hot but observed cost matches the promise.
  for (int i = 0; i < 100; ++i) {
    metrics.record_feature("k", "happy", 4.0, 100.0);
  }
  HotTupleDetector detector(&kb);
  EXPECT_TRUE(detector.scan(metrics.registry().snapshot(1e6)).empty());
  EXPECT_EQ(detector.last_window_tuples(), 2u);

  // max_candidates keeps only the best tuples.
  serve::ServingMetrics m2;
  for (int t = 0; t < 6; ++t) {
    for (int i = 0; i < 50 + 10 * t; ++i) {
      m2.record_feature("k", "t" + std::to_string(t), 4.0, 300.0);
    }
  }
  DetectorConfig config;
  config.max_candidates = 2;
  HotTupleDetector capped(&kb, nullptr, config);
  auto top = capped.scan(m2.registry().snapshot(1e6));
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].tuple.tenant, "t5");  // hottest first
  EXPECT_EQ(top[1].tuple.tenant, "t4");
}

// ---------------------------------------------------------- specialize --

TEST(Specialize, MintsShapeSpecializedParetoPicks) {
  const KernelSpec spec = test_spec();
  SpecializeRequest request;
  request.tuple = {"k", 2, "t1"};
  request.seed = 7;
  auto minted = specialize(spec, request);
  ASSERT_TRUE(minted.ok());
  ASSERT_FALSE(minted->variants.empty());
  EXPECT_LE(minted->variants.size(), 3u);
  EXPECT_GE(minted->pareto_size, 1u);
  EXPECT_GT(minted->dse_points, minted->pareto_size);
  for (const compiler::Variant& v : minted->variants) {
    EXPECT_EQ(v.kernel, "k");
    EXPECT_DOUBLE_EQ(v.specialized_scale, 4.0);
    EXPECT_GT(v.latency_us, 0.0);
    EXPECT_EQ(v.id.rfind("jit-k-b2-t1-v1-", 0), 0u) << v.id;
  }
}

TEST(Specialize, SpecializedBeatsGenericAtItsScale) {
  const KernelSpec spec = test_spec();
  SpecializeRequest request;
  request.tuple = {"k", 3, ""};
  auto minted = specialize(spec, request);
  ASSERT_TRUE(minted.ok());
  const double scale = request.tuple.scale();
  // Generic code = untiled AoS single thread (the conservative default).
  const double generic = estimate_shaped(spec, 1, 0, "aos", scale).latency_us;
  double best_minted = 1e300;
  for (const compiler::Variant& v : minted->variants) {
    best_minted = std::min(best_minted, estimate_variant(spec, v, scale).latency_us);
  }
  EXPECT_LT(best_minted, generic);
  // And the oracle is a lower bound on everything minted.
  EXPECT_GE(best_minted * (1.0 + 1e-9), oracle_latency_us(spec, scale));
}

TEST(Specialize, RejectsEmptyProfileAndKnobSpace) {
  KernelSpec empty;
  empty.kernel = "k";
  SpecializeRequest request;
  request.tuple = {"k", 0, ""};
  EXPECT_EQ(specialize(empty, request).status().code(),
            StatusCode::kInvalidArgument);
  KernelSpec no_knobs = test_spec();
  no_knobs.thread_candidates.clear();
  EXPECT_EQ(specialize(no_knobs, request).status().code(),
            StatusCode::kInvalidArgument);
}

// The determinism contract: byte-identical descriptor bytes for the same
// (tuple, seed) across independent runs — the warm-restart precondition.
class SpecializeDeterminism
    : public ::testing::TestWithParam<std::tuple<int, const char*, int>> {};

TEST_P(SpecializeDeterminism, ByteIdenticalDescriptorsAcrossReruns) {
  const auto [bucket, tenant, seed] = GetParam();
  SpecializeRequest request;
  request.tuple = {"k", bucket, tenant};
  request.seed = static_cast<std::uint64_t>(seed);
  request.version = 2;

  auto first = specialize(test_spec(), request);
  ASSERT_TRUE(first.ok());
  for (int rerun = 0; rerun < 3; ++rerun) {
    auto again = specialize(test_spec(), request);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(first->descriptor_json, again->descriptor_json);
    ASSERT_EQ(first->variants.size(), again->variants.size());
    for (std::size_t i = 0; i < first->variants.size(); ++i) {
      EXPECT_EQ(first->variants[i].id, again->variants[i].id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TupleSeedGrid, SpecializeDeterminism,
    ::testing::Values(std::make_tuple(0, "", 1), std::make_tuple(2, "t1", 1),
                      std::make_tuple(2, "t1", 99),
                      std::make_tuple(-3, "edge", 7),
                      std::make_tuple(6, "big", 42)));

// --------------------------------------------------------------- cache --

TEST(Cache, PublishHotSwapsAndRetiresPriorVersion) {
  runtime::KnowledgeBase kb;
  ASSERT_TRUE(kb.load({generic_variant("k", 25.0)}).ok());
  VariantCache cache(&kb);
  const HotTuple tuple{"k", 2, "t1"};
  EXPECT_EQ(cache.covers(tuple), 0u);

  SpecializeRequest request;
  request.tuple = tuple;
  auto v1 = specialize(test_spec(), request);
  ASSERT_TRUE(v1.ok());
  auto published = cache.publish(tuple, *v1, /*seed=*/0);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 1u);
  EXPECT_EQ(cache.covers(tuple), 1u);
  // The generic variant survives; minted ids are live.
  EXPECT_TRUE(kb.find("k", "cpu-generic").has_value());
  for (const compiler::Variant& v : v1->variants) {
    EXPECT_TRUE(kb.find("k", v.id).has_value());
  }

  // Re-mint at version 2: v1 ids retired, v2 live, epoch advanced.
  const std::uint64_t epoch_before = kb.epoch("k");
  request.version = 2;
  auto v2 = specialize(test_spec(), request);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(cache.publish(tuple, *v2, 0).ok());
  EXPECT_EQ(cache.covers(tuple), 2u);
  EXPECT_GT(kb.epoch("k"), epoch_before);
  for (const compiler::Variant& v : v1->variants) {
    EXPECT_FALSE(kb.find("k", v.id).has_value()) << v.id;
  }
  for (const compiler::Variant& v : v2->variants) {
    EXPECT_TRUE(kb.find("k", v.id).has_value()) << v.id;
  }
  EXPECT_EQ(cache.stats().publishes, 2u);
}

TEST(Cache, RejectsBadPublishes) {
  runtime::KnowledgeBase kb;
  VariantCache cache(&kb);
  const HotTuple tuple{"k", 2, "t1"};
  EXPECT_EQ(cache.publish(tuple, MintedVariants{}, 0).status().code(),
            StatusCode::kInvalidArgument);
  MintedVariants wrong;
  wrong.variants.push_back(generic_variant("other-kernel", 10.0));
  EXPECT_EQ(cache.publish(tuple, wrong, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Cache, LruEvictionRetiresVariants) {
  runtime::KnowledgeBase kb;
  CacheConfig config;
  config.max_entries = 2;
  VariantCache cache(&kb, nullptr, config);

  std::vector<std::vector<compiler::Variant>> published;
  for (int b = 0; b < 3; ++b) {
    const HotTuple tuple{"k", b, "t"};
    SpecializeRequest request;
    request.tuple = tuple;
    auto minted = specialize(test_spec(), request);
    ASSERT_TRUE(minted.ok());
    ASSERT_TRUE(cache.publish(tuple, *minted, 0).ok());
    published.push_back(minted->variants);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The LRU victim (bucket 0) is gone from cache AND knowledge base.
  EXPECT_EQ(cache.covers({"k", 0, "t"}), 0u);
  for (const compiler::Variant& v : published[0]) {
    EXPECT_FALSE(kb.find("k", v.id).has_value());
  }
  for (const compiler::Variant& v : published[2]) {
    EXPECT_TRUE(kb.find("k", v.id).has_value());
  }
}

TEST(Cache, PersistAndWarmRestartRoundtrip) {
  const std::string path =
      ::testing::TempDir() + "/jitcache_roundtrip.json";
  std::remove(path.c_str());

  runtime::KnowledgeBase kb;
  VariantCache cache(&kb);
  const HotTuple t1{"k", 2, "a"};
  const HotTuple t2{"k", 4, "b"};
  for (const HotTuple& t : {t1, t2}) {
    SpecializeRequest request;
    request.tuple = t;
    auto minted = specialize(test_spec(), request);
    ASSERT_TRUE(minted.ok());
    ASSERT_TRUE(cache.publish(t, *minted, /*seed=*/42).ok());
  }
  ASSERT_TRUE(cache.save(storage::Env::posix(), path).ok());

  // Fresh process: new KB, new cache, no DSE run.
  runtime::KnowledgeBase kb2;
  VariantCache cache2(&kb2);
  auto restored = cache2.load(storage::Env::posix(), path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, 2u);
  EXPECT_EQ(cache2.covers(t1), 1u);
  EXPECT_EQ(cache2.covers(t2), 1u);
  const auto entry = cache2.lookup(t1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->seed, 42u);
  for (const compiler::Variant& v : entry->variants) {
    const auto live = kb2.find("k", v.id);
    ASSERT_TRUE(live.has_value());
    EXPECT_DOUBLE_EQ(live->specialized_scale, 4.0);
  }
  // Missing file is a clean NOT_FOUND (cold start).
  VariantCache cache3(&kb2);
  EXPECT_EQ(cache3.load(storage::Env::posix(), path + ".nope").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- service --

ServiceConfig tight_budget_config() {
  ServiceConfig config;
  config.estimated_compile_us = 5'000.0;
  config.budget.compile_us_per_s = 5'000.0;
  config.budget.burst_us = 5'000.0;
  return config;
}

HotCandidate candidate(const HotTuple& tuple, double priority) {
  HotCandidate c;
  c.tuple = tuple;
  c.priority = priority;
  return c;
}

TEST(Service, CompilesQueueBestPriorityFirstUnderBudget) {
  runtime::KnowledgeBase kb;
  VariantCache cache(&kb);
  CompilationService service(&cache, nullptr, nullptr, tight_budget_config());
  service.register_kernel(test_spec());

  ASSERT_EQ(service.enqueue({candidate({"k", 2, "hot"}, 100.0),
                             candidate({"k", 3, "warm"}, 50.0)}),
            2u);
  EXPECT_EQ(service.queue_depth(), 2u);

  // Burst covers exactly one compile: the hot tuple goes first, the warm
  // one stays queued when the bucket empties.
  EXPECT_EQ(service.run_pending(/*now_us=*/0.0), 1u);
  EXPECT_EQ(cache.covers({"k", 2, "hot"}), 1u);
  EXPECT_EQ(cache.covers({"k", 3, "warm"}), 0u);
  EXPECT_EQ(service.queue_depth(), 1u);
  EXPECT_EQ(service.stats().budget_denied, 1u);

  // A second later the bucket refilled; the pump finishes the queue.
  EXPECT_EQ(service.run_pending(1e6), 1u);
  EXPECT_EQ(cache.covers({"k", 3, "warm"}), 1u);
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.stats().compiles_ok, 2u);
}

TEST(Service, BoundedQueueDropsLowestPriorityAndDedups) {
  runtime::KnowledgeBase kb;
  VariantCache cache(&kb);
  ServiceConfig config = tight_budget_config();
  config.queue_capacity = 2;
  CompilationService service(&cache, nullptr, nullptr, config);
  service.register_kernel(test_spec());

  service.enqueue({candidate({"k", 1, "a"}, 10.0)});
  service.enqueue({candidate({"k", 1, "a"}, 10.0)});  // duplicate ignored
  EXPECT_EQ(service.queue_depth(), 1u);
  service.enqueue({candidate({"k", 2, "b"}, 30.0),
                   candidate({"k", 3, "c"}, 20.0)});
  EXPECT_EQ(service.queue_depth(), 2u);  // "a" (priority 10) dropped
  EXPECT_EQ(service.stats().dropped_full, 1u);
  EXPECT_EQ(service.run_pending(0.0), 1u);
  EXPECT_EQ(cache.covers({"k", 2, "b"}), 1u);  // best priority compiled
}

TEST(Service, SkipsTuplesAlreadyCovered) {
  runtime::KnowledgeBase kb;
  VariantCache cache(&kb);
  CompilationService service(&cache, nullptr, nullptr, ServiceConfig{});
  service.register_kernel(test_spec());
  const HotTuple tuple{"k", 2, "t"};
  ASSERT_TRUE(service.compile_now(tuple, 0.0).ok());
  EXPECT_EQ(service.enqueue({candidate(tuple, 99.0)}), 0u);
  EXPECT_EQ(service.stats().dropped_covered, 1u);
}

TEST(Service, BreakerTripsOnRepeatedCompileFailure) {
  runtime::KnowledgeBase kb;
  VariantCache cache(&kb);
  ServiceConfig config;
  config.breaker.failure_threshold = 3;
  CompilationService service(&cache, nullptr, nullptr, config);
  // A kernel whose spec cannot compile (empty profile).
  KernelSpec broken;
  broken.kernel = "bad";
  service.register_kernel(broken);

  const HotTuple tuple{"bad", 1, "t"};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(service.compile_now(tuple, 0.0).status().code(),
              StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(service.breakers().state("jit", tuple.key()),
            resilience::BreakerState::kOpen);
  // While open the tuple is dropped without burning budget on it.
  EXPECT_EQ(service.compile_now(tuple, 0.0).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().dropped_breaker, 1u);
  EXPECT_EQ(service.stats().compiles_failed, 3u);
  // Serving is untouched: the kernel keeps whatever variants it had
  // (here none were ever replaced — degraded mode is "generic only").
  EXPECT_EQ(service.compile_now({"bad", 2, "t"}, 0.0).status().code(),
            StatusCode::kInvalidArgument);  // other tuples still tried

  // Unregistered kernels fail cleanly too.
  EXPECT_EQ(service.compile_now({"ghost", 0, ""}, 0.0).status().code(),
            StatusCode::kNotFound);
}

// ------------------------------------------------- JitService (facade) --

TEST(JitServiceTest, TickClosesDetectCompilePublishLoop) {
  runtime::KnowledgeBase kb;
  ASSERT_TRUE(kb.load({generic_variant("k", 25.0)}).ok());
  serve::ServingMetrics metrics;
  for (int i = 0; i < 64; ++i) metrics.record_feature("k", "t1", 4.0, 300.0);

  obs::Registry jit_registry;
  JitService jit(&kb, &metrics.registry(), &jit_registry);
  jit.register_kernel(test_spec());

  EXPECT_EQ(jit.tick(/*now_us=*/1e6), 1u);
  EXPECT_EQ(jit.cache().covers({"k", 2, "t1"}), 1u);
  // The minted variants are selectable at the tuple's scale.
  bool specialized_live = false;
  for (const compiler::Variant& v : *kb.variants_for("k")) {
    if (v.specialized_scale > 0.0) specialized_live = true;
  }
  EXPECT_TRUE(specialized_live);
  const auto snap = jit_registry.snapshot();
  EXPECT_EQ(snap.counters.at("jit.compile.ok"), 1u);
  EXPECT_GE(snap.histograms.at("jit.compile_us").count, 1u);

  // A second tick sees no fresh traffic and mints nothing new.
  EXPECT_EQ(jit.tick(2e6), 0u);
}

TEST(JitServiceTest, WarmRestartRestoresCoverageWithoutCompiling) {
  const std::string path = ::testing::TempDir() + "/jit_warm_restart.json";
  std::remove(path.c_str());
  JitConfig config;
  config.cache_path = path;

  serve::ServingMetrics metrics;
  for (int i = 0; i < 64; ++i) metrics.record_feature("k", "t1", 4.0, 300.0);

  {
    runtime::KnowledgeBase kb;
    ASSERT_TRUE(kb.load({generic_variant("k", 25.0)}).ok());
    JitService jit(&kb, &metrics.registry(), nullptr, nullptr,
                   storage::Env::posix(), config);
    jit.register_kernel(test_spec());
    ASSERT_EQ(jit.tick(1e6), 1u);
    ASSERT_TRUE(jit.persist().ok());
  }

  // Restarted process: coverage is back before any compile runs.
  runtime::KnowledgeBase kb2;
  ASSERT_TRUE(kb2.load({generic_variant("k", 25.0)}).ok());
  JitService jit2(&kb2, &metrics.registry(), nullptr, nullptr,
                  storage::Env::posix(), config);
  jit2.register_kernel(test_spec());
  auto restored = jit2.warm_restart();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, 1u);
  EXPECT_EQ(jit2.cache().covers({"k", 2, "t1"}), 1u);
  EXPECT_EQ(jit2.service().stats().compiles_ok, 0u);
  bool specialized_live = false;
  for (const compiler::Variant& v : *kb2.variants_for("k")) {
    if (v.specialized_scale > 0.0) specialized_live = true;
  }
  EXPECT_TRUE(specialized_live);
  std::remove(path.c_str());
}

TEST(JitServiceTest, BackgroundThreadStartStopIsClean) {
  runtime::KnowledgeBase kb;
  ASSERT_TRUE(kb.load({generic_variant("k", 25.0)}).ok());
  serve::ServingMetrics metrics;
  for (int i = 0; i < 64; ++i) metrics.record_feature("k", "t1", 4.0, 300.0);
  JitConfig config;
  config.scan_period_us = 1'000.0;
  JitService jit(&kb, &metrics.registry(), nullptr, nullptr, nullptr, config);
  jit.register_kernel(test_spec());
  jit.start();
  jit.start();  // idempotent
  for (int i = 0; i < 200 && jit.cache().covers({"k", 2, "t1"}) == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  jit.stop();
  jit.stop();  // idempotent
  EXPECT_EQ(jit.cache().covers({"k", 2, "t1"}), 1u);
}

}  // namespace
}  // namespace everest::jit
