// Tests for the platform layer: link models, the discrete-event core,
// node/platform specs, and the variant executor.
#include <gtest/gtest.h>

#include <vector>

#include "platform/desim.hpp"
#include "platform/executor.hpp"
#include "platform/links.hpp"
#include "platform/node.hpp"

namespace everest::platform {
namespace {

// ----------------------------------------------------------------- Links --

TEST(Links, TransferTimeHasLatencyAndBandwidthTerms) {
  LinkModel l = LinkModel::pcie3();
  EXPECT_DOUBLE_EQ(l.transfer_us(0), 0.0);
  const double small = l.transfer_us(1);
  EXPECT_NEAR(small, l.latency_us, 0.01);
  // 12 GB/s → 12000 B/us: 12 MB ≈ 1000 us + latency.
  EXPECT_NEAR(l.transfer_us(12e6), 1000.0 + l.latency_us, 1.0);
}

TEST(Links, CoherentLinkCheaperForSmallTransfers) {
  LinkModel capi = LinkModel::opencapi();
  LinkModel pcie = LinkModel::pcie3();
  EXPECT_LT(capi.transfer_us(256), pcie.transfer_us(256));
  // Effective throughput approaches nominal for large transfers.
  EXPECT_GT(capi.effective_gbps(256e6), 0.95 * capi.bandwidth_gbps);
  EXPECT_LT(capi.effective_gbps(1024), 0.5 * capi.bandwidth_gbps);
}

TEST(Links, PacketOverheadHurtsNetworkLinks) {
  LinkModel tcp = LinkModel::tcp_datacenter();
  LinkModel udp = LinkModel::udp_datacenter();
  // Same bytes: TCP pays more per packet.
  EXPECT_GT(tcp.transfer_us(1e6), udp.transfer_us(1e6));
  // Effective bandwidth strictly below nominal due to packetization.
  EXPECT_LT(tcp.effective_gbps(1e8), tcp.bandwidth_gbps * 0.85);
}

TEST(Links, LocalNvmePresetModelsAStorageDevice) {
  LinkModel nvme = LinkModel::local_nvme();
  EXPECT_EQ(nvme.name, "nvme");
  // A small read is dominated by device latency (~80 µs class), far
  // above the coherent bus but below a WAN round trip.
  EXPECT_GT(nvme.transfer_us(4096), LinkModel::pcie3().transfer_us(4096));
  EXPECT_NEAR(nvme.transfer_us(1), nvme.latency_us, 0.01);
  // Sustained sequential: 3.2 GB/s → 1 GB in ~312 ms + latency.
  EXPECT_NEAR(nvme.transfer_us(1e9), 1e9 / 3200.0 + nvme.latency_us, 1.0);
  // Slower than the datacenter network for bulk (why promotion from a
  // LOCAL tier must still beat a remote RAM fetch on latency, not
  // bandwidth alone).
  EXPECT_LT(nvme.bandwidth_gbps,
            LinkModel::udp_datacenter().bandwidth_gbps);
}

TEST(Links, CrossoverBusVsNetwork) {
  // Small transfers favor the coherent bus by a wide margin; large
  // transfers narrow the gap (both bandwidth-dominated).
  LinkModel capi = LinkModel::opencapi();
  LinkModel udp = LinkModel::udp_datacenter();
  const double ratio_small = udp.transfer_us(1024) / capi.transfer_us(1024);
  const double ratio_large = udp.transfer_us(1e9) / capi.transfer_us(1e9);
  EXPECT_GT(ratio_small, 10.0);
  EXPECT_LT(ratio_large, 4.0);
}

// ----------------------------------------------------------------- Desim --

TEST(Desim, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] { order.push_back(2); });
  sim.schedule(5, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(3); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(Desim, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(5, [&] { order.push_back(1); });
  sim.schedule(5, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Desim, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth > 0) sim.schedule(1, [&, depth] { chain(depth - 1); });
  };
  sim.schedule(0, [&] { chain(4); });
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Desim, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule(5, [&] { ++fired; });
  sim.schedule(50, [&] { ++fired; });
  sim.run(10);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Desim, ResourceQueuesWhenSaturated) {
  Simulator sim;
  SimResource res(sim, 2);
  std::vector<double> start_times;
  auto job = [&](double service) {
    res.acquire([&, service] {
      start_times.push_back(sim.now());
      sim.schedule(service, [&] { res.release(); });
    });
  };
  sim.schedule(0, [&] { job(10); });
  sim.schedule(0, [&] { job(10); });
  sim.schedule(0, [&] { job(10); });  // must wait for a release at t=10
  sim.run();
  ASSERT_EQ(start_times.size(), 3u);
  EXPECT_DOUBLE_EQ(start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(start_times[1], 0.0);
  EXPECT_DOUBLE_EQ(start_times[2], 10.0);
}

TEST(Desim, ResourceUtilizationAccounting) {
  Simulator sim;
  SimResource res(sim, 2);
  res.add_busy_time(30);
  res.add_busy_time(10);
  EXPECT_DOUBLE_EQ(res.utilization(40), 0.5);
  EXPECT_DOUBLE_EQ(res.utilization(0), 0.0);
}

// ------------------------------------------------------------------ Node --

TEST(Node, ReferencePlatformShape) {
  PlatformSpec spec = PlatformSpec::everest_reference(2, 4, 2);
  ASSERT_EQ(spec.nodes.size(), 4u);  // 2 cloud + 2 edge
  const NodeSpec* p9 = spec.find("p9-0");
  ASSERT_NE(p9, nullptr);
  EXPECT_EQ(p9->tier, Tier::kCloud);
  // 1 bus-attached + 4 disaggregated on the first cloud node.
  EXPECT_EQ(p9->fpgas.size(), 5u);
  int network = 0;
  for (const FpgaSlot& slot : p9->fpgas) network += slot.network_attached;
  EXPECT_EQ(network, 4);
  const NodeSpec* edge = spec.find("edge-0");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->tier, Tier::kInnerEdge);
  EXPECT_EQ(edge->cpu.name, "Edge-ARM");
  EXPECT_EQ(spec.find("nope"), nullptr);
}

TEST(Node, LinkSelectionByTier) {
  PlatformSpec spec = PlatformSpec::everest_reference(2, 0, 1);
  const NodeSpec& c0 = *spec.find("p9-0");
  const NodeSpec& c1 = *spec.find("p9-1");
  const NodeSpec& e0 = *spec.find("edge-0");
  EXPECT_EQ(spec.link_between(c0, c0).name, "dram");
  EXPECT_EQ(spec.link_between(c0, c1).name, "udp");
  EXPECT_EQ(spec.link_between(c0, e0).name, "wan");
  EXPECT_EQ(spec.link_between(e0, c0).name, "wan");
}

TEST(Node, ReconfigCostOnlyWhenRoleChanges) {
  FpgaSlot slot;
  slot.reconfig_ms_per_mib = 5.0;
  slot.role_bitstream_mib = 10.0;
  EXPECT_DOUBLE_EQ(slot.reconfig_us("k1"), 50000.0);
  slot.current_role = "k1";
  EXPECT_DOUBLE_EQ(slot.reconfig_us("k1"), 0.0);
  EXPECT_GT(slot.reconfig_us("k2"), 0.0);
}

// -------------------------------------------------------------- Executor --

compiler::Variant cpu_variant() {
  compiler::Variant v;
  v.id = "cpu-t8";
  v.kernel = "k";
  v.target = compiler::TargetKind::kCpu;
  v.latency_us = 100.0;
  v.energy_uj = 5000.0;
  v.bytes_in = 1e6;
  v.bytes_out = 1e5;
  return v;
}

compiler::Variant fpga_variant(const std::string& device) {
  compiler::Variant v;
  v.id = "fpga-u4";
  v.kernel = "k";
  v.target = compiler::TargetKind::kFpga;
  v.device = device;
  v.latency_us = 20.0;
  v.energy_uj = 800.0;
  v.bytes_in = 1e6;
  v.bytes_out = 1e5;
  return v;
}

TEST(Executor, CpuExecutionScalesWithNodeStrength) {
  PlatformSpec spec = PlatformSpec::everest_reference(1, 0, 1);
  auto on_cloud =
      execute_on_cpu(spec, *spec.find("p9-0"), cpu_variant());
  auto on_edge = execute_on_cpu(spec, *spec.find("edge-0"), cpu_variant());
  ASSERT_TRUE(on_cloud.ok() && on_edge.ok());
  EXPECT_DOUBLE_EQ(on_cloud->compute_us, 100.0);  // generated on POWER9 model
  EXPECT_GT(on_edge->compute_us, on_cloud->compute_us * 5);  // weak CPU
  EXPECT_DOUBLE_EQ(on_cloud->transfer_in_us, 0.0);
}

TEST(Executor, RemoteDataPaysInterNodeLink) {
  PlatformSpec spec = PlatformSpec::everest_reference(2, 0, 0);
  ExecutionContext ctx;
  ctx.data_home = "p9-1";
  auto local = execute_on_cpu(spec, *spec.find("p9-0"), cpu_variant());
  auto remote = execute_on_cpu(spec, *spec.find("p9-0"), cpu_variant(), ctx);
  ASSERT_TRUE(local.ok() && remote.ok());
  EXPECT_GT(remote->transfer_in_us, 50.0);  // ~1 MB over UDP DC link
  EXPECT_GT(remote->total_us(), local->total_us());
}

TEST(Executor, FpgaOffloadPaysLinkAndReconfig) {
  PlatformSpec spec = PlatformSpec::everest_reference(1, 1, 0);
  NodeSpec& node = *spec.find("p9-0");
  compiler::Variant v = fpga_variant("P9-VU9P");
  FpgaSlot* slot = find_slot(node, v);
  ASSERT_NE(slot, nullptr);
  auto first = execute_on_fpga(spec, node, *slot, v);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_GT(first->reconfig_us, 1e5);  // cold role load
  EXPECT_GT(first->transfer_in_us, 0.0);
  auto second = execute_on_fpga(spec, node, *slot, v);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->reconfig_us, 0.0);  // role cached
  EXPECT_LT(second->total_us(), first->total_us());
}

TEST(Executor, NetworkAttachedSlotUsesUdpLink) {
  PlatformSpec spec = PlatformSpec::everest_reference(1, 1, 0);
  NodeSpec& node = *spec.find("p9-0");
  compiler::Variant bus = fpga_variant("P9-VU9P");
  compiler::Variant net = fpga_variant("cloudFPGA-KU060");
  FpgaSlot* bus_slot = find_slot(node, bus);
  FpgaSlot* net_slot = find_slot(node, net);
  ASSERT_NE(bus_slot, nullptr);
  ASSERT_NE(net_slot, nullptr);
  EXPECT_TRUE(net_slot->network_attached);
  auto bus_run = execute_on_fpga(spec, node, *bus_slot, bus);
  auto net_run = execute_on_fpga(spec, node, *net_slot, net);
  ASSERT_TRUE(bus_run.ok() && net_run.ok());
  // Same payload: the network slot pays more for data movement.
  EXPECT_GT(net_run->transfer_in_us, bus_run->transfer_in_us * 2);
}

TEST(Executor, MismatchesRejected) {
  PlatformSpec spec = PlatformSpec::everest_reference(1, 0, 0);
  NodeSpec& node = *spec.find("p9-0");
  auto bad1 = execute_on_cpu(spec, node, fpga_variant("P9-VU9P"));
  EXPECT_EQ(bad1.status().code(), StatusCode::kInvalidArgument);
  compiler::Variant wrong_dev = fpga_variant("Edge-ZU7EV");
  FpgaSlot& slot = node.fpgas[0];
  auto bad2 = execute_on_fpga(spec, node, slot, wrong_dev);
  EXPECT_EQ(bad2.status().code(), StatusCode::kFailedPrecondition);
  auto bad3 = execute_on_cpu(spec, node, cpu_variant());
  ASSERT_TRUE(bad3.ok());
}

TEST(Executor, ReconfigDisabledFailsOnColdSlot) {
  PlatformSpec spec = PlatformSpec::everest_reference(1, 0, 0);
  NodeSpec& node = *spec.find("p9-0");
  compiler::Variant v = fpga_variant("P9-VU9P");
  ExecutionContext ctx;
  ctx.allow_reconfig = false;
  auto run = execute_on_fpga(spec, node, node.fpgas[0], v, ctx);
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Links, DegradedScalesLatencyAndBandwidth) {
  LinkModel pcie = LinkModel::pcie3();
  LinkModel bad = pcie.degraded(4.0);
  EXPECT_DOUBLE_EQ(bad.latency_us, pcie.latency_us * 4.0);
  EXPECT_DOUBLE_EQ(bad.bandwidth_gbps, pcie.bandwidth_gbps / 4.0);
  EXPECT_NE(bad.name.find("degraded"), std::string::npos);
  EXPECT_GT(bad.transfer_us(1e6), pcie.transfer_us(1e6) * 3.9);
  // Severity 1 is the identity: same numbers, same name.
  LinkModel same = pcie.degraded(1.0);
  EXPECT_DOUBLE_EQ(same.latency_us, pcie.latency_us);
  EXPECT_EQ(same.name, pcie.name);
}

// Fair-share regression: concurrent payloads on one link must share its
// bandwidth instead of each enjoying the full rate.

TEST(LinkChannelTest, SoloTransferMatchesClosedForm) {
  Simulator sim;
  const LinkModel model = LinkModel::udp_datacenter();
  LinkChannel channel(sim, model);
  double done_at = -1.0;
  channel.transfer(1e6, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, model.transfer_us(1e6));
  EXPECT_EQ(channel.transfers_completed(), 1u);
  EXPECT_DOUBLE_EQ(channel.bytes_moved(), 1e6);
  EXPECT_EQ(channel.active(), 0u);
}

TEST(LinkChannelTest, ConcurrentTransfersShareBandwidth) {
  Simulator sim;
  const LinkModel model = LinkModel::udp_datacenter();
  LinkChannel channel(sim, model);
  double first = -1.0, second = -1.0;
  channel.transfer(1e6, [&] { first = sim.now(); });
  channel.transfer(1e6, [&] { second = sim.now(); });
  sim.run();
  const double solo = model.transfer_us(1e6);
  // Neither payload may finish in solo time: the link is shared, not
  // replicated per flow (the bug this test pins down).
  EXPECT_GT(first, solo);
  EXPECT_GT(second, solo);
  // Two equal payloads at half rate each finish together, at roughly
  // setup + twice the solo payload time — never later than full
  // serialization.
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_LE(second, 2.0 * solo + 1e-6);
  EXPECT_GT(channel.busy_flow_us(), 0.0);
}

TEST(LinkChannelTest, LateArrivalCongestsTheRemainder) {
  Simulator sim;
  const LinkModel model = LinkModel::udp_datacenter();
  LinkChannel channel(sim, model);
  double big_done = -1.0;
  channel.transfer(4e6, [&] { big_done = sim.now(); });
  // A second payload arrives midway through the first.
  sim.schedule(model.transfer_us(4e6) / 2.0,
               [&] { channel.transfer(4e6, [] {}); });
  sim.run();
  // The first transfer is slowed only for its second half.
  EXPECT_GT(big_done, model.transfer_us(4e6));
  EXPECT_LT(big_done, 2.0 * model.transfer_us(4e6));
}

TEST(LinkChannelTest, DeterministicCompletionOrder) {
  auto run_once = [] {
    Simulator sim;
    LinkChannel channel(sim, LinkModel::tcp_datacenter());
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
      channel.transfer(1e5 * (4 - i), [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Executor, FailedSlotIsUnavailable) {
  PlatformSpec spec = PlatformSpec::everest_reference(1, 1, 0);
  NodeSpec& node = *spec.find("p9-0");
  compiler::Variant v = fpga_variant("P9-VU9P");
  FpgaSlot* slot = find_slot(node, v);
  ASSERT_NE(slot, nullptr);
  slot->failed = true;
  auto run = execute_on_fpga(spec, node, *slot, v);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
  // Placement skips failed slots entirely.
  EXPECT_EQ(find_slot(node, v), nullptr);
}

TEST(Executor, FindSlotPrefersWarmRole) {
  PlatformSpec spec = PlatformSpec::everest_reference(1, 2, 0);
  NodeSpec& node = *spec.find("p9-0");
  compiler::Variant v = fpga_variant("cloudFPGA-KU060");
  node.fpgas[2].current_role = "k";  // second cloudFPGA already holds role k
  FpgaSlot* slot = find_slot(node, v);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->id, node.fpgas[2].id);
}

}  // namespace
}  // namespace everest::platform
