// Tests for the DSL layer: einsum parsing/inference, annotations, the
// tensor-expression eDSL, and the workflow eDSL.
#include <gtest/gtest.h>

#include "dsl/einsum.hpp"
#include "dsl/tensor_expr.hpp"
#include "dsl/workflow_dsl.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace everest::dsl {
namespace {

// ---------------------------------------------------------------- Einsum --

TEST(Einsum, ParsesMatmulSpec) {
  auto spec = parse_einsum("ij,jk->ik");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->inputs.size(), 2u);
  EXPECT_EQ(spec->output, "ik");
  EXPECT_EQ(spec->all_indices(), "ijk");
  EXPECT_EQ(spec->contracted_indices(), "j");
  EXPECT_EQ(spec->to_string(), "ij,jk->ik");
}

TEST(Einsum, ParsesReductionAndOuterProduct) {
  auto red = parse_einsum("ij->i");
  ASSERT_TRUE(red.ok());
  EXPECT_EQ(red->contracted_indices(), "j");
  auto outer = parse_einsum("i,j->ij");
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->contracted_indices(), "");
}

TEST(Einsum, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_einsum("ij,jk").ok());        // no arrow
  EXPECT_FALSE(parse_einsum("iJ->i").ok());        // uppercase
  EXPECT_FALSE(parse_einsum("ii->i").ok());        // trace shorthand
  EXPECT_FALSE(parse_einsum("ij,->ij").ok());      // empty operand
  EXPECT_FALSE(parse_einsum("ij->ik").ok());       // unknown output index
}

TEST(Einsum, InfersShapes) {
  auto spec = parse_einsum("ij,jk->ik").value();
  auto shape = infer_output_shape(spec, {{4, 5}, {5, 7}});
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(*shape, (std::vector<std::int64_t>{4, 7}));
  auto flops = contraction_flops(spec, {{4, 5}, {5, 7}});
  ASSERT_TRUE(flops.ok());
  EXPECT_EQ(*flops, 4 * 5 * 7);
}

TEST(Einsum, DetectsInconsistentExtents) {
  auto spec = parse_einsum("ij,jk->ik").value();
  auto bad = infer_output_shape(spec, {{4, 5}, {6, 7}});
  EXPECT_FALSE(bad.ok());
  auto rank = infer_output_shape(spec, {{4, 5, 9}, {5, 7}});
  EXPECT_FALSE(rank.ok());
  auto count = infer_output_shape(spec, {{4, 5}});
  EXPECT_FALSE(count.ok());
}

TEST(Einsum, BatchedContraction) {
  auto spec = parse_einsum("bij,bjk->bik");
  ASSERT_TRUE(spec.ok());
  auto shape = infer_output_shape(*spec, {{8, 4, 5}, {8, 5, 6}});
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(*shape, (std::vector<std::int64_t>{8, 4, 6}));
}

// ----------------------------------------------------------- Annotations --

TEST(Annotations, RoundTripThroughAttrs) {
  DataAnnotations a;
  a.volume_mb = 120.5;
  a.locality = Locality::kStreaming;
  a.confidential = true;
  a.integrity = true;
  a.provenance = "wind-sensor";
  ir::AttrMap attrs;
  a.attach_to(attrs);
  DataAnnotations b = DataAnnotations::from_attrs(attrs);
  EXPECT_DOUBLE_EQ(b.volume_mb, 120.5);
  EXPECT_EQ(b.locality, Locality::kStreaming);
  EXPECT_TRUE(b.confidential);
  EXPECT_TRUE(b.integrity);
  EXPECT_EQ(b.provenance, "wind-sensor");
}

TEST(Annotations, DefaultsWhenAbsent) {
  DataAnnotations d = DataAnnotations::from_attrs({});
  EXPECT_DOUBLE_EQ(d.volume_mb, 0.0);
  EXPECT_EQ(d.locality, Locality::kResident);
  EXPECT_FALSE(d.confidential);
}

// ------------------------------------------------------------ Tensor DSL --

TEST(TensorDsl, ShapeInferenceThroughExpressions) {
  TensorProgram p("k");
  auto x = p.input("x", {4, 8});
  auto w = p.input("w", {8, 3});
  auto y = matmul(x, w);
  EXPECT_TRUE(y.ok());
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{4, 3}));
  auto z = relu(y + y);
  EXPECT_TRUE(z.ok());
  EXPECT_EQ(z.shape(), (std::vector<std::int64_t>{4, 3}));
  auto t = transpose(z, {1, 0});
  EXPECT_EQ(t.shape(), (std::vector<std::int64_t>{3, 4}));
  auto r = reduce("sum", t);
  EXPECT_TRUE(r.shape().empty());
}

TEST(TensorDsl, ErrorsPropagateStickily) {
  TensorProgram p("k");
  auto x = p.input("x", {4, 8});
  auto w = p.input("w", {9, 3});     // wrong inner dim
  auto bad = matmul(x, w);
  EXPECT_FALSE(bad.ok());
  auto worse = relu(bad + bad);
  EXPECT_FALSE(worse.ok());
  EXPECT_NE(worse.error().find("inner dimensions"), std::string::npos);
  p.output("y", worse);
  EXPECT_FALSE(p.lower().ok());
}

TEST(TensorDsl, LowersMlpToVerifiedIr) {
  TensorProgram p("mlp");
  DataAnnotations secret;
  secret.confidential = true;
  auto x = p.input("x", {16, 32}, secret);
  auto w1 = p.input("w1", {32, 64});
  auto w2 = p.input("w2", {64, 8});
  p.output("y", matmul(relu(matmul(x, w1)), w2));
  auto m = p.lower();
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  EXPECT_TRUE(ir::verify(*m).ok()) << ir::verify(*m).to_string();
  const ir::Function* fn = m->find("mlp");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->input_types().size(), 3u);
  EXPECT_EQ(fn->result_types().size(), 1u);
  EXPECT_EQ(fn->result_types()[0].to_string(), "tensor<16x8xf64>");
  // Security annotation propagated to function level.
  const ir::Attribute* prot = fn->attr("ev.requires_protection");
  ASSERT_NE(prot, nullptr);
  EXPECT_TRUE(prot->as_bool());
}

TEST(TensorDsl, MemoizesSharedSubexpressions) {
  TensorProgram p("shared");
  auto x = p.input("x", {8, 8});
  auto h = relu(matmul(x, x));
  p.output("a", h + h);
  auto m = p.lower();
  ASSERT_TRUE(m.ok());
  int matmuls = 0;
  m->find("shared")->walk([&](ir::Operation& op) {
    matmuls += op.name() == "tensor.matmul";
  });
  EXPECT_EQ(matmuls, 1);  // h lowered once, reused
}

TEST(TensorDsl, ConstantsAndScale) {
  TensorProgram p("c");
  auto x = p.input("x", {2, 2});
  auto k = p.constant({2, 2}, {1, 2, 3, 4});
  p.output("y", scale(x * k, 0.5));
  auto m = p.lower();
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  EXPECT_TRUE(ir::verify(*m).ok()) << ir::verify(*m).to_string();
}

TEST(TensorDsl, RejectsBadConstant) {
  TensorProgram p("c");
  auto k = p.constant({2, 2}, {1, 2, 3});  // 3 values for 4 slots
  EXPECT_FALSE(k.ok());
  p.output("y", k);
  EXPECT_FALSE(p.lower().ok());
}

TEST(TensorDsl, ContractLowering) {
  TensorProgram p("batched");
  auto a = p.input("a", {8, 4, 5});
  auto b = p.input("b", {8, 5, 6});
  p.output("y", contract("bij,bjk->bik", {a, b}));
  auto m = p.lower();
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  bool found = false;
  m->find("batched")->walk([&](ir::Operation& op) {
    if (op.name() == "tensor.contract") {
      found = true;
      EXPECT_EQ(op.str_attr("spec"), "bij,bjk->bik");
    }
  });
  EXPECT_TRUE(found);
}

TEST(TensorDsl, NoOutputsFailsPrecondition) {
  TensorProgram p("empty");
  (void)p.input("x", {4});
  EXPECT_EQ(p.lower().status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------- Workflow DSL --

TEST(WorkflowDsl, LowersPipelineToWorkflowDialect) {
  WorkflowBuilder wf("energy");
  SourceOptions so;
  so.rate_hz = 24.0;
  so.annotations.provenance = "ecmwf";
  auto feed = wf.source("ensemble_feed", so);
  DataAnnotations big;
  big.volume_mb = 120;
  auto grid = wf.task("downscale")
                  .kernel("downscale_k")
                  .inputs({feed})
                  .output_shape({512, 512})
                  .flops(2.0e9)
                  .annotate(big)
                  .done();
  auto power = wf.task("predict")
                   .kernel("mlp_k")
                   .inputs({grid})
                   .output_shape({24})
                   .done();
  ASSERT_TRUE(wf.sink("market", power).ok());
  auto m = wf.lower();
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  EXPECT_TRUE(ir::verify(*m).ok()) << ir::verify(*m).to_string();
  ir::Function* fn = m->find("energy");
  ASSERT_NE(fn, nullptr);
  int sources = 0, tasks = 0, sinks = 0;
  fn->walk([&](ir::Operation& op) {
    sources += op.name() == "workflow.source";
    tasks += op.name() == "workflow.task";
    sinks += op.name() == "workflow.sink";
  });
  EXPECT_EQ(sources, 1);
  EXPECT_EQ(tasks, 2);
  EXPECT_EQ(sinks, 1);
}

TEST(WorkflowDsl, TaskWithoutKernelFails) {
  WorkflowBuilder wf("w");
  auto s = wf.source("s");
  (void)wf.task("t").inputs({s}).done();
  EXPECT_FALSE(wf.lower().ok());
}

TEST(WorkflowDsl, InvalidSinkHandleRejected) {
  WorkflowBuilder wf("w");
  EXPECT_FALSE(wf.sink("out", WorkflowValue{}).ok());
}

TEST(WorkflowDsl, AttachedTensorProgramIsLowered) {
  auto prog = std::make_shared<TensorProgram>("postproc");
  auto x = prog->input("x", {16, 16});
  prog->output("y", relu(x + x));

  WorkflowBuilder wf("pipeline");
  auto s = wf.source("feed");
  auto t = wf.task("post").implemented_by(prog).inputs({s})
               .output_shape({16, 16}).done();
  ASSERT_TRUE(wf.sink("db", t).ok());
  auto m = wf.lower();
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  EXPECT_NE(m->find("postproc"), nullptr);  // kernel function present
  // Task references the program by symbol.
  bool ok_symbol = false;
  m->find("pipeline")->walk([&](ir::Operation& op) {
    if (op.name() == "workflow.task") {
      ok_symbol = op.str_attr("kernel") == "postproc";
    }
  });
  EXPECT_TRUE(ok_symbol);
}

TEST(WorkflowDsl, DiamondDependency) {
  WorkflowBuilder wf("diamond");
  auto s = wf.source("s");
  auto a = wf.task("a").kernel("ka").inputs({s}).output_shape({4}).done();
  auto b = wf.task("b").kernel("kb").inputs({s}).output_shape({4}).done();
  auto c = wf.task("c").kernel("kc").inputs({a, b}).output_shape({4}).done();
  ASSERT_TRUE(wf.sink("out", c).ok());
  auto m = wf.lower();
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  EXPECT_TRUE(ir::verify(*m).ok());
}

}  // namespace
}  // namespace everest::dsl
