// Tests for src/resilience and its integration with the workflow
// scheduler: fault plans (determinism included), phi-accrual failure
// detection, retry/backoff, circuit breakers, lineage recomputation, and
// chaos simulations (crash recovery, retry rerouting, speculation,
// partitions, degraded links, availability accounting). The headline
// guarantee — same seed + same FaultPlan ⇒ byte-identical event trace —
// is asserted over every fault kind.
#include <gtest/gtest.h>

#include "resilience/circuit_breaker.hpp"
#include "resilience/detector.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/lineage.hpp"
#include "resilience/retry.hpp"
#include "workflow/scheduler.hpp"
#include "workflow/task_graph.hpp"

namespace everest::resilience {
namespace {

using workflow::SchedulerKind;
using workflow::SimulationOptions;
using workflow::TaskGraph;
using workflow::WorkerSpec;

std::vector<WorkerSpec> workers(std::size_t n, double gflops = 10.0) {
  std::vector<WorkerSpec> out;
  for (std::size_t i = 0; i < n; ++i) {
    WorkerSpec w;
    w.name = "w" + std::to_string(i);
    w.gflops = gflops;
    w.link_gbps = 1.0;
    w.link_latency_us = 10.0;
    out.push_back(std::move(w));
  }
  return out;
}

/// t0 and t1 in parallel, t2 joins both (forces one cross-worker
/// transfer on two workers).
TaskGraph join_graph(double bytes = 1e6) {
  TaskGraph g;
  const auto a = g.add_task({"a", 1e9, bytes, "", {}});
  const auto b = g.add_task({"b", 1e9, bytes, "", {}});
  g.add_task({"join", 1e9, 0.0, "", {a, b}});
  return g;
}

// -------------------------------------------------------------- FaultPlan

TEST(FaultPlan, BuilderKeepsEventsSortedByTime) {
  FaultPlan plan;
  plan.crash(1, 5e5, 1e4).straggler(0, 1e5, 2e5, 4.0).partition(2, 3e5, 1e4);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kStraggler);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kLinkPartition);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kNodeCrash);
}

TEST(FaultPlan, CoversAndSeverityQueries) {
  FaultPlan plan;
  plan.straggler(0, 100.0, 200.0, 4.0)
      .straggler(FaultEvent::kAllTargets, 150.0, 100.0, 2.0)
      .transient_errors(1, 0.0, 50.0, 0.25);
  // Outside any window: nominal.
  EXPECT_DOUBLE_EQ(plan.severity(FaultKind::kStraggler, 0, 50.0), 1.0);
  // One covering window.
  EXPECT_DOUBLE_EQ(plan.severity(FaultKind::kStraggler, 0, 120.0), 4.0);
  // Overlapping windows compose multiplicatively.
  EXPECT_DOUBLE_EQ(plan.severity(FaultKind::kStraggler, 0, 160.0), 8.0);
  // kAllTargets hits every worker.
  EXPECT_DOUBLE_EQ(plan.severity(FaultKind::kStraggler, 2, 160.0), 2.0);
  // Probability kinds use the max, not the product.
  EXPECT_DOUBLE_EQ(plan.max_magnitude(FaultKind::kTransientError, 1, 25.0),
                   0.25);
  EXPECT_DOUBLE_EQ(plan.max_magnitude(FaultKind::kTransientError, 0, 25.0),
                   0.0);
  // window_end reports the heal time of an active window.
  EXPECT_DOUBLE_EQ(plan.window_end(FaultKind::kStraggler, 0, 120.0), 300.0);
  EXPECT_DOUBLE_EQ(plan.window_end(FaultKind::kStraggler, 0, 10.0), 10.0);
}

TEST(FaultPlan, RandomPlanIsSeedReproducible) {
  ChaosSpec spec;
  spec.horizon_us = 1e6;
  spec.crash_rate_per_s = 4.0;
  spec.degrade_rate_per_s = 3.0;
  spec.straggler_rate_per_s = 3.0;
  spec.transient_error_probability = 0.1;
  const FaultPlan a = FaultPlan::random(spec, 99, 4);
  const FaultPlan b = FaultPlan::random(spec, 99, 4);
  const FaultPlan c = FaultPlan::random(spec, 100, 4);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlan, ToStringNamesEveryKind) {
  for (FaultKind kind :
       {FaultKind::kNodeCrash, FaultKind::kLinkDegrade,
        FaultKind::kLinkPartition, FaultKind::kStraggler,
        FaultKind::kTransientError, FaultKind::kReconfigFail}) {
    EXPECT_NE(to_string(kind), "?");
  }
  FaultEvent e;
  e.kind = FaultKind::kNodeCrash;
  EXPECT_NE(e.to_string().find("crash"), std::string::npos);
}

// --------------------------------------------------------------- Detector

TEST(PhiAccrual, PhiGrowsWithSilence) {
  PhiAccrualDetector d(1000.0);
  d.heartbeat(0.0);
  d.heartbeat(1000.0);
  d.heartbeat(2000.0);
  EXPECT_LT(d.phi(2500.0), 1.0);      // half an interval of silence
  EXPECT_GT(d.phi(2000.0 + 25000.0), 8.0);  // long silence: surely dead
  // A fresh heartbeat resets the suspicion.
  d.heartbeat(30000.0);
  EXPECT_LT(d.phi(30100.0), 0.5);
}

TEST(HealthRegistry, DetectsDeathOnceAndRevivesOnHeartbeat) {
  HealthRegistry reg(2, 1000.0, /*suspect_phi=*/3.0, /*dead_phi=*/8.0);
  for (double t = 0; t <= 5000.0; t += 1000.0) {
    reg.heartbeat(0, t);
    reg.heartbeat(1, t);
  }
  // Worker 1 goes silent; worker 0 keeps beating.
  std::vector<std::size_t> died;
  for (double t = 6000.0; t <= 60000.0; t += 1000.0) {
    reg.heartbeat(0, t);
    for (std::size_t w : reg.update(t)) died.push_back(w);
  }
  ASSERT_EQ(died.size(), 1u);  // reported dead exactly once
  EXPECT_EQ(died[0], 1u);
  EXPECT_EQ(reg.health(1), Health::kDead);
  EXPECT_FALSE(reg.dispatchable(1));
  EXPECT_TRUE(reg.dispatchable(0));
  EXPECT_EQ(reg.healthy_count(), 1u);
  // Restarted worker announces itself and is healthy again.
  reg.heartbeat(1, 61000.0);
  EXPECT_EQ(reg.health(1), Health::kHealthy);
  EXPECT_TRUE(reg.update(61000.0).empty());
}

TEST(HealthRegistry, SuspectedBeforeDead) {
  HealthRegistry reg(1, 1000.0, 3.0, 8.0);
  for (double t = 0; t <= 3000.0; t += 1000.0) reg.heartbeat(0, t);
  // phi = 0.434 * silence/1000: suspect at ~6.9k us, dead at ~18.4k us.
  reg.update(3000.0 + 8000.0);
  EXPECT_EQ(reg.health(0), Health::kSuspected);
  reg.update(3000.0 + 25000.0);
  EXPECT_EQ(reg.health(0), Health::kDead);
}

// ------------------------------------------------------------ RetryPolicy

TEST(RetryPolicy, ExponentialBackoffWithCapAndJitter) {
  RetryPolicy policy;
  policy.base_delay_us = 100.0;
  policy.multiplier = 2.0;
  policy.max_delay_us = 500.0;
  policy.jitter = 0.25;
  Rng rng(7);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const double base =
        std::min(policy.max_delay_us, 100.0 * std::pow(2.0, attempt - 1));
    const double d = policy.delay_us(attempt, rng);
    EXPECT_GE(d, base * 0.75) << attempt;
    EXPECT_LE(d, base * 1.25) << attempt;
  }
}

TEST(RetryPolicy, ShouldRetryHonoursBudgetAndCode) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_TRUE(policy.should_retry(1, StatusCode::kUnavailable));
  EXPECT_TRUE(policy.should_retry(2, StatusCode::kAborted));
  EXPECT_FALSE(policy.should_retry(3, StatusCode::kUnavailable));  // spent
  EXPECT_FALSE(policy.should_retry(1, StatusCode::kInvalidArgument));
  EXPECT_FALSE(policy.should_retry(1, StatusCode::kInternal));
}

// --------------------------------------------------------- CircuitBreaker

TEST(CircuitBreaker, ClosedOpenHalfOpenCycle) {
  BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_cooldown_us = 1000.0;
  CircuitBreaker breaker(policy);
  EXPECT_TRUE(breaker.allow(0.0));
  breaker.record_failure(0.0);
  breaker.record_failure(1.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure(2.0);  // third consecutive failure trips it
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.allow(500.0));  // cooling down
  // Cooldown elapsed: exactly one probe is let through.
  EXPECT_TRUE(breaker.allow(1500.0));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow(1500.0));  // second caller still blocked
  breaker.record_success(1600.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(1700.0));
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  BreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_cooldown_us = 100.0;
  CircuitBreaker breaker(policy);
  breaker.record_failure(0.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.allow(200.0));  // probe
  breaker.record_failure(200.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.allow(250.0));
}

TEST(CircuitBreaker, SuccessResetsConsecutiveCount) {
  BreakerPolicy policy;
  policy.failure_threshold = 2;
  CircuitBreaker breaker(policy);
  breaker.record_failure(0.0);
  breaker.record_success(1.0);  // streak broken
  breaker.record_failure(2.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure(3.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerBoard, TracksScopesIndependently) {
  BreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_cooldown_us = 1e9;
  CircuitBreakerBoard board(policy);
  EXPECT_TRUE(board.allow("node0", "fpga-v1", 0.0));
  board.record("node0", "fpga-v1", /*success=*/false, 0.0);
  EXPECT_FALSE(board.allow("node0", "fpga-v1", 1.0));
  EXPECT_TRUE(board.allow("node1", "fpga-v1", 1.0));  // other scope intact
  EXPECT_TRUE(board.allow("node0", "cpu-v1", 1.0));   // other variant intact
  EXPECT_EQ(board.state("node0", "fpga-v1"), BreakerState::kOpen);
  EXPECT_EQ(board.open_count("node0"), 1);
  EXPECT_EQ(board.open_count("node1"), 0);
  EXPECT_EQ(board.open_count(), 1);
  EXPECT_EQ(board.total_trips(), 1);
}

// ---------------------------------------------------------------- Lineage

TEST(Lineage, RecomputesLostOutputsNeededByIncompleteConsumers) {
  // a → b → c, all of a..b done, c incomplete; outputs of a and b lost.
  const std::vector<std::vector<std::size_t>> deps{{}, {0}, {1}};
  const std::vector<char> done{1, 1, 0};
  const std::vector<char> lost{1, 1, 0};
  const auto rec = recompute_closure(deps, done, lost);
  EXPECT_EQ(rec, (std::vector<std::size_t>{0, 1}));
}

TEST(Lineage, LostOutputWithOnlyCompletedConsumersIsNotRebuilt) {
  // a → b, both done, only a's output lost: b doesn't need it anymore.
  const std::vector<std::vector<std::size_t>> deps{{}, {0}};
  const std::vector<char> done{1, 1};
  const std::vector<char> lost{1, 0};
  EXPECT_TRUE(recompute_closure(deps, done, lost).empty());
}

TEST(Lineage, LostSinkOutputIsAlwaysRebuilt) {
  // The final result of the workflow was lost: recompute it.
  const std::vector<std::vector<std::size_t>> deps{{}, {0}};
  const std::vector<char> done{1, 1};
  const std::vector<char> lost{0, 1};
  EXPECT_EQ(recompute_closure(deps, done, lost),
            (std::vector<std::size_t>{1}));
}

TEST(Lineage, RecomputationPullsInLostTransitiveInputs) {
  // diamond: a → {b, c} → d; d incomplete, b's and a's outputs lost.
  const std::vector<std::vector<std::size_t>> deps{{}, {0}, {0}, {1, 2}};
  const std::vector<char> done{1, 1, 1, 0};
  const std::vector<char> lost{1, 1, 0, 0};
  const auto rec = recompute_closure(deps, done, lost);
  EXPECT_EQ(rec, (std::vector<std::size_t>{0, 1}));
}

// ------------------------------------------------- chaos simulation tests

TEST(ChaosSim, CrashRecoveryRecomputesAndFinishes) {
  TaskGraph g = TaskGraph::pipeline(4, 1, 1e9, 0.0);  // 4-stage chain
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kFifo;
  auto clean = workflow::simulate_schedule(g, workers(2), opts);
  ASSERT_TRUE(clean.ok());

  FaultPlan plan;
  plan.crash(0, 1.5e5, 1e5);  // mid-stage-2 crash, 100 ms downtime
  opts.fault_plan = &plan;
  auto outcome = workflow::simulate_schedule(g, workers(2), opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome->tasks_completed, 4u);
  EXPECT_DOUBLE_EQ(outcome->availability(), 1.0);
  EXPECT_EQ(outcome->lost_executions, 1u);     // stage 1 was running
  EXPECT_EQ(outcome->recomputed_tasks, 1u);    // stage 0's output was lost
  EXPECT_GT(outcome->makespan_us, clean->makespan_us);
  ASSERT_EQ(outcome->detection_latency_us.size(), 1u);
  // phi-accrual at dead_phi 8 with 1 ms heartbeats: ~18.4 ms of silence.
  EXPECT_GT(outcome->detection_latency_us[0], 1.5e4);
  EXPECT_LT(outcome->detection_latency_us[0], 3e4);
  ASSERT_EQ(outcome->recovery_us.size(), 1u);
  EXPECT_GT(outcome->recovery_us[0], outcome->detection_latency_us[0]);
}

TEST(ChaosSim, RetryReroutesToHealthyWorkerInsteadOfPinning) {
  TaskGraph g;
  g.add_task({"only", 1e9, 0.0, "", {}});
  FaultPlan plan;
  plan.transient_errors(0, 0.0, 1e12, 1.0);  // worker 0 always fails

  SimulationOptions pinned;
  pinned.scheduler = SchedulerKind::kFifo;
  pinned.fault_plan = &plan;
  pinned.retry_strategy = workflow::RetryStrategy::kSameWorker;
  auto naive = workflow::simulate_schedule(g, workers(2), pinned);
  // Pinned to the broken worker, the task burns its whole retry budget.
  ASSERT_FALSE(naive.ok());
  EXPECT_EQ(naive.status().code(), StatusCode::kResourceExhausted);

  SimulationOptions rerouted = pinned;
  rerouted.retry_strategy = workflow::RetryStrategy::kAnyHealthy;
  auto healed = workflow::simulate_schedule(g, workers(2), rerouted);
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();
  EXPECT_EQ(healed->retries, 1u);          // one failure, then rerouted
  EXPECT_EQ(healed->assignment[0], 1u);    // finished on the healthy worker
  EXPECT_DOUBLE_EQ(healed->availability(), 1.0);
}

TEST(ChaosSim, SpeculationBeatsStraggler) {
  TaskGraph g;
  g.add_task({"slow", 1e9, 0.0, "", {}});
  FaultPlan plan;
  plan.straggler(0, 0.0, 5e6, 20.0);  // worker 0 is 20x slow
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kFifo;
  opts.fault_plan = &plan;
  opts.speculation_factor = 2.0;
  auto outcome = workflow::simulate_schedule(g, workers(2), opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome->speculative_launches, 1u);
  EXPECT_EQ(outcome->speculative_wins, 1u);
  EXPECT_EQ(outcome->executions, 2u);
  // Nominal 1e5 us; straggled copy would take 2e6 us. The backup launched
  // at ~2e5 us finishes at ~3e5 us.
  EXPECT_LT(outcome->makespan_us, 5e5);
  EXPECT_EQ(outcome->assignment[0], 1u);
}

TEST(ChaosSim, PartitionBlocksTransferUntilHealed) {
  TaskGraph g = join_graph();
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kFifo;
  auto clean = workflow::simulate_schedule(g, workers(2), opts);
  ASSERT_TRUE(clean.ok());

  FaultPlan plan;
  plan.partition(1, 0.0, 3e5);  // worker 1 unreachable until 300 ms
  opts.fault_plan = &plan;
  auto outcome = workflow::simulate_schedule(g, workers(2), opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  // The join's input from worker 1 can't move before the partition heals.
  EXPECT_GT(outcome->makespan_us, 3e5 + 1e5 - 1.0);
  EXPECT_GT(outcome->makespan_us, clean->makespan_us);
  EXPECT_EQ(outcome->tasks_completed, 3u);
}

TEST(ChaosSim, DegradedLinkStretchesTransfers) {
  TaskGraph g = join_graph();
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kFifo;
  auto clean = workflow::simulate_schedule(g, workers(2), opts);
  ASSERT_TRUE(clean.ok());

  FaultPlan plan;
  plan.degrade_link(1, 0.0, 1e6, 50.0);
  opts.fault_plan = &plan;
  auto outcome = workflow::simulate_schedule(g, workers(2), opts);
  ASSERT_TRUE(outcome.ok());
  // ~1 ms nominal transfer becomes ~50 ms.
  EXPECT_GT(outcome->makespan_us, clean->makespan_us + 4e4);
  EXPECT_DOUBLE_EQ(outcome->bytes_transferred, clean->bytes_transferred);
}

TEST(ChaosSim, ExhaustedRetriesFailClosureWhenAbortDisabled) {
  TaskGraph g = TaskGraph::pipeline(4, 1, 1e9, 0.0);
  FaultPlan plan;
  plan.transient_errors(FaultEvent::kAllTargets, 0.0, 1e12, 1.0);
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kFifo;
  opts.fault_plan = &plan;
  opts.abort_on_retry_exhaustion = false;
  auto outcome = workflow::simulate_schedule(g, workers(2), opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  // Stage 0 exhausts its budget; descendants can never run either.
  EXPECT_EQ(outcome->tasks_completed, 0u);
  EXPECT_EQ(outcome->tasks_failed, 4u);
  EXPECT_DOUBLE_EQ(outcome->availability(), 0.0);
  EXPECT_EQ(outcome->retries, 3u);  // max_retries attempts on stage 0
}

// ------------------------------------- byte-identical trace determinism

struct TracePlanCase {
  const char* name;
  FaultKind kind;
};

class TraceDeterminism : public ::testing::TestWithParam<TracePlanCase> {};

FaultPlan plan_for(FaultKind kind) {
  FaultPlan plan;
  switch (kind) {
    case FaultKind::kNodeCrash:
      plan.crash(0, 5e4, 5e4).crash(2, 1.2e5, 3e4);
      break;
    case FaultKind::kLinkDegrade:
      plan.degrade_link(0, 0.0, 2e5, 8.0);
      break;
    case FaultKind::kLinkPartition:
      plan.partition(0, 5e4, 1e5);
      break;
    case FaultKind::kStraggler:
      plan.straggler(1, 0.0, 2e5, 6.0);
      break;
    case FaultKind::kTransientError:
      plan.transient_errors(FaultEvent::kAllTargets, 0.0, 2e5, 0.3);
      break;
    case FaultKind::kReconfigFail:
      plan.reconfig_failure(0, 0.0, 2e5, 0.5);
      break;
  }
  return plan;
}

std::string joined_trace(const workflow::ScheduleOutcome& outcome) {
  std::string all;
  for (const std::string& line : outcome.trace) {
    all += line;
    all += '\n';
  }
  return all;
}

TEST_P(TraceDeterminism, SameSeedAndPlanGiveByteIdenticalTraces) {
  Rng rng(11);
  TaskGraph g = TaskGraph::random_layered(4, 6, 3, rng);
  const FaultPlan plan = plan_for(GetParam().kind);
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kWorkStealing;
  opts.fault_plan = &plan;
  opts.seed = 42;
  opts.max_retries = 8;
  opts.abort_on_retry_exhaustion = false;
  opts.speculation_factor = 1.5;
  opts.record_trace = true;

  auto first = workflow::simulate_schedule(g, workers(3), opts);
  auto second = workflow::simulate_schedule(g, workers(3), opts);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok());
  ASSERT_FALSE(first->trace.empty());
  EXPECT_EQ(joined_trace(*first), joined_trace(*second));
  EXPECT_DOUBLE_EQ(first->makespan_us, second->makespan_us);
  EXPECT_EQ(first->executions, second->executions);
  EXPECT_EQ(first->retries, second->retries);
}

TEST(TraceDeterminismExtra, DifferentSeedsDivergeUnderTransientErrors) {
  Rng rng(11);
  TaskGraph g = TaskGraph::random_layered(4, 6, 3, rng);
  const FaultPlan plan = plan_for(FaultKind::kTransientError);
  SimulationOptions opts;
  opts.scheduler = SchedulerKind::kWorkStealing;
  opts.fault_plan = &plan;
  opts.max_retries = 8;
  opts.abort_on_retry_exhaustion = false;
  opts.record_trace = true;
  opts.seed = 1;
  auto a = workflow::simulate_schedule(g, workers(3), opts);
  opts.seed = 2;
  auto b = workflow::simulate_schedule(g, workers(3), opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(joined_trace(*a), joined_trace(*b));
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultKinds, TraceDeterminism,
    ::testing::Values(TracePlanCase{"crash", FaultKind::kNodeCrash},
                      TracePlanCase{"degrade", FaultKind::kLinkDegrade},
                      TracePlanCase{"partition", FaultKind::kLinkPartition},
                      TracePlanCase{"straggler", FaultKind::kStraggler},
                      TracePlanCase{"transient", FaultKind::kTransientError}),
    [](const ::testing::TestParamInfo<TracePlanCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace everest::resilience
