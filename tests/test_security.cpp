// Tests for the security library: AES-128 (FIPS-197 + NIST CTR/GCM
// vectors), SHA-256 / HMAC (NIST + RFC vectors), taint tracking, and
// anomaly detection with auto-protection.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "security/aes.hpp"
#include "security/anomaly.hpp"
#include "security/sha256.hpp"
#include "security/taint.hpp"

namespace everest::security {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

Block16 block_from_hex(const std::string& hex) {
  Block16 out{};
  auto bytes = from_hex(hex);
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

std::string vec_to_hex(const std::vector<std::uint8_t>& data) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : data) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

// ------------------------------------------------------------------- AES --

TEST(Aes, Fips197BlockVector) {
  // FIPS-197 appendix C.1.
  Aes128 aes(block_from_hex("000102030405060708090a0b0c0d0e0f"));
  const Block16 ct = aes.encrypt_block(
      block_from_hex("00112233445566778899aabbccddeeff"));
  std::vector<std::uint8_t> ct_vec(ct.begin(), ct.end());
  EXPECT_EQ(vec_to_hex(ct_vec), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Sp80038aCtrVector) {
  // NIST SP 800-38A F.5.1 (AES-128 CTR), first two blocks.
  const Block16 key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block16 iv = block_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const auto pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const auto ct = aes128_ctr(key, iv, pt);
  EXPECT_EQ(vec_to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(Aes, CtrIsAnInvolution) {
  Rng rng(42);
  const Block16 key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block16 iv = block_from_hex("000102030405060708090a0b0c0d0e0f");
  std::vector<std::uint8_t> data(1000);  // deliberately not a block multiple
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const auto ct = aes128_ctr(key, iv, data);
  EXPECT_NE(ct, data);
  EXPECT_EQ(aes128_ctr(key, iv, ct), data);
}

TEST(Aes, GcmNistVectorCase3) {
  // NIST GCM test case 3 (AES-128, 96-bit IV, no AAD).
  const Block16 key = block_from_hex("feffe9928665731c6d6a8f9467308308");
  std::array<std::uint8_t, 12> iv{};
  const auto iv_bytes = from_hex("cafebabefacedbaddecaf888");
  std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());
  const auto pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a"
      "86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525"
      "b16aedf5aa0de657ba637b391aafd255");
  const GcmResult result = aes128_gcm_encrypt(key, iv, pt);
  EXPECT_EQ(vec_to_hex(result.ciphertext),
            "42831ec2217774244b7221b784d0d49c"
            "e3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa05"
            "1ba30b396a0aac973d58e091473f5985");
  std::vector<std::uint8_t> tag_vec(result.tag.begin(), result.tag.end());
  EXPECT_EQ(vec_to_hex(tag_vec), "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(Aes, GcmRoundTripWithAad) {
  const Block16 key = block_from_hex("feffe9928665731c6d6a8f9467308308");
  std::array<std::uint8_t, 12> iv{};
  iv[0] = 7;
  const std::vector<std::uint8_t> pt = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> aad = {9, 9, 9};
  const GcmResult enc = aes128_gcm_encrypt(key, iv, pt, aad);
  auto dec = aes128_gcm_decrypt(key, iv, enc.ciphertext, enc.tag, aad);
  ASSERT_TRUE(dec.ok()) << dec.status().to_string();
  EXPECT_EQ(*dec, pt);
}

TEST(Aes, GcmDetectsTamperedCiphertextTagAndAad) {
  const Block16 key = block_from_hex("00000000000000000000000000000001");
  std::array<std::uint8_t, 12> iv{};
  const std::vector<std::uint8_t> pt = {10, 20, 30, 40};
  const std::vector<std::uint8_t> aad = {1};
  GcmResult enc = aes128_gcm_encrypt(key, iv, pt, aad);
  // Tampered ciphertext.
  auto bad_ct = enc.ciphertext;
  bad_ct[0] ^= 1;
  EXPECT_EQ(aes128_gcm_decrypt(key, iv, bad_ct, enc.tag, aad).status().code(),
            StatusCode::kDataLoss);
  // Tampered tag.
  Block16 bad_tag = enc.tag;
  bad_tag[15] ^= 0x80;
  EXPECT_FALSE(aes128_gcm_decrypt(key, iv, enc.ciphertext, bad_tag, aad).ok());
  // Tampered AAD.
  EXPECT_FALSE(
      aes128_gcm_decrypt(key, iv, enc.ciphertext, enc.tag, {2}).ok());
}

TEST(Aes, GcmEmptyPlaintextVector) {
  // NIST GCM test case 1: zero key, zero IV, empty plaintext.
  const Block16 key{};
  std::array<std::uint8_t, 12> iv{};
  const GcmResult result = aes128_gcm_encrypt(key, iv, {});
  std::vector<std::uint8_t> tag_vec(result.tag.begin(), result.tag.end());
  EXPECT_EQ(vec_to_hex(tag_vec), "58e2fccefa7e3061367f1d57a4e7455a");
  EXPECT_TRUE(result.ciphertext.empty());
}

// ---------------------------------------------------------------- SHA256 --

TEST(Sha256, NistShortVectors) {
  EXPECT_EQ(to_hex(sha256(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(sha256(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(sha256(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string text = "EVEREST data-driven design environment";
  Sha256 h;
  for (char c : text) {
    const auto byte = static_cast<std::uint8_t>(c);
    h.update(&byte, 1);
  }
  EXPECT_EQ(to_hex(h.finalize()), to_hex(sha256(text)));
}

TEST(Sha256, HmacRfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  const auto mac = hmac_sha256(
      key, std::vector<std::uint8_t>(msg.begin(), msg.end()));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Sha256, HmacRfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const auto mac =
      hmac_sha256(std::vector<std::uint8_t>(key.begin(), key.end()),
                  std::vector<std::uint8_t>(msg.begin(), msg.end()));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// ----------------------------------------------------------------- Taint --

TEST(Taint, LabelsJoinThroughTasks) {
  TaintTracker tracker;
  tracker.set_label("sensor", TaintLabel({"confidential"}));
  tracker.set_label("weather", TaintLabel{});
  tracker.propagate("merge", {"sensor", "weather"}, {"merged"});
  EXPECT_TRUE(tracker.label_of("merged").has("confidential"));
  tracker.propagate("train", {"merged"}, {"model", "report"});
  EXPECT_TRUE(tracker.label_of("model").has("confidential"));
  EXPECT_TRUE(tracker.label_of("report").has("confidential"));
}

TEST(Taint, SinkPolicyEnforced) {
  TaintTracker tracker;
  tracker.set_label("fcd", TaintLabel({"pii", "confidential"}));
  tracker.propagate("aggregate", {"fcd"}, {"heatmap"});
  // Public dashboard has no clearance.
  EXPECT_EQ(tracker.check_sink("heatmap", TaintLabel{}).code(),
            StatusCode::kPermissionDenied);
  // Secured sink clears both tags.
  EXPECT_TRUE(
      tracker.check_sink("heatmap", TaintLabel({"pii", "confidential"})).ok());
  // Untracked objects flow anywhere.
  EXPECT_TRUE(tracker.check_sink("untracked", TaintLabel{}).ok());
}

TEST(Taint, DeclassificationRemovesTags) {
  TaintTracker tracker;
  tracker.set_label("fcd", TaintLabel({"pii"}));
  tracker.propagate("anonymize", {"fcd"}, {"anon"}, /*declassifies=*/{"pii"});
  EXPECT_FALSE(tracker.label_of("anon").has("pii"));
  EXPECT_TRUE(tracker.check_sink("anon", TaintLabel{}).ok());
}

TEST(Taint, ObjectsWithTagEnumerates) {
  TaintTracker tracker;
  tracker.set_label("a", TaintLabel({"x"}));
  tracker.set_label("b", TaintLabel({"y"}));
  tracker.set_label("c", TaintLabel({"x", "y"}));
  const auto with_x = tracker.objects_with("x");
  EXPECT_EQ(with_x.size(), 2u);
}

// --------------------------------------------------------------- Anomaly --

BehaviorSample normal_sample(Rng& rng) {
  BehaviorSample s;
  s.latency_us = rng.normal(100.0, 5.0);
  s.bytes = rng.normal(1e6, 2e4);
  s.value_range = rng.normal(50.0, 2.0);
  s.access_stride = 1.0;
  return s;
}

TEST(Anomaly, NoFlagsDuringWarmup) {
  AnomalyDetector detector;
  Rng rng(1);
  for (int i = 0; i < 19; ++i) {
    EXPECT_FALSE(detector.observe(normal_sample(rng)).anomalous);
  }
}

TEST(Anomaly, DetectsTimingAttack) {
  AnomalyDetector detector;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) detector.observe(normal_sample(rng));
  BehaviorSample attack = normal_sample(rng);
  attack.latency_us = 400.0;  // timing side channel / stalling
  const auto verdict = detector.observe(attack);
  EXPECT_TRUE(verdict.anomalous);
  EXPECT_EQ(verdict.feature, "latency");
}

TEST(Anomaly, DetectsSizeAndStrideShift) {
  AnomalyDetector detector;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) detector.observe(normal_sample(rng));
  BehaviorSample exfil = normal_sample(rng);
  exfil.bytes = 2e7;  // bulk exfiltration
  EXPECT_TRUE(detector.observe(exfil).anomalous);
  BehaviorSample scan = normal_sample(rng);
  scan.access_stride = 4096.0;  // page-granular scanning
  EXPECT_TRUE(detector.observe(scan).anomalous);
}

TEST(Anomaly, CleanTrafficStaysClean) {
  AnomalyDetector detector;
  Rng rng(4);
  int false_positives = 0;
  for (int i = 0; i < 2000; ++i) {
    false_positives += detector.observe(normal_sample(rng)).anomalous;
  }
  EXPECT_LT(false_positives, 10);  // < 0.5% FPR
}

TEST(Anomaly, BaselineNotPoisonedByAnomalies) {
  AnomalyDetector detector;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) detector.observe(normal_sample(rng));
  const int seen = detector.samples_seen();
  BehaviorSample attack = normal_sample(rng);
  attack.latency_us = 1e5;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(detector.observe(attack).anomalous);
  }
  EXPECT_EQ(detector.samples_seen(), seen);  // anomalies not absorbed
}

TEST(AutoProtection, EscalatesAndCalmsWithHysteresis) {
  AutoProtectionPolicy::Options opts;
  opts.escalate_after = 3;
  opts.calm_after = 5;
  AutoProtectionPolicy policy(opts);
  AnomalyDetector::Verdict bad{true, 10.0, "latency"};
  AnomalyDetector::Verdict good{false, 0.0, ""};
  EXPECT_EQ(policy.update(bad), ProtectionLevel::kNormal);
  EXPECT_EQ(policy.update(bad), ProtectionLevel::kNormal);
  EXPECT_EQ(policy.update(bad), ProtectionLevel::kMonitor);
  for (int i = 0; i < 3; ++i) policy.update(bad);
  EXPECT_EQ(policy.level(), ProtectionLevel::kProtect);
  for (int i = 0; i < 3; ++i) policy.update(bad);
  EXPECT_EQ(policy.level(), ProtectionLevel::kQuarantine);
  // Stays at quarantine under further anomalies.
  policy.update(bad);
  EXPECT_EQ(policy.level(), ProtectionLevel::kQuarantine);
  // Calms down one level per clean streak.
  for (int i = 0; i < 5; ++i) policy.update(good);
  EXPECT_EQ(policy.level(), ProtectionLevel::kProtect);
  for (int i = 0; i < 10; ++i) policy.update(good);
  EXPECT_EQ(policy.level(), ProtectionLevel::kNormal);
  // A single anomaly resets the clean streak but not the level.
  for (int i = 0; i < 4; ++i) policy.update(good);
  policy.update(bad);
  EXPECT_EQ(policy.level(), ProtectionLevel::kNormal);
}

/// Property: GCM round-trips for random sizes (including non-multiples of
/// the block size) and always rejects single-bit tampering.
class GcmProperty : public ::testing::TestWithParam<int> {};

TEST_P(GcmProperty, RoundTripAndTamperDetection) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  Block16 key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  std::array<std::uint8_t, 12> iv{};
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  std::vector<std::uint8_t> pt(rng.uniform_int(1, 300));
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const GcmResult enc = aes128_gcm_encrypt(key, iv, pt);
  auto dec = aes128_gcm_decrypt(key, iv, enc.ciphertext, enc.tag);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, pt);
  auto tampered = enc.ciphertext;
  const std::size_t byte = rng.uniform_int(tampered.size());
  tampered[byte] ^= static_cast<std::uint8_t>(1 << rng.uniform_int(8));
  EXPECT_FALSE(aes128_gcm_decrypt(key, iv, tampered, enc.tag).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcmProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace everest::security
