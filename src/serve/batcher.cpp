#include "serve/batcher.hpp"

#include <thread>

namespace everest::serve {

bool Batcher::next_batch(Batch* out) {
  // Wait for the opening request (bounded waits so close() is honoured).
  std::optional<PendingRequest> head;
  while (!head) {
    head = queue_->pop(std::chrono::microseconds(2000));
    if (!head && queue_->closed() && queue_->size() == 0) return false;
  }

  out->kernel = head->request.kernel;
  out->sla = head->request.sla;
  out->requests.clear();
  out->requests.push_back(std::move(*head));

  const std::size_t cap = out->sla == SlaClass::kLatencyCritical
                              ? policy_.lc_max_batch
                              : policy_.max_batch;
  const Clock::time_point flush_at = Clock::now() + policy_.max_wait;
  while (out->requests.size() < cap) {
    auto more = queue_->pop_compatible(out->kernel, out->sla);
    if (more) {
      out->requests.push_back(std::move(*more));
      continue;
    }
    const Clock::time_point now = Clock::now();
    if (now >= flush_at || queue_->closed()) break;  // size-1 flush on timeout
    // Brief nap bounded by the remaining wait budget; keeps the dispatcher
    // from spinning while letting near-simultaneous arrivals coalesce.
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(flush_at - now);
    std::this_thread::sleep_for(
        std::min(remaining, std::chrono::microseconds(50)));
  }
  return true;
}

}  // namespace everest::serve
