// Batch formation: coalesces compatible requests (same kernel, same SLA
// class) into one dispatchable unit under a max-batch-size + max-wait-µs
// policy. Batching amortizes per-invocation setup (ensemble generation,
// variant selection, accelerator role state) across requests — the
// classic throughput lever of serving systems — while the wait bound and
// the smaller latency-critical cap keep the latency cost explicit.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "serve/request_queue.hpp"

namespace everest::serve {

/// Knobs of the coalescing policy (bench E17 sweeps these).
struct BatchPolicy {
  /// Upper bound for throughput-class batches. 1 disables batching.
  std::size_t max_batch = 8;
  /// Latency-critical batches stay small so they never wait long.
  std::size_t lc_max_batch = 2;
  /// How long a partially filled batch may wait for more arrivals before
  /// it is flushed (so a lone request still flushes, at size 1).
  std::chrono::microseconds max_wait{500};
};

/// One formed batch: homogeneous kernel and SLA class.
struct Batch {
  std::string kernel;
  SlaClass sla = SlaClass::kThroughput;
  std::vector<PendingRequest> requests;
  [[nodiscard]] std::size_t size() const { return requests.size(); }
};

/// Pulls from a RequestQueue and forms batches. Any number of threads may
/// call next_batch() concurrently (the queue is the synchronization
/// point); in the server one dispatcher thread drives it.
class Batcher {
 public:
  Batcher(RequestQueue* queue, BatchPolicy policy)
      : queue_(queue), policy_(policy) {}

  /// Blocks until a batch is available or the queue is closed and empty.
  /// Returns false only on shutdown. The first popped request opens the
  /// batch; compatible requests already queued (or arriving within
  /// max_wait) join until the class's size cap is hit.
  bool next_batch(Batch* out);

  [[nodiscard]] const BatchPolicy& policy() const { return policy_; }

 private:
  RequestQueue* queue_;
  BatchPolicy policy_;
};

}  // namespace everest::serve
