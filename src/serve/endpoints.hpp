// Servable endpoints: the three paper use cases (§VI) wrapped as batch
// handlers behind stable kernel names. Each handler does real work and is
// written batch-first — the expensive shared setup (weather ensemble,
// dispersion ensemble, road network) is computed once per batch and only
// the cheap per-request part runs per element. That shape is what makes
// batching a genuine throughput lever in bench E17 rather than a
// simulation constant.
//
// Handlers are pure w.r.t. shared state (all shared state is immutable
// after construction) and deterministic given the requests' seeds, so any
// worker thread may execute any batch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "compiler/variants.hpp"
#include "serve/batcher.hpp"

namespace everest::serve {

/// Executes one formed batch; must write exactly batch.size() values.
/// Runs on a worker thread; must be thread-safe and deterministic in the
/// request seeds.
using BatchHandler =
    std::function<Status(const Batch& batch, std::vector<double>* values)>;

/// Variant-aware batch handler: additionally receives the variant the
/// autotuner selected for this batch (null when selection failed and the
/// batch runs generically), so the execution cost genuinely depends on
/// the decision — tiling/layout choices matched to the batch's shape run
/// faster. This is what lets the JIT's minted variants move measured
/// latency, not just predictions (bench E26).
using VariantBatchHandler = std::function<Status(
    const Batch& batch, const compiler::Variant* variant,
    std::vector<double>* values)>;

/// A servable kernel: its handler plus the compiler-style variant
/// metadata the autotuner selects from (loaded into the knowledge base at
/// registration). Exactly one of handler / variant_handler must be set;
/// variant_handler wins when both are.
struct Endpoint {
  std::string kernel;
  std::vector<compiler::Variant> variants;
  BatchHandler handler;
  VariantBatchHandler variant_handler;
};

/// §VI-A wind-power forecast: per batch one downscaled ensemble wind
/// field; per request a wind-farm power-curve evaluation on it.
/// Kernel name: "energy_forecast".
Endpoint make_energy_endpoint(std::uint64_t base_seed = 11);

/// §VI-B air quality: per batch an ensemble of Gaussian-plume dispersion
/// fields; per request the exceedance probability at a receptor.
/// Kernel name: "aq_dispersion".
Endpoint make_airquality_endpoint(std::uint64_t base_seed = 13);

/// §VI-C traffic PTDR: shared road network (built once); per request a
/// Monte-Carlo route-time distribution for a sampled origin/destination.
/// Kernel name: "ptdr_route".
Endpoint make_traffic_endpoint(std::uint64_t base_seed = 17);

/// All three, for convenience in benches/tests.
std::vector<Endpoint> standard_endpoints();

}  // namespace everest::serve
