#include "serve/request_queue.hpp"

#include <algorithm>

namespace everest::serve {

std::string_view to_string(SlaClass sla) {
  switch (sla) {
    case SlaClass::kLatencyCritical: return "latency-critical";
    case SlaClass::kThroughput: return "throughput";
  }
  return "?";
}

Status RequestQueue::push(PendingRequest pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return FailedPrecondition("request queue is closed");
    }
    if (total_locked() >= capacity_) {
      return ResourceExhausted("queue full (" + std::to_string(capacity_) +
                               " pending), request '" +
                               pending.request.kernel + "' rejected");
    }
    lanes_[static_cast<int>(pending.request.sla)].push_back(
        std::move(pending));
  }
  cv_.notify_one();
  return OkStatus();
}

std::optional<PendingRequest> RequestQueue::pop(
    std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout,
               [this] { return closed_ || total_locked() > 0; });
  for (auto& lane : lanes_) {
    if (!lane.empty()) {
      PendingRequest out = std::move(lane.front());
      lane.pop_front();
      return out;
    }
  }
  return std::nullopt;
}

std::optional<PendingRequest> RequestQueue::pop_compatible(
    const std::string& kernel, SlaClass sla) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& lane = lanes_[static_cast<int>(sla)];
  const auto it = std::find_if(lane.begin(), lane.end(),
                               [&](const PendingRequest& p) {
                                 return p.request.kernel == kernel;
                               });
  if (it == lane.end()) return std::nullopt;
  PendingRequest out = std::move(*it);
  lane.erase(it);
  return out;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_locked();
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace everest::serve
