#include "serve/request_queue.hpp"

#include <algorithm>

namespace everest::serve {

std::string_view to_string(SlaClass sla) {
  switch (sla) {
    case SlaClass::kLatencyCritical: return "latency-critical";
    case SlaClass::kThroughput: return "throughput";
  }
  return "?";
}

Status RequestQueue::push(PendingRequest pending) {
  const int lane = static_cast<int>(pending.request.sla);
  const std::string label = "request '" + pending.request.kernel + "'";
  return TwoLaneQueue<PendingRequest>::push(std::move(pending), lane, label);
}

std::optional<PendingRequest> RequestQueue::pop_compatible(
    const std::string& kernel, SlaClass sla) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& lane = lanes_[static_cast<int>(sla)];
  const auto it = std::find_if(lane.begin(), lane.end(),
                               [&](const PendingRequest& p) {
                                 return p.request.kernel == kernel;
                               });
  if (it == lane.end()) return std::nullopt;
  PendingRequest out = std::move(*it);
  lane.erase(it);
  return out;
}

}  // namespace everest::serve
