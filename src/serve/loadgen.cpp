#include "serve/loadgen.hpp"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace everest::serve {

namespace {

/// Client-side completion sink shared by all submissions of one run.
struct Collector {
  std::mutex mu;
  LoadReport report;

  void on_response(SlaClass sla, const Response& response) {
    std::lock_guard<std::mutex> lock(mu);
    if (response.status.ok()) {
      ++report.completed;
      report.latencies_us[static_cast<int>(sla)].push_back(
          response.latency_us);
    } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++report.expired;
    } else {
      ++report.failed;
    }
  }
};

/// Draws the next request deterministically from the workload spec.
/// `zipf` is the shared object-popularity sampler (null = no data keys);
/// `client` rotates the rank → object mapping so each client can have
/// its own hot set.
Request draw_request(const WorkloadSpec& spec, Rng& rng,
                     const ZipfSampler* zipf, int client) {
  Request request;
  request.kernel = spec.kernels[rng.uniform_int(spec.kernels.size())];
  request.sla = rng.bernoulli(spec.lc_fraction) ? SlaClass::kLatencyCritical
                                                : SlaClass::kThroughput;
  request.payload_scale = rng.uniform(0.5, 1.5);
  request.seed = rng.next();
  if (zipf != nullptr) {
    const std::size_t rank = zipf->sample(rng);
    const std::size_t index =
        (rank + static_cast<std::size_t>(client) *
                    spec.per_client_key_stride) %
        zipf->size();
    request.data_key = spec.key_namer ? spec.key_namer(client, index)
                                      : "obj" + std::to_string(index);
    request.input_bytes = spec.input_bytes;
  }
  const double deadline_ms = request.sla == SlaClass::kLatencyCritical
                                 ? spec.lc_deadline_ms
                                 : spec.tp_deadline_ms;
  if (deadline_ms > 0.0) {
    request.deadline =
        Clock::now() + std::chrono::microseconds(
                           static_cast<std::int64_t>(deadline_ms * 1e3));
  }
  return request;
}

}  // namespace

std::vector<double> LoadReport::all_latencies() const {
  std::vector<double> all;
  all.reserve(latencies_us[0].size() + latencies_us[1].size());
  all.insert(all.end(), latencies_us[0].begin(), latencies_us[0].end());
  all.insert(all.end(), latencies_us[1].begin(), latencies_us[1].end());
  return all;
}

double LoadReport::p50_us() const {
  auto all = all_latencies();
  return all.empty() ? 0.0 : percentile(all, 50.0);
}

double LoadReport::p99_us() const {
  auto all = all_latencies();
  return all.empty() ? 0.0 : percentile(all, 99.0);
}

LoadReport run_open_loop(const SubmitFn& submit, const DrainFn& drain,
                         const WorkloadSpec& spec) {
  Collector collector;
  Rng rng(spec.seed);
  std::unique_ptr<ZipfSampler> zipf;
  if (spec.num_data_objects > 0) {
    zipf = std::make_unique<ZipfSampler>(spec.num_data_objects,
                                         spec.zipf_skew);
  }
  const Clock::time_point start = Clock::now();
  const Clock::time_point horizon = start + spec.duration;
  Clock::time_point next_arrival = start;

  while (next_arrival < horizon) {
    std::this_thread::sleep_until(next_arrival);
    Request request = draw_request(spec, rng, zipf.get(), /*client=*/0);
    const SlaClass sla = request.sla;
    {
      std::lock_guard<std::mutex> lock(collector.mu);
      ++collector.report.offered;
    }
    const Status status = submit(
        std::move(request), [&collector, sla](const Response& response) {
          collector.on_response(sla, response);
        });
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(collector.mu);
      ++collector.report.rejected;
    }
    // Exponential inter-arrival gap: a Poisson arrival process.
    next_arrival += std::chrono::microseconds(static_cast<std::int64_t>(
        rng.exponential(spec.offered_rps) * 1e6));
  }
  if (drain) drain();
  collector.report.wall_s =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count() /
      1e9;
  return collector.report;
}

LoadReport run_open_loop(Server& server, const WorkloadSpec& spec) {
  return run_open_loop(
      [&server](Request request, ResponseCallback on_done) {
        return server.submit(std::move(request), std::move(on_done));
      },
      [&server] { server.drain(); }, spec);
}

LoadReport run_closed_loop(const SubmitFn& submit, const DrainFn& drain,
                           const WorkloadSpec& spec, int clients,
                           double think_ms) {
  Collector collector;
  std::unique_ptr<ZipfSampler> zipf;
  if (spec.num_data_objects > 0) {
    zipf = std::make_unique<ZipfSampler>(spec.num_data_objects,
                                         spec.zipf_skew);
  }
  const Clock::time_point start = Clock::now();
  const Clock::time_point horizon = start + spec.duration;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Per-client deterministic stream, decorrelated across clients.
      Rng rng(spec.seed + 0x9E3779B97F4A7C15ULL * (c + 1));
      std::mutex mu;
      std::condition_variable cv;
      while (Clock::now() < horizon) {
        Request request = draw_request(spec, rng, zipf.get(), c);
        const SlaClass sla = request.sla;
        {
          std::lock_guard<std::mutex> lock(collector.mu);
          ++collector.report.offered;
        }
        bool done = false;
        const Status status = submit(
            std::move(request), [&](const Response& response) {
              collector.on_response(sla, response);
              {
                std::lock_guard<std::mutex> lock(mu);
                done = true;
              }
              cv.notify_one();
            });
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(collector.mu);
          ++collector.report.rejected;
          // Closed loop backs off instead of hammering a full queue.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done; });
        if (think_ms > 0.0) {
          // Exponential think time with mean think_ms.
          std::this_thread::sleep_for(
              std::chrono::microseconds(static_cast<std::int64_t>(
                  rng.exponential(1.0 / think_ms) * 1e3)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (drain) drain();
  collector.report.wall_s =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count() /
      1e9;
  return collector.report;
}

LoadReport run_closed_loop(Server& server, const WorkloadSpec& spec,
                           int clients, double think_ms) {
  return run_closed_loop(
      [&server](Request request, ResponseCallback on_done) {
        return server.submit(std::move(request), std::move(on_done));
      },
      [&server] { server.drain(); }, spec, clients, think_ms);
}

std::vector<EventArrival> generate_event_arrivals(const EventStreamSpec& spec) {
  std::vector<EventArrival> schedule;
  if (spec.topics.empty() || spec.clients <= 0 || spec.events_per_s <= 0.0) {
    return schedule;
  }
  const double horizon_us =
      std::chrono::duration_cast<std::chrono::microseconds>(spec.duration)
          .count();
  const double client_rate = spec.events_per_s / spec.clients;
  // Mean gap between bursts such that the long-run rate still matches:
  // a burst of n events spans (n-1) base gaps, then idles factor× that.
  const double base_gap_us = 1e6 / client_rate;

  for (int c = 0; c < spec.clients; ++c) {
    // Per-client deterministic substream, decorrelated across clients
    // (same splitmix stride the closed-loop clients use).
    Rng rng(spec.seed + 0x9E3779B97F4A7C15ULL * (c + 1));
    double t_us = 0.0;
    std::size_t in_burst = 0;
    while (t_us < horizon_us) {
      EventArrival arrival;
      arrival.topic = spec.topics[rng.uniform_int(spec.topics.size())];
      arrival.key = rng.uniform_int(
          spec.keys_per_topic == 0 ? 1 : spec.keys_per_topic);
      arrival.event_time_us = static_cast<std::uint64_t>(t_us);
      arrival.value = rng.uniform(spec.value_min, spec.value_max);
      arrival.seed = rng.next();
      arrival.latency_critical = rng.bernoulli(spec.lc_fraction);
      arrival.client = c;
      schedule.push_back(std::move(arrival));

      if (spec.arrival == EventStreamSpec::Arrival::kPoisson) {
        t_us += rng.exponential(client_rate) * 1e6;
      } else {
        ++in_burst;
        if (in_burst >= spec.burst_len) {
          in_burst = 0;
          // Idle gap with seeded jitter in [0.5, 1.5)× the nominal gap,
          // sized so the long-run rate matches events_per_s.
          const double burst_span_us = spec.burst_len * base_gap_us;
          t_us += spec.burst_idle_factor * burst_span_us *
                  rng.uniform(0.5, 1.5);
        } else {
          // Back-to-back within the burst: the burst drains at
          // (1 + idle_factor)× the base rate so the average holds.
          t_us += base_gap_us / (1.0 + spec.burst_idle_factor);
        }
      }
    }
  }
  // Merge the substreams into one event-time-ordered schedule. Ties
  // break by (client, key, seed) so the order is total — identical
  // seeds give byte-identical schedules.
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const EventArrival& a, const EventArrival& b) {
                     if (a.event_time_us != b.event_time_us) {
                       return a.event_time_us < b.event_time_us;
                     }
                     if (a.client != b.client) return a.client < b.client;
                     return a.seed < b.seed;
                   });
  return schedule;
}

EventStreamReport run_event_stream(const EventSubmitFn& submit,
                                   const EventStreamSpec& spec, bool pace) {
  EventStreamReport report;
  const std::vector<EventArrival> schedule = generate_event_arrivals(spec);
  const Clock::time_point start = Clock::now();
  for (const EventArrival& arrival : schedule) {
    if (pace) {
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(arrival.event_time_us));
    }
    ++report.offered;
    const Status status = submit(arrival);
    if (status.ok()) {
      ++report.admitted;
    } else {
      ++report.rejected;
    }
  }
  report.wall_s = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - start)
                      .count() /
                  1e9;
  return report;
}

}  // namespace everest::serve
