#include "serve/server.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace everest::serve {

namespace {
double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count() /
         1e3;
}

/// Deterministic shed decision: hash the request seed to uniform
/// permille so same-seed replays shed the same requests.
bool slo_shed_hit(std::uint64_t seed, std::uint32_t permille) {
  if (permille == 0) return false;
  SplitMix64 sm(seed ^ 0x51c0517eda11edULL);
  return sm.next() % 1000 < permille;
}
}  // namespace

Server::Server(ServerOptions options, runtime::KnowledgeBase* kb)
    : options_(options),
      kb_(kb),
      tuner_(kb),
      breakers_(options.breaker),
      breaker_epoch_(Clock::now()),
      input_cache_(options.input_cache) {
  queue_ = std::make_unique<RequestQueue>(options_.queue_capacity);
  batcher_ = std::make_unique<Batcher>(queue_.get(), options_.batch);
}

double Server::breaker_now_us() const {
  return us_between(breaker_epoch_, Clock::now());
}

data::CacheStats Server::input_cache_stats() const {
  std::lock_guard<std::mutex> lock(input_mu_);
  return input_cache_.stats();
}

void Server::warm_input(const data::ShardKey& key, double bytes) {
  const double cost = options_.input_link.transfer_us(bytes);
  std::lock_guard<std::mutex> lock(input_mu_);
  (void)input_cache_.insert(key, bytes, cost);
}

void Server::clear_input_cache() {
  std::lock_guard<std::mutex> lock(input_mu_);
  input_cache_.clear();
}

double Server::input_cache_resident_bytes() const {
  std::lock_guard<std::mutex> lock(input_mu_);
  return input_cache_.resident_bytes();
}

double Server::stage_batch_inputs(const Batch& batch) {
  // Distinct keys only: requests in one batch reading the same object
  // share one staging (the in-batch form of transfer dedup).
  std::map<std::string, double> keyed;
  for (const PendingRequest& pending : batch.requests) {
    if (!pending.request.data_key.empty()) {
      keyed.emplace(pending.request.data_key, pending.request.input_bytes);
    }
  }
  if (keyed.empty()) return 0.0;
  double stall_us = 0.0;
  std::uint64_t hits = 0, misses = 0;
  /// Cold stagings to report once the lock is dropped (the observer may
  /// do I/O — a WAL append — and must not serialize other workers).
  std::vector<std::pair<data::ShardKey, std::pair<double, double>>> staged;
  {
    std::lock_guard<std::mutex> lock(input_mu_);
    for (const auto& [name, bytes] : keyed) {
      const data::ShardKey key{data::object_id_from_name(name), 0, 0};
      if (input_cache_.lookup(key)) {
        ++hits;
        continue;
      }
      ++misses;
      const double cost = options_.input_link.transfer_us(bytes);
      stall_us += cost;
      if (input_cache_.insert(key, bytes, cost).ok() &&
          options_.on_input_staged) {
        staged.emplace_back(key, std::make_pair(bytes, cost));
      }
    }
  }
  for (const auto& [key, info] : staged) {
    options_.on_input_staged(key, info.first, info.second);
  }
  metrics_.record_input_stage(hits, misses, stall_us);
  return stall_us;
}

Server::~Server() { stop(); }

Status Server::register_endpoint(Endpoint endpoint) {
  if (running_.load()) {
    return FailedPrecondition("cannot register endpoints while serving");
  }
  if (endpoint.kernel.empty() ||
      (!endpoint.handler && !endpoint.variant_handler)) {
    return InvalidArgument("endpoint needs a kernel name and a handler");
  }
  if (endpoints_.count(endpoint.kernel) != 0) {
    return AlreadyExists("endpoint '" + endpoint.kernel +
                         "' already registered");
  }
  EVEREST_RETURN_IF_ERROR(kb_->load(endpoint.variants));
  endpoints_.emplace(endpoint.kernel, std::move(endpoint));
  return OkStatus();
}

Status Server::start() {
  if (running_.exchange(true)) {
    return FailedPrecondition("server already started");
  }
  if (endpoints_.empty()) {
    running_.store(false);
    return FailedPrecondition("no endpoints registered");
  }
  pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
  EVEREST_LOG(kInfo, "serve") << "server started: " << endpoints_.size()
                              << " endpoints, " << options_.worker_threads
                              << " workers, queue capacity "
                              << options_.queue_capacity;
  return OkStatus();
}

Status Server::submit(Request request, ResponseCallback on_done) {
  if (!running_.load()) {
    return FailedPrecondition("server is not running");
  }
  metrics_.record_submitted();
  if (draining_.load(std::memory_order_acquire)) {
    // Sealed by drain_gracefully(): refuse instead of buffering so the
    // drain condition (finished catches up to admitted) can be reached.
    metrics_.record_unavailable();
    return Unavailable("server is draining");
  }
  if (endpoints_.count(request.kernel) == 0) {
    return NotFound("no endpoint '" + request.kernel + "'");
  }
  // SLO burn-rate shedding: the monitor asked for a fraction of
  // throughput-class traffic to be dropped at the front door so the
  // remaining budget goes to requests that can still meet the SLO.
  if (request.sla == SlaClass::kThroughput &&
      slo_shed_hit(request.seed,
                   slo_shed_permille_.load(std::memory_order_acquire))) {
    metrics_.record_unavailable();
    return Unavailable("slo burn-rate control: shedding throughput load");
  }
  // Degraded mode sheds bulk traffic early: with breakers open (or an
  // SLO page standing) the queue is reserved for latency-critical work
  // once it passes the shed threshold.
  if ((degraded_.load(std::memory_order_acquire) ||
       slo_degraded_.load(std::memory_order_acquire)) &&
      request.sla == SlaClass::kThroughput &&
      static_cast<double>(queue_->size()) >=
          options_.degraded_shed_fill *
              static_cast<double>(options_.queue_capacity)) {
    metrics_.record_unavailable();
    return Unavailable("degraded mode: shedding throughput-class load");
  }
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.enqueue_time = Clock::now();
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    request.span_id = options_.tracer->next_id();
    // A request arriving without propagated identity starts its own
    // trace here; forwarded requests keep the federation's.
    if (!request.trace.valid()) {
      request.trace = obs::TraceContext{options_.tracer->next_id(), 0};
    }
  }
  PendingRequest pending{std::move(request), std::move(on_done)};
  const Status admitted = queue_->push(std::move(pending));
  if (!admitted.ok()) {
    metrics_.record_rejected();
    return admitted;
  }
  metrics_.record_admitted(queue_->size());
  admitted_requests_.fetch_add(1, std::memory_order_acq_rel);
  return OkStatus();
}

void Server::dispatch_loop() {
  // At most 2 batches per worker may be in flight (executing or handed to
  // the pool). Without this cap the dispatcher would drain the bounded
  // admission queue into the pool's unbounded task queue, hiding the
  // backlog from admission control and unbounding p99 under overload.
  const std::size_t max_inflight = 2 * options_.worker_threads;
  Batch batch;
  for (;;) {
    // Backpressure first, batch formation second: while the pool is busy,
    // requests wait in the admission queue, where capacity rejection,
    // SLA-priority popping, and deadline aging all still apply.
    while (inflight_batches_.load(std::memory_order_acquire) >=
           max_inflight) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (!batcher_->next_batch(&batch)) break;
    inflight_batches_.fetch_add(1, std::memory_order_acq_rel);
    pool_->submit([this, moved = std::move(batch)]() mutable {
      execute_batch(std::move(moved));
      inflight_batches_.fetch_sub(1, std::memory_order_acq_rel);
    });
    batch = Batch{};
  }
}

void Server::execute_batch(Batch batch) {
  const Clock::time_point dispatch_time = Clock::now();
  obs::Tracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();

  // SLA enforcement: answers after the deadline are worthless, so expired
  // requests are dropped here instead of burning handler time.
  std::vector<PendingRequest> live;
  live.reserve(batch.requests.size());
  for (PendingRequest& pending : batch.requests) {
    if (options_.drop_expired && dispatch_time > pending.request.deadline) {
      metrics_.record_expired();
      Response response;
      response.id = pending.request.id;
      response.status =
          DeadlineExceeded("request expired before dispatch (queued " +
                           std::to_string(static_cast<long>(us_between(
                               pending.request.enqueue_time, dispatch_time))) +
                           " us)");
      response.latency_us =
          us_between(pending.request.enqueue_time, dispatch_time);
      if (tracing && pending.request.span_id != 0) {
        const std::uint64_t trace_id = pending.request.trace.trace_id;
        const double t_enq = tracer->wall_us(pending.request.enqueue_time);
        const double t_disp = tracer->wall_us(dispatch_time);
        tracer->span(obs::TimeDomain::kWall, trace_id, tracer->next_id(),
                     pending.request.span_id, t_enq, t_disp, obs::kAutoTrack,
                     "queue", "serve");
        tracer->instant(obs::TimeDomain::kWall, trace_id, t_disp,
                        obs::kAutoTrack, "expired", "serve");
        tracer->span(obs::TimeDomain::kWall, trace_id,
                     pending.request.span_id,
                     pending.request.trace.parent_span, t_enq, t_disp,
                     obs::kAutoTrack, "request", "serve",
                     {{"outcome", "expired"}});
      }
      if (pending.on_done) pending.on_done(response);
      finished_requests_.fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    live.push_back(std::move(pending));
  }
  batch.requests = std::move(live);
  if (batch.requests.empty()) return;

  // Stage request inputs through the input cache before compute: warm
  // keys are free, cold keys stall the batch for their transfer time.
  const double stage_stall_us = stage_batch_inputs(batch);
  if (stage_stall_us > 0.0 && options_.input_stage_scale > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(
            stage_stall_us * options_.input_stage_scale)));
  }

  // Variant selection for the whole batch under the live system state
  // (shared knowledge base; its internal mutex makes this reentrant).
  runtime::SystemState state;
  state.fpgas_available = options_.fpgas_available;
  state.fpga_queue_depth =
      static_cast<double>(inflight_batches_.load(std::memory_order_acquire));
  state.cpu_load =
      std::min(0.95, static_cast<double>(pool_->pending()) /
                         static_cast<double>(pool_->thread_count() + 1));
  double scale = 0.0;
  for (const PendingRequest& pending : batch.requests) {
    scale += pending.request.payload_scale;
  }
  state.data_scale = scale / static_cast<double>(batch.size());

  runtime::Goal goal = options_.goal;
  // SLO-degraded: latency is the burning budget, so every batch (not
  // just latency-critical ones) is tuned for min latency until the
  // monitor clears the page.
  if (slo_degraded_.load(std::memory_order_acquire)) {
    goal.objective = runtime::Goal::Objective::kMinLatency;
  }
  if (batch.sla == SlaClass::kLatencyCritical) {
    goal.objective = runtime::Goal::Objective::kMinLatency;
    // Tightest remaining deadline in the batch becomes the constraint.
    double tightest_us = goal.latency_deadline_us;
    for (const PendingRequest& pending : batch.requests) {
      if (pending.request.deadline != Clock::time_point::max()) {
        tightest_us = std::min(
            tightest_us, us_between(dispatch_time, pending.request.deadline));
      }
    }
    goal.latency_deadline_us = std::max(1.0, tightest_us);
  }
  if (options_.enable_breaker) {
    state.variant_gate = [this, &batch](const compiler::Variant& v) {
      return breakers_.allow(batch.kernel, v.id, breaker_now_us());
    };
  }
  std::string variant_id;
  auto selection = tuner_.select(batch.kernel, goal, state);
  if (selection.ok()) variant_id = selection->variant.id;

  if (!selection.ok() && selection.status().code() == StatusCode::kUnavailable) {
    // Every variant of the kernel is withheld by an open breaker: answer
    // UNAVAILABLE without burning handler time (the caller may retry
    // after the cooldown lets a probe through).
    const Clock::time_point now = Clock::now();
    for (const PendingRequest& pending : batch.requests) {
      metrics_.record_unavailable();
      Response response;
      response.id = pending.request.id;
      response.status = selection.status();
      response.latency_us = us_between(pending.request.enqueue_time, now);
      response.batch_size = batch.size();
      if (tracing && pending.request.span_id != 0) {
        const std::uint64_t trace_id = pending.request.trace.trace_id;
        const double t_enq = tracer->wall_us(pending.request.enqueue_time);
        const double t_now = tracer->wall_us(now);
        tracer->span(obs::TimeDomain::kWall, trace_id, tracer->next_id(),
                     pending.request.span_id, t_enq,
                     tracer->wall_us(dispatch_time), obs::kAutoTrack, "queue",
                     "serve");
        tracer->instant(obs::TimeDomain::kWall, trace_id, t_now,
                        obs::kAutoTrack, "unavailable", "serve");
        tracer->span(obs::TimeDomain::kWall, trace_id,
                     pending.request.span_id,
                     pending.request.trace.parent_span, t_enq, t_now,
                     obs::kAutoTrack, "request", "serve",
                     {{"outcome", "unavailable"}});
      }
      if (pending.on_done) pending.on_done(response);
      finished_requests_.fetch_add(1, std::memory_order_acq_rel);
    }
    return;
  }

  // Execute the endpoint handler (the real work) and time it. The fault
  // injector may veto the execution first, simulating a variant failure
  // (dead FPGA slot, failed reconfiguration) that feeds the breaker.
  const Endpoint& endpoint = endpoints_.at(batch.kernel);
  std::vector<double> values;
  Status handler_status = OkStatus();
  bool fault_injected = false;
  if (selection.ok() && options_.fault_injector) {
    handler_status = options_.fault_injector(batch, selection->variant);
    fault_injected = !handler_status.ok();
  }
  const Clock::time_point exec_start = Clock::now();
  if (handler_status.ok()) {
    if (endpoint.variant_handler) {
      handler_status = endpoint.variant_handler(
          batch, selection.ok() ? &selection->variant : nullptr, &values);
    } else {
      handler_status = endpoint.handler(batch, &values);
    }
  }
  const Clock::time_point exec_end = Clock::now();
  const double service_us = us_between(exec_start, exec_end);

  // Data-feature export (the JIT detector's input signal): per-request
  // shape/tenant tuples with each request's share of the batch's handler
  // time — hot (kernel, feature, tenant) tuples and their measured cost
  // become registry facts the detector can mine.
  {
    const double share_us = service_us / static_cast<double>(batch.size());
    for (const PendingRequest& pending : batch.requests) {
      metrics_.record_feature(batch.kernel, pending.request.tenant,
                              pending.request.payload_scale, share_us);
    }
  }
  if (handler_status.ok() && values.size() != batch.size()) {
    handler_status = Internal("endpoint '" + batch.kernel + "' returned " +
                              std::to_string(values.size()) + " values for " +
                              std::to_string(batch.size()) + " requests");
  }
  metrics_.record_batch(batch.size(), service_us);
  if (tracing && fault_injected) {
    // Injected variant failure: surface it on the timeline next to the
    // batch it poisoned.
    tracer->instant(obs::TimeDomain::kWall,
                    batch.requests.front().request.trace.trace_id,
                    tracer->wall_us(exec_start), obs::kAutoTrack,
                    "fault-injected", "resilience",
                    {{"kernel", batch.kernel},
                     {"variant", variant_id}});
  }

  bool batch_degraded = false;
  if (options_.enable_breaker && selection.ok()) {
    breakers_.record(batch.kernel, selection->variant.id,
                     handler_status.ok(), breaker_now_us());
    batch_degraded =
        handler_status.ok() && breakers_.open_count(batch.kernel) > 0;
    degraded_.store(breakers_.open_count() > 0, std::memory_order_release);
  }

  // Close the Fig. 2 loop: feed the measured per-request cost back so the
  // next selection sees calibrated expectations.
  if (!variant_id.empty() && handler_status.ok()) {
    const double per_request_us =
        service_us / static_cast<double>(batch.size());
    tuner_.observe(batch.kernel, variant_id, per_request_us,
                   selection->predicted_energy_uj);
  }

  const Clock::time_point done = Clock::now();
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const PendingRequest& pending = batch.requests[i];
    Response response;
    response.id = pending.request.id;
    response.status = handler_status;
    response.value = handler_status.ok() ? values[i] : 0.0;
    response.latency_us = us_between(pending.request.enqueue_time, done);
    response.service_us = service_us;
    response.batch_size = batch.size();
    response.variant_id = variant_id;
    response.degraded = batch_degraded;
    if (handler_status.ok()) {
      metrics_.record_completion(pending.request.sla, response.latency_us);
      if (batch_degraded) metrics_.record_degraded();
    } else {
      metrics_.record_failed();
    }
    if (tracing && pending.request.span_id != 0) {
      const std::uint64_t trace_id = pending.request.trace.trace_id;
      const std::uint64_t root = pending.request.span_id;
      const double t_enq = tracer->wall_us(pending.request.enqueue_time);
      const double t_disp = tracer->wall_us(dispatch_time);
      const double t_exec0 = tracer->wall_us(exec_start);
      const double t_exec1 = tracer->wall_us(exec_end);
      const double t_done = tracer->wall_us(done);
      tracer->span(obs::TimeDomain::kWall, trace_id, tracer->next_id(), root,
                   t_enq, t_disp, obs::kAutoTrack, "queue", "serve");
      // Batch formation + input staging + variant selection window.
      tracer->span(obs::TimeDomain::kWall, trace_id, tracer->next_id(), root,
                   t_disp, t_exec0, obs::kAutoTrack, "batch", "serve",
                   {{"batch_size", std::to_string(batch.size())}});
      obs::Annotations exec_ann = {
          {"variant", variant_id},
          {"batch_size", std::to_string(batch.size())}};
      if (selection.ok()) {
        // The autotuner's decision, attached where it took effect.
        exec_ann.emplace_back(
            "predicted_latency_us",
            std::to_string(selection->predicted_latency_us));
        exec_ann.emplace_back("constraints_met",
                              selection->constraints_met ? "1" : "0");
      }
      tracer->span(obs::TimeDomain::kWall, trace_id, tracer->next_id(), root,
                   t_exec0, t_exec1, obs::kAutoTrack, "execute", "serve",
                   std::move(exec_ann));
      tracer->span(obs::TimeDomain::kWall, trace_id, tracer->next_id(), root,
                   t_exec1, t_done, obs::kAutoTrack, "reply", "serve");
      tracer->span(
          obs::TimeDomain::kWall, trace_id, root,
          pending.request.trace.parent_span, t_enq, t_done,
          obs::kAutoTrack, "request", "serve",
          {{"outcome", handler_status.ok()
                           ? (batch_degraded ? "degraded" : "ok")
                           : "failed"},
           {"sla", pending.request.sla == SlaClass::kLatencyCritical
                       ? "lc"
                       : "tp"}});
    }
    if (pending.on_done) pending.on_done(response);
    finished_requests_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void Server::drain() {
  if (!running_.load()) return;
  while (finished_requests_.load(std::memory_order_acquire) <
         admitted_requests_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

std::uint64_t Server::drain_gracefully() {
  if (!running_.load()) return 0;
  draining_.store(true, std::memory_order_release);
  const std::uint64_t finished_at_seal =
      finished_requests_.load(std::memory_order_acquire);
  // Re-read admitted each pass: a submit that passed the draining check
  // before the seal may still be incrementing it.
  while (finished_requests_.load(std::memory_order_acquire) <
         admitted_requests_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::uint64_t drained =
      finished_requests_.load(std::memory_order_acquire) - finished_at_seal;
  EVEREST_LOG(kInfo, "serve")
      << "drained " << drained << " in-flight request(s)";
  return drained;
}

void Server::resume_admission() {
  draining_.store(false, std::memory_order_release);
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Let admitted work finish, then unblock the dispatcher.
  while (finished_requests_.load(std::memory_order_acquire) <
         admitted_requests_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  queue_->close();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_->wait_idle();
  pool_->shutdown();
  EVEREST_LOG(kInfo, "serve") << "server stopped";
}

}  // namespace everest::serve
