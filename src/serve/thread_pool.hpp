// A fixed-size worker pool — the repo's first real (non-simulated)
// concurrency. The workflow module *models* worker pools for scheduling
// research; this one actually runs std::threads so the serving layer can
// overlap batch execution with batch formation and admission.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace everest::serve {

/// Fixed-size pool executing submitted closures FIFO. Destruction drains
/// the queue, then joins.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues work; runs on some pool thread. Must not be called after
  /// shutdown() (asserts via the stopped flag).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished and the queue is
  /// empty. Safe to call repeatedly; new work may be submitted after.
  void wait_idle();

  /// Drains outstanding work and joins all threads (idempotent).
  void shutdown();

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }
  /// Tasks queued but not yet started (for metrics/backpressure signals).
  [[nodiscard]] std::size_t pending() const;
  /// Tasks currently executing.
  [[nodiscard]] std::size_t active() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable idle_cv_;   // signals wait_idle(): all drained
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace everest::serve
