// Request/response model of the serving layer (ROADMAP north star: turn
// the demonstrator into a service that sustains heavy concurrent traffic).
// A Request names a servable kernel, carries an SLA class and an absolute
// deadline; a Response reports the outcome plus the measured latency split
// and the variant the autotuner picked for the batch it rode in.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hpp"
#include "obs/trace.hpp"

namespace everest::serve {

using Clock = std::chrono::steady_clock;

/// Service classes with different latency objectives (paper §IV: the
/// runtime honours "dynamic requirements" per request, not per process).
enum class SlaClass : std::uint8_t {
  /// Interactive traffic: small batches, tight deadline, dispatched first.
  kLatencyCritical = 0,
  /// Bulk/analytics traffic: batched aggressively for throughput.
  kThroughput = 1,
};

std::string_view to_string(SlaClass sla);

/// Log2 bucket of a request's data-volume scale — the "data feature" axis
/// of the serving layer's shape histograms and the JIT's hot-tuple key.
/// Bucket b covers scales in [2^(b-0.5), 2^(b+0.5)); clamped to ±16 so a
/// garbage scale cannot explode registry cardinality.
inline int feature_bucket(double payload_scale) {
  if (!(payload_scale > 0.0)) return 0;
  const double b = std::lround(std::log2(payload_scale));
  return static_cast<int>(b < -16 ? -16 : (b > 16 ? 16 : b));
}

/// Representative scale of a feature bucket (the center the JIT
/// specializes for): inverse of feature_bucket at bucket centers.
inline double feature_bucket_scale(int bucket) {
  return std::exp2(static_cast<double>(bucket));
}

/// One unit of client work addressed to a servable kernel.
struct Request {
  /// Assigned by the server at admission; unique per server instance.
  std::uint64_t id = 0;
  /// Endpoint/kernel name registered with the server.
  std::string kernel;
  SlaClass sla = SlaClass::kThroughput;
  /// Data-volume scale relative to the profiled size (autotuner feature).
  double payload_scale = 1.0;
  /// Originating tenant ("" = anonymous). Third axis of the JIT's hot
  /// (kernel, data-feature, tenant) tuples; labels the per-kernel shape
  /// histograms the serving layer exports.
  std::string tenant;
  /// Named input data object this request reads ("" = no input staging).
  /// Repeated keys hit the server's input cache — warm replicas for
  /// repeated same-tenant requests.
  std::string data_key;
  /// Size of that input (bytes); a cache miss pays its transfer time.
  double input_bytes = 0.0;
  /// Per-request randomness root so replays are deterministic.
  std::uint64_t seed = 0;
  /// Absolute deadline; expired requests are dropped at dispatch time.
  Clock::time_point deadline = Clock::time_point::max();
  /// Stamped at admission.
  Clock::time_point enqueue_time{};
  /// Root span id for this request's trace (0 = tracing off). Assigned
  /// at admission; the span itself is emitted when the outcome is known.
  std::uint64_t span_id = 0;
  /// Propagated trace identity. When valid (a federation forward, a
  /// stream delivery), the server's spans join THIS trace, parented
  /// under trace.parent_span, instead of opening a fresh per-server
  /// trace — the cross-node stitching contract (DESIGN.md row 19).
  obs::TraceContext trace;
};

/// Outcome delivered to the completion callback.
struct Response {
  std::uint64_t id = 0;
  /// OK, or why the request never executed (RESOURCE_EXHAUSTED at
  /// admission, DEADLINE_EXCEEDED at dispatch, INTERNAL on handler error).
  Status status;
  /// Scalar endpoint result (forecast MW, µg/m³, route seconds, ...).
  double value = 0.0;
  /// enqueue → completion, including queueing and batching delay (µs).
  double latency_us = 0.0;
  /// Handler execution time of the batch this request rode in (µs).
  double service_us = 0.0;
  /// Size of that batch.
  std::size_t batch_size = 0;
  /// Variant the autotuner selected for the batch ("" when dropped).
  std::string variant_id;
  /// True when the answer was produced in degraded mode: circuit breakers
  /// withheld the preferred variant and a fallback served the request.
  bool degraded = false;
};

/// Completion callback; invoked exactly once per submitted request, from a
/// worker thread (or inline from submit() on admission rejection).
using ResponseCallback = std::function<void(const Response&)>;

}  // namespace everest::serve
