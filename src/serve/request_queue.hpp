// Bounded admission queue: the service's front door. Two lanes (one per
// SLA class) behind one mutex; push is admission control — when the queue
// is at capacity the item is rejected immediately with
// RESOURCE_EXHAUSTED instead of building an unbounded backlog. That
// reject-don't-buffer policy is what keeps p99 latency bounded under
// overload (bench E17 measures exactly this).
//
// The policy is generic over the queued item: TwoLaneQueue<T> carries the
// lanes, the capacity bound, and the blocking consumer side, so the same
// admission path fronts both request serving (RequestQueue below) and
// continuous event ingestion (stream::Ingestor).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "serve/request.hpp"

namespace everest::serve {

/// Thread-safe bounded MPMC queue with two priority lanes (lane 0 is
/// always popped first). Producers never block: a full queue rejects.
template <typename T>
class TwoLaneQueue {
 public:
  explicit TwoLaneQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admission: enqueues into `lane` (0 = priority, 1 = bulk) or rejects
  /// with RESOURCE_EXHAUSTED when full, FAILED_PRECONDITION when closed.
  /// `label` names the rejected item in the error message. Never blocks.
  Status push(T item, int lane, const std::string& label) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return FailedPrecondition("queue is closed");
      }
      if (total_locked() >= capacity_) {
        return ResourceExhausted("queue full (" + std::to_string(capacity_) +
                                 " pending), " + label + " rejected");
      }
      lanes_[lane == 0 ? 0 : 1].push_back(std::move(item));
    }
    cv_.notify_one();
    return OkStatus();
  }

  /// Pops the oldest item, priority lane first. Blocks up to `timeout`;
  /// returns nullopt on timeout or when closed and drained.
  std::optional<T> pop(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout,
                 [this] { return closed_ || total_locked() > 0; });
    for (auto& lane : lanes_) {
      if (!lane.empty()) {
        T out = std::move(lane.front());
        lane.pop_front();
        return out;
      }
    }
    return std::nullopt;
  }

  /// Items currently queued (both lanes).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_locked();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Stops admission; consumers drain what is left, then pop() returns
  /// nullopt immediately.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 protected:
  [[nodiscard]] std::size_t total_locked() const {
    return lanes_[0].size() + lanes_[1].size();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> lanes_[2];
  bool closed_ = false;
};

/// A request plus its completion callback, as held inside the server.
struct PendingRequest {
  Request request;
  ResponseCallback on_done;
};

/// The serving front door: TwoLaneQueue of pending requests with the
/// lanes keyed by SLA class (latency-critical jumps the queue) plus the
/// batcher's kernel-compatible pop.
class RequestQueue : public TwoLaneQueue<PendingRequest> {
 public:
  explicit RequestQueue(std::size_t capacity)
      : TwoLaneQueue<PendingRequest>(capacity) {}

  /// Admission: enqueues or rejects with RESOURCE_EXHAUSTED when full,
  /// FAILED_PRECONDITION when closed. Never blocks the producer.
  Status push(PendingRequest pending);

  /// Pops the oldest queued request for `kernel` in `sla` class, if any.
  /// Non-blocking; used by the batcher to coalesce compatible requests.
  std::optional<PendingRequest> pop_compatible(const std::string& kernel,
                                               SlaClass sla);
};

}  // namespace everest::serve
