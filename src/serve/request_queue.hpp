// Bounded admission queue: the service's front door. Two lanes (one per
// SLA class) behind one mutex; push is admission control — when the queue
// is at capacity the request is rejected immediately with
// RESOURCE_EXHAUSTED instead of building an unbounded backlog. That
// reject-don't-buffer policy is what keeps p99 latency bounded under
// overload (bench E17 measures exactly this).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/status.hpp"
#include "serve/request.hpp"

namespace everest::serve {

/// A request plus its completion callback, as held inside the server.
struct PendingRequest {
  Request request;
  ResponseCallback on_done;
};

/// Thread-safe bounded MPMC queue with SLA-class priority.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admission: enqueues or rejects with RESOURCE_EXHAUSTED when full,
  /// FAILED_PRECONDITION when closed. Never blocks the producer.
  Status push(PendingRequest pending);

  /// Pops the oldest request, latency-critical lane first. Blocks up to
  /// `timeout`; returns nullopt on timeout or when closed and drained.
  std::optional<PendingRequest> pop(std::chrono::microseconds timeout);

  /// Pops the oldest queued request for `kernel` in `sla` class, if any.
  /// Non-blocking; used by the batcher to coalesce compatible requests.
  std::optional<PendingRequest> pop_compatible(const std::string& kernel,
                                               SlaClass sla);

  /// Requests currently queued (both lanes).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Stops admission; consumers drain what is left, then pop() returns
  /// nullopt immediately.
  void close();
  [[nodiscard]] bool closed() const;

 private:
  [[nodiscard]] std::size_t total_locked() const {
    return lanes_[0].size() + lanes_[1].size();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// lanes_[0] = latency-critical, lanes_[1] = throughput.
  std::deque<PendingRequest> lanes_[2];
  bool closed_ = false;
};

}  // namespace everest::serve
