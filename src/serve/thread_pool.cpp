#include "serve/thread_pool.hpp"

#include <cassert>

namespace everest::serve {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_ && "submit() after shutdown()");
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

std::size_t ThreadPool::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace everest::serve
