// The serving front door over the EVEREST runtime (the Fig. 2 loop under
// concurrent traffic): submit() applies admission control and enqueues; a
// dispatcher thread forms batches per the coalescing policy; a worker
// pool executes batches — each batch runs the mARGOt-style autotuner to
// pick a variant for the batch's kernel under the *live* system state
// (queue depth, worker occupancy), executes the endpoint handler for
// real, and feeds the measured service time back into the shared
// knowledge base. SLA classes steer both batching (latency-critical
// batches stay small and jump the queue) and deadline handling (expired
// requests are dropped at dispatch, not executed late).
#pragma once

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "data/cache.hpp"
#include "obs/trace.hpp"
#include "platform/links.hpp"
#include "resilience/circuit_breaker.hpp"
#include "runtime/autotuner.hpp"
#include "runtime/knowledge.hpp"
#include "serve/batcher.hpp"
#include "serve/endpoints.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/thread_pool.hpp"

namespace everest::serve {

struct ServerOptions {
  /// Admission bound: requests beyond this are rejected, not buffered.
  std::size_t queue_capacity = 256;
  /// Worker threads executing batches.
  std::size_t worker_threads = 2;
  BatchPolicy batch;
  /// Autotuner objective for throughput-class batches. Latency-critical
  /// batches always run with a min-latency goal plus the per-request
  /// deadline as the constraint.
  runtime::Goal goal;
  /// FPGA slots visible to variant selection (0 = software only).
  int fpgas_available = 1;
  /// Drop requests whose deadline already passed when their batch is
  /// dispatched (they would deliver a useless late answer).
  bool drop_expired = true;

  // ---- graceful degradation ----
  /// Per-(kernel, variant) circuit breakers: batch failures trip the
  /// variant's breaker; selection then falls back to the next variant
  /// (e.g. FPGA → CPU). UNAVAILABLE is returned only when every variant
  /// of a kernel is withheld.
  bool enable_breaker = true;
  resilience::BreakerPolicy breaker;
  /// Fault injection hook for tests/benches: called after variant
  /// selection, before the handler. A non-OK status simulates that the
  /// batch's execution failed on that variant (the handler is skipped and
  /// the failure feeds the breaker).
  std::function<Status(const Batch&, const compiler::Variant&)>
      fault_injector;
  /// While in degraded mode (any breaker open), throughput-class traffic
  /// is shed at admission once the queue passes this fill fraction,
  /// keeping headroom for latency-critical requests.
  double degraded_shed_fill = 0.5;

  // ---- input staging ----
  /// Cache for request input objects (Request::data_key). capacity 0 =
  /// cold path: every keyed request pays its input's transfer time.
  data::CacheConfig input_cache;
  /// Link the input store is reached over; a miss on `data_key` stalls
  /// the batch for input_link.transfer_us(input_bytes) (scaled).
  platform::LinkModel input_link = platform::LinkModel::tcp_datacenter();
  /// Scales simulated staging stalls onto the wall clock (1.0 = one
  /// modelled µs is one slept µs; smaller keeps benches fast).
  double input_stage_scale = 1.0;
  /// Observer of cold input stagings: (key, bytes, refetch cost µs) for
  /// every miss that was fetched and cached. Fired from worker threads,
  /// outside the input-cache lock — the cluster federation hangs a
  /// write-ahead catalog log here so restart() can warm the cache back
  /// by replay instead of refetching.
  std::function<void(const data::ShardKey&, double, double)> on_input_staged;

  // ---- observability ----
  /// Span sink (borrowed; may be null). When enabled, every admitted
  /// request gets a wall-clock span chain — root "request" with "queue",
  /// "batch", "execute" (annotated with the autotuner's variant
  /// decision), and "reply" children — plus instant events for expiry,
  /// unavailability, and injected faults. A request carrying a valid
  /// TraceContext joins that trace (spans parent under
  /// trace.parent_span); otherwise the server opens a fresh trace at
  /// admission, so local and forwarded traffic alike produce one
  /// root-reachable chain.
  obs::Tracer* tracer = nullptr;
};

/// Multi-tenant request server. Thread-safe: submit() may be called from
/// any number of client threads once start() returned.
class Server {
 public:
  /// `kb` is the shared application knowledge base (owned by the caller,
  /// e.g. the same instance other runtime components use). It must
  /// outlive the server.
  Server(ServerOptions options, runtime::KnowledgeBase* kb);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a servable kernel and loads its variants into the
  /// knowledge base. Must be called before start().
  Status register_endpoint(Endpoint endpoint);

  /// Spins up the dispatcher and the worker pool.
  Status start();

  /// Admission: stamps id/enqueue time and enqueues. Returns
  /// RESOURCE_EXHAUSTED when the queue is full (the callback is NOT
  /// invoked then — the caller owns retry policy), NOT_FOUND for an
  /// unregistered kernel, FAILED_PRECONDITION before start()/after
  /// stop(). On OK the callback fires exactly once, from a worker thread.
  Status submit(Request request, ResponseCallback on_done);

  /// Waits until the queue is empty and all in-flight batches finished.
  void drain();

  /// Graceful drain for failover/rebalance: atomically seals admission
  /// (submit returns UNAVAILABLE while draining), waits until every
  /// already-admitted request has had its response delivered, and
  /// returns how many responses were delivered during the drain. The
  /// server keeps running; resume_admission() re-opens the front door
  /// (the rejoin path). Safe to call concurrently with submit() from any
  /// number of client threads.
  std::uint64_t drain_gracefully();

  /// Re-admits traffic after drain_gracefully().
  void resume_admission();

  /// Admission currently sealed by drain_gracefully()?
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// drain() + stop dispatcher + join workers (idempotent).
  void stop();

  [[nodiscard]] const ServingMetrics& metrics() const { return metrics_; }
  ServingMetrics& mutable_metrics() { return metrics_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_->size(); }
  [[nodiscard]] const resilience::CircuitBreakerBoard& breakers() const {
    return breakers_;
  }
  /// Mutable access for wiring observers (e.g. a flight recorder's
  /// breaker-open trigger). Call before traffic starts.
  resilience::CircuitBreakerBoard& mutable_breakers() { return breakers_; }
  /// Any breaker open right now (degraded mode)?
  [[nodiscard]] bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  // ---- telemetry-steered admission (SLO burn-rate control) ----
  /// Sheds this fraction of throughput-class traffic at admission
  /// (0 = none, 1 = all). The drop decision hashes Request::seed, so a
  /// replay with the same seeds sheds the same requests. Set from an SLO
  /// monitor's alert callback; cleared on recovery.
  void set_slo_shed_fraction(double fraction) {
    slo_shed_permille_.store(
        static_cast<std::uint32_t>(
            std::clamp(fraction, 0.0, 1.0) * 1000.0),
        std::memory_order_release);
  }
  [[nodiscard]] double slo_shed_fraction() const {
    return slo_shed_permille_.load(std::memory_order_acquire) / 1000.0;
  }
  /// SLO-degraded mode: batches are tuned with a min-latency goal (the
  /// burn says latency is the scarce resource) and throughput-class
  /// traffic additionally obeys the degraded_shed_fill gate even while
  /// no breaker is open.
  void set_slo_degraded(bool on) {
    slo_degraded_.store(on, std::memory_order_release);
  }
  [[nodiscard]] bool slo_degraded() const {
    return slo_degraded_.load(std::memory_order_acquire);
  }

  /// Input-cache counters (hits/misses of data_key staging).
  [[nodiscard]] data::CacheStats input_cache_stats() const;

  /// Re-seeds one input-cache entry without a staging stall or miss
  /// accounting — the warm-restart replay path (the bytes were staged in
  /// a previous life; only the RAM copy is being rebuilt).
  void warm_input(const data::ShardKey& key, double bytes);

  /// Drops every staged input (a cold restart: process death loses RAM).
  void clear_input_cache();

  [[nodiscard]] double input_cache_resident_bytes() const;

 private:
  void dispatch_loop();
  void execute_batch(Batch batch);
  /// Stages the batch's distinct data_keys through the input cache;
  /// returns the modelled stall (µs) the misses cost.
  double stage_batch_inputs(const Batch& batch);
  /// Breaker clock: microseconds since server construction.
  [[nodiscard]] double breaker_now_us() const;

  ServerOptions options_;
  runtime::KnowledgeBase* kb_;
  runtime::Autotuner tuner_;
  std::map<std::string, Endpoint> endpoints_;

  std::unique_ptr<RequestQueue> queue_;
  std::unique_ptr<Batcher> batcher_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread dispatcher_;

  resilience::CircuitBreakerBoard breakers_;
  std::atomic<bool> degraded_{false};
  /// SLO burn-rate controls (telemetry-steered admission).
  std::atomic<std::uint32_t> slo_shed_permille_{0};
  std::atomic<bool> slo_degraded_{false};
  Clock::time_point breaker_epoch_;

  /// Input staging cache; single-owner type, shared across workers under
  /// its own mutex.
  mutable std::mutex input_mu_;
  data::Cache input_cache_;

  ServingMetrics metrics_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> inflight_batches_{0};
  /// Requests past admission vs. requests with a delivered response;
  /// equality is the drain condition (a queue/pool emptiness check would
  /// miss requests held inside a forming batch).
  std::atomic<std::uint64_t> admitted_requests_{0};
  std::atomic<std::uint64_t> finished_requests_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
};

}  // namespace everest::serve
