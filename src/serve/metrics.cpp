#include "serve/metrics.hpp"

#include <algorithm>

namespace everest::serve {

void ServingMetrics::record_submitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.submitted;
}

void ServingMetrics::record_admitted(std::size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.admitted;
  counters_.max_queue_depth =
      std::max(counters_.max_queue_depth, queue_depth_after);
}

void ServingMetrics::record_rejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rejected;
}

void ServingMetrics::record_expired() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.expired;
}

void ServingMetrics::record_failed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.failed;
}

void ServingMetrics::record_unavailable() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.unavailable;
}

void ServingMetrics::record_degraded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.degraded;
}

void ServingMetrics::record_batch(std::size_t batch_size, double service_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.batches;
  ++counters_.batch_histogram[batch_size];
  batch_size_.add(static_cast<double>(batch_size));
  service_us_.add(service_us);
}

void ServingMetrics::record_input_stage(std::uint64_t hits,
                                        std::uint64_t misses,
                                        double stall_us) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.input_hits += hits;
  counters_.input_misses += misses;
  counters_.input_stall_us += stall_us;
}

void ServingMetrics::record_completion(SlaClass sla, double latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.completed;
  latencies_us_[static_cast<int>(sla)].push_back(latency_us);
}

MetricsSnapshot ServingMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap = counters_;
  std::vector<double> all;
  all.reserve(latencies_us_[0].size() + latencies_us_[1].size());
  all.insert(all.end(), latencies_us_[0].begin(), latencies_us_[0].end());
  all.insert(all.end(), latencies_us_[1].begin(), latencies_us_[1].end());
  if (!all.empty()) {
    snap.p50_us = percentile(all, 50.0);
    snap.p99_us = percentile(all, 99.0);
    snap.mean_us = mean_of(all);
    snap.max_us = *std::max_element(all.begin(), all.end());
  }
  if (!latencies_us_[0].empty()) {
    snap.lc_p99_us = percentile(latencies_us_[0], 99.0);
  }
  if (!latencies_us_[1].empty()) {
    snap.tp_p99_us = percentile(latencies_us_[1], 99.0);
  }
  snap.service_mean_us = service_us_.mean();
  snap.mean_batch_size = batch_size_.mean();
  return snap;
}

void ServingMetrics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = MetricsSnapshot{};
  latencies_us_[0].clear();
  latencies_us_[1].clear();
  service_us_ = OnlineStats{};
  batch_size_ = OnlineStats{};
}

}  // namespace everest::serve
