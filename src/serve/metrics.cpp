#include "serve/metrics.hpp"

#include <algorithm>

namespace everest::serve {
namespace {

// Latency buckets: 1 µs lower resolution, ×1.5 growth, 64 buckets
// (~1.2e11 µs ceiling) — covers sub-ms service times through pathological
// overload tails.
obs::HistogramOptions latency_buckets() {
  obs::HistogramOptions opt;
  opt.min = 1.0;
  opt.growth = 1.5;
  opt.buckets = 64;
  return opt;
}

// Payload-scale buckets: 1/64x resolution, x1.25 growth, 48 buckets
// (~2^15 ceiling) — covers the feature_bucket range at finer grain.
obs::HistogramOptions scale_buckets() {
  obs::HistogramOptions opt;
  opt.min = 1.0 / 64.0;
  opt.growth = 1.25;
  opt.buckets = 48;
  return opt;
}

}  // namespace

ServingMetrics::ServingMetrics()
    : submitted_(registry_.counter("serve.submitted")),
      admitted_(registry_.counter("serve.admitted")),
      rejected_(registry_.counter("serve.rejected")),
      expired_(registry_.counter("serve.expired")),
      failed_(registry_.counter("serve.failed")),
      completed_(registry_.counter("serve.completed")),
      unavailable_(registry_.counter("serve.unavailable")),
      degraded_(registry_.counter("serve.degraded")),
      input_hits_(registry_.counter("serve.input_hits")),
      input_misses_(registry_.counter("serve.input_misses")),
      // Merge kinds pinned per the registry contract: total stall time
      // partitions across nodes (sum); queue depth is a watermark (max).
      input_stall_us_(registry_.gauge("serve.input_stall_us",
                                      obs::GaugeKind::kSum)),
      max_queue_depth_(registry_.gauge("serve.max_queue_depth",
                                       obs::GaugeKind::kMax)) {
  latency_hist_[0] = registry_.histogram("serve.latency_us", latency_buckets(),
                                         {{"class", "lc"}});
  latency_hist_[1] = registry_.histogram("serve.latency_us", latency_buckets(),
                                         {{"class", "tp"}});
}

void ServingMetrics::record_admitted(std::size_t queue_depth_after) {
  admitted_->inc();
  max_queue_depth_->set_max(static_cast<double>(queue_depth_after));
}

void ServingMetrics::record_batch(std::size_t batch_size, double service_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batch_sizes_[batch_size];
  batch_size_.add(static_cast<double>(batch_size));
  service_us_.add(service_us);
}

void ServingMetrics::record_input_stage(std::uint64_t hits,
                                        std::uint64_t misses,
                                        double stall_us) {
  input_hits_->inc(hits);
  input_misses_->inc(misses);
  input_stall_us_->add(stall_us);
}

void ServingMetrics::record_feature(const std::string& kernel,
                                    const std::string& tenant,
                                    double payload_scale,
                                    double service_share_us) {
  const int bucket = feature_bucket(payload_scale);
  const obs::Labels tuple_labels = {{"kernel", kernel},
                                    {"tenant", tenant},
                                    {"bucket", std::to_string(bucket)}};
  const std::string tuple_key =
      obs::Registry::key_of("serve.feature", tuple_labels);
  FeatureInstruments instruments;
  obs::Histogram* scale_hist = nullptr;
  obs::Gauge* last_scale = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = feature_cache_.find(tuple_key);
    if (it == feature_cache_.end()) {
      FeatureInstruments fresh;
      fresh.requests =
          registry_.counter("serve.feature.requests", tuple_labels);
      fresh.service_us = registry_.histogram("serve.feature.service_us",
                                             latency_buckets(), tuple_labels);
      it = feature_cache_.emplace(tuple_key, fresh).first;
    }
    instruments = it->second;
    auto sit = feature_scale_cache_.find(kernel);
    if (sit == feature_scale_cache_.end()) {
      sit = feature_scale_cache_
                .emplace(kernel,
                         registry_.histogram("serve.feature.scale",
                                             scale_buckets(),
                                             {{"kernel", kernel}}))
                .first;
      // kLastWrite pinned here, the registration site: an instantaneous
      // node-local value the cross-node rollup must drop, per the PR 9
      // GaugeKind contract.
      feature_last_scale_cache_.emplace(
          kernel, registry_.gauge("serve.feature.last_scale",
                                  obs::GaugeKind::kLastWrite,
                                  {{"kernel", kernel}}));
    }
    scale_hist = sit->second;
    last_scale = feature_last_scale_cache_.at(kernel);
  }
  instruments.requests->inc();
  instruments.service_us->record(service_share_us);
  scale_hist->record(payload_scale);
  last_scale->set(payload_scale);
}

void ServingMetrics::record_completion(SlaClass sla, double latency_us) {
  completed_->inc();
  latency_hist_[static_cast<int>(sla)]->record(latency_us);
  std::lock_guard<std::mutex> lock(mu_);
  latencies_us_[static_cast<int>(sla)].push_back(latency_us);
}

MetricsSnapshot ServingMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.submitted = submitted_->value();
  snap.admitted = admitted_->value();
  snap.rejected = rejected_->value();
  snap.expired = expired_->value();
  snap.failed = failed_->value();
  snap.completed = completed_->value();
  snap.unavailable = unavailable_->value();
  snap.degraded = degraded_->value();
  snap.input_hits = input_hits_->value();
  snap.input_misses = input_misses_->value();
  snap.input_stall_us = input_stall_us_->value();
  snap.max_queue_depth = static_cast<std::size_t>(max_queue_depth_->value());

  std::lock_guard<std::mutex> lock(mu_);
  snap.batch_histogram = batch_sizes_;
  snap.batches = 0;
  for (const auto& [size, n] : batch_sizes_) snap.batches += n;
  std::vector<double> all;
  all.reserve(latencies_us_[0].size() + latencies_us_[1].size());
  all.insert(all.end(), latencies_us_[0].begin(), latencies_us_[0].end());
  all.insert(all.end(), latencies_us_[1].begin(), latencies_us_[1].end());
  if (!all.empty()) {
    snap.p50_us = percentile(all, 50.0);
    snap.p99_us = percentile(all, 99.0);
    snap.mean_us = mean_of(all);
    snap.max_us = *std::max_element(all.begin(), all.end());
  }
  if (!latencies_us_[0].empty()) {
    snap.lc_p99_us = percentile(latencies_us_[0], 99.0);
  }
  if (!latencies_us_[1].empty()) {
    snap.tp_p99_us = percentile(latencies_us_[1], 99.0);
  }
  snap.service_mean_us = service_us_.mean();
  snap.mean_batch_size = batch_size_.mean();
  return snap;
}

obs::HistogramSnapshot ServingMetrics::latency_histogram() const {
  obs::HistogramSnapshot merged = latency_hist_[0]->snapshot();
  merged.merge(latency_hist_[1]->snapshot());
  return merged;
}

void ServingMetrics::reset() {
  registry_.reset();
  std::lock_guard<std::mutex> lock(mu_);
  latencies_us_[0].clear();
  latencies_us_[1].clear();
  batch_sizes_.clear();
  service_us_ = OnlineStats{};
  batch_size_ = OnlineStats{};
}

}  // namespace everest::serve
