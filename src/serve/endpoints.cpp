#include "serve/endpoints.hpp"

#include <cmath>
#include <memory>

#include "apps/airquality.hpp"
#include "apps/energy.hpp"
#include "apps/traffic.hpp"
#include "apps/weather.hpp"
#include "common/rng.hpp"

namespace everest::serve {

namespace {

using apps::WeatherField;
using apps::WeatherGenerator;
using apps::WeatherOptions;
using compiler::TargetKind;
using compiler::Variant;

/// Hand-calibrated variant metadata: the static estimates the compiler
/// would emit for these kernels. The serving loop feeds measured service
/// times back through KnowledgeBase::observe, so the estimates only need
/// to be in the right ballpark for the first few selections.
Variant make_variant(const std::string& id, const std::string& kernel,
                     TargetKind target, int threads, double latency_us,
                     double energy_uj, const std::string& device = "") {
  Variant v;
  v.id = id;
  v.kernel = kernel;
  v.target = target;
  v.threads = threads;
  v.latency_us = latency_us;
  v.energy_uj = energy_uj;
  v.device = device;
  v.bytes_in = 64e3;
  v.bytes_out = 8.0;
  return v;
}

std::vector<Variant> standard_variants(const std::string& kernel,
                                       double cpu_latency_us) {
  return {
      make_variant(kernel + "-cpu-t1", kernel, TargetKind::kCpu, 1,
                   cpu_latency_us, cpu_latency_us * 70.0),
      make_variant(kernel + "-cpu-t4", kernel, TargetKind::kCpu, 4,
                   cpu_latency_us * 0.4, cpu_latency_us * 90.0),
      make_variant(kernel + "-fpga-ku060", kernel, TargetKind::kFpga, 1,
                   cpu_latency_us * 0.15, cpu_latency_us * 8.0,
                   "cloudFPGA-KU060"),
  };
}

/// Shared per-batch seed: derived from the opening request so replays of
/// the same workload reproduce the same shared fields.
std::uint64_t batch_seed(const Batch& batch, std::uint64_t base_seed) {
  return base_seed * 0x9E3779B97F4A7C15ULL ^ batch.requests[0].request.seed;
}

}  // namespace

Endpoint make_energy_endpoint(std::uint64_t base_seed) {
  Endpoint ep;
  ep.kernel = "energy_forecast";
  ep.variants = standard_variants(ep.kernel, 900.0);
  ep.handler = [base_seed](const Batch& batch,
                           std::vector<double>* values) -> Status {
    // Shared setup: one coarse wind state, downscaled 4x (the §VI-A
    // resolution-boost path). This dominates the handler's cost and is
    // paid once per batch, whatever its size.
    WeatherOptions options;
    options.ny = 24;
    options.nx = 24;
    WeatherGenerator generator(options, batch_seed(batch, base_seed));
    auto truth = generator.generate_truth(1);
    if (truth.empty()) return Internal("weather generation produced nothing");
    const WeatherField fine =
        apps::downscale(truth[0].wind_speed, 4, 0.05, base_seed ^ 0xD5);

    // Per request: evaluate a request-specific wind farm on the shared
    // field (power curve over ~16 turbines).
    values->clear();
    values->reserve(batch.size());
    for (const PendingRequest& pending : batch.requests) {
      const int turbines =
          16 + static_cast<int>(pending.request.payload_scale * 8.0);
      const apps::WindFarm farm = apps::WindFarm::make_cluster(
          turbines, fine.ny * fine.dx_km, fine.nx * fine.dx_km,
          pending.request.seed);
      values->push_back(farm.farm_power(fine));
    }
    return OkStatus();
  };
  return ep;
}

Endpoint make_airquality_endpoint(std::uint64_t base_seed) {
  Endpoint ep;
  ep.kernel = "aq_dispersion";
  ep.variants = standard_variants(ep.kernel, 1400.0);
  ep.handler = [base_seed](const Batch& batch,
                           std::vector<double>* values) -> Status {
    // Shared setup: an ensemble of dispersion fields around the site (the
    // expensive §VI-B forecast core).
    constexpr int kMembers = 4;
    constexpr int kGrid = 24;
    const std::vector<apps::StackSource> sources = {
        {2.0, 2.0, 60.0, 140.0}, {3.5, 2.5, 40.0, 90.0}};
    WeatherOptions options;
    options.ny = 8;
    options.nx = 8;
    options.dx_km = 1.0;
    WeatherGenerator generator(options, batch_seed(batch, base_seed));
    auto truth = generator.generate_truth(1);
    if (truth.empty()) return Internal("weather generation produced nothing");
    std::vector<apps::ConcentrationField> ensemble;
    ensemble.reserve(kMembers);
    for (int m = 0; m < kMembers; ++m) {
      auto member = generator.perturb_member(truth);
      ensemble.push_back(apps::dispersion_field(sources, member[0], kGrid,
                                                kGrid, 0.25));
    }

    // Per request: exceedance probability at a request-specific receptor
    // over the shared ensemble (cheap reads of the fields).
    values->clear();
    values->reserve(batch.size());
    for (const PendingRequest& pending : batch.requests) {
      Rng rng(pending.request.seed);
      const int ry = static_cast<int>(rng.uniform_int(kGrid));
      const int rx = static_cast<int>(rng.uniform_int(kGrid));
      const double limit =
          40.0 / std::max(0.25, pending.request.payload_scale);
      int exceed = 0;
      for (const auto& field : ensemble) {
        if (field.at(ry, rx) > limit) ++exceed;
      }
      values->push_back(static_cast<double>(exceed) / kMembers);
    }
    return OkStatus();
  };
  return ep;
}

Endpoint make_traffic_endpoint(std::uint64_t base_seed) {
  Endpoint ep;
  ep.kernel = "ptdr_route";
  ep.variants = standard_variants(ep.kernel, 600.0);
  // The road network is the shared state: built once at registration,
  // immutable afterwards, so every worker reads it concurrently.
  auto network = std::make_shared<const apps::RoadNetwork>(
      apps::RoadNetwork::make_grid(10, 10, base_seed));
  ep.handler = [network](const Batch& batch,
                         std::vector<double>* values) -> Status {
    values->clear();
    values->reserve(batch.size());
    for (const PendingRequest& pending : batch.requests) {
      Rng rng(pending.request.seed);
      const auto nodes = network->num_nodes();
      const std::size_t from = rng.uniform_int(nodes);
      std::size_t to = rng.uniform_int(nodes);
      if (to == from) to = (to + 1) % nodes;
      const int hour = static_cast<int>(rng.uniform_int(24));
      const auto path = network->shortest_path(from, to, hour);
      if (path.empty()) {
        values->push_back(0.0);
        continue;
      }
      const std::size_t samples =
          64 + static_cast<std::size_t>(pending.request.payload_scale * 32.0);
      const auto dist =
          apps::ptdr_route_time(*network, path, hour, samples, rng);
      values->push_back(dist.p50_s);
    }
    return OkStatus();
  };
  return ep;
}

std::vector<Endpoint> standard_endpoints() {
  return {make_energy_endpoint(), make_airquality_endpoint(),
          make_traffic_endpoint()};
}

}  // namespace everest::serve
