// Serving observability, re-backed by obs registry instruments: event
// counters and the queue-depth watermark are lock-free (relaxed-atomic
// Counter/Gauge), end-to-end latency feeds both an exact reservoir
// (for true percentiles) and per-class log-bucketed histograms (for
// mergeable, export-friendly tails). Only the reservoirs and the
// batch-size map still sit behind the mutex. A Snapshot is a consistent
// copy — cheap enough at bench scale and immune to torn reads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/registry.hpp"
#include "serve/request.hpp"

namespace everest::serve {

/// Consistent point-in-time view of the serving counters.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;  ///< submit() calls (offered load)
  std::uint64_t admitted = 0;   ///< passed admission control
  std::uint64_t rejected = 0;   ///< bounced at admission (queue full)
  std::uint64_t expired = 0;    ///< dropped at dispatch (deadline passed)
  std::uint64_t failed = 0;     ///< handler/selection errors
  std::uint64_t completed = 0;  ///< OK responses delivered
  /// UNAVAILABLE outcomes: every variant withheld by breakers, or load
  /// shed at admission while in degraded mode.
  std::uint64_t unavailable = 0;
  /// OK responses served while the kernel had open breakers (fallback
  /// variant answered — degraded but successful).
  std::uint64_t degraded = 0;
  /// Input staging (Request::data_key through the server's input cache):
  /// distinct keys staged per batch that were warm vs. cold, and the
  /// total modelled stall the cold ones cost.
  std::uint64_t input_hits = 0;
  std::uint64_t input_misses = 0;
  double input_stall_us = 0.0;

  [[nodiscard]] double input_hit_rate() const {
    const std::uint64_t n = input_hits + input_misses;
    return n == 0 ? 0.0
                  : static_cast<double>(input_hits) / static_cast<double>(n);
  }

  /// End-to-end latency stats (µs) per SLA class index
  /// (0 = latency-critical, 1 = throughput) and combined.
  double p50_us = 0.0, p99_us = 0.0, mean_us = 0.0, max_us = 0.0;
  double lc_p99_us = 0.0, tp_p99_us = 0.0;
  /// Handler execution time per batch (µs).
  double service_mean_us = 0.0;

  /// Batch-size → number of batches dispatched at that size.
  std::map<std::size_t, std::uint64_t> batch_histogram;
  double mean_batch_size = 0.0;
  std::uint64_t batches = 0;

  std::size_t max_queue_depth = 0;

  /// Fraction of offered requests bounced at admission.
  [[nodiscard]] double rejection_rate() const {
    return submitted == 0 ? 0.0
                          : static_cast<double>(rejected) /
                                static_cast<double>(submitted);
  }
};

/// Thread-safe metrics sink shared by admission, dispatcher, and workers.
class ServingMetrics {
 public:
  ServingMetrics();

  void record_submitted() { submitted_->inc(); }
  void record_admitted(std::size_t queue_depth_after);
  void record_rejected() { rejected_->inc(); }
  void record_expired() { expired_->inc(); }
  void record_failed() { failed_->inc(); }
  void record_unavailable() { unavailable_->inc(); }
  void record_degraded() { degraded_->inc(); }
  void record_batch(std::size_t batch_size, double service_us);
  void record_completion(SlaClass sla, double latency_us);
  void record_input_stage(std::uint64_t hits, std::uint64_t misses,
                          double stall_us);

  /// Data-feature export (the JIT detector's input signal), recorded per
  /// request at batch dispatch:
  ///   serve.feature.requests{bucket,kernel,tenant}   counter
  ///   serve.feature.service_us{bucket,kernel,tenant} histogram (per-
  ///     request share of the batch's handler time)
  ///   serve.feature.scale{kernel}                    histogram of
  ///     payload_scale (the shape distribution itself)
  ///   serve.feature.last_scale{kernel}               gauge, kLastWrite
  ///     pinned at the registration site (a node-local instantaneous
  ///     value; summing or maxing it across nodes means nothing, so the
  ///     rollup contract drops it from merges).
  /// Instrument pointers are cached per (kernel, tenant, bucket) so the
  /// registry's find-or-create mutex is paid once per new tuple, not per
  /// request.
  void record_feature(const std::string& kernel, const std::string& tenant,
                      double payload_scale, double service_share_us);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The backing instrument registry (for JSON/text export alongside
  /// the snapshot API).
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }

  /// Merged (LC + TP) end-to-end latency histogram. Bucket-derived
  /// percentiles agree with the exact reservoir within one bucket width
  /// (bench_e20 checks this).
  [[nodiscard]] obs::HistogramSnapshot latency_histogram() const;

  /// Drops all samples and counters (between bench sweep points).
  void reset();

 private:
  obs::Registry registry_;
  // Cached instrument pointers — stable for the registry's lifetime.
  obs::Counter* submitted_;
  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Counter* expired_;
  obs::Counter* failed_;
  obs::Counter* completed_;
  obs::Counter* unavailable_;
  obs::Counter* degraded_;
  obs::Counter* input_hits_;
  obs::Counter* input_misses_;
  obs::Gauge* input_stall_us_;
  obs::Gauge* max_queue_depth_;
  obs::Histogram* latency_hist_[2];  ///< per SLA class, µs

  mutable std::mutex mu_;  // guards the exact reservoirs + batch map
  std::vector<double> latencies_us_[2];
  std::map<std::size_t, std::uint64_t> batch_sizes_;
  OnlineStats service_us_;
  OnlineStats batch_size_;

  /// Cached feature instruments, keyed by the canonical registry key of
  /// the (kernel, tenant, bucket) tuple. Guarded by mu_.
  struct FeatureInstruments {
    obs::Counter* requests = nullptr;
    obs::Histogram* service_us = nullptr;
  };
  std::map<std::string, FeatureInstruments> feature_cache_;
  std::map<std::string, obs::Histogram*> feature_scale_cache_;
  std::map<std::string, obs::Gauge*> feature_last_scale_cache_;
};

}  // namespace everest::serve
