// Deterministic load generation for the serving layer. Two disciplines:
//   * open loop — Poisson arrivals at a configured offered rate,
//     independent of completions (models internet-facing traffic; the
//     discipline that exposes overload behaviour), and
//   * closed loop — N clients, each submit → wait → think → repeat
//     (models a fixed user population; self-throttling).
// The workload (arrival gaps, kernel mix, SLA mix, payloads, seeds) is a
// pure function of WorkloadSpec::seed, so sweeps are reproducible; only
// wall-clock measurements vary between runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace everest::serve {

/// Submission target the generator drives: a serve::Server, a
/// cluster::Federation, or a test double. Same contract as
/// Server::submit — on OK the callback fires exactly once (from any
/// thread); on error it never fires.
using SubmitFn = std::function<Status(Request, ResponseCallback)>;
/// Quiesce hook run once after the generation horizon (waits until every
/// admitted request has its response delivered).
using DrainFn = std::function<void()>;

/// What traffic to offer.
struct WorkloadSpec {
  /// Kernels to draw from, uniformly (must all be registered).
  std::vector<std::string> kernels;
  /// Offered request rate (open loop only).
  double offered_rps = 500.0;
  /// Generation horizon.
  std::chrono::milliseconds duration{500};
  /// Fraction of requests in the latency-critical class.
  double lc_fraction = 0.2;
  /// Relative deadline per class (from submit time). <= 0 disables.
  double lc_deadline_ms = 20.0;
  double tp_deadline_ms = 200.0;
  /// Payload scale distribution: uniform in [0.5, 1.5).
  std::uint64_t seed = 42;

  // ---- input-object mix (0 disables data_key stamping) ----
  /// Distinct input objects requests read; keys are "obj<rank>".
  std::size_t num_data_objects = 0;
  /// Zipf skew of the object popularity (1.0 ≈ typical hot-key skew,
  /// 0 = uniform).
  double zipf_skew = 1.0;
  /// Bytes per input object (misses pay this over the input link).
  double input_bytes = 256.0 * 1024;
  /// Per-client key-space rotation: client c's Zipf rank r maps to object
  /// index (r + c * stride) % num_data_objects, giving every client its
  /// own hot set (tenant locality). 0 = all clients share one ranking.
  /// Open-loop generation is client 0.
  std::size_t per_client_key_stride = 0;
  /// Maps (client, object index) → data key; default "obj<index>". Lets
  /// the cluster bench align generated keys with its shard map without
  /// forking the generator. Must be thread-safe (called from every
  /// client thread).
  std::function<std::string(int client, std::size_t object_index)> key_namer;
};

/// Aggregate outcome of one generation run, as seen by the clients
/// (complements Server metrics, which count from the server side).
struct LoadReport {
  std::uint64_t offered = 0;    ///< submit() attempts
  std::uint64_t rejected = 0;   ///< admission bounced
  std::uint64_t expired = 0;    ///< completed with DEADLINE_EXCEEDED
  std::uint64_t failed = 0;     ///< completed with another error
  std::uint64_t completed = 0;  ///< OK responses
  double wall_s = 0.0;          ///< generation + drain wall time
  /// End-to-end latency (µs) of OK responses per SLA class
  /// (0 = latency-critical, 1 = throughput).
  std::vector<double> latencies_us[2];

  [[nodiscard]] double achieved_rps() const {
    return wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
  }
  [[nodiscard]] std::vector<double> all_latencies() const;
  [[nodiscard]] double p50_us() const;
  [[nodiscard]] double p99_us() const;
};

/// Open loop: arrivals at spec.offered_rps with exponential gaps from one
/// generator thread; runs `drain` (if set) before returning.
LoadReport run_open_loop(const SubmitFn& submit, const DrainFn& drain,
                         const WorkloadSpec& spec);
LoadReport run_open_loop(Server& server, const WorkloadSpec& spec);

/// Closed loop: `clients` threads each run submit → wait-for-completion →
/// think (exponential, mean think_ms) until the horizon elapses.
LoadReport run_closed_loop(const SubmitFn& submit, const DrainFn& drain,
                           const WorkloadSpec& spec, int clients,
                           double think_ms = 0.0);
LoadReport run_closed_loop(Server& server, const WorkloadSpec& spec,
                           int clients, double think_ms = 0.0);

// ---- event-stream arrival mode -------------------------------------------
// Continuous-ingestion traffic: per-client arrival processes on an
// event-time axis. Kept stream-agnostic (plain structs, no stream::
// types) so the serve layer stays below the stream layer; the stream
// benches/tests map EventArrival onto their own Event type.

/// One generated arrival. `event_time_us` is on the synthetic stream
/// timeline (starts at 0), not the wall clock.
struct EventArrival {
  std::string topic;
  std::uint64_t key = 0;
  std::uint64_t event_time_us = 0;
  double value = 0.0;
  std::uint64_t seed = 0;          ///< per-event randomness root
  bool latency_critical = false;
  int client = 0;                  ///< producing client
};

struct EventStreamSpec {
  /// Topics drawn uniformly per event (>= 1 required).
  std::vector<std::string> topics;
  /// Independent producers, each with its own deterministic substream.
  int clients = 4;
  /// Aggregate offered event rate across all clients.
  double events_per_s = 10'000.0;
  /// Event-time horizon of the schedule.
  std::chrono::milliseconds duration{500};
  enum class Arrival {
    kPoisson,  ///< per-client exponential gaps (smooth sensor traffic)
    kBurst,    ///< back-to-back bursts separated by idle gaps (batched
               ///< uplinks, e.g. an FCD gateway flushing)
  };
  Arrival arrival = Arrival::kPoisson;
  /// Burst mode: events per burst and idle gap as a multiple of the
  /// burst's own span.
  std::size_t burst_len = 32;
  double burst_idle_factor = 4.0;
  /// Keys drawn uniformly in [0, keys_per_topic) per event.
  std::size_t keys_per_topic = 16;
  /// Fraction of events in the latency-critical admission lane.
  double lc_fraction = 0.0;
  /// Values are uniform in [value_min, value_max) with seeded jitter.
  double value_min = 0.0;
  double value_max = 100.0;
  std::uint64_t seed = 42;
};

/// The full arrival schedule: per-client substreams (each a pure
/// function of spec.seed and the client index) merged and sorted by
/// (event time, client, sequence). Deterministic; no clocks involved.
std::vector<EventArrival> generate_event_arrivals(const EventStreamSpec& spec);

/// Ingestion target: OK = admitted, RESOURCE_EXHAUSTED = load-shed.
using EventSubmitFn = std::function<Status(const EventArrival&)>;

struct EventStreamReport {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  double wall_s = 0.0;

  [[nodiscard]] double achieved_eps() const {
    return wall_s > 0.0 ? static_cast<double>(admitted) / wall_s : 0.0;
  }
};

/// Replays the schedule into `submit`. `pace` true sleeps so wall time
/// tracks event time (latency-realistic); false submits full-throttle
/// (throughput benches).
EventStreamReport run_event_stream(const EventSubmitFn& submit,
                                   const EventStreamSpec& spec,
                                   bool pace = false);

}  // namespace everest::serve
