// Rewrite patterns and a greedy driver, the mechanism behind the EVEREST
// code-variant transformations (paper §III-B).
#pragma once

#include <memory>
#include <vector>

#include "ir/module.hpp"

namespace everest::ir {

/// Mutation interface handed to patterns; tracks whether anything changed
/// and provides block-local edit helpers.
class PatternRewriter {
 public:
  explicit PatternRewriter(Block& block) : block_(&block) {}

  [[nodiscard]] Block& block() { return *block_; }

  /// Replaces all uses of op's result `index` (searching from the block
  /// root given at construction) and marks the IR changed.
  void replace_uses(const Value& from, const Value& to) {
    replace_all_uses(*root_, from, to);
    changed_ = true;
  }

  /// Erases the op at `index` in the current block.
  void erase_op(std::size_t index) {
    block_->erase(index);
    changed_ = true;
  }

  void mark_changed() { changed_ = true; }
  [[nodiscard]] bool changed() const { return changed_; }

  void set_root(Block& root) { root_ = &root; }

 private:
  Block* block_;
  Block* root_ = nullptr;
  bool changed_ = false;
};

/// One local rewrite. `match_and_rewrite` inspects the op at `index` inside
/// `block`; on a match it edits and returns true (the driver restarts scan).
class RewritePattern {
 public:
  virtual ~RewritePattern() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Higher benefit patterns are tried first.
  [[nodiscard]] virtual int benefit() const { return 1; }
  virtual bool match_and_rewrite(Block& block, std::size_t index,
                                 PatternRewriter& rewriter) = 0;
};

/// Applies patterns greedily to every block of a function until fixpoint
/// (bounded by `max_iterations` sweeps). Returns true if the IR changed.
bool apply_patterns_greedily(
    Function& fn, const std::vector<std::unique_ptr<RewritePattern>>& patterns,
    int max_iterations = 32);

}  // namespace everest::ir
