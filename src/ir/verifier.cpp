#include "ir/verifier.hpp"

#include <set>

#include "ir/dialect.hpp"

namespace everest::ir {

namespace {

/// Identity of a value for def-before-use tracking.
struct ValueKey {
  const void* def;
  unsigned index;
  bool operator<(const ValueKey& other) const {
    return def != other.def ? def < other.def : index < other.index;
  }
};

ValueKey key_of(const Value& v) {
  if (v.is_op_result()) return {v.defining_op(), v.index()};
  return {v.owner_block(), v.index() + (1u << 30)};
}

class FunctionVerifier {
 public:
  Status run(const Function& fn) {
    std::set<ValueKey> visible;
    // Function arguments are visible throughout the body.
    const Block& entry = fn.entry();
    for (unsigned i = 0; i < entry.num_args(); ++i) {
      visible.insert({&entry, i + (1u << 30)});
    }
    return verify_block(fn.entry(), visible, fn.name());
  }

 private:
  Status verify_block(const Block& block, std::set<ValueKey> visible,
                      const std::string& fn_name) {
    for (std::size_t i = 0; i < block.size(); ++i) {
      const Operation& op = block.op(i);
      EVEREST_RETURN_IF_ERROR(verify_op(op, i, block, visible, fn_name));
      // Results become visible to later ops in this block and nested regions.
      for (unsigned r = 0; r < op.num_results(); ++r) {
        visible.insert({&op, r});
      }
    }
    return OkStatus();
  }

  Status verify_op(const Operation& op, std::size_t position,
                   const Block& block, const std::set<ValueKey>& visible,
                   const std::string& fn_name) {
    const OpDef* def = DialectRegistry::instance().lookup(op.name());
    auto err = [&](const std::string& what) {
      return InvalidArgument("in @" + fn_name + ", op '" + op.name() +
                             "': " + what);
    };
    if (def == nullptr) return err("not registered in any dialect");

    const int n_operands = static_cast<int>(op.num_operands());
    if (n_operands < def->min_operands) {
      return err("expects at least " + std::to_string(def->min_operands) +
                 " operands, got " + std::to_string(n_operands));
    }
    if (def->max_operands >= 0 && n_operands > def->max_operands) {
      return err("expects at most " + std::to_string(def->max_operands) +
                 " operands, got " + std::to_string(n_operands));
    }
    if (def->num_results >= 0 &&
        static_cast<int>(op.num_results()) != def->num_results) {
      return err("expects " + std::to_string(def->num_results) + " results");
    }
    if (def->num_regions >= 0 &&
        static_cast<int>(op.num_regions()) != def->num_regions) {
      return err("expects " + std::to_string(def->num_regions) + " regions");
    }
    if (def->is_terminator && position + 1 != block.size()) {
      return err("terminator must be the last op of its block");
    }
    for (const std::string& attr : def->required_attrs) {
      if (!op.has_attr(attr)) return err("missing required attr '" + attr + "'");
    }

    // SSA: every operand must have been defined earlier in an enclosing scope.
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      const Value& v = op.operand(i);
      if (!v.valid()) return err("operand " + std::to_string(i) + " is null");
      if (visible.find(key_of(v)) == visible.end()) {
        return err("operand " + std::to_string(i) +
                   " used before definition (SSA violation)");
      }
    }

    // Nested regions: block args enter scope, then ops are verified with the
    // enclosing values still visible (lexical scoping as in MLIR).
    for (std::size_t r = 0; r < op.num_regions(); ++r) {
      for (const auto& nested : op.region(r)) {
        std::set<ValueKey> inner = visible;
        for (unsigned a = 0; a < nested->num_args(); ++a) {
          inner.insert({nested.get(), a + (1u << 30)});
        }
        EVEREST_RETURN_IF_ERROR(verify_block(*nested, std::move(inner), fn_name));
      }
    }

    if (def->verify) {
      Status st = def->verify(op);
      if (!st.ok()) {
        return InvalidArgument("in @" + fn_name + ": " + st.message());
      }
    }
    return OkStatus();
  }
};

}  // namespace

Status verify(const Function& function) {
  register_everest_dialects();
  return FunctionVerifier().run(function);
}

Status verify(const Module& module) {
  register_everest_dialects();
  for (const auto& fn : module) {
    EVEREST_RETURN_IF_ERROR(verify(*fn));
  }
  return OkStatus();
}

}  // namespace everest::ir
