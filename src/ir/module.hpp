// Module and Function: the top-level IR containers. A Module corresponds to
// one EVEREST application (a workflow plus its kernels); Functions hold
// either workflow orchestration ops or kernel-level ops.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ir/operation.hpp"

namespace everest::ir {

/// A named function with a single-region body whose entry block carries the
/// function arguments.
class Function {
 public:
  Function(std::string name, Type function_type)
      : name_(std::move(name)), type_(std::move(function_type)) {
    body_.emplace_block(type_.signature().inputs);
  }
  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Type& type() const { return type_; }
  [[nodiscard]] const std::vector<Type>& input_types() const {
    return type_.signature().inputs;
  }
  [[nodiscard]] const std::vector<Type>& result_types() const {
    return type_.signature().results;
  }

  [[nodiscard]] Region& body() { return body_; }
  [[nodiscard]] const Region& body() const { return body_; }
  [[nodiscard]] Block& entry() { return body_.front(); }
  [[nodiscard]] const Block& entry() const { return body_.front(); }
  [[nodiscard]] Value arg(unsigned i) { return entry().arg(i); }

  [[nodiscard]] const AttrMap& attributes() const { return attributes_; }
  [[nodiscard]] AttrMap& attributes() { return attributes_; }
  void set_attr(std::string key, Attribute value) {
    attributes_[std::move(key)] = std::move(value);
  }
  [[nodiscard]] const Attribute* attr(const std::string& key) const {
    auto it = attributes_.find(key);
    return it == attributes_.end() ? nullptr : &it->second;
  }

  /// Walks all operations in the body, pre-order, including nested regions.
  void walk(const std::function<void(Operation&)>& fn) {
    for (auto& block : body_) {
      for (auto& op : *block) op->walk(fn);
    }
  }

 private:
  std::string name_;
  Type type_;
  Region body_;
  AttrMap attributes_;
};

/// A compilation unit: named functions plus module-level attributes.
class Module {
 public:
  explicit Module(std::string name = "module") : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  // Moves are safe: functions are held by pointer and never relocate.
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Creates a function; fails on duplicate names.
  Result<Function*> add_function(std::string name, Type function_type);

  [[nodiscard]] Function* find(std::string_view name);
  [[nodiscard]] const Function* find(std::string_view name) const;

  [[nodiscard]] std::size_t num_functions() const { return functions_.size(); }
  [[nodiscard]] Function& function(std::size_t i) { return *functions_[i]; }
  [[nodiscard]] const Function& function(std::size_t i) const {
    return *functions_[i];
  }

  auto begin() { return functions_.begin(); }
  auto end() { return functions_.end(); }
  [[nodiscard]] auto begin() const { return functions_.begin(); }
  [[nodiscard]] auto end() const { return functions_.end(); }

  [[nodiscard]] AttrMap& attributes() { return attributes_; }
  [[nodiscard]] const AttrMap& attributes() const { return attributes_; }

  void walk(const std::function<void(Operation&)>& fn) {
    for (auto& f : functions_) f->walk(fn);
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Function>> functions_;
  AttrMap attributes_;
};

}  // namespace everest::ir
