// EVEREST IR type system (paper §III-A: "a unified MLIR representation").
//
// Types are small immutable values with structural equality:
//   scalar:  f32 f64 i1 i8 i16 i32 i64 index
//   tensor:  tensor<4x8xf64>         (value semantics, dense)
//   memref:  memref<4x8xf64, space>  (buffer semantics, memory space)
//   stream:  stream<f32>             (unbounded element stream, edge I/O)
//   func:    (T...) -> (T...)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace everest::ir {

enum class ScalarKind : std::uint8_t {
  kF32, kF64, kI1, kI8, kI16, kI32, kI64, kIndex,
};

std::string_view to_string(ScalarKind kind);

/// Bytes occupied by one element of the given scalar kind.
std::size_t byte_width(ScalarKind kind);

/// Memory spaces for memref types, mirroring the EVEREST node model
/// (paper Fig. 4: host DRAM, FPGA-local memory, on-chip BRAM).
enum class MemorySpace : std::uint8_t {
  kDefault = 0,   // host DRAM
  kDevice = 1,    // FPGA-attached DDR/HBM
  kOnChip = 2,    // BRAM/URAM scratchpad
};

std::string_view to_string(MemorySpace space);

class Type;

/// Function signature: inputs -> results.
struct FunctionTypeData {
  std::vector<Type> inputs;
  std::vector<Type> results;
};

/// Immutable, cheaply copyable type handle.
class Type {
 public:
  enum class Kind : std::uint8_t { kNone, kScalar, kTensor, kMemRef, kStream, kFunction };

  Type() = default;

  static Type scalar(ScalarKind kind);
  static Type f32() { return scalar(ScalarKind::kF32); }
  static Type f64() { return scalar(ScalarKind::kF64); }
  static Type i1() { return scalar(ScalarKind::kI1); }
  static Type i32() { return scalar(ScalarKind::kI32); }
  static Type i64() { return scalar(ScalarKind::kI64); }
  static Type index() { return scalar(ScalarKind::kIndex); }
  static Type tensor(std::vector<std::int64_t> shape, ScalarKind elem);
  static Type memref(std::vector<std::int64_t> shape, ScalarKind elem,
                     MemorySpace space = MemorySpace::kDefault);
  static Type stream(ScalarKind elem);
  static Type function(std::vector<Type> inputs, std::vector<Type> results);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool valid() const { return kind_ != Kind::kNone; }
  [[nodiscard]] bool is_scalar() const { return kind_ == Kind::kScalar; }
  [[nodiscard]] bool is_tensor() const { return kind_ == Kind::kTensor; }
  [[nodiscard]] bool is_memref() const { return kind_ == Kind::kMemRef; }
  [[nodiscard]] bool is_stream() const { return kind_ == Kind::kStream; }
  [[nodiscard]] bool is_function() const { return kind_ == Kind::kFunction; }
  [[nodiscard]] bool is_shaped() const { return is_tensor() || is_memref(); }

  /// Element kind for scalar/tensor/memref/stream types.
  [[nodiscard]] ScalarKind elem() const { return elem_; }
  /// Shape for tensor/memref types (empty for rank-0).
  [[nodiscard]] const std::vector<std::int64_t>& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  /// Total element count for shaped types (1 for rank-0).
  [[nodiscard]] std::int64_t num_elements() const;
  /// Total byte footprint for shaped types.
  [[nodiscard]] std::int64_t byte_size() const;
  [[nodiscard]] MemorySpace memory_space() const { return space_; }
  /// Function signature (valid only for function types).
  [[nodiscard]] const FunctionTypeData& signature() const { return *fn_; }

  /// Returns this tensor/memref type re-homed to another memory space.
  [[nodiscard]] Type with_memory_space(MemorySpace space) const;

  bool operator==(const Type& other) const;
  bool operator!=(const Type& other) const { return !(*this == other); }

  /// MLIR-like rendering, e.g. "tensor<32x32xf64>".
  [[nodiscard]] std::string to_string() const;

 private:
  Kind kind_ = Kind::kNone;
  ScalarKind elem_ = ScalarKind::kF64;
  MemorySpace space_ = MemorySpace::kDefault;
  std::vector<std::int64_t> shape_;
  std::shared_ptr<const FunctionTypeData> fn_;
};

}  // namespace everest::ir
