#include "ir/module.hpp"

namespace everest::ir {

Result<Function*> Module::add_function(std::string name, Type function_type) {
  if (!function_type.is_function()) {
    return InvalidArgument("function '" + name + "' needs a function type");
  }
  if (find(name) != nullptr) {
    return AlreadyExists("function '" + name + "' already defined");
  }
  functions_.push_back(
      std::make_unique<Function>(std::move(name), std::move(function_type)));
  return functions_.back().get();
}

Function* Module::find(std::string_view name) {
  for (auto& f : functions_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

const Function* Module::find(std::string_view name) const {
  for (const auto& f : functions_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

}  // namespace everest::ir
