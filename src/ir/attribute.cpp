#include "ir/attribute.hpp"

#include <cassert>
#include <cstdio>

namespace everest::ir {

Attribute Attribute::boolean(bool v) {
  Attribute a;
  a.kind_ = Kind::kBool;
  a.bool_ = v;
  return a;
}

Attribute Attribute::integer(std::int64_t v) {
  Attribute a;
  a.kind_ = Kind::kInt;
  a.int_ = v;
  return a;
}

Attribute Attribute::real(double v) {
  Attribute a;
  a.kind_ = Kind::kDouble;
  a.double_ = v;
  return a;
}

Attribute Attribute::string(std::string v) {
  Attribute a;
  a.kind_ = Kind::kString;
  a.string_ = std::move(v);
  return a;
}

Attribute Attribute::type(Type t) {
  Attribute a;
  a.kind_ = Kind::kType;
  a.type_ = std::move(t);
  return a;
}

Attribute Attribute::array(std::vector<Attribute> items) {
  Attribute a;
  a.kind_ = Kind::kArray;
  a.array_ = std::make_shared<const std::vector<Attribute>>(std::move(items));
  return a;
}

Attribute Attribute::dense_f64(std::vector<double> values) {
  Attribute a;
  a.kind_ = Kind::kDenseF64;
  a.dense_ = std::make_shared<const std::vector<double>>(std::move(values));
  return a;
}

Attribute Attribute::int_array(const std::vector<std::int64_t>& values) {
  std::vector<Attribute> items;
  items.reserve(values.size());
  for (std::int64_t v : values) items.push_back(integer(v));
  return array(std::move(items));
}

std::vector<std::int64_t> Attribute::as_int_array() const {
  assert(is_array());
  std::vector<std::int64_t> out;
  out.reserve(array_->size());
  for (const Attribute& a : *array_) {
    assert(a.is_int());
    out.push_back(a.as_int());
  }
  return out;
}

bool Attribute::operator==(const Attribute& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kUnit: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kInt: return int_ == other.int_;
    case Kind::kDouble: return double_ == other.double_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kType: return type_ == other.type_;
    case Kind::kArray: return *array_ == *other.array_;
    case Kind::kDenseF64: return *dense_ == *other.dense_;
  }
  return false;
}

std::string Attribute::to_string() const {
  switch (kind_) {
    case Kind::kUnit: return "unit";
    case Kind::kBool: return bool_ ? "true" : "false";
    case Kind::kInt: return std::to_string(int_);
    case Kind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      // Ensure a decimal marker so the parser can tell double from int.
      std::string s(buf);
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Kind::kString: {
      std::string out = "\"";
      for (char c : string_) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
    case Kind::kType: return type_.to_string();
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_->size(); ++i) {
        if (i) out += ", ";
        out += (*array_)[i].to_string();
      }
      out += ']';
      return out;
    }
    case Kind::kDenseF64: {
      std::string out = "dense<";
      const std::size_t n = dense_->size();
      for (std::size_t i = 0; i < n && i < 8; ++i) {
        if (i) out += ", ";
        char buf[40];
        std::snprintf(buf, sizeof buf, "%g", (*dense_)[i]);
        out += buf;
      }
      if (n > 8) out += ", ...";
      out += "> (" + std::to_string(n) + " values)";
      return out;
    }
  }
  return "?";
}

}  // namespace everest::ir
