// IR attributes: compile-time-constant metadata attached to operations.
// EVEREST uses attributes to carry the DSL annotations the paper relies on
// (data characteristics, security requirements, variant knobs).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace everest::ir {

/// Immutable attribute value: unit (flag), bool, int, double, string,
/// type, array of attributes, or dense f64 data.
class Attribute {
 public:
  enum class Kind : std::uint8_t {
    kUnit, kBool, kInt, kDouble, kString, kType, kArray, kDenseF64,
  };

  Attribute() : kind_(Kind::kUnit) {}
  static Attribute unit() { return Attribute(); }
  static Attribute boolean(bool v);
  static Attribute integer(std::int64_t v);
  static Attribute real(double v);
  static Attribute string(std::string v);
  static Attribute type(Type t);
  static Attribute array(std::vector<Attribute> items);
  static Attribute dense_f64(std::vector<double> values);
  static Attribute int_array(const std::vector<std::int64_t>& values);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_unit() const { return kind_ == Kind::kUnit; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_double() const { return kind_ == Kind::kDouble; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_type() const { return kind_ == Kind::kType; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_dense_f64() const { return kind_ == Kind::kDenseF64; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const { return int_; }
  [[nodiscard]] double as_double() const { return double_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Type& as_type() const { return type_; }
  [[nodiscard]] const std::vector<Attribute>& as_array() const { return *array_; }
  [[nodiscard]] const std::vector<double>& as_dense_f64() const { return *dense_; }
  /// Array-of-int accessor (asserts each element is an int attribute).
  [[nodiscard]] std::vector<std::int64_t> as_int_array() const;

  bool operator==(const Attribute& other) const;
  bool operator!=(const Attribute& other) const { return !(*this == other); }

  [[nodiscard]] std::string to_string() const;

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Type type_;
  std::shared_ptr<const std::vector<Attribute>> array_;
  std::shared_ptr<const std::vector<double>> dense_;
};

/// Ordered name → attribute map attached to every operation.
using AttrMap = std::map<std::string, Attribute>;

}  // namespace everest::ir
