// OpBuilder: convenience API for constructing IR, with an insertion point
// into a block. All DSL front-ends build IR through this class.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace everest::ir {

/// Builds operations at a movable insertion point (defaults to block end).
class OpBuilder {
 public:
  explicit OpBuilder(Block* block = nullptr) { set_insertion_point(block); }

  void set_insertion_point(Block* block) {
    block_ = block;
    index_ = block ? block->size() : 0;
  }
  void set_insertion_point(Block* block, std::size_t index) {
    block_ = block;
    index_ = index;
  }
  [[nodiscard]] Block* insertion_block() const { return block_; }

  /// Creates and inserts a generic operation; returns a reference to it.
  Operation& create(std::string name, std::vector<Value> operands,
                    std::vector<Type> result_types, AttrMap attributes = {}) {
    auto op = std::make_unique<Operation>(std::move(name), std::move(operands),
                                          std::move(result_types),
                                          std::move(attributes));
    Operation& ref = block_->insert(index_, std::move(op));
    ++index_;
    return ref;
  }

  /// Single-result shorthand returning the result value.
  Value create_value(std::string name, std::vector<Value> operands,
                     Type result_type, AttrMap attributes = {}) {
    return create(std::move(name), std::move(operands), {std::move(result_type)},
                  std::move(attributes))
        .result(0);
  }

  // -- Builtin dialect helpers ---------------------------------------------

  /// `builtin.constant` with a dense payload (rank-0 scalar or tensor).
  Value constant_f64(double value) {
    return create_value("builtin.constant", {}, Type::f64(),
                        {{"value", Attribute::real(value)}});
  }
  Value constant_index(std::int64_t value) {
    return create_value("builtin.constant", {}, Type::index(),
                        {{"value", Attribute::integer(value)}});
  }

  /// `builtin.return` terminator.
  Operation& ret(std::vector<Value> values = {}) {
    return create("builtin.return", std::move(values), {});
  }

  /// `builtin.call` to a module-level function.
  Operation& call(const std::string& callee, std::vector<Value> operands,
                  std::vector<Type> result_types) {
    return create("builtin.call", std::move(operands), std::move(result_types),
                  {{"callee", Attribute::string(callee)}});
  }

 private:
  Block* block_ = nullptr;
  std::size_t index_ = 0;
};

}  // namespace everest::ir
