#include "ir/pattern.hpp"

#include <algorithm>

namespace everest::ir {

namespace {

/// One sweep over a block (recursing into regions); returns true on change.
bool sweep_block(Block& root, Block& block,
                 const std::vector<RewritePattern*>& sorted) {
  bool changed = false;
  // Scan ops; after any rewrite restart the scan of this block, since
  // indices may have shifted.
  bool restart = true;
  while (restart) {
    restart = false;
    for (std::size_t i = 0; i < block.size(); ++i) {
      for (RewritePattern* pattern : sorted) {
        PatternRewriter rewriter(block);
        rewriter.set_root(root);
        if (pattern->match_and_rewrite(block, i, rewriter)) {
          changed = true;
          restart = true;
          break;
        }
      }
      if (restart) break;
      // Recurse into regions of the (unchanged) op.
      Operation& op = block.op(i);
      for (std::size_t r = 0; r < op.num_regions(); ++r) {
        for (auto& nested : op.region(r)) {
          changed |= sweep_block(root, *nested, sorted);
        }
      }
    }
  }
  return changed;
}

}  // namespace

bool apply_patterns_greedily(
    Function& fn, const std::vector<std::unique_ptr<RewritePattern>>& patterns,
    int max_iterations) {
  std::vector<RewritePattern*> sorted;
  sorted.reserve(patterns.size());
  for (const auto& p : patterns) sorted.push_back(p.get());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RewritePattern* a, const RewritePattern* b) {
                     return a->benefit() > b->benefit();
                   });
  bool any_change = false;
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (auto& block : fn.body()) {
      changed |= sweep_block(fn.entry(), *block, sorted);
    }
    any_change |= changed;
    if (!changed) break;
  }
  return any_change;
}

}  // namespace everest::ir
