#include "ir/pass.hpp"

#include "common/logging.hpp"
#include "ir/verifier.hpp"

namespace everest::ir {

Status PassManager::run(Module& module) {
  records_.clear();
  for (const auto& pass : passes_) {
    PassRecord record;
    record.pass_name = std::string(pass->name());
    const auto start = std::chrono::steady_clock::now();
    Status st = pass->run(module);
    const auto end = std::chrono::steady_clock::now();
    record.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    record.ok = st.ok();
    if (!st.ok()) {
      record.error = st.message();
      records_.push_back(std::move(record));
      return st;
    }
    if (verify_each_) {
      Status vst = verify(module);
      if (!vst.ok()) {
        record.ok = false;
        record.error = "post-pass verification failed: " + vst.message();
        records_.push_back(record);
        return Internal("pass '" + record.pass_name + "' broke the IR: " +
                        vst.message());
      }
    }
    EVEREST_LOG(kDebug, "pass") << record.pass_name << " took "
                                << record.millis << " ms";
    records_.push_back(std::move(record));
  }
  return OkStatus();
}

}  // namespace everest::ir
