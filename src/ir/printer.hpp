// Textual IR emission. The format round-trips through parser.hpp:
//
//   module @app {
//     func @step(%arg0: tensor<4xf64>) -> (tensor<4xf64>) {
//       %0 = tensor.add(%arg0, %arg0) : (tensor<4xf64>, tensor<4xf64>) -> (tensor<4xf64>)
//       builtin.return(%0) : (tensor<4xf64>) -> ()
//     }
//   }
#pragma once

#include <string>

#include "ir/module.hpp"

namespace everest::ir {

/// Prints a module in parseable textual form.
std::string print(const Module& module);

/// Prints one function.
std::string print(const Function& function);

}  // namespace everest::ir
