#include "ir/parser.hpp"

#include <cctype>
#include <charconv>
#include <map>

namespace everest::ir {

namespace {

enum class Tok {
  kEnd, kIdent, kValueId, kSymbol, kCaret, kLParen, kRParen, kLBrace,
  kRBrace, kLBracket, kRBracket, kLess, kGreater, kColon, kComma, kEqual,
  kArrow, kNumber, kString,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  double number = 0.0;
  bool is_integer = false;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[nodiscard]] std::size_t offset() const { return current_.offset; }

 private:
  void advance() {
    skip_ws();
    current_ = Token{};
    current_.offset = pos_;
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    if (c == '%') {
      ++pos_;
      current_.kind = Tok::kValueId;
      current_.text = "%" + lex_word();
      return;
    }
    if (c == '@') {
      ++pos_;
      current_.kind = Tok::kSymbol;
      current_.text = lex_word();
      return;
    }
    if (c == '^') { ++pos_; current_.kind = Tok::kCaret; return; }
    if (c == '(') { ++pos_; current_.kind = Tok::kLParen; return; }
    if (c == ')') { ++pos_; current_.kind = Tok::kRParen; return; }
    if (c == '{') { ++pos_; current_.kind = Tok::kLBrace; return; }
    if (c == '}') { ++pos_; current_.kind = Tok::kRBrace; return; }
    if (c == '[') { ++pos_; current_.kind = Tok::kLBracket; return; }
    if (c == ']') { ++pos_; current_.kind = Tok::kRBracket; return; }
    if (c == '<') { ++pos_; current_.kind = Tok::kLess; return; }
    if (c == '>') { ++pos_; current_.kind = Tok::kGreater; return; }
    if (c == ':') { ++pos_; current_.kind = Tok::kColon; return; }
    if (c == ',') { ++pos_; current_.kind = Tok::kComma; return; }
    if (c == '=') { ++pos_; current_.kind = Tok::kEqual; return; }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      current_.kind = Tok::kArrow;
      return;
    }
    if (c == '"') {
      ++pos_;
      current_.kind = Tok::kString;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        current_.text += text_[pos_++];
      }
      if (pos_ < text_.size()) ++pos_;  // closing quote
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      lex_number();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      current_.kind = Tok::kIdent;
      current_.text = lex_word();
      return;
    }
    ++pos_;  // skip unknown char; will surface as a parse error
  }

  std::string lex_word() {
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == '-')) {
      out += text_[pos_++];
    }
    return out;
  }

  void lex_number() {
    const std::size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool has_dot = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        has_dot = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+') &&
            (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    current_.kind = Tok::kNumber;
    current_.text = std::string(text_.substr(start, pos_ - start));
    current_.is_integer = !has_dot;
    std::from_chars(text_.data() + start, text_.data() + pos_, current_.number);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

class IrParser {
 public:
  explicit IrParser(std::string_view text) : lexer_(text) {}

  Result<std::unique_ptr<Module>> parse() {
    EVEREST_RETURN_IF_ERROR(expect_ident("module"));
    if (lexer_.peek().kind != Tok::kSymbol) return error("expected @name");
    auto module = std::make_unique<Module>(lexer_.take().text);
    if (lexer_.peek().kind == Tok::kIdent && lexer_.peek().text == "attributes") {
      lexer_.take();
      EVEREST_ASSIGN_OR_RETURN(module->attributes(), parse_attr_dict());
    }
    EVEREST_RETURN_IF_ERROR(expect(Tok::kLBrace, "{"));
    while (lexer_.peek().kind == Tok::kIdent && lexer_.peek().text == "func") {
      EVEREST_RETURN_IF_ERROR(parse_function(*module));
    }
    EVEREST_RETURN_IF_ERROR(expect(Tok::kRBrace, "}"));
    return module;
  }

  Result<Type> parse_type_standalone() { return parse_type(); }

 private:
  Status error(const std::string& what) const {
    return InvalidArgument("IR parse error at offset " +
                           std::to_string(lexer_.offset()) + ": " + what);
  }

  Status expect(Tok kind, const char* what) {
    if (lexer_.peek().kind != kind) {
      return error(std::string("expected '") + what + "'");
    }
    lexer_.take();
    return OkStatus();
  }

  Status expect_ident(const std::string& word) {
    if (lexer_.peek().kind != Tok::kIdent || lexer_.peek().text != word) {
      return error("expected '" + word + "'");
    }
    lexer_.take();
    return OkStatus();
  }

  Result<Type> parse_type() {
    if (lexer_.peek().kind != Tok::kIdent) return error("expected a type");
    const std::string head = lexer_.take().text;
    if (head == "f32") return Type::f32();
    if (head == "f64") return Type::f64();
    if (head == "i1") return Type::i1();
    if (head == "i8") return Type::scalar(ScalarKind::kI8);
    if (head == "i16") return Type::scalar(ScalarKind::kI16);
    if (head == "i32") return Type::i32();
    if (head == "i64") return Type::i64();
    if (head == "index") return Type::index();
    if (head == "tensor" || head == "memref") {
      EVEREST_RETURN_IF_ERROR(expect(Tok::kLess, "<"));
      std::vector<std::int64_t> shape;
      ScalarKind elem = ScalarKind::kF64;
      // Dims and element type arrive as "4x8xf64" word-chunks or numbers.
      while (true) {
        const Token& t = lexer_.peek();
        if (t.kind == Tok::kNumber) {
          shape.push_back(static_cast<std::int64_t>(lexer_.take().number));
        } else if (t.kind == Tok::kIdent) {
          // e.g. "x8xf64" or "xf64" or "f64"
          EVEREST_ASSIGN_OR_RETURN(elem, consume_dims_and_elem(shape));
          break;
        } else {
          return error("bad shaped type");
        }
      }
      MemorySpace space = MemorySpace::kDefault;
      if (lexer_.peek().kind == Tok::kComma) {
        lexer_.take();
        if (lexer_.peek().kind != Tok::kIdent) return error("bad memory space");
        const std::string s = lexer_.take().text;
        if (s == "host") space = MemorySpace::kDefault;
        else if (s == "device") space = MemorySpace::kDevice;
        else if (s == "onchip") space = MemorySpace::kOnChip;
        else return error("unknown memory space '" + s + "'");
      }
      EVEREST_RETURN_IF_ERROR(expect(Tok::kGreater, ">"));
      if (head == "tensor") return Type::tensor(std::move(shape), elem);
      return Type::memref(std::move(shape), elem, space);
    }
    if (head == "stream") {
      EVEREST_RETURN_IF_ERROR(expect(Tok::kLess, "<"));
      std::vector<std::int64_t> none;
      ScalarKind elem = ScalarKind::kF64;
      EVEREST_ASSIGN_OR_RETURN(elem, consume_dims_and_elem(none));
      if (!none.empty()) return error("stream takes no shape");
      EVEREST_RETURN_IF_ERROR(expect(Tok::kGreater, ">"));
      return Type::stream(elem);
    }
    return error("unknown type '" + head + "'");
  }

  /// Parses chunks like "x8xf64" / "f64" accumulating dims, returns elem.
  Result<ScalarKind> consume_dims_and_elem(std::vector<std::int64_t>& shape) {
    std::string text = lexer_.take().text;
    std::size_t i = 0;
    while (i < text.size()) {
      if (text[i] == 'x') {
        ++i;
        if (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
          std::int64_t dim = 0;
          while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
            dim = dim * 10 + (text[i++] - '0');
          }
          shape.push_back(dim);
          continue;
        }
        continue;  // 'x' followed by the element type
      }
      // Remaining text is the element type name.
      const std::string elem_name = text.substr(i);
      if (elem_name == "f32") return ScalarKind::kF32;
      if (elem_name == "f64") return ScalarKind::kF64;
      if (elem_name == "i1") return ScalarKind::kI1;
      if (elem_name == "i8") return ScalarKind::kI8;
      if (elem_name == "i16") return ScalarKind::kI16;
      if (elem_name == "i32") return ScalarKind::kI32;
      if (elem_name == "i64") return ScalarKind::kI64;
      if (elem_name == "index") return ScalarKind::kIndex;
      return error("unknown element type '" + elem_name + "'");
    }
    return error("missing element type");
  }

  Result<Attribute> parse_attr_value() {
    const Token& t = lexer_.peek();
    if (t.kind == Tok::kNumber) {
      Token n = lexer_.take();
      if (n.is_integer) {
        return Attribute::integer(static_cast<std::int64_t>(n.number));
      }
      return Attribute::real(n.number);
    }
    if (t.kind == Tok::kString) return Attribute::string(lexer_.take().text);
    if (t.kind == Tok::kLBracket) {
      lexer_.take();
      std::vector<Attribute> items;
      if (lexer_.peek().kind == Tok::kRBracket) {
        lexer_.take();
        return Attribute::array(std::move(items));
      }
      while (true) {
        EVEREST_ASSIGN_OR_RETURN(Attribute a, parse_attr_value());
        items.push_back(std::move(a));
        if (lexer_.peek().kind == Tok::kComma) { lexer_.take(); continue; }
        EVEREST_RETURN_IF_ERROR(expect(Tok::kRBracket, "]"));
        return Attribute::array(std::move(items));
      }
    }
    if (t.kind == Tok::kIdent) {
      if (t.text == "true") { lexer_.take(); return Attribute::boolean(true); }
      if (t.text == "false") { lexer_.take(); return Attribute::boolean(false); }
      if (t.text == "unit") { lexer_.take(); return Attribute::unit(); }
      if (t.text == "dense") {
        lexer_.take();
        EVEREST_RETURN_IF_ERROR(expect(Tok::kLess, "<"));
        std::vector<double> values;
        if (lexer_.peek().kind != Tok::kGreater) {
          while (true) {
            if (lexer_.peek().kind != Tok::kNumber) return error("bad dense");
            values.push_back(lexer_.take().number);
            if (lexer_.peek().kind == Tok::kComma) { lexer_.take(); continue; }
            break;
          }
        }
        EVEREST_RETURN_IF_ERROR(expect(Tok::kGreater, ">"));
        return Attribute::dense_f64(std::move(values));
      }
      // Otherwise it must be a type.
      EVEREST_ASSIGN_OR_RETURN(Type type, parse_type());
      return Attribute::type(std::move(type));
    }
    return error("expected an attribute value");
  }

  Result<AttrMap> parse_attr_dict() {
    EVEREST_RETURN_IF_ERROR(expect(Tok::kLBrace, "{"));
    AttrMap attrs;
    if (lexer_.peek().kind == Tok::kRBrace) {
      lexer_.take();
      return attrs;
    }
    while (true) {
      if (lexer_.peek().kind != Tok::kIdent) return error("expected attr name");
      const std::string key = lexer_.take().text;
      if (lexer_.peek().kind == Tok::kEqual) {
        lexer_.take();
        EVEREST_ASSIGN_OR_RETURN(Attribute v, parse_attr_value());
        attrs.emplace(key, std::move(v));
      } else {
        attrs.emplace(key, Attribute::unit());
      }
      if (lexer_.peek().kind == Tok::kComma) { lexer_.take(); continue; }
      EVEREST_RETURN_IF_ERROR(expect(Tok::kRBrace, "}"));
      return attrs;
    }
  }

  Status parse_function(Module& module) {
    EVEREST_RETURN_IF_ERROR(expect_ident("func"));
    if (lexer_.peek().kind != Tok::kSymbol) return error("expected @name");
    const std::string name = lexer_.take().text;
    EVEREST_RETURN_IF_ERROR(expect(Tok::kLParen, "("));
    std::vector<Type> inputs;
    std::vector<std::string> arg_names;
    if (lexer_.peek().kind != Tok::kRParen) {
      while (true) {
        if (lexer_.peek().kind != Tok::kValueId) return error("expected %arg");
        arg_names.push_back(lexer_.take().text);
        EVEREST_RETURN_IF_ERROR(expect(Tok::kColon, ":"));
        EVEREST_ASSIGN_OR_RETURN(Type t, parse_type());
        inputs.push_back(std::move(t));
        if (lexer_.peek().kind == Tok::kComma) { lexer_.take(); continue; }
        break;
      }
    }
    EVEREST_RETURN_IF_ERROR(expect(Tok::kRParen, ")"));
    EVEREST_RETURN_IF_ERROR(expect(Tok::kArrow, "->"));
    EVEREST_ASSIGN_OR_RETURN(std::vector<Type> results, parse_type_list());
    AttrMap fn_attrs;
    if (lexer_.peek().kind == Tok::kIdent && lexer_.peek().text == "attributes") {
      lexer_.take();
      EVEREST_ASSIGN_OR_RETURN(fn_attrs, parse_attr_dict());
    }
    auto fn_or = module.add_function(
        name, Type::function(std::move(inputs), std::move(results)));
    if (!fn_or.ok()) return fn_or.status();
    Function* fn = fn_or.value();
    fn->attributes() = std::move(fn_attrs);

    values_.clear();
    for (unsigned i = 0; i < fn->entry().num_args(); ++i) {
      values_[arg_names[i]] = fn->entry().arg(i);
    }
    EVEREST_RETURN_IF_ERROR(expect(Tok::kLBrace, "{"));
    while (lexer_.peek().kind != Tok::kRBrace) {
      EVEREST_RETURN_IF_ERROR(parse_op(fn->entry()));
    }
    lexer_.take();  // }
    return OkStatus();
  }

  Result<std::vector<Type>> parse_type_list() {
    EVEREST_RETURN_IF_ERROR(expect(Tok::kLParen, "("));
    std::vector<Type> types;
    if (lexer_.peek().kind == Tok::kRParen) {
      lexer_.take();
      return types;
    }
    while (true) {
      EVEREST_ASSIGN_OR_RETURN(Type t, parse_type());
      types.push_back(std::move(t));
      if (lexer_.peek().kind == Tok::kComma) { lexer_.take(); continue; }
      EVEREST_RETURN_IF_ERROR(expect(Tok::kRParen, ")"));
      return types;
    }
  }

  Status parse_op(Block& block) {
    // Optional result list: "%0, %1 = "
    std::vector<std::string> result_names;
    if (lexer_.peek().kind == Tok::kValueId) {
      while (lexer_.peek().kind == Tok::kValueId) {
        result_names.push_back(lexer_.take().text);
        if (lexer_.peek().kind == Tok::kComma) { lexer_.take(); continue; }
        break;
      }
      EVEREST_RETURN_IF_ERROR(expect(Tok::kEqual, "="));
    }
    if (lexer_.peek().kind != Tok::kIdent) return error("expected op name");
    const std::string op_name = lexer_.take().text;
    EVEREST_RETURN_IF_ERROR(expect(Tok::kLParen, "("));
    std::vector<Value> operands;
    if (lexer_.peek().kind != Tok::kRParen) {
      while (true) {
        if (lexer_.peek().kind != Tok::kValueId) return error("expected %value");
        const std::string vname = lexer_.take().text;
        auto it = values_.find(vname);
        if (it == values_.end()) return error("unknown value " + vname);
        operands.push_back(it->second);
        if (lexer_.peek().kind == Tok::kComma) { lexer_.take(); continue; }
        break;
      }
    }
    EVEREST_RETURN_IF_ERROR(expect(Tok::kRParen, ")"));
    AttrMap attrs;
    if (lexer_.peek().kind == Tok::kLBrace) {
      EVEREST_ASSIGN_OR_RETURN(attrs, parse_attr_dict());
    }
    EVEREST_RETURN_IF_ERROR(expect(Tok::kColon, ":"));
    EVEREST_ASSIGN_OR_RETURN(std::vector<Type> operand_types, parse_type_list());
    EVEREST_RETURN_IF_ERROR(expect(Tok::kArrow, "->"));
    EVEREST_ASSIGN_OR_RETURN(std::vector<Type> result_types, parse_type_list());
    if (operand_types.size() != operands.size()) {
      return error("operand type count mismatch");
    }
    if (result_types.size() != result_names.size()) {
      return error("result name/type count mismatch");
    }
    Operation& op = block.append(std::make_unique<Operation>(
        op_name, std::move(operands), std::move(result_types),
        std::move(attrs)));
    for (unsigned r = 0; r < op.num_results(); ++r) {
      values_[result_names[r]] = op.result(r);
    }
    // Optional regions.
    while (lexer_.peek().kind == Tok::kLBrace) {
      lexer_.take();
      Region& region = op.emplace_region();
      while (lexer_.peek().kind == Tok::kCaret) {
        lexer_.take();
        EVEREST_RETURN_IF_ERROR(expect(Tok::kLParen, "("));
        std::vector<std::string> arg_names;
        std::vector<Type> arg_types;
        if (lexer_.peek().kind != Tok::kRParen) {
          while (true) {
            if (lexer_.peek().kind != Tok::kValueId) return error("expected %arg");
            arg_names.push_back(lexer_.take().text);
            EVEREST_RETURN_IF_ERROR(expect(Tok::kColon, ":"));
            EVEREST_ASSIGN_OR_RETURN(Type t, parse_type());
            arg_types.push_back(std::move(t));
            if (lexer_.peek().kind == Tok::kComma) { lexer_.take(); continue; }
            break;
          }
        }
        EVEREST_RETURN_IF_ERROR(expect(Tok::kRParen, ")"));
        EVEREST_RETURN_IF_ERROR(expect(Tok::kColon, ":"));
        Block& nested = region.emplace_block(std::move(arg_types));
        for (unsigned a = 0; a < nested.num_args(); ++a) {
          values_[arg_names[a]] = nested.arg(a);
        }
        while (lexer_.peek().kind != Tok::kRBrace &&
               lexer_.peek().kind != Tok::kCaret) {
          EVEREST_RETURN_IF_ERROR(parse_op(nested));
        }
      }
      EVEREST_RETURN_IF_ERROR(expect(Tok::kRBrace, "}"));
    }
    return OkStatus();
  }

  Lexer lexer_;
  std::map<std::string, Value> values_;
};

}  // namespace

Result<std::unique_ptr<Module>> parse_module(std::string_view text) {
  return IrParser(text).parse();
}

Result<Type> parse_type(std::string_view text) {
  return IrParser(text).parse_type_standalone();
}

}  // namespace everest::ir
