#include "ir/type.hpp"

namespace everest::ir {

std::string_view to_string(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kF32: return "f32";
    case ScalarKind::kF64: return "f64";
    case ScalarKind::kI1: return "i1";
    case ScalarKind::kI8: return "i8";
    case ScalarKind::kI16: return "i16";
    case ScalarKind::kI32: return "i32";
    case ScalarKind::kI64: return "i64";
    case ScalarKind::kIndex: return "index";
  }
  return "?";
}

std::size_t byte_width(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kF32: return 4;
    case ScalarKind::kF64: return 8;
    case ScalarKind::kI1: return 1;
    case ScalarKind::kI8: return 1;
    case ScalarKind::kI16: return 2;
    case ScalarKind::kI32: return 4;
    case ScalarKind::kI64: return 8;
    case ScalarKind::kIndex: return 8;
  }
  return 8;
}

std::string_view to_string(MemorySpace space) {
  switch (space) {
    case MemorySpace::kDefault: return "host";
    case MemorySpace::kDevice: return "device";
    case MemorySpace::kOnChip: return "onchip";
  }
  return "?";
}

Type Type::scalar(ScalarKind kind) {
  Type t;
  t.kind_ = Kind::kScalar;
  t.elem_ = kind;
  return t;
}

Type Type::tensor(std::vector<std::int64_t> shape, ScalarKind elem) {
  Type t;
  t.kind_ = Kind::kTensor;
  t.elem_ = elem;
  t.shape_ = std::move(shape);
  return t;
}

Type Type::memref(std::vector<std::int64_t> shape, ScalarKind elem,
                  MemorySpace space) {
  Type t;
  t.kind_ = Kind::kMemRef;
  t.elem_ = elem;
  t.shape_ = std::move(shape);
  t.space_ = space;
  return t;
}

Type Type::stream(ScalarKind elem) {
  Type t;
  t.kind_ = Kind::kStream;
  t.elem_ = elem;
  return t;
}

Type Type::function(std::vector<Type> inputs, std::vector<Type> results) {
  Type t;
  t.kind_ = Kind::kFunction;
  t.fn_ = std::make_shared<const FunctionTypeData>(
      FunctionTypeData{std::move(inputs), std::move(results)});
  return t;
}

std::int64_t Type::num_elements() const {
  std::int64_t n = 1;
  for (std::int64_t d : shape_) n *= d;
  return n;
}

std::int64_t Type::byte_size() const {
  return num_elements() * static_cast<std::int64_t>(byte_width(elem_));
}

Type Type::with_memory_space(MemorySpace space) const {
  Type t = *this;
  t.space_ = space;
  return t;
}

bool Type::operator==(const Type& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNone: return true;
    case Kind::kScalar:
    case Kind::kStream: return elem_ == other.elem_;
    case Kind::kTensor: return elem_ == other.elem_ && shape_ == other.shape_;
    case Kind::kMemRef:
      return elem_ == other.elem_ && shape_ == other.shape_ &&
             space_ == other.space_;
    case Kind::kFunction:
      return fn_->inputs == other.fn_->inputs &&
             fn_->results == other.fn_->results;
  }
  return false;
}

std::string Type::to_string() const {
  switch (kind_) {
    case Kind::kNone: return "none";
    case Kind::kScalar: return std::string(ir::to_string(elem_));
    case Kind::kTensor:
    case Kind::kMemRef: {
      std::string out = is_tensor() ? "tensor<" : "memref<";
      for (std::int64_t d : shape_) {
        out += std::to_string(d);
        out += 'x';
      }
      out += ir::to_string(elem_);
      if (is_memref() && space_ != MemorySpace::kDefault) {
        out += ", ";
        out += ir::to_string(space_);
      }
      out += '>';
      return out;
    }
    case Kind::kStream: {
      std::string out = "stream<";
      out += ir::to_string(elem_);
      out += '>';
      return out;
    }
    case Kind::kFunction: {
      std::string out = "(";
      for (std::size_t i = 0; i < fn_->inputs.size(); ++i) {
        if (i) out += ", ";
        out += fn_->inputs[i].to_string();
      }
      out += ") -> (";
      for (std::size_t i = 0; i < fn_->results.size(); ++i) {
        if (i) out += ", ";
        out += fn_->results[i].to_string();
      }
      out += ')';
      return out;
    }
  }
  return "?";
}

}  // namespace everest::ir
