// Core IR object model: Value, Operation, Block, Region.
//
// Ownership: Region owns Blocks, Block owns Operations, Operation owns its
// nested Regions. Values are lightweight handles to either an operation
// result or a block argument; structural equality compares definition site.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/attribute.hpp"
#include "ir/type.hpp"

namespace everest::ir {

class Operation;
class Block;
class Region;

/// SSA value handle: an operation result or a block argument.
class Value {
 public:
  Value() = default;

  static Value op_result(Operation* op, unsigned index, Type type) {
    Value v;
    v.op_ = op;
    v.index_ = index;
    v.type_ = std::move(type);
    return v;
  }
  static Value block_arg(Block* block, unsigned index, Type type) {
    Value v;
    v.block_ = block;
    v.index_ = index;
    v.type_ = std::move(type);
    return v;
  }

  [[nodiscard]] bool valid() const { return op_ != nullptr || block_ != nullptr; }
  [[nodiscard]] bool is_op_result() const { return op_ != nullptr; }
  [[nodiscard]] bool is_block_arg() const { return block_ != nullptr; }
  [[nodiscard]] Operation* defining_op() const { return op_; }
  [[nodiscard]] Block* owner_block() const { return block_; }
  [[nodiscard]] unsigned index() const { return index_; }
  [[nodiscard]] const Type& type() const { return type_; }

  bool operator==(const Value& other) const {
    return op_ == other.op_ && block_ == other.block_ && index_ == other.index_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  Operation* op_ = nullptr;
  Block* block_ = nullptr;
  unsigned index_ = 0;
  Type type_;
};

/// A region: an ordered list of blocks owned by an operation (or function).
class Region {
 public:
  Region() = default;
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  Block& emplace_block(std::vector<Type> arg_types = {});
  [[nodiscard]] bool empty() const { return blocks_.empty(); }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] Block& front() { return *blocks_.front(); }
  [[nodiscard]] const Block& front() const { return *blocks_.front(); }
  [[nodiscard]] Block& block(std::size_t i) { return *blocks_[i]; }
  [[nodiscard]] const Block& block(std::size_t i) const { return *blocks_[i]; }

  auto begin() { return blocks_.begin(); }
  auto end() { return blocks_.end(); }
  [[nodiscard]] auto begin() const { return blocks_.begin(); }
  [[nodiscard]] auto end() const { return blocks_.end(); }

 private:
  std::vector<std::unique_ptr<Block>> blocks_;
};

/// A basic block: typed arguments plus an ordered operation list.
class Block {
 public:
  explicit Block(std::vector<Type> arg_types = {})
      : arg_types_(std::move(arg_types)) {}
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  [[nodiscard]] std::size_t num_args() const { return arg_types_.size(); }
  [[nodiscard]] Value arg(unsigned i) {
    assert(i < arg_types_.size());
    return Value::block_arg(this, i, arg_types_[i]);
  }
  [[nodiscard]] const std::vector<Type>& arg_types() const { return arg_types_; }

  /// Appends a new operation; returns a reference owned by this block.
  Operation& append(std::unique_ptr<Operation> op);
  /// Inserts before the operation at `index`.
  Operation& insert(std::size_t index, std::unique_ptr<Operation> op);
  /// Removes (destroys) the operation at `index`.
  void erase(std::size_t index);
  /// Removes and returns the operation at `index` without destroying it.
  std::unique_ptr<Operation> take(std::size_t index);
  /// Index of `op` within this block (SIZE_MAX if absent).
  [[nodiscard]] std::size_t index_of(const Operation* op) const;

  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }
  [[nodiscard]] Operation& op(std::size_t i) { return *ops_[i]; }
  [[nodiscard]] const Operation& op(std::size_t i) const { return *ops_[i]; }
  [[nodiscard]] Operation& back() { return *ops_.back(); }
  [[nodiscard]] const Operation& back() const { return *ops_.back(); }

  auto begin() { return ops_.begin(); }
  auto end() { return ops_.end(); }
  [[nodiscard]] auto begin() const { return ops_.begin(); }
  [[nodiscard]] auto end() const { return ops_.end(); }

 private:
  std::vector<Type> arg_types_;
  std::vector<std::unique_ptr<Operation>> ops_;
};

/// A generic operation: "<dialect>.<mnemonic>" with operands, typed
/// results, attributes, and nested regions.
class Operation {
 public:
  Operation(std::string name, std::vector<Value> operands,
            std::vector<Type> result_types, AttrMap attributes = {})
      : name_(std::move(name)),
        operands_(std::move(operands)),
        result_types_(std::move(result_types)),
        attributes_(std::move(attributes)) {}
  Operation(const Operation&) = delete;
  Operation& operator=(const Operation&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Dialect prefix, e.g. "tensor" for "tensor.matmul".
  [[nodiscard]] std::string_view dialect() const {
    const auto dot = name_.find('.');
    return std::string_view(name_).substr(0, dot);
  }

  [[nodiscard]] std::size_t num_operands() const { return operands_.size(); }
  [[nodiscard]] const Value& operand(std::size_t i) const { return operands_[i]; }
  [[nodiscard]] const std::vector<Value>& operands() const { return operands_; }
  void set_operand(std::size_t i, Value v) { operands_[i] = std::move(v); }
  void set_operands(std::vector<Value> operands) { operands_ = std::move(operands); }

  [[nodiscard]] std::size_t num_results() const { return result_types_.size(); }
  [[nodiscard]] Value result(unsigned i = 0) {
    assert(i < result_types_.size());
    return Value::op_result(this, i, result_types_[i]);
  }
  [[nodiscard]] const std::vector<Type>& result_types() const { return result_types_; }

  [[nodiscard]] const AttrMap& attributes() const { return attributes_; }
  [[nodiscard]] AttrMap& attributes() { return attributes_; }
  [[nodiscard]] bool has_attr(const std::string& key) const {
    return attributes_.count(key) > 0;
  }
  [[nodiscard]] const Attribute* attr(const std::string& key) const {
    auto it = attributes_.find(key);
    return it == attributes_.end() ? nullptr : &it->second;
  }
  void set_attr(std::string key, Attribute value) {
    attributes_[std::move(key)] = std::move(value);
  }
  /// Int-attribute convenience with default.
  [[nodiscard]] std::int64_t int_attr(const std::string& key,
                                      std::int64_t fallback = 0) const {
    const Attribute* a = attr(key);
    return a && a->is_int() ? a->as_int() : fallback;
  }
  [[nodiscard]] std::string str_attr(const std::string& key,
                                     std::string fallback = {}) const {
    const Attribute* a = attr(key);
    return a && a->is_string() ? a->as_string() : std::move(fallback);
  }
  [[nodiscard]] double double_attr(const std::string& key,
                                   double fallback = 0.0) const {
    const Attribute* a = attr(key);
    if (!a) return fallback;
    if (a->is_double()) return a->as_double();
    if (a->is_int()) return static_cast<double>(a->as_int());
    return fallback;
  }

  [[nodiscard]] std::size_t num_regions() const { return regions_.size(); }
  Region& emplace_region() {
    regions_.push_back(std::make_unique<Region>());
    return *regions_.back();
  }
  [[nodiscard]] Region& region(std::size_t i = 0) { return *regions_[i]; }
  [[nodiscard]] const Region& region(std::size_t i = 0) const { return *regions_[i]; }

  [[nodiscard]] Block* parent() const { return parent_; }
  void set_parent(Block* b) { parent_ = b; }

  /// Depth-first walk over this op and all nested ops (pre-order).
  void walk(const std::function<void(Operation&)>& fn);

 private:
  std::string name_;
  std::vector<Value> operands_;
  std::vector<Type> result_types_;
  AttrMap attributes_;
  std::vector<std::unique_ptr<Region>> regions_;
  Block* parent_ = nullptr;
};

/// Replaces every use of `from` with `to` inside `block` (recursing into
/// nested regions). Returns the number of uses rewritten.
std::size_t replace_all_uses(Block& block, const Value& from, const Value& to);

}  // namespace everest::ir
