// Dialect registry. Each operation name ("dialect.mnemonic") is registered
// with structural constraints and an optional semantic verifier, mirroring
// MLIR's ODS role. The EVEREST dialects (workflow, tensor, kernel, hw) are
// registered by register_everest_dialects().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ir/operation.hpp"

namespace everest::ir {

/// Structural + semantic definition of one operation.
struct OpDef {
  std::string name;
  /// Operand count bounds; max < 0 means unbounded.
  int min_operands = 0;
  int max_operands = -1;
  /// Result count; < 0 means any.
  int num_results = -1;
  /// Region count; < 0 means any.
  int num_regions = 0;
  /// Terminators must be the last operation of their block.
  bool is_terminator = false;
  /// Attributes that must be present.
  std::vector<std::string> required_attrs;
  /// Optional semantic verifier (types, attribute contents).
  std::function<Status(const Operation&)> verify;
};

/// Process-wide registry of op definitions, keyed by full op name.
class DialectRegistry {
 public:
  static DialectRegistry& instance();

  /// Registers an op definition; re-registration overwrites (idempotent
  /// registration of the same dialect is allowed).
  void register_op(OpDef def);

  [[nodiscard]] const OpDef* lookup(const std::string& name) const;
  [[nodiscard]] bool has_dialect(std::string_view dialect) const;
  [[nodiscard]] std::vector<std::string> registered_ops() const;

 private:
  DialectRegistry() = default;
  std::map<std::string, OpDef> ops_;
};

/// Registers builtin + workflow + tensor + kernel + hw dialects. Safe to
/// call multiple times.
void register_everest_dialects();

}  // namespace everest::ir
