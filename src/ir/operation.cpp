#include "ir/operation.hpp"

namespace everest::ir {

Block& Region::emplace_block(std::vector<Type> arg_types) {
  blocks_.push_back(std::make_unique<Block>(std::move(arg_types)));
  return *blocks_.back();
}

Operation& Block::append(std::unique_ptr<Operation> op) {
  op->set_parent(this);
  ops_.push_back(std::move(op));
  return *ops_.back();
}

Operation& Block::insert(std::size_t index, std::unique_ptr<Operation> op) {
  assert(index <= ops_.size());
  op->set_parent(this);
  auto it = ops_.insert(ops_.begin() + static_cast<std::ptrdiff_t>(index),
                        std::move(op));
  return **it;
}

void Block::erase(std::size_t index) {
  assert(index < ops_.size());
  ops_.erase(ops_.begin() + static_cast<std::ptrdiff_t>(index));
}

std::unique_ptr<Operation> Block::take(std::size_t index) {
  assert(index < ops_.size());
  std::unique_ptr<Operation> out = std::move(ops_[index]);
  ops_.erase(ops_.begin() + static_cast<std::ptrdiff_t>(index));
  out->set_parent(nullptr);
  return out;
}

std::size_t Block::index_of(const Operation* op) const {
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].get() == op) return i;
  }
  return static_cast<std::size_t>(-1);
}

void Operation::walk(const std::function<void(Operation&)>& fn) {
  fn(*this);
  for (auto& region : regions_) {
    for (auto& block : *region) {
      for (auto& op : *block) op->walk(fn);
    }
  }
}

std::size_t replace_all_uses(Block& block, const Value& from, const Value& to) {
  std::size_t count = 0;
  for (auto& op : block) {
    for (std::size_t i = 0; i < op->num_operands(); ++i) {
      if (op->operand(i) == from) {
        op->set_operand(i, to);
        ++count;
      }
    }
    for (std::size_t r = 0; r < op->num_regions(); ++r) {
      for (auto& nested : op->region(r)) {
        count += replace_all_uses(*nested, from, to);
      }
    }
  }
  return count;
}

}  // namespace everest::ir
