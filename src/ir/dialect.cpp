#include "ir/dialect.hpp"

#include <algorithm>

namespace everest::ir {

DialectRegistry& DialectRegistry::instance() {
  static DialectRegistry registry;
  return registry;
}

void DialectRegistry::register_op(OpDef def) {
  ops_[def.name] = std::move(def);
}

const OpDef* DialectRegistry::lookup(const std::string& name) const {
  auto it = ops_.find(name);
  return it == ops_.end() ? nullptr : &it->second;
}

bool DialectRegistry::has_dialect(std::string_view dialect) const {
  const std::string prefix = std::string(dialect) + ".";
  auto it = ops_.lower_bound(prefix);
  return it != ops_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> DialectRegistry::registered_ops() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, def] : ops_) names.push_back(name);
  return names;
}

namespace {

Status op_error(const Operation& op, const std::string& what) {
  return InvalidArgument("op '" + op.name() + "': " + what);
}

Status verify_elementwise_binary(const Operation& op) {
  const Type& a = op.operand(0).type();
  const Type& b = op.operand(1).type();
  if (a != b) {
    return op_error(op, "operand types differ: " + a.to_string() + " vs " +
                            b.to_string());
  }
  if (op.result_types()[0] != a) {
    return op_error(op, "result type must match operand type");
  }
  return OkStatus();
}

Status verify_matmul(const Operation& op) {
  const Type& a = op.operand(0).type();
  const Type& b = op.operand(1).type();
  const Type& r = op.result_types()[0];
  if (!a.is_tensor() || !b.is_tensor() || !r.is_tensor()) {
    return op_error(op, "operands/result must be tensors");
  }
  if (a.rank() != 2 || b.rank() != 2 || r.rank() != 2) {
    return op_error(op, "matmul requires rank-2 tensors");
  }
  if (a.shape()[1] != b.shape()[0]) {
    return op_error(op, "inner dimensions disagree");
  }
  if (r.shape()[0] != a.shape()[0] || r.shape()[1] != b.shape()[1]) {
    return op_error(op, "result shape must be MxN");
  }
  return OkStatus();
}

Status verify_transpose(const Operation& op) {
  const Type& in = op.operand(0).type();
  const Type& out = op.result_types()[0];
  if (!in.is_tensor() || !out.is_tensor()) {
    return op_error(op, "transpose operates on tensors");
  }
  const Attribute* perm = op.attr("perm");
  if (!perm || !perm->is_array()) return op_error(op, "needs 'perm' array attr");
  const auto p = perm->as_int_array();
  if (p.size() != in.rank()) return op_error(op, "perm rank mismatch");
  std::vector<bool> seen(p.size(), false);
  for (std::int64_t x : p) {
    if (x < 0 || static_cast<std::size_t>(x) >= p.size() ||
        seen[static_cast<std::size_t>(x)]) {
      return op_error(op, "perm is not a permutation");
    }
    seen[static_cast<std::size_t>(x)] = true;
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (out.shape()[i] != in.shape()[static_cast<std::size_t>(p[i])]) {
      return op_error(op, "result shape does not match permutation");
    }
  }
  return OkStatus();
}

Status verify_reshape(const Operation& op) {
  const Type& in = op.operand(0).type();
  const Type& out = op.result_types()[0];
  if (!in.is_shaped() || !out.is_shaped()) {
    return op_error(op, "reshape operates on shaped types");
  }
  if (in.num_elements() != out.num_elements()) {
    return op_error(op, "element count must be preserved");
  }
  return OkStatus();
}

Status verify_reduce(const Operation& op) {
  const Type& in = op.operand(0).type();
  if (!in.is_tensor()) return op_error(op, "reduce operates on tensors");
  const std::string kind = op.str_attr("kind");
  if (kind != "sum" && kind != "max" && kind != "min" && kind != "mean") {
    return op_error(op, "kind must be one of sum/max/min/mean");
  }
  return OkStatus();
}

Status verify_map(const Operation& op) {
  static const char* kFns[] = {"relu", "exp",  "log",     "sqrt", "tanh",
                               "sigmoid", "abs", "neg", "square"};
  const std::string fn = op.str_attr("fn");
  if (std::none_of(std::begin(kFns), std::end(kFns),
                   [&](const char* f) { return fn == f; })) {
    return op_error(op, "unknown map fn '" + fn + "'");
  }
  if (op.operand(0).type() != op.result_types()[0]) {
    return op_error(op, "map preserves its operand type");
  }
  return OkStatus();
}

Status verify_for(const Operation& op) {
  if (op.num_regions() != 1 || op.region(0).num_blocks() != 1) {
    return op_error(op, "kernel.for needs exactly one single-block region");
  }
  const Block& body = op.region(0).front();
  if (body.num_args() != 1 || !body.arg_types()[0].is_scalar() ||
      body.arg_types()[0].elem() != ScalarKind::kIndex) {
    return op_error(op, "body block must take one index argument");
  }
  if (body.empty() || body.back().name() != "kernel.yield") {
    return op_error(op, "body must end with kernel.yield");
  }
  const std::int64_t lb = op.int_attr("lb");
  const std::int64_t ub = op.int_attr("ub");
  const std::int64_t step = op.int_attr("step", 1);
  if (step <= 0) return op_error(op, "step must be positive");
  if (ub < lb) return op_error(op, "ub must be >= lb");
  return OkStatus();
}

Status verify_load(const Operation& op) {
  const Type& mem = op.operand(0).type();
  if (!mem.is_memref()) return op_error(op, "first operand must be a memref");
  if (op.num_operands() != 1 + mem.rank()) {
    return op_error(op, "index count must equal memref rank");
  }
  for (std::size_t i = 1; i < op.num_operands(); ++i) {
    const Type& t = op.operand(i).type();
    if (!t.is_scalar() || t.elem() != ScalarKind::kIndex) {
      return op_error(op, "indices must have index type");
    }
  }
  return OkStatus();
}

Status verify_store(const Operation& op) {
  const Type& mem = op.operand(1).type();
  if (!mem.is_memref()) return op_error(op, "second operand must be a memref");
  if (op.num_operands() != 2 + mem.rank()) {
    return op_error(op, "index count must equal memref rank");
  }
  return OkStatus();
}

Status verify_binop(const Operation& op) {
  static const char* kOps[] = {"add", "sub", "mul", "div", "mod", "min", "max",
                               "and", "or", "xor", "cmplt", "cmple"};
  const std::string kind = op.str_attr("op");
  if (std::none_of(std::begin(kOps), std::end(kOps),
                   [&](const char* o) { return kind == o; })) {
    return op_error(op, "unknown binop '" + kind + "'");
  }
  return OkStatus();
}

Status verify_task(const Operation& op) {
  if (op.str_attr("kernel").empty()) {
    return op_error(op, "task needs a non-empty 'kernel' symbol attr");
  }
  return OkStatus();
}

Status verify_offload(const Operation& op) {
  const std::string link = op.str_attr("link");
  if (link != "opencapi" && link != "network" && link != "local") {
    return op_error(op, "link must be opencapi/network/local");
  }
  return OkStatus();
}

Status verify_crypto(const Operation& op) {
  const std::string algo = op.str_attr("algo");
  if (algo != "aes128-gcm" && algo != "aes128-ctr" && algo != "sha256") {
    return op_error(op, "algo must be aes128-gcm/aes128-ctr/sha256");
  }
  return OkStatus();
}

void register_builtin() {
  auto& r = DialectRegistry::instance();
  r.register_op({.name = "builtin.constant",
                 .min_operands = 0,
                 .max_operands = 0,
                 .num_results = 1,
                 .required_attrs = {"value"}});
  r.register_op({.name = "builtin.return",
                 .num_results = 0,
                 .is_terminator = true});
  r.register_op({.name = "builtin.call", .required_attrs = {"callee"}});
}

void register_workflow() {
  auto& r = DialectRegistry::instance();
  // A computational task in the HyperLoom-style workflow; `kernel` names the
  // module-level function that implements it. Data-characteristic and
  // security annotations ride along as attributes.
  r.register_op({.name = "workflow.task",
                 .required_attrs = {"kernel"},
                 .verify = verify_task});
  // An external data source (sensor stream, weather ensemble feed, FCD feed).
  r.register_op({.name = "workflow.source",
                 .min_operands = 0,
                 .max_operands = 0,
                 .num_results = 1,
                 .required_attrs = {"name"}});
  // A terminal consumer of workflow outputs.
  r.register_op({.name = "workflow.sink",
                 .min_operands = 1,
                 .num_results = 0,
                 .required_attrs = {"name"}});
}

void register_tensor() {
  auto& r = DialectRegistry::instance();
  auto binary = [&](const char* name) {
    r.register_op({.name = name,
                   .min_operands = 2,
                   .max_operands = 2,
                   .num_results = 1,
                   .verify = verify_elementwise_binary});
  };
  binary("tensor.add");
  binary("tensor.sub");
  binary("tensor.mul");
  binary("tensor.div");
  r.register_op({.name = "tensor.constant",
                 .min_operands = 0,
                 .max_operands = 0,
                 .num_results = 1,
                 .required_attrs = {"value"}});
  r.register_op({.name = "tensor.scale",
                 .min_operands = 2,
                 .max_operands = 2,
                 .num_results = 1});
  r.register_op({.name = "tensor.matmul",
                 .min_operands = 2,
                 .max_operands = 2,
                 .num_results = 1,
                 .verify = verify_matmul});
  // Generalized einsum-style contraction, e.g. spec = "ij,jk->ik".
  r.register_op({.name = "tensor.contract",
                 .min_operands = 1,
                 .num_results = 1,
                 .required_attrs = {"spec"}});
  r.register_op({.name = "tensor.map",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1,
                 .required_attrs = {"fn"},
                 .verify = verify_map});
  r.register_op({.name = "tensor.reduce",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1,
                 .required_attrs = {"kind"},
                 .verify = verify_reduce});
  r.register_op({.name = "tensor.transpose",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1,
                 .required_attrs = {"perm"},
                 .verify = verify_transpose});
  r.register_op({.name = "tensor.reshape",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1,
                 .verify = verify_reshape});
  r.register_op({.name = "tensor.broadcast",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1});
}

void register_kernel() {
  auto& r = DialectRegistry::instance();
  r.register_op({.name = "kernel.alloc",
                 .min_operands = 0,
                 .max_operands = 0,
                 .num_results = 1});
  r.register_op({.name = "kernel.for",
                 .min_operands = 0,
                 .max_operands = 0,
                 .num_results = 0,
                 .num_regions = 1,
                 .required_attrs = {"lb", "ub"},
                 .verify = verify_for});
  r.register_op({.name = "kernel.load",
                 .min_operands = 1,
                 .num_results = 1,
                 .verify = verify_load});
  r.register_op({.name = "kernel.store",
                 .min_operands = 2,
                 .num_results = 0,
                 .verify = verify_store});
  r.register_op({.name = "kernel.binop",
                 .min_operands = 2,
                 .max_operands = 2,
                 .num_results = 1,
                 .required_attrs = {"op"},
                 .verify = verify_binop});
  r.register_op({.name = "kernel.unop",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1,
                 .required_attrs = {"fn"}});
  r.register_op({.name = "kernel.cast",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1});
  r.register_op({.name = "kernel.yield",
                 .num_results = 0,
                 .is_terminator = true});
}

void register_hw() {
  auto& r = DialectRegistry::instance();
  // Marks a kernel function instance configured as a hardware accelerator.
  r.register_op({.name = "hw.accel",
                 .required_attrs = {"kernel"}});
  // Dispatches data to an accelerator over a given link (paper Fig. 4).
  r.register_op({.name = "hw.offload",
                 .required_attrs = {"kernel", "link"},
                 .verify = verify_offload});
  // TaintHLS-style dynamic information flow tracking checkpoint.
  r.register_op({.name = "hw.dift_check",
                 .min_operands = 1,
                 .num_results = 0});
  r.register_op({.name = "hw.encrypt",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1,
                 .required_attrs = {"algo"},
                 .verify = verify_crypto});
  r.register_op({.name = "hw.decrypt",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1,
                 .required_attrs = {"algo"},
                 .verify = verify_crypto});
  r.register_op({.name = "hw.stream_read",
                 .min_operands = 1,
                 .max_operands = 1,
                 .num_results = 1});
  r.register_op({.name = "hw.stream_write",
                 .min_operands = 2,
                 .max_operands = 2,
                 .num_results = 0});
}

}  // namespace

void register_everest_dialects() {
  static const bool once = [] {
    register_builtin();
    register_workflow();
    register_tensor();
    register_kernel();
    register_hw();
    return true;
  }();
  (void)once;
}

}  // namespace everest::ir
