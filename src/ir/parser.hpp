// Parser for the textual IR form produced by printer.hpp (round-trip).
#pragma once

#include <memory>
#include <string_view>

#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::ir {

/// Parses a textual module. On success the returned module verifies iff the
/// printed module verified.
Result<std::unique_ptr<Module>> parse_module(std::string_view text);

/// Parses a standalone type, e.g. "tensor<4x8xf64>".
Result<Type> parse_type(std::string_view text);

}  // namespace everest::ir
