// Pass infrastructure: module passes, a pass manager with instrumentation
// (timing + optional verification between passes), mirroring the middle-end
// of the EVEREST compilation flow (paper Fig. 1).
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::ir {

/// Base class for module-level transformations.
class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual Status run(Module& module) = 0;
};

/// Timing/result record for one pass execution.
struct PassRecord {
  std::string pass_name;
  double millis = 0.0;
  bool ok = false;
  std::string error;
};

/// Runs a pipeline of passes; optionally verifies the IR after each pass.
class PassManager {
 public:
  explicit PassManager(bool verify_each = true) : verify_each_(verify_each) {}

  PassManager& add(std::unique_ptr<Pass> pass) {
    passes_.push_back(std::move(pass));
    return *this;
  }

  template <typename P, typename... Args>
  PassManager& add(Args&&... args) {
    return add(std::make_unique<P>(std::forward<Args>(args)...));
  }

  /// Runs all passes in order; stops at the first failure.
  Status run(Module& module);

  [[nodiscard]] const std::vector<PassRecord>& records() const { return records_; }

 private:
  bool verify_each_;
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<PassRecord> records_;
};

}  // namespace everest::ir
