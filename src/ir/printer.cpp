#include "ir/printer.hpp"

#include <cstdio>
#include <map>

namespace everest::ir {

namespace {

struct ValueKey {
  const void* def;
  unsigned index;
  bool operator<(const ValueKey& other) const {
    return def != other.def ? def < other.def : index < other.index;
  }
};

class Printer {
 public:
  std::string print_function(const Function& fn) {
    out_.clear();
    names_.clear();
    next_id_ = 0;
    emit_function(fn, 0);
    return out_;
  }

  std::string print_module(const Module& m) {
    out_ = "module @" + m.name();
    if (!m.attributes().empty()) {
      out_ += " attributes ";
      emit_attrs(m.attributes());
    }
    out_ += " {\n";
    for (const auto& fn : m) {
      names_.clear();
      next_id_ = 0;
      emit_function(*fn, 1);
    }
    out_ += "}\n";
    return out_;
  }

 private:
  void indent(int depth) { out_.append(static_cast<std::size_t>(depth) * 2, ' '); }

  std::string name_of(const Value& v) {
    ValueKey key = v.is_op_result()
                       ? ValueKey{v.defining_op(), v.index()}
                       : ValueKey{v.owner_block(), v.index() + (1u << 30)};
    auto it = names_.find(key);
    if (it != names_.end()) return it->second;
    const std::string name = "%" + std::to_string(next_id_++);
    names_.emplace(key, name);
    return name;
  }

  void bind_block_args(const Block& block, bool entry_style) {
    for (unsigned i = 0; i < block.num_args(); ++i) {
      ValueKey key{&block, i + (1u << 30)};
      if (entry_style) {
        names_.emplace(key, "%arg" + std::to_string(i));
      } else {
        names_.emplace(key, "%" + std::to_string(next_id_++));
      }
    }
  }

  void emit_attr(const Attribute& a) {
    switch (a.kind()) {
      case Attribute::Kind::kDenseF64: {
        out_ += "dense<";
        const auto& vals = a.as_dense_f64();
        for (std::size_t i = 0; i < vals.size(); ++i) {
          if (i) out_ += ", ";
          char buf[40];
          std::snprintf(buf, sizeof buf, "%.17g", vals[i]);
          std::string s(buf);
          if (s.find('.') == std::string::npos &&
              s.find('e') == std::string::npos) {
            s += ".0";
          }
          out_ += s;
        }
        out_ += '>';
        return;
      }
      case Attribute::Kind::kArray: {
        out_ += '[';
        const auto& items = a.as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (i) out_ += ", ";
          emit_attr(items[i]);
        }
        out_ += ']';
        return;
      }
      default:
        out_ += a.to_string();
    }
  }

  void emit_attrs(const AttrMap& attrs) {
    out_ += '{';
    bool first = true;
    for (const auto& [k, v] : attrs) {
      if (!first) out_ += ", ";
      first = false;
      out_ += k;
      if (!v.is_unit()) {
        out_ += " = ";
        emit_attr(v);
      }
    }
    out_ += '}';
  }

  void emit_op(const Operation& op, int depth) {
    indent(depth);
    // Results.
    for (unsigned r = 0; r < op.num_results(); ++r) {
      if (r) out_ += ", ";
      // const_cast is safe: result() only reads the op to build a handle.
      out_ += name_of(const_cast<Operation&>(op).result(r));
    }
    if (op.num_results() > 0) out_ += " = ";
    out_ += op.name();
    out_ += '(';
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      if (i) out_ += ", ";
      out_ += name_of(op.operand(i));
    }
    out_ += ')';
    if (!op.attributes().empty()) {
      out_ += ' ';
      emit_attrs(op.attributes());
    }
    // Type signature.
    out_ += " : (";
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      if (i) out_ += ", ";
      out_ += op.operand(i).type().to_string();
    }
    out_ += ") -> (";
    for (std::size_t r = 0; r < op.num_results(); ++r) {
      if (r) out_ += ", ";
      out_ += op.result_types()[r].to_string();
    }
    out_ += ')';
    // Regions.
    for (std::size_t r = 0; r < op.num_regions(); ++r) {
      out_ += " {\n";
      const Region& region = op.region(r);
      for (std::size_t b = 0; b < region.num_blocks(); ++b) {
        const Block& block = region.block(b);
        bind_block_args(block, /*entry_style=*/false);
        indent(depth + 1);
        out_ += '^';
        out_ += '(';
        for (unsigned a = 0; a < block.num_args(); ++a) {
          if (a) out_ += ", ";
          out_ += name_of(const_cast<Block&>(block).arg(a));
          out_ += ": ";
          out_ += block.arg_types()[a].to_string();
        }
        out_ += "):\n";
        for (const auto& nested : block) emit_op(*nested, depth + 2);
      }
      indent(depth);
      out_ += '}';
    }
    out_ += '\n';
  }

  void emit_function(const Function& fn, int depth) {
    indent(depth);
    out_ += "func @" + fn.name() + "(";
    const Block& entry = fn.entry();
    bind_block_args(entry, /*entry_style=*/true);
    for (unsigned i = 0; i < entry.num_args(); ++i) {
      if (i) out_ += ", ";
      out_ += "%arg" + std::to_string(i) + ": " +
              entry.arg_types()[i].to_string();
    }
    out_ += ") -> (";
    const auto& results = fn.result_types();
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i) out_ += ", ";
      out_ += results[i].to_string();
    }
    out_ += ')';
    if (!fn.attributes().empty()) {
      out_ += " attributes ";
      emit_attrs(fn.attributes());
    }
    out_ += " {\n";
    for (const auto& op : entry) emit_op(*op, depth + 1);
    indent(depth);
    out_ += "}\n";
  }

  std::string out_;
  std::map<ValueKey, std::string> names_;
  unsigned next_id_ = 0;
};

}  // namespace

std::string print(const Module& module) { return Printer().print_module(module); }
std::string print(const Function& function) {
  return Printer().print_function(function);
}

}  // namespace everest::ir
