// IR verifier: structural checks (operand counts, region counts, terminator
// placement, SSA def-before-use with region nesting) plus per-op semantic
// verifiers from the dialect registry.
#pragma once

#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::ir {

/// Verifies a whole module; returns the first violation found.
Status verify(const Module& module);

/// Verifies a single function.
Status verify(const Function& function);

}  // namespace everest::ir
