#pragma once

// Typed metric instruments: lock-free counters, gauges, and a
// fixed-boundary log-bucketed histogram with mergeable snapshots.
// All hot-path operations are wait-free relaxed atomics (counters,
// histogram recording) or short CAS loops (gauges, histogram sum);
// snapshots are approximate under concurrent writes but never tear
// individual fields.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace everest::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument with atomic add / running-max support.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  /// Raises the gauge to `v` if `v` exceeds the current value.
  void set_max(double v);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Geometric bucket layout shared by a histogram and its snapshots.
/// Bucket 0 covers [0, min]; bucket i covers (min*growth^{i-1}, min*growth^i];
/// one extra overflow bucket catches everything above the last boundary.
struct HistogramOptions {
  double min = 1.0;      ///< upper bound of the first bucket (e.g. 1 µs)
  double growth = 1.5;   ///< geometric growth factor between boundaries
  std::size_t buckets = 64;  ///< finite buckets (an overflow bucket is added)

  [[nodiscard]] bool operator==(const HistogramOptions& o) const {
    return min == o.min && growth == o.growth && buckets == o.buckets;
  }
};

/// Point-in-time copy of a histogram. Snapshots with identical bucket
/// layouts merge by element-wise addition, which makes aggregation
/// associative and commutative.
struct HistogramSnapshot {
  HistogramOptions options;
  std::vector<std::uint64_t> counts;  ///< options.buckets + 1 (overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min_seen = 0.0;  ///< smallest recorded value (0 when empty)
  double max_seen = 0.0;  ///< largest recorded value (0 when empty)

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Inclusive upper bound of bucket `i` (+inf for the overflow bucket).
  [[nodiscard]] double upper_bound(std::size_t i) const;
  /// Exclusive lower bound of bucket `i` (0 for the first bucket).
  [[nodiscard]] double lower_bound(std::size_t i) const;
  /// Percentile in [0,100] by linear interpolation inside the owning
  /// bucket; the overflow bucket is clamped to `max_seen`. Returns 0
  /// when empty.
  [[nodiscard]] double percentile(double p) const;
  /// Width of the bucket that holds percentile `p` — the resolution
  /// bound on `percentile(p)` vs the exact order statistic.
  [[nodiscard]] double bucket_width_at(double p) const;
  /// Element-wise accumulate `other` into this snapshot. Layouts must
  /// match; mismatch leaves *this untouched and returns false.
  bool merge(const HistogramSnapshot& other);
};

/// Fixed-boundary log-bucketed histogram. `record` is lock-free: one
/// relaxed fetch_add on the owning bucket plus CAS accumulation of the
/// sum and min/max watermarks.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void record(double v);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const HistogramOptions& options() const { return opt_; }
  void reset();

 private:
  [[nodiscard]] std::size_t bucket_of(double v) const;

  HistogramOptions opt_;
  double inv_log_growth_ = 0.0;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_seen_{0.0};
  std::atomic<double> max_seen_{0.0};
};

/// RAII wall-clock stopwatch: at scope exit the elapsed microseconds are
/// recorded into a Histogram and/or set on a Gauge (either sink may be
/// null). For spots where a full Tracer span is too heavy — recovery
/// replay, checkpoint flushes — but the duration should still land in
/// the registry.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* histogram, Gauge* gauge = nullptr)
      : histogram_(histogram),
        gauge_(gauge),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

  ~ScopedTimerUs() {
    const double us = elapsed_us();
    if (histogram_ != nullptr) histogram_->record(us);
    if (gauge_ != nullptr) gauge_->set(us);
  }

  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
               .count() /
           1e3;
  }

 private:
  Histogram* histogram_;
  Gauge* gauge_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace everest::obs
