#pragma once

// TimeSeriesStore: a fixed-capacity ring of registry snapshots sampled
// at a fixed cadence, per node. It turns the registry's instantaneous
// totals into queryable time series: "requests/s over the last second",
// "p99 over the last 10 s on node 3" become facts computed from sample
// deltas rather than bench artifacts.
//
//   * Counters roll up reset-aware: a sample that went DOWN means the
//     process restarted (counters are monotone), so the delta restarts
//     from the new value instead of going negative.
//   * Histograms roll up as windowed deltas: subtracting the bucket
//     vector at the window start from the one at the window end yields
//     the distribution of ONLY the window's events; percentiles on that
//     delta are true windowed percentiles.
//   * Gauges answer with their latest sample (they are instantaneous).
//   * Cross-node merge aligns each node's ring on the query time (the
//     latest sample at or before it — tolerant of clock skew between
//     nodes' sampling loops) and merges snapshots per the GaugeKind
//     contract in registry.hpp.
//
// sample() additionally injects two synthetic self-telemetry series so
// telemetry loss is itself observable (asserted zero in the E25 smoke):
//   obs.trace.dropped   — tracer ring-buffer drops so far (counter)
//   obs.registry.series — registry cardinality (gauge, kMax)

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace everest::obs {

struct TimeSeriesConfig {
  /// Advisory sampling cadence (the owner's sampling loop honours it;
  /// queries only use the timestamps actually recorded).
  double interval_us = 100'000.0;
  /// Ring depth: the store never holds more than this many samples, so
  /// memory is bounded at capacity × registry size regardless of uptime.
  std::size_t capacity = 256;
};

/// Per-node snapshot ring + rollup queries. Thread-safe: a sampler
/// thread appends while control loops query.
class TimeSeriesStore {
 public:
  /// `registry` is borrowed and must outlive the store. `tracer` (may be
  /// null) is the source of the obs.trace.dropped self-telemetry series.
  explicit TimeSeriesStore(const Registry* registry,
                           TimeSeriesConfig config = {},
                           const Tracer* tracer = nullptr);

  /// Snapshots the registry at `at_us` and appends to the ring (evicting
  /// the oldest sample past capacity).
  void sample(double at_us);

  /// Appends a pre-built snapshot — the allocation-light path the
  /// <100 ns/append bench_micro budget covers (ring bookkeeping only;
  /// building the snapshot is the caller's cost).
  void append(RegistrySnapshot snapshot);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  [[nodiscard]] double interval_us() const { return config_.interval_us; }
  /// Time covered by the ring: newest at_us − oldest at_us (0 if <2).
  [[nodiscard]] double span_us() const;

  [[nodiscard]] std::optional<RegistrySnapshot> latest() const;
  /// Latest sample with at_us <= `at_us` (clock-skew-tolerant alignment
  /// point for cross-node queries); nullopt when the ring is empty or
  /// everything is newer.
  [[nodiscard]] std::optional<RegistrySnapshot> at_or_before(
      double at_us) const;

  // ---- windowed rollups (window ends at the newest sample) ----
  /// Reset-aware counter increase over the trailing `window_us`. 0 when
  /// fewer than 2 samples cover the window.
  [[nodiscard]] double counter_delta(const std::string& key,
                                     double window_us) const;
  /// counter_delta scaled to events per second of *covered* time.
  [[nodiscard]] double rate_per_s(const std::string& key,
                                  double window_us) const;
  /// Latest sampled gauge value (nullopt if the series never appeared).
  [[nodiscard]] std::optional<double> gauge_value(const std::string& key) const;
  /// Percentile of ONLY the window's recordings (delta histogram between
  /// the window edges, reset-aware). nullopt when the series is missing
  /// or the window saw no events.
  [[nodiscard]] std::optional<double> percentile(const std::string& key,
                                                 double p,
                                                 double window_us) const;
  /// The windowed delta histogram itself (for callers that want more
  /// than one statistic from it).
  [[nodiscard]] std::optional<HistogramSnapshot> window_histogram(
      const std::string& key, double window_us) const;

  /// One JSON document of every series rolled up over the trailing
  /// window: counter deltas + rates, latest gauges, histogram
  /// count/mean/p50/p99 — the metrics half of a flight-recorder bundle.
  [[nodiscard]] json::Value rollup_json(double window_us) const;

  // ---- cross-node ----
  /// Merges each store's sample at-or-before `at_us` (its latest when
  /// at_us < 0) per the GaugeKind contract. Empty stores are skipped;
  /// nullopt when every store is empty.
  static std::optional<RegistrySnapshot> merged(
      const std::vector<const TimeSeriesStore*>& nodes, double at_us = -1.0);
  /// Federation-wide windowed percentile: merges every node's windowed
  /// delta histogram for `key`, then reads the percentile off the merged
  /// buckets. nullopt when no node saw events in the window.
  static std::optional<double> merged_percentile(
      const std::vector<const TimeSeriesStore*>& nodes, const std::string& key,
      double p, double window_us);

 private:
  /// Reset-aware pairwise accumulation over samples in
  /// [newest.at_us - window_us, newest.at_us].
  [[nodiscard]] std::vector<const RegistrySnapshot*> window_locked(
      double window_us) const;

  const Registry* registry_;
  TimeSeriesConfig config_;
  const Tracer* tracer_;

  mutable std::mutex mu_;
  std::deque<RegistrySnapshot> ring_;
};

}  // namespace everest::obs
