#pragma once

// SloMonitor: per-tenant/per-class service-level objectives evaluated
// with the multi-window burn-rate method. An objective declares what
// "good" means (status OK and latency under a threshold) and how much
// badness the error budget tolerates (target good-fraction). The burn
// rate is bad_fraction / (1 - target): 1.0 spends the budget exactly on
// schedule, N spends it N× too fast.
//
// Two windows make the alert both fast and unflappable:
//   * the FAST window reacts within seconds of a real regression,
//   * the SLOW window must agree, so a single bad bucket cannot page.
// A page clears as soon as the fast window is back under its threshold
// (the fast window is also the fast-recovery signal — the standard SRE
// construction).
//
// Alert transitions invoke a callback; the serving layer hangs load
// shedding and autotuner degradation off it (telemetry steering
// admission), and the flight recorder uses pages as dump triggers.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace everest::obs {

enum class SloAlertState : std::uint8_t {
  kOk = 0,
  /// Fast window burning too hot but the slow window still in budget —
  /// a warning, not a page (brief spikes live here and die here).
  kFastBurn = 1,
  /// Both windows agree the budget is burning: page and act.
  kPage = 2,
};

std::string_view to_string(SloAlertState state);

struct SloObjective {
  /// Objective identity, e.g. "tenant0/tp" or "checkout/lc".
  std::string key;
  /// An event is good iff it succeeded AND latency_us <= this.
  double latency_threshold_us = 10'000.0;
  /// Good-fraction objective (0.99 = 1% error budget).
  double target = 0.99;
  double fast_window_us = 1'000'000.0;
  double slow_window_us = 5'000'000.0;
  /// Burn-rate thresholds per window. Page requires BOTH exceeded.
  double fast_burn_threshold = 4.0;
  double slow_burn_threshold = 1.0;
  /// Accounting granularity; buckets beyond the slow window are pruned.
  double bucket_us = 250'000.0;
  /// Windows with fewer events than this never alert (no paging on
  /// noise when traffic is a trickle).
  std::uint64_t min_events = 20;
};

struct SloStatusReport {
  SloAlertState state = SloAlertState::kOk;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  std::uint64_t fast_good = 0, fast_bad = 0;
  std::uint64_t slow_good = 0, slow_bad = 0;
  std::uint64_t pages = 0;           ///< lifetime kPage entries
  double last_transition_us = 0.0;
};

struct SloAlert {
  std::string key;
  SloAlertState from = SloAlertState::kOk;
  SloAlertState to = SloAlertState::kOk;
  double at_us = 0.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
};

/// Thread-safe: record() streams in from response callbacks on worker
/// threads; evaluate() runs on a control loop. Alert callbacks fire
/// outside the internal lock.
class SloMonitor {
 public:
  /// `registry` (may be null) receives slo.burn_fast/slo.burn_slow
  /// gauges and the slo.pages counter per objective.
  explicit SloMonitor(Registry* registry = nullptr);

  void add_objective(SloObjective objective);
  [[nodiscard]] std::vector<std::string> objective_keys() const;

  /// Accounts one event against objective `key` at time `now_us` on the
  /// caller's clock. Unknown keys are ignored (objectives are opt-in).
  void record(const std::string& key, double latency_us, bool ok,
              double now_us);

  /// Re-computes burn rates and runs the alert state machine for every
  /// objective; returns the transitions that occurred. Call at a fixed
  /// cadence (e.g. once per fast_window / 4).
  std::vector<SloAlert> evaluate(double now_us);

  [[nodiscard]] SloStatusReport status(const std::string& key) const;

  /// Invoked (outside the lock) for every transition evaluate() emits.
  void set_on_alert(std::function<void(const SloAlert&)> on_alert);

 private:
  struct Bucket {
    double start_us = 0.0;
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };
  struct Objective {
    SloObjective spec;
    std::deque<Bucket> buckets;
    SloStatusReport report;
    Gauge* burn_fast = nullptr;
    Gauge* burn_slow = nullptr;
    Counter* pages = nullptr;
  };

  /// bad_fraction / error_budget over the trailing window; also returns
  /// the totals via the out-params.
  static double burn_rate(const Objective& o, double now_us, double window_us,
                          std::uint64_t* good, std::uint64_t* bad);

  Registry* registry_;
  std::function<void(const SloAlert&)> on_alert_;

  mutable std::mutex mu_;
  std::map<std::string, Objective> objectives_;
};

}  // namespace everest::obs
