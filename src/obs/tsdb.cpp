#include "obs/tsdb.hpp"

#include <algorithm>

namespace everest::obs {
namespace {

/// Monotone-counter delta between consecutive samples: a drop means the
/// source restarted, so the later sample IS the post-reset increase.
std::uint64_t reset_aware_delta(std::uint64_t older, std::uint64_t newer) {
  return newer >= older ? newer - older : newer;
}

/// Delta histogram between two snapshots of the same (monotone-growing)
/// histogram, reset-aware per bucket. Layout mismatch or a reset yields
/// the newer snapshot verbatim (post-reset contents).
HistogramSnapshot delta_histogram(const HistogramSnapshot& older,
                                  const HistogramSnapshot& newer) {
  if (!(older.options == newer.options) ||
      older.counts.size() != newer.counts.size() ||
      newer.count < older.count) {
    return newer;
  }
  HistogramSnapshot delta = newer;
  delta.count = newer.count - older.count;
  delta.sum = newer.sum - older.sum;
  for (std::size_t i = 0; i < delta.counts.size(); ++i) {
    delta.counts[i] =
        newer.counts[i] >= older.counts[i] ? newer.counts[i] - older.counts[i]
                                           : newer.counts[i];
  }
  // min/max watermarks are lifetime, not windowed; keep the newer ones
  // as the best available bound (documented approximation).
  return delta;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(const Registry* registry,
                                 TimeSeriesConfig config, const Tracer* tracer)
    : registry_(registry), config_(config), tracer_(tracer) {
  if (config_.capacity < 2) config_.capacity = 2;
}

void TimeSeriesStore::sample(double at_us) {
  RegistrySnapshot snap = registry_->snapshot(at_us);
  // Self-telemetry: telemetry loss and cardinality are series too. The
  // drop counter is always present (0 without a tracer) so "zero drops"
  // is an asserted fact, never an absent series.
  snap.counters["obs.trace.dropped"] =
      tracer_ != nullptr ? tracer_->dropped() : 0;
  snap.gauges["obs.registry.series"] = RegistrySnapshot::GaugeSample{
      static_cast<double>(snap.series()), GaugeKind::kMax};
  append(std::move(snap));
}

void TimeSeriesStore::append(RegistrySnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= config_.capacity) ring_.pop_front();
  ring_.push_back(std::move(snapshot));
}

std::size_t TimeSeriesStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

double TimeSeriesStore::span_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size() < 2 ? 0.0 : ring_.back().at_us - ring_.front().at_us;
}

std::optional<RegistrySnapshot> TimeSeriesStore::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::optional<RegistrySnapshot> TimeSeriesStore::at_or_before(
    double at_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const RegistrySnapshot* best = nullptr;
  for (const RegistrySnapshot& snap : ring_) {
    if (snap.at_us <= at_us) best = &snap;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::vector<const RegistrySnapshot*> TimeSeriesStore::window_locked(
    double window_us) const {
  // Caller holds mu_.
  std::vector<const RegistrySnapshot*> out;
  if (ring_.empty()) return out;
  const double start = ring_.back().at_us - window_us;
  for (const RegistrySnapshot& snap : ring_) {
    if (snap.at_us >= start) out.push_back(&snap);
  }
  return out;
}

double TimeSeriesStore::counter_delta(const std::string& key,
                                      double window_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto window = window_locked(window_us);
  if (window.size() < 2) return 0.0;
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < window.size(); ++i) {
    const auto older = window[i - 1]->counters.find(key);
    const auto newer = window[i]->counters.find(key);
    if (newer == window[i]->counters.end()) continue;
    const std::uint64_t before =
        older == window[i - 1]->counters.end() ? 0 : older->second;
    total += reset_aware_delta(before, newer->second);
  }
  return static_cast<double>(total);
}

double TimeSeriesStore::rate_per_s(const std::string& key,
                                   double window_us) const {
  double covered_us = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto window = window_locked(window_us);
    if (window.size() < 2) return 0.0;
    covered_us = window.back()->at_us - window.front()->at_us;
  }
  if (covered_us <= 0.0) return 0.0;
  return counter_delta(key, window_us) / (covered_us / 1e6);
}

std::optional<double> TimeSeriesStore::gauge_value(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    const auto git = it->gauges.find(key);
    if (git != it->gauges.end()) return git->second.value;
  }
  return std::nullopt;
}

std::optional<HistogramSnapshot> TimeSeriesStore::window_histogram(
    const std::string& key, double window_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto window = window_locked(window_us);
  if (window.empty()) return std::nullopt;
  const auto newest = window.back()->histograms.find(key);
  if (newest == window.back()->histograms.end()) return std::nullopt;
  const auto oldest = window.front()->histograms.find(key);
  if (window.size() < 2 || oldest == window.front()->histograms.end()) {
    return newest->second;  // whole lifetime is inside the window
  }
  return delta_histogram(oldest->second, newest->second);
}

std::optional<double> TimeSeriesStore::percentile(const std::string& key,
                                                  double p,
                                                  double window_us) const {
  const auto hist = window_histogram(key, window_us);
  if (!hist.has_value() || hist->count == 0) return std::nullopt;
  return hist->percentile(p);
}

json::Value TimeSeriesStore::rollup_json(double window_us) const {
  RegistrySnapshot newest;
  std::vector<std::string> hist_keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty()) return json::Value(json::Object{});
    newest = ring_.back();
  }
  json::Object counters;
  for (const auto& [key, value] : newest.counters) {
    json::Object entry;
    entry["total"] = json::Value(static_cast<std::size_t>(value));
    entry["delta"] = json::Value(counter_delta(key, window_us));
    entry["rate_per_s"] = json::Value(rate_per_s(key, window_us));
    counters[key] = json::Value(std::move(entry));
  }
  json::Object gauges;
  for (const auto& [key, sample] : newest.gauges) {
    json::Object entry;
    entry["value"] = json::Value(sample.value);
    entry["kind"] = json::Value(std::string(to_string(sample.kind)));
    gauges[key] = json::Value(std::move(entry));
  }
  json::Object histograms;
  for (const auto& [key, unused] : newest.histograms) {
    (void)unused;
    const auto hist = window_histogram(key, window_us);
    if (!hist.has_value()) continue;
    json::Object entry;
    entry["count"] = json::Value(static_cast<std::size_t>(hist->count));
    entry["mean"] = json::Value(hist->mean());
    entry["p50"] = json::Value(hist->percentile(50.0));
    entry["p99"] = json::Value(hist->percentile(99.0));
    histograms[key] = json::Value(std::move(entry));
  }
  json::Object root;
  root["window_us"] = json::Value(window_us);
  root["at_us"] = json::Value(newest.at_us);
  root["counters"] = json::Value(std::move(counters));
  root["gauges"] = json::Value(std::move(gauges));
  root["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(root));
}

std::optional<RegistrySnapshot> TimeSeriesStore::merged(
    const std::vector<const TimeSeriesStore*>& nodes, double at_us) {
  std::optional<RegistrySnapshot> out;
  for (const TimeSeriesStore* node : nodes) {
    if (node == nullptr) continue;
    std::optional<RegistrySnapshot> snap =
        at_us < 0.0 ? node->latest() : node->at_or_before(at_us);
    if (!snap.has_value()) continue;
    if (!out.has_value()) {
      out = std::move(snap);
      // A single-node "merge" must obey the same contract as a real one:
      // node-local gauges never escape into a federation rollup.
      RegistrySnapshot empty;
      empty.nodes = 0;
      out->merge(empty);
    } else {
      out->merge(*snap);
    }
  }
  return out;
}

std::optional<double> TimeSeriesStore::merged_percentile(
    const std::vector<const TimeSeriesStore*>& nodes, const std::string& key,
    double p, double window_us) {
  std::optional<HistogramSnapshot> merged;
  for (const TimeSeriesStore* node : nodes) {
    if (node == nullptr) continue;
    const auto hist = node->window_histogram(key, window_us);
    if (!hist.has_value()) continue;
    if (!merged.has_value()) {
      merged = *hist;
    } else {
      (void)merged->merge(*hist);
    }
  }
  if (!merged.has_value() || merged->count == 0) return std::nullopt;
  return merged->percentile(p);
}

}  // namespace everest::obs
