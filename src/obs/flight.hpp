#pragma once

// FlightRecorder: a black box for the data plane. The tracer's
// per-thread rings already hold the last N spans per thread — the
// recorder turns that rolling tail plus the TimeSeriesStore's recent
// rollups into a Perfetto-loadable bundle the moment something goes
// wrong (fault injection, breaker open, SLO page). The point is
// capturing the window you can never reproduce: the seconds *before*
// the trigger.
//
// Bundles are kept in a bounded in-memory ring and optionally dumped to
// disk as <stem>.trace.json (chrome trace events, Perfetto-loadable)
// plus <stem>.metrics.json (rollup over the retention window). Triggers
// are debounced: a storm of breaker opens produces one bundle per
// min_retrigger_gap, with suppressions counted (obs.flight.suppressed).

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "obs/tsdb.hpp"

namespace everest::obs {

struct FlightRecorderConfig {
  /// How far back the bundle reaches (spans ending inside
  /// [trigger - retention, trigger] are captured).
  double retention_us = 5'000'000.0;
  /// Minimum wall-clock gap between accepted triggers; triggers inside
  /// the gap are suppressed (counted, no bundle).
  double min_retrigger_gap_us = 1'000'000.0;
  /// In-memory bundle ring depth; oldest bundles evict first.
  std::size_t max_bundles = 8;
  /// When non-empty, every accepted trigger also dumps to this
  /// directory as flight-<seq>-<reason> stems.
  std::string dump_dir;
};

/// One captured incident window.
struct FlightBundle {
  std::uint64_t seq = 0;       ///< monotone per recorder
  std::string reason;          ///< "fault.crash", "breaker.open", "slo.page"
  double triggered_at_us = 0;  ///< tracer wall clock
  double window_start_us = 0;  ///< triggered_at - retention (clamped at 0)
  Annotations notes;           ///< trigger-specific context (node, key, ...)
  std::vector<TraceEvent> events;
  json::Value metrics{json::Object{}};

  /// Chrome trace-event JSON of the captured spans (Perfetto-loadable).
  [[nodiscard]] std::string trace_json(int indent = -1) const;
  /// True when [window_start_us, triggered_at_us] covers `at_us`.
  [[nodiscard]] bool covers_us(double at_us) const {
    return at_us >= window_start_us && at_us <= triggered_at_us;
  }
};

/// Thread-safe. trigger() is cheap enough to call from fault hooks and
/// breaker callbacks: one collect_tail over the tracer rings plus one
/// rollup; suppressed triggers cost a clock read and a counter bump.
class FlightRecorder {
 public:
  /// `tracer` is required and borrowed. `tsdb` (may be null) supplies
  /// the metrics half of each bundle. `registry` (may be null) receives
  /// obs.flight.triggers / obs.flight.suppressed counters.
  FlightRecorder(const Tracer* tracer, const TimeSeriesStore* tsdb,
                 FlightRecorderConfig config = {},
                 Registry* registry = nullptr);

  /// Captures a bundle unless debounced. Returns the accepted bundle's
  /// seq, or nullopt when suppressed.
  std::optional<std::uint64_t> trigger(const std::string& reason,
                                       Annotations notes = {});

  [[nodiscard]] std::size_t bundle_count() const;
  /// Newest-first access; nullopt when `index` >= bundle_count().
  [[nodiscard]] std::optional<FlightBundle> bundle(std::size_t index = 0) const;
  [[nodiscard]] std::uint64_t triggers() const;
  [[nodiscard]] std::uint64_t suppressed() const;

  /// Writes <stem>.trace.json + <stem>.metrics.json; returns false on
  /// I/O failure (never throws — the recorder must not take down the
  /// thing it is recording).
  static bool dump(const FlightBundle& bundle, const std::string& stem);

 private:
  const Tracer* tracer_;
  const TimeSeriesStore* tsdb_;
  FlightRecorderConfig config_;
  Counter* triggers_ = nullptr;
  Counter* suppressed_ = nullptr;

  mutable std::mutex mu_;
  std::deque<FlightBundle> bundles_;
  std::uint64_t next_seq_ = 1;
  double last_trigger_us_ = -1.0;
  std::uint64_t trigger_count_ = 0;
  std::uint64_t suppressed_count_ = 0;
};

}  // namespace everest::obs
