#pragma once

// Critical-path extraction over stitched request traces: given the span
// forest of one trace (federation root → forward hops → per-node
// queue/batch/execute/reply children), attribute the request's
// end-to-end latency to named segments. The attribution answers the
// question a latency page always asks first — "where did the time go:
// queueing, the wire, or the kernel?" — per request and aggregated.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace everest::obs {

/// Latency attribution of one request trace (all values µs).
struct CriticalPath {
  std::uint64_t trace_id = 0;
  /// Root span duration — the client-observed latency.
  double total_us = 0.0;
  /// Admission → dispatch (the "queue" spans).
  double queue_us = 0.0;
  /// Batch formation + input staging + variant selection ("batch").
  double batch_us = 0.0;
  /// Cross-node forward hops ("hop" spans that are not replies).
  double forward_us = 0.0;
  /// Handler execution ("execute").
  double execute_us = 0.0;
  /// Reply delivery, including the return hop ("reply" spans and
  /// reply-annotated hops).
  double reply_us = 0.0;
  /// total − categorized (clamped at 0): dispatch gaps, bookkeeping.
  double other_us = 0.0;
  /// Spans that contributed (root excluded).
  std::size_t segments = 0;

  [[nodiscard]] double categorized_us() const {
    return queue_us + batch_us + forward_us + execute_us + reply_us;
  }
};

/// Extracts the attribution for one trace. Root = the trace's span with
/// parent_id 0 (the longest one when several exist). Returns a
/// zero-initialised result when the trace has no spans.
[[nodiscard]] CriticalPath critical_path(const std::vector<TraceEvent>& events,
                                         std::uint64_t trace_id);

/// One CriticalPath per trace that has a root span, in ascending
/// trace_id order.
[[nodiscard]] std::vector<CriticalPath> critical_paths(
    const std::vector<TraceEvent>& events);

/// Element-wise mean over `paths` (zeroes when empty); trace_id is 0.
[[nodiscard]] CriticalPath mean_critical_path(
    const std::vector<CriticalPath>& paths);

}  // namespace everest::obs
