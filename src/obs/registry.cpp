#include "obs/registry.hpp"

#include <algorithm>
#include <sstream>

namespace everest::obs {
namespace {

template <typename Map, typename Factory>
auto* find_or_create(Map& map, const std::string& key, Factory make) {
  auto it = map.find(key);
  if (it == map.end()) it = map.emplace(key, make()).first;
  return it->second.get();
}

}  // namespace

std::string_view to_string(GaugeKind kind) {
  switch (kind) {
    case GaugeKind::kLastWrite: return "last-write";
    case GaugeKind::kSum: return "sum";
    case GaugeKind::kMax: return "max";
  }
  return "?";
}

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  at_us = std::max(at_us, other.at_us);
  nodes += other.nodes;
  for (const auto& [key, n] : other.counters) counters[key] += n;
  for (const auto& [key, g] : other.gauges) {
    if (g.kind == GaugeKind::kLastWrite) continue;  // node-local: no rollup
    auto [it, inserted] = gauges.emplace(key, g);
    if (inserted) continue;
    if (it->second.kind == GaugeKind::kSum) {
      it->second.value += g.value;
    } else if (it->second.kind == GaugeKind::kMax) {
      it->second.value = std::max(it->second.value, g.value);
    }
  }
  // A kLastWrite gauge on OUR side must not masquerade as a federation
  // value either: drop it from the merged result.
  for (auto it = gauges.begin(); it != gauges.end();) {
    if (it->second.kind == GaugeKind::kLastWrite) {
      it = gauges.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [key, h] : other.histograms) {
    auto it = histograms.find(key);
    if (it == histograms.end()) {
      histograms.emplace(key, h);
    } else {
      (void)it->second.merge(h);  // layout mismatch: keep ours untouched
    }
  }
}

std::string Registry::key_of(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Counter* Registry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(counters_, key_of(name, labels),
                        [] { return std::make_unique<Counter>(); });
}

Gauge* Registry::gauge(const std::string& name, const Labels& labels) {
  return gauge(name, GaugeKind::kLastWrite, labels);
}

Gauge* Registry::gauge(const std::string& name, GaugeKind kind,
                       const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = key_of(name, labels);
  gauge_kinds_.emplace(key, kind);  // first registration's kind wins
  return find_or_create(gauges_, key,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram* Registry::histogram(const std::string& name,
                               HistogramOptions options, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(histograms_, key_of(name, labels), [&] {
    return std::make_unique<Histogram>(options);
  });
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : histograms_) h->reset();
}

RegistrySnapshot Registry::snapshot(double at_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.at_us = at_us;
  for (const auto& [key, c] : counters_) snap.counters[key] = c->value();
  for (const auto& [key, g] : gauges_) {
    RegistrySnapshot::GaugeSample sample;
    sample.value = g->value();
    auto kit = gauge_kinds_.find(key);
    sample.kind = kit == gauge_kinds_.end() ? GaugeKind::kLastWrite
                                            : kit->second;
    snap.gauges[key] = sample;
  }
  for (const auto& [key, h] : histograms_) {
    snap.histograms.emplace(key, h->snapshot());
  }
  return snap;
}

std::size_t Registry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

json::Value Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object counters;
  for (const auto& [key, c] : counters_) {
    counters[key] = json::Value(static_cast<std::size_t>(c->value()));
  }
  json::Object gauges;
  for (const auto& [key, g] : gauges_) gauges[key] = json::Value(g->value());
  json::Object histograms;
  for (const auto& [key, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    json::Object entry;
    entry["count"] = json::Value(static_cast<std::size_t>(s.count));
    entry["sum"] = json::Value(s.sum);
    entry["mean"] = json::Value(s.mean());
    entry["p50"] = json::Value(s.percentile(50.0));
    entry["p99"] = json::Value(s.percentile(99.0));
    entry["p999"] = json::Value(s.percentile(99.9));
    entry["max"] = json::Value(s.max_seen);
    histograms[key] = json::Value(std::move(entry));
  }
  json::Object root;
  root["counters"] = json::Value(std::move(counters));
  root["gauges"] = json::Value(std::move(gauges));
  root["histograms"] = json::Value(std::move(histograms));
  return json::Value(std::move(root));
}

std::string Registry::to_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [key, c] : counters_) out << key << ' ' << c->value() << '\n';
  for (const auto& [key, g] : gauges_) out << key << ' ' << g->value() << '\n';
  for (const auto& [key, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    out << key << "_count " << s.count << '\n'
        << key << "_mean " << s.mean() << '\n'
        << key << "_p50 " << s.percentile(50.0) << '\n'
        << key << "_p99 " << s.percentile(99.0) << '\n'
        << key << "_p999 " << s.percentile(99.9) << '\n'
        << key << "_max " << s.max_seen << '\n';
  }
  return out.str();
}

}  // namespace everest::obs
