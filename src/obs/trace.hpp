#pragma once

// Span tracer with per-thread bounded ring buffers.
//
// Spans carry trace_id / span_id / parent_id plus a component and
// free-form annotations; instant events mark points in time (faults,
// steals, prefetch issues). Events are dual-clocked: kWall timestamps
// are microseconds on the steady clock since the tracer's epoch, kSim
// timestamps are microseconds of discrete-event simulation time passed
// in explicitly by the caller (`platform::Simulator::now()`).
//
// A disabled tracer costs one relaxed atomic load + branch per call
// site (<10 ns; proven by bench_micro and bench_e20). Recording into a
// full ring buffer drops the event and counts the drop instead of
// blocking or reallocating.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace everest::obs {

enum class TimeDomain : std::uint8_t { kWall = 0, kSim = 1 };

/// Propagated trace identity: carried alongside a request/event across
/// process-internal hops (cluster forwards, stream deliveries, storage
/// promotes) so every subsystem's spans land in ONE stitched chain
/// instead of per-subsystem fragments. A default-constructed context is
/// "not sampled" (trace_id 0); propagating it is two 64-bit copies, so
/// the disabled path costs nothing beyond the enabled() branch the
/// emitting site already pays (<50 ns per hop; bench_micro tracks it,
/// bench_e25 enforces it).
struct TraceContext {
  std::uint64_t trace_id = 0;     ///< the request's federation-wide trace
  std::uint64_t parent_span = 0;  ///< span to parent the next hop under

  [[nodiscard]] bool valid() const { return trace_id != 0; }
  /// Same trace, one level deeper: spans emitted by the callee parent
  /// under `span`.
  [[nodiscard]] TraceContext child(std::uint64_t span) const {
    return TraceContext{trace_id, span};
  }
};

/// Key/value annotations attached to an event (variant decisions,
/// worker names, byte counts, ...).
using Annotations = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan = 0, kInstant = 1 };

  Kind kind = Kind::kSpan;
  TimeDomain domain = TimeDomain::kWall;
  std::uint64_t trace_id = 0;  ///< groups spans of one request / task run
  std::uint64_t span_id = 0;   ///< unique per span; 0 for instants
  std::uint64_t parent_id = 0;  ///< 0 = root
  double start_us = 0.0;  ///< instants: the event timestamp
  double end_us = 0.0;    ///< spans only
  std::uint32_t track = 0;  ///< render lane (worker index / thread lane)
  std::string name;
  std::string component;  ///< subsystem: serve, workflow, data, ...
  Annotations annotations;

  [[nodiscard]] double duration_us() const { return end_us - start_us; }
};

struct TracerConfig {
  std::size_t ring_capacity = 1 << 15;  ///< events per thread buffer
  bool enabled = false;
};

/// Track value meaning "use this thread's lane index".
inline constexpr std::uint32_t kAutoTrack = 0xffffffffu;

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Process-unique id for spans / traces (never returns 0).
  [[nodiscard]] std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Microseconds on the wall (steady) clock since tracer construction.
  [[nodiscard]] double wall_now_us() const;
  /// Converts a steady_clock time point to tracer-epoch microseconds.
  [[nodiscard]] double wall_us(std::chrono::steady_clock::time_point tp) const;

  /// Records a completed span with explicit timestamps. No-op when
  /// disabled; callers on hot paths should guard with enabled() before
  /// building strings/annotations.
  void span(TimeDomain domain, std::uint64_t trace_id, std::uint64_t span_id,
            std::uint64_t parent_id, double start_us, double end_us,
            std::uint32_t track, std::string name, std::string component,
            Annotations annotations = {});

  /// Records an instant (zero-duration) event.
  void instant(TimeDomain domain, std::uint64_t trace_id, double at_us,
               std::uint32_t track, std::string name, std::string component,
               Annotations annotations = {});

  /// RAII wall-clock span: captures the start on construction and
  /// records on destruction. Inert (null tracer) when tracing is off —
  /// the disabled path is one atomic load + branch.
  class ScopedSpan {
   public:
    ScopedSpan() = default;
    ScopedSpan(ScopedSpan&& o) noexcept { *this = std::move(o); }
    ScopedSpan& operator=(ScopedSpan&& o) noexcept {
      if (this != &o) {
        finish();
        tracer_ = o.tracer_;
        o.tracer_ = nullptr;
        event_ = std::move(o.event_);
      }
      return *this;
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() { finish(); }

    [[nodiscard]] bool active() const { return tracer_ != nullptr; }
    [[nodiscard]] std::uint64_t span_id() const { return event_.span_id; }
    void annotate(std::string key, std::string value) {
      if (tracer_ != nullptr) {
        event_.annotations.emplace_back(std::move(key), std::move(value));
      }
    }

   private:
    friend class Tracer;
    void finish();

    Tracer* tracer_ = nullptr;
    TraceEvent event_;
  };

  /// Opens a wall-clock scoped span. `name`/`component` are only
  /// materialised when tracing is enabled. trace_id 0 allocates a fresh
  /// trace id; parent_id 0 makes a root span.
  [[nodiscard]] ScopedSpan scoped(const char* name, const char* component,
                                  std::uint64_t trace_id = 0,
                                  std::uint64_t parent_id = 0,
                                  std::uint32_t track = kAutoTrack);

  /// Copies out every buffered event (all threads). Stable order:
  /// buffers in registration order, events in record order.
  [[nodiscard]] std::vector<TraceEvent> collect() const;
  /// Copies out only events that ended at or after `min_end_us` (tracer
  /// wall clock) — the flight-recorder window. Order as in collect().
  [[nodiscard]] std::vector<TraceEvent> collect_tail(double min_end_us) const;
  /// Total events dropped on full rings across all threads.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Discards buffered events and the drop counts (buffers stay
  /// registered).
  void clear();

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
    std::uint32_t lane = 0;  ///< registration index, default track
  };

  void push(TraceEvent&& ev);
  ThreadBuffer* buffer_for_this_thread();

  const std::uint64_t tracer_uid_;  ///< never reused; keys the TLS cache
  TracerConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};

  mutable std::mutex buffers_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

}  // namespace everest::obs
