#pragma once

// Chrome trace-event exporter (the JSON format chrome://tracing and
// Perfetto load) plus structural span checks used by tests and smoke
// benches.

#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace everest::obs {

/// Builds a `{"traceEvents":[...], "displayTimeUnit":"ms"}` document.
/// Spans become complete ("ph":"X") events and instants become
/// ("ph":"i") events; each component maps to one pid (named via
/// process_name metadata) and each track to one tid, so workflow runs
/// render as a per-worker Gantt chart.
[[nodiscard]] json::Value chrome_trace_json(
    const std::vector<TraceEvent>& events);

/// chrome_trace_json serialized (indent < 0 = compact).
[[nodiscard]] std::string chrome_trace(const std::vector<TraceEvent>& events,
                                       int indent = -1);

/// True when span parent links form a forest: no span is its own
/// ancestor and every non-zero parent_id resolves to a span in
/// `events`. Instants are ignored.
[[nodiscard]] bool spans_acyclic(const std::vector<TraceEvent>& events);

/// True when every span either is a root (parent_id == 0) or its parent
/// chain reaches a root within the same trace_id.
[[nodiscard]] bool span_chains_complete(const std::vector<TraceEvent>& events);

}  // namespace everest::obs
