#pragma once

// Chrome trace-event exporter (the JSON format chrome://tracing and
// Perfetto load) plus structural span checks used by tests and smoke
// benches.

#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"
#include "obs/trace.hpp"

namespace everest::obs {

/// Builds a `{"traceEvents":[...], "displayTimeUnit":"ms"}` document.
/// Spans become complete ("ph":"X") events and instants become
/// ("ph":"i") events; each component maps to one pid (named via
/// process_name metadata) and each track to one tid, so workflow runs
/// render as a per-worker Gantt chart.
[[nodiscard]] json::Value chrome_trace_json(
    const std::vector<TraceEvent>& events);

/// chrome_trace_json serialized (indent < 0 = compact).
[[nodiscard]] std::string chrome_trace(const std::vector<TraceEvent>& events,
                                       int indent = -1);

/// True when span parent links form a forest: no span is its own
/// ancestor and every non-zero parent_id resolves to a span in
/// `events`. Instants are ignored.
[[nodiscard]] bool spans_acyclic(const std::vector<TraceEvent>& events);

/// True when every span either is a root (parent_id == 0) or its parent
/// chain reaches a root within the same trace_id.
[[nodiscard]] bool span_chains_complete(const std::vector<TraceEvent>& events);

/// Fraction of spans whose parent chain reaches a root span (parent_id
/// 0) of the same trace_id within `events`. 1.0 for an empty set. The
/// E25 smoke requires 1.0: every span a forwarded request produced on
/// any node must stitch back to the federation root.
[[nodiscard]] double root_reachable_fraction(
    const std::vector<TraceEvent>& events);

/// Fraction of multi-component traces whose spans form ONE root-rooted
/// forest: exactly one root span and every other span root-reachable.
/// Only traces touching >= 2 components count (single-node requests
/// cannot be unstitched); 1.0 when there are none.
[[nodiscard]] double stitched_cross_node_fraction(
    const std::vector<TraceEvent>& events);

/// Lints serialized chrome-trace JSON the way Perfetto's importer
/// would: top level must be an object with a traceEvents array; every
/// event needs string "ph" and numeric pid/tid; "X"/"B"/"i" events need
/// numeric ts; "X" additionally needs numeric dur >= 0; "M" metadata
/// needs a name. Returns OK or INVALID_ARGUMENT naming the first
/// offending event index.
[[nodiscard]] Status validate_chrome_trace(std::string_view json_text);

}  // namespace everest::obs
