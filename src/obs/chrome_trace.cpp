#include "obs/chrome_trace.hpp"

#include <map>
#include <unordered_map>
#include <unordered_set>

namespace everest::obs {

json::Value chrome_trace_json(const std::vector<TraceEvent>& events) {
  // Stable component -> pid mapping in first-seen order.
  std::map<std::string, int> pids;
  for (const auto& ev : events) {
    pids.emplace(ev.component, 0);
  }
  int next_pid = 1;
  for (auto& [component, pid] : pids) pid = next_pid++;

  json::Array trace_events;
  trace_events.reserve(events.size() + pids.size());
  for (const auto& [component, pid] : pids) {
    json::Object args;
    args["name"] = json::Value(component);
    json::Object meta;
    meta["ph"] = json::Value("M");
    meta["name"] = json::Value("process_name");
    meta["pid"] = json::Value(pid);
    meta["tid"] = json::Value(0);
    meta["args"] = json::Value(std::move(args));
    trace_events.push_back(json::Value(std::move(meta)));
  }

  for (const auto& ev : events) {
    json::Object args;
    args["trace_id"] = json::Value(static_cast<std::size_t>(ev.trace_id));
    if (ev.kind == TraceEvent::Kind::kSpan) {
      args["span_id"] = json::Value(static_cast<std::size_t>(ev.span_id));
      args["parent_id"] = json::Value(static_cast<std::size_t>(ev.parent_id));
    }
    args["clock"] =
        json::Value(ev.domain == TimeDomain::kSim ? "sim" : "wall");
    for (const auto& [key, value] : ev.annotations) {
      args[key] = json::Value(value);
    }

    json::Object entry;
    entry["name"] = json::Value(ev.name);
    entry["cat"] = json::Value(ev.component);
    entry["pid"] = json::Value(pids[ev.component]);
    entry["tid"] = json::Value(static_cast<std::size_t>(ev.track));
    entry["ts"] = json::Value(ev.start_us);
    if (ev.kind == TraceEvent::Kind::kSpan) {
      entry["ph"] = json::Value("X");
      entry["dur"] = json::Value(ev.duration_us() < 0.0 ? 0.0 : ev.duration_us());
    } else {
      entry["ph"] = json::Value("i");
      entry["s"] = json::Value("t");  // thread-scoped instant
    }
    entry["args"] = json::Value(std::move(args));
    trace_events.push_back(json::Value(std::move(entry)));
  }

  json::Object root;
  root["traceEvents"] = json::Value(std::move(trace_events));
  root["displayTimeUnit"] = json::Value("ms");
  return json::Value(std::move(root));
}

std::string chrome_trace(const std::vector<TraceEvent>& events, int indent) {
  return chrome_trace_json(events).dump(indent);
}

bool spans_acyclic(const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint64_t, std::uint64_t> parent_of;
  parent_of.reserve(events.size());
  for (const auto& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan) continue;
    if (ev.span_id == 0) return false;  // spans must carry real ids
    if (!parent_of.emplace(ev.span_id, ev.parent_id).second) {
      return false;  // duplicate span id
    }
  }
  for (const auto& [id, parent] : parent_of) {
    std::unordered_set<std::uint64_t> seen;
    std::uint64_t cur = id;
    while (cur != 0) {
      if (!seen.insert(cur).second) return false;  // cycle
      auto it = parent_of.find(cur);
      if (it == parent_of.end()) {
        // A non-zero parent that is not in the event set: dangling link.
        if (cur != id) return false;
        break;
      }
      cur = it->second;
    }
  }
  return true;
}

bool span_chains_complete(const std::vector<TraceEvent>& events) {
  if (!spans_acyclic(events)) return false;
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  for (const auto& ev : events) {
    if (ev.kind == TraceEvent::Kind::kSpan) by_id.emplace(ev.span_id, &ev);
  }
  for (const auto& [id, ev] : by_id) {
    const TraceEvent* cur = ev;
    while (cur->parent_id != 0) {
      auto it = by_id.find(cur->parent_id);
      if (it == by_id.end()) return false;             // broken chain
      if (it->second->trace_id != ev->trace_id) return false;  // crossed trace
      cur = it->second;
    }
  }
  return true;
}

namespace {

/// True when `ev`'s parent chain reaches a parent_id-0 span of the same
/// trace without leaving `by_id` or crossing traces; cycle-bounded.
bool reaches_root(const TraceEvent* ev,
                  const std::unordered_map<std::uint64_t, const TraceEvent*>&
                      by_id) {
  const TraceEvent* cur = ev;
  std::size_t hops = 0;
  while (cur->parent_id != 0) {
    if (++hops > by_id.size()) return false;  // cycle
    auto it = by_id.find(cur->parent_id);
    if (it == by_id.end()) return false;
    if (it->second->trace_id != ev->trace_id) return false;
    cur = it->second;
  }
  return true;
}

}  // namespace

double root_reachable_fraction(const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  std::vector<const TraceEvent*> spans;
  for (const auto& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan) continue;
    spans.push_back(&ev);
    by_id.emplace(ev.span_id, &ev);
  }
  if (spans.empty()) return 1.0;
  std::size_t reachable = 0;
  for (const TraceEvent* ev : spans) {
    if (reaches_root(ev, by_id)) ++reachable;
  }
  return static_cast<double>(reachable) / static_cast<double>(spans.size());
}

double stitched_cross_node_fraction(const std::vector<TraceEvent>& events) {
  struct TraceInfo {
    std::unordered_set<std::string> components;
    std::vector<const TraceEvent*> spans;
    std::size_t roots = 0;
  };
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  std::unordered_map<std::uint64_t, TraceInfo> traces;
  for (const auto& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan || ev.trace_id == 0) continue;
    by_id.emplace(ev.span_id, &ev);
    TraceInfo& info = traces[ev.trace_id];
    info.components.insert(ev.component);
    info.spans.push_back(&ev);
    if (ev.parent_id == 0) ++info.roots;
  }
  std::size_t multi = 0, stitched = 0;
  for (const auto& [trace_id, info] : traces) {
    (void)trace_id;
    if (info.components.size() < 2) continue;
    ++multi;
    if (info.roots != 1) continue;
    bool all_reach = true;
    for (const TraceEvent* ev : info.spans) {
      if (!reaches_root(ev, by_id)) {
        all_reach = false;
        break;
      }
    }
    if (all_reach) ++stitched;
  }
  if (multi == 0) return 1.0;
  return static_cast<double>(stitched) / static_cast<double>(multi);
}

Status validate_chrome_trace(std::string_view json_text) {
  auto parsed = json::parse(json_text);
  if (!parsed.ok()) {
    return InvalidArgument("chrome-trace: unparsable JSON: " +
                           parsed.status().message());
  }
  const json::Value& root = parsed.value();
  if (!root.is_object()) {
    return InvalidArgument("chrome-trace: top level must be an object");
  }
  const json::Value& trace_events = root.at("traceEvents");
  if (!trace_events.is_array()) {
    return InvalidArgument("chrome-trace: missing traceEvents array");
  }
  const json::Array& arr = trace_events.as_array();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const json::Value& ev = arr[i];
    const std::string where = "chrome-trace: event " + std::to_string(i);
    if (!ev.is_object()) return InvalidArgument(where + ": not an object");
    if (!ev.at("ph").is_string()) {
      return InvalidArgument(where + ": missing string ph");
    }
    const std::string& ph = ev.at("ph").as_string();
    if (!ev.at("pid").is_number() || !ev.at("tid").is_number()) {
      return InvalidArgument(where + ": missing numeric pid/tid");
    }
    if (ph == "M") {
      if (!ev.at("name").is_string()) {
        return InvalidArgument(where + ": metadata without a name");
      }
      continue;
    }
    if (ph == "X" || ph == "B" || ph == "E" || ph == "i" || ph == "I") {
      if (!ev.at("ts").is_number()) {
        return InvalidArgument(where + ": missing numeric ts");
      }
    }
    if (ph == "X") {
      if (!ev.at("dur").is_number() || ev.at("dur").as_number() < 0.0) {
        return InvalidArgument(where + ": X event needs dur >= 0");
      }
    }
  }
  return OkStatus();
}

}  // namespace everest::obs
