#pragma once

// Umbrella header for the observability substrate: metric instruments +
// registry (counters, gauges, log-bucketed histograms, snapshots with
// the cross-node GaugeKind merge contract), the span tracer with
// per-thread ring buffers and TraceContext propagation, Chrome-trace /
// JSON exporters with stitch validation, time-series rollups, SLO
// burn-rate monitoring, critical-path extraction, and the
// fault-triggered flight recorder.

#include "obs/chrome_trace.hpp"   // IWYU pragma: export
#include "obs/critical_path.hpp"  // IWYU pragma: export
#include "obs/flight.hpp"         // IWYU pragma: export
#include "obs/instruments.hpp"    // IWYU pragma: export
#include "obs/registry.hpp"       // IWYU pragma: export
#include "obs/slo.hpp"            // IWYU pragma: export
#include "obs/trace.hpp"          // IWYU pragma: export
#include "obs/tsdb.hpp"           // IWYU pragma: export
