#pragma once

// Umbrella header for the observability substrate: metric instruments +
// registry (counters, gauges, log-bucketed histograms), the span tracer
// with per-thread ring buffers, and the Chrome-trace / JSON exporters.

#include "obs/chrome_trace.hpp"   // IWYU pragma: export
#include "obs/instruments.hpp"    // IWYU pragma: export
#include "obs/registry.hpp"       // IWYU pragma: export
#include "obs/trace.hpp"          // IWYU pragma: export
