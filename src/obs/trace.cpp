#include "obs/trace.hpp"

namespace everest::obs {
namespace {

std::uint64_t next_tracer_uid() {
  static std::atomic<std::uint64_t> uid{1};
  return uid.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread map from tracer uid to that tracer's buffer for this
// thread. Uids are never reused, so an entry for a destroyed tracer can
// never be looked up again — it is just dead weight, bounded by the
// number of tracers this thread has ever recorded into.
struct TlsCache {
  std::vector<std::pair<std::uint64_t, void*>> entries;
};

TlsCache& tls_cache() {
  thread_local TlsCache cache;
  return cache;
}

}  // namespace

Tracer::Tracer(TracerConfig config)
    : tracer_uid_(next_tracer_uid()),
      config_(config),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  enabled_.store(config_.enabled, std::memory_order_release);
}

Tracer::~Tracer() = default;

double Tracer::wall_now_us() const {
  return wall_us(std::chrono::steady_clock::now());
}

double Tracer::wall_us(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

Tracer::ThreadBuffer* Tracer::buffer_for_this_thread() {
  TlsCache& cache = tls_cache();
  for (const auto& [uid, buf] : cache.entries) {
    if (uid == tracer_uid_) return static_cast<ThreadBuffer*>(buf);
  }
  auto owned = std::make_unique<ThreadBuffer>();
  ThreadBuffer* buf = owned.get();
  buf->events.reserve(std::min<std::size_t>(config_.ring_capacity, 1024));
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    buf->lane = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  cache.entries.emplace_back(tracer_uid_, buf);
  return buf;
}

void Tracer::push(TraceEvent&& ev) {
  ThreadBuffer* buf = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buf->mu);
  if (ev.track == kAutoTrack) ev.track = buf->lane;
  if (buf->events.size() >= config_.ring_capacity) {
    ++buf->dropped;
    return;
  }
  buf->events.push_back(std::move(ev));
}

void Tracer::span(TimeDomain domain, std::uint64_t trace_id,
                  std::uint64_t span_id, std::uint64_t parent_id,
                  double start_us, double end_us, std::uint32_t track,
                  std::string name, std::string component,
                  Annotations annotations) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kSpan;
  ev.domain = domain;
  ev.trace_id = trace_id;
  ev.span_id = span_id == 0 ? next_id() : span_id;
  ev.parent_id = parent_id;
  ev.start_us = start_us;
  ev.end_us = end_us;
  ev.track = track;
  ev.name = std::move(name);
  ev.component = std::move(component);
  ev.annotations = std::move(annotations);
  push(std::move(ev));
}

void Tracer::instant(TimeDomain domain, std::uint64_t trace_id, double at_us,
                     std::uint32_t track, std::string name,
                     std::string component, Annotations annotations) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.domain = domain;
  ev.trace_id = trace_id;
  ev.start_us = at_us;
  ev.end_us = at_us;
  ev.track = track;
  ev.name = std::move(name);
  ev.component = std::move(component);
  ev.annotations = std::move(annotations);
  push(std::move(ev));
}

void Tracer::ScopedSpan::finish() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  event_.end_us = t->wall_now_us();
  if (t->enabled()) t->push(std::move(event_));
}

Tracer::ScopedSpan Tracer::scoped(const char* name, const char* component,
                                  std::uint64_t trace_id,
                                  std::uint64_t parent_id,
                                  std::uint32_t track) {
  ScopedSpan s;
  if (!enabled()) return s;
  s.tracer_ = this;
  s.event_.kind = TraceEvent::Kind::kSpan;
  s.event_.domain = TimeDomain::kWall;
  s.event_.trace_id = trace_id == 0 ? next_id() : trace_id;
  s.event_.span_id = next_id();
  s.event_.parent_id = parent_id;
  s.event_.start_us = wall_now_us();
  s.event_.track = track;
  s.event_.name = name;
  s.event_.component = component;
  return s;
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

std::vector<TraceEvent> Tracer::collect_tail(double min_end_us) const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (const TraceEvent& ev : buf->events) {
      if (ev.end_us >= min_end_us) out.push_back(ev);
    }
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

}  // namespace everest::obs
