#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

namespace everest::obs {

std::string_view to_string(SloAlertState state) {
  switch (state) {
    case SloAlertState::kOk: return "ok";
    case SloAlertState::kFastBurn: return "fast-burn";
    case SloAlertState::kPage: return "page";
  }
  return "?";
}

SloMonitor::SloMonitor(Registry* registry) : registry_(registry) {}

void SloMonitor::add_objective(SloObjective objective) {
  std::lock_guard<std::mutex> lock(mu_);
  Objective o;
  o.spec = std::move(objective);
  if (o.spec.bucket_us <= 0.0) o.spec.bucket_us = 250'000.0;
  if (o.spec.target >= 1.0) o.spec.target = 1.0 - 1e-9;
  if (registry_ != nullptr) {
    const Labels labels = {{"slo", o.spec.key}};
    o.burn_fast = registry_->gauge("slo.burn_fast", GaugeKind::kMax, labels);
    o.burn_slow = registry_->gauge("slo.burn_slow", GaugeKind::kMax, labels);
    o.pages = registry_->counter("slo.pages", labels);
  }
  objectives_.emplace(o.spec.key, std::move(o));
}

std::vector<std::string> SloMonitor::objective_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(objectives_.size());
  for (const auto& [key, o] : objectives_) keys.push_back(key);
  return keys;
}

void SloMonitor::record(const std::string& key, double latency_us, bool ok,
                        double now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objectives_.find(key);
  if (it == objectives_.end()) return;
  Objective& o = it->second;
  const double bucket_start =
      std::floor(now_us / o.spec.bucket_us) * o.spec.bucket_us;
  if (o.buckets.empty() || o.buckets.back().start_us < bucket_start) {
    o.buckets.push_back(Bucket{bucket_start, 0, 0});
  }
  // Late events (now_us behind the open bucket) land in the open bucket:
  // burn rates tolerate that granularity error by construction.
  Bucket& bucket = o.buckets.back();
  const bool good = ok && latency_us <= o.spec.latency_threshold_us;
  if (good) {
    ++bucket.good;
  } else {
    ++bucket.bad;
  }
  // Prune beyond the slow window (+1 bucket of slack for edge overlap).
  const double horizon = now_us - o.spec.slow_window_us - o.spec.bucket_us;
  while (!o.buckets.empty() && o.buckets.front().start_us +
                                       o.spec.bucket_us <
                                   horizon) {
    o.buckets.pop_front();
  }
}

double SloMonitor::burn_rate(const Objective& o, double now_us,
                             double window_us, std::uint64_t* good,
                             std::uint64_t* bad) {
  std::uint64_t g = 0, b = 0;
  const double start = now_us - window_us;
  for (const Bucket& bucket : o.buckets) {
    // A bucket counts when any part of it overlaps the window.
    if (bucket.start_us + o.spec.bucket_us <= start) continue;
    if (bucket.start_us > now_us) continue;
    g += bucket.good;
    b += bucket.bad;
  }
  *good = g;
  *bad = b;
  const std::uint64_t total = g + b;
  if (total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(b) / static_cast<double>(total);
  const double budget = 1.0 - o.spec.target;
  return bad_fraction / budget;
}

std::vector<SloAlert> SloMonitor::evaluate(double now_us) {
  std::vector<SloAlert> alerts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, o] : objectives_) {
      SloStatusReport& r = o.report;
      r.fast_burn = burn_rate(o, now_us, o.spec.fast_window_us, &r.fast_good,
                              &r.fast_bad);
      r.slow_burn = burn_rate(o, now_us, o.spec.slow_window_us, &r.slow_good,
                              &r.slow_bad);
      if (o.burn_fast != nullptr) o.burn_fast->set(r.fast_burn);
      if (o.burn_slow != nullptr) o.burn_slow->set(r.slow_burn);

      const bool fast_enough = r.fast_good + r.fast_bad >= o.spec.min_events;
      const bool slow_enough = r.slow_good + r.slow_bad >= o.spec.min_events;
      const bool fast_hot =
          fast_enough && r.fast_burn > o.spec.fast_burn_threshold;
      const bool slow_hot =
          slow_enough && r.slow_burn > o.spec.slow_burn_threshold;

      SloAlertState next = r.state;
      switch (r.state) {
        case SloAlertState::kOk:
        case SloAlertState::kFastBurn:
          next = fast_hot ? (slow_hot ? SloAlertState::kPage
                                      : SloAlertState::kFastBurn)
                          : SloAlertState::kOk;
          break;
        case SloAlertState::kPage:
          // Fast recovery: the fast window cooling off clears the page
          // even while the slow window still remembers the incident.
          if (!fast_hot) {
            next = SloAlertState::kOk;
          }
          break;
      }
      if (next != r.state) {
        SloAlert alert;
        alert.key = key;
        alert.from = r.state;
        alert.to = next;
        alert.at_us = now_us;
        alert.fast_burn = r.fast_burn;
        alert.slow_burn = r.slow_burn;
        alerts.push_back(std::move(alert));
        r.state = next;
        r.last_transition_us = now_us;
        if (next == SloAlertState::kPage) {
          ++r.pages;
          if (o.pages != nullptr) o.pages->inc();
        }
      }
    }
  }
  if (on_alert_) {
    for (const SloAlert& alert : alerts) on_alert_(alert);
  }
  return alerts;
}

SloStatusReport SloMonitor::status(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objectives_.find(key);
  if (it == objectives_.end()) return SloStatusReport{};
  return it->second.report;
}

void SloMonitor::set_on_alert(std::function<void(const SloAlert&)> on_alert) {
  on_alert_ = std::move(on_alert);
}

}  // namespace everest::obs
