#include "obs/critical_path.hpp"

#include <algorithm>

namespace everest::obs {
namespace {

enum class Segment { kQueue, kBatch, kForward, kExecute, kReply, kOther };

Segment classify(const TraceEvent& ev) {
  if (ev.name == "queue") return Segment::kQueue;
  if (ev.name == "batch" || ev.name == "stage" || ev.name == "variant") {
    return Segment::kBatch;
  }
  if (ev.name == "execute") return Segment::kExecute;
  if (ev.name == "reply") return Segment::kReply;
  if (ev.name == "hop" || ev.name == "xfer" || ev.name == "promote" ||
      ev.name == "deliver") {
    // A hop annotated kind=reply is return traffic; everything else on
    // the wire is forward progress.
    for (const auto& [key, value] : ev.annotations) {
      if (key == "kind" && value == "reply") return Segment::kReply;
    }
    return Segment::kForward;
  }
  return Segment::kOther;
}

void accumulate(CriticalPath* path, const TraceEvent& ev) {
  const double d = std::max(0.0, ev.duration_us());
  switch (classify(ev)) {
    case Segment::kQueue: path->queue_us += d; break;
    case Segment::kBatch: path->batch_us += d; break;
    case Segment::kForward: path->forward_us += d; break;
    case Segment::kExecute: path->execute_us += d; break;
    case Segment::kReply: path->reply_us += d; break;
    case Segment::kOther: break;  // folded into other_us at the end
  }
  ++path->segments;
}

}  // namespace

CriticalPath critical_path(const std::vector<TraceEvent>& events,
                           std::uint64_t trace_id) {
  CriticalPath path;
  path.trace_id = trace_id;
  const TraceEvent* root = nullptr;
  for (const TraceEvent& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan || ev.trace_id != trace_id) continue;
    if (ev.parent_id == 0 &&
        (root == nullptr || ev.duration_us() > root->duration_us())) {
      root = &ev;
    }
  }
  if (root == nullptr) return path;
  path.total_us = std::max(0.0, root->duration_us());
  for (const TraceEvent& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan || ev.trace_id != trace_id) continue;
    if (&ev == root || ev.parent_id == 0) continue;
    accumulate(&path, ev);
  }
  path.other_us = std::max(0.0, path.total_us - path.categorized_us());
  return path;
}

std::vector<CriticalPath> critical_paths(const std::vector<TraceEvent>& events) {
  std::vector<std::uint64_t> roots;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEvent::Kind::kSpan && ev.parent_id == 0 &&
        ev.trace_id != 0) {
      roots.push_back(ev.trace_id);
    }
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  std::vector<CriticalPath> paths;
  paths.reserve(roots.size());
  for (std::uint64_t trace_id : roots) {
    paths.push_back(critical_path(events, trace_id));
  }
  return paths;
}

CriticalPath mean_critical_path(const std::vector<CriticalPath>& paths) {
  CriticalPath mean;
  if (paths.empty()) return mean;
  for (const CriticalPath& p : paths) {
    mean.total_us += p.total_us;
    mean.queue_us += p.queue_us;
    mean.batch_us += p.batch_us;
    mean.forward_us += p.forward_us;
    mean.execute_us += p.execute_us;
    mean.reply_us += p.reply_us;
    mean.other_us += p.other_us;
    mean.segments += p.segments;
  }
  const double n = static_cast<double>(paths.size());
  mean.total_us /= n;
  mean.queue_us /= n;
  mean.batch_us /= n;
  mean.forward_us /= n;
  mean.execute_us /= n;
  mean.reply_us /= n;
  mean.other_us /= n;
  return mean;
}

}  // namespace everest::obs
