#include "obs/flight.hpp"

#include <algorithm>
#include <fstream>

#include "obs/chrome_trace.hpp"

namespace everest::obs {

std::string FlightBundle::trace_json(int indent) const {
  return chrome_trace(events, indent);
}

FlightRecorder::FlightRecorder(const Tracer* tracer,
                               const TimeSeriesStore* tsdb,
                               FlightRecorderConfig config, Registry* registry)
    : tracer_(tracer), tsdb_(tsdb), config_(config) {
  if (config_.max_bundles == 0) config_.max_bundles = 1;
  if (registry != nullptr) {
    triggers_ = registry->counter("obs.flight.triggers");
    suppressed_ = registry->counter("obs.flight.suppressed");
  }
}

std::optional<std::uint64_t> FlightRecorder::trigger(const std::string& reason,
                                                     Annotations notes) {
  const double now_us = tracer_->wall_now_us();
  FlightBundle bundle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (last_trigger_us_ >= 0.0 &&
        now_us - last_trigger_us_ < config_.min_retrigger_gap_us) {
      ++suppressed_count_;
      if (suppressed_ != nullptr) suppressed_->inc();
      return std::nullopt;
    }
    last_trigger_us_ = now_us;
    ++trigger_count_;
    bundle.seq = next_seq_++;
  }
  if (triggers_ != nullptr) triggers_->inc();

  bundle.reason = reason;
  bundle.triggered_at_us = now_us;
  bundle.window_start_us = std::max(0.0, now_us - config_.retention_us);
  bundle.notes = std::move(notes);
  bundle.events = tracer_->collect_tail(bundle.window_start_us);
  if (tsdb_ != nullptr) {
    bundle.metrics = tsdb_->rollup_json(config_.retention_us);
  }

  if (!config_.dump_dir.empty()) {
    const std::string stem = config_.dump_dir + "/flight-" +
                             std::to_string(bundle.seq) + "-" + reason;
    (void)dump(bundle, stem);  // best effort; the ring keeps the bundle
  }

  const std::uint64_t seq = bundle.seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (bundles_.size() >= config_.max_bundles) bundles_.pop_front();
    bundles_.push_back(std::move(bundle));
  }
  return seq;
}

std::size_t FlightRecorder::bundle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_.size();
}

std::optional<FlightBundle> FlightRecorder::bundle(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= bundles_.size()) return std::nullopt;
  return bundles_[bundles_.size() - 1 - index];
}

std::uint64_t FlightRecorder::triggers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trigger_count_;
}

std::uint64_t FlightRecorder::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_count_;
}

bool FlightRecorder::dump(const FlightBundle& bundle, const std::string& stem) {
  {
    std::ofstream trace(stem + ".trace.json", std::ios::trunc);
    if (!trace) return false;
    trace << bundle.trace_json(2);
    if (!trace) return false;
  }
  json::Object meta;
  meta["reason"] = json::Value(bundle.reason);
  meta["seq"] = json::Value(static_cast<std::size_t>(bundle.seq));
  meta["triggered_at_us"] = json::Value(bundle.triggered_at_us);
  meta["window_start_us"] = json::Value(bundle.window_start_us);
  json::Object notes;
  for (const auto& [key, value] : bundle.notes) {
    notes[key] = json::Value(value);
  }
  meta["notes"] = json::Value(std::move(notes));
  json::Object root;
  root["flight"] = json::Value(std::move(meta));
  root["rollup"] = bundle.metrics;
  std::ofstream metrics(stem + ".metrics.json", std::ios::trunc);
  if (!metrics) return false;
  metrics << json::Value(std::move(root)).dump(2);
  return static_cast<bool>(metrics);
}

}  // namespace everest::obs
