#pragma once

// Process-wide registry of named instruments. Lookup (name + label set)
// is mutex-protected and intended for setup paths; the returned
// instrument pointers are stable for the registry's lifetime, so hot
// paths cache them once and then touch only the lock-free instruments.
//
// Cross-node merge semantics (the federation rollup contract):
//   * counters    — SUM. Every counter is a monotone event count; the
//     federation total is the sum of node totals.
//   * histograms  — element-wise bucket SUM (HistogramSnapshot::merge);
//     identical layouts are required, mismatches refuse to merge.
//   * gauges      — depend on what the gauge means, declared at
//     registration via GaugeKind:
//       - kSum       totals that partition across nodes (resident bytes,
//                    in-flight work): federation value = sum.
//       - kMax       watermarks (max queue depth seen, last detection
//                    time): federation value = max.
//       - kLastWrite node-local instantaneous/config values (imbalance
//                    ratios, "moved last rebuild") where neither sum nor
//                    max means anything. These are EXCLUDED from merged
//                    snapshots — silently summing them is exactly the
//                    double-count bug the rollup layer must make
//                    impossible (regression-tested in test_obs).
//     The first registration's kind wins, like histogram options.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "obs/instruments.hpp"

namespace everest::obs {

/// Label set attached to an instrument name, e.g. {{"class","lc"}}.
/// Labels are sorted by key when forming the registry key, so insertion
/// order does not matter.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// How a gauge aggregates across nodes (see the merge contract above).
enum class GaugeKind : std::uint8_t { kLastWrite = 0, kSum = 1, kMax = 2 };

std::string_view to_string(GaugeKind kind);

/// Point-in-time copy of a whole registry, taggable with a sample time —
/// the unit the time-series ring stores and the federation rollup merges.
struct RegistrySnapshot {
  double at_us = 0.0;       ///< sample timestamp (caller's clock)
  std::uint64_t nodes = 1;  ///< node snapshots merged into this one

  struct GaugeSample {
    double value = 0.0;
    GaugeKind kind = GaugeKind::kLastWrite;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSample> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Registered series in this snapshot (counters + gauges + histograms).
  [[nodiscard]] std::size_t series() const {
    return counters.size() + gauges.size() + histograms.size();
  }

  /// Cross-node accumulate per the contract in the header comment:
  /// counters/histograms sum, kSum gauges sum, kMax gauges max, and
  /// kLastWrite gauges are REMOVED from the merged result (both sides).
  /// at_us becomes the max of the two sample times (the merged snapshot
  /// is "as of" the freshest constituent). Histogram layout mismatches
  /// skip that series rather than corrupting it.
  void merge(const RegistrySnapshot& other);
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Repeated calls with the same name + labels return
  /// the same instrument. For histograms the first registration's
  /// options win; for gauges the first registration's kind wins.
  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, GaugeKind kind,
               const Labels& labels = {});
  Histogram* histogram(const std::string& name, HistogramOptions options = {},
                       const Labels& labels = {});

  /// Zero every registered instrument (pointers stay valid).
  void reset();

  /// Consistent point-in-time copy of every instrument, stamped with
  /// `at_us` on the caller's clock. The unit of time-series sampling.
  [[nodiscard]] RegistrySnapshot snapshot(double at_us = 0.0) const;

  /// Number of registered series (cardinality — itself exported as
  /// `obs.registry.series` by the telemetry sampler so a label explosion
  /// is observable before it hurts).
  [[nodiscard]] std::size_t series_count() const;

  /// Structured dump: {"counters":{key:n}, "gauges":{key:x},
  /// "histograms":{key:{count,sum,mean,p50,p99,p999,max}}}.
  [[nodiscard]] json::Value to_json() const;
  /// Flat one-instrument-per-line dump: `key value`.
  [[nodiscard]] std::string to_text() const;

  /// Canonical instrument key: `name{k1=v1,k2=v2}` with sorted labels,
  /// or plain `name` when the label set is empty.
  static std::string key_of(const std::string& name, const Labels& labels);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, GaugeKind> gauge_kinds_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace everest::obs
