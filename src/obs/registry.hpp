#pragma once

// Process-wide registry of named instruments. Lookup (name + label set)
// is mutex-protected and intended for setup paths; the returned
// instrument pointers are stable for the registry's lifetime, so hot
// paths cache them once and then touch only the lock-free instruments.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "obs/instruments.hpp"

namespace everest::obs {

/// Label set attached to an instrument name, e.g. {{"class","lc"}}.
/// Labels are sorted by key when forming the registry key, so insertion
/// order does not matter.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Repeated calls with the same name + labels return
  /// the same instrument. For histograms the first registration's
  /// options win.
  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});
  Histogram* histogram(const std::string& name, HistogramOptions options = {},
                       const Labels& labels = {});

  /// Zero every registered instrument (pointers stay valid).
  void reset();

  /// Structured dump: {"counters":{key:n}, "gauges":{key:x},
  /// "histograms":{key:{count,sum,mean,p50,p99,p999,max}}}.
  [[nodiscard]] json::Value to_json() const;
  /// Flat one-instrument-per-line dump: `key value`.
  [[nodiscard]] std::string to_text() const;

  /// Canonical instrument key: `name{k1=v1,k2=v2}` with sorted labels,
  /// or plain `name` when the label set is empty.
  static std::string key_of(const std::string& name, const Labels& labels);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace everest::obs
