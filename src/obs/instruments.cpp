#include "obs/instruments.hpp"

#include <algorithm>
#include <limits>

namespace everest::obs {

void Gauge::add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::set_max(double v) {
  double cur = value_.load(std::memory_order_relaxed);
  while (cur < v &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double HistogramSnapshot::upper_bound(std::size_t i) const {
  if (i >= options.buckets) return std::numeric_limits<double>::infinity();
  return options.min * std::pow(options.growth, static_cast<double>(i));
}

double HistogramSnapshot::lower_bound(std::size_t i) const {
  return i == 0 ? 0.0 : upper_bound(i - 1);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return min_seen;
  // Rank of the target order statistic, 1-based; p=100 -> last sample.
  const double rank =
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts[i];
    if (rank > static_cast<double>(cum)) continue;
    double lo = std::max(lower_bound(i), min_seen);
    double hi = i + 1 == counts.size() ? max_seen : upper_bound(i);
    hi = std::min(hi, max_seen);
    if (hi < lo) hi = lo;
    const double frac = (rank - before) / static_cast<double>(counts[i]);
    return lo + frac * (hi - lo);
  }
  return max_seen;
}

double HistogramSnapshot::bucket_width_at(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank =
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) < rank) continue;
    const double hi =
        i + 1 == counts.size() ? std::max(max_seen, lower_bound(i)) : upper_bound(i);
    return hi - lower_bound(i);
  }
  return 0.0;
}

bool HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (!(options == other.options) || counts.size() != other.counts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  if (other.count > 0) {
    min_seen = count == other.count ? other.min_seen
                                    : std::min(min_seen, other.min_seen);
    max_seen = std::max(max_seen, other.max_seen);
  }
  return true;
}

Histogram::Histogram(HistogramOptions options)
    : opt_(options), counts_(options.buckets + 1) {
  if (opt_.min <= 0.0) opt_.min = 1.0;
  if (opt_.growth <= 1.0) opt_.growth = 1.5;
  if (opt_.buckets == 0) {
    opt_.buckets = 1;
    counts_ = std::vector<std::atomic<std::uint64_t>>(2);
  }
  inv_log_growth_ = 1.0 / std::log(opt_.growth);
  min_seen_.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
}

std::size_t Histogram::bucket_of(double v) const {
  if (!(v > opt_.min)) return 0;  // also catches NaN and negatives
  const std::size_t idx = 1 + static_cast<std::size_t>(
                                  std::floor(std::log(v / opt_.min) *
                                             inv_log_growth_ * (1.0 - 1e-12)));
  return std::min(idx, opt_.buckets);
}

void Histogram::record(double v) {
  counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  cur = min_seen_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_seen_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_seen_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_seen_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.options = opt_;
  s.counts.resize(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const double mn = min_seen_.load(std::memory_order_relaxed);
  s.min_seen = std::isinf(mn) ? 0.0 : mn;
  s.max_seen = max_seen_.load(std::memory_order_relaxed);
  // A snapshot taken mid-record can see count_ ahead of the bucket sums
  // (or behind); pin the headline count to the bucket contents so
  // percentile walks are internally consistent.
  std::uint64_t bucket_total = 0;
  for (auto c : s.counts) bucket_total += c;
  s.count = bucket_total;
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_seen_.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  max_seen_.store(0.0, std::memory_order_relaxed);
}

}  // namespace everest::obs
