#include "security/taint.hpp"

#include <algorithm>

namespace everest::security {

bool TaintLabel::subset_of(const TaintLabel& other) const {
  return std::includes(other.tags_.begin(), other.tags_.end(), tags_.begin(),
                       tags_.end());
}

void TaintTracker::set_label(const std::string& object, TaintLabel label) {
  labels_[object] = std::move(label);
}

const TaintLabel& TaintTracker::label_of(const std::string& object) const {
  static const TaintLabel kEmpty;
  auto it = labels_.find(object);
  return it == labels_.end() ? kEmpty : it->second;
}

void TaintTracker::propagate(const std::string& task,
                             const std::vector<std::string>& inputs,
                             const std::vector<std::string>& outputs,
                             const std::set<std::string>& declassifies) {
  (void)task;  // kept for audit-log extensions
  TaintLabel joined;
  for (const std::string& in : inputs) joined.join(label_of(in));
  std::set<std::string> tags = joined.tags();
  for (const std::string& d : declassifies) tags.erase(d);
  TaintLabel out_label{std::move(tags)};
  for (const std::string& out : outputs) labels_[out] = out_label;
}

Status TaintTracker::check_sink(const std::string& object,
                                const TaintLabel& sink_clearance) const {
  const TaintLabel& label = label_of(object);
  if (label.subset_of(sink_clearance)) return OkStatus();
  std::string missing;
  for (const std::string& tag : label.tags()) {
    if (!sink_clearance.has(tag)) {
      if (!missing.empty()) missing += ", ";
      missing += tag;
    }
  }
  return PermissionDenied("object '" + object +
                          "' carries uncleared tags: " + missing);
}

std::vector<std::string> TaintTracker::objects_with(
    const std::string& tag) const {
  std::vector<std::string> out;
  for (const auto& [object, label] : labels_) {
    if (label.has(tag)) out.push_back(object);
  }
  return out;
}

}  // namespace everest::security
