#include "security/protected_store.hpp"

#include <cstring>

#include "security/sha256.hpp"

namespace everest::security {

Block16 ProtectedStore::derive_key(const std::string& name) const {
  const Sha256Digest mac = hmac_sha256(
      master_secret_, std::vector<std::uint8_t>(name.begin(), name.end()));
  Block16 key{};
  std::memcpy(key.data(), mac.data(), key.size());
  return key;
}

Status ProtectedStore::put(const std::string& name,
                           const std::vector<std::uint8_t>& data,
                           TaintLabel label) {
  StoredObject object;
  object.version = ++put_counter_;
  // Unique IV per (object, version): 96 bits of the global put counter.
  // A never-repeating IV is the one hard requirement of GCM.
  for (int i = 0; i < 8; ++i) {
    object.iv[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(object.version >> (8 * i));
  }
  const Block16 key = derive_key(name);
  // The object name is authenticated as AAD: a ciphertext swapped between
  // two names fails authentication even under the same master secret.
  const std::vector<std::uint8_t> aad(name.begin(), name.end());
  GcmResult sealed = aes128_gcm_encrypt(key, object.iv, data, aad);
  object.ciphertext = std::move(sealed.ciphertext);
  object.tag = sealed.tag;
  object.label = std::move(label);
  objects_[name] = std::move(object);
  return OkStatus();
}

Result<std::vector<std::uint8_t>> ProtectedStore::get(
    const std::string& name, const TaintLabel& clearance) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return NotFound("object '" + name + "' is not in the store");
  }
  const StoredObject& object = it->second;
  if (!object.label.subset_of(clearance)) {
    return PermissionDenied("caller lacks clearance for object '" + name +
                            "'");
  }
  const Block16 key = derive_key(name);
  const std::vector<std::uint8_t> aad(name.begin(), name.end());
  auto plaintext =
      aes128_gcm_decrypt(key, object.iv, object.ciphertext, object.tag, aad);
  if (!plaintext.ok()) {
    return DataLoss("object '" + name +
                    "' failed authentication (tampered or corrupted)");
  }
  return plaintext;
}

const TaintLabel& ProtectedStore::label_of(const std::string& name) const {
  static const TaintLabel kEmpty;
  auto it = objects_.find(name);
  return it == objects_.end() ? kEmpty : it->second.label;
}

std::size_t ProtectedStore::bytes_at_rest() const {
  std::size_t total = 0;
  for (const auto& [name, object] : objects_) {
    total += object.ciphertext.size();
  }
  return total;
}

Status ProtectedStore::corrupt(const std::string& name,
                               std::size_t byte_index) {
  auto it = objects_.find(name);
  if (it == objects_.end()) return NotFound("object '" + name + "'");
  if (it->second.ciphertext.empty()) {
    // Empty payloads: corrupt the tag instead.
    it->second.tag[0] ^= 1;
    return OkStatus();
  }
  byte_index %= it->second.ciphertext.size();
  it->second.ciphertext[byte_index] ^= 0x40;
  return OkStatus();
}

}  // namespace everest::security
