// The runtime data-protection layer (paper §III-A "confidentiality,
// authentication and integrity of the data handled by the system", §IV
// "data protection layer"): a store for workflow data objects that
// encrypts at rest with AES-128-GCM (per-object keys derived via
// HMAC-SHA256 from a master secret), authenticates on read, and enforces
// taint clearance at access time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "security/aes.hpp"
#include "security/taint.hpp"

namespace everest::security {

/// Encrypted, labeled storage for named data objects.
class ProtectedStore {
 public:
  explicit ProtectedStore(std::vector<std::uint8_t> master_secret)
      : master_secret_(std::move(master_secret)) {}

  /// Encrypts and stores `data` under `name` with the given label.
  /// Overwriting an existing object is allowed (new IV, version bump).
  Status put(const std::string& name, const std::vector<std::uint8_t>& data,
             TaintLabel label = {});

  /// Decrypts and returns the object after (1) verifying the GCM tag and
  /// (2) checking the caller's clearance against the object's label.
  /// PERMISSION_DENIED on clearance failure, DATA_LOSS on tampering.
  Result<std::vector<std::uint8_t>> get(const std::string& name,
                                        const TaintLabel& clearance) const;

  /// The object's label (empty for unknown objects).
  [[nodiscard]] const TaintLabel& label_of(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const {
    return objects_.count(name) > 0;
  }
  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  /// Total ciphertext bytes at rest.
  [[nodiscard]] std::size_t bytes_at_rest() const;

  /// Test hook: flips one ciphertext bit to emulate at-rest corruption or
  /// a malicious modification; get() must subsequently fail DATA_LOSS.
  Status corrupt(const std::string& name, std::size_t byte_index);

 private:
  struct StoredObject {
    std::vector<std::uint8_t> ciphertext;
    Block16 tag{};
    std::array<std::uint8_t, 12> iv{};
    std::uint64_t version = 0;
    TaintLabel label;
  };

  /// Per-object key: first 16 bytes of HMAC(master, name).
  [[nodiscard]] Block16 derive_key(const std::string& name) const;

  std::vector<std::uint8_t> master_secret_;
  std::map<std::string, StoredObject> objects_;
  std::uint64_t put_counter_ = 0;
};

}  // namespace everest::security
