// Hardware-monitor anomaly detection and the "auto-protection" escalation
// policy (paper §III-B: "dedicated hardware monitors will detect anomalies
// with respect to the expected data behaviors (timing patterns, access
// patterns, typical sizes and ranges), activating proper dynamic adaptation
// in the form of auto-protection").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace everest::security {

/// The behavioral features a hardware monitor reports per task invocation.
struct BehaviorSample {
  double latency_us = 0.0;      // timing pattern
  double bytes = 0.0;           // typical size
  double value_range = 0.0;     // max-min of the data values
  double access_stride = 1.0;   // dominant access pattern
};

/// Per-feature EWMA/z-score detector with a warm-up period.
class AnomalyDetector {
 public:
  struct Options {
    double alpha = 0.05;        // EWMA smoothing
    double z_threshold = 4.0;   // |z| above this flags the feature
    int warmup_samples = 20;    // no flags until this many samples
  };

  AnomalyDetector() = default;
  explicit AnomalyDetector(Options options) : options_(options) {}

  /// Outcome of scoring one sample.
  struct Verdict {
    bool anomalous = false;
    double max_z = 0.0;
    std::string feature;  // which feature tripped
  };

  /// Scores the sample against the learned baseline, then absorbs it.
  Verdict observe(const BehaviorSample& sample);

  [[nodiscard]] int samples_seen() const { return n_; }

 private:
  Options options_{};
  Ewma latency_{0.05}, bytes_{0.05}, range_{0.05}, stride_{0.05};
  int n_ = 0;
};

/// Escalation levels of the auto-protection policy.
enum class ProtectionLevel : std::uint8_t {
  kNormal = 0,     // plain variants allowed
  kMonitor,        // log + prefer DIFT-instrumented variants
  kProtect,        // require DIFT + encrypted variants
  kQuarantine,     // stop dispatching the kernel entirely
};

std::string_view to_string(ProtectionLevel level);

/// Maps a stream of anomaly verdicts to a protection level with hysteresis:
/// consecutive anomalies escalate, sustained clean behavior de-escalates.
class AutoProtectionPolicy {
 public:
  struct Options {
    int escalate_after = 3;     // consecutive anomalies per step up
    int calm_after = 50;        // consecutive clean samples per step down
  };

  AutoProtectionPolicy() = default;
  explicit AutoProtectionPolicy(Options options) : options_(options) {}

  /// Feeds one verdict; returns the (possibly new) level.
  ProtectionLevel update(const AnomalyDetector::Verdict& verdict);

  [[nodiscard]] ProtectionLevel level() const { return level_; }

 private:
  Options options_{};
  ProtectionLevel level_ = ProtectionLevel::kNormal;
  int anomaly_streak_ = 0;
  int clean_streak_ = 0;
};

}  // namespace everest::security
