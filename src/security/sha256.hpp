// SHA-256 (FIPS 180-4) — the integrity/authentication primitive of the
// EVEREST data-protection layer. Verified against NIST test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace everest::security {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& data) {
    update(data.data(), data.size());
  }
  /// Finalizes and returns the digest (object must not be reused after).
  Sha256Digest finalize();

 private:
  void process_block(const std::uint8_t* block);
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot digest.
Sha256Digest sha256(const std::vector<std::uint8_t>& data);
Sha256Digest sha256(const std::string& text);

/// Hex rendering of a digest.
std::string to_hex(const Sha256Digest& digest);

/// HMAC-SHA256 (RFC 2104) for authenticated task metadata.
Sha256Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                         const std::vector<std::uint8_t>& message);

}  // namespace everest::security
