// Data-centric information-flow tracking for workflow data objects — the
// software half of the TaintHLS story (paper §III-A: "information flow
// tracking, monitoring, and protection against malicious uses"). Labels
// propagate through task dependencies; policies check that confidential
// data never reaches an unprotected sink.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace everest::security {

/// Security label lattice: a set of tags (e.g. "confidential", "pii",
/// "integrity-checked"). Join = set union.
class TaintLabel {
 public:
  TaintLabel() = default;
  explicit TaintLabel(std::set<std::string> tags) : tags_(std::move(tags)) {}

  void add(const std::string& tag) { tags_.insert(tag); }
  [[nodiscard]] bool has(const std::string& tag) const {
    return tags_.count(tag) > 0;
  }
  [[nodiscard]] bool empty() const { return tags_.empty(); }
  [[nodiscard]] const std::set<std::string>& tags() const { return tags_; }

  /// Lattice join.
  void join(const TaintLabel& other) {
    tags_.insert(other.tags_.begin(), other.tags_.end());
  }

  /// True if this label flows to (is a subset of what's allowed by) other.
  [[nodiscard]] bool subset_of(const TaintLabel& other) const;

 private:
  std::set<std::string> tags_;
};

/// Tracks labels over named data objects and propagates through task edges.
class TaintTracker {
 public:
  /// Sets the label of a source object.
  void set_label(const std::string& object, TaintLabel label);

  [[nodiscard]] const TaintLabel& label_of(const std::string& object) const;

  /// Records that `task` consumed `inputs` and produced `outputs`: every
  /// output's label joins all input labels. `declassifies` removes the
  /// listed tags from the outputs (explicit, audited downgrade).
  void propagate(const std::string& task,
                 const std::vector<std::string>& inputs,
                 const std::vector<std::string>& outputs,
                 const std::set<std::string>& declassifies = {});

  /// Policy check: an object may reach a sink only if the sink's clearance
  /// contains every tag of the object. PERMISSION_DENIED otherwise.
  Status check_sink(const std::string& object,
                    const TaintLabel& sink_clearance) const;

  /// All objects currently carrying a given tag.
  [[nodiscard]] std::vector<std::string> objects_with(
      const std::string& tag) const;

 private:
  std::map<std::string, TaintLabel> labels_;
};

}  // namespace everest::security
