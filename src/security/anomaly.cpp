#include "security/anomaly.hpp"

#include <cmath>

namespace everest::security {

AnomalyDetector::Verdict AnomalyDetector::observe(const BehaviorSample& s) {
  Verdict verdict;
  struct Feature {
    const char* name;
    Ewma* ewma;
    double value;
  };
  Feature features[] = {
      {"latency", &latency_, s.latency_us},
      {"bytes", &bytes_, s.bytes},
      {"range", &range_, s.value_range},
      {"stride", &stride_, s.access_stride},
  };
  if (n_ >= options_.warmup_samples) {
    for (const Feature& f : features) {
      const double z = std::abs(f.ewma->zscore(f.value));
      if (z > verdict.max_z) {
        verdict.max_z = z;
        verdict.feature = f.name;
      }
    }
    verdict.anomalous = verdict.max_z > options_.z_threshold;
  }
  // Absorb the sample only when it looks benign, so an attacker cannot
  // slowly poison the baseline during an active anomaly.
  if (!verdict.anomalous) {
    for (Feature& f : features) f.ewma->add(f.value);
    ++n_;
  }
  return verdict;
}

std::string_view to_string(ProtectionLevel level) {
  switch (level) {
    case ProtectionLevel::kNormal: return "normal";
    case ProtectionLevel::kMonitor: return "monitor";
    case ProtectionLevel::kProtect: return "protect";
    case ProtectionLevel::kQuarantine: return "quarantine";
  }
  return "?";
}

ProtectionLevel AutoProtectionPolicy::update(
    const AnomalyDetector::Verdict& verdict) {
  if (verdict.anomalous) {
    clean_streak_ = 0;
    if (++anomaly_streak_ >= options_.escalate_after &&
        level_ != ProtectionLevel::kQuarantine) {
      level_ = static_cast<ProtectionLevel>(static_cast<int>(level_) + 1);
      anomaly_streak_ = 0;
    }
  } else {
    anomaly_streak_ = 0;
    if (++clean_streak_ >= options_.calm_after &&
        level_ != ProtectionLevel::kNormal) {
      level_ = static_cast<ProtectionLevel>(static_cast<int>(level_) - 1);
      clean_streak_ = 0;
    }
  }
  return level_;
}

}  // namespace everest::security
