// Software AES-128 (reference implementation): block cipher, CTR mode, and
// GCM authenticated encryption. This is the functional counterpart of the
// EVEREST crypto accelerator library (paper §III-A/B); the HLS side models
// its area/throughput, this side provides the actual data path used by the
// runtime data-protection layer. Correctness is pinned to FIPS-197 /
// NIST SP 800-38D test vectors in the test suite.
//
// Not constant-time; intended for functional simulation, not production.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace everest::security {

using Block16 = std::array<std::uint8_t, 16>;

/// AES-128 block cipher with a precomputed key schedule.
class Aes128 {
 public:
  explicit Aes128(const Block16& key);

  /// Encrypts one 16-byte block in place semantics (returns ciphertext).
  [[nodiscard]] Block16 encrypt_block(const Block16& plaintext) const;

 private:
  std::array<std::uint8_t, 176> round_keys_{};  // 11 round keys
};

/// CTR-mode stream encryption/decryption (symmetric). The 16-byte IV is
/// the initial counter block; the counter increments big-endian in the
/// final 4 bytes.
std::vector<std::uint8_t> aes128_ctr(const Block16& key, const Block16& iv,
                                     const std::vector<std::uint8_t>& data);

/// AES-128-GCM authenticated encryption (96-bit IV).
struct GcmResult {
  std::vector<std::uint8_t> ciphertext;
  Block16 tag;
};
GcmResult aes128_gcm_encrypt(const Block16& key,
                             const std::array<std::uint8_t, 12>& iv,
                             const std::vector<std::uint8_t>& plaintext,
                             const std::vector<std::uint8_t>& aad = {});

/// GCM decryption; fails with DATA_LOSS when the tag does not verify.
Result<std::vector<std::uint8_t>> aes128_gcm_decrypt(
    const Block16& key, const std::array<std::uint8_t, 12>& iv,
    const std::vector<std::uint8_t>& ciphertext, const Block16& tag,
    const std::vector<std::uint8_t>& aad = {});

}  // namespace everest::security
