#include "security/aes.hpp"

#include <cstring>

namespace everest::security {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16,
};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

void sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
}

void shift_rows(std::uint8_t* s) {
  // State is column-major: s[col*4 + row].
  std::uint8_t t;
  // Row 1: shift left by 1.
  t = s[1];
  s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
  // Row 2: shift left by 2.
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // Row 3: shift left by 3 (== right by 1).
  t = s[15];
  s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
}

void mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
    col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
    col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
    col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
    col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
  }
}

void add_round_key(std::uint8_t* s, const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

}  // namespace

Aes128::Aes128(const Block16& key) {
  std::memcpy(round_keys_.data(), key.data(), 16);
  for (int i = 4; i < 44; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, &round_keys_[(i - 1) * 4], 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[i * 4 + b] =
          static_cast<std::uint8_t>(round_keys_[(i - 4) * 4 + b] ^ temp[b]);
    }
  }
}

Block16 Aes128::encrypt_block(const Block16& plaintext) const {
  Block16 state = plaintext;
  std::uint8_t* s = state.data();
  add_round_key(s, round_keys_.data());
  for (int round = 1; round <= 9; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, &round_keys_[round * 16]);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, &round_keys_[160]);
  return state;
}

std::vector<std::uint8_t> aes128_ctr(const Block16& key, const Block16& iv,
                                     const std::vector<std::uint8_t>& data) {
  Aes128 aes(key);
  std::vector<std::uint8_t> out(data.size());
  Block16 counter = iv;
  for (std::size_t offset = 0; offset < data.size(); offset += 16) {
    const Block16 keystream = aes.encrypt_block(counter);
    const std::size_t n = std::min<std::size_t>(16, data.size() - offset);
    for (std::size_t i = 0; i < n; ++i) {
      out[offset + i] = data[offset + i] ^ keystream[i];
    }
    // Increment the big-endian 32-bit block counter (last 4 bytes).
    for (int i = 15; i >= 12; --i) {
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
  }
  return out;
}

namespace {

/// GF(2^128) multiplication for GHASH (right-shift algorithm, NIST spec).
Block16 gf_mult(const Block16& x, const Block16& y) {
  Block16 z{};
  Block16 v = y;
  for (int i = 0; i < 128; ++i) {
    const int byte = i / 8;
    const int bit = 7 - (i % 8);
    if ((x[static_cast<std::size_t>(byte)] >> bit) & 1) {
      for (int b = 0; b < 16; ++b) z[b] ^= v[b];
    }
    const bool lsb = v[15] & 1;
    // v >>= 1 (big-endian bit order).
    for (int b = 15; b > 0; --b) {
      v[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(
          (v[static_cast<std::size_t>(b)] >> 1) |
          (v[static_cast<std::size_t>(b - 1)] << 7));
    }
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;
  }
  return z;
}

class Ghash {
 public:
  explicit Ghash(const Block16& h) : h_(h) {}

  void update(const std::vector<std::uint8_t>& data) {
    for (std::size_t offset = 0; offset < data.size(); offset += 16) {
      Block16 block{};
      const std::size_t n = std::min<std::size_t>(16, data.size() - offset);
      std::memcpy(block.data(), data.data() + offset, n);
      absorb(block);
    }
  }

  void absorb(const Block16& block) {
    for (int i = 0; i < 16; ++i) y_[i] ^= block[i];
    y_ = gf_mult(y_, h_);
  }

  [[nodiscard]] Block16 digest() const { return y_; }

 private:
  Block16 h_;
  Block16 y_{};
};

Block16 lengths_block(std::size_t aad_bytes, std::size_t ct_bytes) {
  Block16 out{};
  const std::uint64_t aad_bits = aad_bytes * 8;
  const std::uint64_t ct_bits = ct_bytes * 8;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(7 - i)] =
        static_cast<std::uint8_t>(aad_bits >> (8 * i));
    out[static_cast<std::size_t>(15 - i)] =
        static_cast<std::uint8_t>(ct_bits >> (8 * i));
  }
  return out;
}

Block16 initial_counter(const std::array<std::uint8_t, 12>& iv) {
  Block16 j0{};
  std::memcpy(j0.data(), iv.data(), 12);
  j0[15] = 1;
  return j0;
}

Block16 compute_tag(const Aes128& aes, const Block16& h,
                    const std::array<std::uint8_t, 12>& iv,
                    const std::vector<std::uint8_t>& ciphertext,
                    const std::vector<std::uint8_t>& aad) {
  Ghash ghash(h);
  ghash.update(aad);
  ghash.update(ciphertext);
  ghash.absorb(lengths_block(aad.size(), ciphertext.size()));
  const Block16 s = ghash.digest();
  const Block16 ek_j0 = aes.encrypt_block(initial_counter(iv));
  Block16 tag;
  for (int i = 0; i < 16; ++i) tag[i] = s[i] ^ ek_j0[i];
  return tag;
}

}  // namespace

GcmResult aes128_gcm_encrypt(const Block16& key,
                             const std::array<std::uint8_t, 12>& iv,
                             const std::vector<std::uint8_t>& plaintext,
                             const std::vector<std::uint8_t>& aad) {
  Aes128 aes(key);
  const Block16 h = aes.encrypt_block(Block16{});
  Block16 counter = initial_counter(iv);
  counter[15] = 2;  // CTR starts at J0 + 1
  GcmResult result;
  result.ciphertext = aes128_ctr(key, counter, plaintext);
  result.tag = compute_tag(aes, h, iv, result.ciphertext, aad);
  return result;
}

Result<std::vector<std::uint8_t>> aes128_gcm_decrypt(
    const Block16& key, const std::array<std::uint8_t, 12>& iv,
    const std::vector<std::uint8_t>& ciphertext, const Block16& tag,
    const std::vector<std::uint8_t>& aad) {
  Aes128 aes(key);
  const Block16 h = aes.encrypt_block(Block16{});
  const Block16 expected = compute_tag(aes, h, iv, ciphertext, aad);
  std::uint8_t diff = 0;
  for (int i = 0; i < 16; ++i) diff |= expected[i] ^ tag[i];
  if (diff != 0) {
    return DataLoss("GCM authentication tag mismatch");
  }
  Block16 counter = initial_counter(iv);
  counter[15] = 2;
  return aes128_ctr(key, counter, ciphertext);
}

}  // namespace everest::security
