#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace everest {

std::string Table::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto emit = [&](std::string& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      if (c + 1 < cols) out.append(width[c] - cell.size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit(out, header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < cols; ++c) rule += width[c] + (c + 1 < cols ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& r : rows_) emit(out, r);
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace everest
