// ASCII table renderer used by the per-experiment report binaries in
// bench/ to print the rows/series a paper figure would plot.
#pragma once

#include <string>
#include <vector>

namespace everest {

/// Column-aligned plain-text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds a row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with a header rule, e.g. for report output.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shorthand for formatting a double with the given precision.
std::string fmt_double(double v, int precision = 3);

}  // namespace everest
