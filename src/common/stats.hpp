// Streaming and batch statistics used by monitors, the autotuner knowledge
// base, and benchmark reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace everest {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) { *this = other; return; }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average with optional variance tracking
/// (used by the runtime anomaly monitors).
class Ewma {
 public:
  explicit Ewma(double alpha = 0.1) : alpha_(alpha) {}

  void add(double x) {
    if (!initialized_) {
      mean_ = x;
      var_ = 0.0;
      initialized_ = true;
      return;
    }
    const double delta = x - mean_;
    mean_ += alpha_ * delta;
    var_ = (1.0 - alpha_) * (var_ + alpha_ * delta * delta);
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const { return var_; }
  [[nodiscard]] double stddev() const { return std::sqrt(var_); }

  /// Largest magnitude zscore() reports. A degenerate stream (zero
  /// variance) makes the true z-score unbounded; callers compare scores
  /// against single-digit thresholds, so any value past the cap carries no
  /// extra information and a finite cap keeps downstream arithmetic
  /// (averaging scores, subtracting thresholds) out of overflow territory.
  static constexpr double kZscoreCap = 1e6;

  /// Standardized deviation of x from the tracked mean; 0 until warm.
  /// Results are clamped to [-kZscoreCap, kZscoreCap]; a deviation from a
  /// zero-variance stream saturates at the cap.
  [[nodiscard]] double zscore(double x) const {
    if (!initialized_) return 0.0;
    const double s = stddev();
    if (s < 1e-12) {
      return x == mean_ ? 0.0 : (x > mean_ ? kZscoreCap : -kZscoreCap);
    }
    return std::clamp((x - mean_) / s, -kZscoreCap, kZscoreCap);
  }

 private:
  double alpha_;
  double mean_ = 0.0;
  double var_ = 0.0;
  bool initialized_ = false;
};

/// Batch percentile (linear interpolation); p in [0,100]. Copies its input.
double percentile(std::vector<double> values, double p);

/// Arithmetic mean of a vector (0 for empty).
double mean_of(const std::vector<double>& values);

/// Sample standard deviation of a vector (0 for n < 2).
double stddev_of(const std::vector<double>& values);

/// Root-mean-square error between two equally sized series.
double rmse(const std::vector<double>& a, const std::vector<double>& b);

/// Pearson correlation coefficient (0 for degenerate input).
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace everest
