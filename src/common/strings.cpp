#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace everest {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\n' ||
                   text[b] == '\r')) {
    ++b;
  }
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' ||
                   text[e - 1] == '\n' || text[e - 1] == '\r')) {
    --e;
  }
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace everest
