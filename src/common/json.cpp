#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace everest::json {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double n) {
  if (std::floor(n) == n && std::abs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    out += buf;
  }
}

void append_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: append_number(out, number_); return;
    case Kind::kString: append_escaped(out, string_); return;
    case Kind::kArray: {
      if (array_.empty()) { out += "[]"; return; }
      out += '[';
      bool first = true;
      for (const Value& v : array_) {
        if (!first) out += ',';
        first = false;
        append_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) { out += "{}"; return; }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        append_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> parse() {
    skip_ws();
    auto v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return v;
  }

 private:
  Status error(const std::string& what) const {
    return InvalidArgument("JSON parse error at offset " +
                           std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.status();
      return Value(std::move(s).value());
    }
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value(nullptr);
    return parse_number();
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected a value");
    double out = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last) return error("bad number");
    return Value(out);
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return error("bad hex digit");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return error("bad escape");
        }
      } else {
        out += c;
      }
    }
    return error("unterminated string");
  }

  Result<Value> parse_array() {
    consume('[');
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v.ok()) return v;
      arr.push_back(std::move(v).value());
      skip_ws();
      if (consume(']')) return Value(std::move(arr));
      if (!consume(',')) return error("expected ',' or ']'");
    }
  }

  Result<Value> parse_object() {
    consume('{');
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      skip_ws();
      auto v = parse_value();
      if (!v.ok()) return v;
      obj.emplace(std::move(key).value(), std::move(v).value());
      skip_ws();
      if (consume('}')) return Value(std::move(obj));
      if (!consume(',')) return error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace everest::json
