#include "common/logging.hpp"

#include <iostream>

namespace everest {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << "[" << level_name(level) << "][" << component << "] " << msg
            << "\n";
}

}  // namespace everest
