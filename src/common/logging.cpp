#include "common/logging.hpp"

#include <chrono>
#include <iostream>
#include <utility>

namespace everest {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

std::int64_t Logger::monotonic_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

std::uint32_t Logger::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Logger::set_sink(std::function<void(std::string_view)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  // Format outside the lock; only the final single-call emit is serialized.
  std::ostringstream line;
  line << "[" << monotonic_us() << "us][t" << thread_id() << "]["
       << level_name(level) << "][" << component << "] " << msg << "\n";
  const std::string text = line.str();
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(text);
  } else {
    std::cerr << text;
  }
}

}  // namespace everest
