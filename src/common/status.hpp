// Status / Result<T>: lightweight error propagation used across the EVEREST
// SDK instead of exceptions (see DESIGN.md §7). A Status is cheap to copy on
// the ok path (empty shared state) and carries a code + message otherwise.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace everest {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kPermissionDenied,
  kDataLoss,
  kDeadlineExceeded,
  /// The target (node, link, variant, endpoint) is temporarily unable to
  /// serve; the operation may succeed elsewhere or later. Retryable.
  kUnavailable,
  /// The operation was cancelled mid-flight (e.g. a speculative copy lost
  /// the race, or a worker died while executing). Retryable.
  kAborted,
};

/// Returns a stable human-readable name for a status code.
std::string_view to_string(StatusCode code);

/// True for codes that describe transient conditions a caller may retry
/// (on another worker / after backoff): UNAVAILABLE, ABORTED,
/// RESOURCE_EXHAUSTED, DEADLINE_EXCEEDED. Permanent errors (invalid
/// input, not found, internal bugs, permission) are not retryable.
[[nodiscard]] bool is_retryable(StatusCode code);

/// Error-or-success result of an operation that produces no value.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return rep_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return rep_ ? rep_->code : StatusCode::kOk;
  }
  [[nodiscard]] const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

inline Status OkStatus() { return Status(); }
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status ResourceExhausted(std::string message);
Status PermissionDenied(std::string message);
Status DataLoss(std::string message);
Status DeadlineExceeded(std::string message);
Status Unavailable(std::string message);
Status Aborted(std::string message);

/// Value-or-Status. Access to value() on an error Result asserts in debug
/// builds; call ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() &&
           "Result must not be built from an OK status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(value_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status to the caller.
#define EVEREST_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::everest::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assigns the value of a Result<T> expression or returns its status.
#define EVEREST_ASSIGN_OR_RETURN(lhs, expr)    \
  EVEREST_ASSIGN_OR_RETURN_IMPL_(              \
      EVEREST_CONCAT_(_result_, __LINE__), lhs, expr)
#define EVEREST_CONCAT_INNER_(a, b) a##b
#define EVEREST_CONCAT_(a, b) EVEREST_CONCAT_INNER_(a, b)
#define EVEREST_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace everest
