// Small string helpers (split/join/trim/printf-style format).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace everest {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// snprintf into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace everest
