// Minimal leveled logger. Thread-safe sink and level (worker threads in
// src/serve log concurrently), printf-free (streams), and a global level so
// benches can silence library chatter.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace everest {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide logging controls.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel lvl) const { return lvl >= level(); }

  /// Writes one formatted line, prefixed with a monotonic microsecond
  /// timestamp (since process start) and a small stable per-thread id
  /// (thread-safe: the line is fully formatted first, then handed to the
  /// sink in one mutex-guarded call, so lines from different threads never
  /// interleave).
  void write(LogLevel level, std::string_view component, std::string_view msg);

  /// Redirects whole lines (including the trailing newline) to `sink`
  /// instead of stderr; pass nullptr to restore stderr. Test hook — the
  /// sink is invoked under the same mutex as stderr writes.
  void set_sink(std::function<void(std::string_view)> sink);

  /// Microseconds since process start on the monotonic clock.
  [[nodiscard]] static std::int64_t monotonic_us();

  /// Small dense id of the calling thread (0, 1, 2, ... in first-log order).
  [[nodiscard]] static std::uint32_t thread_id();

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mu_;
  std::function<void(std::string_view)> sink_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() {
    if (Logger::instance().enabled(level_)) {
      Logger::instance().write(level_, component_, stream_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Logger::instance().enabled(level_)) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace everest

#define EVEREST_LOG(level, component) \
  ::everest::detail::LogLine(::everest::LogLevel::level, component)
