#include "common/status.hpp"

namespace everest {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

bool is_retryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kAborted:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(everest::to_string(code()));
  out += ": ";
  out += message();
  return out;
}

Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
Status PermissionDenied(std::string m) { return {StatusCode::kPermissionDenied, std::move(m)}; }
Status DataLoss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }
Status DeadlineExceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
Status Aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }

}  // namespace everest
