#include "common/graph.hpp"

#include <algorithm>
#include <limits>

namespace everest {

WeightedDigraph::ShortestPaths WeightedDigraph::dijkstra(
    std::size_t source) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  ShortestPaths sp;
  sp.dist.assign(num_nodes(), kInf);
  sp.pred.assign(num_nodes(), kNone);
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  sp.dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, n] = pq.top();
    pq.pop();
    if (d > sp.dist[n]) continue;
    for (const Edge& e : adj_[n]) {
      const double nd = d + e.weight;
      if (nd < sp.dist[e.to]) {
        sp.dist[e.to] = nd;
        sp.pred[e.to] = n;
        pq.emplace(nd, e.to);
      }
    }
  }
  return sp;
}

std::vector<std::size_t> WeightedDigraph::extract_path(
    const ShortestPaths& sp, std::size_t source, std::size_t target) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  if (target >= sp.dist.size() ||
      sp.dist[target] == std::numeric_limits<double>::infinity()) {
    return {};
  }
  std::vector<std::size_t> path;
  for (std::size_t n = target; n != kNone; n = sp.pred[n]) {
    path.push_back(n);
    if (n == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != source) return {};
  return path;
}

}  // namespace everest
