// Generic directed-graph utilities shared by the IR, the workflow engine,
// the HLS CDFG, and the traffic road network.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

namespace everest {

/// Compact adjacency-list digraph over dense node ids [0, n).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t num_nodes) : succ_(num_nodes), pred_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const { return succ_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Adds a node; returns its id.
  std::size_t add_node() {
    succ_.emplace_back();
    pred_.emplace_back();
    return succ_.size() - 1;
  }

  void add_edge(std::size_t from, std::size_t to) {
    succ_[from].push_back(to);
    pred_[to].push_back(from);
    ++num_edges_;
  }

  [[nodiscard]] const std::vector<std::size_t>& successors(std::size_t n) const {
    return succ_[n];
  }
  [[nodiscard]] const std::vector<std::size_t>& predecessors(std::size_t n) const {
    return pred_[n];
  }
  [[nodiscard]] std::size_t in_degree(std::size_t n) const { return pred_[n].size(); }
  [[nodiscard]] std::size_t out_degree(std::size_t n) const { return succ_[n].size(); }

  /// Kahn topological sort; nullopt if the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<std::size_t>> topological_order() const {
    std::vector<std::size_t> indeg(num_nodes());
    for (std::size_t n = 0; n < num_nodes(); ++n) indeg[n] = in_degree(n);
    std::queue<std::size_t> ready;
    for (std::size_t n = 0; n < num_nodes(); ++n)
      if (indeg[n] == 0) ready.push(n);
    std::vector<std::size_t> order;
    order.reserve(num_nodes());
    while (!ready.empty()) {
      const std::size_t n = ready.front();
      ready.pop();
      order.push_back(n);
      for (std::size_t s : succ_[n]) {
        if (--indeg[s] == 0) ready.push(s);
      }
    }
    if (order.size() != num_nodes()) return std::nullopt;
    return order;
  }

  [[nodiscard]] bool has_cycle() const { return !topological_order().has_value(); }

  /// Execution frontier: nodes not yet done whose predecessors are all
  /// done — exactly the set a DAG executor may dispatch next. `done`
  /// must have num_nodes() entries. Ascending node order.
  [[nodiscard]] std::vector<std::size_t> frontier(
      const std::vector<char>& done) const {
    std::vector<std::size_t> out;
    for (std::size_t n = 0; n < num_nodes(); ++n) {
      if (done[n] != 0) continue;
      bool ready = true;
      for (std::size_t p : pred_[n]) {
        if (done[p] == 0) {
          ready = false;
          break;
        }
      }
      if (ready) out.push_back(n);
    }
    return out;
  }

  /// Nodes within `depth` frontier waves of becoming ready: wave 1 is
  /// frontier(done); wave k+1 is the frontier once waves 1..k are
  /// (hypothetically) complete. The prefetcher stages inputs for these
  /// ahead of dispatch. depth <= 0 yields {}. Ascending node order.
  [[nodiscard]] std::vector<std::size_t> frontier_within(
      const std::vector<char>& done, int depth) const {
    std::vector<std::size_t> out;
    if (depth <= 0) return out;
    std::vector<char> visited = done;
    for (int wave = 0; wave < depth; ++wave) {
      const std::vector<std::size_t> next = frontier(visited);
      if (next.empty()) break;
      for (std::size_t n : next) {
        visited[n] = 1;
        out.push_back(n);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Longest path length in edges from any source (DAG only; 0 on cycle).
  [[nodiscard]] std::size_t critical_path_length() const {
    auto order = topological_order();
    if (!order) return 0;
    std::vector<std::size_t> dist(num_nodes(), 0);
    std::size_t best = 0;
    for (std::size_t n : *order) {
      for (std::size_t s : succ_[n]) {
        dist[s] = std::max(dist[s], dist[n] + 1);
        best = std::max(best, dist[s]);
      }
    }
    return best;
  }

 private:
  std::vector<std::vector<std::size_t>> succ_;
  std::vector<std::vector<std::size_t>> pred_;
  std::size_t num_edges_ = 0;
};

/// Weighted digraph for shortest-path style queries (road networks,
/// interconnect topologies). Edge weights are doubles.
class WeightedDigraph {
 public:
  struct Edge {
    std::size_t to;
    double weight;
  };

  WeightedDigraph() = default;
  explicit WeightedDigraph(std::size_t num_nodes) : adj_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  std::size_t add_node() {
    adj_.emplace_back();
    return adj_.size() - 1;
  }

  void add_edge(std::size_t from, std::size_t to, double weight) {
    adj_[from].push_back({to, weight});
    ++num_edges_;
  }

  [[nodiscard]] const std::vector<Edge>& edges(std::size_t n) const { return adj_[n]; }

  /// Dijkstra from `source`; returns distances (infinity if unreachable)
  /// and predecessor array for path reconstruction.
  struct ShortestPaths {
    std::vector<double> dist;
    std::vector<std::size_t> pred;  // SIZE_MAX for source/unreachable
  };
  [[nodiscard]] ShortestPaths dijkstra(std::size_t source) const;

  /// Reconstructs the node sequence source→target (empty if unreachable).
  [[nodiscard]] static std::vector<std::size_t> extract_path(
      const ShortestPaths& sp, std::size_t source, std::size_t target);

 private:
  std::vector<std::vector<Edge>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace everest
