#include "common/stats.hpp"

#include <cassert>

namespace everest {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da < 1e-300 || db < 1e-300) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace everest
