// JSON-lite: a small value model + writer + recursive-descent parser.
// Used as the exchange format for variant metadata between the compiler
// backend and the runtime (paper §III-B: "Meta-information about the
// variants will be provided to the runtime system").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace everest::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A JSON value: null, bool, number (double), string, array, or object.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}                        // NOLINT
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                      // NOLINT
  Value(double n) : kind_(Kind::kNumber), number_(n) {}                // NOLINT
  Value(int n) : kind_(Kind::kNumber), number_(n) {}                   // NOLINT
  Value(std::int64_t n)                                                // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  Value(std::size_t n)                                                 // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}           // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}        // NOLINT
  Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}     // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(number_);
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const { return array_; }
  [[nodiscard]] Array& as_array() { return array_; }
  [[nodiscard]] const Object& as_object() const { return object_; }
  [[nodiscard]] Object& as_object() { return object_; }

  /// Object member access; returns a shared null for missing keys.
  [[nodiscard]] const Value& at(const std::string& key) const {
    static const Value kNullValue;
    if (kind_ != Kind::kObject) return kNullValue;
    auto it = object_.find(key);
    return it == object_.end() ? kNullValue : it->second;
  }
  [[nodiscard]] bool contains(const std::string& key) const {
    return kind_ == Kind::kObject && object_.count(key) > 0;
  }

  /// Serializes this value; indent < 0 emits compact one-line JSON.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a JSON document; returns INVALID_ARGUMENT with a position on error.
Result<Value> parse(std::string_view text);

}  // namespace everest::json
