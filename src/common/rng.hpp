// Deterministic pseudo-random number generation (xoshiro256** + SplitMix64
// seeding). All simulators and workload generators in the SDK take an
// explicit Rng so experiments are reproducible bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <vector>

namespace everest {

/// SplitMix64 — used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xE5E4E57ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do { u1 = uniform(); } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (lambda).
  double exponential(double rate) {
    double u = 0.0;
    do { u = uniform(); } while (u <= 1e-300);
    return -std::log(u) / rate;
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Samples an index according to (unnormalized, non-negative) weights.
  /// Returns weights.size() if all weights are zero.
  std::size_t weighted_index(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.size();
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_int(i)]);
    }
  }

  /// Derives an independent child generator (for per-task streams).
  Rng fork() { return Rng(next() ^ 0x9E3779B97F4A7C15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Zipf-distributed rank sampler: P(k) ∝ 1/(k+1)^skew over ranks
/// [0, n). The CDF is precomputed once; each draw is one uniform plus a
/// binary search. skew 0 degenerates to uniform; skew ≈ 1 matches
/// typical hot-key skew in serving workloads. Immutable after
/// construction, so one instance may be shared across threads (each
/// caller brings its own Rng).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), skew);
      cdf_[k] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  [[nodiscard]] std::size_t sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace everest
