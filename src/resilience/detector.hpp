// Heartbeat-based failure detection: a phi-accrual-style suspicion score
// per worker (Hayashibara et al.; the detector Akka/Cassandra ship) over
// an EWMA model of heartbeat inter-arrival times, feeding a health
// registry the schedulers consult. Unlike a binary timeout, phi grows
// continuously with silence, so callers pick their own paranoia level:
// stop dispatching at a low threshold, declare dead (and start recovery)
// at a high one.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace everest::resilience {

/// Suspicion score over one heartbeat stream. phi = k * (now - last) /
/// mean_interval with k = log10(e): the exponential-arrival form of the
/// phi-accrual estimator (phi 1 ~ "one decade less likely alive").
class PhiAccrualDetector {
 public:
  /// `expected_interval_us` seeds the inter-arrival model before any
  /// heartbeat pair has been seen.
  explicit PhiAccrualDetector(double expected_interval_us)
      : mean_interval_us_(expected_interval_us) {}

  void heartbeat(double now_us);

  /// Suspicion at `now_us`; 0 before the first heartbeat.
  [[nodiscard]] double phi(double now_us) const;

  [[nodiscard]] double mean_interval_us() const { return mean_interval_us_; }
  [[nodiscard]] double last_heartbeat_us() const { return last_us_; }

 private:
  double mean_interval_us_;
  double last_us_ = -1.0;
  static constexpr double kAlpha = 0.2;  // EWMA weight for new intervals
};

/// Health of one worker as judged by the registry.
enum class Health : std::uint8_t {
  kHealthy = 0,   ///< phi below the suspect threshold
  kSuspected,     ///< phi past suspect: stop dispatching new work
  kDead,          ///< phi past dead: recover its in-flight work
};

std::string_view to_string(Health health);

/// Per-worker detectors plus the thresholded health state machine.
/// kDead is sticky until a fresh heartbeat arrives (a restarted worker
/// re-enters kHealthy through heartbeat()).
class HealthRegistry {
 public:
  HealthRegistry(std::size_t workers, double expected_interval_us,
                 double suspect_phi = 3.0, double dead_phi = 8.0);

  /// Records a heartbeat; revives kSuspected/kDead workers.
  void heartbeat(std::size_t worker, double now_us);

  /// Reinitializes `worker`'s inter-arrival model (health is untouched).
  /// Call before the first heartbeat of a rejoin: the outage gap is
  /// silence, not an inter-arrival sample, and folding it into the EWMA
  /// would inflate the mean so much that the node's *next* failure takes
  /// orders of magnitude longer to detect.
  void reset(std::size_t worker, double expected_interval_us);

  /// Re-scores every worker; returns the indices that transitioned to
  /// kDead in this pass (each worker is reported dead once per outage).
  std::vector<std::size_t> update(double now_us);

  [[nodiscard]] Health health(std::size_t worker) const {
    return entries_[worker].health;
  }
  [[nodiscard]] bool dispatchable(std::size_t worker) const {
    return entries_[worker].health == Health::kHealthy;
  }
  [[nodiscard]] double phi(std::size_t worker, double now_us) const {
    return entries_[worker].detector.phi(now_us);
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t healthy_count() const;

 private:
  struct Entry {
    PhiAccrualDetector detector;
    Health health = Health::kHealthy;
  };
  std::vector<Entry> entries_;
  double suspect_phi_;
  double dead_phi_;
};

}  // namespace everest::resilience
