#include "resilience/lineage.hpp"

namespace everest::resilience {

std::vector<std::size_t> recompute_closure(
    const std::vector<std::vector<std::size_t>>& deps,
    const std::vector<char>& completed,
    const std::vector<char>& output_lost) {
  const std::size_t n = deps.size();
  std::vector<char> has_consumer(n, 0);
  // needed[t]: some consumer of t is incomplete or marked for recompute.
  std::vector<char> needed(n, 0);
  std::vector<char> recompute(n, 0);

  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t d : deps[t]) has_consumer[d] = 1;
  }

  // Ids are topological, so one descending sweep settles the fixed point:
  // by the time t is visited, every consumer (id > t) already knows
  // whether it is incomplete or recomputing.
  for (std::size_t i = n; i-- > 0;) {
    const bool lost = completed[i] != 0 && output_lost[i] != 0;
    const bool sink = has_consumer[i] == 0;
    if (lost && (needed[i] != 0 || sink)) recompute[i] = 1;
    const bool demands_inputs = completed[i] == 0 || recompute[i] != 0;
    if (demands_inputs) {
      for (std::size_t d : deps[i]) needed[d] = 1;
    }
  }

  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (recompute[i] != 0) out.push_back(i);
  }
  return out;
}

}  // namespace everest::resilience
