#include "resilience/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

namespace everest::resilience {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kLinkPartition: return "link-partition";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kTransientError: return "transient-error";
    case FaultKind::kReconfigFail: return "reconfig-fail";
    case FaultKind::kDiskIoError: return "disk-io-error";
    case FaultKind::kDiskIoFull: return "disk-io-full";
    case FaultKind::kDiskIoCorrupt: return "disk-io-corrupt";
    case FaultKind::kDiskIoSlow: return "disk-io-slow";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s target=%d at=%.3f dur=%.3f mag=%.4f",
                std::string(resilience::to_string(kind)).c_str(), target,
                at_us, duration_us, magnitude);
  return buf;
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  // Keep sorted by time; stable for equal times (insertion order).
  auto it = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at_us < b.at_us; });
  events_.insert(it, event);
  return *this;
}

FaultPlan& FaultPlan::crash(int node, double at_us, double downtime_us) {
  return add({FaultKind::kNodeCrash, at_us, downtime_us, node, 1.0});
}

FaultPlan& FaultPlan::degrade_link(int node, double at_us, double duration_us,
                                   double factor) {
  return add({FaultKind::kLinkDegrade, at_us, duration_us, node, factor});
}

FaultPlan& FaultPlan::partition(int node, double at_us, double duration_us) {
  return add({FaultKind::kLinkPartition, at_us, duration_us, node, 1.0});
}

FaultPlan& FaultPlan::straggler(int node, double at_us, double duration_us,
                                double slowdown) {
  return add({FaultKind::kStraggler, at_us, duration_us, node, slowdown});
}

FaultPlan& FaultPlan::transient_errors(int node, double at_us,
                                       double duration_us,
                                       double probability) {
  return add({FaultKind::kTransientError, at_us, duration_us, node,
              probability});
}

FaultPlan& FaultPlan::reconfig_failure(int node, double at_us,
                                       double duration_us,
                                       double probability) {
  return add({FaultKind::kReconfigFail, at_us, duration_us, node,
              probability});
}

FaultPlan& FaultPlan::disk_error(int node, double at_us, double duration_us,
                                 double short_write_fraction) {
  return add({FaultKind::kDiskIoError, at_us, duration_us, node,
              short_write_fraction});
}

FaultPlan& FaultPlan::disk_full(int node, double at_us, double duration_us) {
  return add({FaultKind::kDiskIoFull, at_us, duration_us, node, 1.0});
}

FaultPlan& FaultPlan::disk_corrupt(int node, double at_us, double duration_us,
                                   double flip_rate) {
  return add({FaultKind::kDiskIoCorrupt, at_us, duration_us, node, flip_rate});
}

FaultPlan& FaultPlan::disk_slow(int node, double at_us, double duration_us,
                                double extra_sync_us) {
  return add({FaultKind::kDiskIoSlow, at_us, duration_us, node,
              extra_sync_us});
}

double FaultPlan::severity(FaultKind kind, int worker, double now_us) const {
  double product = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.at_us > now_us) break;
    if (e.kind == kind && e.covers(worker, now_us)) product *= e.magnitude;
  }
  return product;
}

double FaultPlan::max_magnitude(FaultKind kind, int worker,
                                double now_us) const {
  double best = 0.0;
  for (const FaultEvent& e : events_) {
    if (e.at_us > now_us) break;
    if (e.kind == kind && e.covers(worker, now_us)) {
      best = std::max(best, e.magnitude);
    }
  }
  return best;
}

double FaultPlan::window_end(FaultKind kind, int worker, double now_us) const {
  double end = now_us;
  for (const FaultEvent& e : events_) {
    if (e.at_us > now_us) break;
    if (e.kind == kind && e.covers(worker, now_us)) {
      end = std::max(end, e.at_us + e.duration_us);
    }
  }
  return end;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

FaultPlan FaultPlan::random(const ChaosSpec& spec, std::uint64_t seed,
                            int num_workers) {
  FaultPlan plan;
  if (num_workers <= 0 || spec.horizon_us <= 0) return plan;
  Rng rng(seed ^ 0xC4A05EULL);

  auto poisson_windows = [&](double rate_per_s, double mean_dur_us,
                             auto&& emit) {
    if (rate_per_s <= 0) return;
    const double rate_per_us = rate_per_s / 1e6;
    double t = rng.exponential(rate_per_us);
    while (t < spec.horizon_us) {
      const int target = static_cast<int>(
          rng.uniform_int(static_cast<std::uint64_t>(num_workers)));
      const double dur = rng.exponential(1.0 / mean_dur_us);
      emit(target, t, dur);
      t += rng.exponential(rate_per_us);
    }
  };

  poisson_windows(spec.crash_rate_per_s, spec.mean_downtime_us,
                  [&](int n, double at, double dur) { plan.crash(n, at, dur); });
  poisson_windows(spec.degrade_rate_per_s, spec.mean_degrade_us,
                  [&](int n, double at, double dur) {
                    plan.degrade_link(n, at, dur, spec.degrade_factor);
                  });
  poisson_windows(spec.straggler_rate_per_s, spec.mean_straggle_us,
                  [&](int n, double at, double dur) {
                    plan.straggler(n, at, dur, spec.straggler_slowdown);
                  });
  if (spec.transient_error_probability > 0) {
    plan.transient_errors(FaultEvent::kAllTargets, 0.0, spec.horizon_us,
                          spec.transient_error_probability);
  }
  return plan;
}

}  // namespace everest::resilience
