#include "resilience/circuit_breaker.hpp"

namespace everest::resilience {

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::open(double now_us) {
  state_ = BreakerState::kOpen;
  opened_at_us_ = now_us;
  probe_outstanding_ = false;
  half_open_successes_ = 0;
  ++trips_;
}

bool CircuitBreaker::allow(double now_us) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_us - opened_at_us_ >= policy_.open_cooldown_us) {
        state_ = BreakerState::kHalfOpen;
        probe_outstanding_ = true;
        return true;  // the probe
      }
      return false;
    case BreakerState::kHalfOpen:
      // One probe at a time: further calls wait for its verdict.
      if (!probe_outstanding_) {
        probe_outstanding_ = true;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::record_success(double now_us) {
  (void)now_us;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    probe_outstanding_ = false;
    if (++half_open_successes_ >= policy_.close_after_successes) {
      state_ = BreakerState::kClosed;
      half_open_successes_ = 0;
    }
  }
}

void CircuitBreaker::record_failure(double now_us) {
  if (state_ == BreakerState::kHalfOpen) {
    open(now_us);  // failed probe: straight back to open
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= policy_.failure_threshold) {
    consecutive_failures_ = 0;
    open(now_us);
  }
}

bool CircuitBreakerBoard::allow(const std::string& scope,
                                const std::string& id, double now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      breakers_.try_emplace(key(scope, id), CircuitBreaker(policy_));
  return it->second.allow(now_us);
}

void CircuitBreakerBoard::record(const std::string& scope,
                                 const std::string& id, bool success,
                                 double now_us) {
  std::function<void(const std::string&, const std::string&, double)> on_open;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        breakers_.try_emplace(key(scope, id), CircuitBreaker(policy_));
    const int trips_before = it->second.trips();
    if (success) {
      it->second.record_success(now_us);
    } else {
      it->second.record_failure(now_us);
    }
    if (it->second.trips() > trips_before) on_open = on_open_;
  }
  // Outside the lock: the observer may dump a flight bundle.
  if (on_open) on_open(scope, id, now_us);
}

BreakerState CircuitBreakerBoard::state(const std::string& scope,
                                        const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(key(scope, id));
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state();
}

int CircuitBreakerBoard::open_count(const std::string& scope) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = scope.empty() ? "" : scope + '\x1f';
  int open = 0;
  for (const auto& [k, breaker] : breakers_) {
    if (!prefix.empty() && k.compare(0, prefix.size(), prefix) != 0) continue;
    if (breaker.state() != BreakerState::kClosed) ++open;
  }
  return open;
}

void CircuitBreakerBoard::set_on_open(
    std::function<void(const std::string&, const std::string&, double)>
        on_open) {
  std::lock_guard<std::mutex> lock(mu_);
  on_open_ = std::move(on_open);
}

int CircuitBreakerBoard::total_trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  int trips = 0;
  for (const auto& [k, breaker] : breakers_) trips += breaker.trips();
  return trips;
}

}  // namespace everest::resilience
