// Lineage-based recomputation (the RDD/Spark recovery idea applied to the
// workflow engine): when a node crash loses stored data objects, the
// tasks that produced them are re-executed — but only those whose output
// is still needed, closing transitively over producers whose own inputs
// were also lost. Operates on plain adjacency lists so any DAG engine can
// use it without depending on the workflow library.
#pragma once

#include <cstddef>
#include <vector>

namespace everest::resilience {

/// Returns the ascending list of tasks that must be re-executed.
///
/// `deps[t]` lists the producers task t consumes (ids must be < t, i.e.
/// ids are a topological order). `completed[t]` says t finished;
/// `output_lost[t]` says t's stored output is gone (only meaningful for
/// completed tasks). A lost output needs recomputation when some consumer
/// still needs it — the consumer is incomplete, or is itself being
/// recomputed — or when the task is a sink (its output is a workflow
/// deliverable).
std::vector<std::size_t> recompute_closure(
    const std::vector<std::vector<std::size_t>>& deps,
    const std::vector<char>& completed, const std::vector<char>& output_lost);

}  // namespace everest::resilience
