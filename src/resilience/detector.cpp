#include "resilience/detector.hpp"

namespace everest::resilience {

void PhiAccrualDetector::heartbeat(double now_us) {
  if (last_us_ >= 0.0) {
    const double interval = now_us - last_us_;
    mean_interval_us_ += kAlpha * (interval - mean_interval_us_);
  }
  last_us_ = now_us;
}

double PhiAccrualDetector::phi(double now_us) const {
  if (last_us_ < 0.0) return 0.0;
  const double silence = now_us - last_us_;
  if (silence <= 0.0 || mean_interval_us_ <= 0.0) return 0.0;
  // P(silence | alive) = exp(-silence/mean) under exponential arrivals;
  // phi = -log10(P) = silence/mean * log10(e).
  constexpr double kLog10E = 0.4342944819032518;
  return silence / mean_interval_us_ * kLog10E;
}

std::string_view to_string(Health health) {
  switch (health) {
    case Health::kHealthy: return "healthy";
    case Health::kSuspected: return "suspected";
    case Health::kDead: return "dead";
  }
  return "?";
}

HealthRegistry::HealthRegistry(std::size_t workers,
                               double expected_interval_us,
                               double suspect_phi, double dead_phi)
    : suspect_phi_(suspect_phi), dead_phi_(dead_phi) {
  entries_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    entries_.push_back(Entry{PhiAccrualDetector(expected_interval_us),
                             Health::kHealthy});
  }
}

void HealthRegistry::heartbeat(std::size_t worker, double now_us) {
  Entry& e = entries_[worker];
  e.detector.heartbeat(now_us);
  e.health = Health::kHealthy;
}

void HealthRegistry::reset(std::size_t worker, double expected_interval_us) {
  entries_[worker].detector = PhiAccrualDetector(expected_interval_us);
}

std::vector<std::size_t> HealthRegistry::update(double now_us) {
  std::vector<std::size_t> newly_dead;
  for (std::size_t w = 0; w < entries_.size(); ++w) {
    Entry& e = entries_[w];
    if (e.health == Health::kDead) continue;  // sticky until heartbeat
    const double score = e.detector.phi(now_us);
    if (score >= dead_phi_) {
      e.health = Health::kDead;
      newly_dead.push_back(w);
    } else if (score >= suspect_phi_) {
      e.health = Health::kSuspected;
    } else {
      e.health = Health::kHealthy;
    }
  }
  return newly_dead;
}

std::size_t HealthRegistry::healthy_count() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.health == Health::kHealthy) ++n;
  }
  return n;
}

}  // namespace everest::resilience
