#include "resilience/retry.hpp"

#include <algorithm>
#include <cmath>

namespace everest::resilience {

double RetryPolicy::delay_us(int attempt, Rng& rng) const {
  if (attempt < 1 || base_delay_us <= 0.0) return 0.0;
  double delay =
      base_delay_us * std::pow(multiplier, static_cast<double>(attempt - 1));
  delay = std::min(delay, max_delay_us);
  if (jitter > 0.0) {
    delay *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  }
  return std::max(0.0, delay);
}

}  // namespace everest::resilience
