// FaultPlan: a deterministic, seed-reproducible chaos schedule injected
// into the discrete-event simulations (paper §IV: the runtime must "react
// to changing workload conditions" — on disaggregated cloudFPGA nodes
// crashes, link trouble, and failed partial reconfigurations are normal
// events, not exceptions). A plan is an ordered list of timed fault
// events; the same plan + the same simulation seed reproduces the same
// event trace byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace everest::resilience {

/// What goes wrong.
enum class FaultKind : std::uint8_t {
  /// Node/worker dies at `at_us` and restarts after `duration_us`.
  /// Running work is lost; stored outputs on the node are lost.
  kNodeCrash = 0,
  /// Transfers touching the target are stretched by `magnitude` during
  /// the window.
  kLinkDegrade,
  /// The target is unreachable during the window: transfers to/from it
  /// block until the partition heals.
  kLinkPartition,
  /// Compute on the target is slowed by `magnitude` during the window
  /// (a straggling worker).
  kStraggler,
  /// Task executions on the target fail with probability `magnitude`
  /// during the window (transient software error).
  kTransientError,
  /// FPGA partial reconfiguration on the target fails with probability
  /// `magnitude` (interpreted by the platform/runtime layers).
  kReconfigFail,
  /// Disk writes/fsyncs on the target fail with EIO during the window.
  /// `magnitude` in (0,1) makes failed writes short (that fraction of
  /// the frame lands on disk before the error — the torn-tail case).
  kDiskIoError,
  /// Disk writes on the target fail with ENOSPC during the window (the
  /// graceful-degradation trigger: seal, go read-only, resume after).
  kDiskIoFull,
  /// Silent media corruption: writes and reads on the target have one
  /// bit flipped per `magnitude` operations (1.0 = every op) — caught
  /// by frame CRCs at read time and by the background scrubber.
  kDiskIoCorrupt,
  /// fsync on the target is stretched by `magnitude` µs during the
  /// window (a browning-out device, not a failing one).
  kDiskIoSlow,
};

std::string_view to_string(FaultKind kind);

/// One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kTransientError;
  /// Injection time (us, simulation clock).
  double at_us = 0.0;
  /// Window length (crash downtime, degradation window, ...).
  double duration_us = 0.0;
  /// Worker/node index; kAllTargets = every worker.
  int target = 0;
  /// Kind-specific severity: slowdown/stretch factor (>= 1) or failure
  /// probability (0..1).
  double magnitude = 1.0;

  static constexpr int kAllTargets = -1;

  [[nodiscard]] bool covers(int worker, double now_us) const {
    return (target == kAllTargets || target == worker) && now_us >= at_us &&
           now_us < at_us + duration_us;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Knobs for FaultPlan::random(): independent Poisson processes per fault
/// kind over a horizon. A rate of zero disables that kind.
struct ChaosSpec {
  double horizon_us = 1e6;
  double crash_rate_per_s = 0.0;
  double mean_downtime_us = 5e4;
  double degrade_rate_per_s = 0.0;
  double degrade_factor = 4.0;
  double mean_degrade_us = 1e5;
  double straggler_rate_per_s = 0.0;
  double straggler_slowdown = 4.0;
  double mean_straggle_us = 1e5;
  /// Blanket transient-error probability over the whole horizon
  /// (0 disables; applied to all workers).
  double transient_error_probability = 0.0;
};

/// An ordered (by time, then insertion) chaos schedule. Builder methods
/// return *this so plans read as one expression.
class FaultPlan {
 public:
  FaultPlan& crash(int node, double at_us, double downtime_us);
  FaultPlan& degrade_link(int node, double at_us, double duration_us,
                          double factor);
  FaultPlan& partition(int node, double at_us, double duration_us);
  FaultPlan& straggler(int node, double at_us, double duration_us,
                       double slowdown);
  FaultPlan& transient_errors(int node, double at_us, double duration_us,
                              double probability);
  FaultPlan& reconfig_failure(int node, double at_us, double duration_us,
                              double probability);
  FaultPlan& disk_error(int node, double at_us, double duration_us,
                        double short_write_fraction = 1.0);
  FaultPlan& disk_full(int node, double at_us, double duration_us);
  FaultPlan& disk_corrupt(int node, double at_us, double duration_us,
                          double flip_rate = 1.0);
  FaultPlan& disk_slow(int node, double at_us, double duration_us,
                       double extra_sync_us);
  FaultPlan& add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Active severity of `kind` for `worker` at `now_us`: the product of
  /// the magnitudes of all covering windows (1.0 = nominal). For
  /// probability kinds use max_magnitude() instead.
  [[nodiscard]] double severity(FaultKind kind, int worker,
                                double now_us) const;
  /// Largest covering magnitude (for probability-valued kinds).
  [[nodiscard]] double max_magnitude(FaultKind kind, int worker,
                                     double now_us) const;
  /// End time of the last covering window of `kind` for `worker`
  /// (now_us if none is active).
  [[nodiscard]] double window_end(FaultKind kind, int worker,
                                  double now_us) const;

  /// Deterministic rendering (one event per line) — the byte-identical
  /// reference used by the determinism tests.
  [[nodiscard]] std::string to_string() const;

  /// Seed-reproducible random plan: Poisson arrivals per kind, uniform
  /// targets over `num_workers`. Same (spec, seed, num_workers) =>
  /// identical plan.
  static FaultPlan random(const ChaosSpec& spec, std::uint64_t seed,
                          int num_workers);

 private:
  std::vector<FaultEvent> events_;  // sorted by (at_us, insertion)
};

}  // namespace everest::resilience
