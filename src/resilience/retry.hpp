// Retry with exponential backoff + decorrelated jitter and a bounded
// budget. Backoff spaces retries out so a struggling resource is not
// hammered; jitter breaks retry synchronization across tasks (the
// thundering-herd failure mode of fixed backoff).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace everest::resilience {

struct RetryPolicy {
  /// Total attempts allowed (first try included). <= 0 disables retry.
  int max_attempts = 4;
  /// Delay before retry k (k = 1 is the first retry) is
  /// base * multiplier^(k-1), capped at max_delay, then jittered by
  /// +/- jitter (fraction, uniform).
  double base_delay_us = 200.0;
  double multiplier = 2.0;
  double max_delay_us = 1e6;
  double jitter = 0.25;

  /// Backoff delay before retry `attempt` (1-based). Deterministic given
  /// the Rng state.
  [[nodiscard]] double delay_us(int attempt, Rng& rng) const;

  /// Whether another attempt is allowed after `attempts` tries, given the
  /// failure's status code (permanent errors never retry).
  [[nodiscard]] bool should_retry(int attempts, StatusCode code) const {
    return attempts < max_attempts && is_retryable(code);
  }
};

}  // namespace everest::resilience
