// Circuit breakers for graceful degradation: a per-(scope, variant)
// closed → open → half-open state machine. Repeated failures trip the
// breaker; while open the variant is withheld from selection (the
// autotuner falls back to the next eligible variant, e.g. FPGA → CPU)
// instead of failing requests. After a cooldown one probe is let through;
// success re-closes the breaker, failure re-opens it. UNAVAILABLE is
// reported only when every variant of a kernel is withheld.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace everest::resilience {

struct BreakerPolicy {
  /// Consecutive failures that trip the breaker.
  int failure_threshold = 3;
  /// Time the breaker stays open before allowing a half-open probe (us on
  /// the caller's clock — wall or simulated).
  double open_cooldown_us = 5e5;
  /// Successful probes required in half-open before closing again.
  int close_after_successes = 1;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

std::string_view to_string(BreakerState state);

/// One breaker. Not thread-safe on its own; CircuitBreakerBoard adds the
/// lock.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = {}) : policy_(policy) {}

  /// Whether a call may proceed now. Transitions kOpen → kHalfOpen once
  /// the cooldown elapsed (the probe call).
  bool allow(double now_us);
  void record_success(double now_us);
  void record_failure(double now_us);

  [[nodiscard]] BreakerState state() const { return state_; }
  /// Times the breaker transitioned closed/half-open → open.
  [[nodiscard]] int trips() const { return trips_; }

 private:
  void open(double now_us);

  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double opened_at_us_ = 0.0;
  bool probe_outstanding_ = false;
  int trips_ = 0;
};

/// Thread-safe keyed collection of breakers. Keys are (scope, id) pairs —
/// e.g. (node name, variant id) or (kernel, variant id) — so degradation
/// is tracked per place-and-implementation, exactly the granularity at
/// which cloudFPGA failures occur.
class CircuitBreakerBoard {
 public:
  explicit CircuitBreakerBoard(BreakerPolicy policy = {}) : policy_(policy) {}

  bool allow(const std::string& scope, const std::string& id, double now_us);
  void record(const std::string& scope, const std::string& id, bool success,
              double now_us);

  [[nodiscard]] BreakerState state(const std::string& scope,
                                   const std::string& id) const;
  /// Breakers currently not closed within `scope` ("" = all scopes).
  [[nodiscard]] int open_count(const std::string& scope = "") const;
  [[nodiscard]] int total_trips() const;

  /// Observer invoked (outside the board lock) every time a breaker
  /// transitions to open — the flight-recorder trigger point. Set it
  /// before traffic starts; there is no unregistration.
  void set_on_open(
      std::function<void(const std::string& scope, const std::string& id,
                         double now_us)>
          on_open);

 private:
  static std::string key(const std::string& scope, const std::string& id) {
    return scope + '\x1f' + id;
  }

  mutable std::mutex mu_;
  BreakerPolicy policy_;
  std::map<std::string, CircuitBreaker> breakers_;
  std::function<void(const std::string&, const std::string&, double)> on_open_;
};

}  // namespace everest::resilience
