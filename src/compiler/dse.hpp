// Design-space exploration over generated variants: Pareto filtering on
// (latency, energy[, area]) and knee-point selection (paper §III-B: the
// middle-end "explores the design space").
#pragma once

#include <vector>

#include "compiler/variants.hpp"

namespace everest::compiler {

/// Objectives considered by the Pareto filter.
struct DseObjectives {
  bool latency = true;
  bool energy = true;
  bool area = false;
};

/// Returns the indices of Pareto-optimal variants (minimization on every
/// enabled objective). Order follows the input.
std::vector<std::size_t> pareto_front(const std::vector<Variant>& variants,
                                      const DseObjectives& objectives = {});

/// Returns the variants (copies) on the Pareto front.
std::vector<Variant> pareto_variants(const std::vector<Variant>& variants,
                                     const DseObjectives& objectives = {});

/// Knee point of the latency/energy front: the variant minimizing the
/// normalized distance to the utopia point (min latency, min energy).
/// Returns SIZE_MAX for an empty set.
std::size_t knee_point(const std::vector<Variant>& variants);

}  // namespace everest::compiler
