#include "compiler/dependence.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>

namespace everest::compiler {

namespace {

using ir::Block;
using ir::Operation;
using ir::Value;

/// Affine form over the nest's induction variables: sum(coeff[l]*iv_l) + c.
struct AffineForm {
  std::vector<std::int64_t> coeff;  // one per loop level
  std::int64_t constant = 0;
  bool analyzable = true;
};

struct Reference {
  std::string array_key;           // stable identity of the base memref
  bool is_store = false;
  std::vector<AffineForm> dims;    // one per memref dimension
  std::vector<std::int64_t> shape; // memref shape (for linearization)
  bool analyzable = true;
};

std::string base_key(const Value& base) {
  char buf[48];
  if (base.is_block_arg()) {
    std::snprintf(buf, sizeof buf, "arg:%p:%u",
                  static_cast<const void*>(base.owner_block()), base.index());
  } else {
    std::snprintf(buf, sizeof buf, "op:%p:%u",
                  static_cast<const void*>(base.defining_op()), base.index());
  }
  return buf;
}

class NestAnalyzer {
 public:
  Result<std::vector<DependenceVector>> run(ir::Function& fn,
                                            std::size_t nest_index) {
    EVEREST_RETURN_IF_ERROR(collect_nest(fn, nest_index));
    collect_references();
    return build_dependences();
  }

  Result<AffineNest> summarize(ir::Function& fn, std::size_t nest_index) {
    EVEREST_RETURN_IF_ERROR(collect_nest(fn, nest_index));
    collect_references();
    AffineNest out;
    for (Operation* loop : loops_) {
      out.lb.push_back(loop->int_attr("lb"));
      out.ub.push_back(loop->int_attr("ub"));
      out.step.push_back(loop->int_attr("step", 1));
    }
    for (const Reference& ref : references_) {
      AffineReference r;
      r.array = ref.array_key;
      r.is_store = ref.is_store;
      r.analyzable = ref.analyzable;
      r.array_shape = ref.shape;
      for (const AffineForm& form : ref.dims) {
        r.dim_coeffs.push_back(form.coeff);
        r.dim_consts.push_back(form.constant);
      }
      out.references.push_back(std::move(r));
    }
    return out;
  }

 private:
  Status collect_nest(ir::Function& fn, std::size_t nest_index) {
    std::vector<Operation*> tops;
    for (auto& op : fn.entry()) {
      if (op->name() == "kernel.for") tops.push_back(op.get());
    }
    if (nest_index >= tops.size()) {
      return NotFound("function has only " + std::to_string(tops.size()) +
                      " loop nests");
    }
    Operation* current = tops[nest_index];
    while (true) {
      loops_.push_back(current);
      Block& body = current->region(0).front();
      iv_blocks_.push_back(&body);
      Operation* nested = nullptr;
      bool other = false;
      for (auto& op : body) {
        if (op->name() == "kernel.for") nested = op.get();
        else if (op->name() != "kernel.yield") other = true;
      }
      if (nested == nullptr || other) {
        innermost_ = &body;
        break;
      }
      current = nested;
    }
    return OkStatus();
  }

  /// Level of a block-arg induction variable, or -1.
  int level_of(const Value& v) const {
    if (!v.is_block_arg() || v.index() != 0) return -1;
    for (std::size_t l = 0; l < iv_blocks_.size(); ++l) {
      if (v.owner_block() == iv_blocks_[l]) return static_cast<int>(l);
    }
    return -1;
  }

  AffineForm analyze(const Value& v) const {
    AffineForm out;
    out.coeff.assign(loops_.size(), 0);
    const int level = level_of(v);
    if (level >= 0) {
      out.coeff[static_cast<std::size_t>(level)] = 1;
      return out;
    }
    if (v.is_block_arg()) {
      out.analyzable = false;
      return out;
    }
    const Operation* def = v.defining_op();
    if (def == nullptr) {
      out.analyzable = false;
      return out;
    }
    if (def->name() == "builtin.constant") {
      const ir::Attribute* a = def->attr("value");
      if (a != nullptr && a->is_int()) {
        out.constant = a->as_int();
        return out;
      }
      if (a != nullptr && a->is_double()) {
        out.constant = static_cast<std::int64_t>(a->as_double());
        return out;
      }
      out.analyzable = false;
      return out;
    }
    if (def->name() == "kernel.binop") {
      const std::string kind = def->str_attr("op");
      AffineForm a = analyze(def->operand(0));
      AffineForm b = analyze(def->operand(1));
      if (!a.analyzable || !b.analyzable) {
        out.analyzable = false;
        return out;
      }
      if (kind == "add" || kind == "sub") {
        const std::int64_t sign = kind == "add" ? 1 : -1;
        for (std::size_t l = 0; l < out.coeff.size(); ++l) {
          out.coeff[l] = a.coeff[l] + sign * b.coeff[l];
        }
        out.constant = a.constant + sign * b.constant;
        return out;
      }
      if (kind == "mul") {
        auto is_const = [](const AffineForm& f) {
          for (std::int64_t c : f.coeff) {
            if (c != 0) return false;
          }
          return true;
        };
        if (is_const(a)) std::swap(a, b);
        if (is_const(b)) {
          for (std::size_t l = 0; l < out.coeff.size(); ++l) {
            out.coeff[l] = a.coeff[l] * b.constant;
          }
          out.constant = a.constant * b.constant;
          return out;
        }
      }
    }
    out.analyzable = false;
    return out;
  }

  void collect_references() {
    for (const auto& op : *innermost_) {
      const bool is_load = op->name() == "kernel.load";
      const bool is_store = op->name() == "kernel.store";
      if (!is_load && !is_store) continue;
      Reference ref;
      ref.is_store = is_store;
      const std::size_t base_idx = is_store ? 1 : 0;
      const Value& base = op->operand(base_idx);
      ref.array_key = base_key(base);
      ref.shape = base.type().shape();
      const std::size_t rank = base.type().rank();
      for (std::size_t d = 0; d < rank; ++d) {
        AffineForm form = analyze(op->operand(base_idx + 1 + d));
        ref.analyzable &= form.analyzable;
        ref.dims.push_back(std::move(form));
      }
      references_.push_back(std::move(ref));
    }
  }

  /// Direction vector between source and sink references (same array), or
  /// nullopt when the subscripts prove independence.
  std::optional<DependenceVector> pair_dependence(const Reference& src,
                                                  const Reference& sink) const {
    DependenceVector dep;
    dep.array = src.array_key;
    dep.kind = src.is_store ? (sink.is_store ? "WAW" : "RAW") : "WAR";
    dep.dir.assign(loops_.size(), '*');
    if (!src.analyzable || !sink.analyzable ||
        src.dims.size() != sink.dims.size()) {
      dep.unknown = true;
      return dep;
    }
    // distance[l]: level already bound to a dependence distance.
    std::vector<std::optional<std::int64_t>> distance(loops_.size());
    for (std::size_t d = 0; d < src.dims.size(); ++d) {
      const AffineForm& a = src.dims[d];
      const AffineForm& b = sink.dims[d];
      if (a.coeff != b.coeff) {
        dep.unknown = true;  // coupled/unequal subscripts: give up
        return dep;
      }
      int varying = -1;
      int count = 0;
      for (std::size_t l = 0; l < a.coeff.size(); ++l) {
        if (a.coeff[l] != 0) {
          varying = static_cast<int>(l);
          ++count;
        }
      }
      if (count == 0) {
        // Pure constants: different addresses ⇒ no dependence at all.
        if (a.constant != b.constant) return std::nullopt;
        continue;
      }
      if (count > 1) {
        dep.unknown = true;  // multi-variable subscript: conservative
        return dep;
      }
      const std::int64_t c = a.coeff[static_cast<std::size_t>(varying)];
      const std::int64_t delta = a.constant - b.constant;
      if (delta % c != 0) return std::nullopt;  // GCD test: no solution
      const std::int64_t dist = delta / c;  // i_sink - i_src
      auto& slot = distance[static_cast<std::size_t>(varying)];
      if (slot.has_value() && *slot != dist) return std::nullopt;
      slot = dist;
    }
    for (std::size_t l = 0; l < loops_.size(); ++l) {
      if (!distance[l].has_value()) continue;  // stays '*'
      dep.dir[l] = *distance[l] > 0 ? '<' : (*distance[l] < 0 ? '>' : '=');
    }
    return dep;
  }

  Result<std::vector<DependenceVector>> build_dependences() {
    std::vector<DependenceVector> out;
    for (std::size_t i = 0; i < references_.size(); ++i) {
      for (std::size_t j = 0; j < references_.size(); ++j) {
        const Reference& src = references_[i];
        const Reference& sink = references_[j];
        if (src.array_key != sink.array_key) continue;
        if (!src.is_store && !sink.is_store) continue;  // RR: no dependence
        // Each unordered pair once; self-pairs only for stores (WAW across
        // iterations) and store/load pairs in both roles collapse to one
        // vector set since directions cover both signs via '*'.
        if (j < i) continue;
        if (i == j && !src.is_store) continue;
        auto dep = pair_dependence(src, sink);
        if (!dep.has_value()) continue;
        // All-'=' vectors are loop-independent (same-iteration ordering):
        // they constrain the schedule inside one iteration, not loop
        // transforms, so they are dropped here.
        const bool all_equal =
            !dep->unknown &&
            std::all_of(dep->dir.begin(), dep->dir.end(),
                        [](char c) { return c == '='; });
        if (all_equal) continue;
        // Both orientations matter: whichever instantiation is
        // lexicographically positive is the real dependence. Emit the
        // vector and its negation; the legality check filters positives.
        DependenceVector negated = *dep;
        for (char& c : negated.dir) {
          if (c == '<') c = '>';
          else if (c == '>') c = '<';
        }
        const bool symmetric = negated.dir == dep->dir;
        out.push_back(std::move(*dep));
        if (!symmetric) out.push_back(std::move(negated));
      }
    }
    return out;
  }

  std::vector<Operation*> loops_;
  std::vector<Block*> iv_blocks_;
  Block* innermost_ = nullptr;
  std::vector<Reference> references_;
};

/// Enumerates '*' expansions of `dir` (limited depth) and calls `fn` with
/// each concrete vector.
void for_each_instance(const std::vector<char>& dir, std::size_t pos,
                       std::vector<char>& current,
                       const std::function<void(const std::vector<char>&)>& fn) {
  if (pos == dir.size()) {
    fn(current);
    return;
  }
  if (dir[pos] == '*') {
    for (char c : {'<', '=', '>'}) {
      current[pos] = c;
      for_each_instance(dir, pos + 1, current, fn);
    }
  } else {
    current[pos] = dir[pos];
    for_each_instance(dir, pos + 1, current, fn);
  }
}

/// Lexicographic sign: +1 positive, 0 all-equal, -1 negative.
int lex_sign(const std::vector<char>& v) {
  for (char c : v) {
    if (c == '<') return 1;
    if (c == '>') return -1;
  }
  return 0;
}

}  // namespace

Result<std::vector<DependenceVector>> analyze_dependences(
    ir::Function& fn, std::size_t nest_index) {
  return NestAnalyzer().run(fn, nest_index);
}

Result<AffineNest> collect_affine_nest(ir::Function& fn,
                                       std::size_t nest_index) {
  NestAnalyzer analyzer;
  return analyzer.summarize(fn, nest_index);
}

bool interchange_is_legal(const std::vector<DependenceVector>& dependences,
                          std::size_t a, std::size_t b) {
  for (const DependenceVector& dep : dependences) {
    if (dep.unknown) return false;
    if (a >= dep.dir.size() || b >= dep.dir.size()) return false;
    bool legal = true;
    std::vector<char> scratch(dep.dir.size());
    for_each_instance(dep.dir, 0, scratch, [&](const std::vector<char>& inst) {
      // Only lexicographically positive instances are real dependences
      // (all-'=' is loop-independent and unaffected by interchange).
      if (lex_sign(inst) <= 0) return;
      std::vector<char> permuted = inst;
      std::swap(permuted[a], permuted[b]);
      if (lex_sign(permuted) < 0) legal = false;
    });
    if (!legal) return false;
  }
  return true;
}

bool innermost_is_parallel(const std::vector<DependenceVector>& dependences) {
  for (const DependenceVector& dep : dependences) {
    if (dep.unknown) return false;
    if (dep.dir.empty()) continue;
    bool legal = true;
    std::vector<char> scratch(dep.dir.size());
    for_each_instance(dep.dir, 0, scratch, [&](const std::vector<char>& inst) {
      if (lex_sign(inst) <= 0) return;
      // Carried by the innermost loop iff every outer component is '='
      // and the innermost is '<'.
      bool outer_equal = true;
      for (std::size_t l = 0; l + 1 < inst.size(); ++l) {
        outer_equal &= inst[l] == '=';
      }
      if (outer_equal && inst.back() == '<') legal = false;
    });
    if (!legal) return false;
  }
  return true;
}

}  // namespace everest::compiler
