// Static cost analysis of tensor-dialect kernels: FLOP and byte counts per
// invocation. Feeds the software cost model and the workflow scheduler.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::compiler {

/// Per-kernel static profile.
struct KernelProfile {
  double flops = 0.0;          // adds+muls counted separately (FMA = 2)
  double special_ops = 0.0;    // exp/log/sqrt/... evaluations
  double bytes_read = 0.0;     // tensor operand traffic
  double bytes_written = 0.0;  // tensor result traffic
  std::int64_t live_bytes = 0; // peak simultaneous tensor footprint (approx)

  [[nodiscard]] double total_bytes() const { return bytes_read + bytes_written; }
  /// Arithmetic intensity (FLOP/byte); 0 when no traffic.
  [[nodiscard]] double intensity() const {
    const double b = total_bytes();
    return b > 0 ? (flops + special_ops) / b : 0.0;
  }
};

/// Analyzes a tensor-dialect function. Ops outside the tensor/builtin
/// dialects contribute nothing (workflow functions profile their kernels
/// separately).
Result<KernelProfile> profile_kernel(const ir::Function& fn);

/// Profiles every function of a module, keyed by name.
Result<std::map<std::string, KernelProfile>> profile_module(
    const ir::Module& module);

}  // namespace everest::compiler
