#include "compiler/transforms.hpp"

#include "compiler/dependence.hpp"

#include <cmath>
#include <map>
#include <set>

#include "ir/builder.hpp"

namespace everest::compiler {

namespace {

using ir::Attribute;
using ir::Block;
using ir::OpBuilder;
using ir::Operation;
using ir::Type;
using ir::Value;

bool is_pure(const Operation& op) {
  const std::string& n = op.name();
  if (n == "builtin.constant" || n == "kernel.binop" || n == "kernel.unop" ||
      n == "kernel.cast") {
    return true;
  }
  // Tensor-dialect value ops are pure; loads/stores/allocs and anything
  // with regions or workflow semantics are not.
  return n.rfind("tensor.", 0) == 0;
}

double eval_binop(const std::string& kind, double a, double b) {
  if (kind == "add") return a + b;
  if (kind == "sub") return a - b;
  if (kind == "mul") return a * b;
  if (kind == "div") return b != 0.0 ? a / b : 0.0;
  if (kind == "mod") {
    return b != 0.0 ? static_cast<double>(static_cast<std::int64_t>(a) %
                                          static_cast<std::int64_t>(b))
                    : 0.0;
  }
  if (kind == "min") return std::min(a, b);
  if (kind == "max") return std::max(a, b);
  if (kind == "cmplt") return a < b ? 1.0 : 0.0;
  if (kind == "cmple") return a <= b ? 1.0 : 0.0;
  return 0.0;
}

double eval_unop(const std::string& fn, double x) {
  if (fn == "relu") return x > 0 ? x : 0.0;
  if (fn == "exp") return std::exp(x);
  if (fn == "log") return x > 0 ? std::log(x) : 0.0;
  if (fn == "sqrt") return x >= 0 ? std::sqrt(x) : 0.0;
  if (fn == "tanh") return std::tanh(x);
  if (fn == "sigmoid") return 1.0 / (1.0 + std::exp(-x));
  if (fn == "abs") return std::abs(x);
  if (fn == "neg") return -x;
  if (fn == "square") return x * x;
  return x;
}

/// Extracts the f64 payload of a builtin.constant defining `v`, if any.
bool constant_value(const Value& v, double* out) {
  if (!v.is_op_result()) return false;
  const Operation* def = v.defining_op();
  if (def == nullptr || def->name() != "builtin.constant") return false;
  const Attribute* a = def->attr("value");
  if (a == nullptr) return false;
  if (a->is_double()) {
    *out = a->as_double();
    return true;
  }
  if (a->is_int()) {
    *out = static_cast<double>(a->as_int());
    return true;
  }
  return false;
}

/// Applies `fn` to every block in the function (nested included) until no
/// change; returns whether anything changed.
bool for_each_block_fixpoint(ir::Function& fn,
                             const std::function<bool(Block&)>& visit) {
  bool any = false;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Block*> blocks;
    for (auto& b : fn.body()) blocks.push_back(b.get());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      Block* block = blocks[i];
      for (auto& op : *block) {
        for (std::size_t r = 0; r < op->num_regions(); ++r) {
          for (auto& nested : op->region(r)) blocks.push_back(nested.get());
        }
      }
      changed |= visit(*block);
    }
    any |= changed;
  }
  return any;
}

struct ValueKey {
  const void* def;
  unsigned index;
  bool operator<(const ValueKey& other) const {
    return def != other.def ? def < other.def : index < other.index;
  }
};

ValueKey key_of(const Value& v) {
  if (v.is_op_result()) return {v.defining_op(), v.index()};
  return {v.owner_block(), v.index() + (1u << 30)};
}

/// Collects use counts across the whole function.
std::map<ValueKey, std::size_t> use_counts(ir::Function& fn) {
  std::map<ValueKey, std::size_t> uses;
  fn.walk([&](Operation& op) {
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      ++uses[key_of(op.operand(i))];
    }
  });
  return uses;
}

}  // namespace

Status ConstantFoldPass::run(ir::Module& module) {
  for (auto& fn : module) {
    for_each_block_fixpoint(*fn, [&](Block& block) {
      for (std::size_t i = 0; i < block.size(); ++i) {
        Operation& op = block.op(i);
        double folded = 0.0;
        bool can_fold = false;
        if (op.name() == "kernel.binop") {
          double a = 0, b = 0;
          if (constant_value(op.operand(0), &a) &&
              constant_value(op.operand(1), &b)) {
            folded = eval_binop(op.str_attr("op"), a, b);
            can_fold = true;
          }
        } else if (op.name() == "kernel.unop") {
          double x = 0;
          if (constant_value(op.operand(0), &x)) {
            folded = eval_unop(op.str_attr("fn"), x);
            can_fold = true;
          }
        }
        if (!can_fold) continue;
        OpBuilder b;
        b.set_insertion_point(&block, i);
        Value replacement =
            b.create_value("builtin.constant", {}, op.result_types()[0],
                           {{"value", Attribute::real(folded)}});
        // The folded op shifted to i+1.
        ir::replace_all_uses(fn->entry(), block.op(i + 1).result(0),
                             replacement);
        block.erase(i + 1);
        return true;
      }
      return false;
    });
  }
  return OkStatus();
}

Status CsePass::run(ir::Module& module) {
  for (auto& fn : module) {
    for_each_block_fixpoint(*fn, [&](Block& block) {
      // signature → index of first occurrence.
      std::map<std::string, std::size_t> seen;
      for (std::size_t i = 0; i < block.size(); ++i) {
        Operation& op = block.op(i);
        if (!is_pure(op) || op.num_results() != 1 || op.num_regions() != 0) {
          continue;
        }
        std::string sig = op.name();
        for (std::size_t k = 0; k < op.num_operands(); ++k) {
          const ValueKey key = key_of(op.operand(k));
          sig += "|" + std::to_string(reinterpret_cast<std::uintptr_t>(key.def)) +
                 ":" + std::to_string(key.index);
        }
        for (const auto& [k, v] : op.attributes()) {
          sig += "|" + k + "=" + v.to_string();
        }
        auto [it, inserted] = seen.emplace(sig, i);
        if (inserted) continue;
        ir::replace_all_uses(fn->entry(), op.result(0),
                             block.op(it->second).result(0));
        block.erase(i);
        return true;
      }
      return false;
    });
  }
  return OkStatus();
}

Status DcePass::run(ir::Module& module) {
  for (auto& fn : module) {
    bool changed = true;
    while (changed) {
      changed = false;
      auto uses = use_counts(*fn);
      for_each_block_fixpoint(*fn, [&](Block& block) {
        for (std::size_t i = 0; i < block.size(); ++i) {
          Operation& op = block.op(i);
          if (!is_pure(op) || op.num_results() == 0) continue;
          bool used = false;
          for (unsigned r = 0; r < op.num_results(); ++r) {
            auto it = uses.find({&op, r});
            used |= it != uses.end() && it->second > 0;
          }
          if (used) continue;
          block.erase(i);
          changed = true;
          return true;
        }
        return false;
      });
    }
  }
  return OkStatus();
}

namespace {

/// Descends a perfect nest; returns the chain of loop ops outer→inner.
Result<std::vector<Operation*>> nest_chain(ir::Function& fn,
                                           std::size_t nest_index) {
  std::vector<Operation*> tops;
  for (auto& op : fn.entry()) {
    if (op->name() == "kernel.for") tops.push_back(op.get());
  }
  if (nest_index >= tops.size()) {
    return NotFound("function has only " + std::to_string(tops.size()) +
                    " loop nests");
  }
  std::vector<Operation*> chain;
  Operation* current = tops[nest_index];
  while (true) {
    chain.push_back(current);
    Block& body = current->region(0).front();
    Operation* nested = nullptr;
    bool other_work = false;
    for (auto& op : body) {
      if (op->name() == "kernel.for") {
        nested = op.get();
      } else if (op->name() != "kernel.yield") {
        other_work = true;
      }
    }
    if (nested == nullptr || other_work) break;
    current = nested;
  }
  return chain;
}

}  // namespace

std::size_t count_loop_nests(const ir::Function& fn) {
  std::size_t count = 0;
  for (const auto& op : fn.entry()) count += op->name() == "kernel.for";
  return count;
}

Status tile_innermost(ir::Function& fn, std::size_t nest_index, int factor) {
  if (factor < 2) return InvalidArgument("tile factor must be >= 2");
  EVEREST_ASSIGN_OR_RETURN(std::vector<Operation*> chain,
                           nest_chain(fn, nest_index));
  Operation* inner = chain.back();
  const std::int64_t lb = inner->int_attr("lb");
  const std::int64_t ub = inner->int_attr("ub");
  const std::int64_t step = inner->int_attr("step", 1);
  if (lb != 0 || step != 1) {
    return FailedPrecondition("tiling requires lb=0, step=1");
  }
  if (ub % factor != 0) {
    return FailedPrecondition("trip count " + std::to_string(ub) +
                              " not divisible by tile factor " +
                              std::to_string(factor));
  }
  Block& old_body = inner->region(0).front();

  // The old loop becomes the tile loop; a fresh inner loop takes the body.
  inner->set_attr("ub", Attribute::integer(ub / factor));
  inner->set_attr("ev.tiled", Attribute::boolean(true));

  auto new_for = std::make_unique<Operation>(
      "kernel.for", std::vector<Value>{}, std::vector<Type>{},
      ir::AttrMap{{"lb", Attribute::integer(0)},
                  {"ub", Attribute::integer(factor)},
                  {"step", Attribute::integer(1)}});
  Block& new_body = new_for->emplace_region().emplace_block({Type::index()});

  // Move the whole old body into the new inner loop.
  while (!old_body.empty()) {
    new_body.append(old_body.take(0));
  }
  // Rebuild the original induction variable: iv = it*factor + ii.
  OpBuilder b;
  b.set_insertion_point(&new_body, 0);
  Value tile_width = b.constant_index(factor);
  Value scaled = b.create_value("kernel.binop", {old_body.arg(0), tile_width},
                                Type::index(), {{"op", Attribute::string("mul")}});
  Value rebuilt = b.create_value("kernel.binop", {scaled, new_body.arg(0)},
                                 Type::index(), {{"op", Attribute::string("add")}});
  // Replace downstream uses of the old iv (skip the rebuild ops themselves).
  for (std::size_t i = 3; i < new_body.size(); ++i) {
    Operation& op = new_body.op(i);
    for (std::size_t k = 0; k < op.num_operands(); ++k) {
      if (op.operand(k) == old_body.arg(0)) op.set_operand(k, rebuilt);
    }
    for (std::size_t r = 0; r < op.num_regions(); ++r) {
      for (auto& nested : op.region(r)) {
        ir::replace_all_uses(*nested, old_body.arg(0), rebuilt);
      }
    }
  }
  // Old body now holds just the inner loop + a yield.
  Operation& inserted = old_body.append(std::move(new_for));
  (void)inserted;
  OpBuilder yb(&old_body);
  yb.create("kernel.yield", {}, {});
  return OkStatus();
}

Status interchange_loops(ir::Function& fn, std::size_t nest_index,
                         std::size_t a, std::size_t b) {
  EVEREST_ASSIGN_OR_RETURN(std::vector<Operation*> chain,
                           nest_chain(fn, nest_index));
  if (a >= chain.size() || b >= chain.size()) {
    return OutOfRange("loop level out of range");
  }
  if (a == b) return OkStatus();

  // Legality: exact direction-vector test — every lexicographically
  // positive dependence must stay positive after the permutation.
  EVEREST_ASSIGN_OR_RETURN(std::vector<DependenceVector> dependences,
                           analyze_dependences(fn, nest_index));
  if (!interchange_is_legal(dependences, a, b)) {
    return FailedPrecondition(
        "interchange would reverse a loop-carried dependence");
  }

  // Swap bounds.
  Operation* la = chain[a];
  Operation* lb_op = chain[b];
  for (const char* key : {"lb", "ub", "step"}) {
    const Attribute* va = la->attr(key);
    const Attribute* vb = lb_op->attr(key);
    Attribute ta = va ? *va : Attribute::integer(key == std::string("step") ? 1 : 0);
    Attribute tb = vb ? *vb : Attribute::integer(key == std::string("step") ? 1 : 0);
    la->set_attr(key, tb);
    lb_op->set_attr(key, ta);
  }
  // Swap uses of the two induction variables everywhere in the nest.
  Value iva = chain[a]->region(0).front().arg(0);
  Value ivb = chain[b]->region(0).front().arg(0);
  chain.front()->walk([&](Operation& op) {
    for (std::size_t k = 0; k < op.num_operands(); ++k) {
      if (op.operand(k) == iva) {
        op.set_operand(k, ivb);
      } else if (op.operand(k) == ivb) {
        op.set_operand(k, iva);
      }
    }
  });
  return OkStatus();
}

}  // namespace everest::compiler
