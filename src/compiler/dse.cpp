#include "compiler/dse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace everest::compiler {

namespace {

/// a dominates b: no worse on all enabled objectives, better on one.
bool dominates(const Variant& a, const Variant& b,
               const DseObjectives& objectives) {
  bool better = false;
  auto check = [&](double va, double vb) {
    if (va > vb) return false;  // worse
    if (va < vb) better = true;
    return true;
  };
  if (objectives.latency && !check(a.latency_us, b.latency_us)) return false;
  if (objectives.energy && !check(a.energy_uj, b.energy_uj)) return false;
  if (objectives.area && !check(a.area_fraction, b.area_fraction)) return false;
  return better;
}

}  // namespace

std::vector<std::size_t> pareto_front(const std::vector<Variant>& variants,
                                      const DseObjectives& objectives) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < variants.size() && !dominated; ++j) {
      if (i != j) dominated = dominates(variants[j], variants[i], objectives);
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<Variant> pareto_variants(const std::vector<Variant>& variants,
                                     const DseObjectives& objectives) {
  std::vector<Variant> out;
  for (std::size_t i : pareto_front(variants, objectives)) {
    out.push_back(variants[i]);
  }
  return out;
}

std::size_t knee_point(const std::vector<Variant>& variants) {
  if (variants.empty()) return static_cast<std::size_t>(-1);
  double min_lat = std::numeric_limits<double>::infinity();
  double max_lat = 0, min_en = std::numeric_limits<double>::infinity(),
         max_en = 0;
  for (const Variant& v : variants) {
    min_lat = std::min(min_lat, v.latency_us);
    max_lat = std::max(max_lat, v.latency_us);
    min_en = std::min(min_en, v.energy_uj);
    max_en = std::max(max_en, v.energy_uj);
  }
  const double lat_range = std::max(max_lat - min_lat, 1e-12);
  const double en_range = std::max(max_en - min_en, 1e-12);
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const double dl = (variants[i].latency_us - min_lat) / lat_range;
    const double de = (variants[i].energy_uj - min_en) / en_range;
    const double dist = std::sqrt(dl * dl + de * de);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

}  // namespace everest::compiler
