#include "compiler/analysis.hpp"

#include <algorithm>

#include "dsl/einsum.hpp"

namespace everest::compiler {

namespace {

double tensor_bytes(const ir::Type& t) {
  return t.is_shaped() ? static_cast<double>(t.byte_size()) : 8.0;
}

Status profile_op(const ir::Operation& op, KernelProfile& out) {
  const std::string& name = op.name();
  auto operand_bytes = [&] {
    double sum = 0.0;
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      sum += tensor_bytes(op.operand(i).type());
    }
    return sum;
  };
  auto result_bytes = [&] {
    double sum = 0.0;
    for (const ir::Type& t : op.result_types()) sum += tensor_bytes(t);
    return sum;
  };
  auto result_elems = [&]() -> double {
    if (op.num_results() == 0) return 0.0;
    const ir::Type& t = op.result_types()[0];
    return t.is_shaped() ? static_cast<double>(t.num_elements()) : 1.0;
  };

  if (name == "tensor.add" || name == "tensor.sub" || name == "tensor.mul" ||
      name == "tensor.div" || name == "tensor.scale") {
    out.flops += result_elems();
    out.bytes_read += operand_bytes();
    out.bytes_written += result_bytes();
    return OkStatus();
  }
  if (name == "tensor.map") {
    const std::string fn = op.str_attr("fn");
    if (fn == "relu" || fn == "abs" || fn == "neg") {
      out.flops += result_elems();
    } else {
      out.special_ops += result_elems();
    }
    out.bytes_read += operand_bytes();
    out.bytes_written += result_bytes();
    return OkStatus();
  }
  if (name == "tensor.matmul") {
    const auto& a = op.operand(0).type();
    const auto& b = op.operand(1).type();
    out.flops += 2.0 * double(a.shape()[0]) * double(a.shape()[1]) *
                 double(b.shape()[1]);
    out.bytes_read += operand_bytes();
    out.bytes_written += result_bytes();
    return OkStatus();
  }
  if (name == "tensor.contract") {
    EVEREST_ASSIGN_OR_RETURN(dsl::EinsumSpec spec,
                             dsl::parse_einsum(op.str_attr("spec")));
    std::vector<std::vector<std::int64_t>> shapes;
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      shapes.push_back(op.operand(i).type().shape());
    }
    EVEREST_ASSIGN_OR_RETURN(std::int64_t mac,
                             dsl::contraction_flops(spec, shapes));
    out.flops += 2.0 * static_cast<double>(mac);
    out.bytes_read += operand_bytes();
    out.bytes_written += result_bytes();
    return OkStatus();
  }
  if (name == "tensor.reduce") {
    out.flops += static_cast<double>(
        op.operand(0).type().num_elements());
    out.bytes_read += operand_bytes();
    out.bytes_written += result_bytes();
    return OkStatus();
  }
  if (name == "tensor.transpose" || name == "tensor.reshape" ||
      name == "tensor.broadcast") {
    out.bytes_read += operand_bytes();
    out.bytes_written += result_bytes();
    return OkStatus();
  }
  if (name == "tensor.constant") {
    out.bytes_read += result_bytes();
    return OkStatus();
  }
  // builtin/workflow/etc.: no datapath cost here.
  return OkStatus();
}

}  // namespace

Result<KernelProfile> profile_kernel(const ir::Function& fn) {
  KernelProfile out;
  Status st = OkStatus();
  std::int64_t live = 0;
  // const_cast: walk is non-const but does not mutate through our callback.
  auto& mutable_fn = const_cast<ir::Function&>(fn);
  mutable_fn.walk([&](ir::Operation& op) {
    if (!st.ok()) return;
    st = profile_op(op, out);
    for (const ir::Type& t : op.result_types()) {
      if (t.is_shaped()) live += t.byte_size();
    }
  });
  EVEREST_RETURN_IF_ERROR(st);
  for (const ir::Type& t : fn.input_types()) {
    if (t.is_shaped()) live += t.byte_size();
  }
  out.live_bytes = live;
  return out;
}

Result<std::map<std::string, KernelProfile>> profile_module(
    const ir::Module& module) {
  std::map<std::string, KernelProfile> out;
  for (const auto& fn : module) {
    EVEREST_ASSIGN_OR_RETURN(KernelProfile profile, profile_kernel(*fn));
    out.emplace(fn->name(), profile);
  }
  return out;
}

}  // namespace everest::compiler
