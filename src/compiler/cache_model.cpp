#include "compiler/cache_model.hpp"

#include <algorithm>
#include <map>

namespace everest::compiler {

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  const std::int64_t lines =
      std::max<std::int64_t>(1, config_.size_kib * 1024 / config_.line_bytes);
  config_.ways = std::clamp<std::int64_t>(config_.ways, 1, lines);
  num_sets_ = std::max<std::int64_t>(1, lines / config_.ways);
  tags_.assign(static_cast<std::size_t>(num_sets_),
               std::vector<std::uint64_t>(
                   static_cast<std::size_t>(config_.ways), ~0ULL));
  stamps_.assign(static_cast<std::size_t>(num_sets_),
                 std::vector<std::uint64_t>(
                     static_cast<std::size_t>(config_.ways), 0));
}

bool CacheSim::access(std::uint64_t address) {
  ++accesses_;
  ++clock_;
  const std::uint64_t line = address / static_cast<std::uint64_t>(config_.line_bytes);
  const auto set = static_cast<std::size_t>(
      line % static_cast<std::uint64_t>(num_sets_));
  const std::uint64_t tag = line / static_cast<std::uint64_t>(num_sets_);
  auto& set_tags = tags_[set];
  auto& set_stamps = stamps_[set];
  for (std::size_t w = 0; w < set_tags.size(); ++w) {
    if (set_tags[w] == tag) {
      set_stamps[w] = clock_;
      return true;
    }
  }
  ++misses_;
  // Evict LRU way.
  std::size_t victim = 0;
  for (std::size_t w = 1; w < set_tags.size(); ++w) {
    if (set_stamps[w] < set_stamps[victim]) victim = w;
  }
  set_tags[victim] = tag;
  set_stamps[victim] = clock_;
  return false;
}

Result<CacheStats> simulate_kernel_cache(ir::Function& fn,
                                         std::size_t nest_index,
                                         const CacheConfig& config,
                                         std::uint64_t max_accesses) {
  EVEREST_ASSIGN_OR_RETURN(AffineNest nest,
                           collect_affine_nest(fn, nest_index));
  for (const AffineReference& ref : nest.references) {
    if (!ref.analyzable) {
      return FailedPrecondition(
          "nest has non-affine references; cannot build a trace");
    }
  }
  // Disjoint base addresses per array, 64-byte aligned.
  std::map<std::string, std::uint64_t> base_of;
  std::uint64_t next_base = 1 << 20;
  for (const AffineReference& ref : nest.references) {
    if (base_of.count(ref.array) > 0) continue;
    std::int64_t elems = 1;
    for (std::int64_t d : ref.array_shape) elems *= d;
    base_of[ref.array] = next_base;
    next_base += static_cast<std::uint64_t>((elems * 8 + 4095) / 4096 + 1) * 4096;
  }

  CacheSim cache(config);
  CacheStats stats;
  const std::size_t levels = nest.lb.size();
  std::vector<std::int64_t> iv = nest.lb;
  bool done = levels == 0;
  while (!done) {
    for (const AffineReference& ref : nest.references) {
      // Linearize the subscripts row-major over the array shape.
      std::int64_t flat = 0;
      for (std::size_t d = 0; d < ref.dim_coeffs.size(); ++d) {
        std::int64_t idx = ref.dim_consts[d];
        for (std::size_t l = 0; l < levels; ++l) {
          idx += ref.dim_coeffs[d][l] * iv[l];
        }
        flat = flat * ref.array_shape[d] + idx;
      }
      const std::uint64_t address =
          base_of[ref.array] + static_cast<std::uint64_t>(flat) * 8;
      cache.access(address);
      if (cache.accesses() >= max_accesses) {
        stats.truncated = true;
        done = true;
        break;
      }
    }
    if (done) break;
    // Advance the iteration vector (innermost fastest).
    std::size_t l = levels;
    while (l-- > 0) {
      iv[l] += nest.step[l] > 0 ? nest.step[l] : 1;
      if (iv[l] < nest.ub[l]) break;
      iv[l] = nest.lb[l];
      if (l == 0) done = true;
    }
  }
  stats.accesses = cache.accesses();
  stats.misses = cache.misses();
  stats.miss_rate = cache.miss_rate();
  stats.dram_bytes =
      static_cast<double>(cache.misses()) * double(config.line_bytes);
  return stats;
}

}  // namespace everest::compiler
