// Reference interpreter for the EVEREST IR. Executes tensor-dialect
// functions (value semantics) and kernel-dialect functions (buffer
// semantics) on f64 data. Used by the test suite to prove that the
// tensor→kernel lowering and the loop transformations (tiling,
// interchange) preserve semantics, and by the examples to actually run
// compiled kernels.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::compiler {

/// A runtime tensor value: shape + row-major f64 data.
struct TensorValue {
  std::vector<std::int64_t> shape;
  std::vector<double> data;

  [[nodiscard]] std::int64_t num_elements() const {
    std::int64_t n = 1;
    for (std::int64_t d : shape) n *= d;
    return n;
  }
  static TensorValue zeros(std::vector<std::int64_t> shape);
  static TensorValue from(std::vector<std::int64_t> shape,
                          std::vector<double> data);
};

/// Executes a tensor-dialect function on the given inputs (one TensorValue
/// per function argument). Returns one value per function result.
Result<std::vector<TensorValue>> run_tensor_function(
    const ir::Module& module, const std::string& function,
    const std::vector<TensorValue>& inputs);

/// Executes a kernel-dialect function produced by lower_to_kernel. The
/// caller passes values for the original inputs and for the promoted
/// constants IN SIGNATURE ORDER (inputs..., constants...); output buffers
/// are allocated internally and returned (one per original output).
Result<std::vector<TensorValue>> run_kernel_function(
    ir::Module& module, const std::string& function,
    const std::vector<TensorValue>& inputs_and_constants);

/// Extracts the promoted-constant payloads of a lowered kernel's source
/// tensor function, in promotion order (so callers can bind them).
Result<std::vector<TensorValue>> promoted_constant_values(
    const ir::Module& module, const std::string& tensor_function);

}  // namespace everest::compiler
