// Variant generation (paper §III-B: "multiple hardware and software
// variants ... performance/energy trade-offs that are exposed to the
// runtime system"). Software variants sweep threading/tiling/layout knobs
// through a roofline-style CPU model; hardware variants sweep HLS
// configurations through the HLS estimator.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"
#include "compiler/analysis.hpp"
#include "hls/hls.hpp"
#include "ir/module.hpp"

namespace everest::compiler {

/// Analytical CPU node model (roofline: compute vs memory bound).
struct CpuModel {
  std::string name = "generic";
  int cores = 8;
  double peak_gflops_per_core = 8.0;   // f64, SIMD
  double mem_bw_gbps = 25.6;           // saturated DRAM bandwidth
  double l2_kib_per_core = 512.0;
  double special_op_cost = 8.0;        // exp/log/... in flop-equivalents
  double active_power_w = 90.0;
  double idle_power_w = 25.0;

  /// POWER9-class cloud node (paper §V).
  static CpuModel power9();
  /// ARM edge node.
  static CpuModel edge_arm();
};

/// Execution target of a variant.
enum class TargetKind : std::uint8_t { kCpu, kFpga };

std::string_view to_string(TargetKind kind);

/// One pre-generated implementation of a kernel with estimated metrics.
/// This is the meta-information handed to the runtime for dynamic
/// selection (paper §IV).
struct Variant {
  std::string id;       // unique within a kernel, e.g. "cpu-t4-tile64-soa"
  std::string kernel;   // tensor-function name
  TargetKind target = TargetKind::kCpu;

  // Software knobs.
  int threads = 1;
  int tile = 0;              // 0 = untiled
  std::string layout = "soa";

  // Hardware knobs.
  int unroll = 1;
  std::string device;        // FPGA device name ("" for CPU)
  bool dift = false;
  std::string encrypted;     // crypto algo or ""

  // Shape specialization (the JIT compile↔serve loop). 0 = generic code,
  // valid at any data scale. >0 = the code was specialized (tile choice,
  // layout conversion, unrolled remainder elision) for inputs whose
  // data-volume scale sits near this value; the runtime only selects it
  // when the live data_scale falls inside the specialization window
  // (runtime::specialization_matches).
  double specialized_scale = 0.0;

  // Estimated metrics (compute only; link transfer is the runtime's job).
  double latency_us = 0.0;
  double energy_uj = 0.0;
  double area_fraction = 0.0;  // FPGA utilization, 0 for CPU
  double bytes_in = 0.0;
  double bytes_out = 0.0;

  [[nodiscard]] json::Value to_json() const;
  static Result<Variant> from_json(const json::Value& v);
};

/// The knob space the generator sweeps.
struct VariantSpace {
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<int> tile_sizes = {0, 32, 128};
  std::vector<std::string> layouts = {"soa", "aos"};
  std::vector<int> unroll_factors = {1, 2, 4, 8};
  std::vector<hls::FpgaDevice> devices;  // empty = no hardware variants
  bool with_dift = false;
  std::string with_encryption;  // "" = no encrypted variants
};

/// Estimates one software configuration (visible for testing/benches).
struct SwEstimate {
  double latency_us = 0.0;
  double energy_uj = 0.0;
  double compute_us = 0.0;
  double memory_us = 0.0;
};
SwEstimate estimate_software(const KernelProfile& profile, const CpuModel& cpu,
                             int threads, int tile, const std::string& layout);

/// Generates the full variant set for `tensor_fn` inside `module`. Hardware
/// variants require the kernel lowering; it is created on demand (function
/// `<name>_kernel`). Designs that do not fit a device are skipped.
Result<std::vector<Variant>> generate_variants(ir::Module& module,
                                               const std::string& tensor_fn,
                                               const VariantSpace& space,
                                               const CpuModel& cpu);

/// Serializes variants for the runtime (paper Fig. 1 "variant metadata").
json::Value variants_to_json(const std::vector<Variant>& variants);
Result<std::vector<Variant>> variants_from_json(const json::Value& v);

}  // namespace everest::compiler
