#include "compiler/lowering.hpp"

#include <map>
#include <set>
#include <vector>

#include "dsl/einsum.hpp"
#include "ir/builder.hpp"
#include "ir/dialect.hpp"

namespace everest::compiler {

namespace {

using ir::Attribute;
using ir::Block;
using ir::MemorySpace;
using ir::OpBuilder;
using ir::Operation;
using ir::ScalarKind;
using ir::Type;
using ir::Value;

struct ValueKey {
  const void* def;
  unsigned index;
  bool operator<(const ValueKey& other) const {
    return def != other.def ? def < other.def : index < other.index;
  }
};

ValueKey key_of(const Value& v) {
  if (v.is_op_result()) return {v.defining_op(), v.index()};
  return {v.owner_block(), v.index() + (1u << 30)};
}

bool is_elementwise(const Operation& op) {
  const std::string& n = op.name();
  return n == "tensor.add" || n == "tensor.sub" || n == "tensor.mul" ||
         n == "tensor.div" || n == "tensor.map" || n == "tensor.scale";
}

/// A generated loop nest: builders positioned in the innermost body plus
/// the induction variables outer→inner.
struct Nest {
  OpBuilder body;
  std::vector<Value> ivs;
};

/// Emits a perfect loop nest over `extents` at the current insertion point
/// of `fn_builder`. Rank-0 gets one single-iteration loop with an unused iv.
Nest emit_nest(OpBuilder& fn_builder, std::vector<std::int64_t> extents) {
  if (extents.empty()) extents = {1};
  Nest nest;
  OpBuilder* current = &fn_builder;
  OpBuilder storage;  // reused as we descend
  std::vector<Block*> bodies;
  for (std::int64_t extent : extents) {
    Operation& loop = current->create("kernel.for", {}, {},
                                      {{"lb", Attribute::integer(0)},
                                       {"ub", Attribute::integer(extent)},
                                       {"step", Attribute::integer(1)}});
    Block& body = loop.emplace_region().emplace_block({Type::index()});
    bodies.push_back(&body);
    nest.ivs.push_back(body.arg(0));
    storage = OpBuilder(&body);
    current = &storage;
  }
  nest.body = *current;
  // Close every level with kernel.yield after the caller fills the body:
  // the caller must call close(); we instead append yields lazily via
  // a helper below.
  (void)bodies;
  return nest;
}

/// Appends kernel.yield terminators to every open loop under `fn_builder`'s
/// last created nest. We simply walk the op that was just created.
void close_nest(Operation& top_loop) {
  Operation* current = &top_loop;
  while (true) {
    Block& body = current->region(0).front();
    Operation* nested = nullptr;
    for (auto& op : body) {
      if (op->name() == "kernel.for") nested = op.get();
    }
    OpBuilder b(&body);
    b.create("kernel.yield", {}, {});
    if (nested == nullptr) break;
    current = nested;
  }
}

class KernelLowerer {
 public:
  KernelLowerer(ir::Module& module, ir::Function& src,
                const LoweringOptions& options)
      : module_(module), src_(src), options_(options) {}

  Result<std::string> run() {
    EVEREST_RETURN_IF_ERROR(validate());
    compute_uses();
    mark_fused();
    EVEREST_RETURN_IF_ERROR(build_signature());
    EVEREST_RETURN_IF_ERROR(lower_body());
    return dst_->name();
  }

 private:
  Status validate() {
    if (src_.body().num_blocks() != 1) {
      return InvalidArgument("tensor functions must have a single block");
    }
    for (const auto& op : src_.entry()) {
      const std::string& n = op->name();
      if (n.rfind("tensor.", 0) == 0) {
        if (n == "tensor.broadcast") {
          return Unimplemented("lowering of '" + n + "' is not supported yet");
        }
        continue;
      }
      if (n == "builtin.constant" || n == "builtin.return") continue;
      return InvalidArgument("cannot lower op '" + n + "' to kernel dialect");
    }
    return OkStatus();
  }

  void compute_uses() {
    for (const auto& op : src_.entry()) {
      for (std::size_t i = 0; i < op->num_operands(); ++i) {
        ++uses_[key_of(op->operand(i))];
      }
    }
  }

  void mark_fused() {
    if (!options_.fuse_elementwise) return;
    // A producer fuses into its consumer when it is elementwise, has
    // exactly one use, and that use is an elementwise op (scan consumers).
    for (const auto& op : src_.entry()) {
      if (!is_elementwise(*op)) continue;
      for (std::size_t i = 0; i < op->num_operands(); ++i) {
        const Value& v = op->operand(i);
        if (!v.is_op_result()) continue;
        const Operation* producer = v.defining_op();
        if (!is_elementwise(*producer)) continue;
        if (uses_[key_of(v)] != 1) continue;
        fused_.insert(producer);
      }
    }
  }

  Status build_signature() {
    std::vector<Type> params;
    // Inputs.
    for (const Type& t : src_.input_types()) {
      params.push_back(Type::memref(t.shape(), t.elem(), MemorySpace::kDevice));
    }
    // Promoted constants (in program order).
    for (const auto& op : src_.entry()) {
      if (op->name() != "tensor.constant") continue;
      const Type& t = op->result_types()[0];
      promoted_.push_back(op.get());
      params.push_back(Type::memref(t.shape(), t.elem(), MemorySpace::kDevice));
    }
    // Outputs.
    const Operation& ret = src_.entry().back();
    if (ret.name() != "builtin.return") {
      return InvalidArgument("tensor function must end with builtin.return");
    }
    for (std::size_t i = 0; i < ret.num_operands(); ++i) {
      const Type& t = ret.operand(i).type();
      params.push_back(Type::memref(t.shape(), t.elem(), MemorySpace::kDevice));
    }
    EVEREST_ASSIGN_OR_RETURN(
        dst_, module_.add_function(src_.name() + options_.suffix,
                                   Type::function(params, {})));
    dst_->set_attr("ev.lowered_from", Attribute::string(src_.name()));
    dst_->set_attr("ev.num_inputs",
                   Attribute::integer(
                       static_cast<std::int64_t>(src_.input_types().size())));
    dst_->set_attr("ev.promoted_constants",
                   Attribute::integer(
                       static_cast<std::int64_t>(promoted_.size())));
    dst_->set_attr("ev.num_outputs",
                   Attribute::integer(
                       static_cast<std::int64_t>(ret.num_operands())));
    for (const auto& [k, v] : src_.attributes()) dst_->set_attr(k, v);

    // Buffer map: source args and promoted constants.
    for (unsigned i = 0; i < src_.entry().num_args(); ++i) {
      buffer_[key_of(const_cast<ir::Function&>(src_).arg(i))] = dst_->arg(i);
    }
    const unsigned base = src_.entry().num_args();
    for (std::size_t k = 0; k < promoted_.size(); ++k) {
      buffer_[{promoted_[k], 0}] = dst_->arg(base + static_cast<unsigned>(k));
    }
    out_arg_base_ = base + static_cast<unsigned>(promoted_.size());
    return OkStatus();
  }

  /// Destination buffer for a materialized op result: an output arg when
  /// the value is returned, else a fresh on-chip alloc.
  Value dest_buffer_for(Operation& op, OpBuilder& b) {
    const Operation& ret = src_.entry().back();
    for (std::size_t i = 0; i < ret.num_operands(); ++i) {
      if (ret.operand(i) == op.result(0)) {
        return dst_->arg(out_arg_base_ + static_cast<unsigned>(i));
      }
    }
    const Type& t = op.result_types()[0];
    return b.create_value("kernel.alloc", {},
                          Type::memref(t.shape(), t.elem(),
                                       MemorySpace::kOnChip));
  }

  /// Scalar evaluation of an elementwise expression tree in a nest body.
  Result<Value> emit_scalar(const Value& v, OpBuilder& body,
                            const std::vector<Value>& ivs) {
    // Materialized value → load.
    auto it = buffer_.find(key_of(v));
    if (it != buffer_.end()) {
      std::vector<Value> operands = {it->second};
      const std::size_t rank = it->second.type().rank();
      for (std::size_t d = 0; d < rank; ++d) operands.push_back(ivs[d]);
      return body.create_value("kernel.load", std::move(operands), Type::f64());
    }
    if (!v.is_op_result()) {
      return Internal("unmaterialized block argument in elementwise tree");
    }
    Operation* def = v.defining_op();
    if (def->name() == "builtin.constant") {
      return body.constant_f64(def->double_attr("value"));
    }
    if (def->name() == "tensor.map") {
      EVEREST_ASSIGN_OR_RETURN(Value x, emit_scalar(def->operand(0), body, ivs));
      return body.create_value("kernel.unop", {x}, Type::f64(),
                               {{"fn", Attribute::string(def->str_attr("fn"))}});
    }
    if (def->name() == "tensor.scale") {
      EVEREST_ASSIGN_OR_RETURN(Value x, emit_scalar(def->operand(0), body, ivs));
      EVEREST_ASSIGN_OR_RETURN(Value f, emit_scalar(def->operand(1), body, ivs));
      return body.create_value("kernel.binop", {x, f}, Type::f64(),
                               {{"op", Attribute::string("mul")}});
    }
    // Binary elementwise.
    const std::string kind = def->name().substr(std::string("tensor.").size());
    EVEREST_ASSIGN_OR_RETURN(Value a, emit_scalar(def->operand(0), body, ivs));
    EVEREST_ASSIGN_OR_RETURN(Value b2, emit_scalar(def->operand(1), body, ivs));
    return body.create_value("kernel.binop", {a, b2}, Type::f64(),
                             {{"op", Attribute::string(kind)}});
  }

  /// Store `scalar` into buffer at the nest indices.
  static void emit_store(OpBuilder& body, Value scalar, Value buffer,
                         const std::vector<Value>& ivs) {
    std::vector<Value> operands = {scalar, buffer};
    const std::size_t rank = buffer.type().rank();
    for (std::size_t d = 0; d < rank; ++d) operands.push_back(ivs[d]);
    body.create("kernel.store", std::move(operands), {});
  }

  Operation& last_top_op() {
    return dst_->entry().back();
  }

  Status lower_elementwise(Operation& op, OpBuilder& b) {
    Value dest = dest_buffer_for(op, b);
    Nest nest = emit_nest(b, op.result_types()[0].shape());
    Operation& top = last_top_op();
    EVEREST_ASSIGN_OR_RETURN(Value scalar,
                             emit_scalar(op.result(0), nest.body, nest.ivs));
    emit_store(nest.body, scalar, dest, nest.ivs);
    close_nest(top);
    buffer_[key_of(op.result(0))] = dest;
    return OkStatus();
  }

  /// Loads operand `v` (must be materialized) at the given index values.
  Result<Value> load_at(const Value& v, OpBuilder& body,
                        const std::vector<Value>& indices) {
    auto it = buffer_.find(key_of(v));
    if (it == buffer_.end()) return Internal("operand not materialized");
    std::vector<Value> operands = {it->second};
    for (const Value& idx : indices) operands.push_back(idx);
    return body.create_value("kernel.load", std::move(operands), Type::f64());
  }

  Status emit_zero_init(Value dest, OpBuilder& b) {
    Nest nest = emit_nest(b, dest.type().shape());
    Operation& top = last_top_op();
    Value zero = nest.body.constant_f64(0.0);
    emit_store(nest.body, zero, dest, nest.ivs);
    close_nest(top);
    return OkStatus();
  }

  Status lower_matmul(Operation& op, OpBuilder& b) {
    Value dest = dest_buffer_for(op, b);
    EVEREST_RETURN_IF_ERROR(emit_zero_init(dest, b));
    const auto& a_shape = op.operand(0).type().shape();
    const auto& b_shape = op.operand(1).type().shape();
    // i,k,j order: the reduction (k) is NOT innermost, so the C[i,j]
    // accumulation advances with j and the pipeline reaches II=1 (the
    // classic HLS-friendly matmul form).
    Nest nest = emit_nest(b, {a_shape[0], a_shape[1], b_shape[1]});
    Operation& top = last_top_op();
    const Value i = nest.ivs[0], k = nest.ivs[1], j = nest.ivs[2];
    EVEREST_ASSIGN_OR_RETURN(Value a, load_at(op.operand(0), nest.body, {i, k}));
    EVEREST_ASSIGN_OR_RETURN(Value bv, load_at(op.operand(1), nest.body, {k, j}));
    std::vector<Value> c_ops = {dest, i, j};
    Value c = nest.body.create_value("kernel.load", c_ops, Type::f64());
    Value prod = nest.body.create_value("kernel.binop", {a, bv}, Type::f64(),
                                        {{"op", Attribute::string("mul")}});
    Value sum = nest.body.create_value("kernel.binop", {c, prod}, Type::f64(),
                                       {{"op", Attribute::string("add")}});
    emit_store(nest.body, sum, dest, {i, j});
    close_nest(top);
    buffer_[key_of(op.result(0))] = dest;
    return OkStatus();
  }

  Status lower_contract(Operation& op, OpBuilder& b) {
    EVEREST_ASSIGN_OR_RETURN(dsl::EinsumSpec spec,
                             dsl::parse_einsum(op.str_attr("spec")));
    std::vector<std::vector<std::int64_t>> shapes;
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      shapes.push_back(op.operand(i).type().shape());
    }
    EVEREST_ASSIGN_OR_RETURN(auto extents,
                             dsl::infer_index_extents(spec, shapes));
    Value dest = dest_buffer_for(op, b);
    EVEREST_RETURN_IF_ERROR(emit_zero_init(dest, b));

    // Loop order: contracted letters outside, output letters innermost, so
    // the accumulator address advances with the innermost loop (II=1).
    std::string order = spec.contracted_indices() + spec.output;
    std::vector<std::int64_t> loop_extents;
    for (char c : order) loop_extents.push_back(extents.at(c));
    Nest nest = emit_nest(b, loop_extents);
    Operation& top = last_top_op();
    std::map<char, Value> iv_of;
    for (std::size_t d = 0; d < order.size(); ++d) iv_of[order[d]] = nest.ivs[d];

    // Multiply all operands together.
    Value product;
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      std::vector<Value> indices;
      for (char c : spec.inputs[i]) indices.push_back(iv_of.at(c));
      EVEREST_ASSIGN_OR_RETURN(Value x, load_at(op.operand(i), nest.body, indices));
      product = product.valid()
                    ? nest.body.create_value("kernel.binop", {product, x},
                                             Type::f64(),
                                             {{"op", Attribute::string("mul")}})
                    : x;
    }
    std::vector<Value> out_indices;
    for (char c : spec.output) out_indices.push_back(iv_of.at(c));
    std::vector<Value> load_ops = {dest};
    for (const Value& idx : out_indices) load_ops.push_back(idx);
    Value acc = nest.body.create_value("kernel.load", load_ops, Type::f64());
    Value sum = nest.body.create_value("kernel.binop", {acc, product},
                                       Type::f64(),
                                       {{"op", Attribute::string("add")}});
    emit_store(nest.body, sum, dest, out_indices);
    close_nest(top);
    buffer_[key_of(op.result(0))] = dest;
    return OkStatus();
  }

  Status lower_reduce(Operation& op, OpBuilder& b) {
    const std::string kind = op.str_attr("kind");
    Value dest = dest_buffer_for(op, b);
    if (kind == "max" || kind == "min") {
      // Initialize with the first element so negative data reduces correctly.
      Nest init = emit_nest(b, {});
      Operation& init_top = last_top_op();
      std::vector<Value> load_ops = {buffer_.at(key_of(op.operand(0)))};
      for (std::size_t d = 0; d < op.operand(0).type().rank(); ++d) {
        load_ops.push_back(init.body.constant_index(0));
      }
      Value first =
          init.body.create_value("kernel.load", std::move(load_ops), Type::f64());
      emit_store(init.body, first, dest, {});
      close_nest(init_top);
    } else {
      EVEREST_RETURN_IF_ERROR(emit_zero_init(dest, b));
    }
    const auto& in_shape = op.operand(0).type().shape();
    Nest nest = emit_nest(b, in_shape);
    Operation& top = last_top_op();
    EVEREST_ASSIGN_OR_RETURN(Value x, load_at(op.operand(0), nest.body, nest.ivs));
    Value acc = nest.body.create_value("kernel.load", {dest}, Type::f64());
    const std::string binop =
        (kind == "max") ? "max" : (kind == "min") ? "min" : "add";
    Value next = nest.body.create_value("kernel.binop", {acc, x}, Type::f64(),
                                        {{"op", Attribute::string(binop)}});
    emit_store(nest.body, next, dest, {});
    close_nest(top);
    if (kind == "mean") {
      const double inv_n =
          1.0 / static_cast<double>(op.operand(0).type().num_elements());
      Nest fix = emit_nest(b, {});
      Operation& fix_top = last_top_op();
      Value sum = fix.body.create_value("kernel.load", {dest}, Type::f64());
      Value f = fix.body.constant_f64(inv_n);
      Value mean = fix.body.create_value("kernel.binop", {sum, f}, Type::f64(),
                                         {{"op", Attribute::string("mul")}});
      emit_store(fix.body, mean, dest, {});
      close_nest(fix_top);
    }
    buffer_[key_of(op.result(0))] = dest;
    return OkStatus();
  }

  Status lower_transpose(Operation& op, OpBuilder& b) {
    const auto perm = op.attr("perm")->as_int_array();
    Value dest = dest_buffer_for(op, b);
    Nest nest = emit_nest(b, op.result_types()[0].shape());
    Operation& top = last_top_op();
    // out[i0..] = in[j0..] with j[perm[d]] = i[d].
    std::vector<Value> in_indices(perm.size());
    for (std::size_t d = 0; d < perm.size(); ++d) {
      in_indices[static_cast<std::size_t>(perm[d])] = nest.ivs[d];
    }
    EVEREST_ASSIGN_OR_RETURN(Value x,
                             load_at(op.operand(0), nest.body, in_indices));
    emit_store(nest.body, x, dest, nest.ivs);
    close_nest(top);
    buffer_[key_of(op.result(0))] = dest;
    return OkStatus();
  }

  /// Reshape: one flat loop; per-buffer multi-dim indices are recovered
  /// with div/mod address arithmetic (non-affine for the HLS analyzer,
  /// which then falls back to conservative access modeling).
  Status lower_reshape(Operation& op, OpBuilder& b) {
    Value dest = dest_buffer_for(op, b);
    const Type& out_t = op.result_types()[0];
    const std::int64_t total = out_t.num_elements();
    Nest nest = emit_nest(b, {total});
    Operation& top = last_top_op();
    Value flat = nest.ivs[0];
    auto indices_for = [&](const std::vector<std::int64_t>& shape)
        -> std::vector<Value> {
      std::vector<Value> out;
      std::int64_t stride = 1;
      std::vector<std::int64_t> strides(shape.size(), 1);
      for (std::size_t d = shape.size(); d-- > 0;) {
        strides[d] = stride;
        stride *= shape[d];
      }
      for (std::size_t d = 0; d < shape.size(); ++d) {
        Value s = nest.body.constant_index(strides[d]);
        Value q = nest.body.create_value(
            "kernel.binop", {flat, s}, Type::index(),
            {{"op", Attribute::string("div")}});
        Value m = nest.body.constant_index(shape[d]);
        out.push_back(nest.body.create_value(
            "kernel.binop", {q, m}, Type::index(),
            {{"op", Attribute::string("mod")}}));
      }
      return out;
    };
    const Value in_buf = buffer_.at(key_of(op.operand(0)));
    std::vector<Value> load_ops = {in_buf};
    for (Value idx : indices_for(in_buf.type().shape())) {
      load_ops.push_back(idx);
    }
    Value x = nest.body.create_value("kernel.load", std::move(load_ops),
                                     Type::f64());
    emit_store(nest.body, x, dest, indices_for(dest.type().shape()));
    close_nest(top);
    buffer_[key_of(op.result(0))] = dest;
    return OkStatus();
  }

  /// Copies buffer `src` into output argument `dst` (pass-through returns).
  Status emit_copy(Value source, Value dest, OpBuilder& b) {
    Nest nest = emit_nest(b, dest.type().shape());
    Operation& top = last_top_op();
    std::vector<Value> load_ops = {source};
    for (std::size_t d = 0; d < source.type().rank(); ++d) {
      load_ops.push_back(nest.ivs[d]);
    }
    Value x = nest.body.create_value("kernel.load", load_ops, Type::f64());
    emit_store(nest.body, x, dest, nest.ivs);
    close_nest(top);
    return OkStatus();
  }

  Status lower_body() {
    OpBuilder b(&dst_->entry());
    for (auto& op : src_.entry()) {
      const std::string& n = op->name();
      if (n == "builtin.constant" || n == "tensor.constant") continue;
      if (n == "builtin.return") break;
      if (fused_.count(op.get()) > 0) continue;
      if (is_elementwise(*op)) {
        EVEREST_RETURN_IF_ERROR(lower_elementwise(*op, b));
      } else if (n == "tensor.matmul") {
        EVEREST_RETURN_IF_ERROR(lower_matmul(*op, b));
      } else if (n == "tensor.contract") {
        EVEREST_RETURN_IF_ERROR(lower_contract(*op, b));
      } else if (n == "tensor.reduce") {
        EVEREST_RETURN_IF_ERROR(lower_reduce(*op, b));
      } else if (n == "tensor.transpose") {
        EVEREST_RETURN_IF_ERROR(lower_transpose(*op, b));
      } else if (n == "tensor.reshape") {
        EVEREST_RETURN_IF_ERROR(lower_reshape(*op, b));
      } else {
        return Unimplemented("no kernel lowering for '" + n + "'");
      }
    }
    // Pass-through returns (args/constants or values already written to a
    // different buffer) get explicit copies into their output args.
    const Operation& ret = src_.entry().back();
    for (std::size_t i = 0; i < ret.num_operands(); ++i) {
      const Value out_arg = dst_->arg(out_arg_base_ + static_cast<unsigned>(i));
      auto it = buffer_.find(key_of(ret.operand(i)));
      if (it == buffer_.end()) {
        return Internal("returned value was never materialized");
      }
      if (!(it->second == out_arg)) {
        EVEREST_RETURN_IF_ERROR(emit_copy(it->second, out_arg, b));
      }
    }
    b.ret();
    return OkStatus();
  }

  ir::Module& module_;
  ir::Function& src_;
  LoweringOptions options_;
  ir::Function* dst_ = nullptr;
  std::map<ValueKey, std::size_t> uses_;
  std::set<const Operation*> fused_;
  std::vector<const Operation*> promoted_;
  std::map<ValueKey, Value> buffer_;
  unsigned out_arg_base_ = 0;
};

}  // namespace

Result<std::string> lower_to_kernel(ir::Module& module,
                                    const std::string& tensor_fn,
                                    const LoweringOptions& options) {
  ir::register_everest_dialects();
  ir::Function* fn = module.find(tensor_fn);
  if (fn == nullptr) {
    return NotFound("function '" + tensor_fn + "' not in module");
  }
  if (module.find(tensor_fn + options.suffix) != nullptr) {
    return AlreadyExists("function '" + tensor_fn + options.suffix +
                         "' already exists");
  }
  return KernelLowerer(module, *fn, options).run();
}

}  // namespace everest::compiler
