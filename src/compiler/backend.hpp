// Backend code generation (paper Fig. 1, §III-B: "the backend will generate
// software implementation relying on state-of-the-art programming models
// (e.g. SYCL) ... Meta-information about the variants will be provided to
// the runtime system").
//
// Given a workflow-dialect function and the variant chosen per kernel, the
// backend emits (a) a SYCL-flavored C++ orchestration source — CPU variants
// become parallel_for submissions, FPGA variants become everest::offload()
// calls over the right link, confidential data gets seal/unseal wrappers —
// and (b) the runtime metadata JSON. It also stamps each workflow.task op
// with an "ev.selected_variant" attribute so the annotated IR round-trips.
#pragma once

#include <map>
#include <string>

#include "common/status.hpp"
#include "compiler/variants.hpp"
#include "ir/module.hpp"

namespace everest::compiler {

/// Everything the backend hands to the build/deploy step.
struct BackendOutput {
  /// SYCL-flavored orchestration source for the workflow.
  std::string source;
  /// Variant metadata for the runtime (everest.variants.v1 JSON).
  std::string metadata_json;
  /// Tasks emitted / offloaded / sealed (for reporting).
  int tasks = 0;
  int offloaded = 0;
  int sealed = 0;
};

/// Emits code for `workflow_fn` inside `module`. `selection` maps kernel
/// symbol → chosen variant; kernels without a selection run as plain host
/// tasks. Fails if the function is missing or not a workflow function.
Result<BackendOutput> emit_backend(ir::Module& module,
                                   const std::string& workflow_fn,
                                   const std::map<std::string, Variant>& selection);

}  // namespace everest::compiler
