// Polyhedral-style data-dependence analysis for kernel loop nests (paper
// §III-B cites polyhedral-based transformations). Computes dependence
// direction vectors between memory references with per-dimension affine
// index forms, and answers loop-interchange legality questions precisely
// (falling back to "unknown ⇒ illegal" for non-affine accesses).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::compiler {

/// One dependence between two references of the same array inside a nest.
/// `dir[l]` is the direction at loop level l (0 = outermost):
///   '<' sink iterates after source, '=' same iteration,
///   '>' sink before source (only inside '*' expansions),
///   '*' unconstrained by the subscripts.
struct DependenceVector {
  std::string array;
  std::vector<char> dir;
  /// RAW (store→load), WAR (load→store), or WAW (store→store).
  std::string kind;
  /// True when the subscripts were not analyzable: assume the worst.
  bool unknown = false;
};

/// Analyzes the `nest_index`-th top-level perfect nest of `fn` and returns
/// every loop-carried or loop-independent dependence between references of
/// the same array where at least one reference is a store. Distinct
/// constant addresses (provably different elements) produce no dependence.
Result<std::vector<DependenceVector>> analyze_dependences(
    ir::Function& fn, std::size_t nest_index);

/// True if interchanging loop levels `a` and `b` keeps every dependence
/// lexicographically positive ('*' expands to {<,=,>}; vectors that were
/// not positive before the permutation are not dependences and are
/// ignored). Unknown dependences make the interchange illegal.
bool interchange_is_legal(const std::vector<DependenceVector>& dependences,
                          std::size_t a, std::size_t b);

/// True if the innermost loop carries no dependence (every vector has '='
/// or the dependence is carried by an outer '<'): the condition for
/// pipelining the innermost loop with II unconstrained by recurrences.
bool innermost_is_parallel(const std::vector<DependenceVector>& dependences);

// ---- Affine nest summary (shared with the cache model) -------------------

/// One memory reference with fully affine subscripts over the nest's
/// induction variables.
struct AffineReference {
  std::string array;                 // stable identity of the base memref
  bool is_store = false;
  /// Per array dimension: coefficients per loop level + constant.
  std::vector<std::vector<std::int64_t>> dim_coeffs;
  std::vector<std::int64_t> dim_consts;
  std::vector<std::int64_t> array_shape;
  bool analyzable = true;
};

/// Bounds + references of one perfect nest.
struct AffineNest {
  std::vector<std::int64_t> lb, ub, step;  // per level, outer→inner
  std::vector<AffineReference> references;

  [[nodiscard]] std::int64_t total_iterations() const {
    std::int64_t n = 1;
    for (std::size_t l = 0; l < lb.size(); ++l) {
      const std::int64_t s = step[l] > 0 ? step[l] : 1;
      n *= (ub[l] - lb[l] + s - 1) / s;
    }
    return n;
  }
};

/// Extracts the affine summary of the `nest_index`-th top-level nest.
Result<AffineNest> collect_affine_nest(ir::Function& fn,
                                       std::size_t nest_index);

}  // namespace everest::compiler
