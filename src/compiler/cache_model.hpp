// Trace-based cache simulation for kernel loop nests — the "high-level
// architecture models and simulators" the paper's middle-end uses to drive
// design-space exploration (§III-B, citing gem5-class simulators). The
// model replays the affine memory trace of a nest through a set-associative
// LRU cache and reports hit/miss statistics, grounding tiling decisions in
// simulated locality instead of rules of thumb.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "compiler/dependence.hpp"
#include "ir/module.hpp"

namespace everest::compiler {

/// Cache geometry.
struct CacheConfig {
  std::int64_t size_kib = 512;
  std::int64_t line_bytes = 64;
  std::int64_t ways = 8;
};

/// Set-associative LRU cache over 64-bit addresses.
class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  /// Returns true on hit; inserts on miss.
  bool access(std::uint64_t address);

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const {
    return accesses_ > 0 ? double(misses_) / double(accesses_) : 0.0;
  }
  [[nodiscard]] std::int64_t num_sets() const { return num_sets_; }

 private:
  CacheConfig config_;
  std::int64_t num_sets_;
  /// sets_[set][way] = line tag; lru_[set][way] = last-use stamp.
  std::vector<std::vector<std::uint64_t>> tags_;
  std::vector<std::vector<std::uint64_t>> stamps_;
  std::uint64_t clock_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

/// Result of replaying a nest's memory trace.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  double miss_rate = 0.0;
  /// DRAM traffic implied by the misses (bytes).
  double dram_bytes = 0.0;
  /// True when the iteration space was truncated at the cap.
  bool truncated = false;
};

/// Replays the affine access trace of the `nest_index`-th nest of `fn`
/// through a cache. Iteration is row-major over the loop levels; the trace
/// stops after `max_accesses` (the miss rate of the prefix is reported,
/// flagged as truncated). Non-affine references make the call fail.
Result<CacheStats> simulate_kernel_cache(ir::Function& fn,
                                         std::size_t nest_index,
                                         const CacheConfig& config,
                                         std::uint64_t max_accesses = 1 << 24);

}  // namespace everest::compiler
