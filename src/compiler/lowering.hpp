// Tensor-dialect → kernel-dialect lowering (paper Fig. 1: the step between
// the unified MLIR and HLS / code generation).
//
// A tensor function
//     func @k(%x: tensor<MxK>, %w: tensor<KxN>) -> (tensor<MxN>)
// lowers to a buffer-semantics kernel function
//     func @k_kernel(%x: memref<MxK, device>, %w: memref<KxN, device>,
//                    %out0: memref<MxN, device>) -> ()
// made of perfect kernel.for nests the HLS engine can synthesize and the
// CPU cost model can reason about.
//
// Lowering decisions:
//   * inputs / outputs / promoted constants live off-chip (device space);
//   * intermediate tensors become on-chip allocs — "a chain of tensor
//     operations directly on the FPGA logic before writing back to main
//     memory" (paper §III-B);
//   * chains of single-use elementwise ops fuse into one loop nest;
//   * tensor.constant is promoted to an extra function argument (weights
//     are bound at runtime) — recorded in the "ev.promoted_constants" attr.
#pragma once

#include <string>

#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::compiler {

/// Options controlling the lowering.
struct LoweringOptions {
  /// Fuse single-use elementwise producer chains into one loop nest.
  bool fuse_elementwise = true;
  /// Suffix appended to the tensor function's name.
  std::string suffix = "_kernel";
};

/// Lowers `tensor_fn` (a tensor-dialect function inside `module`) into a new
/// kernel-dialect function; returns the new function's name.
Result<std::string> lower_to_kernel(ir::Module& module,
                                    const std::string& tensor_fn,
                                    const LoweringOptions& options = {});

}  // namespace everest::compiler
